(* pas-tool: compute PAS / pre-PAS, render the paper's tables and
   figures, export attack-model graphs and run simulated attacks.

   The paper's conclusion lists "providing a tool for computing PAS" as
   future work; this is that tool. *)

open Cmdliner
open Cachesec_cache
open Cachesec_analysis
open Cachesec_experiments
open Cachesec_runtime

(* --- shared argument converters ------------------------------------ *)

let spec_conv =
  let parse s =
    match Spec.of_name s with
    | Some spec -> Ok spec
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown cache %S (expected one of: %s)" s
             (String.concat ", " (List.map Spec.name Spec.all_paper))))
  in
  let print ppf spec = Format.pp_print_string ppf (Spec.name spec) in
  Arg.conv (parse, print)

let attack_conv =
  let parse s =
    match Attack_type.of_name s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown attack %S (expected one of: %s)" s
             (String.concat ", " (List.map Attack_type.name Attack_type.all))))
  in
  let print ppf a = Format.pp_print_string ppf (Attack_type.name a) in
  Arg.conv (parse, print)

let cache_arg =
  Arg.(
    required
    & opt (some spec_conv) None
    & info [ "cache"; "c" ] ~docv:"CACHE"
        ~doc:"Cache architecture: sa, sp, pl, nomo, newcache, rp, rf, re, noisy.")

let attack_arg =
  Arg.(
    required
    & opt (some attack_conv) None
    & info [ "attack"; "a" ] ~docv:"ATTACK"
        ~doc:
          "Attack class: evict-and-time, prime-and-probe, cache-collision, \
           flush-and-reload.")

let policy_conv =
  let parse s =
    match Policy.of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown policy %S (expected one of: %s)" s
             (String.concat ", " (List.map Policy.to_string Policy.all))))
  in
  let print ppf p = Format.pp_print_string ppf (Policy.to_string p) in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf
             "Replacement policy: %s. Default: the paper's configuration \
              (random). Newcache keeps its SecRAND replacement regardless."
             Policy.names))

(* Rebind the spec's replacement policy when --policy was given. *)
let apply_policy policy spec =
  match policy with None -> spec | Some p -> Spec.with_policy spec p

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced trial counts.")

let scale_of_quick quick = if quick then Figures.Quick else Figures.Full

(* Commands that fan trials out over the trial runtime share one context
   term: --seed, --quick, --jobs, --progress, --metrics PATH. *)
let ctx_term = Run.of_cmdline ~run:"pas_tool" ()

(* Adaptive (run-to-confidence) stopping knobs, shared by the
   Monte-Carlo commands: --ci-width enables sequential stopping at that
   target half-width; --confidence sets the interval's coverage. *)
let confidence_arg =
  Arg.(
    value & opt float 0.95
    & info [ "confidence" ] ~docv:"C"
        ~doc:
          "Confidence level of the stopping interval (with $(b,--ci-width)).")

let ci_width_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "ci-width" ] ~docv:"W"
        ~doc:
          "Adaptive stopping: end each Monte-Carlo campaign once its \
           estimator's confidence-interval half-width reaches W (absolute \
           for success rates, relative to the mean for timing means) \
           instead of always running the full trial budget. W=0 runs to \
           the budget while measuring the achieved widths.")

(* Build a stopping target for a cleaning-game campaign capped at
   [samples] (mirrors the floor Validation applies to its cells). *)
let cleaning_target ~confidence ~ci_width ~samples =
  Cachesec_stats.Sequential.target ~confidence
    ~min_trials:(max 1 (min 100 samples))
    ~half_width:ci_width ~max_trials:samples ()

(* --- commands ------------------------------------------------------- *)

let tables_cmd =
  let which =
    Arg.(
      value
      & opt (some int) None
      & info [ "table"; "t" ] ~docv:"N" ~doc:"Print only table N (3, 5, 6 or 7).")
  in
  let run which =
    match which with
    | None -> print_string (Tables.all ())
    | Some 3 -> print_string (Tables.table3 ())
    | Some 5 -> print_string (Tables.table5 ())
    | Some 6 -> print_string (Tables.table6 ())
    | Some 7 -> print_string (Tables.table7 ())
    | Some n -> Printf.eprintf "no table %d (have 3, 5, 6, 7)\n" n
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's Tables 3, 5, 6 and 7.")
    Term.(const run $ which)

let figures_cmd =
  let which =
    Arg.(
      value
      & opt (some int) None
      & info [ "figure"; "f" ] ~docv:"N" ~doc:"Print only figure N (4, 8, 9 or 10).")
  in
  let run which policy (ctx : Run.ctx) =
    let all = which = None in
    if all || which = Some 4 then print_string (Figures.figure4 ());
    if all || which = Some 8 then print_string (Figures.figure8 ?policy ());
    if all || which = Some 9 then print_string (Figures.render_figure9 ctx);
    if all || which = Some 10 then print_string (Figures.render_figure10 ctx);
    (match which with
    | Some n when not (List.mem n [ 4; 8; 9; 10 ]) ->
      Printf.eprintf "no figure %d (have 4, 8, 9, 10)\n" n
    | _ -> ());
    Cachesec_telemetry.Telemetry.close ctx.Run.telemetry
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's Figures 4, 8, 9 and 10.")
    Term.(const run $ which $ policy_arg $ ctx_term)

let pas_cmd =
  let run spec attack =
    let edges = Edge_probs.for_attack attack spec () in
    let g = Attack_models.build attack spec () in
    Printf.printf "%s under %s\n\n" (Spec.display_name spec)
      (Attack_type.name attack);
    List.iter
      (fun (e : Edge_probs.edge) ->
        Printf.printf "  %-4s = %-8s %s\n" e.label
          (Cachesec_report.Table.fmt_prob e.prob)
          e.meaning)
      edges;
    Printf.printf "\n  PAS = %s (product over the security-critical path)\n"
      (Cachesec_report.Table.fmt_prob (Cachesec_core.Pas.pas g));
    Printf.printf "  resilience: %s\n"
      (Resilience.verdict_to_string (Resilience.classify spec attack))
  in
  Cmd.v
    (Cmd.info "pas"
       ~doc:"Edge probabilities and PAS for one cache under one attack.")
    Term.(const run $ cache_arg $ attack_arg)

let dot_cmd =
  let run spec attack =
    let g = Attack_models.build attack spec () in
    print_string
      (Cachesec_core.Dot.to_string
         ~name:(Printf.sprintf "%s-%s" (Spec.name spec) (Attack_type.name attack))
         g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the attack's PIFG as Graphviz DOT.")
    Term.(const run $ cache_arg $ attack_arg)

let prepas_cmd =
  let k_arg =
    Arg.(
      value & opt int 32
      & info [ "k" ] ~docv:"K" ~doc:"Number of attacker memory accesses.")
  in
  let mc_arg =
    Arg.(
      value & flag
      & info [ "monte-carlo" ] ~doc:"Also run the Monte-Carlo cleaning game.")
  in
  let samples_arg =
    Arg.(
      value & opt int 2000
      & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample count.")
  in
  let run spec policy k mc samples confidence ci_width seed =
    let spec = apply_policy policy spec in
    Printf.printf "pre-PAS(%s%s, k=%d) = %s (closed form, paper Section 5)\n"
      (Spec.name spec)
      (match Spec.policy_of spec with
      | Some p -> "/" ^ Policy.to_string p
      | None -> "")
      k
      (Cachesec_report.Table.fmt_prob (Prepas.for_spec spec ~k));
    if mc then begin
      match ci_width with
      | None ->
        let rng = Cachesec_stats.Rng.create ~seed in
        Printf.printf "Monte-Carlo estimate (%d samples) = %s\n" samples
          (Cachesec_report.Table.fmt_prob
             (Cachesec_attacks.Cleaner.monte_carlo spec ~accesses:k ~samples
                ~rng))
      | Some w ->
        let ctx = { Run.default with Run.seed } in
        let target = cleaning_target ~confidence ~ci_width:w ~samples in
        let a = Driver.run_cleaning_game_adaptive ctx spec ~accesses:k ~target in
        Printf.printf
          "Monte-Carlo estimate (adaptive, %d of %d samples%s) = %s (ci \
           half-width %.4g @ %.0f%%)\n"
          a.Driver.trials a.Driver.cap
          (if a.Driver.stopped_early then ", stopped early" else "")
          (Cachesec_report.Table.fmt_prob a.Driver.value)
          a.Driver.achieved (100. *. confidence)
    end
  in
  Cmd.v
    (Cmd.info "prepas"
       ~doc:"Cache-cleaning success probability (pre-PAS) for one cache.")
    Term.(
      const run $ cache_arg $ policy_arg $ k_arg $ mc_arg $ samples_arg
      $ confidence_arg $ ci_width_arg $ seed_arg)

let simulate_cmd =
  let trials_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"N" ~doc:"Override the attack's trial count.")
  in
  (* Trials fan out over the Driver's batch plan, so --jobs shards the
     campaign over domains without changing the verdict. *)
  let run spec policy attack trials (ctx : Run.ctx) =
    let spec = apply_policy policy spec in
    let lock = match spec with Spec.Pl _ -> true | _ -> false in
    let report recovered best true_v separation =
      Printf.printf
        "%s vs %s: %s\n  winner 0x%02x, true 0x%02x, z = %.2f\n"
        (Attack_type.name attack) (Spec.display_name spec)
        (if recovered then "key nibble RECOVERED (cache leaks)"
         else "key nibble NOT recovered")
        best true_v separation
    in
    match attack with
    | Attack_type.Evict_and_time ->
      let open Cachesec_attacks in
      let cfg =
        {
          Evict_time.default_config with
          Evict_time.trials =
            Option.value trials ~default:Evict_time.default_config.Evict_time.trials;
          lock_victim_tables = lock;
        }
      in
      let r = Driver.run_evict_time ctx spec cfg in
      report r.Evict_time.nibble_recovered r.Evict_time.best_candidate
        r.Evict_time.true_byte r.Evict_time.separation
    | Attack_type.Prime_and_probe ->
      let open Cachesec_attacks in
      let cfg =
        {
          Prime_probe.default_config with
          Prime_probe.trials =
            Option.value trials
              ~default:Prime_probe.default_config.Prime_probe.trials;
          lock_victim_tables = lock;
        }
      in
      let r = Driver.run_prime_probe ctx spec cfg in
      report r.Prime_probe.nibble_recovered r.Prime_probe.best_candidate
        r.Prime_probe.true_byte r.Prime_probe.separation
    | Attack_type.Cache_collision ->
      let open Cachesec_attacks in
      let cfg =
        {
          Collision.default_config with
          Collision.trials =
            Option.value trials ~default:Collision.default_config.Collision.trials;
        }
      in
      let r = Driver.run_collision ctx spec cfg in
      report r.Collision.nibble_recovered r.Collision.best_delta
        r.Collision.true_delta r.Collision.separation
    | Attack_type.Flush_and_reload ->
      let open Cachesec_attacks in
      let cfg =
        {
          Flush_reload.default_config with
          Flush_reload.trials =
            Option.value trials
              ~default:Flush_reload.default_config.Flush_reload.trials;
        }
      in
      let r = Driver.run_flush_reload ctx spec cfg in
      report r.Flush_reload.nibble_recovered r.Flush_reload.best_candidate
        r.Flush_reload.true_byte r.Flush_reload.separation
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run a simulated attack against a cache architecture (trials \
          sharded over --jobs domains).")
    Term.(
      const run $ cache_arg $ policy_arg $ attack_arg $ trials_arg $ ctx_term)

let validate_cmd =
  let run policy confidence ci_width (ctx : Run.ctx) =
    let adaptive =
      Option.map
        (fun w -> { Validation.confidence; ci_width = w })
        ci_width
    in
    print_string (Validation.render (Validation.cells ?policy ?adaptive ctx));
    Cachesec_telemetry.Telemetry.close ctx.Run.telemetry
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Run the full 9-cache x 4-attack validation matrix (optionally \
          under a non-default replacement policy; with $(b,--ci-width), \
          each cell stops at the target confidence instead of running its \
          full trial budget).")
    Term.(const run $ policy_arg $ confidence_arg $ ci_width_arg $ ctx_term)

let policy_matrix_cmd =
  let cache_opt_arg =
    Arg.(
      value
      & opt (some spec_conv) None
      & info [ "cache"; "c" ] ~docv:"CACHE"
          ~doc:"Restrict the table to one architecture.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Resilience threshold on the effective PAS (default 0.01).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit machine-readable rows (arch, policy, attack, pas, limit, \
             effective, bits, verdict) instead of the table.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Cross-check each policy's closed-form cleaning probability \
             against the Monte-Carlo cleaning game on the SA cache.")
  in
  let samples_arg =
    Arg.(
      value & opt int 2000
      & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample count for --check.")
  in
  let run cache policy threshold csv check samples confidence ci_width seed =
    let specs = Option.map (fun s -> [ s ]) cache in
    let policies = Option.map (fun p -> [ p ]) policy in
    if csv then
      List.iter
        (fun row -> print_endline (String.concat "," row))
        (Tables.policy_resilience_csv_rows ())
    else print_string (Tables.policy_resilience ?threshold ?specs ?policies ());
    if check then begin
      let ways =
        match Spec.paper_sa with Spec.Sa { ways; _ } -> ways | _ -> 8
      in
      let checked_policies =
        match policy with Some p -> [ p ] | None -> Policy.all
      in
      let ks = [ ways - 1; ways; 4 * ways ] in
      match ci_width with
      | None ->
        Printf.printf
          "\nClosed form vs Monte-Carlo cleaning game (SA %d-way, %d \
           samples):\n"
          ways samples;
        Printf.printf "  %-8s %6s %12s %12s %s\n" "policy" "k" "closed" "mc"
          "agree";
        List.iter
          (fun p ->
            let spec = Spec.with_policy Spec.paper_sa p in
            List.iter
              (fun k ->
                let closed = Prepas.for_spec spec ~k in
                let rng = Cachesec_stats.Rng.create ~seed in
                let mc =
                  Cachesec_attacks.Cleaner.monte_carlo spec ~accesses:k
                    ~samples ~rng
                in
                Printf.printf "  %-8s %6d %12.4f %12.4f %s\n"
                  (Policy.to_string p) k closed mc
                  (if Float.abs (closed -. mc) < 0.05 then "yes" else "NO"))
              ks)
          checked_policies
      | Some w ->
        (* Run-to-confidence cross-check: each cleaning game stops once
           the win rate's Wilson half-width reaches the target, capped
           at --samples. *)
        let ctx = { Run.default with Run.seed } in
        let target = cleaning_target ~confidence ~ci_width:w ~samples in
        Printf.printf
          "\nClosed form vs adaptive Monte-Carlo cleaning game (SA %d-way, \
           cap %d, ci %.4g @ %.0f%%):\n"
          ways samples w (100. *. confidence);
        Printf.printf "  %-8s %6s %12s %12s %12s %s\n" "policy" "k" "closed"
          "mc" "trials" "agree";
        let total = ref 0 and caps = ref 0 in
        List.iter
          (fun p ->
            let spec = Spec.with_policy Spec.paper_sa p in
            List.iter
              (fun k ->
                let closed = Prepas.for_spec spec ~k in
                let a =
                  Driver.run_cleaning_game_adaptive ctx spec ~accesses:k
                    ~target
                in
                total := !total + a.Driver.trials;
                caps := !caps + a.Driver.cap;
                Printf.printf "  %-8s %6d %12.4f %12.4f %12d %s\n"
                  (Policy.to_string p) k closed a.Driver.value a.Driver.trials
                  (if Float.abs (closed -. a.Driver.value) < 0.05 then "yes"
                   else "NO"))
              ks)
          checked_policies;
        Printf.printf "  adaptive: %d of %d trials (%.1fx saved)\n" !total
          !caps
          (float_of_int !caps /. Float.max 1. (float_of_int !total))
    end
  in
  Cmd.v
    (Cmd.info "policy-matrix"
       ~doc:
         "The policy x attack x architecture resilience table: effective \
          PAS (gated by the k->inf cleaning limit for miss-based attacks), \
          absorbed-information leakage bound and verdict for every \
          replacement policy.")
    Term.(
      const run $ cache_opt_arg $ policy_arg $ threshold_arg $ csv_arg
      $ check_arg $ samples_arg $ confidence_arg $ ci_width_arg $ seed_arg)

let perf_cmd =
  let accesses =
    Arg.(
      value & opt int 60000
      & info [ "accesses" ] ~docv:"N" ~doc:"Accesses per workload.")
  in
  let run accesses seed =
    print_string (Performance.hit_rate_table ~seed ~accesses ())
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Victim hit rates per architecture under synthetic workloads.")
    Term.(const run $ accesses $ seed_arg)

let metrics_cmd =
  let trials =
    Arg.(
      value & opt int 1500
      & info [ "trials" ] ~docv:"N" ~doc:"Observations per architecture.")
  in
  let run trials seed =
    print_string (Metrics.render (Metrics.table ~seed ~trials ()))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Compare PAS with a measured mutual-information leakage estimate.")
    Term.(const run $ trials $ seed_arg)

let covert_cmd =
  let bits =
    Arg.(
      value & opt int 2000
      & info [ "bits" ] ~docv:"N" ~doc:"Symbols per architecture and protocol.")
  in
  let run bits seed =
    print_string (Covert.render (Covert.table ~seed ~bits ()))
  in
  Cmd.v
    (Cmd.info "covert"
       ~doc:
         "Covert-channel capacity (set-conflict and occupancy protocols) \
          per architecture.")
    Term.(const run $ bits $ seed_arg)

let svf_cmd =
  let intervals =
    Arg.(
      value & opt int 80
      & info [ "intervals" ] ~docv:"N" ~doc:"Execution intervals per architecture.")
  in
  let run intervals seed =
    print_string (Svf.render (Svf.table ~seed ~intervals ()))
  in
  Cmd.v
    (Cmd.info "svf"
       ~doc:"Compare PAS with a simplified side-channel vulnerability factor.")
    Term.(const run $ intervals $ seed_arg)

let multi_cmd =
  let lines_arg =
    Arg.(
      value & opt int 4
      & info [ "lines" ] ~docv:"M" ~doc:"Victim lines the attack must evict.")
  in
  let run lines = print_string (Extension.multi_line_report ~lines ()) in
  Cmd.v
    (Cmd.info "multi"
       ~doc:"Multi-line eviction PAS (the paper's Table 6 closing note).")
    Term.(const run $ lines_arg)

let fullkey_cmd =
  let trials =
    Arg.(
      value & opt int 1000
      & info [ "trials" ] ~docv:"N" ~doc:"Flush-reload trials per key byte.")
  in
  let run spec trials seed =
    let s = Setup.make ~seed spec in
    let r =
      Cachesec_attacks.Full_key.flush_reload ~victim:s.Setup.victim
        ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
        ~trials_per_byte:trials
    in
    Printf.printf "%s vs flush-and-reload, %d trials/byte:\n  %s\n"
      (Spec.display_name spec) trials
      (Cachesec_attacks.Full_key.render r)
  in
  Cmd.v
    (Cmd.info "fullkey"
       ~doc:"Recover all 16 AES key-byte high nibbles via flush-and-reload.")
    Term.(const run $ cache_arg $ trials $ seed_arg)

let lastround_cmd =
  let trials =
    Arg.(
      value & opt int 3000
      & info [ "trials" ] ~docv:"N" ~doc:"Shared trials for all 16 bytes.")
  in
  let run spec trials seed =
    let s = Setup.make ~seed spec in
    let r =
      Cachesec_attacks.Last_round.run ~victim:s.Setup.victim
        ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
        { Cachesec_attacks.Last_round.trials }
    in
    Printf.printf
      "%s, last-round attack, %d trials:\n\
      \  round-10 key bytes correct: %d/16\n\
      \  master key guess: %s%s\n"
      (Spec.display_name spec) trials
      r.Cachesec_attacks.Last_round.bytes_correct
      r.Cachesec_attacks.Last_round.master_key_guess
      (if r.Cachesec_attacks.Last_round.key_recovered then
         "  <- FULL 128-BIT KEY RECOVERED"
       else "  (wrong)")
  in
  Cmd.v
    (Cmd.info "lastround"
       ~doc:
         "Recover the complete AES-128 master key via the last-round \
          flush-and-reload attack and key-schedule inversion.")
    Term.(const run $ cache_arg $ trials $ seed_arg)

let expleak_cmd =
  let exponent =
    Arg.(
      value & opt int 0xcaf1
      & info [ "exponent" ] ~docv:"E" ~doc:"Secret exponent to leak.")
  in
  let run spec exponent seed =
    let rng = Cachesec_stats.Rng.create ~seed in
    let scenario =
      { Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }
    in
    let engine = Factory.build spec scenario ~rng:(Cachesec_stats.Rng.split rng) in
    let r =
      Cachesec_attacks.Exp_leak.run ~engine ~victim_pid:0 ~attacker_pid:1
        ~rng:(Cachesec_stats.Rng.split rng) ~exponent ()
    in
    Printf.printf "%s: %s (%d/%d slots readable)\n" (Spec.display_name spec)
      (match r.Cachesec_attacks.Exp_leak.exponent_guess with
      | Some e when r.Cachesec_attacks.Exp_leak.exponent_recovered ->
        Printf.sprintf "exponent RECOVERED: 0x%x" e
      | Some e -> Printf.sprintf "wrong guess 0x%x" e
      | None -> "no recovery")
      r.Cachesec_attacks.Exp_leak.slots_read
      r.Cachesec_attacks.Exp_leak.total_slots
  in
  Cmd.v
    (Cmd.info "expleak"
       ~doc:
         "Leak a square-and-multiply exponent via flush-and-reload on the \
          routine code lines.")
    Term.(const run $ cache_arg $ exponent $ seed_arg)

let mitigation_cmd =
  let run quick seed =
    print_string (Mitigation.report ~scale:(scale_of_quick quick) ~seed ())
  in
  Cmd.v
    (Cmd.info "mitigation"
       ~doc:"Software mitigations: prefetch vs prefetch-and-lock outcomes.")
    Term.(const run $ quick_arg $ seed_arg)

let llc_cmd =
  let run quick seed =
    print_string (Llc.report ~seed ~scale:(scale_of_quick quick) ())
  in
  Cmd.v
    (Cmd.info "llc"
       ~doc:"Cross-core flush-and-reload through a two-level hierarchy.")
    Term.(const run $ quick_arg $ seed_arg)

(* --- PAS-as-a-service: the query server and its client ------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "pas-tool.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (OS limit ~107 bytes).")

let serve_cmd =
  let queue_bound_arg =
    Arg.(
      value
      & opt int Cachesec_serve.Server.default_queue_bound
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Maximum simulation campaigns queued awaiting a worker before \
             new queries are refused with an 'overloaded' reply. 0 refuses \
             every simulation (serve closed forms and memo only).")
  in
  let max_memo_arg =
    Arg.(
      value & opt int 65536
      & info [ "max-memo" ] ~docv:"N"
          ~doc:"Answer-cache entry bound (FIFO eviction beyond it).")
  in
  let inline_arg =
    Arg.(
      value & flag
      & info [ "inline" ]
          ~doc:
            "Run simulation campaigns synchronously in the server's own \
             domain instead of pool workers (single-client/test mode; \
             ignores --jobs and --queue-bound).")
  in
  let run socket queue_bound max_memo inline (ctx : Run.ctx) =
    let execution =
      if inline then Cachesec_serve.Server.Inline
      else
        let j = Scheduler.resolve_jobs ctx.Run.jobs in
        Cachesec_serve.Server.Pooled
          { workers = (if j <= 1 then 0 else j); queue_bound }
    in
    match
      Cachesec_serve.Server.run ~telemetry:ctx.Run.telemetry
        { Cachesec_serve.Server.socket; execution; max_memo }
    with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the PAS query server: a daemon answering pas/prepas/\
          resilience/table queries from a memo cache (microseconds when \
          warm) and validate queries through the simulation pool, with \
          in-flight deduplication and backpressure. Stop it with a \
          'shutdown' query or SIGINT.")
    Term.(
      ret
        (const run $ socket_arg $ queue_bound_arg $ max_memo_arg $ inline_arg
       $ ctx_term))

let query_cmd =
  let lines_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:
            "Query lines, e.g. 'pas cache=sa attack=prime-and-probe', \
             'table attack=cache-collision', 'validate cache=rp \
             attack=flush-and-reload seed=7', 'stats', 'shutdown'. All \
             lines are sent as one frame; replies print in query order.")
  in
  let run socket lines =
    match
      Cachesec_serve.Client.with_connection socket (fun c ->
          Cachesec_serve.Client.round_trip_raw c lines)
    with
    | replies ->
      List.iter print_endline replies;
      `Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      `Error (false, Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | exception Failure msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send query lines to a running PAS query server and print the \
          replies (one per query line, in order).")
    Term.(ret (const run $ socket_arg $ lines_arg))

let main =
  let doc = "PIFG/PAS cache side-channel security quantification (MICRO-50 2017)" in
  Cmd.group
    (Cmd.info "pas-tool" ~version:"1.0.0" ~doc)
    [
      tables_cmd; figures_cmd; pas_cmd; dot_cmd; prepas_cmd; simulate_cmd;
      validate_cmd; policy_matrix_cmd; perf_cmd; metrics_cmd; svf_cmd;
      covert_cmd; multi_cmd;
      fullkey_cmd; lastround_cmd; expleak_cmd; llc_cmd; mitigation_cmd;
      serve_cmd; query_cmd;
    ]

let () = exit (Cmd.eval main)
