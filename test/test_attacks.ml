(* Tests for the attack harness: layout, victim, attacker primitives,
   key-recovery scoring, the four attacks, the cleaning game, the
   allocation-free fast path and its bit-identity golden digests. *)

(* [Attacker.conflict_lines] is deprecated in favour of
   [nth_conflict_line] / [Probe_plan]; the compat wrapper is still
   covered below, so silence the alert for this file. *)
[@@@alert "-deprecated"]

open Cachesec_stats
open Cachesec_cache
open Cachesec_crypto
open Cachesec_attacks

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rng () = Rng.create ~seed:77
let key = Aes.key_of_hex "2b7e151628aed2a6abf7158809cf4f3c"

let make_victim ?(spec = Spec.paper_sa) () =
  let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 79) ] } in
  let engine = Factory.build spec scenario ~rng:(rng ()) in
  let layout = Aes_layout.create engine.Engine.config in
  (Victim.create ~engine ~pid:0 ~key ~layout, engine)

(* --- Aes_layout --------------------------------------------------------- *)

let test_layout_geometry () =
  let l = Aes_layout.create Config.standard in
  Alcotest.(check int) "entries per line" 16 (Aes_layout.entries_per_line l);
  Alcotest.(check int) "lines per table" 16 (Aes_layout.lines_per_table l);
  Alcotest.(check int) "all lines" 80 (List.length (Aes_layout.all_lines l));
  Alcotest.(check (list (pair int int))) "ranges" [ (0, 79) ]
    (Aes_layout.line_ranges l)

let test_layout_mapping () =
  let l = Aes_layout.create Config.standard in
  Alcotest.(check int) "entry 0 of table 0" 0
    (Aes_layout.line_of_entry l ~table:0 ~index:0);
  Alcotest.(check int) "entry 255 of table 0" 15
    (Aes_layout.line_of_entry l ~table:0 ~index:255);
  Alcotest.(check int) "entry 0 of te4" 64
    (Aes_layout.line_of_entry l ~table:4 ~index:0);
  Alcotest.(check int) "access mapping" 17
    (Aes_layout.line_of_access l { Aes.table = 1; index = 16 });
  Alcotest.(check int) "set of entry" 3 (Aes_layout.set_of_entry l ~table:0 ~index:48);
  Alcotest.(check int) "entry line" 3 (Aes_layout.entry_line_of_index l 60)

let test_layout_base () =
  let l = Aes_layout.create ~base_line:100 Config.standard in
  Alcotest.(check int) "offset" 100 (Aes_layout.line_of_entry l ~table:0 ~index:0);
  Alcotest.(check (list (pair int int))) "ranges" [ (100, 179) ]
    (Aes_layout.line_ranges l)

let test_layout_validation () =
  let l = Aes_layout.create Config.standard in
  Alcotest.check_raises "bad table"
    (Invalid_argument "Aes_layout.line_of_entry: bad table") (fun () ->
      ignore (Aes_layout.line_of_entry l ~table:5 ~index:0));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Aes_layout.line_of_entry: bad index") (fun () ->
      ignore (Aes_layout.line_of_entry l ~table:0 ~index:256));
  Alcotest.check_raises "negative base"
    (Invalid_argument "Aes_layout.create: negative base line") (fun () ->
      ignore (Aes_layout.create ~base_line:(-1) Config.standard))

(* --- Victim -------------------------------------------------------------- *)

let test_victim_ciphertext_correct () =
  let v, _ = make_victim () in
  let p = Aes.bytes_of_hex "3243f6a8885a308d313198a2e0370734" in
  let c, _ = Victim.encrypt_timed v p in
  Alcotest.(check string) "same as plain AES"
    (Aes.hex_of_bytes (Aes.encrypt key p))
    (Aes.hex_of_bytes c)

let test_victim_warm_then_fast () =
  let v, _ = make_victim () in
  Victim.warm_tables v;
  let p = Victim.random_plaintext (rng ()) in
  let _, t = Victim.encrypt_timed v p in
  (* On the standard SA cache the 80 table lines fit without conflict:
     a warm encryption has zero misses. *)
  Alcotest.(check (float 0.)) "all hits" 0. t

let test_victim_cold_cost () =
  let v, _ = make_victim () in
  let p = Victim.random_plaintext (rng ()) in
  let _, t = Victim.encrypt_timed v p in
  Alcotest.(check bool) "cold encryption misses a lot" true (t > 30.)

let test_victim_lock_tables () =
  let v, _ = make_victim ~spec:Spec.paper_pl () in
  Alcotest.(check int) "locks all 80 lines" 80 (Victim.lock_tables v);
  let v2, _ = make_victim () in
  Alcotest.(check int) "sa locks nothing" 0 (Victim.lock_tables v2)

let test_random_plaintext () =
  let r = rng () in
  let p = Victim.random_plaintext r in
  Alcotest.(check int) "16 bytes" 16 (Bytes.length p);
  let q = Victim.random_plaintext r in
  Alcotest.(check bool) "varies" false (Bytes.equal p q)

(* --- Attacker -------------------------------------------------------------- *)

let test_conflict_lines () =
  let cfg = Config.standard in
  let lines = Attacker.conflict_lines cfg ~count:8 5 in
  Alcotest.(check int) "count" 8 (List.length lines);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare lines));
  List.iter
    (fun l ->
      Alcotest.(check int) "maps to set" 5 (Address.set_index cfg l);
      Alcotest.(check bool) "above attacker base" true (l >= Attacker.default_base))
    lines;
  Alcotest.check_raises "bad set" (Invalid_argument "Attacker.conflict_lines: bad set")
    (fun () -> ignore (Attacker.conflict_lines cfg ~count:1 64))

let test_prime_probe_cycle () =
  let _, engine = make_victim () in
  let r = rng () in
  Attacker.prime_all_sets engine ~pid:1 ();
  (* Probing immediately after priming: everything hits. *)
  let probes = Attacker.probe_all_sets engine r ~pid:1 () in
  Array.iter
    (fun (p : Attacker.probe) ->
      Alcotest.(check int) "no misses" 0 p.Attacker.true_misses)
    probes;
  (* A victim access now displaces exactly one primed line somewhere. *)
  ignore (engine.Engine.access ~pid:0 5);
  let probes = Attacker.probe_all_sets engine r ~pid:1 () in
  let total =
    Array.fold_left (fun acc (p : Attacker.probe) -> acc + p.Attacker.true_misses) 0 probes
  in
  Alcotest.(check int) "one miss total" 1 total;
  Alcotest.(check int) "in the right set" 1 probes.(5).Attacker.true_misses

(* --- Fast path ----------------------------------------------------------- *)

let test_nth_conflict_line () =
  let cfg = Config.standard in
  let lines = Attacker.conflict_lines cfg ~count:8 5 in
  List.iteri
    (fun k l ->
      Alcotest.(check int) "matches deprecated list form" l
        (Attacker.nth_conflict_line cfg ~set:5 k))
    lines;
  Alcotest.check_raises "bad set"
    (Invalid_argument "Attacker.nth_conflict_line: bad set") (fun () ->
      ignore (Attacker.nth_conflict_line cfg ~set:64 0))

let twin_engines spec =
  let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 79) ] } in
  ( Factory.build spec scenario ~rng:(rng ()),
    Factory.build spec scenario ~rng:(rng ()) )

(* A probe plan must reproduce the record-based attacker primitives
   bit-for-bit: same counts, same float times, same RNG consumption —
   including under timing noise (paper_noisy, sigma = 1). *)
let test_probe_plan_matches_attacker () =
  List.iter
    (fun spec ->
      let e1, e2 = twin_engines spec in
      let r1 = rng () and r2 = rng () in
      let plan = Probe_plan.make e1 ~pid:1 in
      Alcotest.(check int) "line formula"
        (Attacker.nth_conflict_line e1.Engine.config ~set:5 2)
        (Probe_plan.line plan ~set:5 2);
      Probe_plan.prime_all plan;
      Attacker.prime_all_sets e2 ~pid:1 ();
      (* Victim touches displace some primed lines on both engines. *)
      List.iter
        (fun l ->
          ignore (e1.Engine.access ~pid:0 l);
          ignore (e2.Engine.access ~pid:0 l))
        [ 5; 17; 42 ];
      Probe_plan.probe_all plan r1;
      let probes = Attacker.probe_all_sets e2 r2 ~pid:1 () in
      Array.iteri
        (fun set (p : Attacker.probe) ->
          Alcotest.(check int) "true misses" p.Attacker.true_misses
            (Probe_plan.true_misses plan set);
          Alcotest.(check int) "classified" p.Attacker.classified_misses
            (Probe_plan.classified_misses plan set);
          Alcotest.(check (float 0.)) "time" p.Attacker.time
            (Probe_plan.time plan set))
        probes)
    [ Spec.paper_sa; Spec.paper_rp; Spec.paper_noisy ]

let test_encrypt_traced_into_matches () =
  let p = Aes.bytes_of_hex "3243f6a8885a308d313198a2e0370734" in
  let ct, accs = Aes.encrypt_traced key p in
  let sc = Aes.create_scratch () in
  let dst = Bytes.create 16 in
  let trace = Array.make Aes.trace_length 0 in
  Aes.encrypt_traced_into sc key ~src:p ~dst ~trace;
  Alcotest.(check string) "ciphertext" (Aes.hex_of_bytes ct)
    (Aes.hex_of_bytes dst);
  Alcotest.(check int) "trace length" Aes.trace_length (Array.length accs);
  Array.iteri
    (fun i (a : Aes.access) ->
      Alcotest.(check int) "table" a.Aes.table (Aes.table_of_packed trace.(i));
      Alcotest.(check int) "index" a.Aes.index (Aes.index_of_packed trace.(i)))
    accs

let test_encrypt_misses_matches_timed () =
  let v1, _ = make_victim () in
  let v2, _ = make_victim () in
  let r = rng () in
  let p = Bytes.create 16 in
  for _ = 1 to 5 do
    Victim.random_plaintext_into r p;
    let _, t = Victim.encrypt_timed v1 p in
    let m = Victim.encrypt_misses v2 p in
    Alcotest.(check (float 0.)) "time = time_of_counts" t
      (Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m)
  done

let test_random_plaintext_into_stream () =
  let r1 = rng () and r2 = rng () in
  let b = Bytes.create 16 in
  for _ = 1 to 3 do
    let p = Victim.random_plaintext r1 in
    Victim.random_plaintext_into r2 b;
    Alcotest.(check string) "same bytes and stream" (Bytes.to_string p)
      (Bytes.to_string b)
  done

(* --- Golden bit-identity -------------------------------------------------- *)

(* The digests in test/golden/attacks.golden were recorded against the
   pre-fast-path attack loops; matching them proves the refactor changed
   no result bit on any of the nine architectures. *)
let golden_path () =
  if Sys.file_exists "golden/attacks.golden" then "golden/attacks.golden"
  else "test/golden/attacks.golden"

let test_golden attack () =
  let golden = Attacks_workload.Workload.read_golden ~path:(golden_path ()) in
  let ran = ref 0 in
  List.iter
    (fun (name, run) ->
      match String.index_opt name ':' with
      | Some i
        when String.sub name (i + 1) (String.length name - i - 1) = attack ->
        (match List.assoc_opt name golden with
        | None -> Alcotest.failf "no golden digest recorded for %s" name
        | Some d ->
          incr ran;
          Alcotest.(check string) name d (run ()))
      | _ -> ())
    (Attacks_workload.Workload.cases ());
  Alcotest.(check int) "covers all nine architectures" 9 !ran

(* --- Allocation guards ---------------------------------------------------- *)

(* Steady-state prime+probe on the SA cache: the plan's 512 lines fill
   the cache exactly, so after one warm round every access hits and the
   zero-allocation fast path must allocate nothing. 64 words of slack
   absorb Gc.minor_words' own float boxing. *)
let test_probe_plan_zero_alloc () =
  let _, engine = make_victim () in
  let plan = Probe_plan.make engine ~pid:1 in
  let r = rng () in
  Probe_plan.prime_all plan;
  Probe_plan.probe_all plan r;
  let before = Gc.minor_words () in
  for _ = 1 to 100 do
    Probe_plan.prime_all plan;
    Probe_plan.probe_all plan r
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state prime+probe allocated %.0f words" delta)
    true (delta <= 64.)

(* A full prime+probe trial includes victim encryptions whose misses
   legitimately allocate a bounded outcome record inside the engine; the
   loop itself must stay within a small per-access budget. *)
let test_prime_probe_trial_alloc_budget () =
  let v, engine = make_victim () in
  let plan = Probe_plan.make engine ~pid:1 in
  let r = rng () in
  let p = Bytes.create 16 in
  let trial () =
    Probe_plan.prime_all plan;
    Victim.random_plaintext_into r p;
    Victim.encrypt_quiet_fast v p;
    Probe_plan.probe_all plan r
  in
  for _ = 1 to 5 do
    trial ()
  done;
  let trials = 50 in
  let accesses =
    (2 * Probe_plan.sets plan * Probe_plan.ways plan) + Aes.trace_length
  in
  let budget = float_of_int (trials * 20 * accesses) +. 64. in
  let before = Gc.minor_words () in
  for _ = 1 to trials do
    trial ()
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "trial loop allocated %.0f words (budget %.0f)" delta
       budget)
    true (delta <= budget)

(* --- Recovery --------------------------------------------------------------- *)

let test_recovery_argmax_rank () =
  let scores = [| 0.1; 0.9; 0.5; 0.9 |] in
  Alcotest.(check int) "argmax first max" 1 (Recovery.argmax scores);
  Alcotest.(check int) "rank of best" 0 (Recovery.rank scores 1);
  Alcotest.(check int) "rank of worst" 3 (Recovery.rank scores 0);
  Alcotest.check_raises "empty" (Invalid_argument "Recovery.argmax: empty")
    (fun () -> ignore (Recovery.argmax [||]))

let test_recovery_normalize () =
  let n = Recovery.normalize [| 2.; 4.; 6. |] in
  Alcotest.(check (array (Alcotest.float 1e-9))) "scaled" [| 0.; 0.5; 1. |] n;
  let flat = Recovery.normalize [| 3.; 3. |] in
  Alcotest.(check (array (Alcotest.float 1e-9))) "flat to zero" [| 0.; 0. |] flat

let test_recovery_grouping () =
  let scores = Array.init 32 (fun i -> if i / 16 = 1 then 1. else 0.) in
  let g = Recovery.group_scores scores ~group_size:16 in
  Alcotest.(check (array (Alcotest.float 1e-9))) "groups" [| 0.; 1. |] g;
  Alcotest.(check bool) "nibble recovered" true
    (Recovery.nibble_recovered ~scores ~true_byte:20 ~group_size:16);
  Alcotest.(check bool) "nibble wrong" false
    (Recovery.nibble_recovered ~scores ~true_byte:3 ~group_size:16);
  Alcotest.check_raises "bad group"
    (Invalid_argument "Recovery.group_scores: group_size must divide length")
    (fun () -> ignore (Recovery.group_scores scores ~group_size:5))

let test_recovery_separation () =
  let scores = [| 0.; 1.; 2.; 10. |] in
  Alcotest.(check bool) "well separated" true
    (Recovery.separation scores ~winner:3 > 2.);
  Alcotest.(check bool) "zero-spread others is nan" true
    (Float.is_nan (Recovery.separation [| 0.; 0.; 0.; 10. |] ~winner:3));
  Alcotest.(check bool) "tiny array nan" true
    (Float.is_nan (Recovery.separation [| 1.; 2. |] ~winner:1))

let prop_normalize_range =
  qtest "normalize lands in [0,1]"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_bound_inclusive 100.))
    (fun a ->
      Array.for_all (fun x -> x >= 0. && x <= 1.) (Recovery.normalize a))

(* --- Attacks (small but meaningful runs) ------------------------------------- *)

let test_evict_time_sa_recovers () =
  let v, _ = make_victim () in
  let r =
    Evict_time.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Evict_time.default_config with Evict_time.trials = 50000 }
  in
  Alcotest.(check bool) "recovered" true r.Evict_time.nibble_recovered;
  Alcotest.(check int) "true key byte" 0x2b r.Evict_time.true_byte;
  Alcotest.(check int) "bins" 256 (Array.length r.Evict_time.avg_times);
  Alcotest.(check int) "all trials binned" 50000
    (Array.fold_left ( + ) 0 r.Evict_time.counts)

let test_evict_time_sp_protected () =
  let v, _ = make_victim ~spec:Spec.paper_sp () in
  let r =
    Evict_time.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Evict_time.default_config with Evict_time.trials = 3000 }
  in
  Alcotest.(check bool) "no recovery" false r.Evict_time.nibble_recovered

let test_evict_time_pl_locked_protected () =
  let v, _ = make_victim ~spec:Spec.paper_pl () in
  let r =
    Evict_time.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      {
        Evict_time.default_config with
        Evict_time.trials = 3000;
        lock_victim_tables = true;
      }
  in
  Alcotest.(check bool) "no recovery" false r.Evict_time.nibble_recovered

let test_evict_time_validation () =
  let v, _ = make_victim () in
  Alcotest.check_raises "trials"
    (Invalid_argument "Evict_time.run: trials must be positive") (fun () ->
      ignore
        (Evict_time.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
           { Evict_time.default_config with Evict_time.trials = 0 }));
  Alcotest.check_raises "byte"
    (Invalid_argument "Evict_time.run: target_byte must be in 0..15") (fun () ->
      ignore
        (Evict_time.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
           { Evict_time.default_config with Evict_time.target_byte = 16 }))

let test_prime_probe_sa_recovers () =
  let v, _ = make_victim () in
  let r =
    Prime_probe.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Prime_probe.default_config with Prime_probe.trials = 1500 }
  in
  Alcotest.(check bool) "recovered" true r.Prime_probe.nibble_recovered;
  (* The true candidate's predicted set must be missed on every trial. *)
  Alcotest.(check (float 1e-9)) "true candidate saturates" 1.
    r.Prime_probe.scores.(r.Prime_probe.true_byte)

let test_prime_probe_newcache_protected () =
  let v, _ = make_victim ~spec:Spec.paper_newcache () in
  let r =
    Prime_probe.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Prime_probe.default_config with Prime_probe.trials = 300 }
  in
  Alcotest.(check bool) "no recovery" false r.Prime_probe.nibble_recovered

let test_collision_sa_signal () =
  let v, _ = make_victim () in
  let r =
    Collision.run ~victim:v ~rng:(rng ())
      { Collision.default_config with Collision.trials = 100000 }
  in
  Alcotest.(check int) "true delta" 0x03 r.Collision.true_delta;
  (* The true delta group's average time must sit below the grand mean
     (collision = one less miss), even when argmax is noisy. *)
  let grand = Array.fold_left ( +. ) 0. r.Collision.avg_times /. 256. in
  let group = r.Collision.true_delta / 16 in
  let group_mean =
    Array.fold_left ( +. ) 0. (Array.sub r.Collision.avg_times (group * 16) 16)
    /. 16.
  in
  Alcotest.(check bool) "true group is faster" true (group_mean < grand)

let test_collision_rf_flat () =
  let v, _ = make_victim ~spec:Spec.paper_rf () in
  let r =
    Collision.run ~victim:v ~rng:(rng ())
      { Collision.default_config with Collision.trials = 30000 }
  in
  let grand = Array.fold_left ( +. ) 0. r.Collision.avg_times /. 256. in
  let group = r.Collision.true_delta / 16 in
  let group_mean =
    Array.fold_left ( +. ) 0. (Array.sub r.Collision.avg_times (group * 16) 16)
    /. 16.
  in
  Alcotest.(check bool) "no reuse signal under RF" true
    (Float.abs (group_mean -. grand) < 0.5)

let test_collision_validation () =
  let v, _ = make_victim () in
  let run c = ignore (Collision.run ~victim:v ~rng:(rng ()) c) in
  Alcotest.check_raises "same byte" (Invalid_argument "Collision.run: bytes must differ")
    (fun () -> run { Collision.default_config with Collision.trials = 10; byte_i = 3; byte_j = 3 });
  Alcotest.check_raises "different table"
    (Invalid_argument "Collision.run: bytes must share a table (equal mod 4)")
    (fun () -> run { Collision.default_config with Collision.trials = 10; byte_i = 0; byte_j = 1 })

let test_flush_reload_sa_recovers () =
  let v, _ = make_victim () in
  let r =
    Flush_reload.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Flush_reload.default_config with Flush_reload.trials = 1000 }
  in
  Alcotest.(check bool) "recovered" true r.Flush_reload.nibble_recovered;
  Alcotest.(check int) "line profile" 16 (Array.length r.Flush_reload.line_hit_rate)

let test_flush_reload_newcache_flat () =
  let v, _ = make_victim ~spec:Spec.paper_newcache () in
  let r =
    Flush_reload.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Flush_reload.default_config with Flush_reload.trials = 300 }
  in
  (* PID tags: the attacker's reloads never hit on victim fetches. *)
  Array.iter
    (fun h -> Alcotest.(check (float 1e-9)) "zero hit rate" 0. h)
    r.Flush_reload.line_hit_rate;
  Alcotest.(check bool) "no recovery" false r.Flush_reload.nibble_recovered

let test_flush_reload_rp_flat () =
  let v, _ = make_victim ~spec:Spec.paper_rp () in
  let r =
    Flush_reload.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Flush_reload.default_config with Flush_reload.trials = 300 }
  in
  Alcotest.(check bool) "no recovery" false r.Flush_reload.nibble_recovered

let test_last_round_recovers_master_key () =
  let v, _ = make_victim () in
  let r =
    Last_round.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Last_round.trials = 1200 }
  in
  Alcotest.(check int) "all round-10 bytes" 16 r.Last_round.bytes_correct;
  Alcotest.(check bool) "master key" true r.Last_round.key_recovered;
  Alcotest.(check string) "the actual key" "2b7e151628aed2a6abf7158809cf4f3c"
    r.Last_round.master_key_guess

let test_last_round_newcache_fails () =
  let v, _ = make_victim ~spec:Spec.paper_newcache () in
  let r =
    Last_round.run ~victim:v ~attacker_pid:1 ~rng:(rng ())
      { Last_round.trials = 400 }
  in
  Alcotest.(check bool) "no key" false r.Last_round.key_recovered;
  Alcotest.(check bool) "at most chance-level bytes" true
    (r.Last_round.bytes_correct <= 2)

(* --- Cleaner ------------------------------------------------------------------ *)

let test_cleaner_zero_accesses () =
  Alcotest.(check bool) "k=0 fails" false
    (Cleaner.clean_once Spec.paper_sa ~rng:(rng ()) ~accesses:0)

let test_cleaner_sp_pl_immune () =
  List.iter
    (fun spec ->
      Alcotest.(check (float 0.))
        (Spec.name spec ^ " never cleaned")
        0.
        (Cleaner.monte_carlo spec ~accesses:500 ~samples:50 ~rng:(rng ())))
    [ Spec.paper_sp; Spec.paper_pl ]

let test_cleaner_sa_matches_closed_form () =
  let mc =
    Cleaner.monte_carlo Spec.paper_sa ~accesses:16 ~samples:3000 ~rng:(rng ())
  in
  let cf = Coupon.prob_all_covered ~bins:8 ~trials:16 in
  Alcotest.(check (float 0.05)) "SA matches coupon collector" cf mc

let test_cleaner_lru_step () =
  let spec = Spec.Sa { ways = 8; policy = Replacement.Lru } in
  Alcotest.(check (float 0.)) "k=7 fails" 0.
    (Cleaner.monte_carlo spec ~accesses:7 ~samples:50 ~rng:(rng ()));
  Alcotest.(check (float 0.)) "k=8 succeeds" 1.
    (Cleaner.monte_carlo spec ~accesses:8 ~samples:50 ~rng:(rng ()))

let test_cleaner_newcache_rate () =
  let mc =
    Cleaner.monte_carlo Spec.paper_newcache ~accesses:64 ~samples:3000
      ~rng:(rng ())
  in
  let cf = 1. -. ((511. /. 512.) ** 64.) in
  Alcotest.(check (float 0.03)) "newcache line eviction rate" cf mc

let test_cleaner_re_free_lunch () =
  let sa = Spec.Sa { ways = 8; policy = Replacement.Lru } in
  let re = Spec.Re { ways = 8; policy = Replacement.Lru; interval = 2 } in
  (* With LRU and interval 2, k=6 gives 6+3 = 9 >= 8 effective evictions
     sometimes; in the simulator the free lunches land anywhere, so just
     check RE >= SA at the LRU boundary. *)
  let p_sa = Cleaner.monte_carlo sa ~accesses:7 ~samples:400 ~rng:(rng ()) in
  let p_re = Cleaner.monte_carlo re ~accesses:7 ~samples:400 ~rng:(rng ()) in
  Alcotest.(check bool) "free lunch helps" true (p_re >= p_sa)

let test_cleaner_sweep_monotone () =
  let pts =
    Cleaner.sweep Spec.paper_sa ~accesses_list:[ 8; 16; 32; 64 ] ~samples:800
      ~rng:(rng ())
  in
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "roughly monotone" true (b >= a -. 0.08);
      check rest
    | _ -> ()
  in
  check pts

let () =
  Alcotest.run "attacks"
    [
      ( "layout",
        [
          Alcotest.test_case "geometry" `Quick test_layout_geometry;
          Alcotest.test_case "mapping" `Quick test_layout_mapping;
          Alcotest.test_case "base offset" `Quick test_layout_base;
          Alcotest.test_case "validation" `Quick test_layout_validation;
        ] );
      ( "victim",
        [
          Alcotest.test_case "ciphertext correct" `Quick test_victim_ciphertext_correct;
          Alcotest.test_case "warm is fast" `Quick test_victim_warm_then_fast;
          Alcotest.test_case "cold is slow" `Quick test_victim_cold_cost;
          Alcotest.test_case "lock tables" `Quick test_victim_lock_tables;
          Alcotest.test_case "random plaintext" `Quick test_random_plaintext;
        ] );
      ( "attacker",
        [
          Alcotest.test_case "conflict lines" `Quick test_conflict_lines;
          Alcotest.test_case "prime/probe cycle" `Quick test_prime_probe_cycle;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "nth conflict line" `Quick test_nth_conflict_line;
          Alcotest.test_case "probe plan = attacker probes" `Quick
            test_probe_plan_matches_attacker;
          Alcotest.test_case "encrypt_traced_into = encrypt_traced" `Quick
            test_encrypt_traced_into_matches;
          Alcotest.test_case "encrypt_misses = encrypt_timed" `Quick
            test_encrypt_misses_matches_timed;
          Alcotest.test_case "random_plaintext_into stream" `Quick
            test_random_plaintext_into_stream;
          Alcotest.test_case "probe plan steady state is zero-alloc" `Quick
            test_probe_plan_zero_alloc;
          Alcotest.test_case "trial allocation budget" `Quick
            test_prime_probe_trial_alloc_budget;
        ] );
      ( "golden",
        [
          Alcotest.test_case "evict-time bit-identical" `Slow
            (test_golden "evict-time");
          Alcotest.test_case "prime-probe bit-identical" `Slow
            (test_golden "prime-probe");
          Alcotest.test_case "flush-reload bit-identical" `Slow
            (test_golden "flush-reload");
          Alcotest.test_case "collision bit-identical" `Slow
            (test_golden "collision");
        ] );
      ( "recovery",
        [
          Alcotest.test_case "argmax & rank" `Quick test_recovery_argmax_rank;
          Alcotest.test_case "normalize" `Quick test_recovery_normalize;
          Alcotest.test_case "grouping" `Quick test_recovery_grouping;
          Alcotest.test_case "separation" `Quick test_recovery_separation;
          prop_normalize_range;
        ] );
      ( "evict-and-time",
        [
          Alcotest.test_case "sa recovers" `Slow test_evict_time_sa_recovers;
          Alcotest.test_case "sp protected" `Quick test_evict_time_sp_protected;
          Alcotest.test_case "pl locked protected" `Quick
            test_evict_time_pl_locked_protected;
          Alcotest.test_case "validation" `Quick test_evict_time_validation;
        ] );
      ( "prime-and-probe",
        [
          Alcotest.test_case "sa recovers" `Slow test_prime_probe_sa_recovers;
          Alcotest.test_case "newcache protected" `Quick
            test_prime_probe_newcache_protected;
        ] );
      ( "cache-collision",
        [
          Alcotest.test_case "sa signal" `Slow test_collision_sa_signal;
          Alcotest.test_case "rf flat" `Slow test_collision_rf_flat;
          Alcotest.test_case "validation" `Quick test_collision_validation;
        ] );
      ( "flush-and-reload",
        [
          Alcotest.test_case "sa recovers" `Quick test_flush_reload_sa_recovers;
          Alcotest.test_case "newcache flat" `Quick test_flush_reload_newcache_flat;
          Alcotest.test_case "rp flat" `Quick test_flush_reload_rp_flat;
        ] );
      ( "last round",
        [
          Alcotest.test_case "recovers the master key" `Slow
            test_last_round_recovers_master_key;
          Alcotest.test_case "newcache fails" `Quick test_last_round_newcache_fails;
        ] );
      ( "cleaner",
        [
          Alcotest.test_case "zero accesses" `Quick test_cleaner_zero_accesses;
          Alcotest.test_case "sp & pl immune" `Quick test_cleaner_sp_pl_immune;
          Alcotest.test_case "sa closed form" `Quick test_cleaner_sa_matches_closed_form;
          Alcotest.test_case "lru step" `Quick test_cleaner_lru_step;
          Alcotest.test_case "newcache rate" `Quick test_cleaner_newcache_rate;
          Alcotest.test_case "re free lunch" `Quick test_cleaner_re_free_lunch;
          Alcotest.test_case "sweep monotone" `Quick test_cleaner_sweep_monotone;
        ] );
    ]
