(* Distributional tests: the randomization claims the security analysis
   rests on, checked with chi-square goodness of fit instead of loose
   min/max bounds. All RNGs are seeded, so these are deterministic. *)

open Cachesec_stats
open Cachesec_cache

let rng () = Rng.create ~seed:6021

let check_uniform name counts =
  let p = Chi2.uniform_fit ~observed:counts in
  if not (Chi2.fits_uniform counts) then
    Alcotest.failf "%s: uniformity rejected (p = %g, counts %s)" name p
      (String.concat ","
         (Array.to_list (Array.map string_of_int counts)))

(* --- Chi2 machinery itself ------------------------------------------------ *)

let test_chi2_statistic () =
  Alcotest.(check (float 1e-9)) "perfect fit" 0.
    (Chi2.statistic ~observed:[| 10; 10 |] ~expected:[| 10.; 10. |]);
  Alcotest.(check (float 1e-9)) "known value" 2.
    (Chi2.statistic ~observed:[| 15; 5 |] ~expected:[| 10.; 10. |]
     |> fun x -> x /. 2.5)

let test_chi2_cdf () =
  (* Known chi-square quantiles: P(X^2_10 <= 18.31) = 0.95. *)
  Alcotest.(check (float 5e-3)) "df=10 95%" 0.95 (Chi2.cdf ~df:10 18.307);
  Alcotest.(check (float 5e-3)) "df=5 median" 0.5 (Chi2.cdf ~df:5 4.351);
  Alcotest.(check (float 1e-9)) "zero" 0. (Chi2.cdf ~df:3 0.)

let test_chi2_critical_value () =
  let cv = Chi2.critical_value ~df:10 ~alpha:0.05 in
  Alcotest.(check (float 0.15)) "df=10 alpha 5%" 18.31 cv

let test_chi2_detects_bias () =
  (* A clearly skewed sample must be rejected. *)
  let counts = Array.init 8 (fun i -> if i = 0 then 500 else 100) in
  Alcotest.(check bool) "bias rejected" false (Chi2.fits_uniform counts)

let test_chi2_accepts_uniform () =
  let r = rng () in
  let counts = Array.make 16 0 in
  for _ = 1 to 16000 do
    let i = Rng.int r 16 in
    counts.(i) <- counts.(i) + 1
  done;
  check_uniform "rng uniform" counts

(* --- Replacement randomness ------------------------------------------------ *)

let test_sa_replacement_uniform () =
  (* Which victim line does an attacker access evict from a full set? *)
  let counts = Array.make 8 0 in
  let r = rng () in
  for _ = 1 to 8000 do
    let sa = Sa.create ~rng:(Rng.split r) () in
    let sets = Config.sets (Sa.config sa) in
    for k = 0 to 7 do
      ignore (Sa.access sa ~pid:0 (3 + (k * sets)))
    done;
    let o = Sa.access sa ~pid:1 (3 + (8 * sets)) in
    match Outcome.evictions o with
    | [ (_, line) ] -> counts.(line / sets) <- counts.(line / sets) + 1
    | _ -> Alcotest.fail "expected exactly one eviction"
  done;
  check_uniform "sa victim way" counts

let test_newcache_eviction_uniform () =
  (* Group the 512 physical slots into 16 buckets. *)
  let counts = Array.make 16 0 in
  let r = rng () in
  let nc = Newcache.create ~rng:(Rng.split r) () in
  for i = 0 to 511 do
    ignore (Newcache.access nc ~pid:0 i)
  done;
  for i = 0 to 15999 do
    let o = Newcache.access nc ~pid:0 (1000 + i) in
    List.iter
      (fun (_, line) ->
        (* Bucket victims by their line number modulo 16: a uniform slot
           choice gives uniform victims over any partition of the
           resident lines. *)
        counts.(line mod 16) <- counts.(line mod 16) + 1)
      (Outcome.evictions o)
  done;
  check_uniform "newcache eviction" counts

let test_rf_window_uniform () =
  (* The filled line must be uniform over the window. *)
  let r = rng () in
  let rf = Rf.create ~rng:(Rng.split r) () in
  Rf.set_window rf ~pid:0 ~back:8 ~fwd:8;
  let counts = Array.make 17 0 in
  for i = 0 to 16999 do
    let addr = 1000 + (i * 100) in
    let o = Rf.access rf ~pid:0 addr in
    match o.Outcome.fetched with
    | Some l -> counts.(l - addr + 8) <- counts.(l - addr + 8) + 1
    | None -> ()  (* window line already cached: rare, skip *)
  done;
  check_uniform "rf window fill" counts

let test_rp_interference_set_uniform () =
  (* On an external miss the randomly chosen set must be uniform. *)
  let r = rng () in
  let counts = Array.make 64 0 in
  for _ = 1 to 6400 do
    let rp = Rp.create ~rng:(Rng.split r) () in
    let sets = Config.sets (Rp.config rp) in
    (* Victim fills his set 9 completely. *)
    for k = 0 to 7 do
      ignore (Rp.access rp ~pid:0 (9 + (k * sets)))
    done;
    (* First attacker access to logical set 9 interferes. *)
    let o = Rp.access rp ~pid:1 (100032 + 9) in
    match Outcome.evictions o with
    | [ (_, line) ] -> counts.(line mod sets) <- counts.(line mod sets) + 1
    | [] -> ()  (* random set had an invalid way: no victim line *)
    | _ -> Alcotest.fail "one eviction at most"
  done;
  (* Only set 9 is full, so evictions from other sets never happen (all
     invalid) - instead check the *attacker line placement*: count where
     his line landed. Simpler: the eviction count for set 9 must be
     close to 6400/64. *)
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "evictions only from the full set" true
    (counts.(9) = total);
  Alcotest.(check (float 30.)) "set 9 hit ~1/64 of the time" 100.
    (float_of_int total)

let test_re_slot_uniform () =
  let r = rng () in
  let re = Re.create ~interval:1 ~rng:(Rng.split r) () in
  (* Fill the whole direct-mapped cache so every periodic eviction
     displaces a line whose slot we can bucket. *)
  for i = 0 to 511 do
    ignore (Re.access re ~pid:0 i)
  done;
  let counts = Array.make 16 0 in
  for i = 0 to 15999 do
    let o = Re.access re ~pid:0 (i mod 512) in
    List.iter
      (fun (_, line) -> counts.(line mod 16) <- counts.(line mod 16) + 1)
      (Outcome.evictions o)
  done;
  check_uniform "re periodic slot" counts

let test_skewed_bank_uniform () =
  (* Evicted victims, bucketed by line mod 8, must look uniform: the
     bank choice is random and the slot hashes scatter the partition. *)
  let r = rng () in
  let counts = Array.make 8 0 in
  let c = Skewed.create ~rng:(Rng.split r) () in
  (* Fill everything so each miss displaces a resident line. *)
  for i = 0 to 4095 do
    ignore (Skewed.access c ~pid:0 i)
  done;
  for i = 0 to 7999 do
    let o = Skewed.access c ~pid:0 (200000 + i) in
    List.iter
      (fun (_, line) -> counts.(line land 7) <- counts.(line land 7) + 1)
      (Outcome.evictions o)
  done;
  check_uniform "skewed eviction spread" counts

(* --- Noise distribution ------------------------------------------------------ *)

let test_gaussian_histogram () =
  (* Bucket N(0,1) draws into 8 equiprobable cells via the inverse CDF
     boundaries and chi-square the counts. *)
  let r = rng () in
  let boundaries =
    (* z-values splitting the normal into octiles. *)
    [| -1.1503; -0.6745; -0.3186; 0.; 0.3186; 0.6745; 1.1503 |]
  in
  let counts = Array.make 8 0 in
  for _ = 1 to 16000 do
    let z = Rng.gaussian r ~mu:0. ~sigma:1. in
    let rec cell i =
      if i >= Array.length boundaries then i
      else if z < boundaries.(i) then i
      else cell (i + 1)
    in
    let c = cell 0 in
    counts.(c) <- counts.(c) + 1
  done;
  check_uniform "gaussian octiles" counts

let test_noisy_observation_matches_p5 () =
  (* The empirical per-observation success rate equals Phi(1/2sigma). *)
  let r = rng () in
  List.iter
    (fun sigma ->
      let n = 30000 in
      let correct = ref 0 in
      for i = 1 to n do
        let event = if i land 1 = 0 then Outcome.Hit else Outcome.Miss in
        let t = Timing.observe r ~sigma event in
        if Timing.classify t = event then incr correct
      done;
      let expected = Cachesec_analysis.Noise.p5 ~sigma in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "p5 at sigma %g" sigma)
        expected
        (float_of_int !correct /. float_of_int n))
    [ 0.25; 0.5; 1.0; 2.0 ]

(* --- Workload distributions ---------------------------------------------------- *)

let test_zipf_proportions () =
  (* The two most popular ranks should obey the 1/r law within noise. *)
  let r = rng () in
  let trace =
    Workload.generate
      (Workload.Zipf { base = 0; range = 64; exponent = 1.0 })
      r ~accesses:60000
  in
  let counts = Array.make 64 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) trace;
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let ratio = float_of_int sorted.(0) /. float_of_int sorted.(1) in
  Alcotest.(check (float 0.25)) "rank1/rank2 ~ 2" 2. ratio

let test_uniform_workload_fits () =
  let r = rng () in
  let trace =
    Workload.generate (Workload.Uniform { base = 0; range = 32 }) r
      ~accesses:32000
  in
  let counts = Array.make 32 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) trace;
  check_uniform "uniform workload" counts

let () =
  Alcotest.run "distributions"
    [
      ( "chi-square machinery",
        [
          Alcotest.test_case "statistic" `Quick test_chi2_statistic;
          Alcotest.test_case "cdf" `Quick test_chi2_cdf;
          Alcotest.test_case "critical value" `Quick test_chi2_critical_value;
          Alcotest.test_case "detects bias" `Quick test_chi2_detects_bias;
          Alcotest.test_case "accepts uniform" `Quick test_chi2_accepts_uniform;
        ] );
      ( "cache randomness",
        [
          Alcotest.test_case "sa replacement uniform" `Slow
            test_sa_replacement_uniform;
          Alcotest.test_case "newcache eviction uniform" `Quick
            test_newcache_eviction_uniform;
          Alcotest.test_case "rf window uniform" `Quick test_rf_window_uniform;
          Alcotest.test_case "rp interference" `Slow
            test_rp_interference_set_uniform;
          Alcotest.test_case "re slot uniform" `Quick test_re_slot_uniform;
          Alcotest.test_case "skewed spread" `Quick test_skewed_bank_uniform;
        ] );
      ( "noise",
        [
          Alcotest.test_case "gaussian octiles" `Quick test_gaussian_histogram;
          Alcotest.test_case "p5 empirical" `Quick
            test_noisy_observation_matches_p5;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "zipf proportions" `Quick test_zipf_proportions;
          Alcotest.test_case "uniform workload" `Quick test_uniform_workload_fits;
        ] );
    ]
