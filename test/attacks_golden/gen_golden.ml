(* Regenerate the attack golden digests from the CURRENT attack code.

   Only run this when a change to attack behaviour is intended; the
   whole point of the recorded file is that pure performance work (the
   probe-plan fast path) must NOT change it. Usage:

     dune exec test/attacks_golden/gen_golden.exe -- test/golden/attacks.golden *)

open Attacks_workload

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "attacks.golden"
  in
  let entries = Workload.all_digests () in
  Workload.write_golden ~path entries;
  List.iter (fun (name, d) -> Printf.printf "%-24s %s\n" name d) entries;
  Printf.printf "wrote %d attack golden digests to %s\n" (List.length entries)
    path
