(* Shared deterministic workload for the attack golden-digest suite.

   [all_digests] runs each of the four attack classes once per paper
   architecture (a miniature validation-matrix cell: same Setup
   discipline as Driver, PL locked exactly where the validation matrix
   locks it) and folds every field of the attack's [result] record —
   float arrays rendered with "%h" so the digest is bit-exact, not
   rounded — into one MD5 hex digest per cell.

   The recorded digests under test/golden/attacks.golden were produced
   by the PRE-fast-path attack loops (list-building conflict sets,
   per-set probe records, allocating AES traces). test_attacks replays
   this exact workload against the current attack code and demands
   bit-identical digests: the zero-allocation fast path must not change
   a single trial's RNG draws, access order, or arithmetic. Regenerate
   only when a change to attack BEHAVIOUR (not performance) is
   intended:

     dune exec test/attacks_golden/gen_golden.exe -- test/golden/attacks.golden *)

open Cachesec_cache
open Cachesec_attacks
open Cachesec_experiments

let golden_seed = 1789

(* Small but meaningful trial counts: enough for every architecture to
   exercise eviction, probing, classification and scoring, small enough
   that the whole suite replays in seconds. *)
let evict_time_trials = 3000
let prime_probe_trials = 200
let flush_reload_trials = 200
let collision_trials = 3000

let fmt_float buf x = Buffer.add_string buf (Printf.sprintf "%h;" x)
let fmt_int buf x = Buffer.add_string buf (string_of_int x ^ ";")
let fmt_bool buf b = Buffer.add_char buf (if b then 'T' else 'F')
let fmt_farr buf a = Array.iter (fmt_float buf) a
let fmt_iarr buf a = Array.iter (fmt_int buf) a

(* The validation matrix's own convention: PL is exercised as intended,
   prefetch-and-lock. *)
let lock_for spec = match spec with Spec.Pl _ -> true | _ -> false

let digest_evict_time spec =
  let s = Setup.make ~seed:golden_seed spec in
  let r =
    Evict_time.run ~victim:s.Setup.victim ~attacker_pid:s.Setup.attacker_pid
      ~rng:s.Setup.rng
      {
        Evict_time.default_config with
        Evict_time.trials = evict_time_trials;
        lock_victim_tables = lock_for spec;
      }
  in
  let buf = Buffer.create 8192 in
  fmt_farr buf r.Evict_time.avg_times;
  fmt_iarr buf r.Evict_time.counts;
  fmt_farr buf r.Evict_time.scores;
  fmt_int buf r.Evict_time.best_candidate;
  fmt_int buf r.Evict_time.true_byte;
  fmt_bool buf r.Evict_time.nibble_recovered;
  fmt_float buf r.Evict_time.separation;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_prime_probe spec =
  let s = Setup.make ~seed:golden_seed spec in
  let r =
    Prime_probe.run ~victim:s.Setup.victim ~attacker_pid:s.Setup.attacker_pid
      ~rng:s.Setup.rng
      {
        Prime_probe.default_config with
        Prime_probe.trials = prime_probe_trials;
        lock_victim_tables = lock_for spec;
      }
  in
  let buf = Buffer.create 8192 in
  fmt_farr buf r.Prime_probe.set_miss_rate;
  fmt_farr buf r.Prime_probe.scores;
  fmt_int buf r.Prime_probe.best_candidate;
  fmt_int buf r.Prime_probe.true_byte;
  fmt_bool buf r.Prime_probe.nibble_recovered;
  fmt_float buf r.Prime_probe.separation;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_flush_reload spec =
  let s = Setup.make ~seed:golden_seed spec in
  let r =
    Flush_reload.run ~victim:s.Setup.victim ~attacker_pid:s.Setup.attacker_pid
      ~rng:s.Setup.rng
      { Flush_reload.default_config with Flush_reload.trials = flush_reload_trials }
  in
  let buf = Buffer.create 8192 in
  fmt_farr buf r.Flush_reload.line_hit_rate;
  fmt_farr buf r.Flush_reload.scores;
  fmt_int buf r.Flush_reload.best_candidate;
  fmt_int buf r.Flush_reload.true_byte;
  fmt_bool buf r.Flush_reload.nibble_recovered;
  fmt_float buf r.Flush_reload.separation;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_collision spec =
  let s = Setup.make ~seed:golden_seed spec in
  let r =
    Collision.run ~victim:s.Setup.victim ~rng:s.Setup.rng
      { Collision.default_config with Collision.trials = collision_trials }
  in
  let buf = Buffer.create 8192 in
  fmt_farr buf r.Collision.avg_times;
  fmt_iarr buf r.Collision.counts;
  fmt_farr buf r.Collision.scores;
  fmt_int buf r.Collision.best_delta;
  fmt_int buf r.Collision.true_delta;
  fmt_bool buf r.Collision.nibble_recovered;
  fmt_float buf r.Collision.separation;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let attacks =
  [
    ("evict-time", digest_evict_time);
    ("prime-probe", digest_prime_probe);
    ("flush-reload", digest_flush_reload);
    ("collision", digest_collision);
  ]

let cases () =
  List.concat_map
    (fun spec ->
      List.map
        (fun (attack, f) ->
          (Spec.name spec ^ ":" ^ attack, fun () -> f spec))
        attacks)
    Spec.all_paper

let all_digests () = List.map (fun (name, f) -> (name, f ())) (cases ())

(* --- golden file I/O: "name digest" per line (same format as the
   hot-path golden file) --------------------------------------------- *)

let write_golden ~path entries =
  let oc = open_out path in
  List.iter (fun (name, d) -> Printf.fprintf oc "%s %s\n" name d) entries;
  close_out oc

let read_golden ~path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match String.index_opt line ' ' with
         | Some i ->
           entries :=
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
             :: !entries
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries
