(* The telemetry subsystem's contract:

   - spans nest (parent ids, LIFO close, non-negative durations);
   - counters merged across scheduler workers are bit-identical for
     jobs:1 and jobs:N (timings are the only thing allowed to vary);
   - the JSON sink round-trips through its own reader under the
     versioned telemetry/v1 schema;
   - the null context allocates nothing (the hot-path guarantee the
     zero-alloc engine gates rely on). *)

open Cachesec_telemetry
open Cachesec_runtime
open Cachesec_cache
open Cachesec_experiments

let with_memory_tm f =
  let sink, events = Sink.memory () in
  let tm = Telemetry.make ~sink () in
  let r = f tm in
  Telemetry.close tm;
  (r, events ())

(* --- span nesting ---------------------------------------------------- *)

let test_span_nesting () =
  let (outer_id, inner_id), events =
    with_memory_tm @@ fun tm ->
    Telemetry.with_span tm "outer" @@ fun outer ->
    let inner_id =
      Telemetry.with_span tm ~parent:outer "inner" @@ fun inner ->
      Telemetry.span_id inner
    in
    (Telemetry.span_id outer, inner_id)
  in
  Alcotest.(check bool) "ids distinct" true (outer_id <> inner_id);
  Alcotest.(check bool) "ids positive" true (outer_id > 0 && inner_id > 0);
  let starts =
    List.filter_map
      (function
        | Event.Span_start { id; parent; _ } -> Some (id, parent)
        | _ -> None)
      events
  in
  Alcotest.(check (list (pair int int)))
    "outer rooted, inner under outer"
    [ (outer_id, 0); (inner_id, outer_id) ]
    starts;
  let ends =
    List.filter_map
      (function
        | Event.Span_end { id; dur_s; _ } -> Some (id, dur_s)
        | _ -> None)
      events
  in
  (* LIFO close: inner ends before outer. *)
  Alcotest.(check (list int))
    "LIFO close order" [ inner_id; outer_id ] (List.map fst ends);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "non-negative duration" true (d >= 0.))
    ends

let test_with_span_closes_on_exception () =
  let (), events =
    with_memory_tm @@ fun tm ->
    try Telemetry.with_span tm "bang" (fun _ -> failwith "boom")
    with Failure _ -> ()
  in
  let ends =
    List.filter (function Event.Span_end _ -> true | _ -> false) events
  in
  Alcotest.(check int) "span closed despite exception" 1 (List.length ends)

(* --- scheduler batch events ------------------------------------------ *)

let test_scheduler_batch_events () =
  let n = 12 in
  let results, events =
    with_memory_tm @@ fun tm ->
    Telemetry.with_span tm "work" @@ fun sp ->
    Scheduler.map_array ~jobs:3 ~tm ~span:sp (fun i -> i * i)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check (array int))
    "results unchanged by instrumentation"
    (Array.init n (fun i -> i * i))
    results;
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "one Batch_start per unit" n
    (count (function Event.Batch_start _ -> true | _ -> false));
  Alcotest.(check int) "one Batch_end per unit" n
    (count (function Event.Batch_end _ -> true | _ -> false));
  let busy_units =
    List.filter_map
      (function Event.Domain_busy { units; _ } -> Some units | _ -> None)
      events
  in
  Alcotest.(check bool) "at least one worker summary" true (busy_units <> []);
  Alcotest.(check int) "workers claimed every unit exactly once" n
    (List.fold_left ( + ) 0 busy_units)

(* --- counter merge: jobs:1 vs jobs:N --------------------------------- *)

let counters_for ~jobs =
  let sink, _ = Sink.memory () in
  let tm = Telemetry.make ~sink () in
  let ctx = Run.with_telemetry tm (Run.make ~jobs ~seed:42 ()) in
  let cfg =
    { Cachesec_attacks.Flush_reload.default_config with
      Cachesec_attacks.Flush_reload.trials = 600 (* spans 3 batches of 256 *)
    }
  in
  ignore (Driver.run_flush_reload ctx Spec.paper_sa cfg);
  ignore (Driver.run_cleaning_game ctx Spec.paper_sa ~accesses:16 ~samples:600);
  let cs = Telemetry.counters tm in
  Telemetry.close tm;
  cs

let test_counter_merge_jobs_invariant () =
  let c1 = counters_for ~jobs:1 in
  let c4 = counters_for ~jobs:4 in
  Alcotest.(check (list (pair string int)))
    "merged counters identical for jobs:1 and jobs:4" c1 c4;
  (* And they actually counted the engine traffic. *)
  Alcotest.(check bool) "cache.accesses present and positive" true
    (match List.assoc_opt "cache.accesses" c1 with
    | Some v -> v > 0
    | None -> false);
  Alcotest.(check int) "driver.trials totalled" 1200
    (Option.value ~default:0 (List.assoc_opt "driver.trials" c1))

let test_domain_local_counts_merge () =
  let (), _ =
    with_memory_tm @@ fun tm ->
    (* Counts from several scheduler workers land in per-domain tables;
       the merged view must be the plain sum. *)
    ignore
      (Scheduler.map_array ~jobs:4
         (fun i ->
           Telemetry.count tm "units" 1;
           Telemetry.count tm "weighted" i;
           i)
         (Array.init 32 (fun i -> i)));
    Alcotest.(check (list (pair string int)))
      "name-sorted sums"
      [ ("units", 32); ("weighted", 32 * 31 / 2) ]
      (Telemetry.counters tm)
  in
  ()

(* --- JSON sink round-trip -------------------------------------------- *)

let sample_events =
  [
    Event.Span_start { id = 1; parent = 0; name = "campaign"; t_s = 0.5 };
    Event.Gauge { span = 1; name = "trials"; value = 5000.; t_s = 0.5 };
    Event.Batch_start { span = 1; index = 0; total = 2; domain = 0; t_s = 0.5 };
    Event.Batch_end
      { span = 1; index = 0; total = 2; domain = 0; t_s = 0.75; dur_s = 0.25 };
    Event.Domain_busy { span = 1; domain = 0; busy_s = 0.25; units = 1 };
    Event.Span_end
      { id = 1; parent = 0; name = "campaign"; t_s = 1.25; dur_s = 0.75 };
    Event.Counter_total { name = "cache.accesses"; value = 123456 };
  ]

let test_event_line_round_trip () =
  List.iter
    (fun e ->
      let line = Event.to_json_line e in
      match Event.of_json_line line with
      | Some e' ->
        Alcotest.(check bool) ("round-trips: " ^ line) true (e = e')
      | None -> Alcotest.failf "unparseable line: %s" line)
    sample_events;
  Alcotest.(check bool) "non-event lines rejected" true
    (Event.of_json_line "{\"schema\": \"telemetry/v1\"}" = None
    && Event.of_json_line "]" = None)

let test_json_sink_round_trip () =
  let path = Filename.temp_file "telemetry" ".json" in
  let tm = Telemetry.make ~sink:(Sink.json ~run:"test" ~path ()) () in
  Telemetry.with_span tm "outer" (fun sp ->
      Telemetry.gauge tm ~span:sp "trials" 42.;
      Telemetry.count tm "cache.accesses" 7);
  Telemetry.close tm;
  (match Sink.read_json ~path with
  | None -> Alcotest.fail "written file did not parse"
  | Some (schema, run, events) ->
    Alcotest.(check string) "schema version" Sink.schema_version schema;
    Alcotest.(check string) "run name" "test" run;
    let names =
      List.filter_map
        (function
          | Event.Span_start { name; _ } -> Some ("start:" ^ name)
          | Event.Span_end { name; _ } -> Some ("end:" ^ name)
          | Event.Gauge { name; _ } -> Some ("gauge:" ^ name)
          | Event.Counter_total { name; value } ->
            Some (Printf.sprintf "counter:%s=%d" name value)
          | _ -> None)
        events
    in
    Alcotest.(check (list string))
      "event stream (counter totals flushed at close)"
      [ "start:outer"; "gauge:trials"; "end:outer";
        "counter:cache.accesses=7" ]
      names);
  Sys.remove path

let test_default_json_path () =
  Alcotest.(check string)
    "conventional path" "results/TELEMETRY_bench.json"
    (Sink.default_json_path ~run:"bench")

let test_progress_sink_smoke () =
  (* The human sink must tolerate a full event stream without raising;
     content is for eyeballs, not assertions. *)
  let path = Filename.temp_file "progress" ".txt" in
  let oc = open_out path in
  let tm = Telemetry.make ~sink:(Sink.progress ~out:oc ()) () in
  Telemetry.with_span tm "outer" (fun sp ->
      Telemetry.gauge tm ~span:sp "trials" 10.;
      ignore
        (Scheduler.map_array ~jobs:2 ~tm ~span:sp (fun i -> i)
           (Array.init 20 (fun i -> i))));
  Telemetry.count tm "cache.accesses" 5;
  Telemetry.close tm;
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "wrote something human-readable" true (len > 0)

(* --- null context is free -------------------------------------------- *)

let test_null_is_null () =
  Alcotest.(check bool) "null is null" true (Telemetry.is_null Telemetry.null);
  let sink, _ = Sink.memory () in
  Alcotest.(check bool) "active is not null" false
    (Telemetry.is_null (Telemetry.make ~sink ()));
  Alcotest.(check int) "null span id" 0 (Telemetry.span_id Telemetry.null_span)

let test_null_context_zero_alloc () =
  let tm = Telemetry.null in
  let ops () =
    for _ = 1 to 10_000 do
      let sp = Telemetry.span tm "name" in
      Telemetry.count tm "counter" 1;
      Telemetry.batch_start tm ~span:sp ~index:0 ~total:1 ~domain:0 ~t_s:0.;
      Telemetry.batch_end tm ~span:sp ~index:0 ~total:1 ~domain:0 ~start_s:0.;
      Telemetry.close_span tm sp
    done
  in
  ops ();
  (* Warmed up; now the measured pass. *)
  let before = Gc.minor_words () in
  ops ();
  let words = Gc.minor_words () -. before in
  Alcotest.(check (float 0.))
    "null telemetry allocates nothing" 0. words

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "close on exception" `Quick
            test_with_span_closes_on_exception;
          Alcotest.test_case "scheduler batch events" `Quick
            test_scheduler_batch_events;
        ] );
      ( "counters",
        [
          Alcotest.test_case "merge jobs-invariant" `Quick
            test_counter_merge_jobs_invariant;
          Alcotest.test_case "domain-local merge" `Quick
            test_domain_local_counts_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "event line round-trip" `Quick
            test_event_line_round_trip;
          Alcotest.test_case "sink round-trip" `Quick test_json_sink_round_trip;
          Alcotest.test_case "default path" `Quick test_default_json_path;
          Alcotest.test_case "progress sink smoke" `Quick
            test_progress_sink_smoke;
        ] );
      ( "null",
        [
          Alcotest.test_case "is_null" `Quick test_null_is_null;
          Alcotest.test_case "zero allocation" `Quick
            test_null_context_zero_alloc;
        ] );
    ]
