(* Tests for the post-paper extensions: the skewed cache, workload
   generators, performance measurement, multi-line analysis, full-key
   recovery and the MI metric comparison. *)

(* These tests deliberately exercise the deprecated optional-tail
   wrappers alongside the Run.ctx primaries: old-vs-new equivalence is
   part of the API-migration contract. *)
[@@@alert "-deprecated"]

open Cachesec_stats
open Cachesec_cache
open Cachesec_analysis
open Cachesec_experiments

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rng () = Rng.create ~seed:2024

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Skewed cache -------------------------------------------------------- *)

let test_skewed_hit_after_fill () =
  let c = Skewed.create ~rng:(rng ()) () in
  Alcotest.(check int) "banks" 8 (Skewed.banks c);
  Alcotest.(check int) "slots" 64 (Skewed.slots_per_bank c);
  ignore (Skewed.access c ~pid:0 7);
  Alcotest.(check bool) "hit" true (Outcome.is_hit (Skewed.access c ~pid:0 7))

let test_skewed_domain_isolation () =
  let c = Skewed.create ~rng:(rng ()) () in
  ignore (Skewed.access c ~pid:0 7);
  Alcotest.(check bool) "cross-domain miss" true
    (Outcome.is_miss (Skewed.access c ~pid:1 7));
  Alcotest.(check bool) "victim copy alive" true (Skewed.peek c ~pid:0 7)

let test_skewed_mappings_differ () =
  let c = Skewed.create ~rng:(rng ()) () in
  (* Two domains agree on a line's slot in a given bank only by chance;
     over 8 banks and many lines, the mappings must differ somewhere. *)
  let differs = ref false in
  for addr = 0 to 63 do
    for bank = 0 to 7 do
      if Skewed.slot_of c ~pid:0 ~bank addr <> Skewed.slot_of c ~pid:1 ~bank addr
      then differs := true
    done
  done;
  Alcotest.(check bool) "per-domain keys" true !differs

let test_skewed_banks_skew () =
  let c = Skewed.create ~rng:(rng ()) () in
  (* A single line maps to (mostly) different slots across banks. *)
  let slots =
    List.sort_uniq compare
      (List.init 8 (fun bank -> Skewed.slot_of c ~pid:0 ~bank 100))
  in
  Alcotest.(check bool) "skewed across banks" true (List.length slots >= 4)

let test_skewed_no_deterministic_conflict () =
  (* Victim parks a line; attacker hammers 500 distinct lines; the victim
     line survives with overwhelming probability only on a keyed cache if
     the attacker cannot aim - expect survival more often than not. *)
  let survived = ref 0 in
  for trial = 0 to 9 do
    let c = Skewed.create ~rng:(Rng.create ~seed:trial) () in
    ignore (Skewed.access c ~pid:0 7);
    for k = 1 to 200 do
      ignore (Skewed.access c ~pid:1 (10000 + k))
    done;
    if Skewed.peek c ~pid:0 7 then incr survived
  done;
  (* Each attacker miss evicts the victim line w.p. 1/512: 200 accesses
     leave it alive w.p. ~0.68. *)
  Alcotest.(check bool) "usually survives" true (!survived >= 4)

let test_skewed_flush () =
  let c = Skewed.create ~rng:(rng ()) () in
  ignore (Skewed.access c ~pid:0 7);
  Alcotest.(check bool) "attacker cannot flush victim copy" false
    (Skewed.flush_line c ~pid:1 7);
  Alcotest.(check bool) "owner flush" true (Skewed.flush_line c ~pid:0 7);
  ignore (Skewed.access c ~pid:0 7);
  Skewed.flush_all c;
  Alcotest.(check bool) "flush all" false (Skewed.peek c ~pid:0 7)

(* --- Workload ------------------------------------------------------------- *)

let test_workload_shapes () =
  let r = rng () in
  let seq = Workload.generate (Workload.Sequential { start = 5; length = 3 }) r ~accesses:5 in
  Alcotest.(check (array int)) "sequential clamps" [| 5; 6; 7; 7; 7 |] seq;
  let loop = Workload.generate (Workload.Loop { start = 0; length = 3 }) r ~accesses:5 in
  Alcotest.(check (array int)) "loop wraps" [| 0; 1; 2; 0; 1 |] loop;
  let strided =
    Workload.generate (Workload.Strided { start = 0; stride = 10; count = 2 }) r ~accesses:4
  in
  Alcotest.(check (array int)) "strided" [| 0; 10; 0; 10 |] strided

let test_workload_uniform_range () =
  let r = rng () in
  let u = Workload.generate (Workload.Uniform { base = 100; range = 50 }) r ~accesses:1000 in
  Array.iter
    (fun l -> Alcotest.(check bool) "in range" true (l >= 100 && l < 150))
    u

let test_workload_zipf_skew () =
  let r = rng () in
  let z =
    Workload.generate (Workload.Zipf { base = 0; range = 100; exponent = 1.2 }) r
      ~accesses:20000
  in
  (* The most popular line should dominate a uniform share. *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    z;
  let top = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) counts 0 in
  Alcotest.(check bool) "zipf head heavy" true (top > 20000 / 100 * 5);
  Array.iter (fun l -> Alcotest.(check bool) "range" true (l >= 0 && l < 100)) z

let test_workload_validation () =
  let r = rng () in
  Alcotest.(check bool) "bad accesses raises" true
    (try
       ignore (Workload.generate (Workload.Loop { start = 0; length = 1 }) r ~accesses:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty range raises" true
    (try
       ignore (Workload.generate (Workload.Uniform { base = 0; range = 0 }) r ~accesses:1);
       false
     with Invalid_argument _ -> true)

let test_workload_hit_rate () =
  let engine =
    Factory.build Spec.paper_sa Factory.default_scenario ~rng:(rng ())
  in
  let hr =
    Workload.hit_rate engine ~pid:0 (Workload.Loop { start = 0; length = 64 })
      ~rng:(rng ()) ~accesses:10000
  in
  (* 64 lines fit trivially: first pass misses, everything else hits. *)
  Alcotest.(check bool) "fitting loop nearly all hits" true (hr > 0.99)

(* --- Performance ------------------------------------------------------------ *)

let test_performance_capacity_cost () =
  (* SP halves the victim's capacity: on a working set that fits SA but
     not half the cache, SA must beat SP clearly. *)
  let loop = Workload.Loop { start = 0; length = 384 } in
  let sa = Performance.measure ~accesses:20000 Spec.paper_sa loop in
  let sp = Performance.measure ~accesses:20000 Spec.paper_sp loop in
  Alcotest.(check bool) "sp capacity cost" true (sa > sp +. 0.2)

let test_performance_conflict_immunity () =
  (* Newcache has no set conflicts: a pathological stride that thrashes
     one set of the SA cache is free on Newcache. *)
  let stride = Workload.Strided { start = 0; stride = 64; count = 48 } in
  let sa = Performance.measure ~accesses:20000 Spec.paper_sa stride in
  let nc = Performance.measure ~accesses:20000 Spec.paper_newcache stride in
  Alcotest.(check bool) "newcache conflict-free" true (nc > 0.9 && sa < 0.2)

let test_performance_table_renders () =
  let s = Performance.hit_rate_table ~accesses:5000 () in
  Alcotest.(check bool) "all archs present" true
    (contains s "Newcache" && contains s "Skewed (ext.)" && contains s "loop 256")

(* --- Multi-line analysis ------------------------------------------------------ *)

let test_multi_reduces_to_single () =
  List.iter
    (fun spec ->
      Alcotest.(check (float 1e-12))
        (Spec.name spec ^ " m=1")
        (Attack_models.pas Attack_type.Evict_and_time spec ())
        (Multi.evict_and_time ~lines:1 spec))
    Spec.all_paper

let test_multi_compounds () =
  Alcotest.(check (float 1e-12)) "sa 4 lines" (0.125 ** 4.)
    (Multi.evict_and_time ~lines:4 Spec.paper_sa);
  Alcotest.(check (float 1e-12)) "re unchanged" 1.0
    (Multi.evict_and_time ~lines:4 Spec.paper_re);
  Alcotest.(check (float 1e-12)) "sp still zero" 0.
    (Multi.evict_and_time ~lines:4 Spec.paper_sp);
  Alcotest.(check (float 1e-30)) "newcache type2 collapses"
    ((1. /. 512.) ** 4. *. (1. /. 512.) ** 4.)
    (Multi.prime_and_probe ~lines:4 Spec.paper_newcache)

let prop_multi_monotone =
  qtest "PAS non-increasing in required lines"
    QCheck.(pair (int_bound 8) (int_range 1 6))
    (fun (which, m) ->
      let spec = List.nth Spec.all_paper which in
      Multi.evict_and_time ~lines:(m + 1) spec
      <= Multi.evict_and_time ~lines:m spec +. 1e-12)

let test_multi_validation () =
  Alcotest.check_raises "zero lines"
    (Invalid_argument "Multi: lines must be positive") (fun () ->
      ignore (Multi.evict_and_time ~lines:0 Spec.paper_sa))

(* --- Full key ------------------------------------------------------------------ *)

let test_full_key_sa () =
  let s = Setup.make ~seed:5 Spec.paper_sa in
  let r =
    Cachesec_attacks.Full_key.flush_reload ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~trials_per_byte:600
  in
  Alcotest.(check int) "all 16 nibbles" 16 r.Cachesec_attacks.Full_key.nibbles_recovered;
  Alcotest.(check int) "64 bits" 64 r.Cachesec_attacks.Full_key.bits_recovered;
  (* The winners' high nibbles must spell the FIPS key's high nibbles. *)
  let key = Cachesec_crypto.Aes.bytes_of_hex Setup.default_key_hex in
  Array.iteri
    (fun i w ->
      Alcotest.(check int)
        (Printf.sprintf "byte %d nibble" i)
        (Char.code (Bytes.get key i) lsr 4)
        (w lsr 4))
    r.Cachesec_attacks.Full_key.per_byte_winner;
  Alcotest.(check bool) "render mentions count" true
    (contains (Cachesec_attacks.Full_key.render r) "16/16")

let test_full_key_newcache_chance () =
  let s = Setup.make ~seed:5 Spec.paper_newcache in
  let r =
    Cachesec_attacks.Full_key.flush_reload ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~trials_per_byte:200
  in
  (* Flat profiles guess nibble 0 for every byte; only bytes whose true
     high nibble is 0 can "succeed" (k = 2b7e...3c has byte 12 = 0x09). *)
  Alcotest.(check bool) "chance level" true
    (r.Cachesec_attacks.Full_key.nibbles_recovered <= 2)

(* --- Metrics --------------------------------------------------------------------- *)

let test_metrics_leaky_vs_protected () =
  let sa = Metrics.run_row ~trials:800 Spec.paper_sa in
  Alcotest.(check bool) "sa transmits ~4 bits" true (sa.Metrics.mi_bits > 3.5);
  let nc = Metrics.run_row ~trials:800 Spec.paper_newcache in
  Alcotest.(check bool) "newcache transmits ~0" true (nc.Metrics.mi_bits < 0.1);
  let rf = Metrics.run_row ~trials:800 Spec.paper_rf in
  Alcotest.(check bool) "rf in between" true
    (rf.Metrics.mi_bits > nc.Metrics.mi_bits && rf.Metrics.mi_bits < 1.5)

let test_metrics_render () =
  let rows =
    [ Metrics.run_row ~trials:300 Spec.paper_sa ] in
  Alcotest.(check bool) "renders" true
    (contains (Metrics.render rows) "MI (bits)")

(* --- Recorder --------------------------------------------------------------------- *)

let test_recorder_basic () =
  let base = Factory.build Spec.paper_sa Factory.default_scenario ~rng:(rng ()) in
  let rec_, wrapped = Recorder.wrap base in
  ignore (wrapped.Engine.access ~pid:0 5);
  ignore (wrapped.Engine.access ~pid:0 5);
  ignore (wrapped.Engine.access ~pid:1 9);
  ignore (wrapped.Engine.flush_line ~pid:1 5);
  Alcotest.(check int) "four events" 4 (Recorder.count rec_);
  let evs = Recorder.events rec_ in
  (match evs with
  | [ e1; e2; e3; e4 ] ->
    Alcotest.(check bool) "first is a miss" false e1.Recorder.hit;
    Alcotest.(check bool) "second is a hit" true e2.Recorder.hit;
    Alcotest.(check int) "third pid" 1 e3.Recorder.pid;
    Alcotest.(check bool) "flush recorded" true (e4.Recorder.kind = `Flush)
  | _ -> Alcotest.fail "expected four events");
  Alcotest.(check (list int)) "lines touched by pid 0" [ 5 ]
    (Recorder.lines_touched rec_ ~pid:0);
  Alcotest.(check int) "csv width" 5
    (List.length (List.hd (Recorder.csv_rows rec_)));
  Recorder.clear rec_;
  Alcotest.(check int) "cleared" 0 (Recorder.count rec_)

let test_recorder_transparent () =
  (* Wrapping must not change cache behaviour. *)
  let trace engine =
    let r = Rng.create ~seed:12 in
    List.init 2000 (fun _ ->
        Cachesec_cache.Outcome.is_hit
          (engine.Engine.access ~pid:(Rng.int r 2) (Rng.int r 300)))
  in
  let plain = Factory.build Spec.paper_sa Factory.default_scenario ~rng:(Rng.create ~seed:4) in
  let _, wrapped =
    Recorder.wrap
      (Factory.build Spec.paper_sa Factory.default_scenario ~rng:(Rng.create ~seed:4))
  in
  Alcotest.(check bool) "identical traces" true (trace plain = trace wrapped)

(* --- SVF --------------------------------------------------------------------------- *)

let test_svf_leaky_vs_protected () =
  let sa = Svf.run_row ~intervals:60 Spec.paper_sa in
  Alcotest.(check bool) "sa positive svf" true (sa.Svf.svf > 0.15);
  let nc = Svf.run_row ~intervals:60 Spec.paper_newcache in
  Alcotest.(check bool) "newcache near zero" true (Float.abs nc.Svf.svf < 0.1);
  let pl = Svf.run_row ~intervals:60 Spec.paper_pl in
  Alcotest.(check bool) "pl locked near zero" true (Float.abs pl.Svf.svf < 0.1)

let test_svf_render () =
  let s = Svf.render [ Svf.run_row ~intervals:30 Spec.paper_sp ] in
  Alcotest.(check bool) "renders" true (contains s "SVF")

(* --- Learning curves ------------------------------------------------------------------ *)

let test_learning_curve_ordering () =
  let grid = [ 100; 400 ] in
  let final c = snd (List.nth c.Learning_curves.points 1) in
  let sa = Learning_curves.run_curve ~seeds:4 ~grid Spec.paper_sa in
  Alcotest.(check (float 0.)) "sa instant" 1. (final sa);
  let nc = Learning_curves.run_curve ~seeds:4 ~grid Spec.paper_newcache in
  Alcotest.(check (float 0.)) "newcache never" 0. (final nc);
  Alcotest.(check bool) "csv rows" true
    (List.length (Learning_curves.csv_rows [ sa; nc ]) = 4)

(* --- Covert channels ---------------------------------------------------------------- *)

let test_covert_set_conflict () =
  let sa = Covert.run_row ~bits:800 Covert.Set_conflict Spec.paper_sa in
  Alcotest.(check bool) "sa conflict channel works" true (sa.Covert.capacity > 0.5);
  let rp = Covert.run_row ~bits:800 Covert.Set_conflict Spec.paper_rp in
  Alcotest.(check bool) "rp kills it" true (rp.Covert.capacity < 0.1);
  let nc = Covert.run_row ~bits:800 Covert.Set_conflict Spec.paper_newcache in
  Alcotest.(check bool) "newcache kills it" true (nc.Covert.capacity < 0.2)

let test_covert_occupancy_universal () =
  List.iter
    (fun spec ->
      let r = Covert.run_row ~bits:400 Covert.Occupancy spec in
      Alcotest.(check bool)
        (Spec.name spec ^ " occupancy survives")
        true
        (r.Covert.capacity > 0.9))
    [ Spec.paper_sa; Spec.paper_sp; Spec.paper_newcache; Spec.paper_rf ]

let test_covert_validation () =
  Alcotest.check_raises "bits" (Invalid_argument "Covert.run_row: bits must be positive")
    (fun () ->
      ignore (Covert.run_row ~bits:0 Covert.Set_conflict Spec.paper_sa))

(* --- Mitigations ---------------------------------------------------------------------- *)

let test_prefetch_blinds_collision () =
  let s = Setup.make ~seed:3 Spec.paper_sa in
  let r =
    Cachesec_attacks.Collision.run ~victim:s.Setup.victim ~rng:s.Setup.rng
      {
        Cachesec_attacks.Collision.default_config with
        Cachesec_attacks.Collision.trials = 3000;
        victim_prefetch = true;
      }
  in
  Alcotest.(check bool) "no recovery" false
    r.Cachesec_attacks.Collision.nibble_recovered;
  (* With everything prefetched every encryption is all-hits: the timing
     bins are exactly constant. *)
  let lo =
    Array.fold_left Float.min infinity r.Cachesec_attacks.Collision.avg_times
  in
  let hi =
    Array.fold_left Float.max neg_infinity r.Cachesec_attacks.Collision.avg_times
  in
  Alcotest.(check (float 1e-9)) "flat timing" lo hi

let test_prefetch_blinds_flush_reload () =
  let s = Setup.make ~seed:3 Spec.paper_sa in
  let r =
    Cachesec_attacks.Flush_reload.run ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      {
        Cachesec_attacks.Flush_reload.default_config with
        Cachesec_attacks.Flush_reload.trials = 500;
        victim_prefetch = true;
      }
  in
  Alcotest.(check bool) "no recovery" false
    r.Cachesec_attacks.Flush_reload.nibble_recovered;
  (* Every line reads as touched. *)
  Array.iter
    (fun h -> Alcotest.(check (float 1e-9)) "all lines hit" 1. h)
    r.Cachesec_attacks.Flush_reload.line_hit_rate

(* --- Extension report ----------------------------------------------------------- *)

let test_skewed_pas_values () =
  let pas = Extension.skewed_pas () in
  Alcotest.(check (float 1e-9)) "type1" (1. /. 512.)
    (List.assoc "Type 1 evict-and-time" pas);
  Alcotest.(check (float 1e-12)) "type2" (1. /. 512. /. 512.)
    (List.assoc "Type 2 prime-and-probe" pas);
  Alcotest.(check (float 0.)) "type4" 0.
    (List.assoc "Type 4 flush-and-reload" pas)

let test_multi_line_report () =
  let s = Extension.multi_line_report ~lines:3 () in
  Alcotest.(check bool) "renders" true (contains s "3 lines")

let () =
  Alcotest.run "extensions"
    [
      ( "skewed cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_skewed_hit_after_fill;
          Alcotest.test_case "domain isolation" `Quick test_skewed_domain_isolation;
          Alcotest.test_case "per-domain mappings" `Quick test_skewed_mappings_differ;
          Alcotest.test_case "banks skew" `Quick test_skewed_banks_skew;
          Alcotest.test_case "no deterministic conflict" `Quick
            test_skewed_no_deterministic_conflict;
          Alcotest.test_case "flush" `Quick test_skewed_flush;
        ] );
      ( "workload",
        [
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "uniform range" `Quick test_workload_uniform_range;
          Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skew;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "hit rate" `Quick test_workload_hit_rate;
        ] );
      ( "performance",
        [
          Alcotest.test_case "sp capacity cost" `Quick test_performance_capacity_cost;
          Alcotest.test_case "newcache conflict immunity" `Quick
            test_performance_conflict_immunity;
          Alcotest.test_case "table renders" `Quick test_performance_table_renders;
        ] );
      ( "multi-line",
        [
          Alcotest.test_case "reduces to single" `Quick test_multi_reduces_to_single;
          Alcotest.test_case "compounds" `Quick test_multi_compounds;
          prop_multi_monotone;
          Alcotest.test_case "validation" `Quick test_multi_validation;
        ] );
      ( "full key",
        [
          Alcotest.test_case "sa recovers 16/16" `Slow test_full_key_sa;
          Alcotest.test_case "newcache chance level" `Quick
            test_full_key_newcache_chance;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "leaky vs protected" `Slow test_metrics_leaky_vs_protected;
          Alcotest.test_case "render" `Quick test_metrics_render;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "basics" `Quick test_recorder_basic;
          Alcotest.test_case "transparent" `Quick test_recorder_transparent;
        ] );
      ( "svf",
        [
          Alcotest.test_case "leaky vs protected" `Quick test_svf_leaky_vs_protected;
          Alcotest.test_case "render" `Quick test_svf_render;
        ] );
      ( "learning curves",
        [
          Alcotest.test_case "pas orders sample complexity" `Slow
            test_learning_curve_ordering;
        ] );
      ( "covert channels",
        [
          Alcotest.test_case "set conflict" `Slow test_covert_set_conflict;
          Alcotest.test_case "occupancy universal" `Slow
            test_covert_occupancy_universal;
          Alcotest.test_case "validation" `Quick test_covert_validation;
        ] );
      ( "mitigations",
        [
          Alcotest.test_case "prefetch blinds collision" `Quick
            test_prefetch_blinds_collision;
          Alcotest.test_case "prefetch blinds flush-reload" `Quick
            test_prefetch_blinds_flush_reload;
        ] );
      ( "extension report",
        [
          Alcotest.test_case "skewed pas" `Quick test_skewed_pas_values;
          Alcotest.test_case "multi-line report" `Quick test_multi_line_report;
        ] );
    ]
