(* Golden-trace equivalence + allocation guard for the zero-allocation
   hot path.

   The digests in test/golden/hotpath.golden were recorded from the
   pre-optimization (seed) engines. Every optimized engine must replay
   the frozen 20k-op workload bit-identically: same per-op outcomes
   (including eviction payloads), same counters, same final line dump.
   Any divergence means the "performance" change altered simulated
   behaviour and must be rejected.

   The allocation guard additionally pins the SA/LRU hit path to
   (essentially) zero minor-heap words per access: a warm cache is
   hammered with hits and the [Gc.minor_words] delta is asserted to be
   far below one word per access. *)

open Cachesec_stats
open Cachesec_cache
open Hotpath_workload

(* Under [dune runtest] the cwd is the test directory (the golden file
   is declared as a dep); under a bare [dune exec] from the repo root it
   lives one level down. *)
let golden_path =
  if Sys.file_exists "golden/hotpath.golden" then "golden/hotpath.golden"
  else "test/golden/hotpath.golden"

let test_golden_traces () =
  let golden = Workload.read_golden ~path:golden_path in
  Alcotest.(check bool)
    "golden file present and non-empty" true
    (List.length golden > 0);
  let current = Workload.all_digests () in
  (* Same case set, same order. *)
  Alcotest.(check (list string))
    "case names" (List.map fst golden) (List.map fst current);
  List.iter2
    (fun (name, want) (_, got) ->
      Alcotest.(check string) (Printf.sprintf "digest %s" name) want got)
    golden current

(* --- allocation guard ------------------------------------------------- *)

let test_sa_lru_hit_path_allocation_free () =
  let rng = Rng.create ~seed:42 in
  let sa = Sa.create ~config:Config.standard ~policy:Replacement.Lru ~rng () in
  let sets = Config.sets (Sa.config sa) in
  (* Warm: make lines 0 .. sets-1 resident (one per set, way 0). *)
  for addr = 0 to sets - 1 do
    ignore (Sa.access sa ~pid:0 addr)
  done;
  (* Hammer hits; every access must return the preallocated
     [Outcome.hit] and allocate nothing on the minor heap. *)
  let iters = 100_000 in
  let before = Gc.minor_words () in
  for i = 0 to iters - 1 do
    ignore (Sa.access sa ~pid:0 (i mod sets))
  done;
  let after = Gc.minor_words () in
  (* Each [Gc.minor_words] call itself boxes a float (2-3 words); allow
     a small constant slack but nothing proportional to [iters]. *)
  let delta = after -. before in
  if delta > 64. then
    Alcotest.failf "SA/LRU hit path allocated %.0f minor words over %d hits"
      delta iters

let test_sa_random_miss_path_allocation_lean () =
  (* Misses allocate the outcome record and its [Some] payloads - a
     small bounded amount, not O(ways) scan lists as before. Budget:
     well under 20 words per access. *)
  let rng = Rng.create ~seed:43 in
  let sa = Sa.create ~config:Config.standard ~policy:Replacement.Random ~rng () in
  let iters = 50_000 in
  (* Distinct tags per set so every access misses and evicts. *)
  let before = Gc.minor_words () in
  for i = 0 to iters - 1 do
    ignore (Sa.access sa ~pid:0 i)
  done;
  let after = Gc.minor_words () in
  let per_access = (after -. before) /. float_of_int iters in
  if per_access > 20. then
    Alcotest.failf "SA/Random miss path allocates %.1f minor words/access"
      per_access

let test_sa_plru_hit_path_allocation_free () =
  (* PLRU hits run [Policy.plru_touch] — an int-array read-modify-write
     walking the tree word — on top of the [last_use] store. Must stay
     off the minor heap like the LRU hit path. *)
  let rng = Rng.create ~seed:44 in
  let sa = Sa.create ~config:Config.standard ~policy:Replacement.Plru ~rng () in
  let sets = Config.sets (Sa.config sa) in
  for addr = 0 to sets - 1 do
    ignore (Sa.access sa ~pid:0 addr)
  done;
  let iters = 100_000 in
  let before = Gc.minor_words () in
  for i = 0 to iters - 1 do
    ignore (Sa.access sa ~pid:0 (i mod sets))
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 64. then
    Alcotest.failf "SA/PLRU hit path allocated %.0f minor words over %d hits"
      delta iters

let test_sa_lfu_miss_path_allocation_lean () =
  (* LFU misses run the contiguous min-frequency scan; like the random
     miss path, only the outcome record itself may allocate. *)
  let rng = Rng.create ~seed:45 in
  let sa = Sa.create ~config:Config.standard ~policy:Replacement.Lfu ~rng () in
  let iters = 50_000 in
  let before = Gc.minor_words () in
  for i = 0 to iters - 1 do
    ignore (Sa.access sa ~pid:0 i)
  done;
  let after = Gc.minor_words () in
  let per_access = (after -. before) /. float_of_int iters in
  if per_access > 20. then
    Alcotest.failf "SA/LFU miss path allocates %.1f minor words/access"
      per_access

let test_sa_mru_miss_path_allocation_lean () =
  (* MRU misses run the max-last-use scan ([Slab.scan_max]). *)
  let rng = Rng.create ~seed:46 in
  let sa = Sa.create ~config:Config.standard ~policy:Replacement.Mru ~rng () in
  let iters = 50_000 in
  let before = Gc.minor_words () in
  for i = 0 to iters - 1 do
    ignore (Sa.access sa ~pid:0 i)
  done;
  let after = Gc.minor_words () in
  let per_access = (after -. before) /. float_of_int iters in
  if per_access > 20. then
    Alcotest.failf "SA/MRU miss path allocates %.1f minor words/access"
      per_access

let () =
  Alcotest.run "hotpath"
    [
      ( "golden-trace",
        [ Alcotest.test_case "all engines bit-identical" `Quick test_golden_traces ] );
      ( "allocation",
        [
          Alcotest.test_case "sa/lru hit path zero-alloc" `Quick
            test_sa_lru_hit_path_allocation_free;
          Alcotest.test_case "sa/random miss path lean" `Quick
            test_sa_random_miss_path_allocation_lean;
          Alcotest.test_case "sa/plru hit path zero-alloc" `Quick
            test_sa_plru_hit_path_allocation_free;
          Alcotest.test_case "sa/lfu miss path lean" `Quick
            test_sa_lfu_miss_path_allocation_lean;
          Alcotest.test_case "sa/mru miss path lean" `Quick
            test_sa_mru_miss_path_allocation_lean;
        ] );
    ]
