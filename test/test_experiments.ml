(* Integration tests: the experiment drivers that regenerate the paper's
   tables and figures, run at reduced scale. *)

(* These tests deliberately exercise the deprecated optional-tail
   wrappers alongside the Run.ctx primaries: old-vs-new equivalence is
   part of the API-migration contract. *)
[@@@alert "-deprecated"]

open Cachesec_cache
open Cachesec_analysis
open Cachesec_experiments

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Setup ------------------------------------------------------------- *)

let test_setup_engines () =
  List.iter
    (fun spec ->
      let s = Setup.make spec in
      Alcotest.(check int) "attacker pid" 1 s.Setup.attacker_pid;
      Alcotest.(check int) "victim pid" 0
        (Cachesec_attacks.Victim.pid s.Setup.victim))
    Spec.all_paper

let test_setup_deterministic () =
  let r1 =
    let s = Setup.make ~seed:9 Spec.paper_sa in
    Cachesec_attacks.Flush_reload.run ~victim:s.Setup.victim ~attacker_pid:1
      ~rng:s.Setup.rng
      { Cachesec_attacks.Flush_reload.default_config with trials = 100 }
  in
  let r2 =
    let s = Setup.make ~seed:9 Spec.paper_sa in
    Cachesec_attacks.Flush_reload.run ~victim:s.Setup.victim ~attacker_pid:1
      ~rng:s.Setup.rng
      { Cachesec_attacks.Flush_reload.default_config with trials = 100 }
  in
  Alcotest.(check (array (Alcotest.float 1e-12)))
    "same seed, same result" r1.Cachesec_attacks.Flush_reload.scores
    r2.Cachesec_attacks.Flush_reload.scores

(* --- Tables -------------------------------------------------------------- *)

let test_tables_render () =
  let t3 = Tables.table3 () in
  Alcotest.(check bool) "t3 title" true (contains t3 "Table 3");
  Alcotest.(check bool) "t3 sa row" true (contains t3 "SA Cache");
  Alcotest.(check bool) "t3 newcache pas" true (contains t3 "1.95e-3");
  let t5 = Tables.table5 () in
  Alcotest.(check bool) "t5 rf" true (contains t5 "7.75e-3");
  let t6 = Tables.table6 () in
  Alcotest.(check bool) "t6 paper columns" true (contains t6 "paper T1");
  let t7 = Tables.table7 () in
  Alcotest.(check bool) "t7 all rows agree with paper" false (contains t7 "NO")

let test_table6_alt_geometry () =
  let s = Tables.table6_alt_geometry () in
  (* SA at 4 ways: Type 1 PAS = 1/4. *)
  Alcotest.(check bool) "quarter appears" true (contains s "0.25");
  (* RP at 64 sets... at 256 lines / 4 ways = 64 sets: 1/64 * 1/4. *)
  Alcotest.(check bool) "rp value" true (contains s "3.91e-3");
  Alcotest.(check bool) "nomo third" true (contains s "0.333")

let test_table6_csv_rows () =
  let rows = Tables.table6_csv_rows () in
  Alcotest.(check int) "9 x 4 rows" 36 (List.length rows);
  List.iter
    (fun row -> Alcotest.(check int) "4 columns" 4 (List.length row))
    rows

(* --- Figures --------------------------------------------------------------- *)

let test_figure4 () =
  let s = Figures.figure4 () in
  Alcotest.(check bool) "mentions paper value" true (contains s "0.691");
  Alcotest.(check bool) "plots" true (contains s "p5")

let test_figure8 () =
  let s = Figures.figure8 () in
  Alcotest.(check bool) "series names" true
    (contains s "Newcache" && contains s "32-way");
  let series = Figures.figure8_series ~ks:[ 0; 16; 64 ] in
  Alcotest.(check int) "six series" 6 (List.length series);
  (* SP/PL flat at zero; SA reaches high pre-PAS by k=64. *)
  let find name = List.assoc name series in
  List.iter
    (fun (_, p) -> Alcotest.(check (float 0.)) "sp flat" 0. p)
    (find "SP / PL (locked)");
  let sa64 = List.assoc 64 (find "SA/RP/RF 8-way") in
  Alcotest.(check bool) "sa high at 64" true (sa64 > 0.95)

let test_figure9_quick () =
  let s = Figures.figure9 ~scale:Figures.Quick ~seed:3 () in
  Alcotest.(check bool) "both caches shown" true
    (contains s "SA Cache" && contains s "Newcache");
  Alcotest.(check bool) "verdict lines" true (contains s "nibble recovered")

let test_figure10_quick () =
  let s = Figures.figure10 ~scale:Figures.Quick ~seed:3 () in
  Alcotest.(check bool) "six caches" true
    (contains s "SA Cache" && contains s "RP Cache" && contains s "RE Cache")

let test_trials_for () =
  Alcotest.(check int) "full" 4000 (Figures.trials_for Figures.Full 4000);
  Alcotest.(check int) "quick" 400 (Figures.trials_for Figures.Quick 4000);
  Alcotest.(check int) "quick floor" 50 (Figures.trials_for Figures.Quick 100)

(* --- Validation cells --------------------------------------------------------- *)

let test_validation_cells_quick () =
  (* A clearly-leaky and a clearly-protected cell, at reduced scale. *)
  let leak =
    Validation.run_cell ~scale:Figures.Quick Spec.paper_sa
      Attack_type.Flush_and_reload
  in
  Alcotest.(check bool) "sa FR leaks" true leak.Validation.recovered;
  Alcotest.(check bool) "predicted too" true leak.Validation.predicted_leak;
  Alcotest.(check bool) "agrees" true leak.Validation.agrees;
  let safe =
    Validation.run_cell ~scale:Figures.Quick Spec.paper_newcache
      Attack_type.Flush_and_reload
  in
  Alcotest.(check bool) "newcache FR protected" false safe.Validation.recovered;
  Alcotest.(check bool) "agrees" true safe.Validation.agrees

let test_validation_render () =
  let cells =
    [
      Validation.run_cell ~scale:Figures.Quick Spec.paper_sp
        Attack_type.Evict_and_time;
    ]
  in
  let s = Validation.render cells in
  Alcotest.(check bool) "table" true (contains s "SP Cache");
  Alcotest.(check (float 1e-9)) "rate" 1. (Validation.agreement_rate cells)

(* --- Ablations (structure only, quick) ------------------------------------------ *)

let test_ablation_rf_window_analytics () =
  (* The analytic column of the RF sweep must follow 1/(2w+1) without
     running the simulations at full size. *)
  List.iter
    (fun w ->
      let spec =
        Spec.Rf { ways = 8; policy = Replacement.Random; back = w; fwd = w }
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "w=%d" w)
        (1. /. float_of_int ((2 * w) + 1))
        (Attack_models.pas Attack_type.Cache_collision spec ()))
    [ 0; 4; 16; 64; 128 ]

(* --- Sweeps ------------------------------------------------------------------------ *)

let test_sweep_associativity () =
  List.iter
    (fun (w, pas, _) ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "1/%d" w)
        (1. /. float_of_int w)
        pas)
    (Sweeps.associativity_sweep ~ways:[ 1; 2; 4; 8; 16 ]);
  (* pre-PAS at k = 2w decreases with associativity (Figure 8's lesson). *)
  let ps =
    List.map (fun (_, _, p) -> p) (Sweeps.associativity_sweep ~ways:[ 2; 4; 8; 16 ])
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "prepas decreasing" true (decreasing ps)

let test_sweep_cache_size () =
  List.iter
    (fun (n, pas) ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "1/%d" n)
        (1. /. float_of_int n)
        pas)
    (Sweeps.cache_size_sweep ~lines:[ 64; 512; 2048 ])

let test_sweep_rf_window () =
  let w0 = List.hd (Sweeps.rf_window_sweep ~windows:[ 0 ]) in
  (match w0 with
  | _, p3, p2 ->
    Alcotest.(check (float 1e-12)) "window 0 collision" 1.0 p3;
    Alcotest.(check (float 1e-9)) "window 0 type2 like SA" (0.125 *. 0.125) p2);
  let _, p3, _ = List.hd (Sweeps.rf_window_sweep ~windows:[ 64 ]) in
  Alcotest.(check (float 1e-12)) "paper window" (1. /. 129.) p3

let test_sweep_nomo () =
  let r0 = List.hd (Sweeps.nomo_reservation_sweep ~ways:8 ~reserved:[ 0 ]) in
  (match r0 with
  | _, pas, _ -> Alcotest.(check (float 1e-12)) "r=0 degrades to SA" 0.125 pas);
  let _, pas6, _ =
    List.hd (Sweeps.nomo_reservation_sweep ~ways:8 ~reserved:[ 6 ])
  in
  Alcotest.(check (float 1e-12)) "r=6 spill over 2 ways" 0.5 pas6

let test_sweep_csv_shapes () =
  List.iter
    (fun (name, header, rows) ->
      Alcotest.(check bool) (name ^ " non-empty") true (rows <> []);
      List.iter
        (fun row ->
          Alcotest.(check int) (name ^ " width") (List.length header)
            (List.length row))
        rows)
    (Sweeps.csv_rows ())

(* --- Edge measurement ------------------------------------------------------------ *)

let test_edge_sa_eviction () =
  let m = Edge_measure.eviction_stage ~samples:8000 Spec.paper_sa in
  Alcotest.(check (float 0.015)) "sa 1/8" m.Edge_measure.closed_form
    m.Edge_measure.measured

let test_edge_partitioned_zero () =
  List.iter
    (fun spec ->
      let m = Edge_measure.eviction_stage ~samples:500 spec in
      Alcotest.(check (float 0.)) (Spec.name spec) 0. m.Edge_measure.measured)
    [ Spec.paper_sp; Spec.paper_pl ]

let test_edge_nomo () =
  let m = Edge_measure.eviction_stage ~samples:8000 Spec.paper_nomo in
  Alcotest.(check (float 0.02)) "nomo 1/6" m.Edge_measure.closed_form
    m.Edge_measure.measured

let test_edge_re_reuse () =
  let m = Edge_measure.reuse_stage ~samples:3000 ~gap:100 Spec.paper_re in
  Alcotest.(check (float 0.02)) "re decay" m.Edge_measure.closed_form
    m.Edge_measure.measured

let test_edge_rf_reuse () =
  let m = Edge_measure.reuse_stage ~samples:3000 ~gap:10 Spec.paper_rf in
  Alcotest.(check (float 0.01)) "rf p0" m.Edge_measure.closed_form
    m.Edge_measure.measured

let test_edge_cross_context () =
  List.iter
    (fun spec ->
      let m = Edge_measure.cross_context_stage ~samples:400 spec in
      Alcotest.(check (float 0.)) (Spec.name spec) 0. m.Edge_measure.measured)
    [ Spec.paper_newcache; Spec.paper_rp ]

let () =
  Alcotest.run "experiments"
    [
      ( "setup",
        [
          Alcotest.test_case "all engines" `Quick test_setup_engines;
          Alcotest.test_case "deterministic" `Quick test_setup_deterministic;
        ] );
      ( "tables",
        [
          Alcotest.test_case "render" `Quick test_tables_render;
          Alcotest.test_case "alt geometry" `Quick test_table6_alt_geometry;
          Alcotest.test_case "csv rows" `Quick test_table6_csv_rows;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 4" `Quick test_figure4;
          Alcotest.test_case "figure 8" `Quick test_figure8;
          Alcotest.test_case "figure 9 quick" `Slow test_figure9_quick;
          Alcotest.test_case "figure 10 quick" `Slow test_figure10_quick;
          Alcotest.test_case "trials_for" `Quick test_trials_for;
        ] );
      ( "validation",
        [
          Alcotest.test_case "cells quick" `Slow test_validation_cells_quick;
          Alcotest.test_case "render" `Slow test_validation_render;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "rf window analytics" `Quick
            test_ablation_rf_window_analytics;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "associativity" `Quick test_sweep_associativity;
          Alcotest.test_case "cache size" `Quick test_sweep_cache_size;
          Alcotest.test_case "rf window" `Quick test_sweep_rf_window;
          Alcotest.test_case "nomo reservation" `Quick test_sweep_nomo;
          Alcotest.test_case "csv shapes" `Quick test_sweep_csv_shapes;
        ] );
      ( "edge measurement",
        [
          Alcotest.test_case "sa eviction stage" `Quick test_edge_sa_eviction;
          Alcotest.test_case "partitioned eviction zero" `Quick
            test_edge_partitioned_zero;
          Alcotest.test_case "nomo eviction" `Slow test_edge_nomo;
          Alcotest.test_case "re reuse decay" `Quick test_edge_re_reuse;
          Alcotest.test_case "rf reuse window" `Quick test_edge_rf_reuse;
          Alcotest.test_case "cross-context pid caches" `Quick
            test_edge_cross_context;
        ] );
    ]
