(* Regenerate the hot-path golden digests from the CURRENT engines.

   Only run this when a change to simulated behaviour is intended; the
   whole point of the recorded file is that pure performance work must
   NOT change it. Usage:

     dune exec test/hotpath/gen_golden.exe -- test/golden/hotpath.golden *)

open Hotpath_workload

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "hotpath.golden"
  in
  let entries = Workload.all_digests () in
  Workload.write_golden ~path entries;
  List.iter (fun (name, d) -> Printf.printf "%-18s %s\n" name d) entries;
  Printf.printf "wrote %d golden digests to %s\n" (List.length entries) path
