(* Shared deterministic workload for the hot-path golden-trace suite.

   [digest] drives an engine through a frozen mixed op sequence
   (accesses, peeks, line flushes, lock/unlock, window changes, full
   flushes) and folds every observable — per-op outcomes including the
   eviction payload, final global and per-pid counters, and the full
   line dump — into one MD5 hex digest.

   The recorded digests under test/golden/ were produced by the
   pre-optimization (seed) engines; test_hotpath replays this exact
   workload against the current engines and demands bit-identical
   digests for all architectures x policies. Regenerate only when a
   change to simulated BEHAVIOUR (not performance) is intended:

     dune exec test/hotpath/gen_golden.exe -- test/golden/hotpath.golden *)

open Cachesec_stats
open Cachesec_cache

let steps = 20_000
let workload_seed = 0x5EED_CAFE

(* The one accessor the Outcome re-encoding is allowed to change: the
   displaced [(owner, line)] pairs of one access, in eviction order. *)
let eviction_list (o : Outcome.t) = Outcome.evictions o

let fmt_outcome buf (o : Outcome.t) =
  Buffer.add_char buf (match o.Outcome.event with Outcome.Hit -> 'H' | Outcome.Miss -> 'M');
  Buffer.add_char buf (if o.Outcome.cached then 'c' else 'u');
  (match o.Outcome.fetched with
  | None -> Buffer.add_char buf '-'
  | Some l -> Buffer.add_string buf (string_of_int l));
  List.iter
    (fun (pid, line) ->
      Buffer.add_char buf 'e';
      Buffer.add_string buf (string_of_int pid);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int line))
    (eviction_list o);
  Buffer.add_char buf ';'

let fmt_bool buf b = Buffer.add_char buf (if b then 't' else 'f')

let fmt_snapshot buf (s : Counters.snapshot) =
  Buffer.add_string buf
    (Printf.sprintf "acc=%d hit=%d miss=%d ev=%d rt=%d fl=%d|" s.accesses
       s.hits s.misses s.evictions s.read_throughs s.flushes)

let fmt_dump buf dump =
  List.iter
    (fun (i, (l : Line.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%b,%d,%d,%b,%d,%d,%d|" i l.valid l.tag l.owner
           l.locked l.last_use l.fill_seq l.aux))
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) dump)

let digest build =
  let rng = Rng.create ~seed:workload_seed in
  let engine : Engine.t = build (Rng.split rng) in
  let buf = Buffer.create (1 lsl 18) in
  for _ = 1 to steps do
    let pid = Rng.int rng 2 in
    let addr = if Rng.bool rng then Rng.int rng 600 else Rng.int rng 4096 in
    let r = Rng.int rng 100 in
    if r < 78 then fmt_outcome buf (engine.Engine.access ~pid addr)
    else if r < 88 then fmt_bool buf (engine.Engine.peek ~pid addr)
    else if r < 94 then fmt_bool buf (engine.Engine.flush_line ~pid addr)
    else if r < 96 then fmt_bool buf (engine.Engine.lock_line ~pid addr)
    else if r < 98 then fmt_bool buf (engine.Engine.unlock_line ~pid addr)
    else if r < 99 then
      engine.Engine.set_window ~pid ~back:(Rng.int rng 4) ~fwd:(Rng.int rng 4)
    else engine.Engine.flush_all ()
  done;
  fmt_snapshot buf (engine.Engine.counters ());
  fmt_snapshot buf (engine.Engine.counters_for 0);
  fmt_snapshot buf (engine.Engine.counters_for 1);
  fmt_dump buf (engine.Engine.dump ());
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- the engine zoo: 9 paper architectures x the full policy registry
   (Newcache contributes its single SecRAND row) + skewed + two-level
   hierarchy -- *)

let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }

let case_name spec =
  match Spec.policy_of spec with
  | Some p -> Spec.name spec ^ ":" ^ Replacement.policy_to_string p
  | None -> Spec.name spec ^ ":secrand"

let cases () =
  let spec_cases =
    List.concat_map
      (fun spec ->
        match Spec.policy_of spec with
        | None -> [ spec ]
        | Some _ -> List.map (Spec.with_policy spec) Policy.all)
      Spec.all_paper
  in
  List.map
    (fun spec -> (case_name spec, fun rng -> Factory.build spec scenario ~rng))
    spec_cases
  @ [
      ("skewed", fun rng -> Skewed.engine (Skewed.create ~rng ()));
      ( "hierarchy:l1+sa",
        fun rng ->
          let l2 =
            Sa.engine
              (Sa.create ~config:Config.standard ~policy:Replacement.Random
                 ~rng:(Rng.split rng) ())
          in
          Hierarchy.engine (Hierarchy.create ~l2 ~rng ()) );
    ]

let all_digests () = List.map (fun (name, build) -> (name, digest build)) (cases ())

(* --- golden file I/O: "name digest" per line ----------------------- *)

let write_golden ~path entries =
  let oc = open_out path in
  List.iter (fun (name, d) -> Printf.fprintf oc "%s %s\n" name d) entries;
  close_out oc

let read_golden ~path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match String.index_opt line ' ' with
         | Some i ->
           entries :=
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
             :: !entries
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries
