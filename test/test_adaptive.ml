(* Sequential stopping + adaptive round scheduling.

   The stats side (Sequential) is pure decision logic: quantile pins,
   interval behavior at the edges, the target smart constructor, and
   the decide semantics (min/max trials, the half_width = 0 measurement
   mode). The runtime side (Adaptive) is checked structurally — every
   round plan is a partition of the fixed Scheduler plan with
   geometrically growing boundaries — and behaviorally: early stops
   happen at round boundaries only, and an adaptive run is bit-identical
   across jobs settings. *)

open Cachesec_stats
open Cachesec_runtime

(* --- Sequential: inverse normal CDF ---------------------------------- *)

let test_normal_quantile () =
  (* Textbook pins, well inside Acklam's 1.2e-9 relative error. *)
  Alcotest.(check (float 1e-6)) "median" 0. (Sequential.normal_quantile 0.5);
  Alcotest.(check (float 1e-6)) "97.5%" 1.959964
    (Sequential.normal_quantile 0.975);
  Alcotest.(check (float 1e-6)) "2.5%" (-1.959964)
    (Sequential.normal_quantile 0.025);
  Alcotest.(check (float 1e-5)) "99.5%" 2.575829
    (Sequential.normal_quantile 0.995);
  (* Deep tail exercises the p < p_low rational branch. *)
  Alcotest.(check (float 1e-5)) "0.1% tail" (-3.090232)
    (Sequential.normal_quantile 0.001);
  (* Symmetry across the two tail branches. *)
  Alcotest.(check (float 1e-9)) "tails are symmetric"
    (Sequential.normal_quantile 0.9999)
    (-.Sequential.normal_quantile 0.0001);
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "p=%g rejected" p)
        (Invalid_argument "Sequential.normal_quantile: p must be in (0,1)")
        (fun () -> ignore (Sequential.normal_quantile p)))
    [ 0.; 1.; -0.5; 1.5; Float.nan ]

let test_z_of_confidence () =
  Alcotest.(check (float 1e-6)) "95%" 1.959964
    (Sequential.z_of_confidence 0.95);
  Alcotest.(check (float 1e-6)) "99%" 2.575829
    (Sequential.z_of_confidence 0.99);
  Alcotest.check_raises "confidence 1 rejected"
    (Invalid_argument "Sequential.z_of_confidence: confidence must be in (0,1)")
    (fun () -> ignore (Sequential.z_of_confidence 1.))

(* --- Sequential: intervals ------------------------------------------- *)

let test_wilson () =
  (* Wilson stays strictly inside (0,1) at the degenerate observed
     rates where Wald collapses to zero width. *)
  let lo0, hi0 = Sequential.wilson ~successes:0. ~trials:50 ~confidence:0.95 in
  Alcotest.(check (float 0.)) "all-miss lower bound" 0. lo0;
  Alcotest.(check bool) "all-miss upper bound positive" true (hi0 > 0.);
  let lo1, hi1 = Sequential.wilson ~successes:50. ~trials:50 ~confidence:0.95 in
  Alcotest.(check (float 1e-12)) "all-hit upper bound" 1. hi1;
  Alcotest.(check bool) "all-hit lower bound below 1" true (lo1 < 1.);
  (* Interval brackets the observed rate and narrows with n. *)
  let lo, hi = Sequential.wilson ~successes:30. ~trials:100 ~confidence:0.95 in
  Alcotest.(check bool) "brackets p-hat" true (lo < 0.3 && 0.3 < hi);
  let w n =
    Sequential.wilson_half_width
      ~successes:(0.3 *. float_of_int n)
      ~trials:n ~confidence:0.95
  in
  Alcotest.(check bool) "narrows with trials" true (w 10000 < w 100);
  Alcotest.check_raises "zero trials rejected"
    (Invalid_argument "Sequential.wilson: trials must be positive") (fun () ->
      ignore (Sequential.wilson ~successes:0. ~trials:0 ~confidence:0.95));
  Alcotest.check_raises "successes > trials rejected"
    (Invalid_argument "Sequential.wilson: successes must be in [0, trials]")
    (fun () ->
      ignore (Sequential.wilson ~successes:11. ~trials:10 ~confidence:0.95))

let summary_of xs =
  let s = Summary.create () in
  List.iter (Summary.add s) xs;
  s

let test_mean_half_width () =
  Alcotest.(check (float 0.)) "no observations" infinity
    (Sequential.mean_half_width (Summary.create ()) ~confidence:0.95);
  Alcotest.(check (float 0.)) "one observation" infinity
    (Sequential.mean_half_width (summary_of [ 5. ]) ~confidence:0.95);
  (* z * s / sqrt n against a hand computation: {2,4} has unbiased
     sample std sqrt(2). *)
  Alcotest.(check (float 1e-6)) "two observations"
    (1.959964 *. sqrt 2. /. sqrt 2.)
    (Sequential.mean_half_width (summary_of [ 2.; 4. ]) ~confidence:0.95)

let test_achieved () =
  let achieved = Sequential.achieved ~confidence:0.95 in
  Alcotest.(check (float 0.)) "proportion with no trials" infinity
    (achieved (Sequential.Proportion { successes = 0.; trials = 0 }));
  Alcotest.(check (float 1e-9)) "proportion = wilson half-width"
    (Sequential.wilson_half_width ~successes:30. ~trials:100 ~confidence:0.95)
    (achieved (Sequential.Proportion { successes = 30.; trials = 100 }));
  (* Mean_rel is relative to |mean|. *)
  let s = summary_of [ 90.; 110.; 95.; 105. ] in
  Alcotest.(check (float 1e-9)) "mean_rel = hw / |mean|"
    (Sequential.mean_half_width s ~confidence:0.95 /. Summary.mean s)
    (achieved (Sequential.Mean_rel s));
  (* Degenerate-constant stream: the estimate cannot move, honest
     half-width 0 — even when the constant is 0 itself. *)
  Alcotest.(check (float 0.)) "constant stream" 0.
    (achieved (Sequential.Mean_rel (summary_of [ 7.; 7.; 7. ])));
  Alcotest.(check (float 0.)) "constant-zero stream" 0.
    (achieved (Sequential.Mean_rel (summary_of [ 0.; 0.; 0. ])));
  (* Zero mean WITH spread: relative precision undefined, run to cap. *)
  Alcotest.(check (float 0.)) "zero mean with spread" infinity
    (achieved (Sequential.Mean_rel (summary_of [ -1.; 1. ])));
  Alcotest.(check (float 0.)) "below two observations" infinity
    (achieved (Sequential.Mean_rel (summary_of [ 3. ])))

(* --- Sequential: target + decide ------------------------------------- *)

let test_target_validation () =
  let t = Sequential.target ~half_width:0.05 ~max_trials:1000 () in
  Alcotest.(check (float 0.)) "default confidence" 0.95
    t.Sequential.confidence;
  Alcotest.(check int) "default min_trials" 100 t.Sequential.min_trials;
  List.iter
    (fun (label, msg, thunk) ->
      Alcotest.check_raises label (Invalid_argument msg) (fun () ->
          ignore (thunk ())))
    [
      ( "bad confidence",
        "Sequential.target: confidence must be in (0,1)",
        fun () ->
          Sequential.target ~confidence:1. ~half_width:0.05 ~max_trials:1000 ()
      );
      ( "negative half_width",
        "Sequential.target: half_width must be non-negative",
        fun () -> Sequential.target ~half_width:(-0.1) ~max_trials:1000 () );
      ( "zero min_trials",
        "Sequential.target: min_trials must be positive",
        fun () ->
          Sequential.target ~min_trials:0 ~half_width:0.05 ~max_trials:1000 ()
      );
      ( "cap below floor",
        "Sequential.target: max_trials must be >= min_trials",
        fun () ->
          Sequential.target ~min_trials:100 ~half_width:0.05 ~max_trials:50 ()
      );
    ]

let test_decide () =
  let t =
    Sequential.target ~min_trials:100 ~half_width:0.05 ~max_trials:1000 ()
  in
  (* Tight observation: wilson half-width at 500/1000 trials is ~0.03,
     well under the 0.05 target. *)
  let tight trials =
    Sequential.Proportion { successes = 0.5 *. float_of_int trials; trials }
  in
  Alcotest.(check bool) "below min_trials never stops" true
    (Sequential.decide t ~trials:50 (tight 50) = Sequential.Continue);
  Alcotest.(check bool) "tight interval past the floor stops" true
    (Sequential.decide t ~trials:500 (tight 500) = Sequential.Stop);
  Alcotest.(check bool) "wide interval continues" true
    (Sequential.decide t ~trials:150
       (Sequential.Proportion { successes = 75.; trials = 150 })
    = Sequential.Continue);
  Alcotest.(check bool) "cap always stops" true
    (Sequential.decide t ~trials:1000
       (Sequential.Proportion { successes = 500.; trials = 1000 })
    = Sequential.Stop);
  (* Measurement mode: half_width = 0 never stops early, not even at an
     achieved width of exactly 0 (degenerate-constant stream). *)
  let m = Sequential.target ~half_width:0. ~max_trials:1000 () in
  Alcotest.(check bool) "measurement mode ignores perfect precision" true
    (Sequential.decide m ~trials:500
       (Sequential.Mean_rel (summary_of [ 7.; 7.; 7. ]))
    = Sequential.Continue);
  Alcotest.(check bool) "measurement mode still stops at cap" true
    (Sequential.decide m ~trials:1000
       (Sequential.Mean_rel (summary_of [ 7.; 7.; 7. ]))
    = Sequential.Stop)

(* --- Adaptive: round plans ------------------------------------------- *)

(* Structural invariants every plan must satisfy: the batches ARE the
   fixed Scheduler plan (same indices, firsts, counts — adaptivity must
   never change what any batch computes), and the boundaries strictly
   increase to exactly the batch count. *)
let check_plan_invariants ~total ~batch_size (p : Adaptive.plan) =
  let fixed = Scheduler.plan ~total ~batch_size in
  Alcotest.(check int)
    (Printf.sprintf "total=%d bs=%d: batches = fixed plan" total batch_size)
    (Array.length fixed)
    (Array.length p.Adaptive.batches);
  Array.iteri
    (fun i (b : Scheduler.batch) ->
      let f = fixed.(i) in
      Alcotest.(check bool) "batch matches fixed plan" true
        (b.Scheduler.index = f.Scheduler.index
        && b.Scheduler.first = f.Scheduler.first
        && b.Scheduler.count = f.Scheduler.count))
    p.Adaptive.batches;
  let bounds = p.Adaptive.boundaries in
  let n = Array.length bounds in
  Alcotest.(check bool) "at least one round when non-empty" true
    (Array.length fixed = 0 || n > 0);
  Array.iteri
    (fun r b ->
      Alcotest.(check bool) "boundaries strictly increase" true
        (b > if r = 0 then 0 else bounds.(r - 1)))
    bounds;
  if n > 0 then
    Alcotest.(check int) "last round covers every batch"
      (Array.length fixed)
      bounds.(n - 1)

let test_plan_structure () =
  List.iter
    (fun (total, batch_size) ->
      check_plan_invariants ~total ~batch_size
        (Adaptive.plan ~total ~batch_size ()))
    [ (1, 1); (10, 4); (100, 7); (275400, 512); (4096, 4096); (50, 100) ]

let test_plan_geometry () =
  (* start=100, factor=2 over 1000 trials in batches of 50: cumulative
     round targets 100, 200, 400, 800, 1000 — each already on a batch
     boundary. *)
  let p = Adaptive.plan ~start:100 ~factor:2 ~total:1000 ~batch_size:50 () in
  Alcotest.(check int) "rounds" 5 (Adaptive.rounds p);
  Alcotest.(check (list int)) "cumulative trials"
    [ 100; 200; 400; 800; 1000 ]
    (List.init (Adaptive.rounds p) (Adaptive.round_trials p));
  (* Targets that fall inside a batch round UP to its boundary. *)
  let q = Adaptive.plan ~start:100 ~factor:2 ~total:1000 ~batch_size:64 () in
  Alcotest.(check int) "round 0 rounds up to a batch boundary" 128
    (Adaptive.round_trials q 0);
  (* start <= 0 means one batch. *)
  let r = Adaptive.plan ~total:1000 ~batch_size:64 () in
  Alcotest.(check int) "default start is one batch" 64
    (Adaptive.round_trials r 0);
  Alcotest.check_raises "round_trials out of range"
    (Invalid_argument "Adaptive.round_trials: round out of range") (fun () ->
      ignore (Adaptive.round_trials p 5))

let test_plan_empty () =
  let p = Adaptive.plan ~total:0 ~batch_size:64 () in
  Alcotest.(check int) "no batches" 0 (Array.length p.Adaptive.batches);
  Alcotest.(check int) "no rounds" 0 (Adaptive.rounds p);
  Alcotest.check_raises "submit refuses an empty plan"
    (Invalid_argument "Adaptive.submit: empty plan for nothing") (fun () ->
      ignore
        (Adaptive.submit ~what:"nothing"
           ~shard:(fun _ -> 0)
           ~merge:( + )
           ~keep_going:(fun ~trials:_ _ -> true)
           p))

(* QCheck sweep: the structural invariants hold for arbitrary
   (total, batch_size, start, factor). *)
let plan_partition_prop =
  QCheck.Test.make ~count:200 ~name:"adaptive plan partitions the fixed plan"
    QCheck.(
      quad (int_range 0 10_000) (int_range 1 512) (int_range (-10) 2_000)
        (int_range 2 5))
    (fun (total, batch_size, start, factor) ->
      (* The shrinker may step outside the generator ranges; clamp back
         into the documented domain. *)
      let total = Stdlib.max 0 total in
      let batch_size = Stdlib.max 1 batch_size in
      let start = Stdlib.max 0 start in
      let factor = Stdlib.max 2 factor in
      let p = Adaptive.plan ~start ~factor ~total ~batch_size () in
      check_plan_invariants ~total ~batch_size p;
      (* Cumulative trials at the final boundary cover the total. *)
      let n = Adaptive.rounds p in
      n = 0 || Adaptive.round_trials p (n - 1) = total)

(* --- Adaptive: execution --------------------------------------------- *)

let test_early_stop_at_round_boundary () =
  (* Count shard invocations: with start=100/factor=2 over batches of
     50 and a predicate that stops once 200 trials are merged, exactly
     rounds 0 and 1 (4 batches, 200 trials) may run — never a partial
     round, never a batch beyond the stopping boundary. *)
  let ran = Atomic.make 0 in
  let shard (b : Scheduler.batch) =
    Atomic.incr ran;
    b.Scheduler.count
  in
  let p = Adaptive.plan ~start:100 ~factor:2 ~total:1000 ~batch_size:50 () in
  let progress =
    Adaptive.run ~jobs:1 ~what:"early-stop" ~shard ~merge:( + )
      ~keep_going:(fun ~trials _ -> trials < 200)
      p
  in
  Alcotest.(check int) "stopped at the round-1 boundary" 200
    progress.Adaptive.trials;
  Alcotest.(check int) "merged partials cover exactly those trials" 200
    progress.Adaptive.merged;
  Alcotest.(check int) "no batch beyond the boundary ran" 4 (Atomic.get ran);
  Alcotest.(check int) "rounds_run" 2 progress.Adaptive.rounds_run;
  Alcotest.(check bool) "flagged as early" true progress.Adaptive.stopped_early;
  Alcotest.(check int) "cap preserved" 1000 progress.Adaptive.cap

let test_no_stop_runs_to_cap () =
  let p = Adaptive.plan ~start:100 ~factor:2 ~total:1000 ~batch_size:50 () in
  let progress =
    Adaptive.run ~jobs:1 ~what:"to-cap"
      ~shard:(fun b -> b.Scheduler.count)
      ~merge:( + )
      ~keep_going:(fun ~trials:_ _ -> true)
      p
  in
  Alcotest.(check int) "every trial ran" 1000 progress.Adaptive.trials;
  Alcotest.(check bool) "not early" false progress.Adaptive.stopped_early;
  Alcotest.(check int) "all rounds ran" (Adaptive.rounds p)
    progress.Adaptive.rounds_run

let test_adaptive_jobs_invariant () =
  (* A shard with real per-batch RNG and an order-sensitive merge
     (string concatenation): serial, parallel and pipelined-parallel
     runs must agree bit for bit, including the stopping point. *)
  let shard (b : Scheduler.batch) =
    let rng = Rng.create ~seed:(Rng.derive_seed 42 b.Scheduler.index) in
    let acc = ref [] in
    for _ = 1 to b.Scheduler.count do
      acc := string_of_int (Rng.int rng 10) :: !acc
    done;
    String.concat "" (List.rev !acc)
  in
  let keep_going ~trials merged = trials < 300 && String.length merged < 250 in
  let p = Adaptive.plan ~start:64 ~factor:2 ~total:2000 ~batch_size:64 () in
  let run jobs =
    Adaptive.run ~jobs ~what:"jobs-invariance" ~shard ~merge:( ^ ) ~keep_going p
  in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check string) "jobs:1 = jobs:4 merged" serial.Adaptive.merged
    parallel.Adaptive.merged;
  Alcotest.(check int) "jobs:1 = jobs:4 trials" serial.Adaptive.trials
    parallel.Adaptive.trials;
  Alcotest.(check bool) "same stop flag"
    serial.Adaptive.stopped_early parallel.Adaptive.stopped_early;
  (* Pipelined: two adaptive campaigns submitted before any await, so
     round-0 shards interleave on the pool queue. *)
  let a = Adaptive.submit ~jobs:4 ~what:"pipe-a" ~shard ~merge:( ^ ) ~keep_going p in
  let b = Adaptive.submit ~jobs:4 ~what:"pipe-b" ~shard ~merge:( ^ ) ~keep_going p in
  let rb = Adaptive.await b in
  let ra = Adaptive.await a in
  Alcotest.(check string) "pipelined = sequential" serial.Adaptive.merged
    ra.Adaptive.merged;
  Alcotest.(check string) "pipelined campaigns agree" ra.Adaptive.merged
    rb.Adaptive.merged

let () =
  Alcotest.run "adaptive"
    [
      ( "sequential",
        [
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
          Alcotest.test_case "z of confidence" `Quick test_z_of_confidence;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          Alcotest.test_case "mean half-width" `Quick test_mean_half_width;
          Alcotest.test_case "achieved" `Quick test_achieved;
          Alcotest.test_case "target validation" `Quick test_target_validation;
          Alcotest.test_case "decide" `Quick test_decide;
        ] );
      ( "plan",
        [
          Alcotest.test_case "structure" `Quick test_plan_structure;
          Alcotest.test_case "geometry" `Quick test_plan_geometry;
          Alcotest.test_case "empty" `Quick test_plan_empty;
          QCheck_alcotest.to_alcotest plan_partition_prop;
        ] );
      ( "execution",
        [
          Alcotest.test_case "early stop at round boundary" `Quick
            test_early_stop_at_round_boundary;
          Alcotest.test_case "no stop runs to cap" `Quick
            test_no_stop_runs_to_cap;
          Alcotest.test_case "jobs-invariant" `Quick
            test_adaptive_jobs_invariant;
        ] );
    ]
