(* The PAS query server: protocol codec round-trips, canonical memo
   keys (equivalence AND collision-freedom over the full matrix),
   router memoization, and forked end-to-end servers — including the
   backpressure and dedup paths.

   Fork discipline: every end-to-end test forks BEFORE this process
   ever touches the Domain pool (serial contexts only in the parent),
   so the child starts with clean pool state; children leave via
   [Unix._exit], never through the test runner's at_exit. *)

open Cachesec_serve
open Cachesec_cache
open Cachesec_analysis

let bits = Int64.bits_of_float

let float_eq a b = bits a = bits b

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- protocol codec -------------------------------------------------- *)

let sample_queries : Protocol.query list =
  [
    Ping;
    Stats;
    Shutdown;
    Pas
      {
        spec = Spec.paper_sa;
        config = Config.standard;
        attack = Attack_type.Prime_and_probe;
        cold = false;
      };
    Pas
      {
        spec = Spec.Noisy { ways = 4; policy = Replacement.Lru; sigma = 0.1 +. 0.2 };
        config = Config.v ~line_bytes:32 ~lines:1024 ~ways:4;
        attack = Attack_type.Evict_and_time;
        cold = true;
      };
    Prepas { spec = Spec.paper_rp; k = 17; cold = false };
    Resilience
      { spec = Spec.paper_newcache; attack = Attack_type.Flush_and_reload;
        cold = false };
    Table
      { attack = Attack_type.Cache_collision; config = Config.standard;
        cold = true };
    Validate
      { spec = Spec.paper_rf; attack = Attack_type.Flush_and_reload; seed = 99;
        quick = true; cold = false };
  ]

let test_query_roundtrip () =
  List.iter
    (fun q ->
      match Protocol.decode_query (Protocol.encode_query q) with
      | Ok q' ->
        Alcotest.(check bool)
          (Printf.sprintf "round trip %s" (Protocol.encode_query q))
          true (q = q')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_queries

let test_reply_roundtrip () =
  let replies : Protocol.reply list =
    [
      Ok_;
      Overloaded;
      Error_ "duplicate argument ways";
      Pas_v 0.015625;
      Pas_v (0.1 +. 0.2);
      Prepas_v 0.89127753099463636;
      Resilience_v { verdict = "high"; pas = 7.75e-3 };
      Table_v [ ("sa", 1.0); ("rf", 0.0077519379844961239); ("re", 1e-300) ];
      Validate_v
        { pas = 0.69146246272399381; predicted_leak = true; recovered = false;
          separation = -3.25; agrees = false };
      Stats_v [ ("hits", 12.); ("uptime_s", 0.5) ];
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_reply (Protocol.encode_reply r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "round trip %s" (Protocol.encode_reply r))
          true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    replies;
  (* Floats survive bit-exactly, not just structurally. *)
  match Protocol.decode_reply (Protocol.encode_reply (Pas_v (0.1 +. 0.2))) with
  | Ok (Pas_v v) ->
    Alcotest.(check bool) "bit-exact float" true (float_eq v (0.1 +. 0.2))
  | _ -> Alcotest.fail "expected Pas_v"

let test_decode_errors () =
  let bad =
    [
      "";
      "frobnicate cache=sa";
      "pas attack=prime-and-probe";  (* missing cache *)
      "pas cache=sa";  (* missing attack *)
      "pas cache=zz attack=prime-and-probe";
      "pas cache=sa attack=warp-drive";
      "pas cache=sa attack=prime-and-probe ways=8 ways=8";  (* duplicate *)
      "pas cache=sa attack=prime-and-probe bogusflag";
      "pas cache=sa attack=prime-and-probe nbits=3";  (* wrong arch *)
      "pas cache=newcache attack=prime-and-probe policy=lru";
      "pas cache=sa attack=prime-and-probe lines=100";  (* not a pow2 *)
      "prepas cache=sa k=minus";
      "ping cold";
    ]
  in
  List.iter
    (fun line ->
      match Protocol.decode_query line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error for %S" line)
    bad

let test_encode_ways_mismatch () =
  (* The pas wire form carries a single ways= argument; a Pas whose
     config disagrees with the spec cannot round-trip and must refuse
     to encode rather than silently ask a different question. *)
  let q : Protocol.query =
    Pas
      {
        spec = Spec.Sa { ways = 8; policy = Replacement.Lru };
        config = Config.v ~line_bytes:64 ~lines:512 ~ways:4;
        attack = Attack_type.Prime_and_probe;
        cold = false;
      }
  in
  match Protocol.encode_query q with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "expected Invalid_argument, got %S" s

let test_frames_incremental () =
  let payloads = [ "ping"; "pas cache=sa attack=prime-and-probe\nstats"; "" ] in
  let wire =
    String.concat ""
      (List.map (fun p -> Bytes.to_string (Protocol.frame p)) payloads)
  in
  let fr = Protocol.Frames.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      match Protocol.Frames.feed fr ~bytes:(Bytes.make 1 c) ~len:1 with
      | Ok ps -> got := !got @ ps
      | Error e -> Alcotest.failf "feed error: %s" e)
    wire;
  Alcotest.(check (list string)) "byte-at-a-time reassembly" payloads !got;
  Alcotest.(check int) "no leftover" 0 (Protocol.Frames.pending_bytes fr);
  (* An oversized declared length is an unrecoverable stream error. *)
  let fr = Protocol.Frames.create () in
  let huge = Bytes.of_string "\xff\xff\xff\xff" in
  (match Protocol.Frames.feed fr ~bytes:huge ~len:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted")

(* --- canonical keys --------------------------------------------------- *)

let key_of_line line =
  match Protocol.decode_query line with
  | Ok q -> (
    match Memo.key q with
    | Some k -> k
    | None -> Alcotest.failf "no key for %S" line)
  | Error e -> Alcotest.failf "decode %S: %s" line e

let test_key_equivalence () =
  let same a b =
    Alcotest.(check string)
      (Printf.sprintf "%S == %S" a b)
      (key_of_line a) (key_of_line b)
  in
  (* Defaults expanded vs spelled out. *)
  same "pas cache=sa attack=prime-and-probe"
    "pas cache=sa ways=8 policy=random lb=64 lines=512 attack=prime-and-probe";
  same "prepas cache=rp" "prepas cache=rp k=32 ways=8 policy=random";
  same "table attack=cache-collision"
    "table attack=cache-collision ways=8 lb=64 lines=512";
  (* Numeric spellings of the same value. *)
  same "pas cache=noisy sigma=1 attack=evict-and-time"
    "pas cache=noisy sigma=1.0 attack=evict-and-time";
  same "validate cache=sa attack=flush-and-reload seed=42 quick=1"
    "validate cache=sa attack=flush-and-reload";
  (* Argument order is irrelevant. *)
  same "pas cache=sa attack=prime-and-probe policy=lru"
    "pas policy=lru attack=prime-and-probe cache=sa";
  (* The cold flag never reaches the key. *)
  same "table attack=cache-collision" "table attack=cache-collision cold"

let test_key_distinctness () =
  (* Sweep the full matrix plus parameter variants; every (semantic)
     question must get its own key. *)
  let lines = ref [] in
  let add l = lines := l :: !lines in
  List.iter
    (fun spec ->
      let c = Spec.name spec in
      List.iter
        (fun attack ->
          let a = Attack_type.name attack in
          add (Printf.sprintf "pas cache=%s attack=%s" c a);
          add (Printf.sprintf "resilience cache=%s attack=%s" c a);
          add (Printf.sprintf "validate cache=%s attack=%s" c a);
          add (Printf.sprintf "validate cache=%s attack=%s seed=43" c a);
          add (Printf.sprintf "validate cache=%s attack=%s quick=0" c a))
        Attack_type.all;
      add (Printf.sprintf "prepas cache=%s" c);
      add (Printf.sprintf "prepas cache=%s k=8" c))
    Spec.all_paper;
  List.iter
    (fun a ->
      add (Printf.sprintf "table attack=%s" (Attack_type.name a));
      add (Printf.sprintf "table attack=%s lines=1024" (Attack_type.name a));
      add (Printf.sprintf "table attack=%s ways=4" (Attack_type.name a)))
    Attack_type.all;
  (* Policy / parameter overrides of one architecture. Every non-default
     registry policy must key apart ([policy=random] is the default and
     canonicalizes onto the bare matrix line above, so it is skipped). *)
  List.iter
    (fun p ->
      if p <> Policy.Random then
        add
          (Printf.sprintf "pas cache=sa attack=prime-and-probe policy=%s"
             (Policy.to_string p)))
    Policy.all;
  add "pas cache=sa attack=prime-and-probe ways=4";
  add "pas cache=sa attack=prime-and-probe lb=32";
  add "pas cache=noisy attack=prime-and-probe sigma=0.5";
  add "pas cache=newcache attack=prime-and-probe nbits=6";
  add "pas cache=sp attack=prime-and-probe partitions=4";
  add "pas cache=rf attack=prime-and-probe back=32";
  add "pas cache=re attack=prime-and-probe interval=20";
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun line ->
      let k = key_of_line line in
      (match Hashtbl.find_opt tbl k with
      | Some other ->
        Alcotest.failf "key collision: %S and %S -> %s" line other k
      | None -> ());
      Hashtbl.add tbl k line)
    !lines;
  Alcotest.(check int)
    "every question keyed" (List.length !lines) (Hashtbl.length tbl)

(* Ckey injectivity over the enlarged policy registry: any two distinct
   (architecture, policy, attack) questions — policy spelled explicitly,
   so the default never aliases — must map to distinct memo keys, and
   equal questions to equal keys. *)
let policied_specs =
  List.filter (fun s -> Spec.policy_of s <> None) Spec.all_paper

let test_key_policy_injective =
  let question =
    QCheck.(
      triple
        (int_bound (List.length policied_specs - 1))
        (int_bound (Policy.count - 1))
        (int_bound (List.length Attack_type.all - 1)))
  in
  qtest ~count:400 "ckey injective over (arch, policy, attack)"
    (QCheck.pair question question)
    (fun (t1, t2) ->
      let line (ci, pi, ai) =
        Printf.sprintf "pas cache=%s policy=%s attack=%s"
          (Spec.name (List.nth policied_specs ci))
          (Policy.to_string (List.nth Policy.all pi))
          (Attack_type.name (List.nth Attack_type.all ai))
      in
      let k1 = key_of_line (line t1) and k2 = key_of_line (line t2) in
      if t1 = t2 then String.equal k1 k2 else not (String.equal k1 k2))

let test_policy_spellings () =
  (* Every registry spelling decodes on a policied architecture... *)
  List.iter
    (fun p ->
      let line =
        Printf.sprintf "pas cache=sa attack=prime-and-probe policy=%s"
          (Policy.to_string p)
      in
      match Protocol.decode_query line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "decode %S: %s" line e)
    Policy.all;
  (* ...and an unknown one is refused with the full menu spelled out. *)
  match
    Protocol.decode_query "pas cache=sa attack=prime-and-probe policy=clock"
  with
  | Ok _ -> Alcotest.fail "policy=clock decoded"
  | Error e ->
    let mentions needle =
      let nl = String.length needle and el = String.length e in
      let rec go i = i + nl <= el && (String.sub e i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun p ->
        let s = Policy.to_string p in
        if not (mentions s) then
          Alcotest.failf "error %S does not list policy %s" e s)
      Policy.all

(* --- memo table & inflight ------------------------------------------- *)

let test_memo_table () =
  let m = Memo.create ~max_entries:3 () in
  Memo.add m "a" "1";
  Memo.add m "b" "2";
  Memo.add m "a" "1b";  (* overwrite in place, no new slot *)
  Alcotest.(check (option string)) "overwrite" (Some "1b") (Memo.find m "a");
  Alcotest.(check int) "size 2" 2 (Memo.size m);
  Memo.add m "c" "3";
  Memo.add m "d" "4";  (* evicts oldest ("a") *)
  Alcotest.(check int) "bounded" 3 (Memo.size m);
  Alcotest.(check (option string)) "oldest evicted" None (Memo.find m "a");
  Alcotest.(check (option string)) "newest present" (Some "4") (Memo.find m "d")

let test_inflight () =
  let t = Memo.Inflight.create () in
  let fut = Cachesec_runtime.Pool.submit (fun () -> "r") in
  let e = Memo.Inflight.add t ~key:"k" ~fut "w1" in
  Memo.Inflight.join e "w2";
  Alcotest.(check int) "one entry" 1 (Memo.Inflight.count t);
  (match Memo.Inflight.find t "k" with
  | Some e' ->
    Alcotest.(check (list string)) "waiters newest-first" [ "w2"; "w1" ]
      e'.Memo.Inflight.waiters
  | None -> Alcotest.fail "entry missing");
  Memo.Inflight.remove t "k";
  Alcotest.(check int) "removed" 0 (Memo.Inflight.count t)

(* --- router ----------------------------------------------------------- *)

let stats_of_router r =
  match Protocol.decode_reply (Protocol.encode_reply (Stats_v (Router.stats r))) with
  | Ok (Stats_v kvs) -> kvs
  | _ -> Alcotest.fail "stats reply"

let stat kvs name =
  match List.assoc_opt name kvs with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "missing stat %s" name

let test_router_closed_form () =
  let r = Router.create () in
  let line = "table attack=prime-and-probe" in
  let direct =
    List.map
      (fun row -> (Spec.name row.Pas_tables.spec, row.Pas_tables.pas))
      (Pas_tables.rows_for ~config:Config.standard Attack_type.Prime_and_probe
         ())
  in
  (match Router.route r line with
  | Router.Now enc -> (
    match Protocol.decode_reply enc with
    | Ok (Table_v rows) ->
      Alcotest.(check int) "nine rows" 9 (List.length rows);
      List.iter2
        (fun (a, p) (a', p') ->
          Alcotest.(check string) "arch" a' a;
          Alcotest.(check bool) (Printf.sprintf "pas %s bit-exact" a) true
            (float_eq p p'))
        rows direct
    | _ -> Alcotest.fail "expected table reply")
  | _ -> Alcotest.fail "closed form should answer now");
  let s = stats_of_router r in
  Alcotest.(check int) "one miss" 1 (stat s "misses");
  Alcotest.(check int) "one compute" 1 (stat s "closed");
  (* Second route: memo (raw-line fast path) hit, no recompute. *)
  (match Router.route r line with
  | Router.Now _ -> ()
  | _ -> Alcotest.fail "hit should answer now");
  let s = stats_of_router r in
  Alcotest.(check int) "one hit" 1 (stat s "hits");
  Alcotest.(check int) "still one compute" 1 (stat s "closed");
  (* A differently-spelled equivalent canonicalizes to the same memo
     entry: hit, still no recompute. *)
  (match
     Router.route r
       "table ways=8 lb=64 lines=512 attack=prime-and-probe"
   with
  | Router.Now _ -> ()
  | _ -> Alcotest.fail "equivalent spelling should hit");
  let s = stats_of_router r in
  Alcotest.(check int) "two hits" 2 (stat s "hits");
  Alcotest.(check int) "compute count unchanged" 1 (stat s "closed");
  (* Cold bypasses the memo in both directions. *)
  (match Router.route r "table attack=prime-and-probe cold" with
  | Router.Now _ -> ()
  | _ -> Alcotest.fail "cold closed form answers now");
  let s = stats_of_router r in
  Alcotest.(check int) "cold recomputed" 2 (stat s "closed");
  Alcotest.(check int) "cold not a hit" 2 (stat s "hits");
  Alcotest.(check int) "memo size stable" 1 (Router.memo_size r)

let test_router_sim_memoization () =
  let r = Router.create () in
  let line = "validate cache=sa attack=flush-and-reload seed=5 quick=1" in
  let enc, key =
    match Router.route r line with
    | Router.Sim { key = Some key; run } -> (run (), key)
    | _ -> Alcotest.fail "validate misses to Sim"
  in
  (* The campaign is bit-identical to a direct serial Validation.cell
     under the same (seed, quick). *)
  let ctx = Cachesec_runtime.Run.make ~seed:5 ~quick:true () in
  let cell =
    Cachesec_experiments.Validation.cell ctx Spec.paper_sa
      Attack_type.Flush_and_reload
  in
  (match Protocol.decode_reply enc with
  | Ok (Validate_v v) ->
    Alcotest.(check bool) "pas bit-exact" true
      (float_eq v.pas cell.Cachesec_experiments.Validation.pas);
    Alcotest.(check bool) "separation bit-exact" true
      (float_eq v.separation cell.Cachesec_experiments.Validation.separation);
    Alcotest.(check bool) "recovered" cell.Cachesec_experiments.Validation.recovered
      v.recovered;
    Alcotest.(check bool) "agrees" cell.Cachesec_experiments.Validation.agrees
      v.agrees
  | _ -> Alcotest.fail "expected validate reply");
  Router.note_sim_done r ~key:(Some key) enc;
  (* Now memoized: the same question answers instantly. *)
  (match Router.route r line with
  | Router.Now enc' -> Alcotest.(check string) "memoized reply" enc enc'
  | _ -> Alcotest.fail "second route should hit");
  (* And so does an equivalent spelling. *)
  match Router.route r "validate cache=sa attack=flush-and-reload seed=5" with
  | Router.Now enc' -> Alcotest.(check string) "canonical hit" enc enc'
  | _ -> Alcotest.fail "equivalent spelling should hit"

(* --- end-to-end (forked server) -------------------------------------- *)

let fork_server ?(execution = Server.Inline) ~socket () =
  if Sys.file_exists socket then Sys.remove socket;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let code =
      match Server.run { Server.socket; execution; max_memo = 1024 } with
      | Ok () -> 0
      | Error _ -> 1
      | exception _ -> 2
    in
    Unix._exit code
  | pid -> pid

let kill_server pid socket =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  try Sys.remove socket with Sys_error _ -> ()

let with_server ?execution ~socket f =
  let pid = fork_server ?execution ~socket () in
  Fun.protect
    ~finally:(fun () -> kill_server pid socket)
    (fun () ->
      let c = Client.connect_retry socket in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c pid))

let test_e2e_inline () =
  let socket = "test-serve-e2e.sock" in
  with_server ~socket (fun c pid ->
      (match Client.request1 c Protocol.Ping with
      | Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "ping");
      (* Closed forms match direct computation bit-exactly. *)
      (match
         Client.request1 c
           (Protocol.Pas
              { spec = Spec.paper_sa; config = Config.standard;
                attack = Attack_type.Prime_and_probe; cold = false })
       with
      | Protocol.Pas_v v ->
        Alcotest.(check bool) "pas matches direct" true
          (float_eq v
             (Attack_models.pas ~config:Config.standard
                Attack_type.Prime_and_probe Spec.paper_sa ()))
      | _ -> Alcotest.fail "pas reply");
      (match
         Client.request1 c (Protocol.Prepas { spec = Spec.paper_rp; k = 32; cold = false })
       with
      | Protocol.Prepas_v v ->
        Alcotest.(check bool) "prepas matches direct" true
          (float_eq v (Prepas.for_spec Spec.paper_rp ~k:32))
      | _ -> Alcotest.fail "prepas reply");
      (* Sim-backed cell: bit-identical to a direct serial run. *)
      let seed = 11 in
      (match
         Client.request1 c
           (Protocol.Validate
              { spec = Spec.paper_sa; attack = Attack_type.Flush_and_reload;
                seed; quick = true; cold = false })
       with
      | Protocol.Validate_v v ->
        let ctx = Cachesec_runtime.Run.make ~seed ~quick:true () in
        let cell =
          Cachesec_experiments.Validation.cell ctx Spec.paper_sa
            Attack_type.Flush_and_reload
        in
        Alcotest.(check bool) "validate pas bit-exact" true
          (float_eq v.pas cell.Cachesec_experiments.Validation.pas);
        Alcotest.(check bool) "validate separation bit-exact" true
          (float_eq v.separation
             cell.Cachesec_experiments.Validation.separation)
      | _ -> Alcotest.fail "validate reply");
      (* Pipelined frames answer in order. *)
      (match
         Client.request c
           [ Protocol.Stats;
             Protocol.Prepas { spec = Spec.paper_rp; k = 32; cold = false };
             Protocol.Ping ]
       with
      | [ Protocol.Stats_v _; Protocol.Prepas_v _; Protocol.Ok_ ] -> ()
      | _ -> Alcotest.fail "batch order");
      (* While the server lives, preflight refuses the socket. *)
      (match Server.preflight ~socket with
      | Error msg ->
        Alcotest.(check bool) "already-listening error" true
          (String.length msg > 0)
      | Ok () -> Alcotest.fail "preflight should refuse a live socket");
      (* Clean shutdown: ok reply, child exit 0, socket file removed. *)
      (match Client.request1 c Protocol.Shutdown with
      | Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "shutdown reply");
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "server exit code");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket))

let test_e2e_overloaded () =
  let socket = "test-serve-over.sock" in
  (* queue_bound = 0: every simulation is refused — closed forms still
     answer. *)
  with_server
    ~execution:(Server.Pooled { workers = 1; queue_bound = 0 })
    ~socket
    (fun c _pid ->
      (match
         Client.request c
           [ Protocol.Validate
               { spec = Spec.paper_sa; attack = Attack_type.Flush_and_reload;
                 seed = 3; quick = true; cold = false };
             Protocol.Prepas { spec = Spec.paper_sa; k = 8; cold = false } ]
       with
      | [ Protocol.Overloaded; Protocol.Prepas_v _ ] -> ()
      | _ -> Alcotest.fail "expected overloaded + prepas");
      match Client.request1 c Protocol.Stats with
      | Protocol.Stats_v kvs ->
        Alcotest.(check int) "overloaded counted" 1 (stat kvs "overloaded")
      | _ -> Alcotest.fail "stats reply")

let test_e2e_dedup () =
  let socket = "test-serve-dedup.sock" in
  with_server
    ~execution:(Server.Pooled { workers = 1; queue_bound = 8 })
    ~socket
    (fun c _pid ->
      let v seed : Protocol.query =
        Validate
          { spec = Spec.paper_sa; attack = Attack_type.Flush_and_reload; seed;
            quick = true; cold = false }
      in
      (* Two identical queries in one frame: the second joins the first
         campaign in flight; both waiters see the same reply. *)
      (match Client.request c [ v 7; v 7 ] with
      | [ r1; r2 ] ->
        Alcotest.(check bool) "joined waiters share the result" true (r1 = r2)
      | _ -> Alcotest.fail "two replies");
      (match Client.request1 c Protocol.Stats with
      | Protocol.Stats_v kvs ->
        Alcotest.(check int) "one campaign ran" 1 (stat kvs "sim_runs");
        Alcotest.(check int) "one dedup join" 1 (stat kvs "dedup_joins");
        Alcotest.(check int) "two misses" 2 (stat kvs "misses")
      | _ -> Alcotest.fail "stats reply");
      (* The memoized answer now serves a third asker instantly. *)
      match Client.request c [ v 7; Protocol.Stats ] with
      | [ _; Protocol.Stats_v kvs ] ->
        Alcotest.(check int) "memo hit" 1 (stat kvs "hits");
        Alcotest.(check int) "still one campaign" 1 (stat kvs "sim_runs")
      | _ -> Alcotest.fail "third ask")

let test_e2e_batch_cap () =
  (* A batch over max_batch_lines is a protocol error: the server
     answers (after every earlier pipelined frame, in order) with a
     single-line error frame and closes that connection — only that
     connection; the daemon survives. *)
  let socket = "test-serve-batchcap.sock" in
  with_server ~socket (fun c _pid ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          Protocol.write_frame fd "ping";
          Protocol.write_frame fd
            (String.concat "\n"
               (List.init (Protocol.max_batch_lines + 1) (fun _ -> "ping")));
          (match Protocol.read_frame fd with
          | Some "ok" -> ()
          | _ -> Alcotest.fail "pipelined good frame should answer first");
          (match Protocol.read_frame fd with
          | Some payload -> (
            match Protocol.decode_reply payload with
            | Ok (Protocol.Error_ _) -> ()
            | _ -> Alcotest.failf "expected error reply, got %S" payload)
          | None -> Alcotest.fail "expected an error reply before close");
          (match Protocol.read_frame fd with
          | None -> ()
          | Some _ -> Alcotest.fail "connection should be closed"));
      (* The daemon is unharmed: the untouched connection still works. *)
      match Client.request1 c Protocol.Ping with
      | Protocol.Ok_ -> ()
      | _ -> Alcotest.fail "daemon should survive the oversized batch")

let test_e2e_large_batch () =
  (* A maximal legal batch of the heaviest closed form: the ~500 KB
     reply far exceeds the socket buffer, so this drives the buffered
     non-blocking write path (EAGAIN, partial writes, select on
     writability) end to end. *)
  let socket = "test-serve-bigbatch.sock" in
  with_server ~socket (fun c _pid ->
      let n = 2000 in
      let replies =
        Client.round_trip_raw c
          (List.init n (fun _ -> "table attack=prime-and-probe"))
      in
      Alcotest.(check int) "one reply per query" n (List.length replies);
      List.iter
        (fun r ->
          match Protocol.decode_reply r with
          | Ok (Protocol.Table_v rows) ->
            Alcotest.(check int) "nine rows" 9 (List.length rows)
          | _ -> Alcotest.failf "expected table reply, got %S" r)
        replies)

let test_preflight_stale () =
  (* A bound-then-abandoned socket file (a crash artifact): preflight
     refuses with a distinct message, and a server cannot start. *)
  let socket = "test-serve-stale.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;  (* no listen, no unlink: stale file left behind *)
  (match Server.preflight ~socket with
  | Error msg ->
    Alcotest.(check bool) "stale named" true
      (String.length msg > 0
      && String.lowercase_ascii msg |> fun m ->
         let contains sub =
           let n = String.length m and k = String.length sub in
           let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
           go 0
         in
         contains "stale")
  | Ok () -> Alcotest.fail "stale socket accepted");
  (match Server.run { Server.socket; execution = Server.Inline; max_memo = 4 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "server started over a stale socket");
  Sys.remove socket;
  (* A plain file that is not a socket at all. *)
  let socket = "test-serve-notsock" in
  let oc = open_out socket in
  output_string oc "not a socket";
  close_out oc;
  (match Server.preflight ~socket with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-socket path accepted");
  Sys.remove socket

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "query round trips" `Quick test_query_roundtrip;
          Alcotest.test_case "reply round trips" `Quick test_reply_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "pas ways mismatch refuses to encode" `Quick
            test_encode_ways_mismatch;
          Alcotest.test_case "incremental frames" `Quick test_frames_incremental;
        ] );
      ( "canonical keys",
        [
          Alcotest.test_case "equivalent spellings" `Quick test_key_equivalence;
          Alcotest.test_case "matrix distinctness" `Quick test_key_distinctness;
          test_key_policy_injective;
          Alcotest.test_case "policy spellings + error menu" `Quick
            test_policy_spellings;
        ] );
      ( "memo",
        [
          Alcotest.test_case "bounded table" `Quick test_memo_table;
          Alcotest.test_case "inflight registry" `Quick test_inflight;
        ] );
      ( "router",
        [
          Alcotest.test_case "closed form + memo" `Quick test_router_closed_form;
          Alcotest.test_case "sim memoization" `Quick test_router_sim_memoization;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "inline server" `Quick test_e2e_inline;
          Alcotest.test_case "oversized batch" `Quick test_e2e_batch_cap;
          Alcotest.test_case "buffered large batch" `Quick test_e2e_large_batch;
          Alcotest.test_case "backpressure" `Quick test_e2e_overloaded;
          Alcotest.test_case "in-flight dedup" `Quick test_e2e_dedup;
          Alcotest.test_case "stale socket preflight" `Quick test_preflight_stale;
        ] );
    ]
