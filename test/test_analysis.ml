(* Tests for the analytical layer: the paper's edge probabilities, PAS
   tables, noise curve, pre-PAS closed forms and the resilience
   classification. *)

open Cachesec_stats
open Cachesec_cache
open Cachesec_analysis

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let check_prob = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Attack_type ---------------------------------------------------------- *)

let test_attack_type () =
  Alcotest.(check int) "four types" 4 (List.length Attack_type.all);
  Alcotest.(check (list int)) "numbering" [ 1; 2; 3; 4 ]
    (List.map Attack_type.type_number Attack_type.all);
  List.iter
    (fun a ->
      Alcotest.(check bool) "name roundtrip" true
        (Attack_type.of_name (Attack_type.name a) = Some a))
    Attack_type.all;
  Alcotest.(check bool) "type1 miss+timing" true
    (Attack_type.is_miss_based Attack_type.Evict_and_time
    && Attack_type.is_timing_based Attack_type.Evict_and_time);
  Alcotest.(check bool) "type4 hit+access" true
    ((not (Attack_type.is_miss_based Attack_type.Flush_and_reload))
    && not (Attack_type.is_timing_based Attack_type.Flush_and_reload))

(* --- Noise ------------------------------------------------------------------ *)

let test_noise_p5 () =
  check_prob "sigma 0" 1. (Noise.p5 ~sigma:0.);
  check_close 1e-3 "paper value at sigma 1" 0.691 (Noise.p5 ~sigma:1.);
  check_close 1e-9 "complement" (1. -. Noise.p5 ~sigma:2.)
    (Noise.error_rate ~sigma:2.);
  Alcotest.(check bool) "raises on negative" true
    (try
       ignore (Noise.p5 ~sigma:(-1.));
       false
     with Invalid_argument _ -> true)

let prop_noise_monotone =
  qtest "p5 decreases with sigma"
    QCheck.(pair (float_bound_inclusive 5.) (float_bound_inclusive 5.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Noise.p5 ~sigma:hi <= Noise.p5 ~sigma:lo +. 1e-12)

let prop_sigma_inverse =
  qtest ~count:50 "sigma_for_p5 inverts p5" QCheck.(float_range 0.55 0.99)
    (fun target ->
      let sigma = Noise.sigma_for_p5 ~target in
      Float.abs (Noise.p5 ~sigma -. target) < 1e-6)

let test_trials_to_overcome () =
  Alcotest.(check int) "no noise" 1
    (Noise.trials_to_overcome ~sigma:0. ~confidence:0.99);
  let t1 = Noise.trials_to_overcome ~sigma:1. ~confidence:0.99 in
  let t2 = Noise.trials_to_overcome ~sigma:2. ~confidence:0.99 in
  Alcotest.(check bool) "more noise, more trials" true (t2 > t1);
  (* n = ceil((2 sigma z)^2) with z = Phi^-1(0.99) ~ 2.326: sigma 1 -> 22. *)
  Alcotest.(check int) "known value" 22 t1

(* --- Edge probabilities: the paper's Table 3 --------------------------------- *)

let t3 spec = Edge_probs.evict_and_time spec ()

let test_table3_sa () =
  let e = t3 Spec.paper_sa in
  check_prob "p1" 1. (Edge_probs.find e "p1");
  check_prob "p2" 0.125 (Edge_probs.find e "p2");
  check_prob "p3" 1. (Edge_probs.find e "p3");
  check_prob "p4" 1. (Edge_probs.find e "p4");
  check_prob "p5" 1. (Edge_probs.find e "p5");
  check_prob "PAS" 0.125 (Edge_probs.pas_product e)

let test_table3_rows () =
  let expect =
    [
      (Spec.paper_sp, 0.);
      (Spec.paper_pl, 0.);
      (Spec.paper_nomo, 1. /. 6.);
      (Spec.paper_newcache, 1. /. 512.);
      (Spec.paper_rp, 1. /. 64. /. 8.);
      (Spec.paper_rf, 0.125);
      (Spec.paper_re, 1.0);
    ]
  in
  List.iter
    (fun (spec, pas) ->
      check_close 1e-9 (Spec.name spec) pas (Edge_probs.pas_product (t3 spec)))
    expect;
  check_close 1e-3 "noisy" 0.0864 (Edge_probs.pas_product (t3 Spec.paper_noisy))

let test_table3_sp_detail () =
  (* The paper's SP row: p1 = 0 but p2 stays 1/8. *)
  let e = t3 Spec.paper_sp in
  check_prob "p1 zero" 0. (Edge_probs.find e "p1");
  check_prob "p2 eighth" 0.125 (Edge_probs.find e "p2")

let test_table3_pl_detail () =
  let e = t3 Spec.paper_pl in
  check_prob "p2 eighth" 0.125 (Edge_probs.find e "p2");
  check_prob "p3 zero" 0. (Edge_probs.find e "p3")

(* --- Table 5 (collision) ------------------------------------------------------ *)

let test_table5 () =
  let col spec = Edge_probs.cache_collision spec () in
  check_close 1e-9 "rf p0" (1. /. 129.) (Edge_probs.find (col Spec.paper_rf) "p0");
  check_close 1e-9 "re p4"
    (1. -. (1. /. 5120.))
    (Edge_probs.find (col Spec.paper_re) "p4");
  check_prob "sa pas" 1. (Edge_probs.pas_product (col Spec.paper_sa));
  check_close 1e-9 "rf pas" (1. /. 129.) (Edge_probs.pas_product (col Spec.paper_rf));
  check_close 1e-3 "noisy pas" 0.691 (Edge_probs.pas_product (col Spec.paper_noisy))

(* --- Table 6 (all four types) --------------------------------------------------- *)

let test_table6_matches_paper () =
  (* Every computed PAS within 7% relative (or 1e-6 absolute) of the
     paper's printed value, except the two documented cells. *)
  let skip = [ ("RF Cache", 2); ("Noisy Cache", 2) ] in
  List.iter
    (fun (r : Pas_tables.table6_row) ->
      match List.assoc_opt r.arch6 Pas_tables.paper_table6 with
      | None -> Alcotest.failf "missing paper row %s" r.arch6
      | Some paper ->
        Array.iteri
          (fun i p ->
            if not (List.mem (r.arch6, i + 1) skip) then begin
              let c = r.pas_by_type.(i) in
              let ok =
                Float.abs (c -. p) < 1e-6
                || (p > 0. && Float.abs (c -. p) /. p < 0.07)
              in
              if not ok then
                Alcotest.failf "%s type %d: computed %g vs paper %g" r.arch6
                  (i + 1) c p
            end)
          paper)
    (Pas_tables.table6 ())

let test_table6_documented_deltas () =
  (* The two known deviations stay small and on the safe side. *)
  let rows = Pas_tables.table6 () in
  let find arch =
    List.find (fun (r : Pas_tables.table6_row) -> r.arch6 = arch) rows
  in
  let rf = (find "RF Cache").pas_by_type.(1) in
  Alcotest.(check bool) "rf type2 near paper" true
    (rf > 1.0e-4 && rf < 1.4e-4);
  let noisy = (find "Noisy Cache").pas_by_type.(1) in
  Alcotest.(check bool) "noisy type2 near paper" true
    (noisy > 0.010 && noisy < 0.013)

let test_type4_pid_caches () =
  List.iter
    (fun spec ->
      check_prob
        (Spec.name spec ^ " type4 zero")
        0.
        (Attack_models.pas Attack_type.Flush_and_reload spec ()))
    [ Spec.paper_newcache; Spec.paper_rp ]

let prop_all_edge_probs_valid =
  let pairs =
    List.concat_map
      (fun a -> List.map (fun s -> (a, s)) Spec.all_paper)
      Attack_type.all
  in
  qtest ~count:(List.length pairs) "all 36 edge sets lie in [0,1]"
    QCheck.(int_bound (List.length pairs - 1))
    (fun i ->
      let a, s = List.nth pairs i in
      List.for_all
        (fun (e : Edge_probs.edge) -> e.prob >= 0. && e.prob <= 1.)
        (Edge_probs.for_attack a s ()))

(* --- Attack models (Theorem 1 end-to-end) ---------------------------------------- *)

let test_theorem1_all_36 () =
  List.iter
    (fun attack ->
      List.iter
        (fun spec ->
          let product =
            Edge_probs.pas_product (Edge_probs.for_attack attack spec ())
          in
          let graph_pas = Attack_models.pas attack spec () in
          if Float.abs (product -. graph_pas) > 1e-12 then
            Alcotest.failf "%s/%s: product %g vs graph %g"
              (Attack_type.name attack) (Spec.name spec) product graph_pas)
        Spec.all_paper)
    Attack_type.all

let test_model_shapes () =
  let open Cachesec_core in
  let g1 = Attack_models.evict_and_time Spec.paper_sa () in
  Alcotest.(check int) "type1 nodes" 7 (Graph.node_count g1);
  Alcotest.(check int) "type1 edges" 5 (Graph.edge_count g1);
  let g3 = Attack_models.cache_collision Spec.paper_rf () in
  Alcotest.(check int) "collision has no attacker origin" 0
    (List.length (Graph.attacker_origins g3));
  Alcotest.(check int) "collision victim origins" 2
    (List.length (Graph.victim_origins g3));
  Alcotest.(check int) "collision attacker path empty" 0
    (List.length (Pas.attacker_critical_edges g3));
  let g2 = Attack_models.prime_and_probe Spec.paper_sa () in
  Alcotest.(check int) "type2 edges" 8 (Graph.edge_count g2)

(* --- Pre-PAS ------------------------------------------------------------------------ *)

let test_prepas_lru_step () =
  check_prob "below" 0. (Prepas.sa_lru ~ways:8 ~k:7);
  check_prob "at" 1. (Prepas.sa_lru ~ways:8 ~k:8);
  check_prob "above" 1. (Prepas.sa_lru ~ways:8 ~k:100)

let test_prepas_random_coupon () =
  check_close 1e-12 "matches coupon"
    (Coupon.prob_all_covered ~bins:8 ~trials:20)
    (Prepas.sa_random ~ways:8 ~k:20)

let test_prepas_newcache () =
  check_close 1e-12 "formula"
    (1. -. ((511. /. 512.) ** 30.))
    (Prepas.newcache ~logical_lines:512 ~k:30)

let test_prepas_re_free_lunch () =
  (* RE at interval 10 equals SA with k + k/10 accesses. *)
  check_close 1e-12 "free lunches"
    (Prepas.sa_random ~ways:8 ~k:33)
    (Prepas.re ~ways:8 ~interval:10 ~k:30 ~policy:Replacement.Random);
  (* LRU: 8-way cleaned at k=8 normally, k=7 with a free lunch at T=7. *)
  check_prob "lru boundary" 1.
    (Prepas.re ~ways:8 ~interval:7 ~k:7 ~policy:Replacement.Lru)

let prop_re_dominates_sa =
  qtest "RE cleaning never harder than SA" QCheck.(int_range 0 120) (fun k ->
      Prepas.re ~ways:8 ~interval:10 ~k ~policy:Replacement.Random
      >= Prepas.sa_random ~ways:8 ~k -. 1e-12)

let test_prepas_nomo () =
  check_prob "fits reservation" 0.
    (Prepas.nomo ~ways:8 ~reserved:2 ~victim_lines_in_set:2 ~k:100
       ~policy:Replacement.Random);
  check_close 1e-12 "exceeds: shared-way game"
    (Prepas.sa_random ~ways:6 ~k:20)
    (Prepas.nomo ~ways:8 ~reserved:2 ~victim_lines_in_set:3 ~k:20
       ~policy:Replacement.Random);
  check_prob "alpha 0 degrades to SA"
    (Prepas.sa_random ~ways:8 ~k:20)
    (Prepas.nomo ~ways:8 ~reserved:0 ~victim_lines_in_set:1 ~k:20
       ~policy:Replacement.Random)

let test_prepas_for_spec () =
  check_prob "sp" 0. (Prepas.for_spec Spec.paper_sp ~k:1000);
  check_prob "pl locked" 0. (Prepas.for_spec Spec.paper_pl ~k:1000);
  check_close 1e-12 "pl unlocked = sa"
    (Prepas.sa_random ~ways:8 ~k:20)
    (Prepas.for_spec ~prefetched:false Spec.paper_pl ~k:20);
  check_close 1e-12 "rp = sa"
    (Prepas.sa_random ~ways:8 ~k:20)
    (Prepas.for_spec Spec.paper_rp ~k:20);
  check_close 1e-12 "rf = sa"
    (Prepas.sa_random ~ways:8 ~k:20)
    (Prepas.for_spec Spec.paper_rf ~k:20)

let test_prepas_policy_arms () =
  (* FIFO owns its arm but coincides with the LRU step. *)
  check_prob "fifo below" 0. (Prepas.sa_fifo ~ways:8 ~k:7);
  check_prob "fifo at" 1. (Prepas.sa_fifo ~ways:8 ~k:8);
  (* MRU/LFU/MFU self-thrash: cleaning succeeds only in a 1-way set. *)
  List.iter
    (fun (name, f) ->
      check_prob (name ^ " multi-way never cleans") 0. (f ~ways:8 ~k:10_000);
      check_prob (name ^ " single-way k=0") 0. (f ~ways:1 ~k:0);
      check_prob (name ^ " single-way k=1") 1. (f ~ways:1 ~k:1))
    [ ("mru", Prepas.sa_mru); ("lfu", Prepas.sa_lfu); ("mfu", Prepas.sa_mfu) ];
  (* Tree-PLRU cleans on the same step as true LRU. *)
  check_prob "plru below" 0. (Prepas.sa_plru ~ways:8 ~k:7);
  check_prob "plru at" 1. (Prepas.sa_plru ~ways:8 ~k:8);
  (* The exhaustive dispatch routes each policy to its own arm. *)
  List.iter
    (fun (policy, expect) ->
      check_prob ("dispatch " ^ Replacement.policy_to_string policy) expect
        (Prepas.sa ~ways:8 ~k:8 ~policy))
    [
      (Replacement.Lru, 1.);
      (Replacement.Fifo, 1.);
      (Replacement.Random, Coupon.prob_all_covered ~bins:8 ~trials:8);
      (Replacement.Mru, 0.);
      (Replacement.Lfu, 0.);
      (Replacement.Mfu, 0.);
      (Replacement.Plru, 1.);
    ]

(* The closed forms are derivations, not fits — check every policy's
   arm against the Monte-Carlo cleaning game played on the real SA
   engine (which exercises the monomorphized kernels and policy hooks). *)
let test_prepas_policy_monte_carlo () =
  List.iter
    (fun policy ->
      let spec = Spec.with_policy Spec.paper_sa policy in
      List.iter
        (fun k ->
          let closed = Prepas.for_spec spec ~k in
          let rng = Rng.create ~seed:0xC1EA0 in
          let mc =
            Cachesec_attacks.Cleaner.monte_carlo spec ~accesses:k ~samples:400
              ~rng
          in
          if Float.abs (closed -. mc) > 0.07 then
            Alcotest.failf "%s k=%d: closed form %.4f vs Monte-Carlo %.4f"
              (Replacement.policy_to_string policy)
              k closed mc)
        [ 7; 8; 32 ])
    Policy.all

let test_cleaning_limit () =
  check_prob "sa random" 1. (Prepas.cleaning_limit Spec.paper_sa);
  check_prob "sa lru" 1.
    (Prepas.cleaning_limit (Spec.with_policy Spec.paper_sa Replacement.Lru));
  check_prob "sa mru" 0.
    (Prepas.cleaning_limit (Spec.with_policy Spec.paper_sa Replacement.Mru));
  check_prob "sa lfu" 0.
    (Prepas.cleaning_limit (Spec.with_policy Spec.paper_sa Replacement.Lfu));
  check_prob "sp" 0. (Prepas.cleaning_limit Spec.paper_sp);
  check_prob "pl locked" 0. (Prepas.cleaning_limit Spec.paper_pl);
  check_prob "pl unlocked" 1.
    (Prepas.cleaning_limit ~prefetched:false Spec.paper_pl);
  (* The paper's RE cache is direct-mapped, so even MRU cleans it. *)
  check_prob "re mru (1-way)" 1.
    (Prepas.cleaning_limit (Spec.with_policy Spec.paper_re Replacement.Mru))

let prop_prepas_monotone_in_k =
  qtest "pre-PAS non-decreasing in k"
    QCheck.(pair (int_bound 8) (int_range 0 100))
    (fun (which, k) ->
      let spec = List.nth Spec.all_paper which in
      Prepas.for_spec spec ~k <= Prepas.for_spec spec ~k:(k + 1) +. 1e-12)

let prop_prepas_in_unit =
  qtest "pre-PAS in [0,1]"
    QCheck.(pair (int_bound 8) (int_range 0 300))
    (fun (which, k) ->
      let spec = List.nth Spec.all_paper which in
      let p = Prepas.for_spec spec ~k in
      p >= 0. && p <= 1.)

(* --- Resilience (Table 7) ------------------------------------------------------------ *)

let test_table7_matches_paper () =
  List.iter2
    (fun (arch_c, computed) (arch_p, paper) ->
      Alcotest.(check string) "row order" arch_p arch_c;
      Array.iteri
        (fun i v ->
          if v <> paper.(i) then
            Alcotest.failf "%s type %d: computed %s vs paper %s" arch_c (i + 1)
              (Resilience.verdict_to_string v)
              (Resilience.verdict_to_string paper.(i)))
        computed)
    (Resilience.table7 ()) Resilience.paper_table7

let test_resilience_misc () =
  Alcotest.(check string) "marks" "Y" (Resilience.verdict_mark Resilience.High);
  let c = Resilience.combined Spec.paper_newcache Attack_type.Evict_and_time in
  Alcotest.(check bool) "combined pas small" true (c.Resilience.pas < 0.01);
  Alcotest.(check bool) "combined prepas callable" true
    (c.Resilience.prepas_at 64 < 0.2);
  Alcotest.(check bool) "verdict high" true (c.Resilience.verdict = Resilience.High)

let test_policy_matrix () =
  let m = Resilience.policy_matrix () in
  Alcotest.(check int) "8 policied archs" 8 (List.length m);
  List.iter
    (fun (_, by_policy) ->
      Alcotest.(check int) "7 policies" 7 (List.length by_policy);
      List.iter
        (fun (_, cells) ->
          Alcotest.(check int) "4 attacks" 4 (List.length cells);
          List.iter
            (fun (c : Resilience.policy_cell) ->
              Alcotest.(check bool) "effective <= pas" true
                (c.effective <= c.pas +. 1e-12);
              Alcotest.(check bool) "limit is a 0/1 bit" true
                (c.limit = 0. || c.limit = 1.);
              Alcotest.(check bool) "bits non-negative" true (c.bits >= 0.))
            cells)
        by_policy)
    m;
  (* MRU zeroes the SA cache's miss-based columns: the self-thrashing
     attacker can never clean the victim's set. *)
  let sa_mru =
    let _, by_policy =
      List.find (fun (s, _) -> Spec.name s = "sa") m
    in
    List.assoc Replacement.Mru by_policy
  in
  List.iter
    (fun (c : Resilience.policy_cell) ->
      if Attack_type.is_miss_based c.attack then begin
        check_prob "sa/mru miss-based effective PAS" 0. c.effective;
        Alcotest.(check bool) "sa/mru miss-based verdict" true
          (c.verdict = Resilience.High)
      end
      else
        Alcotest.(check bool) "sa/mru reuse-based unaffected" true
          (c.effective = c.pas))
    sa_mru;
  (* Under LRU/random/fifo/plru the SA cache keeps its Table 7 row. *)
  let sa_lru =
    let _, by_policy = List.find (fun (s, _) -> Spec.name s = "sa") m in
    List.assoc Replacement.Lru by_policy
  in
  List.iter
    (fun (c : Resilience.policy_cell) ->
      Alcotest.(check bool) "sa/lru stays low-resilience" true
        (c.verdict = Resilience.Low))
    sa_lru

let test_resilience_threshold_sensitivity () =
  (* With a huge threshold everything is resilient except pure-noise
     designs. *)
  Alcotest.(check bool) "sa resilient at threshold 2" true
    (Resilience.classify ~threshold:2. Spec.paper_sa Attack_type.Evict_and_time
     = Resilience.High);
  Alcotest.(check bool) "noisy never resilient" true
    (Resilience.classify ~threshold:2. Spec.paper_noisy Attack_type.Evict_and_time
     = Resilience.Low)

(* --- Perf model -------------------------------------------------------------------- *)

let test_perf_model_popularity () =
  let z = Perf_model.zipf_popularity ~n:100 ~exponent:1.0 in
  check_close 1e-9 "normalised" 1. (Array.fold_left ( +. ) 0. z);
  Alcotest.(check bool) "rank 1 twice rank 2" true
    (Float.abs ((z.(0) /. z.(1)) -. 2.) < 1e-9);
  let u = Perf_model.uniform_popularity ~n:50 in
  check_close 1e-9 "uniform cell" 0.02 u.(0)

let test_perf_model_sane () =
  let pop = Perf_model.zipf_popularity ~n:1000 ~exponent:1.0 in
  let h256 = Perf_model.lru_hit_rate ~popularity:pop ~cache_lines:256 in
  let h512 = Perf_model.lru_hit_rate ~popularity:pop ~cache_lines:512 in
  Alcotest.(check bool) "in unit interval" true (h256 > 0. && h256 < 1.);
  Alcotest.(check bool) "monotone in capacity" true (h512 > h256);
  check_close 1e-9 "everything fits" 1.
    (Perf_model.lru_hit_rate ~popularity:pop ~cache_lines:1000)

let test_perf_model_lru_vs_random () =
  let pop = Perf_model.zipf_popularity ~n:2048 ~exponent:1.0 in
  let lru = Perf_model.lru_hit_rate ~popularity:pop ~cache_lines:512 in
  let rnd = Perf_model.random_hit_rate ~popularity:pop ~cache_lines:512 in
  Alcotest.(check bool) "lru exploits skew better" true (lru > rnd)

let test_perf_model_vs_sim () =
  let open Cachesec_stats in
  let open Cachesec_cache in
  let n = 1024 and exponent = 1.0 in
  let pop = Perf_model.zipf_popularity ~n ~exponent in
  let model = Perf_model.random_hit_rate ~popularity:pop ~cache_lines:512 in
  let rng = Rng.create ~seed:99 in
  let sa =
    Sa.create ~config:Config.fully_associative ~policy:Replacement.Random
      ~rng:(Rng.split rng) ()
  in
  let sim =
    Workload.hit_rate (Sa.engine sa) ~pid:0
      (Workload.Zipf { base = 0; range = n; exponent })
      ~rng:(Rng.split rng) ~accesses:80000
  in
  check_close 0.015 "fagin-king matches simulator" model sim

let () =
  Alcotest.run "analysis"
    [
      ("attack types", [ Alcotest.test_case "classification" `Quick test_attack_type ]);
      ( "noise",
        [
          Alcotest.test_case "p5" `Quick test_noise_p5;
          prop_noise_monotone;
          prop_sigma_inverse;
          Alcotest.test_case "trials to overcome" `Quick test_trials_to_overcome;
        ] );
      ( "table 3",
        [
          Alcotest.test_case "sa row" `Quick test_table3_sa;
          Alcotest.test_case "all rows" `Quick test_table3_rows;
          Alcotest.test_case "sp detail" `Quick test_table3_sp_detail;
          Alcotest.test_case "pl detail" `Quick test_table3_pl_detail;
        ] );
      ("table 5", [ Alcotest.test_case "collision rows" `Quick test_table5 ]);
      ( "table 6",
        [
          Alcotest.test_case "matches paper" `Quick test_table6_matches_paper;
          Alcotest.test_case "documented deltas" `Quick test_table6_documented_deltas;
          Alcotest.test_case "pid caches type4" `Quick test_type4_pid_caches;
          prop_all_edge_probs_valid;
        ] );
      ( "attack models",
        [
          Alcotest.test_case "theorem 1 on all 36" `Quick test_theorem1_all_36;
          Alcotest.test_case "graph shapes" `Quick test_model_shapes;
        ] );
      ( "pre-pas",
        [
          Alcotest.test_case "lru step" `Quick test_prepas_lru_step;
          Alcotest.test_case "random coupon" `Quick test_prepas_random_coupon;
          Alcotest.test_case "newcache" `Quick test_prepas_newcache;
          Alcotest.test_case "re free lunch" `Quick test_prepas_re_free_lunch;
          prop_re_dominates_sa;
          Alcotest.test_case "nomo" `Quick test_prepas_nomo;
          Alcotest.test_case "for_spec" `Quick test_prepas_for_spec;
          Alcotest.test_case "per-policy arms" `Quick test_prepas_policy_arms;
          Alcotest.test_case "policy closed forms vs monte-carlo" `Quick
            test_prepas_policy_monte_carlo;
          Alcotest.test_case "cleaning limit" `Quick test_cleaning_limit;
          prop_prepas_monotone_in_k;
          prop_prepas_in_unit;
        ] );
      ( "perf model",
        [
          Alcotest.test_case "popularity vectors" `Quick test_perf_model_popularity;
          Alcotest.test_case "hit rates sane" `Quick test_perf_model_sane;
          Alcotest.test_case "lru beats random under skew" `Quick
            test_perf_model_lru_vs_random;
          Alcotest.test_case "matches simulator" `Slow test_perf_model_vs_sim;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "table 7 matches paper" `Quick test_table7_matches_paper;
          Alcotest.test_case "misc" `Quick test_resilience_misc;
          Alcotest.test_case "threshold sensitivity" `Quick
            test_resilience_threshold_sensitivity;
          Alcotest.test_case "policy matrix" `Quick test_policy_matrix;
        ] );
    ]
