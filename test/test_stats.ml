(* Unit and property tests for the numerics substrate. *)

open Cachesec_stats

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_split_independent () =
  let root = Rng.create ~seed:3 in
  let a = Rng.split root in
  let b = Rng.split root in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_copy_freezes () =
  let a = Rng.create ~seed:4 in
  let b = Rng.copy a in
  Alcotest.(check int) "copy replays" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_pick () =
  let r = Rng.create ~seed:6 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

let test_rng_gaussian_zero_sigma () =
  let r = Rng.create ~seed:8 in
  check_float "mu exactly" 3.25 (Rng.gaussian r ~mu:3.25 ~sigma:0.)

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:9 in
  let s = Summary.create () in
  for _ = 1 to 20000 do
    Summary.add s (Rng.gaussian r ~mu:2. ~sigma:0.5)
  done;
  check_close 0.02 "mean" 2. (Summary.mean s);
  check_close 0.02 "std" 0.5 (Summary.std s)

let test_rng_bool_fair () =
  let r = Rng.create ~seed:10 in
  let heads = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool r then incr heads
  done;
  Alcotest.(check bool) "roughly fair" true (!heads > 4700 && !heads < 5300)

let prop_permutation =
  qtest "permutation is a bijection" QCheck.(int_range 1 200) (fun n ->
      let r = Rng.create ~seed:n in
      let p = Rng.permutation r n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all Fun.id seen)

let prop_shuffle_multiset =
  qtest "shuffle preserves elements" QCheck.(list int) (fun l ->
      let r = Rng.create ~seed:(List.length l) in
      let a = Array.of_list l in
      Rng.shuffle_in_place r a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* --- Rng.derive: the scheduler's determinism contract ---------------- *)

let test_rng_derive_deterministic () =
  (* Equal (seed, i) pairs give equal derived streams, across copy and
     across independently created parents. *)
  let a = Rng.create ~seed:21 in
  let b = Rng.create ~seed:21 in
  let c = Rng.copy a in
  let da = Rng.derive a 5 and db = Rng.derive b 5 and dc = Rng.derive c 5 in
  for _ = 1 to 50 do
    let x = Rng.int da 1000000 in
    Alcotest.(check int) "fresh parent" x (Rng.int db 1000000);
    Alcotest.(check int) "copied parent" x (Rng.int dc 1000000)
  done

let test_rng_derive_pure () =
  (* derive never advances the parent: the parent's stream after a
     derive is the stream it would have produced anyway. *)
  let a = Rng.create ~seed:22 in
  let witness = Rng.copy a in
  ignore (Rng.derive a 3);
  ignore (Rng.derive a 4);
  for _ = 1 to 20 do
    Alcotest.(check int) "parent unperturbed" (Rng.int witness 1000000)
      (Rng.int a 1000000)
  done;
  Alcotest.(check int) "seed preserved" 22 (Rng.seed a)

let test_rng_derive_seed_disperses () =
  (* Nearby (base, i) pairs must land on distinct, well-separated
     seeds: a 32x32 grid of neighbours has no collisions. *)
  let module IS = Set.Make (Int) in
  let seeds = ref IS.empty in
  for base = 0 to 31 do
    for i = 0 to 31 do
      seeds := IS.add (Rng.derive_seed base i) !seeds
    done
  done;
  Alcotest.(check int) "1024 distinct seeds" 1024 (IS.cardinal !seeds)

let prop_derive_sibling_correlation =
  (* Sibling streams (same base, adjacent indices) must look pairwise
     independent: the Pearson correlation of 2000 uniform draws stays
     within Monte-Carlo noise. *)
  qtest ~count:40 "sibling streams uncorrelated"
    QCheck.(pair small_nat small_nat)
    (fun (base, i) ->
      let a = Rng.create ~seed:(Rng.derive_seed base i) in
      let b = Rng.create ~seed:(Rng.derive_seed base (i + 1)) in
      let n = 2000 in
      let sx = ref 0. and sy = ref 0. in
      let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
      for _ = 1 to n do
        let x = Rng.float a 1. and y = Rng.float b 1. in
        sx := !sx +. x;
        sy := !sy +. y;
        sxx := !sxx +. (x *. x);
        syy := !syy +. (y *. y);
        sxy := !sxy +. (x *. y)
      done;
      let nf = float_of_int n in
      let mx = !sx /. nf and my = !sy /. nf in
      let cov = (!sxy /. nf) -. (mx *. my) in
      let vx = (!sxx /. nf) -. (mx *. mx) in
      let vy = (!syy /. nf) -. (my *. my) in
      Float.abs (cov /. sqrt (vx *. vy)) < 0.1)

let prop_derive_child_vs_parent =
  (* A derived child must not replay its parent's stream. *)
  qtest ~count:50 "child differs from parent" QCheck.small_nat (fun base ->
      let parent = Rng.create ~seed:base in
      let child = Rng.derive parent 0 in
      let xs = List.init 20 (fun _ -> Rng.int parent 1000000) in
      let ys = List.init 20 (fun _ -> Rng.int child 1000000) in
      xs <> ys)

(* --- Special --------------------------------------------------------- *)

let test_erf_known () =
  check_float "erf 0" 0. (Special.erf 0.);
  check_close 2e-7 "erf 1" 0.8427007929 (Special.erf 1.);
  check_close 2e-7 "erf 2" 0.9953222650 (Special.erf 2.);
  check_close 1e-6 "erf inf" 1. (Special.erf 10.)

let prop_erf_odd =
  qtest "erf is odd" QCheck.(float_bound_inclusive 5.) (fun x ->
      Float.abs (Special.erf (-.x) +. Special.erf x) < 1e-12)

let test_erfc_complement () =
  check_float "erfc 0" 1. (Special.erfc 0.);
  check_close 1e-9 "complement" (1. -. Special.erf 0.7) (Special.erfc 0.7)

let test_normal_cdf () =
  check_close 1e-7 "at mu" 0.5 (Special.normal_cdf 0.);
  check_close 1e-4 "one sigma" 0.8413 (Special.normal_cdf 1.);
  check_close 1e-4 "shifted" 0.8413 (Special.normal_cdf ~mu:5. ~sigma:2. 7.);
  Alcotest.check_raises "bad sigma"
    (Invalid_argument "Special.normal_cdf: sigma must be positive") (fun () ->
      ignore (Special.normal_cdf ~sigma:0. 1.))

let prop_cdf_monotone =
  qtest "cdf monotone"
    QCheck.(pair (float_bound_inclusive 4.) (float_bound_inclusive 4.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Special.normal_cdf lo <= Special.normal_cdf hi +. 1e-12)

let test_normal_pdf_integral () =
  (* Trapezoid over [-6, 6] should be ~1. *)
  let n = 2000 in
  let h = 12. /. float_of_int n in
  let acc = ref 0. in
  for i = 0 to n do
    let x = -6. +. (float_of_int i *. h) in
    let w = if i = 0 || i = n then 0.5 else 1. in
    acc := !acc +. (w *. Special.normal_pdf x)
  done;
  check_close 1e-6 "integral" 1. (!acc *. h)

let test_log_factorial () =
  check_float "0!" 0. (Special.log_factorial 0);
  check_float "1!" 0. (Special.log_factorial 1);
  check_close 1e-9 "5!" (log 120.) (Special.log_factorial 5);
  check_close 1e-6 "20!" (log 2.43290200817664e18) (Special.log_factorial 20);
  (* Continuity across the cached/Stirling boundary. *)
  let a = Special.log_factorial 4096 and b = Special.log_factorial 4097 in
  check_close 1e-6 "boundary step" (log 4097.) (b -. a);
  Alcotest.check_raises "negative"
    (Invalid_argument "Special.log_factorial: negative argument") (fun () ->
      ignore (Special.log_factorial (-1)))

let test_binomial () =
  check_close 1e-9 "C(8,3)" 56. (Special.binomial 8 3);
  check_float "C(5,-1)" 0. (Special.binomial 5 (-1));
  check_float "C(5,6)" 0. (Special.binomial 5 6);
  check_close 1e4 "C(60,30)" 1.18264581564861e17 (Special.binomial 60 30)

let prop_binomial_symmetry =
  qtest "C(n,k) = C(n,n-k)"
    QCheck.(pair (int_range 0 300) (int_range 0 300))
    (fun (n, k) ->
      let k = if n = 0 then 0 else k mod (n + 1) in
      Float.abs (Special.log_binomial n k -. Special.log_binomial n (n - k))
      < 1e-9)

let prop_pascal =
  qtest "Pascal identity"
    QCheck.(pair (int_range 1 60) (int_range 0 60))
    (fun (n, k) ->
      let k = k mod n in
      let lhs = Special.binomial n k in
      let rhs = Special.binomial (n - 1) k +. Special.binomial (n - 1) (k - 1) in
      Float.abs (lhs -. rhs) /. Float.max 1. lhs < 1e-9)

let prop_log1mexp =
  qtest "log1mexp identity"
    QCheck.(float_range (-30.) (-0.001))
    (fun x ->
      let direct = log (1. -. exp x) in
      Float.abs (Special.log1mexp x -. direct) < 1e-7)

(* --- Summary --------------------------------------------------------- *)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check int) "count" 0 (Summary.count s)

let test_summary_known () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Summary.mean s);
  check_close 1e-9 "variance" (32. /. 7.) (Summary.variance s);
  check_float "min" 2. (Summary.min s);
  check_float "max" 9. (Summary.max s);
  check_float "total" 40. (Summary.total s);
  Alcotest.(check int) "count" 8 (Summary.count s)

let prop_summary_merge =
  qtest "merge equals concatenation"
    QCheck.(
      pair (list (float_bound_inclusive 100.)) (list (float_bound_inclusive 100.)))
    (fun (xs, ys) ->
      let a = Summary.of_array (Array.of_list xs) in
      let b = Summary.of_array (Array.of_list ys) in
      let m = Summary.merge a b in
      let all = Summary.of_array (Array.of_list (xs @ ys)) in
      Summary.count m = Summary.count all
      && (Summary.count m = 0
         || Float.abs (Summary.mean m -. Summary.mean all) < 1e-6)
      && (Summary.count m < 2
         || Float.abs (Summary.variance m -. Summary.variance all) < 1e-6))

let prop_summary_partition_merge =
  (* Merging an ARBITRARY partition (any number of chunks, any sizes,
     empty chunks included) in order equals one pass over the whole
     stream — the exact shape of the trial runtime's batch-order fold,
     where adaptive rounds merge a growing prefix of shard summaries. *)
  qtest "merge of arbitrary partition = single pass"
    QCheck.(list (list (float_bound_inclusive 100.)))
    (fun chunks ->
      let merged =
        List.fold_left
          (fun acc c -> Summary.merge acc (Summary.of_array (Array.of_list c)))
          (Summary.create ()) chunks
      in
      let whole = Summary.of_array (Array.of_list (List.concat chunks)) in
      Summary.count merged = Summary.count whole
      && (Summary.count merged = 0
         || Float.abs (Summary.mean merged -. Summary.mean whole) < 1e-6)
      && (Summary.count merged < 2
         || Float.abs (Summary.variance merged -. Summary.variance whole)
            < 1e-6)
      && (Summary.count merged = 0
         || Summary.min merged = Summary.min whole
            && Summary.max merged = Summary.max whole))

let test_stddev_conventions () =
  (* Two deliberate conventions, pinned so neither drifts into the
     other: Summary.std divides by n-1 (unbiased sample — summaries
     hold samples of a larger trial population and feed inference),
     Throughput.stddev_of divides by n (population — bench error bars
     over the complete set of repetitions). On {2,4}: sample std is
     sqrt 2, population std is exactly 1. *)
  check_close 1e-9 "Summary.std is unbiased sample (n-1)" (sqrt 2.)
    (Summary.std (Summary.of_array [| 2.; 4. |]));
  check_close 1e-9 "Throughput.stddev_of is population (n)" 1.
    (Cachesec_experiments.Throughput.stddev_of [ 2.; 4. ]);
  (* Same stream, same mean, different spread estimators. *)
  let xs = [ 10.; 12.; 9.; 14.; 11. ] in
  let sample = Summary.std (Summary.of_array (Array.of_list xs)) in
  let population = Cachesec_experiments.Throughput.stddev_of xs in
  Alcotest.(check bool) "population < sample on the same data" true
    (population < sample);
  let n = float_of_int (List.length xs) in
  check_close 1e-9 "related by sqrt((n-1)/n)"
    (sample *. sqrt ((n -. 1.) /. n))
    population

(* --- Histogram ------------------------------------------------------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add_many h [| 0.5; 1.5; 1.6; 9.99; -1.; 10.; 100. |];
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  let c = Histogram.counts h in
  Alcotest.(check int) "bin0" 1 c.(0);
  Alcotest.(check int) "bin1" 2 c.(1);
  Alcotest.(check int) "bin9" 1 c.(9);
  Alcotest.(check (option int)) "mode" (Some 1) (Histogram.mode h);
  check_float "center" 0.5 (Histogram.bin_center h 0)

let test_histogram_density () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Histogram.add_many h [| 0.1; 0.3; 0.6; 0.9 |];
  let d = Histogram.density h in
  let integral = Array.fold_left ( +. ) 0. d *. 0.25 in
  check_close 1e-9 "integrates to 1" 1. integral

let test_histogram_invalid () =
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3));
  Alcotest.check_raises "bins"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0))

let prop_histogram_conservation =
  qtest "every sample lands somewhere"
    QCheck.(list (float_bound_inclusive 20.))
    (fun xs ->
      let h = Histogram.create ~lo:2. ~hi:12. ~bins:7 in
      List.iter (Histogram.add h) xs;
      let in_range = Array.fold_left ( + ) 0 (Histogram.counts h) in
      in_range + Histogram.underflow h + Histogram.overflow h = List.length xs)

let prop_histogram_merge =
  (* merge over a partition equals one histogram over the whole sample:
     the property the per-shard merge in the trial runtime relies on. *)
  qtest "merge of shards = whole"
    QCheck.(pair (list (float_bound_inclusive 20.)) (list (float_bound_inclusive 20.)))
    (fun (xs, ys) ->
      let mk zs =
        let h = Histogram.create ~lo:2. ~hi:12. ~bins:7 in
        List.iter (Histogram.add h) zs;
        h
      in
      let merged = Histogram.merge (mk xs) (mk ys) in
      let whole = mk (xs @ ys) in
      Histogram.counts merged = Histogram.counts whole
      && Histogram.underflow merged = Histogram.underflow whole
      && Histogram.overflow merged = Histogram.overflow whole
      && Histogram.total merged = Histogram.total whole)

let prop_histogram_partition_merge =
  qtest "merge of arbitrary partition = single pass"
    QCheck.(list (list (float_bound_inclusive 20.)))
    (fun chunks ->
      let mk zs =
        let h = Histogram.create ~lo:2. ~hi:12. ~bins:7 in
        List.iter (Histogram.add h) zs;
        h
      in
      let merged =
        List.fold_left (fun acc c -> Histogram.merge acc (mk c)) (mk []) chunks
      in
      let whole = mk (List.concat chunks) in
      Histogram.counts merged = Histogram.counts whole
      && Histogram.underflow merged = Histogram.underflow whole
      && Histogram.overflow merged = Histogram.overflow whole
      && Histogram.total merged = Histogram.total whole)

let test_histogram_merge_incompatible () =
  let a = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  let b = Histogram.create ~lo:0. ~hi:2. ~bins:4 in
  Alcotest.check_raises "binning mismatch"
    (Invalid_argument "Histogram.merge: incompatible binning") (fun () ->
      ignore (Histogram.merge a b))

(* --- Coupon ---------------------------------------------------------- *)

let test_coupon_edge_cases () =
  check_float "k < w" 0. (Coupon.prob_all_covered ~bins:8 ~trials:7);
  check_float "one bin" 1. (Coupon.prob_all_covered ~bins:1 ~trials:1);
  check_float "zero trials" 0. (Coupon.prob_all_covered ~bins:2 ~trials:0);
  (* w=2, k=2: P = 2/4 = 0.5 *)
  check_close 1e-9 "2 bins 2 trials" 0.5
    (Coupon.prob_all_covered ~bins:2 ~trials:2);
  (* w=2, k=3: 1 - 2*(1/2)^3 = 0.75 *)
  check_close 1e-9 "2 bins 3 trials" 0.75
    (Coupon.prob_all_covered ~bins:2 ~trials:3)

let test_coupon_monte_carlo () =
  let rng = Rng.create ~seed:17 in
  let exact = Coupon.prob_all_covered ~bins:8 ~trials:20 in
  let approx = Coupon.monte_carlo rng ~bins:8 ~trials:20 ~samples:20000 in
  check_close 0.02 "MC matches closed form" exact approx

let test_coupon_monte_carlo_band () =
  (* Tolerance-band agreement across the cleaning-game's operating
     range: an MC estimate of a Bernoulli(p) mean over n samples has
     standard error sqrt(p(1-p)/n), so 4 sigma plus a small absolute
     floor gives a band the fixed-seed estimate must land in at every
     (bins, trials) point. *)
  let samples = 20000 in
  List.iter
    (fun (bins, trials) ->
      let exact = Coupon.prob_all_covered ~bins ~trials in
      let rng = Rng.create ~seed:(1009 + (bins * 131) + trials) in
      let approx = Coupon.monte_carlo rng ~bins ~trials ~samples in
      let se = sqrt (exact *. (1. -. exact) /. float_of_int samples) in
      check_close
        ((4. *. se) +. 1e-3)
        (Printf.sprintf "bins=%d trials=%d" bins trials)
        exact approx)
    [ (2, 2); (4, 8); (8, 16); (8, 24); (12, 40); (16, 64) ]

let prop_coupon_monotone =
  qtest "monotone in trials"
    QCheck.(pair (int_range 1 16) (int_range 0 100))
    (fun (bins, trials) ->
      Coupon.prob_all_covered ~bins ~trials
      <= Coupon.prob_all_covered ~bins ~trials:(trials + 1) +. 1e-12)

let test_coupon_cell_hit () =
  check_close 1e-9 "cell hit"
    (1. -. ((7. /. 8.) ** 10.))
    (Coupon.prob_cell_hit ~bins:8 ~trials:10)

let test_coupon_expected () =
  let harmonic8 =
    List.fold_left (fun acc i -> acc +. (1. /. float_of_int i)) 0.
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  check_close 1e-9 "harmonic" (8. *. harmonic8) (Coupon.expected_trials ~bins:8)

(* --- Correlation ----------------------------------------------------- *)

let test_pearson () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "perfect" 1. (Correlation.pearson xs [| 2.; 4.; 6.; 8. |]);
  check_float "anti" (-1.) (Correlation.pearson xs [| 8.; 6.; 4.; 2. |]);
  Alcotest.(check bool) "constant nan" true
    (Float.is_nan (Correlation.pearson xs [| 5.; 5.; 5.; 5. |]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Correlation.pearson: length mismatch") (fun () ->
      ignore (Correlation.pearson xs [| 1. |]))

let test_ranks () =
  let r = Correlation.ranks [| 10.; 30.; 20.; 30. |] in
  Alcotest.(check (array (Alcotest.float 1e-9)))
    "ties averaged" [| 1.; 3.5; 2.; 3.5 |] r

let prop_spearman_monotone =
  qtest "spearman invariant under monotone map"
    QCheck.(
      list_of_size (QCheck.Gen.int_range 3 30) (float_bound_inclusive 100.))
    (fun xs ->
      let xs = Array.of_list xs in
      let ys = Array.map (fun x -> (2. *. x *. x *. x) +. 1.) xs in
      let s1 = Correlation.spearman xs xs in
      let s2 = Correlation.spearman xs ys in
      (Float.is_nan s1 && Float.is_nan s2) || Float.abs (s1 -. s2) < 1e-9)

(* --- Mutual information ---------------------------------------------- *)

let test_mi_independent () =
  let j = Mutual_information.create ~x_card:2 ~y_card:2 in
  for _ = 1 to 100 do
    Mutual_information.observe j ~x:0 ~y:0;
    Mutual_information.observe j ~x:0 ~y:1;
    Mutual_information.observe j ~x:1 ~y:0;
    Mutual_information.observe j ~x:1 ~y:1
  done;
  check_close 1e-9 "independent" 0. (Mutual_information.mi j)

let test_mi_dependent () =
  let j = Mutual_information.create ~x_card:2 ~y_card:2 in
  for _ = 1 to 100 do
    Mutual_information.observe j ~x:0 ~y:0;
    Mutual_information.observe j ~x:1 ~y:1
  done;
  check_close 1e-9 "fully dependent" 1. (Mutual_information.mi j);
  check_close 1e-9 "normalized" 1. (Mutual_information.normalized_mi j);
  check_close 1e-9 "entropy" 1. (Mutual_information.entropy_x j)

let test_mi_validation () =
  let j = Mutual_information.create ~x_card:2 ~y_card:2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Mutual_information.observe: outcome out of range")
    (fun () -> Mutual_information.observe j ~x:2 ~y:0)

let test_mi_of_samples () =
  let j =
    Mutual_information.of_samples ~x_card:3 ~y_card:3 [| (0, 1); (2, 2) |]
  in
  Alcotest.(check int) "count" 2 (Mutual_information.count j)

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy freezes" `Quick test_rng_copy_freezes;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "gaussian sigma 0" `Quick test_rng_gaussian_zero_sigma;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "bool fair" `Quick test_rng_bool_fair;
          prop_permutation;
          prop_shuffle_multiset;
          Alcotest.test_case "derive deterministic" `Quick
            test_rng_derive_deterministic;
          Alcotest.test_case "derive pure" `Quick test_rng_derive_pure;
          Alcotest.test_case "derive_seed disperses" `Quick
            test_rng_derive_seed_disperses;
          prop_derive_sibling_correlation;
          prop_derive_child_vs_parent;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf known" `Quick test_erf_known;
          prop_erf_odd;
          Alcotest.test_case "erfc complement" `Quick test_erfc_complement;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          prop_cdf_monotone;
          Alcotest.test_case "pdf integral" `Quick test_normal_pdf_integral;
          Alcotest.test_case "log factorial" `Quick test_log_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          prop_binomial_symmetry;
          prop_pascal;
          prop_log1mexp;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "known values" `Quick test_summary_known;
          prop_summary_merge;
          prop_summary_partition_merge;
          Alcotest.test_case "stddev conventions" `Quick
            test_stddev_conventions;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "density" `Quick test_histogram_density;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
          prop_histogram_conservation;
          prop_histogram_merge;
          prop_histogram_partition_merge;
          Alcotest.test_case "merge incompatible" `Quick
            test_histogram_merge_incompatible;
        ] );
      ( "coupon",
        [
          Alcotest.test_case "edge cases" `Quick test_coupon_edge_cases;
          Alcotest.test_case "monte carlo" `Quick test_coupon_monte_carlo;
          Alcotest.test_case "monte carlo band" `Quick
            test_coupon_monte_carlo_band;
          prop_coupon_monotone;
          Alcotest.test_case "cell hit" `Quick test_coupon_cell_hit;
          Alcotest.test_case "expected trials" `Quick test_coupon_expected;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "pearson" `Quick test_pearson;
          Alcotest.test_case "ranks" `Quick test_ranks;
          prop_spearman_monotone;
        ] );
      ( "mutual information",
        [
          Alcotest.test_case "independent" `Quick test_mi_independent;
          Alcotest.test_case "dependent" `Quick test_mi_dependent;
          Alcotest.test_case "validation" `Quick test_mi_validation;
          Alcotest.test_case "of samples" `Quick test_mi_of_samples;
        ] );
    ]
