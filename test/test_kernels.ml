(* Differential fuzz: monomorphized kernels vs the generic fallback.

   The monomorphized per-(arch, policy) access kernels under
   lib/cache/kernels/ must be bit-identical to the generic dispatching
   path they replace — same per-op outcomes (including eviction
   payloads), same RNG draw order, same counters, same final line dump.
   The hotpath golden suite pins both against ONE frozen workload; this
   suite hammers the equivalence with RANDOM workloads (mixed pids,
   flushes, locks, window changes, full flushes) so a divergence that
   the frozen trace happens to miss still gets caught.

   Every factory cell is built twice from identical derived seeds —
   [Factory.build ~kernel:Generic] vs [~kernel:Auto] — and replayed
   through the same op stream. Cells without a monomorphized kernel
   (sp, nomo, rf, re) run both arms through the same generic code by
   construction; they stay in the matrix so the cell list never needs
   editing when a kernel is added for them.

   A second QCheck suite fuzzes the batched [access_run] twins against
   the scalar-looping generic fallback in all three accumulation modes
   (Fill / Count / Trace) with runs that straddle locks, RF window
   rotations and full flushes — see "batched-replay differential fuzz"
   below. *)

open Cachesec_stats
open Cachesec_cache

let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }

let case_name spec =
  match Spec.policy_of spec with
  | Some p -> Spec.name spec ^ ":" ^ Replacement.policy_to_string p
  | None -> Spec.name spec ^ ":secrand"

(* All 57 factory cells: 8 policied architectures x the full policy
   registry plus Newcache (SecRAND only). *)
let cells () =
  List.concat_map
    (fun spec ->
      match Spec.policy_of spec with
      | None -> [ spec ]
      | Some _ -> List.map (Spec.with_policy spec) Policy.all)
    Spec.all_paper

let fmt_outcome (o : Outcome.t) =
  let b = Buffer.create 32 in
  Buffer.add_char b (match o.Outcome.event with Outcome.Hit -> 'H' | Outcome.Miss -> 'M');
  Buffer.add_char b (if o.Outcome.cached then 'c' else 'u');
  (match o.Outcome.fetched with
  | None -> Buffer.add_char b '-'
  | Some l -> Buffer.add_string b (string_of_int l));
  List.iter
    (fun (pid, line) -> Buffer.add_string b (Printf.sprintf "e%d.%d" pid line))
    (Outcome.evictions o);
  Buffer.contents b

let fmt_snapshot (s : Counters.snapshot) =
  Printf.sprintf "acc=%d hit=%d miss=%d ev=%d rt=%d fl=%d" s.accesses s.hits
    s.misses s.evictions s.read_throughs s.flushes

let fmt_dump dump =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) dump
  |> List.map (fun (i, (l : Line.t)) ->
         Printf.sprintf "%d:%b,%d,%d,%b,%d,%d,%d" i l.valid l.tag l.owner
           l.locked l.last_use l.fill_seq l.aux)
  |> String.concat "|"

(* Replay a [seed]-derived random mixed-op stream; returns one formatted
   observable per op (so a mismatch pinpoints the op) plus the final
   counters/dump summary. The op stream depends only on [seed], and the
   engine's own RNG only on the identical [Rng.create ~seed |> split]
   prefix — the two arms see byte-identical inputs. *)
let replay ~seed ~steps kernel spec =
  let rng = Rng.create ~seed in
  let engine = Factory.build ~kernel spec scenario ~rng:(Rng.split rng) in
  let ops =
    List.init steps (fun _ ->
        let pid = Rng.int rng 3 in
        let addr = if Rng.bool rng then Rng.int rng 600 else Rng.int rng 4096 in
        let r = Rng.int rng 100 in
        if r < 78 then Printf.sprintf "a%d/%d:%s" pid addr
            (fmt_outcome (engine.Engine.access ~pid addr))
        else if r < 88 then
          Printf.sprintf "p%d/%d:%b" pid addr (engine.Engine.peek ~pid addr)
        else if r < 92 then
          Printf.sprintf "f%d/%d:%b" pid addr (engine.Engine.flush_line ~pid addr)
        else if r < 95 then
          Printf.sprintf "l%d/%d:%b" pid addr (engine.Engine.lock_line ~pid addr)
        else if r < 97 then
          Printf.sprintf "u%d/%d:%b" pid addr (engine.Engine.unlock_line ~pid addr)
        else if r < 99 then begin
          let back = Rng.int rng 4 and fwd = Rng.int rng 4 in
          engine.Engine.set_window ~pid ~back ~fwd;
          Printf.sprintf "w%d/%d.%d" pid back fwd
        end
        else begin
          engine.Engine.flush_all ();
          "F"
        end)
  in
  let summary =
    String.concat " | "
      [
        fmt_snapshot (engine.Engine.counters ());
        fmt_snapshot (engine.Engine.counters_for 0);
        fmt_snapshot (engine.Engine.counters_for 1);
        fmt_snapshot (engine.Engine.counters_for 2);
        fmt_dump (engine.Engine.dump ());
      ]
  in
  (engine.Engine.kernel, ops, summary)

let check_cell ~seed ~steps spec =
  let name = case_name spec in
  let _, generic_ops, generic_sum = replay ~seed ~steps Kernel.Generic spec in
  let kernel, auto_ops, auto_sum = replay ~seed ~steps Kernel.Auto spec in
  List.iteri
    (fun i (g, a) ->
      if g <> a then
        Alcotest.failf "%s seed=%#x op %d diverged (%s kernel): generic %S vs auto %S"
          name seed i kernel g a)
    (List.combine generic_ops auto_ops);
  Alcotest.(check string)
    (Printf.sprintf "%s seed=%#x final counters+dump (%s kernel)" name seed
       kernel)
    generic_sum auto_sum

(* A couple of seeds per cell at a few thousand ops each: enough random
   coverage to hit every branch (invalid-way fills, lock conflicts,
   external RP misses, CAM conflicts, full flushes) while staying well
   inside the quick-test budget. *)
let seeds = [ 0xD1FF; 0xF0221; 0xABCDE ]
let steps = 4_000

let test_cell spec () =
  List.iter (fun seed -> check_cell ~seed ~steps spec) seeds

(* The monomorphized cells must actually exercise a kernel — guard
   against a silent fallback to generic making the diff test vacuous. *)
let expected_kernel spec =
  let policy_suffix () =
    match Spec.policy_of spec with
    | Some p -> Replacement.policy_to_string p
    | None -> assert false
  in
  (* pl/rp carry kernels only for the original three policies; the new
     registry entries fall back to the generic path there. *)
  let original_three () =
    match Spec.policy_of spec with
    | Some (Replacement.Lru | Replacement.Random | Replacement.Fifo) -> true
    | _ -> false
  in
  match Spec.name spec with
  | "sa" -> Some ("sa-" ^ policy_suffix ())
  | "pl" when original_three () -> Some ("pl-" ^ policy_suffix ())
  | "rp" when original_three () -> Some ("rp-" ^ policy_suffix ())
  | "newcache" -> Some "newcache"
  | "noisy" -> Some ("sa-" ^ policy_suffix ())
  | _ -> None (* generic-only (arch, policy) cells *)

let test_kernel_selection () =
  List.iter
    (fun spec ->
      let build kernel =
        let rng = Rng.create ~seed:7 in
        Factory.build ~kernel spec scenario ~rng:(Rng.split rng)
      in
      let auto = build Kernel.Auto in
      let forced = build Kernel.Generic in
      let scalar = build Kernel.Scalar in
      Alcotest.(check string)
        (case_name spec ^ " forced generic")
        Kernel.generic forced.Engine.kernel;
      Alcotest.(check string)
        (case_name spec ^ " forced generic run")
        Kernel.generic forced.Engine.run_kernel;
      match expected_kernel spec with
      | Some k ->
        Alcotest.(check string) (case_name spec ^ " auto kernel") k
          auto.Engine.kernel;
        (* The batched twin must be live wherever the scalar kernel is —
           a silent fall-back to the generic run loop would leave every
           digest green (bit-identical by contract) while quietly
           un-batching the attack hot paths. *)
        Alcotest.(check string) (case_name spec ^ " auto run kernel") k
          auto.Engine.run_kernel;
        (* [Scalar] = monomorphized per-access kernel looped by the
           generic run wrapper: the bench's pre-batching cost model. *)
        Alcotest.(check string) (case_name spec ^ " scalar kernel") k
          scalar.Engine.kernel;
        Alcotest.(check string)
          (case_name spec ^ " scalar run label")
          Kernel.scalar scalar.Engine.run_kernel
      | None ->
        Alcotest.(check string)
          (case_name spec ^ " auto falls back to generic")
          Kernel.generic auto.Engine.kernel;
        Alcotest.(check string)
          (case_name spec ^ " auto run falls back to generic")
          Kernel.generic auto.Engine.run_kernel)
    (cells ())

(* --- batched-replay differential fuzz ------------------------------- *)

(* [access_run] under [Auto] (the batched per-(arch, policy) run
   kernels) vs under [Generic] ([run_of_scalar] looping the generic
   scalar access — the differential oracle), hammered with seed-derived
   random programs of batched runs in all three modes interleaved with
   exactly the scalar ops a run must straddle: lock/unlock, RF window
   rotation, line flushes, full flushes. Observables per program: every
   Trace outcome, the Count scratch (true/classified/time sums), a
   draw-count probe on the classification stream, scalar-access
   outcomes, and the final counters + line dump. *)

let batched_program ~seed kernel spec =
  let rng = Rng.create ~seed in
  let engine = Factory.build ~kernel spec scenario ~rng:(Rng.split rng) in
  let noise = Rng.create ~seed:(seed lxor 0x5EED1) in
  let counter = Kernel.make_counter ~bins:4 in
  counter.Kernel.noise <- noise;
  let buf = Buffer.create 4096 in
  let addr rng = if Rng.bool rng then Rng.int rng 600 else Rng.int rng 4096 in
  for _ = 1 to 40 do
    let pid = Rng.int rng 3 in
    let r = Rng.int rng 100 in
    if r < 55 then begin
      (* One batched run: random length (0 = must be a no-op), placed at
         a random offset inside a larger scratch so [pos] <> 0 and
         trailing slack are both exercised. *)
      let len = Rng.int rng 49 in
      let pos = Rng.int rng 4 in
      let trace = Array.init (pos + len + 2) (fun _ -> addr rng) in
      match Rng.int rng 3 with
      | 0 ->
        engine.Engine.access_run ~pid ~trace ~pos ~len Kernel.Fill;
        Buffer.add_string buf (Printf.sprintf "F%d/%d;" pid len)
      | 1 ->
        counter.Kernel.bin <- Rng.int rng 4;
        counter.Kernel.sigma <- (if Rng.bool rng then 0. else 0.25);
        engine.Engine.access_run ~pid ~trace ~pos ~len (Kernel.Count counter);
        Buffer.add_string buf (Printf.sprintf "C%d/%d;" pid len)
      | _ ->
        let out = Array.make (max len 1) Outcome.hit in
        engine.Engine.access_run ~pid ~trace ~pos ~len (Kernel.Trace out);
        Buffer.add_string buf (Printf.sprintf "T%d/" pid);
        for k = 0 to len - 1 do
          Buffer.add_string buf (fmt_outcome out.(k));
          Buffer.add_char buf ','
        done;
        Buffer.add_char buf ';'
    end
    else if r < 70 then
      Buffer.add_string buf
        (Printf.sprintf "a%s;" (fmt_outcome (engine.Engine.access ~pid (addr rng))))
    else if r < 77 then
      Buffer.add_string buf
        (Printf.sprintf "l%b;" (engine.Engine.lock_line ~pid (addr rng)))
    else if r < 83 then
      Buffer.add_string buf
        (Printf.sprintf "u%b;" (engine.Engine.unlock_line ~pid (addr rng)))
    else if r < 90 then
      Buffer.add_string buf
        (Printf.sprintf "f%b;" (engine.Engine.flush_line ~pid (addr rng)))
    else if r < 96 then begin
      let back = Rng.int rng 4 and fwd = Rng.int rng 4 in
      engine.Engine.set_window ~pid ~back ~fwd;
      Buffer.add_string buf "w;"
    end
    else begin
      engine.Engine.flush_all ();
      Buffer.add_string buf "X;"
    end
  done;
  (* Count scratch ([%h] so float sums compare bit-for-bit), then one
     probe draw — if either arm consumed a different number of
     classification draws, this value diverges even when the sums
     happen to agree. *)
  for b = 0 to 3 do
    Buffer.add_string buf
      (Printf.sprintf "c%d=%d/%d/%h;" b
         counter.Kernel.true_misses.(b)
         counter.Kernel.classified.(b)
         counter.Kernel.times.(b))
  done;
  Buffer.add_string buf (Printf.sprintf "n=%d;" (Rng.int noise 1_000_000));
  Buffer.add_string buf
    (String.concat " | "
       [
         fmt_snapshot (engine.Engine.counters ());
         fmt_snapshot (engine.Engine.counters_for 0);
         fmt_snapshot (engine.Engine.counters_for 1);
         fmt_snapshot (engine.Engine.counters_for 2);
         fmt_dump (engine.Engine.dump ());
       ]);
  Buffer.contents buf

let test_batched_cell spec =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:(case_name spec ^ " batched = scalar")
       QCheck.(int_range 0 0xFFFFFF)
       (fun seed ->
         batched_program ~seed Kernel.Auto spec
         = batched_program ~seed Kernel.Generic spec))

let () =
  Alcotest.run "kernels"
    [
      ( "selection",
        [
          Alcotest.test_case "auto picks the monomorphized kernel" `Quick
            test_kernel_selection;
        ] );
      ( "differential-fuzz",
        List.map
          (fun spec ->
            Alcotest.test_case (case_name spec) `Quick (test_cell spec))
          (cells ()) );
      ("batched-fuzz", List.map test_batched_cell (cells ()));
    ]
