(* Tests for the cache simulator substrate: geometry, policies and the
   architecture-specific security mechanisms of all nine caches. *)

(* This file deliberately exercises the deprecated [Replacement.choose]
   compatibility shims alongside the [Policy] registry they forward to. *)
[@@@alert "-deprecated"]

open Cachesec_stats
open Cachesec_cache

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rng () = Rng.create ~seed:1234

(* --- Config / Address ------------------------------------------------- *)

let test_config () =
  let c = Config.standard in
  Alcotest.(check int) "sets" 64 (Config.sets c);
  Alcotest.(check int) "capacity" (32 * 1024) (Config.capacity_bytes c);
  Alcotest.(check int) "fa sets" 1 (Config.sets Config.fully_associative);
  Alcotest.(check int) "dm sets" 512 (Config.sets Config.direct_mapped);
  Alcotest.check_raises "non pow2 lines"
    (Invalid_argument "Config.v: lines must be a positive power of two")
    (fun () -> ignore (Config.v ~line_bytes:64 ~lines:500 ~ways:4));
  Alcotest.check_raises "ways divide"
    (Invalid_argument "Config.v: ways must divide lines") (fun () ->
      ignore (Config.v ~line_bytes:64 ~lines:512 ~ways:7))

let test_address () =
  let c = Config.standard in
  Alcotest.(check int) "line of byte" 2 (Address.line_of_byte c 128);
  Alcotest.(check int) "byte of line" 128 (Address.byte_of_line c 2);
  Alcotest.(check int) "set" 1 (Address.set_index c 65);
  Alcotest.(check int) "tag" 1 (Address.tag c 65);
  Alcotest.(check (list int)) "range lines" [ 0; 1 ]
    (Address.lines_in_byte_range c ~first:0 ~length:100);
  Alcotest.(check (list int)) "empty range" []
    (Address.lines_in_byte_range c ~first:0 ~length:0)

let prop_address_roundtrip =
  qtest "line = tag*sets + set" QCheck.(int_range 0 1000000) (fun line ->
      let c = Config.standard in
      (Address.tag c line * Config.sets c) + Address.set_index c line = line)

(* --- Line / Replacement ---------------------------------------------- *)

let test_line () =
  let l = Line.make () in
  Alcotest.(check bool) "fresh invalid" false l.Line.valid;
  Line.fill l ~tag:42 ~owner:7 ~seq:3;
  Alcotest.(check bool) "filled" true l.Line.valid;
  Alcotest.(check int) "tag" 42 l.Line.tag;
  Alcotest.(check int) "owner" 7 l.Line.owner;
  l.Line.locked <- true;
  Line.touch l ~seq:9;
  Alcotest.(check int) "touched" 9 l.Line.last_use;
  Alcotest.(check int) "fill seq kept" 3 l.Line.fill_seq;
  Line.fill l ~tag:1 ~owner:1 ~seq:10;
  Alcotest.(check bool) "fill clears lock" false l.Line.locked;
  Line.invalidate l;
  Alcotest.(check bool) "invalidated" false l.Line.valid

let filled_lines n =
  let lines = Line.make_array n in
  Array.iteri (fun i l -> Line.fill l ~tag:i ~owner:0 ~seq:(i + 1)) lines;
  lines

let test_replacement_invalid_first () =
  let lines = filled_lines 4 in
  Line.invalidate lines.(2);
  let r = rng () in
  List.iter
    (fun policy ->
      Alcotest.(check int)
        (Replacement.policy_to_string policy ^ " picks invalid")
        2
        (Replacement.choose policy r lines ~base:0 ~len:4))
    [ Replacement.Lru; Replacement.Random; Replacement.Fifo ]

let test_replacement_lru () =
  let lines = filled_lines 4 in
  Line.touch lines.(0) ~seq:100;
  Alcotest.(check int) "least recent" 1
    (Replacement.lru_victim lines ~base:0 ~len:4);
  Alcotest.(check int) "restricted range" 2
    (Replacement.lru_victim lines ~base:2 ~len:2)

let test_replacement_fifo () =
  let lines = filled_lines 4 in
  Line.touch lines.(0) ~seq:100;
  (* FIFO ignores touches: oldest fill wins. *)
  let r = rng () in
  Alcotest.(check int) "oldest fill" 0
    (Replacement.choose Replacement.Fifo r lines ~base:0 ~len:4)

let test_replacement_random_uniform () =
  let lines = filled_lines 8 in
  let r = rng () in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Replacement.choose Replacement.Random r lines ~base:0 ~len:8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

(* choose / choose_among agree: on a contiguous range they are the same
   selector (including the single RNG draw of the Random policy). *)
let test_replacement_range_list_agree () =
  let lines = filled_lines 8 in
  Line.touch lines.(3) ~seq:50;
  List.iter
    (fun policy ->
      let r1 = Rng.create ~seed:77 and r2 = Rng.create ~seed:77 in
      for _ = 1 to 200 do
        Alcotest.(check int)
          (Replacement.policy_to_string policy ^ " range = list")
          (Replacement.choose_among policy r1 lines
             ~candidates:[ 2; 3; 4; 5; 6 ])
          (Replacement.choose policy r2 lines ~base:2 ~len:5)
      done)
    [ Replacement.Lru; Replacement.Random; Replacement.Fifo ]

let test_replacement_errors () =
  let lines = filled_lines 2 in
  let r = rng () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Replacement.choose: no candidates") (fun () ->
      ignore (Replacement.choose Replacement.Lru r lines ~base:0 ~len:0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Replacement.choose: candidate out of range") (fun () ->
      ignore (Replacement.choose Replacement.Lru r lines ~base:1 ~len:2));
  Alcotest.check_raises "empty list"
    (Invalid_argument "Replacement.choose: no candidates") (fun () ->
      ignore (Replacement.choose_among Replacement.Lru r lines ~candidates:[]));
  Alcotest.check_raises "list out of range"
    (Invalid_argument "Replacement.choose: candidate out of range") (fun () ->
      ignore
        (Replacement.choose_among Replacement.Lru r lines ~candidates:[ 5 ]))

(* --- Policy registry ----------------------------------------------------- *)

let filled_slab ~lines ~ways =
  let s = Slab.create ~lines ~ways in
  for i = 0 to lines - 1 do
    Slab.fill s i ~tag:i ~owner:0 ~seq:(i + 1)
  done;
  s

let test_policy_registry () =
  Alcotest.(check int) "seven policies" 7 Policy.count;
  Alcotest.(check int) "all lists each once" 7
    (List.length (List.sort_uniq compare Policy.all));
  List.iteri
    (fun i p ->
      Alcotest.(check int)
        (Policy.to_string p ^ " id is registry position")
        i (Policy.id p);
      Alcotest.(check bool)
        (Policy.to_string p ^ " round-trips")
        true
        (Policy.of_string (Policy.to_string p) = Some p))
    Policy.all;
  Alcotest.(check bool) "unknown spelling" true (Policy.of_string "mlu" = None);
  Alcotest.(check string) "names joins the registry"
    "lru|random|fifo|mru|lfu|mfu|plru" Policy.names;
  (* The compat alias and the registry are the same type and spelling. *)
  Alcotest.(check string) "replacement alias agrees" "plru"
    (Replacement.policy_to_string Replacement.Plru)

let test_policy_needs () =
  let n = Policy.needs in
  Alcotest.(check bool) "lru last_use" true (n Policy.Lru).Policy.last_use;
  Alcotest.(check bool) "mru last_use" true (n Policy.Mru).Policy.last_use;
  Alcotest.(check bool) "random rng" true (n Policy.Random).Policy.rng;
  Alcotest.(check bool) "fifo fill_seq" true (n Policy.Fifo).Policy.fill_seq;
  Alcotest.(check bool) "lfu freq" true (n Policy.Lfu).Policy.freq;
  Alcotest.(check bool) "mfu freq" true (n Policy.Mfu).Policy.freq;
  Alcotest.(check bool) "plru tree" true (n Policy.Plru).Policy.tree;
  Alcotest.(check bool) "lru draws no rng" false (n Policy.Lru).Policy.rng;
  Alcotest.(check bool) "plru needs no freq" false (n Policy.Plru).Policy.freq

let test_policy_victims () =
  let s = filled_slab ~lines:8 ~ways:8 in
  let r = rng () in
  (* Line i filled at seq i+1; touching line 0 makes it MRU. *)
  Slab.touch s 0 ~seq:100;
  Alcotest.(check int) "lru skips the touched line" 1
    (Policy.victim_in Policy.Lru r s ~base:0 ~len:8);
  Alcotest.(check int) "mru picks the touched line" 0
    (Policy.victim_in Policy.Mru r s ~base:0 ~len:8);
  Alcotest.(check int) "fifo ignores touches" 0
    (Policy.victim_in Policy.Fifo r s ~base:0 ~len:8);
  (* Frequency: bump line 3 twice through the policy touch hook. *)
  Policy.touch Policy.Lfu s 3 ~seq:101;
  Policy.touch Policy.Lfu s 3 ~seq:102;
  Alcotest.(check int) "mfu evicts the hottest line" 3
    (Policy.victim_in Policy.Mfu r s ~base:0 ~len:8);
  Alcotest.(check bool) "lfu avoids the hottest line" true
    (Policy.victim_in Policy.Lfu r s ~base:0 ~len:8 <> 3);
  (* Every policy fills an invalid way before evicting. *)
  Slab.invalidate s 5;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Policy.to_string p ^ " invalid way first")
        5
        (Policy.victim_in p r s ~base:0 ~len:8))
    Policy.all

let test_policy_plru () =
  Alcotest.(check bool) "pow2 capable" true (Policy.plru_tree_capable 8);
  Alcotest.(check bool) "1-way not capable" false (Policy.plru_tree_capable 1);
  Alcotest.(check bool) "non-pow2 not capable" false
    (Policy.plru_tree_capable 6);
  let s = filled_slab ~lines:8 ~ways:4 in
  let r = rng () in
  (* Fresh tree word (all zero) walks left-left to leaf 0. *)
  Alcotest.(check int) "zero tree walks to way 0" 0
    (Policy.victim_in Policy.Plru r s ~base:0 ~len:4);
  (* Touching way 0 points the whole path away from it. *)
  Policy.plru_touch s 0;
  Alcotest.(check int) "after touch 0 victim moves subtree" 2
    (Policy.victim_in Policy.Plru r s ~base:0 ~len:4);
  (* Four victim+fill rounds visit four distinct leaves (the basis of
     the sa_plru = sa_lru closed-form step). *)
  let visited = ref [] in
  for round = 1 to 4 do
    let v = Policy.victim_in Policy.Plru r s ~base:4 ~len:4 in
    visited := v :: !visited;
    Slab.fill s v ~tag:(100 + round) ~owner:0 ~seq:(50 + round);
    Policy.filled Policy.Plru s v
  done;
  Alcotest.(check int) "4 consecutive misses clean the set" 4
    (List.length (List.sort_uniq compare !visited));
  (* A range that is not a whole aligned set falls back to LRU order:
     the tree word covers set-shaped candidate ranges only. *)
  Slab.touch s 1 ~seq:200;
  Alcotest.(check int) "slice range uses LRU fallback" 0
    (Policy.victim_in Policy.Plru r s ~base:0 ~len:2)

let test_policy_errors () =
  let s = filled_slab ~lines:4 ~ways:4 in
  let r = rng () in
  Alcotest.check_raises "empty range"
    (Invalid_argument "Policy.victim_in: no candidates") (fun () ->
      ignore (Policy.victim_in Policy.Lru r s ~base:0 ~len:0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Policy.victim_in: candidate out of range") (fun () ->
      ignore (Policy.victim_in Policy.Lru r s ~base:2 ~len:4));
  Alcotest.check_raises "empty list"
    (Invalid_argument "Policy.victim_among_in: no candidates") (fun () ->
      ignore (Policy.victim_among_in Policy.Lru r s ~candidates:[]))

(* --- Counters ---------------------------------------------------------- *)

let test_counters () =
  let c = Counters.create () in
  Counters.record c ~pid:0 Outcome.hit;
  Counters.record c ~pid:1 (Outcome.fill ~fetched:1 ~evicted:(Some (0, 5)));
  Counters.record c ~pid:1 Outcome.miss_uncached;
  Counters.record_flush c ~pid:0;
  let g = Counters.global c in
  Alcotest.(check int) "accesses" 3 g.Counters.accesses;
  Alcotest.(check int) "hits" 1 g.Counters.hits;
  Alcotest.(check int) "misses" 2 g.Counters.misses;
  Alcotest.(check int) "evictions" 1 g.Counters.evictions;
  Alcotest.(check int) "read throughs" 1 g.Counters.read_throughs;
  Alcotest.(check int) "flushes" 1 g.Counters.flushes;
  let p1 = Counters.for_pid c 1 in
  Alcotest.(check int) "pid1 misses" 2 p1.Counters.misses;
  Alcotest.(check int) "unknown pid" 0 (Counters.for_pid c 9).Counters.accesses;
  Alcotest.(check (float 1e-9)) "hit rate" (1. /. 3.) (Counters.hit_rate g);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.global c).Counters.accesses

(* --- SA ----------------------------------------------------------------- *)

let test_sa_miss_then_hit () =
  let sa = Sa.create ~rng:(rng ()) () in
  let o1 = Sa.access sa ~pid:0 100 in
  Alcotest.(check bool) "first miss" true (Outcome.is_miss o1);
  Alcotest.(check bool) "cached" true o1.Outcome.cached;
  let o2 = Sa.access sa ~pid:0 100 in
  Alcotest.(check bool) "then hit" true (Outcome.is_hit o2)

let test_sa_cross_pid_hit () =
  let sa = Sa.create ~rng:(rng ()) () in
  ignore (Sa.access sa ~pid:0 100);
  Alcotest.(check bool) "other pid hits same line" true
    (Outcome.is_hit (Sa.access sa ~pid:1 100))

let test_sa_eviction_reported () =
  let sa = Sa.create ~rng:(rng ()) () in
  let sets = Config.sets (Sa.config sa) in
  (* Fill one set completely, then overflow it. *)
  for k = 0 to 7 do
    ignore (Sa.access sa ~pid:0 (5 + (k * sets)))
  done;
  let o = Sa.access sa ~pid:1 (5 + (8 * sets)) in
  Alcotest.(check int) "one eviction" 1 (Outcome.eviction_count o);
  let owner, line = List.hd (Outcome.evictions o) in
  Alcotest.(check int) "victim owner" 0 owner;
  Alcotest.(check int) "victim in same set" 5 (line mod sets)

let test_sa_peek_nonmutating () =
  let sa = Sa.create ~rng:(rng ()) () in
  ignore (Sa.access sa ~pid:0 7);
  Alcotest.(check bool) "peek true" true (Sa.peek sa ~pid:0 7);
  Alcotest.(check bool) "peek false" false (Sa.peek sa ~pid:0 8);
  let before = (Counters.global (Sa.counters sa)).Counters.accesses in
  ignore (Sa.peek sa ~pid:0 7);
  Alcotest.(check int) "no access recorded" before
    (Counters.global (Sa.counters sa)).Counters.accesses

let test_sa_flush () =
  let sa = Sa.create ~rng:(rng ()) () in
  ignore (Sa.access sa ~pid:0 7);
  Alcotest.(check bool) "flush removes" true (Sa.flush_line sa ~pid:1 7);
  Alcotest.(check bool) "absent now" false (Sa.peek sa ~pid:0 7);
  Alcotest.(check bool) "second flush false" false (Sa.flush_line sa ~pid:1 7);
  ignore (Sa.access sa ~pid:0 7);
  Sa.flush_all sa;
  Alcotest.(check bool) "flush all" false (Sa.peek sa ~pid:0 7)

let test_sa_lru_exact () =
  let config = Config.v ~line_bytes:64 ~lines:8 ~ways:2 in
  let sa = Sa.create ~config ~policy:Replacement.Lru ~rng:(rng ()) () in
  (* Set 0 of 4 sets: lines 0, 4, 8 map there. *)
  ignore (Sa.access sa ~pid:0 0);
  ignore (Sa.access sa ~pid:0 4);
  ignore (Sa.access sa ~pid:0 0);  (* 0 is now most recent *)
  let o = Sa.access sa ~pid:0 8 in
  Alcotest.(check (list (pair int int))) "LRU evicts 4" [ (0, 4) ]
    (Outcome.evictions o)

let test_sa_fully_associative () =
  let sa = Sa.create ~config:Config.fully_associative ~rng:(rng ()) () in
  (* 512 distinct lines fit regardless of addresses. *)
  for i = 0 to 511 do
    ignore (Sa.access sa ~pid:0 (i * 64))
  done;
  let snap = Counters.global (Sa.counters sa) in
  Alcotest.(check int) "no evictions while filling" 0 snap.Counters.evictions

let test_sa_engine () =
  let e = Sa.engine (Sa.create ~rng:(rng ()) ()) in
  Alcotest.(check string) "name" "sa-8-way-random" e.Engine.name;
  Alcotest.(check (float 0.)) "no noise" 0. e.Engine.sigma;
  Alcotest.(check bool) "lock unsupported" false (e.Engine.lock_line ~pid:0 3);
  ignore (e.Engine.access ~pid:0 3);
  Alcotest.(check int) "dump size" 1 (List.length (e.Engine.dump ()))

(* --- SP ----------------------------------------------------------------- *)

let make_sp () =
  Sp.create_two_domain ~victim_pid:0 ~victim_lines:[ (0, 99) ] ~rng:(rng ()) ()

let test_sp_basic () =
  let sp = make_sp () in
  Alcotest.(check int) "sets per partition" 32 (Sp.sets_per_partition sp);
  let o = Sp.access sp ~pid:0 5 in
  Alcotest.(check bool) "victim fill ok" true o.Outcome.cached;
  Alcotest.(check bool) "victim hit" true (Outcome.is_hit (Sp.access sp ~pid:0 5))

let test_sp_cross_partition_read_through () =
  let sp = make_sp () in
  (* Attacker (pid 1) misses on a victim-homed line: read-through. *)
  let o = Sp.access sp ~pid:1 5 in
  Alcotest.(check bool) "miss" true (Outcome.is_miss o);
  Alcotest.(check bool) "not cached" false o.Outcome.cached;
  Alcotest.(check (list (pair int int))) "nothing evicted" [] (Outcome.evictions o)

let test_sp_shared_line_hit () =
  let sp = make_sp () in
  ignore (Sp.access sp ~pid:0 5);
  (* The victim fetched a shared (victim-homed) line: the attacker's
     subsequent read hits - the paper's flush-and-reload channel. *)
  Alcotest.(check bool) "attacker hits victim-fetched line" true
    (Outcome.is_hit (Sp.access sp ~pid:1 5))

let test_sp_attacker_cannot_evict_victim () =
  let sp = make_sp () in
  for i = 0 to 99 do
    ignore (Sp.access sp ~pid:0 i)
  done;
  (* Attacker hammers his own space; no victim line may disappear. *)
  for i = 0 to 5000 do
    ignore (Sp.access sp ~pid:1 (1000 + i))
  done;
  let victim_lines_alive =
    List.for_all (fun i -> Sp.peek sp ~pid:0 i) (List.init 100 Fun.id)
  in
  Alcotest.(check bool) "all victim lines alive" true victim_lines_alive

let test_sp_validation () =
  Alcotest.check_raises "partitions divide"
    (Invalid_argument "Sp.create: partitions must divide the set count")
    (fun () ->
      ignore
        (Sp.create ~partitions:3 ~home:(fun _ -> 0) ~partition_of_pid:(fun _ -> 0)
           ~rng:(rng ()) ()))

(* --- PL ----------------------------------------------------------------- *)

let test_pl_lock_protects () =
  let pl = Pl.create ~rng:(rng ()) () in
  Alcotest.(check bool) "lock ok" true (Pl.lock_line pl ~pid:0 5);
  Alcotest.(check bool) "present" true (Pl.peek pl ~pid:0 5);
  (* Exhaustive attacker pressure on the same set cannot dislodge it. *)
  let sets = Config.sets (Pl.config pl) in
  for k = 1 to 2000 do
    ignore (Pl.access pl ~pid:1 (5 + (k * sets)))
  done;
  Alcotest.(check bool) "still locked in" true (Pl.peek pl ~pid:0 5);
  Alcotest.(check (list int)) "locked lines" [ 5 ] (Pl.locked_lines pl)

let test_pl_read_through_on_locked_victim () =
  let pl = Pl.create ~rng:(rng ()) () in
  let sets = Config.sets (Pl.config pl) in
  (* Lock the whole set: every later miss on that set is read-through. *)
  for k = 0 to 7 do
    Alcotest.(check bool) "lock fill" true (Pl.lock_line pl ~pid:0 (5 + (k * sets)))
  done;
  let o = Pl.access pl ~pid:1 (5 + (8 * sets)) in
  Alcotest.(check bool) "miss" true (Outcome.is_miss o);
  Alcotest.(check bool) "read through" false o.Outcome.cached;
  (* And the 9th lock attempt fails: no unlocked way left. *)
  Alcotest.(check bool) "no way to lock" false
    (Pl.lock_line pl ~pid:0 (5 + (9 * sets)))

let test_pl_unlock_owner_only () =
  let pl = Pl.create ~rng:(rng ()) () in
  ignore (Pl.lock_line pl ~pid:0 5);
  Alcotest.(check bool) "other pid cannot unlock" false (Pl.unlock_line pl ~pid:1 5);
  Alcotest.(check bool) "owner unlocks" true (Pl.unlock_line pl ~pid:0 5);
  Alcotest.(check (list int)) "no locks left" [] (Pl.locked_lines pl)

let test_pl_flush_respects_lock () =
  let pl = Pl.create ~rng:(rng ()) () in
  ignore (Pl.lock_line pl ~pid:0 5);
  Alcotest.(check bool) "attacker flush denied" false (Pl.flush_line pl ~pid:1 5);
  Alcotest.(check bool) "owner flush ok" true (Pl.flush_line pl ~pid:0 5)

let test_pl_unlocked_behaves_normally () =
  let pl = Pl.create ~rng:(rng ()) () in
  ignore (Pl.access pl ~pid:0 5);
  Alcotest.(check bool) "hit" true (Outcome.is_hit (Pl.access pl ~pid:0 5))

(* --- Nomo ---------------------------------------------------------------- *)

let make_nomo () =
  Nomo.create ~protected_pids:[ 0 ] ~rng:(rng ()) ()

let test_nomo_geometry () =
  let nm = make_nomo () in
  Alcotest.(check int) "reserved default w/4" 2 (Nomo.reserved_ways nm);
  Alcotest.(check int) "shared" 6 (Nomo.shared_ways nm);
  Alcotest.(check bool) "protected" true (Nomo.is_protected nm 0);
  Alcotest.(check bool) "unprotected" false (Nomo.is_protected nm 1)

let test_nomo_attacker_cannot_monopolize () =
  let nm = make_nomo () in
  let sets = Config.sets (Nomo.config nm) in
  (* Victim parks two lines (fits the reservation). *)
  ignore (Nomo.access nm ~pid:0 5);
  ignore (Nomo.access nm ~pid:0 (5 + sets));
  (* Attacker hammers the same set with thousands of lines. *)
  for k = 2 to 3000 do
    ignore (Nomo.access nm ~pid:1 (5 + (k * sets)))
  done;
  Alcotest.(check bool) "victim line 1 alive" true (Nomo.peek nm ~pid:0 5);
  Alcotest.(check bool) "victim line 2 alive" true
    (Nomo.peek nm ~pid:0 (5 + sets))

let test_nomo_victim_spills_when_exceeding () =
  let nm = Nomo.create ~reserved:1 ~protected_pids:[ 0 ] ~rng:(rng ()) () in
  let sets = Config.sets (Nomo.config nm) in
  (* Attacker owns the shared ways first. *)
  for k = 0 to 6 do
    ignore (Nomo.access nm ~pid:1 (1000 * sets |> fun b -> b + 5 + (k * sets)))
  done;
  (* Victim inserts two lines: the second must displace someone in the
     shared ways (interference). *)
  ignore (Nomo.access nm ~pid:0 5);
  let o = Nomo.access nm ~pid:0 (5 + sets) in
  Alcotest.(check bool) "spill evicts attacker" true
    (List.exists (fun (owner, _) -> owner = 1) (Outcome.evictions o))

let test_nomo_validation () =
  Alcotest.check_raises "reserved = ways"
    (Invalid_argument "Nomo.create: reserved must lie in [0, ways)") (fun () ->
      ignore (Nomo.create ~reserved:8 ~protected_pids:[] ~rng:(rng ()) ()))

(* --- Newcache -------------------------------------------------------------- *)

let test_newcache_hit_after_fill () =
  let nc = Newcache.create ~rng:(rng ()) () in
  Alcotest.(check int) "logical lines" (512 * 16) (Newcache.logical_lines nc);
  ignore (Newcache.access nc ~pid:0 7);
  Alcotest.(check bool) "hit" true (Outcome.is_hit (Newcache.access nc ~pid:0 7))

let test_newcache_pid_isolation () =
  let nc = Newcache.create ~rng:(rng ()) () in
  ignore (Newcache.access nc ~pid:0 7);
  Alcotest.(check bool) "other context misses same address" true
    (Outcome.is_miss (Newcache.access nc ~pid:1 7));
  (* Both copies can coexist. *)
  Alcotest.(check bool) "victim copy alive" true (Newcache.peek nc ~pid:0 7)

let test_newcache_index_conflict () =
  let nc = Newcache.create ~extra_bits:0 ~rng:(rng ()) () in
  (* extra_bits 0: logical lines = 512, so addresses 7 and 519 share a
     logical index; caching the second must invalidate the first. *)
  ignore (Newcache.access nc ~pid:0 7);
  let o = Newcache.access nc ~pid:0 (7 + 512) in
  Alcotest.(check bool) "conflict evicted old" true
    (List.mem (0, 7) (Outcome.evictions o));
  Alcotest.(check bool) "old gone" false (Newcache.peek nc ~pid:0 7);
  Alcotest.(check bool) "new present" true (Newcache.peek nc ~pid:0 (7 + 512))

let test_newcache_flush_own_only () =
  let nc = Newcache.create ~rng:(rng ()) () in
  ignore (Newcache.access nc ~pid:0 7);
  Alcotest.(check bool) "attacker flush misses victim copy" false
    (Newcache.flush_line nc ~pid:1 7);
  Alcotest.(check bool) "victim flush works" true (Newcache.flush_line nc ~pid:0 7)

let test_newcache_cam_consistency () =
  (* After a busy random workload, peek must agree with a full scan of
     the dumped lines (the CAM index never desynchronises). *)
  let nc = Newcache.create ~rng:(rng ()) () in
  let e = Newcache.engine nc in
  let r = rng () in
  for _ = 1 to 5000 do
    let pid = Rng.int r 2 and addr = Rng.int r 2000 in
    match Rng.int r 10 with
    | 0 -> ignore (e.Engine.flush_line ~pid addr)
    | 1 when Rng.int r 50 = 0 -> e.Engine.flush_all ()
    | _ -> ignore (e.Engine.access ~pid addr)
  done;
  let dumped = e.Engine.dump () in
  for pid = 0 to 1 do
    for addr = 0 to 1999 do
      let scan =
        List.exists
          (fun (_, (l : Line.t)) -> l.Line.owner = pid && l.Line.tag = addr)
          dumped
      in
      if scan <> e.Engine.peek ~pid addr then
        Alcotest.failf "cam desync pid=%d addr=%d (scan=%b)" pid addr scan
    done
  done

let test_newcache_random_eviction_spread () =
  let nc = Newcache.create ~rng:(rng ()) () in
  (* Fill all 512 physical lines, then insert more and check the
     evictions hit many distinct victims. *)
  for i = 0 to 511 do
    ignore (Newcache.access nc ~pid:0 i)
  done;
  let evicted = Hashtbl.create 64 in
  for i = 512 to 767 do
    let o = Newcache.access nc ~pid:0 (i + 100000) in
    List.iter (fun (_, line) -> Hashtbl.replace evicted line ()) (Outcome.evictions o);
    ignore i
  done;
  Alcotest.(check bool) "many distinct victims" true
    (Hashtbl.length evicted > 150)

(* --- RP ---------------------------------------------------------------- *)

let test_rp_same_pid_hit () =
  let rp = Rp.create ~rng:(rng ()) () in
  ignore (Rp.access rp ~pid:0 5);
  Alcotest.(check bool) "hit" true (Outcome.is_hit (Rp.access rp ~pid:0 5))

let test_rp_pid_isolation () =
  let rp = Rp.create ~rng:(rng ()) () in
  ignore (Rp.access rp ~pid:0 5);
  Alcotest.(check bool) "cross-context miss" true
    (Outcome.is_miss (Rp.access rp ~pid:1 5))

let test_rp_table_bijection_under_load () =
  let rp = Rp.create ~rng:(rng ()) () in
  let r = rng () in
  for _ = 1 to 5000 do
    ignore (Rp.access rp ~pid:(Rng.int r 2) (Rng.int r 4096))
  done;
  List.iter
    (fun pid ->
      let tbl = Rp.table rp ~pid in
      let seen = Array.make (Array.length tbl) false in
      Array.iter (fun s -> seen.(s) <- true) tbl;
      Alcotest.(check bool)
        (Printf.sprintf "pid %d table is a bijection" pid)
        true
        (Array.for_all Fun.id seen))
    [ 0; 1 ]

let test_rp_set_identity () =
  let rp = Rp.create ~rng:(rng ()) () in
  let r = rng () in
  for _ = 1 to 1000 do
    ignore (Rp.access rp ~pid:0 (Rng.int r 4096))
  done;
  Rp.set_identity rp ~pid:0;
  let tbl = Rp.table rp ~pid:0 in
  Alcotest.(check bool) "identity restored" true
    (Array.for_all Fun.id (Array.mapi (fun i s -> i = s) tbl))

let test_rp_external_miss_randomizes () =
  let rp = Rp.create ~rng:(rng ()) () in
  let sets = Config.sets (Rp.config rp) in
  (* Victim owns all of (his) set 5. *)
  for k = 0 to 7 do
    ignore (Rp.access rp ~pid:0 (5 + (k * sets)))
  done;
  (* Attacker storms logical set 5 with 50 distinct lines. On SA this
     would clean the set almost surely; RP's randomized interference
     handling (random set + table swap) must leave most victim lines
     alive. *)
  for k = 0 to 49 do
    ignore (Rp.access rp ~pid:1 (100032 + 5 + (k * sets)))
  done;
  let survivors =
    List.length
      (List.filter
         (fun k -> Rp.peek rp ~pid:0 (5 + (k * sets)))
         (List.init 8 Fun.id))
  in
  Alcotest.(check bool) "most victim lines survive" true (survivors >= 4)

(* --- RF ---------------------------------------------------------------- *)

let test_rf_demand_fetch_default () =
  let rf = Rf.create ~rng:(rng ()) () in
  Alcotest.(check (pair int int)) "default window" (0, 0) (Rf.window rf ~pid:0);
  let o = Rf.access rf ~pid:0 100 in
  Alcotest.(check bool) "window 0 caches the line" true o.Outcome.cached;
  Alcotest.(check bool) "hit after" true (Outcome.is_hit (Rf.access rf ~pid:0 100))

let test_rf_window_fetch () =
  let rf = Rf.create ~rng:(rng ()) () in
  Rf.set_window rf ~pid:0 ~back:64 ~fwd:64;
  let in_window = ref 0 and accessed_cached = ref 0 in
  for i = 0 to 199 do
    let addr = 100 + (i * 200) in
    let o = Rf.access rf ~pid:0 addr in
    (match o.Outcome.fetched with
    | Some l when l >= addr - 64 && l <= addr + 64 -> incr in_window
    | Some _ -> Alcotest.fail "fetch outside window"
    | None -> incr in_window (* already-cached window line: no fill *));
    if o.Outcome.cached then incr accessed_cached
  done;
  Alcotest.(check int) "fills stay in window" 200 !in_window;
  (* P(cached) = 1/129 per miss: expect a handful at most. *)
  Alcotest.(check bool) "accessed line rarely cached" true (!accessed_cached < 15)

let test_rf_window_validation () =
  let rf = Rf.create ~rng:(rng ()) () in
  Alcotest.check_raises "negative window"
    (Invalid_argument "Rf.set_window: negative window") (fun () ->
      Rf.set_window rf ~pid:0 ~back:(-1) ~fwd:0)

let test_rf_per_pid_windows () =
  let rf = Rf.create ~rng:(rng ()) () in
  Rf.set_window rf ~pid:0 ~back:8 ~fwd:8;
  Alcotest.(check (pair int int)) "victim window" (8, 8) (Rf.window rf ~pid:0);
  Alcotest.(check (pair int int)) "attacker stays demand" (0, 0)
    (Rf.window rf ~pid:1);
  (* The attacker's own accesses behave conventionally. *)
  let o = Rf.access rf ~pid:1 5000 in
  Alcotest.(check bool) "attacker demand fetch" true o.Outcome.cached

(* --- RE ---------------------------------------------------------------- *)

let test_re_periodic_eviction () =
  let re = Re.create ~interval:10 ~rng:(rng ()) () in
  for i = 0 to 99 do
    ignore (Re.access re ~pid:0 i)
  done;
  Alcotest.(check int) "10 periodic evictions" 10 (Re.random_evictions re)

let test_re_interval_one () =
  let re = Re.create ~interval:1 ~rng:(rng ()) () in
  for i = 0 to 9 do
    ignore (Re.access re ~pid:0 i)
  done;
  Alcotest.(check int) "every access" 10 (Re.random_evictions re)

let test_re_eviction_in_outcome () =
  let re =
    Re.create ~config:(Config.v ~line_bytes:64 ~lines:2 ~ways:1) ~interval:1
      ~rng:(rng ()) ()
  in
  ignore (Re.access re ~pid:0 0);
  ignore (Re.access re ~pid:0 1);
  (* With only two slots and an eviction per access, outcomes soon carry
     periodic evictions. *)
  let saw_extra = ref false in
  for i = 2 to 40 do
    let o = Re.access re ~pid:0 (i mod 2) in
    if Outcome.is_hit o && Outcome.eviction_count o > 0 then saw_extra := true
  done;
  Alcotest.(check bool) "periodic eviction reported on hits" true !saw_extra

let test_re_validation () =
  Alcotest.check_raises "interval"
    (Invalid_argument "Re.create: interval must be positive") (fun () ->
      ignore (Re.create ~interval:0 ~rng:(rng ()) ()))

(* --- Noisy / Timing ------------------------------------------------------ *)

let test_noisy () =
  let n = Noisy.create ~sigma:1.5 ~rng:(rng ()) () in
  Alcotest.(check (float 0.)) "sigma stored" 1.5 (Noisy.sigma n);
  let e = Noisy.engine n in
  Alcotest.(check (float 0.)) "engine sigma" 1.5 e.Engine.sigma;
  ignore (Noisy.access n ~pid:0 3);
  Alcotest.(check bool) "behaves like SA" true (Noisy.peek n ~pid:0 3);
  Alcotest.check_raises "negative sigma"
    (Invalid_argument "Noisy.create: negative sigma") (fun () ->
      ignore (Noisy.create ~sigma:(-1.) ~rng:(rng ()) ()))

let test_timing () =
  let r = rng () in
  Alcotest.(check (float 0.)) "hit time" 0.
    (Timing.observe r ~sigma:0. Outcome.Hit);
  Alcotest.(check (float 0.)) "miss time" 1.
    (Timing.observe r ~sigma:0. Outcome.Miss);
  Alcotest.(check bool) "classify miss" true
    (Timing.classify 0.9 = Outcome.Miss);
  Alcotest.(check bool) "classify hit" true (Timing.classify 0.1 = Outcome.Hit);
  Alcotest.(check (float 0.)) "no error without noise" 0.
    (Timing.error_probability ~sigma:0.);
  Alcotest.(check (float 1e-3)) "error at sigma 1" 0.3085
    (Timing.error_probability ~sigma:1.)

let test_timing_error_empirical () =
  let r = rng () in
  let sigma = 0.8 in
  let errors = ref 0 in
  let n = 20000 in
  for i = 1 to n do
    let event = if i mod 2 = 0 then Outcome.Hit else Outcome.Miss in
    let t = Timing.observe r ~sigma event in
    if Timing.classify t <> event then incr errors
  done;
  let expected = Timing.error_probability ~sigma in
  Alcotest.(check (float 0.02)) "empirical error rate" expected
    (float_of_int !errors /. float_of_int n)

(* --- Spec / Factory ------------------------------------------------------ *)

let test_spec_names () =
  Alcotest.(check int) "nine architectures" 9 (List.length Spec.all_paper);
  List.iter
    (fun spec ->
      match Spec.of_name (Spec.name spec) with
      | Some s ->
        Alcotest.(check string) "roundtrip" (Spec.name spec) (Spec.name s)
      | None -> Alcotest.failf "of_name failed for %s" (Spec.name spec))
    Spec.all_paper;
  Alcotest.(check (option string)) "unknown" None
    (Option.map Spec.name (Spec.of_name "bogus"))

let test_factory_builds_all () =
  let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 79) ] } in
  List.iter
    (fun spec ->
      let e = Factory.build spec scenario ~rng:(rng ()) in
      let o = e.Engine.access ~pid:0 5 in
      Alcotest.(check bool)
        (Spec.name spec ^ " first access misses")
        true (Outcome.is_miss o))
    Spec.all_paper

let test_factory_sp_homing () =
  let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 79) ] } in
  let e = Factory.build Spec.paper_sp scenario ~rng:(rng ()) in
  (* Attacker read-through on victim-homed line. *)
  let o = e.Engine.access ~pid:1 5 in
  Alcotest.(check bool) "read through" false o.Outcome.cached

let test_factory_rf_window () =
  let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 79) ] } in
  let e = Factory.build Spec.paper_rf scenario ~rng:(rng ()) in
  (* The victim's window is the paper's 129 lines: his misses usually do
     not cache the accessed line. *)
  let cached = ref 0 in
  for i = 0 to 99 do
    let o = e.Engine.access ~pid:0 (200 + (i * 300)) in
    if o.Outcome.cached then incr cached
  done;
  Alcotest.(check bool) "victim accesses rarely cached" true (!cached < 10);
  (* The attacker's accesses stay demand-fetched. *)
  let o = e.Engine.access ~pid:1 999999 in
  Alcotest.(check bool) "attacker demand" true o.Outcome.cached

let () =
  Alcotest.run "cache"
    [
      ( "geometry",
        [
          Alcotest.test_case "config" `Quick test_config;
          Alcotest.test_case "address" `Quick test_address;
          prop_address_roundtrip;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "line state" `Quick test_line;
          Alcotest.test_case "invalid first" `Quick test_replacement_invalid_first;
          Alcotest.test_case "lru" `Quick test_replacement_lru;
          Alcotest.test_case "fifo" `Quick test_replacement_fifo;
          Alcotest.test_case "random uniform" `Quick test_replacement_random_uniform;
          Alcotest.test_case "range/list agree" `Quick
            test_replacement_range_list_agree;
          Alcotest.test_case "errors" `Quick test_replacement_errors;
        ] );
      ( "policy registry",
        [
          Alcotest.test_case "registry round-trip" `Quick test_policy_registry;
          Alcotest.test_case "state needs" `Quick test_policy_needs;
          Alcotest.test_case "victim semantics" `Quick test_policy_victims;
          Alcotest.test_case "tree-plru" `Quick test_policy_plru;
          Alcotest.test_case "errors" `Quick test_policy_errors;
        ] );
      ("counters", [ Alcotest.test_case "arithmetic" `Quick test_counters ]);
      ( "sa",
        [
          Alcotest.test_case "miss then hit" `Quick test_sa_miss_then_hit;
          Alcotest.test_case "cross-pid hit" `Quick test_sa_cross_pid_hit;
          Alcotest.test_case "eviction reported" `Quick test_sa_eviction_reported;
          Alcotest.test_case "peek non-mutating" `Quick test_sa_peek_nonmutating;
          Alcotest.test_case "flush" `Quick test_sa_flush;
          Alcotest.test_case "lru exact" `Quick test_sa_lru_exact;
          Alcotest.test_case "fully associative" `Quick test_sa_fully_associative;
          Alcotest.test_case "engine" `Quick test_sa_engine;
        ] );
      ( "sp",
        [
          Alcotest.test_case "basics" `Quick test_sp_basic;
          Alcotest.test_case "cross-partition read-through" `Quick
            test_sp_cross_partition_read_through;
          Alcotest.test_case "shared line hit" `Quick test_sp_shared_line_hit;
          Alcotest.test_case "no cross eviction" `Quick
            test_sp_attacker_cannot_evict_victim;
          Alcotest.test_case "validation" `Quick test_sp_validation;
        ] );
      ( "pl",
        [
          Alcotest.test_case "lock protects" `Quick test_pl_lock_protects;
          Alcotest.test_case "read-through on locked" `Quick
            test_pl_read_through_on_locked_victim;
          Alcotest.test_case "unlock owner only" `Quick test_pl_unlock_owner_only;
          Alcotest.test_case "flush respects lock" `Quick test_pl_flush_respects_lock;
          Alcotest.test_case "unlocked normal" `Quick test_pl_unlocked_behaves_normally;
        ] );
      ( "nomo",
        [
          Alcotest.test_case "geometry" `Quick test_nomo_geometry;
          Alcotest.test_case "non-monopolizable" `Quick
            test_nomo_attacker_cannot_monopolize;
          Alcotest.test_case "victim spills" `Quick
            test_nomo_victim_spills_when_exceeding;
          Alcotest.test_case "validation" `Quick test_nomo_validation;
        ] );
      ( "newcache",
        [
          Alcotest.test_case "hit after fill" `Quick test_newcache_hit_after_fill;
          Alcotest.test_case "pid isolation" `Quick test_newcache_pid_isolation;
          Alcotest.test_case "index conflict" `Quick test_newcache_index_conflict;
          Alcotest.test_case "flush own only" `Quick test_newcache_flush_own_only;
          Alcotest.test_case "cam consistency" `Quick test_newcache_cam_consistency;
          Alcotest.test_case "eviction spread" `Quick
            test_newcache_random_eviction_spread;
        ] );
      ( "rp",
        [
          Alcotest.test_case "same pid hit" `Quick test_rp_same_pid_hit;
          Alcotest.test_case "pid isolation" `Quick test_rp_pid_isolation;
          Alcotest.test_case "bijection under load" `Quick
            test_rp_table_bijection_under_load;
          Alcotest.test_case "set identity" `Quick test_rp_set_identity;
          Alcotest.test_case "external miss randomizes" `Quick
            test_rp_external_miss_randomizes;
        ] );
      ( "rf",
        [
          Alcotest.test_case "demand fetch default" `Quick test_rf_demand_fetch_default;
          Alcotest.test_case "window fetch" `Quick test_rf_window_fetch;
          Alcotest.test_case "window validation" `Quick test_rf_window_validation;
          Alcotest.test_case "per-pid windows" `Quick test_rf_per_pid_windows;
        ] );
      ( "re",
        [
          Alcotest.test_case "periodic eviction" `Quick test_re_periodic_eviction;
          Alcotest.test_case "interval one" `Quick test_re_interval_one;
          Alcotest.test_case "eviction in outcome" `Quick test_re_eviction_in_outcome;
          Alcotest.test_case "validation" `Quick test_re_validation;
        ] );
      ( "noisy & timing",
        [
          Alcotest.test_case "noisy" `Quick test_noisy;
          Alcotest.test_case "timing" `Quick test_timing;
          Alcotest.test_case "timing error empirical" `Quick
            test_timing_error_empirical;
        ] );
      ( "spec & factory",
        [
          Alcotest.test_case "spec names" `Quick test_spec_names;
          Alcotest.test_case "factory builds all" `Quick test_factory_builds_all;
          Alcotest.test_case "sp homing" `Quick test_factory_sp_homing;
          Alcotest.test_case "rf window" `Quick test_factory_rf_window;
        ] );
    ]
