(* Tests for the PIFG core: nodes, edges, graph invariants, topological
   structure and the PAS theorem. *)

open Cachesec_core

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let node id label role = Node.v ~id ~label ~role
let internal id = node id (Printf.sprintf "n%d" id) Node.Internal

(* The paper's Figure 2 graph, used throughout. *)
let figure2 () =
  let nodes =
    [
      node 0 "A" Node.Attacker_origin;
      node 1 "B" Node.Internal;
      node 2 "C" Node.Internal;
      node 3 "D" Node.Internal;
      node 4 "E" Node.Internal;
      node 5 "I" Node.Victim_origin;
      node 6 "J" Node.Internal;
      node 7 "F" Node.Internal;
      node 8 "G" Node.Internal;
      node 9 "H" Node.Internal;
      node 10 "K" Node.Observation;
      node 11 "L" Node.Internal;
      node 12 "M" Node.Internal;
    ]
  in
  let e id label parents child p = Edge.v ~id ~label ~parents ~child p in
  let edges =
    [
      e 1 "p1" [ 0 ] 1 0.5;
      e 2 "p2" [ 1 ] 2 0.9;
      e 3 "p3" [ 2 ] 3 0.8;
      e 4 "p4" [ 1 ] 4 0.25;
      e 5 "p5" [ 5 ] 6 1.0;
      e 6 "p6" [ 4; 6 ] 7 1.0;
      e 7 "p7" [ 7 ] 8 0.5;
      e 8 "p8" [ 7 ] 9 0.7;
      e 9 "p9" [ 8 ] 10 1.0;
      e 10 "p10" [ 9 ] 11 0.6;
      e 11 "p11" [ 11 ] 12 0.4;
    ]
  in
  Graph.create_exn ~nodes ~edges

(* --- Node / Edge constructors ---------------------------------------- *)

let test_node_roles () =
  Alcotest.(check string) "role names" "victim-origin"
    (Node.role_to_string Node.Victim_origin);
  let a = node 1 "x" Node.Internal and b = node 1 "y" Node.Observation in
  Alcotest.(check bool) "identity is the id" true (Node.equal a b)

let test_edge_validation () =
  let mk ?(parents = [ 1 ]) ?(child = 2) p () =
    ignore (Edge.v ~id:0 ~parents ~child p)
  in
  Alcotest.check_raises "empty parents"
    (Invalid_argument "Edge.v: an edge needs at least one parent")
    (mk ~parents:[] 0.5);
  Alcotest.check_raises "dup parents"
    (Invalid_argument "Edge.v: duplicate parent")
    (mk ~parents:[ 1; 1 ] 0.5);
  Alcotest.check_raises "self loop" (Invalid_argument "Edge.v: self-loop")
    (mk ~parents:[ 2 ] ~child:2 0.5);
  Alcotest.check_raises "prob > 1"
    (Invalid_argument "Edge.v: probability must lie in [0, 1]")
    (mk 1.5);
  Alcotest.check_raises "prob < 0"
    (Invalid_argument "Edge.v: probability must lie in [0, 1]")
    (mk (-0.1));
  Alcotest.check_raises "nan prob"
    (Invalid_argument "Edge.v: probability must lie in [0, 1]")
    (mk nan)

(* --- Graph validation ------------------------------------------------- *)

let has_error pred = function
  | Ok _ -> false
  | Error errs -> List.exists pred errs

let base_nodes =
  [
    node 0 "v" Node.Victim_origin;
    node 1 "mid" Node.Internal;
    node 2 "obs" Node.Observation;
  ]

let chain_edges =
  [
    Edge.v ~id:0 ~parents:[ 0 ] ~child:1 0.5;
    Edge.v ~id:1 ~parents:[ 1 ] ~child:2 0.5;
  ]

let test_graph_valid () =
  let g = Graph.create_exn ~nodes:base_nodes ~edges:chain_edges in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Graph.edge_count g)

let test_graph_duplicate_node () =
  let r =
    Graph.create
      ~nodes:(base_nodes @ [ node 0 "dup" Node.Internal ])
      ~edges:chain_edges
  in
  Alcotest.(check bool) "dup node id" true
    (has_error (function Graph.Duplicate_node_id 0 -> true | _ -> false) r)

let test_graph_duplicate_edge () =
  let r =
    Graph.create ~nodes:base_nodes
      ~edges:(chain_edges @ [ Edge.v ~id:0 ~parents:[ 0 ] ~child:2 0.1 ])
  in
  Alcotest.(check bool) "dup edge id" true
    (has_error (function Graph.Duplicate_edge_id 0 -> true | _ -> false) r)

let test_graph_unknown_node () =
  let r =
    Graph.create ~nodes:base_nodes
      ~edges:[ Edge.v ~id:0 ~parents:[ 99 ] ~child:2 0.1 ]
  in
  Alcotest.(check bool) "unknown endpoint" true
    (has_error (function Graph.Unknown_node 99 -> true | _ -> false) r)

let test_graph_origin_with_parent () =
  let r =
    Graph.create ~nodes:base_nodes
      ~edges:(chain_edges @ [ Edge.v ~id:2 ~parents:[ 1 ] ~child:0 0.1 ])
  in
  Alcotest.(check bool) "origin has parent" true
    (has_error (function Graph.Origin_has_parent 0 -> true | _ -> false) r)

let test_graph_cycle () =
  let nodes = base_nodes @ [ internal 3; internal 4 ] in
  let edges =
    chain_edges
    @ [
        Edge.v ~id:2 ~parents:[ 3 ] ~child:4 0.5;
        Edge.v ~id:3 ~parents:[ 4 ] ~child:3 0.5;
      ]
  in
  let r = Graph.create ~nodes ~edges in
  Alcotest.(check bool) "cycle detected" true
    (has_error (function Graph.Cycle _ -> true | _ -> false) r)

let test_graph_requires_observation () =
  let r =
    Graph.create
      ~nodes:[ node 0 "v" Node.Victim_origin; internal 1 ]
      ~edges:[ Edge.v ~id:0 ~parents:[ 0 ] ~child:1 1.0 ]
  in
  Alcotest.(check bool) "no observation" true
    (has_error (function Graph.No_observation -> true | _ -> false) r)

let test_graph_requires_victim () =
  let r =
    Graph.create
      ~nodes:[ node 0 "a" Node.Attacker_origin; node 1 "o" Node.Observation ]
      ~edges:[ Edge.v ~id:0 ~parents:[ 0 ] ~child:1 1.0 ]
  in
  Alcotest.(check bool) "no victim origin" true
    (has_error (function Graph.No_victim_origin -> true | _ -> false) r)

let test_graph_duplicate_child () =
  let r =
    Graph.create ~nodes:base_nodes
      ~edges:(chain_edges @ [ Edge.v ~id:2 ~parents:[ 0 ] ~child:2 0.3 ])
  in
  Alcotest.(check bool) "two defining edges" true
    (has_error
       (function Graph.Duplicate_child_definition 2 -> true | _ -> false)
       r)

let test_graph_multiple_errors () =
  let r =
    Graph.create
      ~nodes:[ node 0 "v" Node.Victim_origin; node 0 "dup" Node.Internal ]
      ~edges:[ Edge.v ~id:0 ~parents:[ 42 ] ~child:0 1.0 ]
  in
  match r with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error errs ->
    Alcotest.(check bool) "several reported" true (List.length errs >= 2)

let test_create_exn_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.create_exn ~nodes:[] ~edges:[]);
       false
     with Invalid_argument _ -> true)

(* --- Structure -------------------------------------------------------- *)

let test_accessors () =
  let g = figure2 () in
  Alcotest.(check (list int)) "parents of F" [ 4; 6 ] (Graph.parents g 7);
  Alcotest.(check (list int)) "children of B" [ 2; 4 ] (Graph.children g 1);
  Alcotest.(check bool) "in_edge of origin" true (Graph.in_edge g 0 = None);
  Alcotest.(check int) "out edges of F" 2 (List.length (Graph.out_edges g 7));
  Alcotest.(check int) "victim origins" 1 (List.length (Graph.victim_origins g));
  Alcotest.(check int) "attacker origins" 1
    (List.length (Graph.attacker_origins g));
  Alcotest.(check int) "observations" 1 (List.length (Graph.observations g));
  Alcotest.(check bool) "node lookup" true ((Graph.node g 10).Node.label = "K");
  Alcotest.(check bool) "missing node" true
    (try
       ignore (Graph.node g 99);
       false
     with Not_found -> true)

let test_topological_order () =
  let g = figure2 () in
  let order = Graph.topological_order g in
  Alcotest.(check int) "all nodes" (Graph.node_count g) (List.length order);
  let pos =
    List.mapi (fun i (n : Node.t) -> (n.id, i)) order |> List.to_seq
    |> Hashtbl.of_seq
  in
  List.iter
    (fun (e : Edge.t) ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "parent before child" true
            (Hashtbl.find pos p < Hashtbl.find pos e.child))
        e.parents)
    (Graph.edges g)

let test_reachability () =
  let g = figure2 () in
  let fwd = Graph.reachable_from g [ 0 ] in
  Alcotest.(check bool) "A reaches K" true (Hashtbl.mem fwd 10);
  Alcotest.(check bool) "A does not reach J" false (Hashtbl.mem fwd 6);
  let bwd = Graph.co_reachable g [ 10 ] in
  Alcotest.(check bool) "K co-reaches I" true (Hashtbl.mem bwd 5);
  Alcotest.(check bool) "K does not co-reach D" false (Hashtbl.mem bwd 3)

let test_tainted () =
  let g = figure2 () in
  let tainted =
    List.map (fun (n : Node.t) -> n.Node.label) (Graph.tainted_nodes g)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "taint from I"
    (List.sort compare [ "I"; "J"; "F"; "G"; "H"; "K"; "L"; "M" ])
    tainted

(* --- PAS -------------------------------------------------------------- *)

let test_pas_figure2 () =
  let g = figure2 () in
  let labels es = List.map (fun (e : Edge.t) -> e.Edge.label) es in
  Alcotest.(check (list string)) "victim path" [ "p5"; "p6"; "p7"; "p9" ]
    (labels (Pas.victim_critical_edges g));
  Alcotest.(check (list string)) "attacker path"
    [ "p1"; "p4"; "p6"; "p7"; "p9" ]
    (labels (Pas.attacker_critical_edges g));
  Alcotest.(check (list string)) "union"
    [ "p1"; "p4"; "p5"; "p6"; "p7"; "p9" ]
    (labels (Pas.security_critical_edges g));
  Alcotest.(check (float 1e-12)) "PAS" (0.5 *. 0.25 *. 0.5) (Pas.pas g);
  Alcotest.(check (float 1e-9)) "log PAS" (log (Pas.pas g)) (Pas.log_pas g)

let test_pas_critical_nodes () =
  let g = figure2 () in
  let names =
    List.map (fun (n : Node.t) -> n.Node.label) (Pas.security_critical_nodes g)
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [ "A"; "B"; "E"; "I"; "J"; "F"; "G"; "K" ];
  Alcotest.(check bool) "C excluded" false (List.mem "C" names)

let test_pas_no_leak_path () =
  (* Victim origin disconnected from the observation: PAS = 0. *)
  let nodes =
    [
      node 0 "v" Node.Victim_origin;
      node 1 "a" Node.Attacker_origin;
      node 2 "x" Node.Internal;
      node 3 "obs" Node.Observation;
    ]
  in
  let edges =
    [
      Edge.v ~id:0 ~parents:[ 0 ] ~child:2 1.0;
      Edge.v ~id:1 ~parents:[ 1 ] ~child:3 1.0;
    ]
  in
  let g = Graph.create_exn ~nodes ~edges in
  Alcotest.(check (float 0.)) "PAS 0" 0. (Pas.pas g);
  Alcotest.(check bool) "log -inf" true (Pas.log_pas g = neg_infinity)

let test_pas_no_attacker_origin () =
  (* Collision-style graph: no attacker origin at all. *)
  let nodes =
    [ node 0 "v" Node.Victim_origin; internal 1; node 2 "obs" Node.Observation ]
  in
  let edges =
    [
      Edge.v ~id:0 ~parents:[ 0 ] ~child:1 0.4;
      Edge.v ~id:1 ~parents:[ 1 ] ~child:2 0.5;
    ]
  in
  let g = Graph.create_exn ~nodes ~edges in
  Alcotest.(check int) "no attacker path" 0
    (List.length (Pas.attacker_critical_edges g));
  Alcotest.(check (float 1e-12)) "PAS" 0.2 (Pas.pas g)

(* Random layered DAG generator for property tests. *)
let random_graph seed =
  let rng = Random.State.make [| seed |] in
  let n_internal = 3 + Random.State.int rng 8 in
  let nodes =
    node 0 "v" Node.Victim_origin
    :: node 1 "a" Node.Attacker_origin
    :: node 2 "obs" Node.Observation
    :: List.init n_internal (fun i -> internal (3 + i))
  in
  (* Edges only from lower ids to higher ids (plus into the observation),
     guaranteeing acyclicity; the observation node 2 is treated as the
     highest node. *)
  let order i = if i = 2 then 1000 else i in
  let edges = ref [] in
  let eid = ref 0 in
  let candidates = 3 + n_internal in
  for child = 3 to candidates - 1 do
    let possible = List.filter (fun p -> order p < order child) [ 0; 1 ] in
    let internal_parents =
      List.filter (fun p -> p >= 3 && p < child) (List.init candidates Fun.id)
    in
    let all = possible @ internal_parents in
    if all <> [] && Random.State.bool rng then begin
      let k = 1 + Random.State.int rng (Stdlib.min 2 (List.length all)) in
      let parents =
        List.sort_uniq compare
          (List.init k (fun _ -> List.nth all (Random.State.int rng (List.length all))))
      in
      edges :=
        Edge.v ~id:!eid ~parents ~child (Random.State.float rng 1.0) :: !edges;
      incr eid
    end
  done;
  (* Connect something to the observation. *)
  let obs_parent = 3 + Random.State.int rng n_internal in
  edges := Edge.v ~id:!eid ~parents:[ obs_parent ] ~child:2 0.9 :: !edges;
  Graph.create_exn ~nodes ~edges:!edges

let prop_pas_in_unit_interval =
  qtest ~count:300 "PAS lies in [0,1] on random DAGs" QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed in
      let p = Pas.pas g in
      p >= 0. && p <= 1.)

let prop_pas_product_equality =
  qtest ~count:300 "PAS = product of critical-edge probabilities or 0"
    QCheck.(int_range 0 10000) (fun seed ->
      let g = random_graph seed in
      let p = Pas.pas g in
      if Pas.victim_critical_edges g = [] then p = 0.
      else begin
        let product =
          List.fold_left
            (fun acc (e : Edge.t) -> acc *. e.Edge.prob)
            1.
            (Pas.security_critical_edges g)
        in
        Float.abs (p -. product) < 1e-12
      end)

let prop_topo_valid =
  qtest ~count:300 "topological order respects edges" QCheck.(int_range 0 10000)
    (fun seed ->
      let g = random_graph seed in
      let pos = Hashtbl.create 16 in
      List.iteri
        (fun i (n : Node.t) -> Hashtbl.replace pos n.Node.id i)
        (Graph.topological_order g);
      List.for_all
        (fun (e : Edge.t) ->
          List.for_all
            (fun p -> Hashtbl.find pos p < Hashtbl.find pos e.Edge.child)
            e.Edge.parents)
        (Graph.edges g))

(* Brute-force oracle for the security-critical edge set: enumerate all
   directed paths (DFS over the hyper-edges) from each origin to each
   observation and collect every edge on any such path. The production
   implementation uses closure intersection; they must agree. *)
let critical_edges_brute_force g =
  let edges = Graph.edges g in
  let obs =
    List.map (fun (n : Node.t) -> n.Node.id) (Graph.observations g)
  in
  let origins =
    List.map
      (fun (n : Node.t) -> n.Node.id)
      (Graph.victim_origins g @ Graph.attacker_origins g)
  in
  (* From [node], the set of edges on some path reaching an observation. *)
  let memo = Hashtbl.create 16 in
  let rec edges_to_obs node =
    match Hashtbl.find_opt memo node with
    | Some r -> r
    | None ->
      Hashtbl.replace memo node None;  (* acyclic, but be safe *)
      let out =
        List.filter (fun (e : Edge.t) -> List.mem node e.Edge.parents) edges
      in
      let result =
        List.fold_left
          (fun acc (e : Edge.t) ->
            let tail =
              if List.mem e.Edge.child obs then Some [ e.Edge.id ]
              else begin
                match edges_to_obs e.Edge.child with
                | Some sub -> Some (e.Edge.id :: sub)
                | None -> None
              end
            in
            match tail with
            | Some ids -> ids @ acc
            | None -> acc)
          [] out
      in
      let result = if result = [] then None else Some result in
      Hashtbl.replace memo node result;
      result
  in
  origins
  |> List.concat_map (fun o -> Option.value ~default:[] (edges_to_obs o))
  |> List.sort_uniq Int.compare

let prop_critical_edges_match_brute_force =
  qtest ~count:500 "closure method equals brute-force path enumeration"
    QCheck.(int_range 0 100000) (fun seed ->
      let g = random_graph seed in
      let fast =
        List.map (fun (e : Edge.t) -> e.Edge.id) (Pas.security_critical_edges g)
      in
      fast = critical_edges_brute_force g)

let test_brute_force_on_figure2 () =
  let g = figure2 () in
  Alcotest.(check (list int)) "figure 2 edge ids" [ 1; 4; 5; 6; 7; 9 ]
    (critical_edges_brute_force g)

(* --- Builder ---------------------------------------------------------- *)

let test_builder () =
  let b = Builder.create () in
  let v = Builder.node b ~label:"v" ~role:Node.Victim_origin in
  let o = Builder.node b ~label:"o" ~role:Node.Observation in
  Alcotest.(check int) "sequential ids" 1 o;
  let _ = Builder.edge b ~label:"e" ~parents:[ v ] ~child:o 0.5 in
  let g = Builder.finish_exn b in
  Alcotest.(check (float 1e-12)) "pas" 0.5 (Pas.pas g);
  (* The builder can keep growing; finish snapshots. *)
  let x = Builder.node b ~label:"x" ~role:Node.Internal in
  let _ = Builder.edge b ~parents:[ v ] ~child:x 0.1 in
  let g2 = Builder.finish_exn b in
  Alcotest.(check int) "extended" 3 (Graph.node_count g2);
  Alcotest.(check int) "snapshot unchanged" 2 (Graph.node_count g)

let test_builder_invalid () =
  let b = Builder.create () in
  let v = Builder.node b ~label:"v" ~role:Node.Victim_origin in
  Alcotest.(check bool) "bad prob raises" true
    (try
       ignore (Builder.edge b ~parents:[ v ] ~child:v 2.0);
       false
     with Invalid_argument _ -> true)

(* --- Dot --------------------------------------------------------------- *)

let test_dot () =
  let g = figure2 () in
  let s = Dot.to_string ~name:"fig2" g in
  Alcotest.(check bool) "digraph header" true
    (String.length s > 0
    && String.sub s 0 14 = "digraph \"fig2\"");
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bold critical edge" true (contains "style=bold");
  Alcotest.(check bool) "victim origin glyph" true (contains "doublecircle");
  Alcotest.(check bool) "multi-parent join" true (contains "shape=point");
  Alcotest.(check bool) "balanced braces" true
    (String.fold_left (fun acc c -> if c = '{' then acc + 1 else if c = '}' then acc - 1 else acc) 0 s
     = 0)

(* --- Ckey: canonical-key injectivity --------------------------------- *)

let test_ckey_atoms () =
  let distinct pairs =
    List.iter
      (fun (name, a, b) ->
        Alcotest.(check bool) name false
          (String.equal (Ckey.to_string a) (Ckey.to_string b)))
      pairs
  in
  distinct
    [
      (* Same payload spelling, different types. *)
      ("string vs int", Ckey.string "1", Ckey.int 1);
      ("float vs int", Ckey.float 1.0, Ckey.int 1);
      ("bool vs int", Ckey.bool true, Ckey.int 1);
      (* List splits: concatenation without self-delimiting atoms would
         confuse these. *)
      ( "list split point",
        Ckey.list [ Ckey.string "ab"; Ckey.string "c" ],
        Ckey.list [ Ckey.string "a"; Ckey.string "bc" ] );
      ( "nesting depth",
        Ckey.list [ Ckey.list [ Ckey.int 1 ]; Ckey.int 2 ],
        Ckey.list [ Ckey.int 1; Ckey.list [ Ckey.int 2 ] ] );
      (* Tag names that are prefixes of one another. *)
      ("prefix tags", Ckey.tag "sa" [ Ckey.int 1 ], Ckey.tag "sas" [ Ckey.int 1 ]);
      ( "tag vs child",
        Ckey.tag "a" [ Ckey.tag "b" [] ],
        Ckey.tag "ab" [] );
      (* Strings containing the encoder's own separators. *)
      ( "separator injection",
        Ckey.string "i1;",
        Ckey.list [ Ckey.int 1 ] );
      ("empty variants", Ckey.string "", Ckey.list []);
    ];
  (* Equal trees encode equally (the other half of canonicality). *)
  Alcotest.(check string) "deterministic"
    (Ckey.to_string (Ckey.tag "q" [ Ckey.int 3; Ckey.float 0.5 ]))
    (Ckey.to_string (Ckey.tag "q" [ Ckey.int 3; Ckey.float 0.5 ]));
  (* Floats are exact: values that differ in the last ulp get distinct
     keys, equal values (however computed) share one. *)
  Alcotest.(check bool) "float exactness" false
    (String.equal
       (Ckey.to_string (Ckey.float 0.3))
       (Ckey.to_string (Ckey.float (0.1 +. 0.2))));
  Alcotest.(check string) "float identity"
    (Ckey.to_string (Ckey.float 1.))
    (Ckey.to_string (Ckey.float (0.5 +. 0.5)))

let test_ckey_qcheck_strings () =
  (* Randomized check of the workhorse case: distinct string lists
     never collide under concatenation. *)
  let gen = QCheck.(pair (small_list small_string) (small_list small_string)) in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"list-of-strings injective" gen
       (fun (xs, ys) ->
         let k l = Ckey.to_string (Ckey.list (List.map Ckey.string l)) in
         QCheck.assume (xs <> ys);
         not (String.equal (k xs) (k ys))))

let () =
  Alcotest.run "core"
    [
      ( "node & edge",
        [
          Alcotest.test_case "node roles" `Quick test_node_roles;
          Alcotest.test_case "edge validation" `Quick test_edge_validation;
        ] );
      ( "graph validation",
        [
          Alcotest.test_case "valid chain" `Quick test_graph_valid;
          Alcotest.test_case "duplicate node" `Quick test_graph_duplicate_node;
          Alcotest.test_case "duplicate edge" `Quick test_graph_duplicate_edge;
          Alcotest.test_case "unknown node" `Quick test_graph_unknown_node;
          Alcotest.test_case "origin with parent" `Quick test_graph_origin_with_parent;
          Alcotest.test_case "cycle" `Quick test_graph_cycle;
          Alcotest.test_case "needs observation" `Quick test_graph_requires_observation;
          Alcotest.test_case "needs victim" `Quick test_graph_requires_victim;
          Alcotest.test_case "duplicate child" `Quick test_graph_duplicate_child;
          Alcotest.test_case "multiple errors" `Quick test_graph_multiple_errors;
          Alcotest.test_case "create_exn raises" `Quick test_create_exn_raises;
        ] );
      ( "structure",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "tainted nodes" `Quick test_tainted;
          prop_topo_valid;
        ] );
      ( "pas",
        [
          Alcotest.test_case "figure 2" `Quick test_pas_figure2;
          Alcotest.test_case "critical nodes" `Quick test_pas_critical_nodes;
          Alcotest.test_case "no leak path" `Quick test_pas_no_leak_path;
          Alcotest.test_case "no attacker origin" `Quick test_pas_no_attacker_origin;
          prop_pas_in_unit_interval;
          prop_pas_product_equality;
          prop_critical_edges_match_brute_force;
          Alcotest.test_case "brute force on figure 2" `Quick
            test_brute_force_on_figure2;
        ] );
      ( "builder",
        [
          Alcotest.test_case "builder basics" `Quick test_builder;
          Alcotest.test_case "builder invalid" `Quick test_builder_invalid;
        ] );
      ("dot", [ Alcotest.test_case "dot output" `Quick test_dot ]);
      ( "ckey",
        [
          Alcotest.test_case "injective atoms & composites" `Quick
            test_ckey_atoms;
          Alcotest.test_case "random string lists" `Quick
            test_ckey_qcheck_strings;
        ] );
    ]
