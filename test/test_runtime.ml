(* The trial runtime's contract: jobs changes wall-clock, never results.

   Serial (jobs:1) and Domain-parallel (jobs:4, more workers than this
   machine may have cores) executions of the same trial family, driver
   campaign, or validation cell must be bit-identical. *)

(* These tests deliberately exercise the deprecated optional-tail
   wrappers alongside the Run.ctx primaries: old-vs-new equivalence is
   part of the API-migration contract. *)
[@@@alert "-deprecated"]

open Cachesec_stats
open Cachesec_runtime
open Cachesec_cache
open Cachesec_experiments

(* --- Trial ----------------------------------------------------------- *)

let test_trial_seed_derivation () =
  let t = Trial.make ~seed_base:99 (fun ~rng -> Rng.int rng 1_000_000) in
  Alcotest.(check int)
    "seed_for matches Rng.derive_seed" (Rng.derive_seed 99 7)
    (Trial.seed_for t 7);
  (* Instance i is a pure function of (seed_base, i). *)
  Alcotest.(check int)
    "run_instance replays" (Trial.run_instance t 7) (Trial.run_instance t 7);
  (* Distinct instances get distinct streams. *)
  Alcotest.(check bool)
    "instances differ" true
    (Trial.run_instance t 0 <> Trial.run_instance t 1
    || Trial.run_instance t 1 <> Trial.run_instance t 2)

let test_trial_map () =
  let t = Trial.make ~seed_base:5 (fun ~rng -> Rng.int rng 100) in
  let doubled = Trial.map (fun x -> 2 * x) t in
  Alcotest.(check int)
    "map post-composes"
    (2 * Trial.run_instance t 3)
    (Trial.run_instance doubled 3)

(* --- Scheduler ------------------------------------------------------- *)

let test_resolve_jobs () =
  Alcotest.(check int) "absent = serial" 1 (Scheduler.resolve_jobs None);
  Alcotest.(check int) "explicit" 3 (Scheduler.resolve_jobs (Some 3));
  Alcotest.(check int)
    "auto = recommended" (Scheduler.default_jobs ())
    (Scheduler.resolve_jobs (Some 0));
  Alcotest.check_raises "negative"
    (Invalid_argument "Scheduler.run: jobs must be non-negative (0 = auto)")
    (fun () -> ignore (Scheduler.resolve_jobs (Some (-1))))

let test_scheduler_serial_parallel_identical () =
  let t =
    Trial.make ~seed_base:1234 (fun ~rng ->
        (* A body with real RNG consumption. *)
        let acc = ref 0 in
        for _ = 1 to 100 do
          acc := !acc + Rng.int rng 1000
        done;
        !acc)
  in
  let serial = Scheduler.run ~jobs:1 t ~instances:37 in
  let parallel = Scheduler.run ~jobs:4 t ~instances:37 in
  let auto = Scheduler.run ~jobs:0 t ~instances:37 in
  Alcotest.(check (array int)) "jobs:1 = jobs:4" serial parallel;
  Alcotest.(check (array int)) "jobs:1 = jobs:auto" serial auto

let test_scheduler_run_reduce_order () =
  (* String concatenation is associative but not commutative: the fold
     must happen in index order regardless of worker count. *)
  let t = Trial.make ~seed_base:0 (fun ~rng -> ignore rng; "") in
  let t = { t with Trial.run = (fun ~rng -> string_of_int (Rng.int rng 10)) } in
  let a = Scheduler.run_reduce ~jobs:1 ~merge:( ^ ) t ~instances:25 in
  let b = Scheduler.run_reduce ~jobs:4 ~merge:( ^ ) t ~instances:25 in
  Alcotest.(check string) "ordered fold" a b;
  Alcotest.check_raises "empty"
    (Invalid_argument "Scheduler.run_reduce: zero instances")
    (fun () ->
      ignore (Scheduler.run_reduce ~merge:( ^ ) t ~instances:0))

let test_scheduler_map_array () =
  let xs = Array.init 50 (fun i -> i) in
  let f i = i * i in
  Alcotest.(check (array int))
    "map_array order-preserving" (Array.map f xs)
    (Scheduler.map_array ~jobs:4 f xs);
  Alcotest.(check (list int))
    "map_list" (List.map f (Array.to_list xs))
    (Scheduler.map_list ~jobs:4 f (Array.to_list xs))

let test_scheduler_exception_propagates () =
  let t =
    Trial.make ~seed_base:0 (fun ~rng ->
        ignore rng;
        failwith "boom")
  in
  Alcotest.check_raises "worker exception re-raised" (Failure "boom")
    (fun () -> ignore (Scheduler.run ~jobs:4 t ~instances:8))

let test_plan () =
  let plan = Scheduler.plan ~total:10 ~batch_size:4 in
  Alcotest.(check int) "batches" 3 (Array.length plan);
  Array.iteri
    (fun i (b : Scheduler.batch) ->
      Alcotest.(check int) "index" i b.Scheduler.index)
    plan;
  let covered =
    Array.fold_left (fun acc (b : Scheduler.batch) -> acc + b.Scheduler.count) 0 plan
  in
  Alcotest.(check int) "covers total" 10 covered;
  Alcotest.(check int) "last first" 8 plan.(2).Scheduler.first;
  Alcotest.(check int) "last count" 2 plan.(2).Scheduler.count

(* --- Pool ------------------------------------------------------------ *)

let test_pool_submit_await () =
  Pool.ensure ~workers:4;
  Alcotest.(check bool) "pool is live" true (Pool.workers () >= 4);
  (* Values come back, in whatever order we await them. *)
  let futs = List.init 20 (fun i -> Pool.submit (fun () -> i * i)) in
  List.iteri
    (fun i f -> Alcotest.(check int) "future value" (i * i) (Pool.await f))
    futs;
  (* Concurrent submits from a pooled task: tasks may enqueue more
     tasks (they just must not await them) — the main domain joins
     everything. *)
  let inner = Atomic.make [] in
  let outer =
    List.init 8 (fun i ->
        Pool.submit (fun () ->
            let f = Pool.submit (fun () -> i + 100) in
            let rec push () =
              let old = Atomic.get inner in
              if not (Atomic.compare_and_set inner old (f :: old)) then push ()
            in
            push ()))
  in
  List.iter Pool.await outer;
  let inner_vals =
    List.sort compare (List.map Pool.await (Atomic.get inner))
  in
  Alcotest.(check (list int))
    "nested submits all ran" (List.init 8 (fun i -> i + 100)) inner_vals

let test_pool_exception_propagates () =
  Pool.ensure ~workers:2;
  let f = Pool.submit (fun () -> failwith "pool-boom") in
  Alcotest.check_raises "task exception re-raised at await"
    (Failure "pool-boom") (fun () -> Pool.await f);
  (* A failed future stays failed: awaiting again re-raises again. *)
  Alcotest.check_raises "failure is sticky" (Failure "pool-boom") (fun () ->
      Pool.await f);
  (* And the pool survives: the worker that ran the failing task keeps
     serving. *)
  Alcotest.(check int) "pool still serves" 7
    (Pool.await (Pool.submit (fun () -> 7)))

let test_pool_await_inside_worker_rejected () =
  Pool.ensure ~workers:2;
  (* [blocker] stays Pending until [release] is set, so the worker
     running [f] hits the real Pending path of [Pool.await] (a Done
     future short-circuits before the in-worker check). *)
  let release = Atomic.make false in
  let blocker =
    Pool.submit (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  let f = Pool.submit (fun () -> Pool.await blocker) in
  Alcotest.check_raises "await from a worker refuses"
    (Invalid_argument "Pool.await: cannot await from inside a pool worker")
    (fun () -> Pool.await f);
  Atomic.set release true;
  Pool.await blocker

let test_pool_quiesce_respawns () =
  (* Quiesce joins the workers (serial benches need a genuinely
     single-domain process) but is not a shutdown: eager inline
     submission keeps working at zero workers, a later [ensure]
     respawns, and cumulative busy-seconds never move backwards. *)
  Pool.ensure ~workers:2;
  Alcotest.(check int) "warm task" 6 (Pool.await (Pool.submit (fun () -> 6)));
  let busy_before = Pool.busy_seconds () in
  Pool.quiesce ();
  Alcotest.(check int) "no workers after quiesce" 0 (Pool.workers ());
  Alcotest.(check int) "eager inline at zero workers" 9
    (Pool.await (Pool.submit (fun () -> 9)));
  Alcotest.(check bool)
    "busy seconds survive the cycle" true
    (Pool.busy_seconds () >= busy_before);
  Pool.ensure ~workers:2;
  Alcotest.(check bool) "respawned" true (Pool.workers () >= 2);
  Alcotest.(check int) "pooled task after respawn" 11
    (Pool.await (Pool.submit (fun () -> 11)))

let test_pool_try_submit_bound () =
  (* Deterministic backpressure: park every worker on a gate so tasks
     queue instead of being claimed, then watch the bound refuse
     exactly at [max_pending]. *)
  Pool.ensure ~workers:2;
  let w = Pool.workers () in
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let gates =
    List.init w (fun _ ->
        Pool.submit (fun () ->
            Atomic.incr started;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  (* Wait until every worker is provably inside a gate task: the queue
     is now empty and nothing else will be claimed until release. *)
  while Atomic.get started < w do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "queue empty while workers busy" 0 (Pool.queued_tasks ());
  let a = Pool.try_submit ~max_pending:2 (fun () -> 1) in
  let b = Pool.try_submit ~max_pending:2 (fun () -> 2) in
  Alcotest.(check bool) "under the bound admits" true
    (a <> None && b <> None);
  Alcotest.(check int) "two queued" 2 (Pool.queued_tasks ());
  Alcotest.(check bool) "at the bound refuses" true
    (Pool.try_submit ~max_pending:2 (fun () -> 3) = None);
  Alcotest.(check bool) "zero bound refuses even when empty" true
    (Pool.try_submit ~max_pending:0 (fun () -> 4) = None);
  Atomic.set release true;
  List.iter Pool.await gates;
  (* Admitted-then-queued work completes normally after release. *)
  (match (a, b) with
  | Some fa, Some fb ->
    Alcotest.(check int) "first admitted" 1 (Pool.await fa);
    Alcotest.(check int) "second admitted" 2 (Pool.await fb)
  | _ -> Alcotest.fail "admissions lost");
  (* With zero workers the queue cannot exist: any positive bound
     admits and runs eagerly inline. *)
  Pool.quiesce ();
  (match Pool.try_submit ~max_pending:1 (fun () -> 5) with
  | Some f -> Alcotest.(check int) "inline at zero workers" 5 (Pool.await f)
  | None -> Alcotest.fail "positive bound refused at zero workers");
  Pool.ensure ~workers:2

let test_pool_poll () =
  Pool.ensure ~workers:2;
  (* Pending -> None; Done -> Some; repeated polls agree. *)
  let release = Atomic.make false in
  let f =
    Pool.submit (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        42)
  in
  Alcotest.(check (option int)) "pending polls None" None (Pool.poll f);
  Atomic.set release true;
  Alcotest.(check int) "await" 42 (Pool.await f);
  Alcotest.(check (option int)) "done polls Some" (Some 42) (Pool.poll f);
  Alcotest.(check (option int)) "poll is idempotent" (Some 42) (Pool.poll f);
  (* Every observer of a failed future sees the same exception, on
     every poll — the dedup server joins many waiters onto one future
     and reports one shared outcome. *)
  let g = Pool.submit (fun () -> failwith "poll-boom") in
  (try ignore (Pool.await g) with Failure _ -> ());
  List.iter
    (fun observer ->
      Alcotest.check_raises
        (Printf.sprintf "observer %d sees the failure" observer)
        (Failure "poll-boom")
        (fun () -> ignore (Pool.poll g)))
    [ 1; 2; 3 ]

let test_scheduler_fold_results () =
  Alcotest.(check string)
    "index-order fold" "abc"
    (Scheduler.fold_results ~merge:( ^ ) [| "a"; "b"; "c" |]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Scheduler.fold_results: empty results") (fun () ->
      ignore (Scheduler.fold_results ~merge:( ^ ) [||]));
  (* ?what names the campaign in the error, so an empty merge can be
     traced to its submitter. *)
  Alcotest.check_raises "empty with what"
    (Invalid_argument "Scheduler.fold_results: empty evict-time partials")
    (fun () ->
      ignore
        (Scheduler.fold_results ~what:"evict-time partials" ~merge:( ^ ) [||]));
  (* The option variant makes emptiness a value, not an exception. *)
  Alcotest.(check (option string))
    "opt on empty" None
    (Scheduler.fold_results_opt ~merge:( ^ ) [||]);
  Alcotest.(check (option string))
    "opt folds in index order" (Some "abc")
    (Scheduler.fold_results_opt ~merge:( ^ ) [| "a"; "b"; "c" |])

let test_scheduler_pipelined_submits () =
  (* Several families submitted before any await: results must equal the
     blocking forms exactly, and awaiting out of submission order is
     fine. *)
  let xs = Array.init 40 (fun i -> i) in
  let f i = (i * 7) mod 13 in
  let g i = i + 1000 in
  let a = Scheduler.submit_map ~jobs:4 f xs in
  let b = Scheduler.submit_map ~jobs:4 g xs in
  let c = Scheduler.submit_map ~jobs:1 f xs in
  let rb = Scheduler.await b in
  let ra = Scheduler.await a in
  let rc = Scheduler.await c in
  Alcotest.(check (array int)) "family a" (Array.map f xs) ra;
  Alcotest.(check (array int)) "family b" (Array.map g xs) rb;
  Alcotest.(check (array int)) "serial submit is eager and equal" ra rc

let test_driver_pending_combinators () =
  Alcotest.(check int) "pending_value" 5 (Driver.await (Driver.pending_value 5));
  let calls = ref 0 in
  let p =
    Driver.map_pending
      (fun x ->
        incr calls;
        x * 2)
      (Driver.pending_value 21)
  in
  Alcotest.(check int) "map_pending" 42 (Driver.await p);
  Alcotest.(check int) "await memoizes" 42 (Driver.await p);
  Alcotest.(check int) "join ran once" 1 !calls

(* --- Driver: jobs-invariance of real experiments --------------------- *)

let spec = Spec.paper_sa

let test_driver_flush_reload_invariant () =
  let cfg =
    { Cachesec_attacks.Flush_reload.default_config with
      Cachesec_attacks.Flush_reload.trials = 600 (* spans 3 batches of 256 *)
    }
  in
  let r1 = Driver.flush_reload ~jobs:1 ~seed:42 spec cfg in
  let r4 = Driver.flush_reload ~jobs:4 ~seed:42 spec cfg in
  Alcotest.(check bool)
    "same verdict" r1.Cachesec_attacks.Flush_reload.nibble_recovered
    r4.Cachesec_attacks.Flush_reload.nibble_recovered;
  Alcotest.(check int)
    "same winner" r1.Cachesec_attacks.Flush_reload.best_candidate
    r4.Cachesec_attacks.Flush_reload.best_candidate;
  Alcotest.(check (float 0.))
    "same separation" r1.Cachesec_attacks.Flush_reload.separation
    r4.Cachesec_attacks.Flush_reload.separation

let test_driver_cleaning_game_invariant () =
  let p1 = Driver.cleaning_game ~jobs:1 ~seed:7 spec ~accesses:16 ~samples:600 in
  let p4 = Driver.cleaning_game ~jobs:4 ~seed:7 spec ~accesses:16 ~samples:600 in
  Alcotest.(check (float 0.)) "bit-identical probability" p1 p4

let test_driver_timing_stats_invariant () =
  let h1, s1 = Driver.timing_stats ~jobs:1 ~seed:9 spec ~trials:1500 () in
  let h4, s4 = Driver.timing_stats ~jobs:4 ~seed:9 spec ~trials:1500 () in
  Alcotest.(check (array int))
    "identical merged histograms" (Histogram.counts h1) (Histogram.counts h4);
  Alcotest.(check int) "identical totals" (Histogram.total h1) (Histogram.total h4);
  Alcotest.(check int) "identical counts" (Summary.count s1) (Summary.count s4);
  Alcotest.(check (float 1e-9)) "identical means" (Summary.mean s1) (Summary.mean s4)

let cell_testable =
  let pp ppf (c : Validation.cell) =
    Format.fprintf ppf "{%s %s pas=%g pred=%b rec=%b sep=%g}" c.Validation.arch
      (Cachesec_analysis.Attack_type.name c.Validation.attack)
      c.Validation.pas c.Validation.predicted_leak c.Validation.recovered
      c.Validation.separation
  in
  (* [compare] rather than [=]: a cell with zero observed variance has
     separation = nan, and nan must compare equal to itself here. *)
  Alcotest.testable pp (fun a b -> compare a b = 0)

let test_validation_cells_jobs_invariant () =
  (* Two full cells of the validation matrix, one per attack family that
     exercises a different run_span, at Quick scale. *)
  let check_cell spec attack =
    let c1 =
      Validation.run_cell ~scale:Figures.Quick ~seed:42 ~jobs:1 spec attack
    in
    let c4 =
      Validation.run_cell ~scale:Figures.Quick ~seed:42 ~jobs:4 spec attack
    in
    Alcotest.check cell_testable
      (Spec.name spec ^ " cell identical across jobs")
      c1 c4
  in
  check_cell Spec.paper_sa Cachesec_analysis.Attack_type.Flush_and_reload;
  check_cell Spec.paper_sa Cachesec_analysis.Attack_type.Evict_and_time;
  check_cell Spec.paper_newcache Cachesec_analysis.Attack_type.Prime_and_probe;
  check_cell Spec.paper_rf Cachesec_analysis.Attack_type.Cache_collision

let test_validation_matrix_pipelined_identical () =
  (* The tentpole contract, end to end: the full 36-cell validation
     matrix is bit-identical between strictly sequential campaign
     execution and pipelined submits, serial and parallel. Sequential
     jobs:4 is the reference; pipelined jobs:4 reorders execution on the
     pool queue, pipelined jobs:1 degrades to eager submits — all three
     must agree cell for cell. *)
  let matrix ~pipeline ~jobs =
    Validation.cells ~pipeline (Run.quick (Run.make ~seed:42 ~jobs ()))
  in
  let reference = matrix ~pipeline:false ~jobs:4 in
  Alcotest.(check int) "36 cells" 36 (List.length reference);
  Alcotest.(check (list cell_testable))
    "pipelined jobs:4 = sequential jobs:4" reference
    (matrix ~pipeline:true ~jobs:4);
  Alcotest.(check (list cell_testable))
    "pipelined jobs:1 = sequential jobs:4" reference
    (matrix ~pipeline:true ~jobs:1)

let test_adaptive_matrix_pipelined_identical () =
  (* The adaptive analogue of the pipelined-identity contract: with
     run-to-confidence stopping engaged, the full matrix — including
     each cell's executed trial count and achieved half-width — must be
     bit-identical across jobs:1 / jobs:4 and sequential / pipelined
     submission. Stop decisions happen only at seed-determined round
     boundaries on batch-order merges, so adaptivity adds no
     nondeterminism. *)
  let adaptive = { Validation.confidence = 0.95; ci_width = 0.05 } in
  let matrix ~pipeline ~jobs =
    Validation.cells ~pipeline ~adaptive
      (Run.quick (Run.make ~seed:42 ~jobs ()))
  in
  let reference = matrix ~pipeline:false ~jobs:4 in
  Alcotest.(check int) "36 cells" 36 (List.length reference);
  (* Early stopping genuinely engaged: the matrix ran fewer trials than
     its caps (the 0.05 target is loose enough for the easy cells). *)
  Alcotest.(check bool) "some trials saved" true
    (Validation.total_trials reference < Validation.total_caps reference);
  Alcotest.(check (list cell_testable))
    "adaptive pipelined jobs:4 = sequential jobs:4" reference
    (matrix ~pipeline:true ~jobs:4);
  Alcotest.(check (list cell_testable))
    "adaptive pipelined jobs:1 = sequential jobs:4" reference
    (matrix ~pipeline:true ~jobs:1)

let test_learning_curve_jobs_invariant () =
  let c1 =
    Learning_curves.run_curve ~seed:61 ~seeds:3 ~jobs:1 ~grid:[ 50; 100 ]
      Spec.paper_sa
  in
  let c4 =
    Learning_curves.run_curve ~seed:61 ~seeds:3 ~jobs:4 ~grid:[ 50; 100 ]
      Spec.paper_sa
  in
  Alcotest.(check bool) "identical curves" true (c1 = c4)

let test_timed_reports_jobs () =
  let x, t = Scheduler.timed ~jobs:2 (fun () -> 40 + 2) in
  Alcotest.(check int) "value" 42 x;
  Alcotest.(check int) "resolved jobs" 2 t.Scheduler.jobs;
  Alcotest.(check bool) "non-negative wall" true (t.Scheduler.wall_s >= 0.);
  (* Under the default null context the section gets no span. *)
  Alcotest.(check int) "null context: span id 0" 0 t.Scheduler.span_id;
  (* With an active context, timed brackets the section in a span and
     reports its id — the cross-reference key BENCH_cache.json embeds. *)
  let open Cachesec_telemetry in
  let sink, events = Sink.memory () in
  let tm = Telemetry.make ~sink () in
  let _, t' = Scheduler.timed ~tm ~name:"bench-section" (fun () -> ()) in
  Telemetry.close tm;
  Alcotest.(check bool) "active context: span id > 0" true
    (t'.Scheduler.span_id > 0);
  let names =
    List.filter_map
      (function
        | Event.Span_start { id; name; _ } when id = t'.Scheduler.span_id ->
          Some name
        | _ -> None)
      (events ())
  in
  Alcotest.(check (list string)) "span carries the section name"
    [ "bench-section" ] names

(* --- old optional-tail wrappers vs Run.ctx primaries ------------------ *)

let test_seed_for_batch_contract () =
  (* Batch 0 must reuse the root seed verbatim; later batches come from
     the pure hash. Driver.shard_seed is the deprecated alias and has to
     stay bit-for-bit the same function. *)
  List.iter
    (fun seed ->
      Alcotest.(check int) "batch 0 is the root seed" seed
        (Run.seed_for_batch ~seed 0);
      List.iter
        (fun i ->
          Alcotest.(check int) "later batches use derive_seed"
            (Rng.derive_seed seed i)
            (Run.seed_for_batch ~seed i);
          Alcotest.(check int) "Driver.shard_seed is an alias"
            (Run.seed_for_batch ~seed i)
            (Driver.shard_seed ~seed i))
        [ 1; 2; 17; 4096 ])
    [ 0; 7; 42; 0x5EED ];
  let ctx = Run.make ~seed:42 () in
  Alcotest.(check int) "batch_seed reads ctx.seed"
    (Run.seed_for_batch ~seed:42 3) (Run.batch_seed ctx 3)

let test_old_vs_new_api_bit_identical () =
  (* The deprecated wrappers must produce exactly what the ctx primaries
     produce for equal (seed, batch, jobs) — the API migration is not
     allowed to move any result. *)
  let cfg =
    { Cachesec_attacks.Flush_reload.default_config with
      Cachesec_attacks.Flush_reload.trials = 600
    }
  in
  let old_r = Driver.flush_reload ~jobs:4 ~seed:42 spec cfg in
  let new_r =
    Driver.run_flush_reload (Run.make ~jobs:4 ~seed:42 ()) spec cfg
  in
  Alcotest.(check bool) "flush-reload identical" true
    (compare old_r new_r = 0);
  let old_p = Driver.cleaning_game ~jobs:2 ~seed:7 spec ~accesses:16 ~samples:600 in
  let new_p =
    Driver.run_cleaning_game (Run.make ~jobs:2 ~seed:7 ()) spec ~accesses:16
      ~samples:600
  in
  Alcotest.(check (float 0.)) "cleaning game identical" old_p new_p;
  let old_cell =
    Validation.run_cell ~scale:Figures.Quick ~seed:42 ~jobs:2 spec
      Cachesec_analysis.Attack_type.Flush_and_reload
  in
  let new_cell =
    Validation.cell
      (Run.quick (Run.make ~jobs:2 ~seed:42 ()))
      spec Cachesec_analysis.Attack_type.Flush_and_reload
  in
  Alcotest.(check bool) "validation cell identical" true
    (compare old_cell new_cell = 0);
  (* And telemetry must be an observer only: an active context cannot
     move results either. *)
  let open Cachesec_telemetry in
  let sink, _ = Sink.memory () in
  let tm = Telemetry.make ~sink () in
  let observed =
    Driver.run_flush_reload
      (Run.with_telemetry tm (Run.make ~jobs:4 ~seed:42 ()))
      spec cfg
  in
  Telemetry.close tm;
  Alcotest.(check bool) "telemetry does not perturb results" true
    (compare new_r observed = 0)

let () =
  Alcotest.run "runtime"
    [
      ( "trial",
        [
          Alcotest.test_case "seed derivation" `Quick test_trial_seed_derivation;
          Alcotest.test_case "map" `Quick test_trial_map;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submit / await" `Quick test_pool_submit_await;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "await inside worker rejected" `Quick
            test_pool_await_inside_worker_rejected;
          Alcotest.test_case "quiesce / respawn" `Quick
            test_pool_quiesce_respawns;
          Alcotest.test_case "try_submit bound" `Quick
            test_pool_try_submit_bound;
          Alcotest.test_case "poll" `Quick test_pool_poll;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "serial = parallel" `Quick
            test_scheduler_serial_parallel_identical;
          Alcotest.test_case "run_reduce order" `Quick
            test_scheduler_run_reduce_order;
          Alcotest.test_case "map_array / map_list" `Quick
            test_scheduler_map_array;
          Alcotest.test_case "exception propagates" `Quick
            test_scheduler_exception_propagates;
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "timed" `Quick test_timed_reports_jobs;
          Alcotest.test_case "fold_results" `Quick test_scheduler_fold_results;
          Alcotest.test_case "pipelined submits" `Quick
            test_scheduler_pipelined_submits;
        ] );
      ( "driver",
        [
          Alcotest.test_case "flush-reload jobs-invariant" `Quick
            test_driver_flush_reload_invariant;
          Alcotest.test_case "cleaning game jobs-invariant" `Quick
            test_driver_cleaning_game_invariant;
          Alcotest.test_case "timing stats jobs-invariant" `Quick
            test_driver_timing_stats_invariant;
          Alcotest.test_case "validation cells jobs-invariant" `Quick
            test_validation_cells_jobs_invariant;
          Alcotest.test_case "validation matrix pipelined-identical" `Slow
            test_validation_matrix_pipelined_identical;
          Alcotest.test_case "adaptive matrix pipelined-identical" `Slow
            test_adaptive_matrix_pipelined_identical;
          Alcotest.test_case "learning curve jobs-invariant" `Quick
            test_learning_curve_jobs_invariant;
          Alcotest.test_case "pending combinators" `Quick
            test_driver_pending_combinators;
        ] );
      ( "ctx migration",
        [
          Alcotest.test_case "seed_for_batch contract" `Quick
            test_seed_for_batch_contract;
          Alcotest.test_case "old vs new API bit-identical" `Quick
            test_old_vs_new_api_bit_identical;
        ] );
    ]
