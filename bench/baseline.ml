(* Capture the CURRENT harness's throughput as the regression
   baselines. bench/main.exe compares every later run's
   BENCH_cache.json / BENCH_attacks.json against these files and prints
   per-row speedups (plus the attack-throughput gate), so re-run this
   only when you intend to move the goalposts (e.g. after landing a
   perf PR, to re-baseline for the next one):

     dune exec bench/baseline.exe                        # all sections
     dune exec bench/baseline.exe -- --section cache
     dune exec bench/baseline.exe -- --section attacks
     dune exec bench/baseline.exe -- --section e2e
     dune exec bench/baseline.exe -- --section attacks \
       --attacks-out bench/BENCH_attacks.baseline.json

   The e2e section records the sequential-vs-pipelined campaign
   wall-clocks (quick scale) of the host it runs on — including its
   core count, so a later reader can judge what the numbers could
   demonstrate.

   A bare positional PATH is kept as an alias for --cache-out PATH
   (the pre-attack-bench CLI). *)

let usage () =
  prerr_endline
    "usage: baseline.exe [--section cache|attacks|e2e|all] [--cache-out PATH] \
     [--attacks-out PATH] [--e2e-out PATH] [PATH]";
  exit 2

type section = Cache | Attacks | E2e | All

let () =
  let section = ref All in
  let cache_out = ref "bench/BENCH_cache.baseline.json" in
  let attacks_out = ref "bench/BENCH_attacks.baseline.json" in
  let e2e_out = ref "bench/BENCH_e2e.baseline.json" in
  let rec parse = function
    | [] -> ()
    | "--section" :: v :: rest ->
      (section :=
         match v with
         | "cache" -> Cache
         | "attacks" -> Attacks
         | "e2e" -> E2e
         | "all" -> All
         | _ -> usage ());
      parse rest
    | "--cache-out" :: path :: rest ->
      cache_out := path;
      parse rest
    | "--attacks-out" :: path :: rest ->
      attacks_out := path;
      parse rest
    | "--e2e-out" :: path :: rest ->
      e2e_out := path;
      parse rest
    | [ path ] when String.length path > 0 && path.[0] <> '-' ->
      cache_out := path
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ctx = Cachesec_runtime.Run.default in
  if !section = Cache || !section = All then begin
    let entries = Cachesec_experiments.Throughput.bench ctx in
    Cachesec_experiments.Throughput.write ~path:!cache_out entries;
    print_string (Cachesec_experiments.Throughput.render entries);
    Printf.printf "cache baseline written to %s\n%!" !cache_out
  end;
  if !section = Attacks || !section = All then begin
    let entries = Cachesec_experiments.Throughput.Attacks.bench ctx in
    Cachesec_experiments.Throughput.Attacks.write ~path:!attacks_out entries;
    print_string (Cachesec_experiments.Throughput.Attacks.render entries);
    Printf.printf "attack baseline written to %s\n%!" !attacks_out
  end;
  if !section = E2e || !section = All then begin
    (* jobs:0 = one worker per core, so the baseline records what this
       host can actually demonstrate (its core count rides along in the
       [cores] field). *)
    let ctx = Cachesec_runtime.Run.with_jobs 0 ctx in
    let entries = Cachesec_experiments.Throughput.E2e.bench ctx in
    Cachesec_experiments.Throughput.E2e.write ~path:!e2e_out entries;
    print_string (Cachesec_experiments.Throughput.E2e.render entries);
    Printf.printf "e2e baseline written to %s\n%!" !e2e_out
  end
