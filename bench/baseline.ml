(* Capture the CURRENT harness's throughput as the regression
   baselines. bench/main.exe compares every later run's
   BENCH_cache.json / BENCH_attacks.json against these files and prints
   per-row speedups (plus the attack-throughput gate), so re-run this
   only when you intend to move the goalposts (e.g. after landing a
   perf PR, to re-baseline for the next one):

     dune exec bench/baseline.exe                        # all sections
     dune exec bench/baseline.exe -- --section cache
     dune exec bench/baseline.exe -- --section attacks \
       --attacks-out bench/BENCH_attacks.baseline.json
     make baseline            # all sections
     make baseline-cache      # any single section

   NOTE: bench/BENCH_cache.seed.json and bench/BENCH_attacks.seed.json
   are NOT re-recorded here — they are the frozen goalposts behind
   bench/main.exe's hard gates (the pre-slab seed engine's numbers for
   "gate bench_cache"; the pre-batching harness's v1 numbers for
   "gate bench_attacks"), and move only with an intentional goalpost
   change committed by hand.

   The e2e section records the sequential-vs-pipelined campaign
   wall-clocks (quick scale) of the host it runs on — including its
   core count, so a later reader can judge what the numbers could
   demonstrate.

   A bare positional PATH is kept as an alias for --cache-out PATH
   (the pre-attack-bench CLI). *)

open Cachesec_experiments

let run_cache ctx ~out =
  let entries = Throughput.bench ctx in
  Throughput.write ~path:out entries;
  print_string (Throughput.render entries);
  Printf.printf "cache baseline written to %s\n%!" out

let run_attacks ctx ~out =
  let entries = Throughput.Attacks.bench ctx in
  Throughput.Attacks.write ~path:out entries;
  print_string (Throughput.Attacks.render entries);
  Printf.printf "attack baseline written to %s\n%!" out

let run_e2e ctx ~out =
  (* jobs:0 = one worker per core, so the baseline records what this
     host can actually demonstrate (its core count rides along in the
     [cores] field). *)
  let ctx = Cachesec_runtime.Run.with_jobs 0 ctx in
  let entries = Throughput.E2e.bench ctx in
  Throughput.E2e.write ~path:out entries;
  print_string (Throughput.E2e.render entries);
  Printf.printf "e2e baseline written to %s\n%!" out

(* THE sections table: name, default output file, --NAME-out flag,
   runner. Everything else — --section parsing, the usage string,
   --list-sections, the out-flag parser, the Makefile's baseline-%
   targets (which just forward $* as --section NAME) — derives from
   this list, so adding a section here is the whole change. *)
let run_serve ctx ~out =
  let entries = Cachesec_serve.Serve_bench.bench ctx in
  Cachesec_serve.Serve_bench.write ~path:out entries;
  print_string (Cachesec_serve.Serve_bench.render entries);
  Printf.printf "serve baseline written to %s\n%!" out

let sections =
  [
    ("cache", "bench/BENCH_cache.baseline.json", "--cache-out", run_cache);
    ("attacks", "bench/BENCH_attacks.baseline.json", "--attacks-out", run_attacks);
    ("e2e", "bench/BENCH_e2e.baseline.json", "--e2e-out", run_e2e);
    ("serve", "bench/BENCH_serve.baseline.json", "--serve-out", run_serve);
  ]

let section_names = List.map (fun (n, _, _, _) -> n) sections

let usage () =
  Printf.eprintf
    "usage: baseline.exe [--section %s|all] %s [--list-sections] [PATH]\n"
    (String.concat "|" section_names)
    (String.concat " "
       (List.map (fun (_, _, flag, _) -> Printf.sprintf "[%s PATH]" flag)
          sections));
  exit 2

let () =
  (* Serve-bench server children re-exec this executable; intercept the
     sentinel argv before our own flag parsing sees it. *)
  Cachesec_serve.Serve_bench.child_entry ();
  let selected = ref None (* None = all *) in
  let outs =
    List.map (fun (name, default, flag, _) -> (flag, (name, ref default))) sections
  in
  let rec parse = function
    | [] -> ()
    | "--list-sections" :: _ ->
      List.iter print_endline section_names;
      exit 0
    | "--section" :: v :: rest ->
      (match v with
      | "all" -> selected := None
      | v when List.mem v section_names -> selected := Some v
      | v ->
        Printf.eprintf "baseline.exe: unknown section %S (expected %s or all)\n"
          v
          (String.concat ", " section_names);
        usage ());
      parse rest
    | flag :: path :: rest when List.mem_assoc flag outs ->
      snd (List.assoc flag outs) := path;
      parse rest
    | [ path ] when String.length path > 0 && path.[0] <> '-' ->
      snd (List.assoc "--cache-out" outs) := path
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ctx = Cachesec_runtime.Run.default in
  List.iter
    (fun (name, _, flag, run) ->
      let wanted = match !selected with None -> true | Some s -> s = name in
      if wanted then run ctx ~out:!(snd (List.assoc flag outs)))
    sections
