(* Capture the CURRENT harness's throughput as the regression
   baselines. bench/main.exe compares every later run's
   BENCH_cache.json / BENCH_attacks.json against these files and prints
   per-row speedups (plus the attack-throughput gate), so re-run this
   only when you intend to move the goalposts (e.g. after landing a
   perf PR, to re-baseline for the next one):

     dune exec bench/baseline.exe                        # both sections
     dune exec bench/baseline.exe -- --section cache
     dune exec bench/baseline.exe -- --section attacks
     dune exec bench/baseline.exe -- --section attacks \
       --attacks-out bench/BENCH_attacks.baseline.json

   A bare positional PATH is kept as an alias for --cache-out PATH
   (the pre-attack-bench CLI). *)

let usage () =
  prerr_endline
    "usage: baseline.exe [--section cache|attacks|all] [--cache-out PATH] \
     [--attacks-out PATH] [PATH]";
  exit 2

type section = Cache | Attacks | All

let () =
  let section = ref All in
  let cache_out = ref "bench/BENCH_cache.baseline.json" in
  let attacks_out = ref "bench/BENCH_attacks.baseline.json" in
  let rec parse = function
    | [] -> ()
    | "--section" :: v :: rest ->
      (section :=
         match v with
         | "cache" -> Cache
         | "attacks" -> Attacks
         | "all" -> All
         | _ -> usage ());
      parse rest
    | "--cache-out" :: path :: rest ->
      cache_out := path;
      parse rest
    | "--attacks-out" :: path :: rest ->
      attacks_out := path;
      parse rest
    | [ path ] when String.length path > 0 && path.[0] <> '-' ->
      cache_out := path
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ctx = Cachesec_runtime.Run.default in
  if !section = Cache || !section = All then begin
    let entries = Cachesec_experiments.Throughput.bench ctx in
    Cachesec_experiments.Throughput.write ~path:!cache_out entries;
    print_string (Cachesec_experiments.Throughput.render entries);
    Printf.printf "cache baseline written to %s\n%!" !cache_out
  end;
  if !section = Attacks || !section = All then begin
    let entries = Cachesec_experiments.Throughput.Attacks.bench ctx in
    Cachesec_experiments.Throughput.Attacks.write ~path:!attacks_out entries;
    print_string (Cachesec_experiments.Throughput.Attacks.render entries);
    Printf.printf "attack baseline written to %s\n%!" !attacks_out
  end
