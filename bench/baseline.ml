(* Capture the CURRENT engines' simulator throughput as the regression
   baseline. bench/main.exe compares every later run's BENCH_cache.json
   against this file and prints per-row speedups, so re-run this only
   when you intend to move the goalposts (e.g. after landing a perf PR,
   to re-baseline for the next one):

     dune exec bench/baseline.exe -- bench/BENCH_cache.baseline.json *)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "BENCH_cache.baseline.json"
  in
  let entries =
    Cachesec_experiments.Throughput.bench Cachesec_runtime.Run.default
  in
  Cachesec_experiments.Throughput.write ~path entries;
  print_string (Cachesec_experiments.Throughput.render entries);
  Printf.printf "baseline written to %s\n" path
