(* Benchmark & reproduction harness.

   Default run regenerates every table and figure of the paper's
   evaluation (Tables 3, 5, 6, 7; Figures 4, 8, 9, 10), the pre-PAS
   Monte-Carlo cross-check, the validation matrix and the ablation
   sweeps, exports the data as CSV under results/, and finishes with
   Bechamel micro-benchmarks (one Test per table/figure plus simulator
   throughput).

   Flags: --quick (reduced trial counts), --no-perf (skip Bechamel),
   --no-sim (analytical sections only), --jobs N (shard the Monte-Carlo
   sections over N domains; 0 = one per core; results are identical for
   any N), --progress (human-readable telemetry on stderr), --metrics
   PATH (telemetry/v1 JSON written at exit). The context flags are the
   same Cmdliner term pas_tool uses ({!Cachesec_runtime.Run.of_cmdline}). *)

open Cachesec_experiments
open Cachesec_runtime
open Cachesec_telemetry

(* Each section body is a thunk so the harness can report the
   wall-clock spent inside it (the interesting number when comparing
   --jobs settings: the rendered output itself never changes). With an
   active telemetry context, [Scheduler.timed] additionally brackets the
   section in a span named after it and reports the span id, so the
   console output can be cross-referenced against TELEMETRY_*.json. *)
let section (ctx : Run.ctx) title body =
  Printf.printf "\n================================================================\n";
  Printf.printf "== %s\n" title;
  Printf.printf "================================================================\n%!";
  let text, t =
    Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry ~name:title
      (fun () -> body ())
  in
  print_string text;
  print_newline ();
  Printf.printf "-- section wall-clock: %.2f s (jobs=%d%s)\n%!"
    t.Scheduler.wall_s t.Scheduler.jobs
    (if t.Scheduler.span_id = 0 then ""
     else Printf.sprintf ", telemetry span %d" t.Scheduler.span_id)

(* mkdir -p for every export target, once, before any writer runs. *)
let ensure_results_dirs () =
  let mkdir_p path =
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  in
  mkdir_p "results";
  mkdir_p "results/dot"

let export_csvs cells =
  let open Cachesec_report in
  ensure_results_dirs ();
  Csv.write ~path:"results/table6_pas.csv"
    ~header:[ "arch"; "attack"; "pas_computed"; "pas_paper" ]
    ~rows:(Tables.table6_csv_rows ());
  let ks = List.init 25 (fun i -> i * 5) in
  let fig8 = Figures.figure8_series ~ks in
  Csv.write ~path:"results/figure8_prepas.csv"
    ~header:[ "series"; "k"; "prepas" ]
    ~rows:
      (List.concat_map
         (fun (name, pts) ->
           List.map
             (fun (k, p) -> [ name; string_of_int k; Printf.sprintf "%.6g" p ])
             pts)
         fig8);
  List.iter
    (fun (name, header, rows) ->
      Csv.write ~path:(Printf.sprintf "results/%s.csv" name) ~header ~rows)
    (Sweeps.csv_rows ());
  (* SVG renderings of the analytical figures. *)
  let sigmas = List.init 31 (fun i -> float_of_int i /. 10.) in
  Svg.write ~path:"results/figure4.svg"
    (Svg.line_chart ~title:"Figure 4: p5 vs sigma" ~x_label:"sigma"
       ~y_label:"p5" ~y_min:0.5 ~y_max:1.0
       [
         {
           Plot.name = "p5 = Phi(1/(2 sigma))";
           points = Cachesec_analysis.Noise.figure4_series ~sigmas;
         };
       ]);
  let ks = List.init 25 (fun i -> i * 5) in
  Svg.write ~path:"results/figure8.svg"
    (Svg.line_chart ~title:"Figure 8: pre-PAS vs attacker accesses"
       ~x_label:"k" ~y_label:"pre-PAS" ~y_min:0. ~y_max:1.
       (List.map
          (fun (name, pts) ->
            {
              Plot.name;
              points = List.map (fun (k, p) -> (float_of_int k, p)) pts;
            })
          (Figures.figure8_series ~ks)));
  let sigmas = List.init 31 (fun i -> float_of_int i /. 10.) in
  Csv.write ~path:"results/figure4_noise.csv" ~header:[ "sigma"; "p5" ]
    ~rows:
      (List.map
         (fun (s, p) -> [ Printf.sprintf "%g" s; Printf.sprintf "%.6g" p ])
         (Cachesec_analysis.Noise.figure4_series ~sigmas));
  (match cells with
  | None -> ()
  | Some cells ->
    Csv.write ~path:"results/validation_matrix.csv"
      ~header:
        [ "arch"; "attack"; "pas"; "predicted_leak"; "recovered"; "separation" ]
      ~rows:
        (List.map
           (fun (c : Validation.cell) ->
             [
               c.arch;
               Cachesec_analysis.Attack_type.name c.attack;
               Printf.sprintf "%.6g" c.pas;
               string_of_bool c.predicted_leak;
               string_of_bool c.recovered;
               Printf.sprintf "%.3f" c.separation;
             ])
           cells));
  (* The 36 attack-model PIFGs as Graphviz DOT artefacts. *)
  List.iter
    (fun attack ->
      List.iter
        (fun spec ->
          let g = Cachesec_analysis.Attack_models.build attack spec () in
          let name =
            Printf.sprintf "%s-%s"
              (Cachesec_cache.Spec.name spec)
              (Cachesec_analysis.Attack_type.name attack)
          in
          let doc = Cachesec_core.Dot.to_string ~name g in
          let path = Printf.sprintf "results/dot/%s.dot" name in
          let oc = open_out path in
          output_string oc doc;
          close_out oc)
        Cachesec_cache.Spec.all_paper)
    Cachesec_analysis.Attack_type.all;
  Printf.printf "CSV, SVG and DOT exports written under results/\n%!"

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let perf_tests () =
  let open Bechamel in
  let open Cachesec_stats in
  let open Cachesec_cache in
  let open Cachesec_attacks in
  let open Cachesec_analysis in
  let table_tests =
    [
      Test.make ~name:"table3-evict-time"
        (Staged.stage (fun () -> ignore (Pas_tables.table3 ())));
      Test.make ~name:"table5-collision"
        (Staged.stage (fun () -> ignore (Pas_tables.table5 ())));
      Test.make ~name:"table6-all-attacks"
        (Staged.stage (fun () -> ignore (Pas_tables.table6 ())));
      Test.make ~name:"table7-resilience"
        (Staged.stage (fun () -> ignore (Resilience.table7 ())));
      Test.make ~name:"figure4-noise-curve"
        (Staged.stage (fun () ->
             ignore
               (Noise.figure4_series
                  ~sigmas:(List.init 31 (fun i -> float_of_int i /. 10.)))));
      Test.make ~name:"figure8-prepas-curves"
        (Staged.stage (fun () ->
             ignore (Figures.figure8_series ~ks:(List.init 25 (fun i -> i * 5)))));
    ]
  in
  (* One representative trial of each validation figure's inner loop. *)
  let sim_tests =
    let s9 = Setup.make Spec.paper_sa in
    let p9 = Bytes.create 16 in
    let fig9_trial () =
      Victim.warm_tables s9.Setup.victim;
      Attacker.evict_set s9.Setup.engine ~pid:s9.Setup.attacker_pid 3;
      Victim.random_plaintext_into s9.Setup.rng p9;
      ignore (Victim.encrypt_misses s9.Setup.victim p9)
    in
    let s10 = Setup.make Spec.paper_sa in
    let plan10 =
      Probe_plan.make s10.Setup.engine ~pid:s10.Setup.attacker_pid
    in
    let p10 = Bytes.create 16 in
    let fig10_trial () =
      Probe_plan.prime_all plan10;
      Victim.random_plaintext_into s10.Setup.rng p10;
      Victim.encrypt_quiet_fast s10.Setup.victim p10;
      Probe_plan.probe_all plan10 s10.Setup.rng
    in
    [
      Test.make ~name:"figure9-evict-time-trial" (Staged.stage fig9_trial);
      Test.make ~name:"figure10-prime-probe-trial" (Staged.stage fig10_trial);
    ]
  in
  let arch_tests =
    List.map
      (fun spec ->
        let s = Setup.make spec in
        let rng = Rng.create ~seed:99 in
        let counter = ref 0 in
        Test.make
          ~name:(Printf.sprintf "access-%s" (Spec.name spec))
          (Staged.stage (fun () ->
               incr counter;
               ignore
                 (s.Setup.engine.Engine.access ~pid:(!counter land 1)
                    (Rng.int rng 4096)))))
      Spec.all_paper
  in
  let crypto_tests =
    let key = Cachesec_crypto.Aes.key_of_hex Setup.default_key_hex in
    let block = Bytes.make 16 '\042' in
    [
      Test.make ~name:"aes-encrypt-block"
        (Staged.stage (fun () -> ignore (Cachesec_crypto.Aes.encrypt key block)));
      Test.make ~name:"aes-encrypt-traced"
        (Staged.stage (fun () ->
             ignore (Cachesec_crypto.Aes.encrypt_traced key block)));
    ]
  in
  Test.make_grouped ~name:"cachesec"
    (table_tests @ sim_tests @ arch_tests @ crypto_tests)

let run_perf ~quick () =
  let open Bechamel in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000
        ~quota:(Time.second (if quick then 0.2 else 0.5))
        ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances (perf_tests ()) in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  let clock = Toolkit.Instance.monotonic_clock in
  let tbl = Hashtbl.find results (Measure.label clock) in
  let entries =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      tbl []
    |> List.sort compare
  in
  Printf.printf "%-45s %15s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, est) -> Printf.printf "%-45s %15.1f\n" name est)
    entries

(* Historical section seeds, frozen so the harness output stays directly
   comparable across checkouts (they predate the shared --seed flag and
   are deliberately not overridden by it). *)
let crosscheck_seed = 7
let learning_curves_seed = 61

let main perf sim (ctx : Run.ctx) =
  let quick = ctx.Run.quick in
  let scale = if quick then Figures.Quick else Figures.Full in
  let section title body = section ctx title body in
  Printf.printf
    "cachesec reproduction harness - He & Lee, 'How secure is your cache \
     against side-channel attacks?', MICRO-50 (2017)\n";
  section "Table 3 (Type 1 edge probabilities and PAS)" (fun () ->
      Tables.table3 ());
  section "Table 5 (Type 3 edge probabilities and PAS)" (fun () ->
      Tables.table5 ());
  section "Table 6 (PAS of 4 attack types x 9 caches)" (fun () ->
      Tables.table6 ());
  section "Table 7 (resilience classification)" (fun () -> Tables.table7 ());
  (* Tentpole artefact of the policy-registry work: the full policy x
     attack x architecture resilience table (PAS x the k->infinity
     cleaning limit of each replacement policy, with the absorbed-
     information bits ceiling), written under results/ for the CI
     artifact upload alongside its machine-readable CSV. Analytical --
     closed forms only -- so it runs even under --no-sim. *)
  section "Policy resilience (policy x attack x architecture)" (fun () ->
      let text = Tables.policy_resilience () in
      ensure_results_dirs ();
      let oc = open_out "results/POLICY_resilience.txt" in
      output_string oc text;
      close_out oc;
      Cachesec_report.Csv.write ~path:"results/policy_resilience.csv"
        ~header:
          [ "arch"; "policy"; "attack"; "pas"; "limit"; "effective"; "bits";
            "verdict" ]
        ~rows:(Tables.policy_resilience_csv_rows ());
      text
      ^ "  wrote results/POLICY_resilience.txt and results/policy_resilience.csv\n");
  section "Figure 4 (noise edge probability p5)" (fun () -> Figures.figure4 ());
  section "Figure 8 (pre-PAS, closed forms)" (fun () -> Figures.figure8 ());
  section "Table 6 at an alternative geometry (16 KB, 4-way)" (fun () ->
      Tables.table6_alt_geometry ());
  section "Design-space sweeps (analytical)" (fun () -> Sweeps.render ());
  let cells = ref None in
  if sim then begin
    section "Figure 9 (evict-and-time validation)" (fun () ->
        Figures.render_figure9 ctx);
    section "Figure 10 (prime-and-probe validation)" (fun () ->
        Figures.render_figure10 ctx);
    section "Pre-PAS cross-check (Section 5)" (fun () ->
        Figures.render_prepas_crosscheck (Run.with_seed crosscheck_seed ctx));
    section "Validation matrix (9 caches x 4 attacks)" (fun () ->
        let matrix = Validation.cells ctx in
        cells := Some matrix;
        Validation.render matrix);
    section "Ablations" (fun () -> Ablations.render ctx);
    section "Extension: skewed randomized cache" (fun () ->
        Extension.skewed_report ~scale ());
    section "Extension: multi-line evictions" (fun () ->
        Extension.multi_line_report ());
    section "Extension: PAS vs mutual information" (fun () ->
        Metrics.render (Metrics.table ~trials:(Figures.trials_for scale 2000) ()));
    section "Extension: PAS vs SVF" (fun () ->
        Svf.render (Svf.table ~intervals:(Figures.trials_for scale 80) ()));
    section "Extension: covert channels" (fun () ->
        Covert.render (Covert.table ~bits:(Figures.trials_for scale 2000) ()));
    section "Extension: sample complexity (trials to recovery)" (fun () ->
        let curves =
          Learning_curves.curves
            ~seeds:(if quick then 3 else 8)
            (Run.with_seed learning_curves_seed ctx)
        in
        Cachesec_report.Csv.write ~path:"results/learning_curves.csv"
          ~header:[ "arch"; "pas_type4"; "trials"; "recovery_rate" ]
          ~rows:(Learning_curves.csv_rows curves);
        Learning_curves.render curves);
    section "Performance: victim hit rates" (fun () ->
        Performance.hit_rate_table ~accesses:(Figures.trials_for scale 60000) ());
    section "Performance: IRM models vs simulator" (fun () ->
        Performance.model_table ~accesses:(Figures.trials_for scale 120000) ());
    section "Edge-level validation (micro-measured conditionals)" (fun () ->
        Edge_measure.render
          (Edge_measure.table ~samples:(if quick then 4000 else 20000) ()));
    section "Software mitigations (prefetch / prefetch-and-lock)" (fun () ->
        Mitigation.report ~scale ());
    section "Extension: LLC attack through a two-level hierarchy" (fun () ->
        Llc.report ~scale ());
    section "Extension: exponent leak (square-and-multiply victim)" (fun () ->
      let render spec =
         let rng = Cachesec_stats.Rng.create ~seed:8 in
         let scenario =
           { Cachesec_cache.Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }
         in
         let engine =
           Cachesec_cache.Factory.build spec scenario
             ~rng:(Cachesec_stats.Rng.split rng)
         in
         let r =
           Cachesec_attacks.Exp_leak.run ~engine ~victim_pid:0 ~attacker_pid:1
             ~rng:(Cachesec_stats.Rng.split rng) ~exponent:0xcaf1 ()
         in
         Printf.sprintf "  %-12s %s (%d/%d slots)\n"
           (Cachesec_cache.Spec.display_name spec)
           (if r.Cachesec_attacks.Exp_leak.exponent_recovered then
              "exponent RECOVERED"
            else "protected")
           r.Cachesec_attacks.Exp_leak.slots_read
           r.Cachesec_attacks.Exp_leak.total_slots
       in
       String.concat ""
         (List.map render
            Cachesec_cache.Spec.
              [ paper_sa; paper_sp; paper_newcache; paper_rp; paper_rf; paper_noisy ]));
    section "Full-key recovery (flush-and-reload, all 16 bytes)" (fun () ->
       let s = Setup.make Cachesec_cache.Spec.paper_sa in
       let sa =
         Cachesec_attacks.Full_key.flush_reload ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
           ~trials_per_byte:(Figures.trials_for scale 1000)
       in
       let s2 = Setup.make Cachesec_cache.Spec.paper_newcache in
       let nc =
         Cachesec_attacks.Full_key.flush_reload ~victim:s2.Setup.victim
           ~attacker_pid:s2.Setup.attacker_pid ~rng:s2.Setup.rng
           ~trials_per_byte:(Figures.trials_for scale 500)
       in
       Printf.sprintf "SA Cache:  %s\nNewcache:  %s\n"
         (Cachesec_attacks.Full_key.render sa)
         (Cachesec_attacks.Full_key.render nc));
    section "Complete 128-bit key (last-round attack + schedule inversion)"
      (fun () ->
       let run spec trials =
         let s = Setup.make spec in
         let r =
           Cachesec_attacks.Last_round.run ~victim:s.Setup.victim
             ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
             { Cachesec_attacks.Last_round.trials = Figures.trials_for scale trials }
         in
         Printf.sprintf
           "  %-12s round-10 bytes %2d/16, master key guess %s -> %s\n"
           (Cachesec_cache.Spec.display_name spec)
           r.Cachesec_attacks.Last_round.bytes_correct
           r.Cachesec_attacks.Last_round.master_key_guess
           (if r.Cachesec_attacks.Last_round.key_recovered then
              "FULL KEY RECOVERED"
            else "wrong")
       in
       run Cachesec_cache.Spec.paper_sa 3000
       ^ run Cachesec_cache.Spec.paper_newcache 1000)
  end;
  (* Always runs (even under --no-sim / --no-perf): this is the perf
     regression gate. Writes results/BENCH_cache.json in a frozen format
     directly comparable across checkouts; the committed
     bench/BENCH_cache.baseline.json holds the pre-optimization numbers.
     The benchmark proper is timed through Scheduler.timed so its
     telemetry span id can be embedded in the JSON, cross-referencing
     BENCH_cache.json against TELEMETRY_*.json of the same run. *)
  section "Simulator throughput (accesses/sec per architecture x policy)"
    (fun () ->
      let entries, t =
        Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry
          ~name:"throughput-bench"
          (fun () -> Throughput.bench ctx)
      in
      ensure_results_dirs ();
      Throughput.write ~span_id:t.Scheduler.span_id
        ~path:"results/BENCH_cache.json" entries;
      (* Hard engine gate: sa/lru accesses/sec against the FROZEN seed
         numbers (bench/BENCH_cache.seed.json — the pre-slab, pre-kernel
         engine, never re-recorded), unlike the re-recordable
         BENCH_cache.baseline.json behind the vs-base column. sa/lru is
         the gated row because it is the paper's conventional-cache
         reference point and the hottest monomorphized kernel. *)
      let gate_line =
        let seed = Throughput.read ~path:"bench/BENCH_cache.seed.json" in
        match
          ( Throughput.find entries ~arch:"sa" ~policy:"lru",
            Throughput.find seed ~arch:"sa" ~policy:"lru" )
        with
        | Some e, Some b when b.Throughput.per_sec > 0. ->
          let x = e.Throughput.per_sec /. b.Throughput.per_sec in
          Printf.sprintf "  gate bench_cache  sa/lru speedup %5.2fx %s\n" x
            (if x >= 2.5 then ">= 2.50x PASS" else "<  2.50x FAIL")
        | _ -> "  gate bench_cache  no seed baseline row for sa/lru\n"
      in
      Throughput.render ~baseline:"bench/BENCH_cache.baseline.json" entries
      ^ gate_line
      ^ Printf.sprintf "  wrote results/BENCH_cache.json%s\n"
          (if t.Scheduler.span_id = 0 then ""
           else
             Printf.sprintf " (telemetry_span %d)" t.Scheduler.span_id));
  (* Companion perf gate for the attack fast path: whole attack trials
     per second through each attack's run_span, each case measured on
     both replay paths (auto-selected batched kernels vs Kernel.Scalar,
     the pre-batching cost model). Two baseline files, mirroring the
     engine bench above: the hard gate compares current batched rows
     against bench/BENCH_attacks.seed.json — the FROZEN pre-batching
     harness numbers (v1, scalar by construction), never re-recorded —
     while the re-recordable bench/BENCH_attacks.baseline.json (v2,
     both paths) feeds the vs-base trajectory column. Prime-probe and
     evict-time are hard PASS/FAIL gates (their trial cost is dominated
     by batched probe/evict runs); flush-reload and collision amortize
     batching against whole-region flushes and AES tracing, so they
     report speedup without failing the build. *)
  section "Attack throughput (trials/sec per attack class x arch x path)"
    (fun () ->
      let entries, t =
        Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry
          ~name:"attack-throughput-bench"
          (fun () -> Throughput.Attacks.bench ctx)
      in
      ensure_results_dirs ();
      Throughput.Attacks.write ~span_id:t.Scheduler.span_id
        ~path:"results/BENCH_attacks.json" entries;
      let gate_lines =
        Throughput.Attacks.gate ~baseline:"bench/BENCH_attacks.seed.json"
          entries
        |> List.map (fun (attack, speedup, pass) ->
               match speedup with
               | None ->
                 Printf.sprintf "  gate bench_attacks %-12s no baseline rows\n"
                   attack
               | Some x
                 when List.mem attack Throughput.Attacks.hard_classes ->
                 Printf.sprintf
                   "  gate bench_attacks %-12s min speedup %5.2fx %s\n" attack
                   x
                   (if pass then ">= 1.30x PASS" else "<  1.30x FAIL")
               | Some x ->
                 Printf.sprintf
                   "  gate bench_attacks %-12s min speedup %5.2fx (reported)\n"
                   attack x)
        |> String.concat ""
      in
      Throughput.Attacks.render ~baseline:"bench/BENCH_attacks.baseline.json"
        entries
      ^ gate_lines
      ^ Printf.sprintf "  wrote results/BENCH_attacks.json%s\n"
          (if t.Scheduler.span_id = 0 then ""
           else Printf.sprintf " (telemetry_span %d)" t.Scheduler.span_id));
  (* Third perf gate: end-to-end campaign pipelining. Runs the
     quick-scale validation matrix and the experimental figures twice —
     sequential campaign execution vs all campaigns' shards submitted
     onto the persistent Domain pool before the first await — and gates
     on the within-run sequential/pipelined wall-clock ratio. The ratio
     is a controlled experiment on this host; it is a hard PASS/FAIL
     only where parallelism is demonstrable (>= 4 cores and >= 4 jobs),
     and reported otherwise. The committed bench/BENCH_e2e.baseline.json
     (pre-refactor sequential numbers) feeds the vs-base trajectory
     column. *)
  let e2e_entries = ref [] in
  let e2e_span = ref 0 in
  section "End-to-end throughput (sequential vs pipelined campaigns)"
    (fun () ->
      let entries, t =
        Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry
          ~name:"e2e-bench"
          (fun () -> Throughput.E2e.bench ctx)
      in
      e2e_entries := entries;
      e2e_span := t.Scheduler.span_id;
      ensure_results_dirs ();
      Throughput.E2e.write ~span_id:t.Scheduler.span_id
        ~path:"results/BENCH_e2e.json" entries;
      let gate_line =
        match Throughput.E2e.gate ~threshold:1.3 entries with
        | None, _ -> "  gate e2e          missing arm, no ratio\n"
        | Some x, Throughput.E2e.Pass ->
          Printf.sprintf "  gate e2e          pipelining speedup %5.2fx >= 1.30x PASS\n" x
        | Some x, Throughput.E2e.Fail ->
          Printf.sprintf "  gate e2e          pipelining speedup %5.2fx <  1.30x FAIL\n" x
        | Some x, Throughput.E2e.Reported ->
          Printf.sprintf
            "  gate e2e          pipelining speedup %5.2fx (reported: needs \
             >= 4 cores and >= 4 jobs for a hard gate)\n"
            x
      in
      Throughput.E2e.render ~baseline:"bench/BENCH_e2e.baseline.json" entries
      ^ gate_line
      ^ Printf.sprintf "  wrote results/BENCH_e2e.json%s\n"
          (if t.Scheduler.span_id = 0 then ""
           else Printf.sprintf " (telemetry_span %d)" t.Scheduler.span_id));
  (* Adaptive-stopping gate: the quick matrix run twice through the
     same adaptive machinery — a run-to-cap arm that measures the CI
     widths the fixed budgets achieve, then a run-to-confidence arm
     targeted at the fixed arm's worst width. The trials ratio between
     the arms is seed-deterministic and jobs-invariant, so it is a hard
     PASS/FAIL on every host; wall-clock is reported and tracked
     against the committed baseline's adaptive rows. Both row kinds are
     re-written into results/BENCH_e2e.json (schema bench_e2e/v2). *)
  section "Adaptive stopping (fixed-count vs run-to-confidence matrix)"
    (fun () ->
      let entries, t =
        Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry
          ~name:"adaptive-bench"
          (fun () -> Throughput.Adaptive.bench ctx)
      in
      ensure_results_dirs ();
      Throughput.E2e.write ~span_id:!e2e_span ~adaptive:entries
        ~path:"results/BENCH_e2e.json" !e2e_entries;
      let gate_line =
        match Throughput.Adaptive.gate ~threshold:2.0 entries with
        | None, _ -> "  gate adaptive     missing arm, no ratio\n"
        | Some x, pass ->
          Printf.sprintf
            "  gate adaptive     trials saved at matched width %5.2fx %s\n" x
            (if pass then ">= 2.00x PASS" else "<  2.00x FAIL")
      in
      Throughput.Adaptive.render ~baseline:"bench/BENCH_e2e.baseline.json"
        entries
      ^ gate_line
      ^ Printf.sprintf "  wrote results/BENCH_e2e.json (with adaptive rows)%s\n"
          (if t.Scheduler.span_id = 0 then ""
           else Printf.sprintf " (telemetry_span %d)" t.Scheduler.span_id));
  (* Fourth perf gate: the PAS query server. A forked Inline server is
     driven over its real socket in three mixes — memo-hit (batched
     repeats of the heaviest closed form against a warm memo), cold
     (the same query recomputed every round trip) and sim (quick-scale
     validate cells). The hard gate is memo-hit QPS >= 50x cold QPS:
     what memoization + batching buy over honest recomputation,
     measured end to end through framing, syscalls and routing. *)
  section "PAS query server throughput (memo-hit / cold / sim mixes)"
    (fun () ->
      let entries, t =
        Scheduler.timed ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry
          ~name:"serve-bench"
          (fun () -> Cachesec_serve.Serve_bench.bench ctx)
      in
      ensure_results_dirs ();
      Cachesec_serve.Serve_bench.write ~span_id:t.Scheduler.span_id
        ~path:"results/BENCH_serve.json" entries;
      let gate_line =
        match Cachesec_serve.Serve_bench.gate entries with
        | None -> "  gate bench_serve  missing mix, no ratio\n"
        | Some (x, pass) ->
          Printf.sprintf
            "  gate bench_serve  memo-hit/cold qps ratio %7.1fx %s\n" x
            (if pass then ">= 50.0x PASS" else "<  50.0x FAIL")
      in
      Cachesec_serve.Serve_bench.render
        ~baseline:"bench/BENCH_serve.baseline.json" entries
      ^ gate_line
      ^ Printf.sprintf "  wrote results/BENCH_serve.json%s\n"
          (if t.Scheduler.span_id = 0 then ""
           else Printf.sprintf " (telemetry_span %d)" t.Scheduler.span_id));
  section "CSV export" (fun () ->
      export_csvs !cells;
      "");
  if perf then begin
    section "Bechamel micro-benchmarks" (fun () ->
        run_perf ~quick ();
        "")
  end;
  (* Flush any telemetry sinks before process exit (also registered via
     at_exit by Run.of_cmdline; close is idempotent). *)
  Telemetry.close ctx.Run.telemetry

let cmd =
  let open Cmdliner in
  let no_perf =
    Arg.(
      value & flag
      & info [ "no-perf" ] ~doc:"Skip the Bechamel micro-benchmarks.")
  in
  let no_sim =
    Arg.(
      value & flag
      & info [ "no-sim" ] ~doc:"Analytical sections only (skip simulation).")
  in
  let run no_perf no_sim ctx = main (not no_perf) (not no_sim) ctx in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "cachesec reproduction harness: regenerate every table and figure, \
          export CSVs and run the perf regression gate.")
    Term.(const run $ no_perf $ no_sim $ Run.of_cmdline ~run:"bench" ())

let () =
  (* Serve-bench server children re-exec this executable; intercept the
     sentinel argv before Cmdliner parses it. *)
  Cachesec_serve.Serve_bench.child_entry ();
  exit (Cmdliner.Cmd.eval cmd)
