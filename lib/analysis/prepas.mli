(** Closed-form pre-PAS: the probability that an attacker cleans the
    victim's cache set within k memory accesses (paper Section 5,
    Figure 8).

    Under LRU the attacker succeeds deterministically once k reaches the
    associativity; under random replacement cleaning is the ball-picking
    game whose success probability is the inclusion-exclusion
    coupon-collector sum.

    {b Exact vs curve-fit.} Every formula in this module is an exact
    closed form for the corresponding engine under the cleaning game —
    none is a curve fit. [sa_lru], [sa_fifo] and [sa_plru] are the
    paper's Equation (10) step; [sa_random] is the Equation (11)
    coupon-collector sum; [sa_mru], [sa_lfu] and [sa_mfu] follow from
    the self-thrashing argument below and are cross-checked against
    Monte-Carlo simulation in the test suite. Each policy owns its own
    arm in {!sa} — no two policies share a pattern — so adding a policy
    forces an explicit (compiler-checked) decision about its formula. *)

open Cachesec_cache

val sa_lru : ways:int -> k:int -> float
(** Equation (10): the step function 1{k >= ways}. Exact. *)

val sa_fifo : ways:int -> k:int -> float
(** FIFO cleans like LRU — the attacker's k distinct misses are always
    the set's k oldest fills, so queue order and recency order agree —
    but the formula is its own definition, not an alias. Exact. *)

val sa_random : ways:int -> k:int -> float
(** Equation (11): P(all [ways] slots picked in [k] uniform draws).
    Exact. *)

val sa_mru : ways:int -> k:int -> float
(** 1{ways = 1 && k >= 1}: under MRU the attacker self-thrashes — each
    miss evicts the attacker's own previous fill (the most recently
    used line) — so at most one victim line is ever cleaned and the
    game succeeds only in a single-way set. Exact. *)

val sa_lfu : ways:int -> k:int -> float
(** 1{ways = 1 && k >= 1}: every line in the cleaning game ties at
    frequency 1 and the first-occurrence tie-break re-selects the same
    way forever, so LFU self-thrashes exactly like {!sa_mru}. Exact. *)

val sa_mfu : ways:int -> k:int -> float
(** 1{ways = 1 && k >= 1}: the all-equal-frequency tie-break makes MFU
    indistinguishable from LFU in the cleaning game. Exact. *)

val sa_plru : ways:int -> k:int -> float
(** 1{k >= ways}: from any tree state, [ways] consecutive misses visit
    [ways] distinct leaves (each fill points the tree away from itself),
    so tree-PLRU cleans on the same step as true LRU. Non-power-of-two
    geometries use the engine's LRU fallback — the same step. Exact. *)

val sa :
  ways:int -> k:int -> policy:Replacement.policy -> float
(** Per-policy dispatch over the seven arms above; exhaustive, so a new
    {!Cachesec_cache.Policy} constructor is a compile error here until
    its formula is written. *)

val cleaning_limit :
  ?victim_lines_in_set:int -> ?prefetched:bool -> Spec.t -> float
(** The k -> infinity limit of {!for_spec}: the probability an
    unbounded attacker ever cleans the victim's lines. Every closed
    form is eventually constant in k (Random's coupon sum converges to
    1), so the limit is exactly 0. or 1. — the "cleanable at all" bit
    used by the policy resilience table. *)

val newcache : logical_lines:int -> k:int -> float
(** Section 5B: 1 - (1 - 1/n)^k for evicting one designated physical
    line, where n is the attacker-visible eviction space. The paper
    writes n = 2^n; with the paper's configuration we take the physical
    line count (512). *)

val sp : k:int -> float
(** 0: partitions make cleaning impossible (Section 5C). *)

val pl_locked : k:int -> float
(** 0 when the security-critical lines were prefetched and locked. *)

val pl_unlocked : ways:int -> k:int -> policy:Replacement.policy -> float
(** Without prefetching, PL behaves as a conventional SA cache. *)

val rp : ways:int -> k:int -> policy:Replacement.policy -> float
(** Section 5D: the attacker disables his own permutation, so RP cleans
    like SA. *)

val rf : ways:int -> k:int -> policy:Replacement.policy -> float
(** Section 5E: the attacker sets his window to zero, degrading to SA. *)

val re : ways:int -> interval:int -> k:int -> policy:Replacement.policy -> float
(** Section 5F: periodic evictions are free lunches — the attacker
    effectively gets k + floor(k / interval) evictions. *)

val nomo :
  ways:int ->
  reserved:int ->
  victim_lines_in_set:int ->
  k:int ->
  policy:Replacement.policy ->
  float
(** Section 5G: 0 when the victim fits in the reserved ways; otherwise
    the SA game over the (1 - alpha) w shared ways. *)

val for_spec :
  ?victim_lines_in_set:int -> ?prefetched:bool -> Spec.t -> k:int -> float
(** Dispatch with the paper's assumptions: PL prefetched+locked by
    default, Nomo victim exceeding its reservation by default
    ([victim_lines_in_set] defaults to [ways], the cleaning game's
    seeding), policies taken from the spec. *)

val figure8_series :
  specs:(string * Spec.t) list -> ks:int list -> (string * (int * float) list) list
(** Named (k, pre-PAS) curves — the series of the paper's Figure 8. *)
