open Cachesec_stats
open Cachesec_cache

let check_kw ~ways ~k =
  if ways <= 0 then invalid_arg "Prepas: ways must be positive";
  if k < 0 then invalid_arg "Prepas: k must be non-negative"

let sa_lru ~ways ~k =
  check_kw ~ways ~k;
  if k >= ways then 1. else 0.

(* Same step as LRU — the attacker's k distinct misses are the set's k
   oldest fills — but deliberately its own arm: a policy must own its
   formula so a new policy can never silently inherit a wrong one. *)
let sa_fifo ~ways ~k =
  check_kw ~ways ~k;
  if k >= ways then 1. else 0.

let sa_random ~ways ~k =
  check_kw ~ways ~k;
  Coupon.prob_all_covered ~bins:ways ~trials:k

(* MRU, LFU and MFU all self-thrash under the cleaning game: the
   attacker's first miss evicts one victim line (the most-recent /
   tie-broken-first one), but the attacker's own fresh fill is then
   itself the most-recently-used line — and under LFU/MFU every line
   ties at frequency 1 with the same first-occurrence tie-break — so
   every subsequent miss evicts the attacker's previous fill. Exactly
   one victim line is ever cleaned; the game succeeds only in the
   degenerate single-way set. *)
let sa_self_thrash ~ways ~k =
  check_kw ~ways ~k;
  if ways = 1 && k >= 1 then 1. else 0.

let sa_mru ~ways ~k = sa_self_thrash ~ways ~k
let sa_lfu ~ways ~k = sa_self_thrash ~ways ~k
let sa_mfu ~ways ~k = sa_self_thrash ~ways ~k

(* Tree-PLRU: from any tree state, [ways] consecutive misses (each fill
   re-pointing the tree away from itself) visit [ways] distinct leaves
   — by induction on the tree height the walk alternates subtrees — so
   the set is cleaned exactly when k reaches the associativity; the
   same step as true LRU. Non-power-of-two geometries run the engine's
   LRU fallback, which is the same step again. *)
let sa_plru ~ways ~k =
  check_kw ~ways ~k;
  if k >= ways then 1. else 0.

let sa ~ways ~k ~policy =
  match policy with
  | Replacement.Lru -> sa_lru ~ways ~k
  | Replacement.Fifo -> sa_fifo ~ways ~k
  | Replacement.Random -> sa_random ~ways ~k
  | Replacement.Mru -> sa_mru ~ways ~k
  | Replacement.Lfu -> sa_lfu ~ways ~k
  | Replacement.Mfu -> sa_mfu ~ways ~k
  | Replacement.Plru -> sa_plru ~ways ~k

let newcache ~logical_lines ~k =
  if logical_lines <= 0 then invalid_arg "Prepas.newcache: lines must be positive";
  if k < 0 then invalid_arg "Prepas.newcache: k must be non-negative";
  1. -. exp (float_of_int k *. log (1. -. (1. /. float_of_int logical_lines)))

let sp ~k:_ = 0.
let pl_locked ~k:_ = 0.
let pl_unlocked ~ways ~k ~policy = sa ~ways ~k ~policy
let rp ~ways ~k ~policy = sa ~ways ~k ~policy
let rf ~ways ~k ~policy = sa ~ways ~k ~policy

let re ~ways ~interval ~k ~policy =
  if interval <= 0 then invalid_arg "Prepas.re: interval must be positive";
  check_kw ~ways ~k;
  let effective = k + (k / interval) in
  sa ~ways ~k:effective ~policy

let nomo ~ways ~reserved ~victim_lines_in_set ~k ~policy =
  check_kw ~ways ~k;
  if reserved < 0 || reserved >= ways then
    invalid_arg "Prepas.nomo: reserved must lie in [0, ways)";
  if victim_lines_in_set <= reserved then 0.
  else sa ~ways:(ways - reserved) ~k ~policy

let for_spec ?victim_lines_in_set ?(prefetched = true) spec ~k =
  match spec with
  | Spec.Sa { ways; policy } | Spec.Noisy { ways; policy; _ } -> sa ~ways ~k ~policy
  | Spec.Sp _ -> sp ~k
  | Spec.Pl { ways; policy } ->
    if prefetched then pl_locked ~k else pl_unlocked ~ways ~k ~policy
  | Spec.Nomo { ways; policy; reserved } ->
    let victim_lines_in_set = Option.value victim_lines_in_set ~default:ways in
    nomo ~ways ~reserved ~victim_lines_in_set ~k ~policy
  | Spec.Newcache { extra_bits = _ } ->
    (* The designated physical line sits among the physical lines the
       attacker's random evictions choose from. *)
    newcache ~logical_lines:Config.standard.Config.lines ~k
  | Spec.Rp { ways; policy } -> rp ~ways ~k ~policy
  | Spec.Rf { ways; policy; _ } -> rf ~ways ~k ~policy
  | Spec.Re { ways; policy; interval } -> re ~ways ~interval ~k ~policy

(* k -> infinity limit of {!for_spec}: every closed form above is
   eventually constant in k except Random's coupon-collector sum, whose
   tail term ((ways-1)/ways)^k is far below double-precision resolution
   at this horizon — so the result is exactly 0. or 1. *)
let cleaning_limit ?victim_lines_in_set ?prefetched spec =
  for_spec ?victim_lines_in_set ?prefetched spec ~k:65536

let figure8_series ~specs ~ks =
  List.map
    (fun (name, spec) ->
      (name, List.map (fun k -> (k, for_spec spec ~k)) ks))
    specs
