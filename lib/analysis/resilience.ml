open Cachesec_cache

type verdict = High | Low

let default_threshold = 0.01

let is_noise_based = function Spec.Noisy _ -> true | _ -> false

let classify ?(threshold = default_threshold) spec attack =
  let pas = Attack_models.pas attack spec () in
  if pas <= threshold && not (is_noise_based spec) then High else Low

let table7 ?threshold () =
  List.map
    (fun spec ->
      ( Spec.display_name spec,
        Array.of_list
          (List.map (fun attack -> classify ?threshold spec attack) Attack_type.all)
      ))
    Spec.all_paper

let paper_table7 =
  [
    ("SA Cache", [| Low; Low; Low; Low |]);
    ("SP Cache", [| High; High; Low; Low |]);
    ("PL Cache", [| High; High; Low; Low |]);
    ("Nomo Cache", [| Low; High; Low; Low |]);
    ("Newcache", [| High; High; Low; High |]);
    ("RP Cache", [| High; High; Low; High |]);
    ("RF Cache", [| Low; High; High; High |]);
    ("RE Cache", [| Low; Low; Low; Low |]);
    ("Noisy Cache", [| Low; Low; Low; Low |]);
  ]

type combined = { pas : float; prepas_at : int -> float; verdict : verdict }

let combined ?threshold spec attack =
  {
    pas = Attack_models.pas attack spec ();
    prepas_at = (fun k -> Prepas.for_spec spec ~k);
    verdict = classify ?threshold spec attack;
  }

let verdict_to_string = function High -> "high" | Low -> "low"
let verdict_mark = function High -> "Y" | Low -> "X"

(* --- Policy resilience: policy x attack x architecture ---------------- *)

type policy_cell = {
  policy : Replacement.policy;
  attack : Attack_type.t;
  pas : float;
  limit : float;
  effective : float;
  bits : float;
  verdict : verdict;
}

let log2 x = log x /. log 2.

(* Miss-based attacks (Types 1 and 2) only observe anything after the
   attacker has cleaned the victim's lines out of the target set; if
   the replacement policy makes cleaning impossible even for an
   unbounded attacker (the k -> infinity pre-PAS limit is 0), the
   attack never starts regardless of its per-access PAS. Reuse-based
   attacks (Types 3 and 4) never evict, so the limit does not gate
   them. The PIFG edge probabilities themselves are policy-agnostic,
   so within one (architecture, attack) column the policy axis acts
   entirely through this gate. *)
let policy_cell ?threshold ?(config = Config.standard) spec policy attack =
  let spec = Spec.with_policy spec policy in
  let pas = Attack_models.pas ~config attack spec () in
  let limit =
    if Attack_type.is_miss_based attack then Prepas.cleaning_limit spec else 1.
  in
  let effective = pas *. limit in
  (* Absorbed information of the erasure channel the attack induces:
     with probability [effective] one observation resolves the victim's
     symbol — a cache set for miss-based attacks, a memory line for
     reuse-based ones — and otherwise nothing. *)
  let symbols =
    if Attack_type.is_miss_based attack then Config.sets config
    else config.Config.lines
  in
  let bits = effective *. log2 (float_of_int symbols) in
  let verdict =
    let threshold = Option.value threshold ~default:default_threshold in
    if effective <= threshold && not (is_noise_based spec) then High else Low
  in
  { policy; attack; pas; limit; effective; bits; verdict }

(* Newcache's SecRAND replacement is part of the design, so the policy
   axis does not apply to it. *)
let policy_specs =
  List.filter (fun spec -> Spec.policy_of spec <> None) Spec.all_paper

let policy_matrix ?threshold ?config ?(specs = policy_specs)
    ?(policies = Policy.all) () =
  List.map
    (fun spec ->
      ( spec,
        List.map
          (fun policy ->
            ( policy,
              List.map
                (fun attack -> policy_cell ?threshold ?config spec policy attack)
                Attack_type.all ))
          policies ))
    specs
