(** The paper's qualitative resilience classification (Table 7).

    A cache is highly resilient to an attack class when its PAS is 0 or
    close to 0. Two refinements follow the paper's own judgment:

    - noise-based reduction does not count as resilience: the noisy
      cache's non-trivial PAS reductions only slow an attacker, since
      averaging over trials recovers the signal
      ({!Noise.trials_to_overcome}), and the paper marks the noisy cache
      'X' in every column;
    - pre-PAS complements PAS: the paper recommends reading them
      together, which {!combined} exposes. *)

open Cachesec_cache

type verdict = High | Low
(** High resilience (the paper's check mark) vs low (the paper's X). *)

val default_threshold : float
(** 0.01: separates "close to 0" PAS values. The largest value the paper
    treats as resilient is RF's 7.75e-3; the smallest it marks X is SA's
    Type 2 at 1.56e-2. *)

val classify : ?threshold:float -> Spec.t -> Attack_type.t -> verdict
val table7 : ?threshold:float -> unit -> (string * verdict array) list
(** Verdicts for the nine caches x four types (Table 7). *)

val paper_table7 : (string * verdict array) list
(** The check/X pattern printed in the paper. *)

type combined = {
  pas : float;
  prepas_at : int -> float;  (** pre-PAS as a function of attacker accesses *)
  verdict : verdict;
}

val combined : ?threshold:float -> Spec.t -> Attack_type.t -> combined
val verdict_to_string : verdict -> string
(** "high" / "low". *)

val verdict_mark : verdict -> string
(** The paper's glyphs: "Y" for high, "X" for low. *)

(** {2 Policy resilience}

    The policy x attack x architecture refinement of Table 7: every
    architecture re-evaluated under each replacement policy of
    {!Cachesec_cache.Policy.all}. The PIFG edge probabilities are
    policy-agnostic, so the policy axis acts through the k -> infinity
    cleaning limit ({!Prepas.cleaning_limit}): a policy under which the
    attacker cannot clean the victim's set (MRU/LFU/MFU self-thrash in
    multi-way sets) zeroes the effective PAS of the miss-based attack
    types. *)

type policy_cell = {
  policy : Replacement.policy;
  attack : Attack_type.t;
  pas : float;  (** the raw PIFG PAS, identical across policies *)
  limit : float;
      (** {!Prepas.cleaning_limit} for miss-based attacks, 1 otherwise *)
  effective : float;  (** [pas *. limit] — what an unbounded attacker gets *)
  bits : float;
      (** absorbed information per observation of the induced erasure
          channel: [effective] times log2 of the symbol space (cache
          sets for miss-based attacks, memory lines for reuse-based) *)
  verdict : verdict;  (** {!classify} applied to the {e effective} PAS *)
}

val policy_cell :
  ?threshold:float ->
  ?config:Config.t ->
  Spec.t ->
  Replacement.policy ->
  Attack_type.t ->
  policy_cell
(** One cell of the matrix; the spec is rebound with
    {!Cachesec_cache.Spec.with_policy} first. *)

val policy_specs : Spec.t list
(** The paper architectures whose replacement policy is a free
    parameter — {!Cachesec_cache.Spec.all_paper} minus Newcache, whose
    SecRAND replacement is part of the design. *)

val policy_matrix :
  ?threshold:float ->
  ?config:Config.t ->
  ?specs:Spec.t list ->
  ?policies:Replacement.policy list ->
  unit ->
  (Spec.t * (Replacement.policy * policy_cell list) list) list
(** The full matrix, one {!policy_cell} per attack type in
    {!Attack_type.all} order. Defaults: {!policy_specs} x
    {!Cachesec_cache.Policy.all}. *)
