open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_report

type protocol = Set_conflict | Occupancy

let protocol_name = function
  | Set_conflict -> "set-conflict"
  | Occupancy -> "occupancy"

type row = {
  arch : string;
  protocol : protocol;
  error_rate : float;
  capacity : float;
}

let receiver_pid = 1
let sender_pid = 2

let touch engine ~pid (lines : int array) =
  for i = 0 to Array.length lines - 1 do
    ignore (engine.Engine.access ~pid lines.(i))
  done

let probe engine rng ~pid (lines : int array) =
  let sigma = engine.Engine.sigma in
  let misses = ref 0 in
  for i = 0 to Array.length lines - 1 do
    let o = engine.Engine.access ~pid lines.(i) in
    (* Same special case as Probe_plan: at sigma = 0 the observation
       draws nothing and classifies back to the true event. *)
    if sigma = 0. then begin
      if Outcome.is_miss o then incr misses
    end
    else
      let t = Timing.observe_outcome rng ~sigma o in
      match Timing.classify t with
      | Outcome.Miss -> incr misses
      | Outcome.Hit -> ()
  done;
  !misses

(* Line sets per protocol, precompiled into arrays. The sender's lines
   rotate across symbols so his transmissions are always misses;
   [fill_sender buf i] writes symbol [i]'s sender lines into the
   caller's reusable [buf] (length [sender_len]) without allocating. *)
let plan protocol (cfg : Config.t) =
  match protocol with
  | Set_conflict ->
    let count = Stdlib.min cfg.ways 8 in
    let set = 11 mod Config.sets cfg in
    let receiver =
      Array.init count (fun k -> Attacker.nth_conflict_line cfg ~set k)
    in
    let fill_sender buf i =
      let base =
        Attacker.default_base + (1 lsl 24)
        + (i mod 4096 * count * Config.sets cfg)
      in
      for k = 0 to count - 1 do
        buf.(k) <- Attacker.nth_conflict_line cfg ~base ~set k
      done
    in
    (receiver, count, fill_sender)
  | Occupancy ->
    let size = (3 * cfg.lines) / 4 in
    let receiver = Array.init size (fun k -> Attacker.default_base + k) in
    let len = cfg.lines / 2 in
    let fill_sender buf i =
      let base = Attacker.default_base + (1 lsl 24) + (i mod 64 * cfg.lines) in
      for k = 0 to len - 1 do
        buf.(k) <- base + k
      done
    in
    (receiver, len, fill_sender)

let run_row ?(seed = 53) ?(bits = 2000) protocol spec =
  if bits <= 0 then invalid_arg "Covert.run_row: bits must be positive";
  let root = Rng.create ~seed in
  let engine =
    Factory.build spec Factory.default_scenario ~rng:(Rng.split root)
  in
  let rng = Rng.split root in
  let receiver_lines, sender_len, fill_sender = plan protocol engine.Engine.config in
  let sender_buf = Array.make (Stdlib.max sender_len 1) 0 in
  let symbol i bit =
    touch engine ~pid:receiver_pid receiver_lines;
    if bit then begin
      (* Computed only for 1-bits, as the lazy list argument used to be. *)
      fill_sender sender_buf i;
      touch engine ~pid:sender_pid sender_buf
    end;
    float_of_int (probe engine rng ~pid:receiver_pid receiver_lines)
  in
  (* Calibration preamble of known alternating bits: threshold at the
     midpoint of the two observed means. Absorbs per-architecture
     baselines (prime self-eviction under random replacement, Nomo's
     reduced effective ways, RE's periodic evictions, noisy timing). *)
  let training = 200 in
  let sum0 = ref 0. and sum1 = ref 0. in
  for i = 1 to training do
    let bit = i land 1 = 1 in
    let m = symbol i bit in
    if bit then sum1 := !sum1 +. m else sum0 := !sum0 +. m
  done;
  let threshold = (!sum0 +. !sum1) /. float_of_int training in
  let joint = Mutual_information.create ~x_card:2 ~y_card:2 in
  let errors = ref 0 in
  for i = 1 to bits do
    let bit = Rng.bool rng in
    let received = symbol (training + i) bit > threshold in
    if received <> bit then incr errors;
    Mutual_information.observe joint ~x:(Bool.to_int bit)
      ~y:(Bool.to_int received)
  done;
  {
    arch = Spec.display_name spec;
    protocol;
    error_rate = float_of_int !errors /. float_of_int bits;
    capacity = Mutual_information.mi joint;
  }

let table ?seed ?bits () =
  List.concat_map
    (fun spec ->
      [ run_row ?seed ?bits Set_conflict spec; run_row ?seed ?bits Occupancy spec ])
    Spec.all_paper

let render rows =
  let body =
    List.map
      (fun r ->
        [
          r.arch;
          protocol_name r.protocol;
          Printf.sprintf "%.3f" r.error_rate;
          Printf.sprintf "%.3f" r.capacity;
        ])
      rows
  in
  "Covert channels between colluding processes, per-symbol capacity\n\
   I(sent; received). Set-conflict is the covert twin of prime-and-probe\n\
   and dies under per-process randomized mappings; the occupancy channel\n\
   survives every shared cache (aggregate occupancy is preserved by any\n\
   mapping), which is why covert channels are far harder to close than\n\
   side channels.\n"
  ^ Table.render
      ~headers:[ "Cache"; "protocol"; "error rate"; "capacity (bits/symbol)" ]
      ~rows:body ()
