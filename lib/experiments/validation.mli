(** End-to-end validation matrix: run every attack against every
    architecture in the simulator and compare the empirical outcome with
    the PIFG prediction (the role of the paper's Section 6). *)

open Cachesec_runtime

type cell = {
  arch : string;
  attack : Cachesec_analysis.Attack_type.t;
  pas : float;  (** analytical prediction *)
  predicted_leak : bool;  (** PAS above the resilience threshold *)
  recovered : bool;  (** did the simulated attack recover the nibble? *)
  separation : float;
  agrees : bool;  (** empirical outcome matches the prediction *)
  note : string;  (** explanation for the documented disagreements *)
}

(** {1 Primary ctx-first API} *)

val cell :
  Run.ctx -> Cachesec_cache.Spec.t -> Cachesec_analysis.Attack_type.t -> cell
(** One cell, its trials sharded over the trial runtime under a
    telemetry span [validation:<arch>:<attack>]. The cell's value is
    independent of [ctx.jobs]. *)

val submit_cell :
  Run.ctx -> Cachesec_cache.Spec.t -> Cachesec_analysis.Attack_type.t ->
  cell Driver.pending
(** Non-blocking {!cell}: the attack campaign's shards are dispatched
    onto the pool immediately; the cell record is built (and its span
    closed) at [Driver.await]. *)

val cells :
  ?pipeline:bool ->
  ?policy:Cachesec_cache.Replacement.policy ->
  Run.ctx ->
  cell list
(** All 9 x 4 combinations, under one [validation-matrix] span.
    [pipeline] (default [true]) submits every cell's campaign before the
    first await, letting shards from all cells share the pool queue;
    [false] runs the cells strictly sequentially. Both produce
    bit-identical cell lists — pipelining changes wall-clock only.
    [policy] rebinds every architecture's replacement policy via
    {!Cachesec_cache.Spec.with_policy} (Newcache keeps SecRAND). *)

val render : cell list -> string

val agreement_rate : cell list -> float
(** Fraction of cells where prediction and simulation agree. *)

(** {1 Deprecated optional-tail wrappers} *)

val run_cell :
  ?scale:Figures.scale ->
  ?seed:int ->
  ?jobs:int ->
  Cachesec_cache.Spec.t ->
  Cachesec_analysis.Attack_type.t ->
  cell
[@@alert deprecated "use cell with a Run.ctx"]
(** One cell with the old optional tail. [?jobs] follows
    {!Cachesec_runtime.Scheduler.resolve_jobs} (absent = serial, [0] =
    auto); the cell's value is independent of [jobs]. *)

val matrix : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> cell list
[@@alert deprecated "use cells with a Run.ctx"]
