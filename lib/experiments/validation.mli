(** End-to-end validation matrix: run every attack against every
    architecture in the simulator and compare the empirical outcome with
    the PIFG prediction (the role of the paper's Section 6). *)

open Cachesec_runtime

type cell = {
  arch : string;
  attack : Cachesec_analysis.Attack_type.t;
  pas : float;  (** analytical prediction *)
  predicted_leak : bool;  (** PAS above the resilience threshold *)
  recovered : bool;  (** did the simulated attack recover the nibble? *)
  separation : float;
  agrees : bool;  (** empirical outcome matches the prediction *)
  note : string;  (** explanation for the documented disagreements *)
  trials : int;  (** attack trials actually executed for this cell *)
  max_trials : int;  (** the cell's trial budget (= [trials] when fixed) *)
  ci_half_width : float;
      (** achieved CI half-width of the cell's stopping estimator
          ({!Cachesec_stats.Sequential.achieved}); [nan] on the fixed
          path, which measures no interval *)
}

type adaptive = { confidence : float; ci_width : float }
(** Run-to-confidence knob for the matrix: stop each cell's campaign
    once its estimator's CI half-width at [confidence] reaches
    [ci_width] (subject to the Driver's min-trials floor), instead of
    always running the full budget. [ci_width = 0.] never stops early:
    the campaign runs to its cap on the adaptive batch plan — the
    measurement arm the e2e bench uses to find the widths that fixed
    budgets actually achieve. *)

(** {1 Primary ctx-first API} *)

val cell :
  ?adaptive:adaptive ->
  Run.ctx -> Cachesec_cache.Spec.t -> Cachesec_analysis.Attack_type.t -> cell
(** One cell, its trials sharded over the trial runtime under a
    telemetry span [validation:<arch>:<attack>]. The cell's value is
    independent of [ctx.jobs] — with or without [?adaptive] (stop
    decisions depend only on seed-determined merged estimates at
    deterministic round boundaries). *)

val submit_cell :
  ?adaptive:adaptive ->
  Run.ctx -> Cachesec_cache.Spec.t -> Cachesec_analysis.Attack_type.t ->
  cell Driver.pending
(** Non-blocking {!cell}: the attack campaign's shards are dispatched
    onto the pool immediately; the cell record is built (and its span
    closed) at [Driver.await]. *)

val cells :
  ?pipeline:bool ->
  ?policy:Cachesec_cache.Replacement.policy ->
  ?adaptive:adaptive ->
  Run.ctx ->
  cell list
(** All 9 x 4 combinations, under one [validation-matrix] span.
    [pipeline] (default [true]) submits every cell's campaign before the
    first await, letting shards from all cells share the pool queue;
    [false] runs the cells strictly sequentially. Both produce
    bit-identical cell lists — pipelining changes wall-clock only.
    [policy] rebinds every architecture's replacement policy via
    {!Cachesec_cache.Spec.with_policy} (Newcache keeps SecRAND).
    [adaptive] switches every cell to run-to-confidence stopping. *)

val render : cell list -> string
(** The matrix table. When at least one cell measured an interval the
    table gains [trials] and [ci] columns plus a trials-saved footer;
    fixed-path output is unchanged. *)

val agreement_rate : cell list -> float
(** Fraction of cells where prediction and simulation agree. *)

val total_trials : cell list -> int
(** Sum of trials actually executed across the cells. *)

val total_caps : cell list -> int
(** Sum of the cells' trial budgets. *)

val worst_half_width : cell list -> float
(** Largest measured finite [ci_half_width] ([nan] and [infinity]
    skipped — an infinite relative width marks a cell that can never
    stop early and runs to cap in both bench arms); [0.] when nothing
    finite was measured. The e2e bench's matched-width target: an
    adaptive arm run at this width is at least as precise as the fixed
    arm in every cell that can stop at all. *)

(** {1 Deprecated optional-tail wrappers} *)

val run_cell :
  ?scale:Figures.scale ->
  ?seed:int ->
  ?jobs:int ->
  Cachesec_cache.Spec.t ->
  Cachesec_analysis.Attack_type.t ->
  cell
[@@alert deprecated "use cell with a Run.ctx"]
(** One cell with the old optional tail. [?jobs] follows
    {!Cachesec_runtime.Scheduler.resolve_jobs} (absent = serial, [0] =
    auto); the cell's value is independent of [jobs]. *)

val matrix : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> cell list
[@@alert deprecated "use cells with a Run.ctx"]
