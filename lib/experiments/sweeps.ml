open Cachesec_cache
open Cachesec_analysis
open Cachesec_report

let sa_config ways = Config.v ~line_bytes:64 ~lines:512 ~ways

let associativity_sweep ~ways =
  List.map
    (fun w ->
      let spec = Spec.Sa { ways = w; policy = Replacement.Random } in
      let pas =
        Attack_models.pas ~config:(sa_config w) Attack_type.Evict_and_time spec ()
      in
      let prepas = Prepas.sa_random ~ways:w ~k:(2 * w) in
      (w, pas, prepas))
    ways

let cache_size_sweep ~lines =
  List.map
    (fun n ->
      if n <= 0 then invalid_arg "Sweeps.cache_size_sweep: lines must be positive";
      let config = Config.v ~line_bytes:64 ~lines:n ~ways:n in
      let pas =
        Attack_models.pas ~config Attack_type.Evict_and_time
          (Spec.Newcache { extra_bits = 4 })
          ()
      in
      (n, pas))
    lines

let rf_window_sweep ~windows =
  List.map
    (fun w ->
      let spec = Spec.Rf { ways = 8; policy = Replacement.Random; back = w; fwd = w } in
      ( w,
        Attack_models.pas Attack_type.Cache_collision spec (),
        Attack_models.pas Attack_type.Prime_and_probe spec () ))
    windows

let re_interval_sweep ~intervals =
  List.map
    (fun t ->
      let spec = Spec.Re { ways = 1; policy = Replacement.Random; interval = t } in
      ( t,
        Attack_models.pas Attack_type.Cache_collision spec (),
        1. /. float_of_int t ))
    intervals

let nomo_reservation_sweep ~ways ~reserved =
  List.map
    (fun r ->
      let spec = Spec.Nomo { ways; policy = Replacement.Random; reserved = r } in
      let pas = Attack_models.pas Attack_type.Evict_and_time spec () in
      let prepas =
        Prepas.nomo ~ways ~reserved:r ~victim_lines_in_set:ways ~k:24
          ~policy:Replacement.Random
      in
      (r, pas, prepas))
    reserved

(* The five tables are independent pure computations: submit each as a
   pool task and await them in order. With live workers (a preceding
   parallel section has sized the pool) they overlap; with zero workers
   [Pool.submit] degrades to eager inline execution, so the rendered
   report is byte-identical either way. *)
let render () =
  let t3 name headers rows =
    name ^ "\n" ^ Table.render ~headers ~rows () ^ "\n"
  in
  let tables =
    [
      (fun () ->
        t3
          "Associativity sweep (SA, 512 lines): eviction gets harder, filling easier"
          [ "ways"; "Type 1 PAS"; "pre-PAS @ k=2w" ]
          (List.map
             (fun (w, p, q) ->
               [ string_of_int w; Table.fmt_prob p; Table.fmt_prob q ])
             (associativity_sweep ~ways:[ 1; 2; 4; 8; 16; 32 ])));
      (fun () ->
        t3 "Randomized cache size sweep (Newcache-style): PAS = 1/lines"
          [ "lines"; "Type 1 PAS" ]
          (List.map
             (fun (n, p) -> [ string_of_int n; Table.fmt_prob p ])
             (cache_size_sweep ~lines:[ 64; 128; 256; 512; 1024; 2048 ])));
      (fun () ->
        t3 "RF window sweep: the defence knob for reuse attacks"
          [ "half-window"; "Type 3 PAS"; "Type 2 PAS" ]
          (List.map
             (fun (w, p3, p2) ->
               [ string_of_int w; Table.fmt_prob p3; Table.fmt_prob p2 ])
             (rf_window_sweep ~windows:[ 0; 2; 8; 32; 64; 128 ])));
      (fun () ->
        t3 "RE interval sweep: PAS barely moves while throughput cost is 1/T"
          [ "interval T"; "Type 3 PAS"; "extra evictions/access" ]
          (List.map
             (fun (t, p, cost) ->
               [ string_of_int t; Table.fmt_prob p; Printf.sprintf "%.3f" cost ])
             (re_interval_sweep ~intervals:[ 1; 2; 5; 10; 50; 100 ])));
      (fun () ->
        t3 "Nomo reservation sweep (8 ways): protection vs shared capacity"
          [ "reserved"; "Type 1 PAS (spill case)"; "pre-PAS @ k=24" ]
          (List.map
             (fun (r, p, q) ->
               [ string_of_int r; Table.fmt_prob p; Table.fmt_prob q ])
             (nomo_reservation_sweep ~ways:8 ~reserved:[ 0; 1; 2; 4; 6 ])));
    ]
  in
  let futures = List.map Cachesec_runtime.Pool.submit tables in
  String.concat "" (List.map Cachesec_runtime.Pool.await futures)

let csv_rows () =
  [
    ( "sweep_associativity",
      [ "ways"; "pas_type1"; "prepas_k2w" ],
      List.map
        (fun (w, p, q) ->
          [ string_of_int w; Printf.sprintf "%.8g" p; Printf.sprintf "%.8g" q ])
        (associativity_sweep ~ways:[ 1; 2; 4; 8; 16; 32 ]) );
    ( "sweep_cache_size",
      [ "lines"; "pas_type1" ],
      List.map
        (fun (n, p) -> [ string_of_int n; Printf.sprintf "%.8g" p ])
        (cache_size_sweep ~lines:[ 64; 128; 256; 512; 1024; 2048 ]) );
    ( "sweep_rf_window",
      [ "half_window"; "pas_type3"; "pas_type2" ],
      List.map
        (fun (w, p3, p2) ->
          [ string_of_int w; Printf.sprintf "%.8g" p3; Printf.sprintf "%.8g" p2 ])
        (rf_window_sweep ~windows:[ 0; 2; 8; 32; 64; 128 ]) );
    ( "sweep_re_interval",
      [ "interval"; "pas_type3"; "eviction_cost" ],
      List.map
        (fun (t, p, c) ->
          [ string_of_int t; Printf.sprintf "%.8g" p; Printf.sprintf "%.8g" c ])
        (re_interval_sweep ~intervals:[ 1; 2; 5; 10; 50; 100 ]) );
    ( "sweep_nomo_reservation",
      [ "reserved"; "pas_type1"; "prepas_k24" ],
      List.map
        (fun (r, p, q) ->
          [ string_of_int r; Printf.sprintf "%.8g" p; Printf.sprintf "%.8g" q ])
        (nomo_reservation_sweep ~ways:8 ~reserved:[ 0; 1; 2; 4; 6 ]) );
  ]
