open Cachesec_stats
open Cachesec_cache
open Cachesec_analysis
open Cachesec_report

type measurement = {
  label : string;
  arch : string;
  closed_form : float;
  measured : float;
  samples : int;
}

let victim_pid = 0
let attacker_pid = 1

let scenario =
  { Factory.victim_pid; victim_lines = [ (0, Cachesec_attacks.Attacker.default_base - 1) ] }

let fresh_engine spec rng =
  let e = Factory.build spec scenario ~rng in
  (* The cleaning/seeding phases must place deterministic victim lines
     even under RF (see Cleaner for the same convention). *)
  e.Engine.set_window ~pid:victim_pid ~back:0 ~fwd:0;
  e

(* One eviction-stage sample: returns whether the designated victim line
   was displaced by a single fresh attacker access. *)
let eviction_sample spec rng =
  let engine = fresh_engine spec rng in
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg and ways = cfg.Config.ways in
  let target_set = 0 in
  let seeded =
    match spec with
    | Spec.Newcache _ -> [ 0 ]
    | _ -> List.init ways (fun k -> target_set + (k * sets))
  in
  List.iter (fun l -> ignore (engine.Engine.access ~pid:victim_pid l)) seeded;
  (match spec with
  | Spec.Pl _ ->
    List.iter (fun l -> ignore (engine.Engine.lock_line ~pid:victim_pid l)) seeded
  | _ -> ());
  (* Designated line: any victim line in an attacker-evictable slot. *)
  let target =
    match spec with
    | Spec.Newcache _ -> Some 0
    | Spec.Nomo { reserved; _ } ->
      (* The paper's Nomo row scores evicting an unreserved (shared-way)
         victim line. *)
      engine.Engine.dump ()
      |> List.find_map (fun (idx, (l : Line.t)) ->
             if l.Line.owner = victim_pid && idx mod ways >= reserved then
               Some l.tag
             else None)
    | _ -> Some target_set
  in
  match target with
  | None -> None  (* no shared-way victim line materialised; skip sample *)
  | Some v ->
    let attacker_line =
      Cachesec_attacks.Attacker.nth_conflict_line cfg ~set:target_set 0
    in
    ignore (engine.Engine.access ~pid:attacker_pid attacker_line);
    Some (not (engine.Engine.peek ~pid:victim_pid v))

let eviction_closed_form spec =
  let e = Edge_probs.evict_and_time spec () in
  Edge_probs.find e "p1" *. Edge_probs.find e "p2" *. Edge_probs.find e "p3"

let eviction_stage ?(samples = 20000) ?(seed = 91) spec =
  let rng = Rng.create ~seed in
  let hits = ref 0 and n = ref 0 in
  while !n < samples do
    match eviction_sample spec (Rng.split rng) with
    | Some evicted ->
      incr n;
      if evicted then incr hits
    | None -> ()
  done;
  {
    label = "eviction p1*p2*p3";
    arch = Spec.display_name spec;
    closed_form = eviction_closed_form spec;
    measured = float_of_int !hits /. float_of_int samples;
    samples;
  }

(* Reuse stage: victim touches line v, makes [gap] unrelated accesses,
   touches v again; count the second touch's hit. v sits far from 0 (an
   RF window clamped at line 0 would shrink) and the filler lines sit
   far from v (so no RF window covers it and no set conflict evicts it
   before the set fills). *)
let reuse_line = 1000
let filler_base = 50000

let reuse_sample spec rng ~gap =
  let engine = Factory.build spec scenario ~rng in
  ignore (engine.Engine.access ~pid:victim_pid reuse_line);
  for i = 1 to gap do
    ignore (engine.Engine.access ~pid:victim_pid (filler_base + i))
  done;
  Outcome.is_hit (engine.Engine.access ~pid:victim_pid reuse_line)

let reuse_closed_form spec ~gap =
  let e = Edge_probs.cache_collision spec () in
  let p0 = Edge_probs.find e "p0" and p4 = Edge_probs.find e "p4" in
  let fgap = float_of_int gap in
  match spec with
  | Spec.Newcache _ ->
    (* The paper's p4 = 1 abstracts Newcache's global random
       replacement: each of the victim's own [gap] misses evicts a
       uniformly random physical line, so the reuse line survives with
       probability (1 - 1/N)^gap — a real cost of the design that the
       micro-experiment exposes. *)
    let n = float_of_int Config.standard.Config.lines in
    p0 *. ((1. -. (1. /. n)) ** fgap)
  | _ -> p0 *. (p4 ** fgap)

let reuse_stage ?(samples = 5000) ?(seed = 92) ?(gap = 100) spec =
  let rng = Rng.create ~seed in
  let hits = ref 0 in
  for _ = 1 to samples do
    if reuse_sample spec (Rng.split rng) ~gap then incr hits
  done;
  {
    label = Printf.sprintf "reuse p0*p4^%d" gap;
    arch = Spec.display_name spec;
    closed_form = reuse_closed_form spec ~gap;
    measured = float_of_int !hits /. float_of_int samples;
    samples;
  }

(* Cross-context stage: victim fetches a shared line; attacker's
   immediate reload hits or not. *)
let cross_sample spec rng =
  let engine = Factory.build spec scenario ~rng in
  ignore (engine.Engine.access ~pid:victim_pid reuse_line);
  Outcome.is_hit (engine.Engine.access ~pid:attacker_pid reuse_line)

let cross_closed_form spec =
  let e = Edge_probs.flush_and_reload spec () in
  Edge_probs.find e "p0" *. Edge_probs.find e "p4"

let cross_context_stage ?(samples = 5000) ?(seed = 93) spec =
  let rng = Rng.create ~seed in
  let hits = ref 0 in
  for _ = 1 to samples do
    if cross_sample spec (Rng.split rng) then incr hits
  done;
  {
    label = "cross-context p0*p4";
    arch = Spec.display_name spec;
    closed_form = cross_closed_form spec;
    measured = float_of_int !hits /. float_of_int samples;
    samples;
  }

let table ?samples ?seed () =
  List.concat_map
    (fun spec ->
      [
        eviction_stage ?samples ?seed spec;
        reuse_stage ?samples:(Option.map (fun s -> s / 4) samples) ?seed spec;
        cross_context_stage ?samples:(Option.map (fun s -> s / 4) samples) ?seed spec;
      ])
    Spec.all_paper

let render ms =
  let rows =
    List.map
      (fun m ->
        [
          m.arch;
          m.label;
          Table.fmt_prob m.closed_form;
          Table.fmt_prob m.measured;
          string_of_int m.samples;
        ])
      ms
  in
  "Edge-level validation: each architecture-dependent conditional\n\
   probability of Tables 3/5, measured from the simulator by a targeted\n\
   micro-experiment next to its closed form. (Newcache's reuse row uses\n\
   (1 - 1/N)^gap: its global random replacement self-evicts, a real cost\n\
   the paper's p4 = 1 abstracts away.)\n"
  ^ Table.render
      ~headers:[ "Cache"; "stage"; "closed form"; "measured"; "samples" ]
      ~rows ()

let max_relative_error ms =
  List.fold_left
    (fun acc m ->
      Float.max acc
        (Float.abs (m.measured -. m.closed_form) /. Float.max m.closed_form 0.01))
    0. ms
