open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_runtime
open Cachesec_telemetry

let shard_seed ~seed i = Run.seed_for_batch ~seed i

let setup_for ~(ctx : Run.ctx) spec (b : Scheduler.batch) =
  Setup.make ~seed:(Run.batch_seed ctx b.Scheduler.index) spec

(* Partial-merge is the scheduler's index-order fold: one reduction
   shared with [Scheduler.run_reduce], so "merge in batch order" has a
   single definition in the codebase. [what] names the campaign so an
   empty-plan failure is attributed to its experiment. *)
let fold_partials ~what merge parts =
  Scheduler.fold_results ~what:(what ^ " partials") ~merge parts

(* Adapt an in-place [merge_into] to the scheduler's pure-merge shape:
   both the index-order fold above and [Adaptive.await]'s round fold
   consume each batch partial exactly once into a running left
   accumulator, so folding the right side into the left and returning it
   is equivalent to the pure merge — without allocating a fresh
   accumulator (3 arrays + a summary per step) per batch. *)
let in_place merge_into a b =
  merge_into a b;
  a

(* --- pending campaigns ------------------------------------------------ *)

(* A campaign whose shards have been dispatched onto the pool but whose
   merge has not happened yet. [await] is memoizing (value or failure),
   so a pending can be passed around and joined from exactly one place
   without double-folding or double-closing its span. *)
type 'a state =
  | Thunk of (unit -> 'a)
  | Value of 'a
  | Error of exn * Printexc.raw_backtrace

type 'a pending = { mutable state : 'a state }

let await p =
  match p.state with
  | Value v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Thunk f ->
    (match f () with
    | v ->
      p.state <- Value v;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      p.state <- Error (e, bt);
      Printexc.raise_with_backtrace e bt)

let pending_value v = { state = Value v }
let pending_of_thunk f = { state = Thunk f }
let map_pending f p = { state = Thunk (fun () -> f (await p)) }
let await_all ps = List.map await ps

(* Per-attack shard sizes. They are properties of the *experiment
   definition*, never of the worker count: changing [jobs] must not
   change the batch plan, or determinism across job counts is lost.
   Sizes are chosen so a typical full-scale run yields enough batches to
   keep every core busy while a quick-scale run stays in one batch. *)
let evict_time_batch = 4096 (* also the attacker's base-rotation period *)
let prime_probe_batch = 256
let collision_batch = 8192
let flush_reload_batch = 256
let cleaning_batch = 250

(* Engine counters -> telemetry, sampled once per finished batch (the
   engines' zero-alloc access path is never touched: [counters ()] takes
   an ordinary snapshot after the batch's trial slice has run). Each
   batch owns a fresh engine, so its snapshot is exactly the batch's
   traffic, and the merged totals are jobs-invariant. *)
let sample_engine_counters tm (s : Setup.t) =
  if not (Telemetry.is_null tm) then begin
    let c = s.Setup.engine.Engine.counters () in
    Telemetry.count tm "cache.accesses" c.Counters.accesses;
    Telemetry.count tm "cache.hits" c.Counters.hits;
    Telemetry.count tm "cache.misses" c.Counters.misses;
    Telemetry.count tm "cache.evictions" c.Counters.evictions;
    Telemetry.count tm "cache.read_throughs" c.Counters.read_throughs;
    Telemetry.count tm "cache.flushes" c.Counters.flushes
  end

(* Attack-trial counters, sampled once per finished batch like the
   engine counters above: a global [attacks.trials] plus a per-class
   [attacks.<class>.trials], so a TELEMETRY_*.json records how much
   attack work each campaign actually executed (and the attack-
   throughput bench's counters line up with its gauges). The counter
   bump sits outside the trial loop — the zero-allocation fast path is
   never instrumented. *)
let sample_attack_counters tm ~attack trials =
  if not (Telemetry.is_null tm) then begin
    Telemetry.count tm "attacks.trials" trials;
    Telemetry.count tm ("attacks." ^ attack ^ ".trials") trials
  end

(* Common campaign shape, split at the submit/await seam: [submit_campaign]
   opens the experiment span, plans the batches and dispatches the shard
   tasks onto the pool (tagged with the span so batch events nest under
   it) — returning without blocking. The returned pending's join folds
   the partials in batch order, bumps the driver counters and finalizes.
   Pipelining across campaigns is calling several [submit_campaign]s
   before the first [await]; the blocking [run_*] forms are
   submit-then-await and semantically identical to the pre-pool code. *)
let submit_campaign ~(ctx : Run.ctx) ~name ~default_batch ~total ~shard ~merge
    ~finalize =
  let tm = ctx.Run.telemetry in
  let sp = Telemetry.span tm ~parent:ctx.Run.parent name in
  Telemetry.gauge tm ~span:sp "trials" (float_of_int total);
  match
    let batch_size = Option.value ctx.Run.batch ~default:default_batch in
    let plan = Scheduler.plan ~total ~batch_size in
    (plan, Scheduler.submit_map ?jobs:ctx.Run.jobs ~tm ~span:sp shard plan)
  with
  | exception e ->
    (* Serial submits run shards eagerly: close the span on the way out. *)
    Telemetry.close_span tm sp;
    raise e
  | plan, shards ->
    {
      state =
        Thunk
          (fun () ->
            match Scheduler.await shards with
            | exception e ->
              Telemetry.close_span tm sp;
              raise e
            | parts ->
              if not (Telemetry.is_null tm) then begin
                Telemetry.count tm "driver.batches" (Array.length plan);
                Telemetry.count tm "driver.trials" total
              end;
              let v = finalize (fold_partials ~what:name merge parts) in
              Telemetry.close_span tm sp;
              v);
    }

(* Shard closures are shared between the fixed-count and adaptive
   submits below: a batch computes the same partial either way — only
   how many batches run differs. *)
let evict_time_shard (ctx : Run.ctx) spec (c : Evict_time.config)
    (b : Scheduler.batch) =
  let tm = ctx.Run.telemetry in
  let s = setup_for ~ctx spec b in
  let p =
    Evict_time.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~first:b.Scheduler.first ~count:b.Scheduler.count c
  in
  sample_engine_counters tm s;
  sample_attack_counters tm ~attack:"evict_time" b.Scheduler.count;
  p

(* The reference victim (keys, table layout) is a function of the run
   seed only, identical across batches — see Setup.make. *)
let victim_of (ctx : Run.ctx) spec =
  (Setup.make ~seed:ctx.Run.seed spec).Setup.victim

let submit_evict_time (ctx : Run.ctx) spec (c : Evict_time.config) =
  submit_campaign ~ctx
    ~name:("evict-time:" ^ Spec.name spec)
    ~default_batch:evict_time_batch ~total:c.Evict_time.trials
    ~shard:(evict_time_shard ctx spec c) ~merge:(in_place Evict_time.merge_into)
    ~finalize:(fun merged ->
      Evict_time.finalize ~victim:(victim_of ctx spec) c merged)

let run_evict_time ctx spec c = await (submit_evict_time ctx spec c)

let prime_probe_shard (ctx : Run.ctx) spec (c : Prime_probe.config)
    (b : Scheduler.batch) =
  let tm = ctx.Run.telemetry in
  let s = setup_for ~ctx spec b in
  let p =
    Prime_probe.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  sample_engine_counters tm s;
  sample_attack_counters tm ~attack:"prime_probe" b.Scheduler.count;
  p

let submit_prime_probe (ctx : Run.ctx) spec (c : Prime_probe.config) =
  submit_campaign ~ctx
    ~name:("prime-probe:" ^ Spec.name spec)
    ~default_batch:prime_probe_batch ~total:c.Prime_probe.trials
    ~shard:(prime_probe_shard ctx spec c) ~merge:(in_place Prime_probe.merge_into)
    ~finalize:(fun merged ->
      Prime_probe.finalize ~victim:(victim_of ctx spec) c merged)

let run_prime_probe ctx spec c = await (submit_prime_probe ctx spec c)

let collision_shard (ctx : Run.ctx) spec (c : Collision.config)
    (b : Scheduler.batch) =
  let tm = ctx.Run.telemetry in
  let s = setup_for ~ctx spec b in
  let p =
    Collision.run_span ~victim:s.Setup.victim ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  sample_engine_counters tm s;
  sample_attack_counters tm ~attack:"collision" b.Scheduler.count;
  p

let submit_collision (ctx : Run.ctx) spec (c : Collision.config) =
  submit_campaign ~ctx
    ~name:("collision:" ^ Spec.name spec)
    ~default_batch:collision_batch ~total:c.Collision.trials
    ~shard:(collision_shard ctx spec c) ~merge:(in_place Collision.merge_into)
    ~finalize:(fun merged ->
      Collision.finalize ~victim:(victim_of ctx spec) c merged)

let run_collision ctx spec c = await (submit_collision ctx spec c)

let flush_reload_shard (ctx : Run.ctx) spec (c : Flush_reload.config)
    (b : Scheduler.batch) =
  let tm = ctx.Run.telemetry in
  let s = setup_for ~ctx spec b in
  let p =
    Flush_reload.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  sample_engine_counters tm s;
  sample_attack_counters tm ~attack:"flush_reload" b.Scheduler.count;
  p

let submit_flush_reload (ctx : Run.ctx) spec (c : Flush_reload.config) =
  submit_campaign ~ctx
    ~name:("flush-reload:" ^ Spec.name spec)
    ~default_batch:flush_reload_batch ~total:c.Flush_reload.trials
    ~shard:(flush_reload_shard ctx spec c) ~merge:(in_place Flush_reload.merge_into)
    ~finalize:(fun merged ->
      Flush_reload.finalize ~victim:(victim_of ctx spec) c merged)

let run_flush_reload ctx spec c = await (submit_flush_reload ctx spec c)

(* --- pre-PAS cleaning game ------------------------------------------- *)

let cleaning_shard (ctx : Run.ctx) spec ~accesses (b : Scheduler.batch) =
  let rng = Rng.create ~seed:(Run.batch_seed ctx b.Scheduler.index) in
  Cleaner.count_wins spec ~accesses ~samples:b.Scheduler.count ~rng

let submit_cleaning_game (ctx : Run.ctx) spec ~accesses ~samples =
  if samples <= 0 then
    invalid_arg "Driver.cleaning_game: samples must be positive";
  submit_campaign ~ctx
    ~name:("cleaning-game:" ^ Spec.name spec)
    ~default_batch:cleaning_batch ~total:samples
    ~shard:(cleaning_shard ctx spec ~accesses) ~merge:( + )
    ~finalize:(fun wins -> float_of_int wins /. float_of_int samples)

let run_cleaning_game ctx spec ~accesses ~samples =
  await (submit_cleaning_game ctx spec ~accesses ~samples)

(* --- merged timing statistics ---------------------------------------- *)

let timing_batch = 512

let timing_shard ~lo ~hi ~bins (ctx : Run.ctx) spec (b : Scheduler.batch) =
  let tm = ctx.Run.telemetry in
  let s = setup_for ~ctx spec b in
  let h = Histogram.create ~lo ~hi ~bins in
  let sum = Summary.create () in
  for _ = 1 to b.Scheduler.count do
    let p = Victim.random_plaintext s.Setup.rng in
    let _, time = Victim.encrypt_timed s.Setup.victim p in
    let sigma = s.Setup.engine.Engine.sigma in
    let observed =
      if sigma = 0. then time
      else time +. Rng.gaussian s.Setup.rng ~mu:0. ~sigma
    in
    Histogram.add h observed;
    Summary.add sum observed
  done;
  sample_engine_counters tm s;
  (h, sum)

let timing_merge (ha, sa) (hb, sb) =
  (Histogram.merge ha hb, Summary.merge sa sb)

let submit_timing_stats ?(lo = 0.) ?(hi = 40.) ?(bins = 80) (ctx : Run.ctx)
    spec ~trials () =
  if trials <= 0 then invalid_arg "Driver.timing_stats: trials must be positive";
  submit_campaign ~ctx
    ~name:("timing-stats:" ^ Spec.name spec)
    ~default_batch:timing_batch ~total:trials
    ~shard:(timing_shard ~lo ~hi ~bins ctx spec) ~merge:timing_merge
    ~finalize:Fun.id

let run_timing_stats ?lo ?hi ?bins ctx spec ~trials () =
  await (submit_timing_stats ?lo ?hi ?bins ctx spec ~trials ())

(* --- adaptive (run-to-confidence) campaigns --------------------------- *)

type 'a adaptive = {
  value : 'a;
  trials : int;
  cap : int;
  rounds : int;
  stopped_early : bool;
  achieved : float;
}

(* Adaptive campaigns shard finer than fixed ones: the geometric rounds
   need several batch boundaries inside the cap to have anywhere to
   stop. Still a pure function of the experiment definition (cap and
   the attack's default size), never of [jobs] — so adaptive runs stay
   bit-identical across job counts. Fixed campaigns keep their exact
   PR-8 plans; only the adaptive variants use the finer grain. *)
let adaptive_batch ~default_batch ~cap =
  Stdlib.max 1 (Stdlib.min default_batch ((cap + 7) / 8))

(* The adaptive analogue of [submit_campaign]: same span/telemetry
   shape, but the batch plan is partitioned into geometric rounds and
   the pending's join drives [Adaptive.await], recording how many
   trials actually ran. [observe] maps cumulative merged partials to
   the estimator the stopping rule tests; it sees the cumulative trial
   count because some partials (cleaning-game win counts) do not carry
   their own denominator. *)
let submit_adaptive_campaign ~(ctx : Run.ctx) ~name ~default_batch
    ~(target : Sequential.target) ~shard ~merge ~observe ~finalize =
  let cap = target.Sequential.max_trials in
  let tm = ctx.Run.telemetry in
  let sp = Telemetry.span tm ~parent:ctx.Run.parent name in
  Telemetry.gauge tm ~span:sp "trials_cap" (float_of_int cap);
  match
    let batch_size =
      Option.value ctx.Run.batch ~default:(adaptive_batch ~default_batch ~cap)
    in
    let plan =
      Adaptive.plan
        ~start:(Stdlib.max batch_size target.Sequential.min_trials)
        ~total:cap ~batch_size ()
    in
    let keep_going ~trials merged =
      Sequential.decide target ~trials (observe ~trials merged)
      = Sequential.Continue
    in
    Adaptive.submit ?jobs:ctx.Run.jobs ~tm ~span:sp ~what:name ~shard ~merge
      ~keep_going plan
  with
  | exception e ->
    Telemetry.close_span tm sp;
    raise e
  | running ->
    pending_of_thunk (fun () ->
        match Adaptive.await running with
        | exception e ->
          Telemetry.close_span tm sp;
          raise e
        | prog ->
          let trials = prog.Adaptive.trials in
          if not (Telemetry.is_null tm) then begin
            Telemetry.count tm "driver.batches" prog.Adaptive.batches_run;
            (* Actual trials executed, post-early-stop — NOT the cap
               (which the "trials_cap" gauge above records). *)
            Telemetry.count tm "driver.trials" trials;
            Telemetry.count tm "driver.trials_saved" (cap - trials);
            Telemetry.gauge tm ~span:sp "trials" (float_of_int trials)
          end;
          let achieved =
            Sequential.achieved
              (observe ~trials prog.Adaptive.merged)
              ~confidence:target.Sequential.confidence
          in
          let v =
            {
              value = finalize ~trials prog.Adaptive.merged;
              trials;
              cap;
              rounds = prog.Adaptive.rounds_run;
              stopped_early = prog.Adaptive.stopped_early;
              achieved;
            }
          in
          Telemetry.close_span tm sp;
          v)

let submit_evict_time_adaptive (ctx : Run.ctx) spec ~target
    (c : Evict_time.config) =
  submit_adaptive_campaign ~ctx
    ~name:("evict-time:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:evict_time_batch ~target
    ~shard:(evict_time_shard ctx spec c) ~merge:(in_place Evict_time.merge_into)
    ~observe:(fun ~trials:_ p -> Evict_time.observe p)
    ~finalize:(fun ~trials:_ merged ->
      Evict_time.finalize ~victim:(victim_of ctx spec) c merged)

let run_evict_time_adaptive ctx spec ~target c =
  await (submit_evict_time_adaptive ctx spec ~target c)

let submit_prime_probe_adaptive (ctx : Run.ctx) spec ~target
    (c : Prime_probe.config) =
  submit_adaptive_campaign ~ctx
    ~name:("prime-probe:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:prime_probe_batch ~target
    ~shard:(prime_probe_shard ctx spec c) ~merge:(in_place Prime_probe.merge_into)
    ~observe:(fun ~trials:_ p -> Prime_probe.observe p)
    ~finalize:(fun ~trials:_ merged ->
      Prime_probe.finalize ~victim:(victim_of ctx spec) c merged)

let run_prime_probe_adaptive ctx spec ~target c =
  await (submit_prime_probe_adaptive ctx spec ~target c)

let submit_collision_adaptive (ctx : Run.ctx) spec ~target
    (c : Collision.config) =
  submit_adaptive_campaign ~ctx
    ~name:("collision:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:collision_batch ~target
    ~shard:(collision_shard ctx spec c) ~merge:(in_place Collision.merge_into)
    ~observe:(fun ~trials:_ p -> Collision.observe p)
    ~finalize:(fun ~trials:_ merged ->
      Collision.finalize ~victim:(victim_of ctx spec) c merged)

let run_collision_adaptive ctx spec ~target c =
  await (submit_collision_adaptive ctx spec ~target c)

let submit_flush_reload_adaptive (ctx : Run.ctx) spec ~target
    (c : Flush_reload.config) =
  submit_adaptive_campaign ~ctx
    ~name:("flush-reload:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:flush_reload_batch ~target
    ~shard:(flush_reload_shard ctx spec c) ~merge:(in_place Flush_reload.merge_into)
    ~observe:(fun ~trials:_ p -> Flush_reload.observe p)
    ~finalize:(fun ~trials:_ merged ->
      Flush_reload.finalize ~victim:(victim_of ctx spec) c merged)

let run_flush_reload_adaptive ctx spec ~target c =
  await (submit_flush_reload_adaptive ctx spec ~target c)

let submit_cleaning_game_adaptive (ctx : Run.ctx) spec ~accesses ~target =
  submit_adaptive_campaign ~ctx
    ~name:("cleaning-game:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:cleaning_batch ~target
    ~shard:(cleaning_shard ctx spec ~accesses) ~merge:( + )
    ~observe:(fun ~trials wins ->
      Sequential.Proportion { successes = float_of_int wins; trials })
    ~finalize:(fun ~trials wins -> float_of_int wins /. float_of_int trials)

let run_cleaning_game_adaptive ctx spec ~accesses ~target =
  await (submit_cleaning_game_adaptive ctx spec ~accesses ~target)

let submit_timing_stats_adaptive ?(lo = 0.) ?(hi = 40.) ?(bins = 80)
    (ctx : Run.ctx) spec ~target () =
  submit_adaptive_campaign ~ctx
    ~name:("timing-stats:" ^ Spec.name spec ^ ":adaptive")
    ~default_batch:timing_batch ~target
    ~shard:(timing_shard ~lo ~hi ~bins ctx spec) ~merge:timing_merge
    ~observe:(fun ~trials:_ (_, sum) -> Sequential.Mean_rel sum)
    ~finalize:(fun ~trials:_ r -> r)

let run_timing_stats_adaptive ?lo ?hi ?bins ctx spec ~target () =
  await (submit_timing_stats_adaptive ?lo ?hi ?bins ctx spec ~target ())

(* --- deprecated optional-tail wrappers ------------------------------- *)

let ctx_of ?jobs ?batch ~seed () =
  { Run.default with Run.seed; jobs; batch }

let evict_time ?jobs ?batch ~seed spec c =
  run_evict_time (ctx_of ?jobs ?batch ~seed ()) spec c

let prime_probe ?jobs ?batch ~seed spec c =
  run_prime_probe (ctx_of ?jobs ?batch ~seed ()) spec c

let collision ?jobs ?batch ~seed spec c =
  run_collision (ctx_of ?jobs ?batch ~seed ()) spec c

let flush_reload ?jobs ?batch ~seed spec c =
  run_flush_reload (ctx_of ?jobs ?batch ~seed ()) spec c

let cleaning_game ?jobs ?batch ~seed spec ~accesses ~samples =
  run_cleaning_game (ctx_of ?jobs ?batch ~seed ()) spec ~accesses ~samples

let timing_stats ?jobs ?batch ?lo ?hi ?bins ~seed spec ~trials () =
  run_timing_stats ?lo ?hi ?bins (ctx_of ?jobs ?batch ~seed ()) spec ~trials ()
