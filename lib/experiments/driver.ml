open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_runtime

(* Shard 0 reuses the experiment's root seed verbatim, so a run that fits
   in a single shard is bit-identical to the legacy monolithic serial
   loop (and to every result recorded before the trial-runtime refactor).
   Later shards draw well-separated seeds from the pure hash. *)
let shard_seed ~seed i = if i = 0 then seed else Rng.derive_seed seed i

let setup_for ~seed spec (b : Scheduler.batch) =
  Setup.make ~seed:(shard_seed ~seed b.Scheduler.index) spec

let fold_partials merge = function
  | [||] -> invalid_arg "Driver: empty batch plan"
  | parts ->
    let acc = ref parts.(0) in
    for i = 1 to Array.length parts - 1 do
      acc := merge !acc parts.(i)
    done;
    !acc

(* Per-attack shard sizes. They are properties of the *experiment
   definition*, never of the worker count: changing [jobs] must not
   change the batch plan, or determinism across job counts is lost.
   Sizes are chosen so a typical full-scale run yields enough batches to
   keep every core busy while a quick-scale run stays in one batch. *)
let evict_time_batch = 4096 (* also the attacker's base-rotation period *)
let prime_probe_batch = 256
let collision_batch = 8192
let flush_reload_batch = 256
let cleaning_batch = 250

let evict_time ?jobs ?(batch = evict_time_batch) ~seed spec
    (c : Evict_time.config) =
  let plan = Scheduler.plan ~total:c.Evict_time.trials ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let s = setup_for ~seed spec b in
    Evict_time.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~first:b.Scheduler.first ~count:b.Scheduler.count c
  in
  let merged =
    fold_partials Evict_time.merge_partial (Scheduler.map_array ?jobs shard plan)
  in
  Evict_time.finalize ~victim:(Setup.make ~seed spec).Setup.victim c merged

let prime_probe ?jobs ?(batch = prime_probe_batch) ~seed spec
    (c : Prime_probe.config) =
  let plan = Scheduler.plan ~total:c.Prime_probe.trials ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let s = setup_for ~seed spec b in
    Prime_probe.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  let merged =
    fold_partials Prime_probe.merge_partial (Scheduler.map_array ?jobs shard plan)
  in
  Prime_probe.finalize ~victim:(Setup.make ~seed spec).Setup.victim c merged

let collision ?jobs ?(batch = collision_batch) ~seed spec (c : Collision.config) =
  let plan = Scheduler.plan ~total:c.Collision.trials ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let s = setup_for ~seed spec b in
    Collision.run_span ~victim:s.Setup.victim ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  let merged =
    fold_partials Collision.merge_partial (Scheduler.map_array ?jobs shard plan)
  in
  Collision.finalize ~victim:(Setup.make ~seed spec).Setup.victim c merged

let flush_reload ?jobs ?(batch = flush_reload_batch) ~seed spec
    (c : Flush_reload.config) =
  let plan = Scheduler.plan ~total:c.Flush_reload.trials ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let s = setup_for ~seed spec b in
    Flush_reload.run_span ~victim:s.Setup.victim
      ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
      ~count:b.Scheduler.count c
  in
  let merged =
    fold_partials Flush_reload.merge_partial
      (Scheduler.map_array ?jobs shard plan)
  in
  Flush_reload.finalize ~victim:(Setup.make ~seed spec).Setup.victim c merged

(* --- pre-PAS cleaning game ------------------------------------------- *)

let cleaning_game ?jobs ?(batch = cleaning_batch) ~seed spec ~accesses ~samples =
  if samples <= 0 then invalid_arg "Driver.cleaning_game: samples must be positive";
  let plan = Scheduler.plan ~total:samples ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let rng = Rng.create ~seed:(shard_seed ~seed b.Scheduler.index) in
    Cleaner.count_wins spec ~accesses ~samples:b.Scheduler.count ~rng
  in
  let wins = Array.fold_left ( + ) 0 (Scheduler.map_array ?jobs shard plan) in
  float_of_int wins /. float_of_int samples

(* --- merged timing statistics ---------------------------------------- *)

let timing_stats ?jobs ?(batch = 512) ?(lo = 0.) ?(hi = 40.) ?(bins = 80) ~seed
    spec ~trials () =
  if trials <= 0 then invalid_arg "Driver.timing_stats: trials must be positive";
  let plan = Scheduler.plan ~total:trials ~batch_size:batch in
  let shard (b : Scheduler.batch) =
    let s = setup_for ~seed spec b in
    let h = Histogram.create ~lo ~hi ~bins in
    let sum = Summary.create () in
    for _ = 1 to b.Scheduler.count do
      let p = Victim.random_plaintext s.Setup.rng in
      let _, time = Victim.encrypt_timed s.Setup.victim p in
      let sigma = s.Setup.engine.Engine.sigma in
      let observed =
        if sigma = 0. then time
        else time +. Rng.gaussian s.Setup.rng ~mu:0. ~sigma
      in
      Histogram.add h observed;
      Summary.add sum observed
    done;
    (h, sum)
  in
  let parts = Scheduler.map_array ?jobs shard plan in
  fold_partials
    (fun (ha, sa) (hb, sb) -> (Histogram.merge ha hb, Summary.merge sa sb))
    parts
