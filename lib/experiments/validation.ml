open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report
open Cachesec_runtime
open Cachesec_telemetry

type cell = {
  arch : string;
  attack : Attack_type.t;
  pas : float;
  predicted_leak : bool;
  recovered : bool;
  separation : float;
  agrees : bool;
  note : string;
  trials : int;
  max_trials : int;
  ci_half_width : float;
}

type adaptive = { confidence : float; ci_width : float }

(* Explanations for the documented analytical-vs-simulated gaps. *)
let known_note spec attack =
  match (spec, attack) with
  | Spec.Nomo _, Attack_type.Evict_and_time ->
    "paper's Nomo PAS assumes the victim exceeds its reserved ways; the \
     5KB AES footprint fits in 2 ways/set, so the simulated Nomo protects"
  | Spec.Rf _, Attack_type.Evict_and_time ->
    "random fill keeps the tables un-warm, attenuating the timing \
     contrast that the PIFG counts from eviction success alone"
  | Spec.Rf _, Attack_type.Prime_and_probe ->
    "the RF window fill is mildly set-biased (3/129 vs 2/129 toward the \
     accessed line's set), so a many-trial prime-and-probe still recovers \
     the nibble; the paper's RF Type 2 PAS is likewise non-zero"
  | Spec.Noisy _, Attack_type.Cache_collision ->
    "whole-block dilution leaves a ~0.1-miss contrast; sigma=1 noise \
     pushes detection beyond this trial budget (more trials recover it)"
  | Spec.Noisy _, _ ->
    "sigma=1 noise lowers the per-trial signal; detection is borderline \
     at this trial budget"
  | _ -> ""

let lock_for spec =
  match spec with Spec.Pl _ -> true | _ -> false

(* Each cell fans its trials out over the trial runtime (Driver): the
   batch plan and per-batch seeds depend only on [(ctx.seed, ctx.quick)],
   so any [jobs] value yields the same cell — enforced by test_runtime.
   With an active telemetry context the cell is a span
   [validation:<arch>:<attack>] and the Driver campaigns nest under it.

   [submit_cell] is the non-blocking form: the cell span is opened and
   the attack campaign's shards dispatched onto the pool now; building
   the cell record (and closing its span) happens at [Driver.await].

   With [?adaptive] the cell's campaign runs through the Driver's
   run-to-confidence variants instead: same per-cell trial budget, but
   as the cap of a sequential-stopping target. [ci_width = 0.] never
   stops early — the campaign runs to cap on the adaptive batch plan,
   which is how the bench's fixed arm measures achieved widths on a
   plan identical to the adaptive arm's. *)
let target_for adaptive cap =
  match adaptive with
  | None -> None
  | Some { confidence; ci_width } ->
    Some
      (Sequential.target ~confidence
         ~min_trials:(Stdlib.max 1 (Stdlib.min 100 cap))
         ~half_width:ci_width ~max_trials:cap ())

(* Both arms reduce an attack result to the same tuple:
   (recovered, separation, trials executed, cap, achieved half-width).
   Fixed campaigns execute exactly their plan and measure no interval,
   so trials = cap and the width is [nan]. *)
let fixed_arm extract cap p =
  Driver.map_pending
    (fun r ->
      let recovered, separation = extract r in
      (recovered, separation, cap, cap, nan))
    p

let adaptive_arm extract p =
  Driver.map_pending
    (fun (a : _ Driver.adaptive) ->
      let recovered, separation = extract a.Driver.value in
      (recovered, separation, a.Driver.trials, a.Driver.cap, a.Driver.achieved))
    p

let submit_cell ?adaptive (ctx : Run.ctx) spec attack =
  let tm = ctx.Run.telemetry in
  let sp =
    Telemetry.span tm ~parent:ctx.Run.parent
      (Printf.sprintf "validation:%s:%s" (Spec.name spec)
         (Attack_type.short attack))
  in
  let ctx = Run.with_parent sp ctx in
  let t n = Figures.trials_for (Figures.scale_of ctx) n in
  match
    match attack with
    | Attack_type.Evict_and_time ->
      let cap = t 50000 in
      let c =
        {
          Evict_time.default_config with
          Evict_time.trials = cap;
          lock_victim_tables = lock_for spec;
        }
      in
      let ex r = (r.Evict_time.nibble_recovered, r.Evict_time.separation) in
      (match target_for adaptive cap with
      | None -> fixed_arm ex cap (Driver.submit_evict_time ctx spec c)
      | Some target ->
        adaptive_arm ex (Driver.submit_evict_time_adaptive ctx spec ~target c))
    | Attack_type.Prime_and_probe ->
      let cap = t 3000 in
      let c =
        {
          Prime_probe.default_config with
          Prime_probe.trials = cap;
          lock_victim_tables = lock_for spec;
        }
      in
      let ex r = (r.Prime_probe.nibble_recovered, r.Prime_probe.separation) in
      (match target_for adaptive cap with
      | None -> fixed_arm ex cap (Driver.submit_prime_probe ctx spec c)
      | Some target ->
        adaptive_arm ex (Driver.submit_prime_probe_adaptive ctx spec ~target c))
    | Attack_type.Cache_collision ->
      let cap = t 250000 in
      let c = { Collision.default_config with Collision.trials = cap } in
      let ex r = (r.Collision.nibble_recovered, r.Collision.separation) in
      (match target_for adaptive cap with
      | None -> fixed_arm ex cap (Driver.submit_collision ctx spec c)
      | Some target ->
        adaptive_arm ex (Driver.submit_collision_adaptive ctx spec ~target c))
    | Attack_type.Flush_and_reload ->
      let cap = t 3000 in
      let c = { Flush_reload.default_config with Flush_reload.trials = cap } in
      let ex r =
        (r.Flush_reload.nibble_recovered, r.Flush_reload.separation)
      in
      (match target_for adaptive cap with
      | None -> fixed_arm ex cap (Driver.submit_flush_reload ctx spec c)
      | Some target ->
        adaptive_arm ex
          (Driver.submit_flush_reload_adaptive ctx spec ~target c))
  with
  | exception e ->
    Telemetry.close_span tm sp;
    raise e
  | sub ->
    Driver.pending_of_thunk (fun () ->
        match Driver.await sub with
        | exception e ->
          Telemetry.close_span tm sp;
          raise e
        | recovered, separation, trials, max_trials, ci_half_width ->
          let pas = Attack_models.pas attack spec () in
          (* The paper's own Table 7 judgment: noise-based PAS reduction
             does not count as resilience (repetition defeats it). *)
          let predicted_leak =
            Resilience.classify spec attack = Resilience.Low
          in
          let agrees = predicted_leak = recovered in
          let c =
            {
              arch = Spec.display_name spec;
              attack;
              pas;
              predicted_leak;
              recovered;
              separation;
              agrees;
              note = (if agrees then "" else known_note spec attack);
              trials;
              max_trials;
              ci_half_width;
            }
          in
          Telemetry.close_span tm sp;
          c)

let cell ?adaptive ctx spec attack =
  Driver.await (submit_cell ?adaptive ctx spec attack)

(* The full 9x4 matrix. [pipeline:true] (the default) submits every
   cell's campaign before the first await, so shards from all 36 cells
   share the pool queue and workers never idle at one cell's join
   barrier; [pipeline:false] runs the cells strictly one after another
   (the pre-pool behaviour — and the sequential arm of the e2e bench).
   Both orders await/merge cell-by-cell in the same list order, so the
   result is bit-identical (enforced by test_runtime). *)
let cells ?(pipeline = true) ?policy ?adaptive (ctx : Run.ctx) =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent
    "validation-matrix"
  @@ fun sp ->
  let ctx = Run.with_parent sp ctx in
  let specs =
    match policy with
    | None -> Spec.all_paper
    | Some p -> List.map (fun spec -> Spec.with_policy spec p) Spec.all_paper
  in
  let combos =
    List.concat_map
      (fun spec -> List.map (fun attack -> (spec, attack)) Attack_type.all)
      specs
  in
  if pipeline then
    Driver.await_all
      (List.map
         (fun (spec, attack) -> submit_cell ?adaptive ctx spec attack)
         combos)
  else List.map (fun (spec, attack) -> cell ?adaptive ctx spec attack) combos

let total_trials cells =
  List.fold_left (fun acc c -> acc + c.trials) 0 cells

let total_caps cells =
  List.fold_left (fun acc c -> acc + c.max_trials) 0 cells

(* Non-finite widths are skipped, not just nan: a cell whose relative
   width is [infinity] (zero mean with spread) can never stop early and
   runs to cap in both bench arms, so it must not poison the
   matched-width target. *)
let worst_half_width cells =
  List.fold_left
    (fun acc c ->
      if Float.is_finite c.ci_half_width then Float.max acc c.ci_half_width
      else acc)
    0. cells

let agreement_rate cells =
  if cells = [] then nan
  else begin
    let ok = List.length (List.filter (fun c -> c.agrees) cells) in
    float_of_int ok /. float_of_int (List.length cells)
  end

let render cells =
  (* Adaptive columns appear only when at least one cell actually
     measured an interval, so fixed-matrix output is byte-identical to
     what it was before the adaptive runtime existed. *)
  let adaptive_run =
    List.exists (fun c -> not (Float.is_nan c.ci_half_width)) cells
  in
  let headers =
    [ "Cache"; "Attack"; "PAS"; "predicted"; "simulated"; "agree" ]
    @ (if adaptive_run then [ "trials"; "ci" ] else [])
    @ [ "note" ]
  in
  let rows =
    List.map
      (fun c ->
        [
          c.arch;
          Attack_type.short c.attack;
          Table.fmt_prob c.pas;
          (if c.predicted_leak then "leak" else "safe");
          (if c.recovered then "leak" else "safe");
          (if c.agrees then "yes" else "NO");
        ]
        @ (if adaptive_run then
             [
               Printf.sprintf "%d/%d" c.trials c.max_trials;
               (if Float.is_nan c.ci_half_width then "-"
                else Printf.sprintf "%.4f" c.ci_half_width);
             ]
           else [])
        @ [ c.note ])
      cells
  in
  let aligns =
    [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
      Table.Right ]
    @ (if adaptive_run then [ Table.Right; Table.Right ] else [])
    @ [ Table.Left ]
  in
  "Validation matrix: PIFG prediction vs simulated attack outcome\n"
  ^ Table.render ~aligns ~headers ~rows ()
  ^ Printf.sprintf "agreement: %.0f%%\n" (100. *. agreement_rate cells)
  ^
  if adaptive_run then
    Printf.sprintf "adaptive: %d of %d trials (%.1fx saved), worst ci %.4f\n"
      (total_trials cells) (total_caps cells)
      (float_of_int (total_caps cells)
      /. Float.max 1. (float_of_int (total_trials cells)))
      (worst_half_width cells)
  else ""

(* --- deprecated optional-tail wrappers ------------------------------- *)

let ctx_of ?(scale = Figures.Full) ?(seed = 42) ?jobs () =
  let ctx = { Run.default with Run.seed; jobs } in
  if scale = Figures.Quick then Run.quick ctx else ctx

let run_cell ?scale ?seed ?jobs spec attack =
  cell (ctx_of ?scale ?seed ?jobs ()) spec attack

let matrix ?scale ?seed ?jobs () = cells (ctx_of ?scale ?seed ?jobs ())
