(** Sample complexity: how many trials an attacker needs before the key
    nibble is reliably recovered, as a function of the cache's PAS — the
    operational meaning of "PAS close to 0 is resilient". A flush-and-
    reload campaign is repeated over several seeds for a grid of trial
    counts; the curve reports the recovery frequency. Lower PAS shifts
    the curve right (more trials needed); PAS = 0 never recovers. *)

open Cachesec_runtime

type curve = {
  arch : string;
  pas_type4 : float;
  points : (int * float) list;  (** (trials, recovery frequency) *)
}

(** {1 Primary ctx-first API} *)

val curve : ?seeds:int -> ?grid:int list -> Run.ctx -> Cachesec_cache.Spec.t -> curve
(** Defaults: 8 seeds, trials grid [50; 100; ...; 3200]. The
    (trials x seed) campaigns fan out over the Domain-parallel trial
    runtime under a span [learning-curve:<cache>]; the curve is
    independent of [ctx.jobs] (each campaign keeps its legacy
    per-instance [ctx.seed + 1000 i] seed). *)

val standard_specs : Cachesec_cache.Spec.t list
(** SA (PAS 1.0), RE (0.9998), Noisy (0.691), RF (7.75e-3),
    Newcache (0). *)

val curves : ?seeds:int -> Run.ctx -> curve list
(** One {!curve} per {!standard_specs}, under one [learning-curves]
    span. *)

val render : curve list -> string
val csv_rows : curve list -> string list list

(** {1 Deprecated optional-tail wrappers}

    Historical default seed 61; [?jobs] follows
    {!Cachesec_runtime.Scheduler.resolve_jobs}. *)

val run_curve :
  ?seed:int ->
  ?seeds:int ->
  ?jobs:int ->
  ?grid:int list ->
  Cachesec_cache.Spec.t ->
  curve
[@@alert deprecated "use curve with a Run.ctx"]

val table : ?seed:int -> ?seeds:int -> ?jobs:int -> unit -> curve list
[@@alert deprecated "use curves with a Run.ctx"]
