(** The trial runtime's experiments-side driver.

    Every Monte-Carlo experiment in this layer is expressed as a batch
    plan over the trial index space ({!Cachesec_runtime.Scheduler.plan}):
    each batch builds its own fully independent world — a fresh
    {!Setup.t} (engine, victim, RNG) seeded from the pure hash
    {!Cachesec_runtime.Run.seed_for_batch} — runs the attack's
    [run_span] over its slice, and the mergeable partials are folded
    back together in batch order. Because the plan and the seeds depend
    only on the experiment definition (never on [jobs]), running with
    [jobs:1] and [jobs:n] produces bit-identical results; [jobs] buys
    wall-clock only.

    The primary API is ctx-first ([run_*]): one
    {!Cachesec_runtime.Run.ctx} carries seed, worker count, batch
    override and telemetry. With an active telemetry context each
    campaign is wrapped in a span (nested under [ctx.parent], carrying a
    [trials] gauge), the scheduler emits per-batch and per-domain
    events under it, and the engines' {!Cachesec_cache.Counters} are
    sampled into telemetry counters once per finished batch — the
    per-access hot path is never instrumented.

    Since the pool refactor every campaign also comes in a non-blocking
    [submit_*] form returning an ['a pending]: the campaign's span is
    opened and its shard tasks dispatched onto the persistent
    {!Cachesec_runtime.Pool} immediately, while the batch-order merge,
    driver counters and finalize run at {!await}. Submitting several
    campaigns before the first await pipelines them — their shards share
    the one pool queue, so workers never idle at a campaign's join
    barrier while another campaign has runnable shards. Results are
    bit-identical between sequential and pipelined execution (merges are
    deferred, never reordered); with [jobs <= 1] a [submit_*] runs
    eagerly and pipelining degrades to the sequential order.

    The old [?jobs ?batch ~seed] optional tails survive as thin
    deprecated wrappers. *)

open Cachesec_cache
open Cachesec_attacks
open Cachesec_stats
open Cachesec_runtime

(** {1 Pending campaigns} *)

type 'a pending
(** A submitted campaign whose merge/finalize has not run yet. Join with
    {!await} (memoizing: a second await returns the cached value or
    re-raises the cached failure). *)

val await : 'a pending -> 'a
(** Block until the campaign's shards finished, fold the partials in
    batch order, record driver counters, finalize and close the
    campaign's span. Re-raises the first shard failure with its
    backtrace. Must be called from outside the pool. *)

val await_all : 'a pending list -> 'a list
(** [List.map await] — join in list (i.e. submission) order. *)

val pending_value : 'a -> 'a pending
(** An already-available result, for mixing computed-inline values into
    a pending pipeline. *)

val pending_of_thunk : (unit -> 'a) -> 'a pending
(** Defer arbitrary join logic (run once, memoized) — used by layers
    that need to close their own telemetry spans around an inner
    {!await}. *)

val map_pending : ('a -> 'b) -> 'a pending -> 'b pending
(** Post-process a campaign's result at await time (e.g. wrap a raw
    attack result into a report cell) without forcing the join now. *)

(** {1 Primary ctx-first API}

    Each experiment has a blocking [run_*] ≡ [await ∘ submit_*]. *)

val submit_evict_time :
  Run.ctx -> Spec.t -> Evict_time.config -> Evict_time.result pending

val submit_prime_probe :
  Run.ctx -> Spec.t -> Prime_probe.config -> Prime_probe.result pending

val submit_collision :
  Run.ctx -> Spec.t -> Collision.config -> Collision.result pending

val submit_flush_reload :
  Run.ctx -> Spec.t -> Flush_reload.config -> Flush_reload.result pending

val submit_cleaning_game :
  Run.ctx -> Spec.t -> accesses:int -> samples:int -> float pending

val submit_timing_stats :
  ?lo:float -> ?hi:float -> ?bins:int -> Run.ctx -> Spec.t -> trials:int ->
  unit -> (Histogram.t * Summary.t) pending

val run_evict_time :
  Run.ctx -> Spec.t -> Evict_time.config -> Evict_time.result

val run_prime_probe :
  Run.ctx -> Spec.t -> Prime_probe.config -> Prime_probe.result

val run_collision : Run.ctx -> Spec.t -> Collision.config -> Collision.result

val run_flush_reload :
  Run.ctx -> Spec.t -> Flush_reload.config -> Flush_reload.result

val run_cleaning_game :
  Run.ctx -> Spec.t -> accesses:int -> samples:int -> float
(** Sharded {!Cleaner.monte_carlo}: fraction of cleaning-game wins over
    [samples] independent games of [accesses] attacker reads. *)

val run_timing_stats :
  ?lo:float -> ?hi:float -> ?bins:int -> Run.ctx -> Spec.t -> trials:int ->
  unit -> Histogram.t * Summary.t
(** Distribution of observed whole-encryption times over random
    plaintexts (the simulated counterpart of the paper's hit/miss timing
    separation): per-batch histograms and summaries merged with
    {!Histogram.merge} / {!Summary.merge}. *)

(** {1 Adaptive (run-to-confidence) campaigns}

    Each adaptive variant executes the same batch plan as a fixed
    campaign capped at [target.max_trials], but partitioned into
    deterministic geometrically-growing rounds
    ({!Cachesec_runtime.Adaptive}): after each round the cumulative
    batch-order merge is handed to the attack's estimator hook
    ([observe]) and {!Cachesec_stats.Sequential.decide} chooses between
    stopping and dispatching the next round. The decision is a function
    of [(seed, round plan, merged estimate)] only — never of [jobs] —
    so adaptive runs keep the jobs:1 ≡ jobs:N and sequential ≡
    pipelined bit-identity of the fixed paths.

    Adaptive campaigns default to a finer batch size
    ([min default_batch (ceil (cap / 8))]) so quick-scale caps contain
    several round boundaries; [ctx.batch] still overrides it. The
    attack config's own [trials] field is ignored — the cap is
    [target.max_trials].

    Telemetry: the campaign span carries a [trials_cap] gauge at submit
    and a [trials] gauge (actual executed, post-early-stop) at await;
    [driver.trials] counts actual trials and [driver.trials_saved]
    counts [cap - actual]. *)

type 'a adaptive = {
  value : 'a;  (** the finalized result, over the trials that ran *)
  trials : int;  (** trials actually executed *)
  cap : int;  (** [target.max_trials] *)
  rounds : int;  (** rounds executed *)
  stopped_early : bool;  (** true iff the stopping rule fired below cap *)
  achieved : float;
      (** the final merged estimate's CI half-width at
          [target.confidence] (absolute for proportion estimators,
          relative for mean estimators — see
          {!Cachesec_stats.Sequential.achieved}) *)
}

val submit_evict_time_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Evict_time.config ->
  Evict_time.result adaptive pending
(** Stops on the mean observed encryption time ({!Evict_time.observe},
    relative half-width). *)

val submit_prime_probe_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Prime_probe.config ->
  Prime_probe.result adaptive pending
(** Stops on the best candidate's per-trial hit rate
    ({!Prime_probe.observe}, Wilson half-width). *)

val submit_collision_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Collision.config ->
  Collision.result adaptive pending

val submit_flush_reload_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Flush_reload.config ->
  Flush_reload.result adaptive pending

val submit_cleaning_game_adaptive :
  Run.ctx -> Spec.t -> accesses:int -> target:Sequential.target ->
  float adaptive pending
(** Stops on the win rate's Wilson half-width; the cap replaces the
    fixed [samples] argument. *)

val submit_timing_stats_adaptive :
  ?lo:float -> ?hi:float -> ?bins:int -> Run.ctx -> Spec.t ->
  target:Sequential.target -> unit ->
  (Histogram.t * Summary.t) adaptive pending
(** Stops on the merged summary's relative mean half-width. *)

val run_evict_time_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Evict_time.config ->
  Evict_time.result adaptive

val run_prime_probe_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Prime_probe.config ->
  Prime_probe.result adaptive

val run_collision_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Collision.config ->
  Collision.result adaptive

val run_flush_reload_adaptive :
  Run.ctx -> Spec.t -> target:Sequential.target -> Flush_reload.config ->
  Flush_reload.result adaptive

val run_cleaning_game_adaptive :
  Run.ctx -> Spec.t -> accesses:int -> target:Sequential.target ->
  float adaptive

val run_timing_stats_adaptive :
  ?lo:float -> ?hi:float -> ?bins:int -> Run.ctx -> Spec.t ->
  target:Sequential.target -> unit -> (Histogram.t * Summary.t) adaptive

(** {1 Deprecated optional-tail wrappers}

    Bit-identical to the ctx API for equal [(seed, batch, jobs)] —
    enforced by [test_runtime]'s old-vs-new equivalence cases. *)

val shard_seed : seed:int -> int -> int
[@@alert deprecated "use Cachesec_runtime.Run.seed_for_batch"]
(** Alias of {!Cachesec_runtime.Run.seed_for_batch}, the single point of
    batch-seed derivation. *)

val evict_time :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Evict_time.config ->
  Evict_time.result
[@@alert deprecated "use run_evict_time with a Run.ctx"]

val prime_probe :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Prime_probe.config ->
  Prime_probe.result
[@@alert deprecated "use run_prime_probe with a Run.ctx"]

val collision :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Collision.config ->
  Collision.result
[@@alert deprecated "use run_collision with a Run.ctx"]

val flush_reload :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Flush_reload.config ->
  Flush_reload.result
[@@alert deprecated "use run_flush_reload with a Run.ctx"]

val cleaning_game :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> accesses:int ->
  samples:int -> float
[@@alert deprecated "use run_cleaning_game with a Run.ctx"]

val timing_stats :
  ?jobs:int -> ?batch:int -> ?lo:float -> ?hi:float -> ?bins:int ->
  seed:int -> Spec.t -> trials:int -> unit -> Histogram.t * Summary.t
[@@alert deprecated "use run_timing_stats with a Run.ctx"]
