(** The trial runtime's experiments-side driver.

    Every Monte-Carlo experiment in this layer is expressed as a batch
    plan over the trial index space ({!Cachesec_runtime.Scheduler.plan}):
    each batch builds its own fully independent world — a fresh
    {!Setup.t} (engine, victim, RNG) seeded from the pure hash
    [Rng.derive_seed seed batch_index] — runs the attack's [run_span]
    over its slice, and the mergeable partials are folded back together
    in batch order. Because the plan and the seeds depend only on the
    experiment definition (never on [jobs]), running with [jobs:1] and
    [jobs:n] produces bit-identical results; [jobs] buys wall-clock
    only.

    [?jobs] everywhere follows
    {!Cachesec_runtime.Scheduler.resolve_jobs}: absent = serial, [0] =
    auto ([Domain.recommended_domain_count]), [n > 0] = exactly [n]
    Domains. *)

open Cachesec_cache
open Cachesec_attacks
open Cachesec_stats

val shard_seed : seed:int -> int -> int
(** Seed of shard [i]: the root [seed] itself for shard 0 (keeping
    single-batch runs bit-identical to the legacy serial loops), a
    derived seed otherwise. *)

val evict_time :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Evict_time.config ->
  Evict_time.result

val prime_probe :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Prime_probe.config ->
  Prime_probe.result

val collision :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Collision.config ->
  Collision.result

val flush_reload :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> Flush_reload.config ->
  Flush_reload.result

val cleaning_game :
  ?jobs:int -> ?batch:int -> seed:int -> Spec.t -> accesses:int ->
  samples:int -> float
(** Sharded {!Cleaner.monte_carlo}: fraction of cleaning-game wins over
    [samples] independent games of [accesses] attacker reads. *)

val timing_stats :
  ?jobs:int -> ?batch:int -> ?lo:float -> ?hi:float -> ?bins:int ->
  seed:int -> Spec.t -> trials:int -> unit -> Histogram.t * Summary.t
(** Distribution of observed whole-encryption times over random
    plaintexts (the simulated counterpart of the paper's hit/miss timing
    separation): per-batch histograms and summaries merged with
    {!Histogram.merge} / {!Summary.merge}. *)
