(** Ablation sweeps over the design parameters DESIGN.md calls out:
    the RF window, the RE eviction interval, the noisy cache's sigma and
    Nomo's reservation. Each sweep reports the analytical PIFG prediction
    next to a simulated attack outcome.

    Every sweep fans its trials out over the Domain-parallel trial
    runtime and is wrapped in a telemetry span [ablation:<sweep>]; the
    rendered tables are independent of [ctx.jobs]. *)

open Cachesec_runtime

(** {1 Primary ctx-first API} *)

val render_rf_window : Run.ctx -> string
(** Cache-collision attack vs the random-fill window size: the paper's
    p0 = 1/(Wa+Wb+1) against recovery of the key-byte XOR. *)

val render_re_interval : Run.ctx -> string
(** Cache-collision attack vs the random-eviction interval: p4 =
    1 - 1/(N T). *)

val render_noise_sigma : Run.ctx -> string
(** Evict-and-time vs sigma: p5 = Phi(1/(2 sigma)), the trials an
    averaging attacker needs, and the empirical outcome. *)

val render_nomo_reserved : Run.ctx -> string
(** Evict-and-time vs Nomo's reserved ways: protection appears exactly
    when the victim's per-set footprint fits the reservation. *)

val render_replacement_policy : Run.ctx -> string
(** Evict-and-time under LRU vs random vs FIFO: deterministic policies
    make the eviction stage certain, which is why the paper evaluates
    with random replacement. *)

val render : Run.ctx -> string
(** All five sweeps. Each sweep keeps its historical default seed
    (11..15) so the combined report is bit-identical to the deprecated
    [all] with no [?seed]; [ctx] still supplies scale, jobs and
    telemetry. *)

(** {1 Deprecated optional-tail wrappers}

    [?jobs] follows {!Cachesec_runtime.Scheduler.resolve_jobs} (absent =
    serial, [0] = auto). *)

val rf_window : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_rf_window with a Run.ctx"]

val re_interval : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_re_interval with a Run.ctx"]

val noise_sigma : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_noise_sigma with a Run.ctx"]

val nomo_reserved : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_nomo_reserved with a Run.ctx"]

val replacement_policy :
  ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_replacement_policy with a Run.ctx"]

val all : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render with a Run.ctx"]
