(** Ablation sweeps over the design parameters DESIGN.md calls out:
    the RF window, the RE eviction interval, the noisy cache's sigma and
    Nomo's reservation. Each sweep reports the analytical PIFG prediction
    next to a simulated attack outcome.

    Every sweep fans its trials out over the Domain-parallel trial
    runtime; [?jobs] follows {!Cachesec_runtime.Scheduler.resolve_jobs}
    (absent = serial, [0] = auto) and the rendered tables are
    independent of it. *)

val rf_window : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
(** Cache-collision attack vs the random-fill window size: the paper's
    p0 = 1/(Wa+Wb+1) against recovery of the key-byte XOR. *)

val re_interval : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
(** Cache-collision attack vs the random-eviction interval: p4 =
    1 - 1/(N T). *)

val noise_sigma : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
(** Evict-and-time vs sigma: p5 = Phi(1/(2 sigma)), the trials an
    averaging attacker needs, and the empirical outcome. *)

val nomo_reserved : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
(** Evict-and-time vs Nomo's reserved ways: protection appears exactly
    when the victim's per-set footprint fits the reservation. *)

val replacement_policy : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
(** Evict-and-time under LRU vs random vs FIFO: deterministic policies
    make the eviction stage certain, which is why the paper evaluates
    with random replacement. *)

val all : ?scale:Figures.scale -> ?seed:int -> ?jobs:int -> unit -> string
