(** Rendered reproductions of the paper's figures.

    Figures 4 and 8 are analytical curves; Figures 9 and 10 are
    validation experiments that run the actual attacks against the cache
    simulator (the substitute for the simulation studies the paper cites
    in Section 6).

    The experimental figures come in two flavours: ctx-first primaries
    ([render_*]) that take one {!Cachesec_runtime.Run.ctx} (seed, jobs,
    telemetry, quick-scale), and thin deprecated wrappers with the old
    optional tails. Each [render_*] wraps its work in a telemetry span
    named after the figure, nested under [ctx.parent]. *)

open Cachesec_runtime

type scale = Quick | Full
(** Quick keeps trial counts small enough for the test suite; Full is
    what the bench harness uses. *)

val trials_for : scale -> int -> int
(** [trials_for Quick n] divides [n] by 10 (min 50). *)

val scale_of : Run.ctx -> scale
(** [Quick] iff [ctx.quick]. *)

val figure4 : unit -> string
(** p5 (attacker's per-observation success probability) vs noise sigma. *)

val figure8 : ?policy:Cachesec_cache.Replacement.policy -> unit -> string
(** Analytical pre-PAS vs attacker accesses k for the paper's cache
    set: 8/32-way SA-RP-RF, RE, Nomo, Newcache, SP/PL. Default policy
    is the paper's random replacement; [policy] rebinds every spec via
    {!Cachesec_cache.Spec.with_policy}. *)

val figure8_series : ks:int list -> (string * (int * float) list) list
(** The data behind {!figure8} (exposed for CSV export and tests). *)

(** {1 Primary ctx-first API} *)

val render_figure9 : ?pipeline:bool -> Run.ctx -> string
(** Evict-and-time validation on the conventional SA cache vs Newcache:
    average encryption time per plaintext-byte value (flat = no leak).
    Trials are sharded over the Domain-parallel trial runtime; the
    rendered figure is independent of [ctx.jobs]. [pipeline] (default
    [true]) submits both campaigns onto the pool before the first await;
    [false] runs them strictly sequentially. The render is bit-identical
    either way. *)

val render_figure10 : ?pipeline:bool -> Run.ctx -> string
(** Prime-and-probe validation across six caches (SA, SP, PL, Newcache,
    RP, RE): normalised candidate-key score profiles. [?pipeline] as in
    {!render_figure9}, over all six campaigns. *)

val render_prepas_crosscheck : Run.ctx -> string
(** Closed-form pre-PAS vs Monte-Carlo cleaning game, per architecture,
    with the documented RP deviation called out. Each (cache, k) cell
    runs its sample budget through the trial runtime under a seed
    derived from [ctx.seed]; all 40 cells' campaigns are submitted onto
    the pool before the first await. *)

(** {1 Deprecated optional-tail wrappers} *)

val figure9 : ?scale:scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_figure9 with a Run.ctx"]

val figure10 : ?scale:scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_figure10 with a Run.ctx"]

val prepas_crosscheck : ?scale:scale -> ?seed:int -> ?jobs:int -> unit -> string
[@@alert deprecated "use render_prepas_crosscheck with a Run.ctx"]
