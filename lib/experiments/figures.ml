open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report

open Cachesec_runtime
open Cachesec_telemetry

type scale = Quick | Full

let trials_for scale n =
  match scale with Full -> n | Quick -> Stdlib.max 50 (n / 10)

let scale_of (ctx : Run.ctx) = if ctx.Run.quick then Quick else Full

(* Deprecated-wrapper plumbing: lift an old [?scale ?seed ?jobs] tail
   into a ctx. *)
let ctx_of ?(scale = Full) ~seed ?jobs () =
  let ctx = { Run.default with Run.seed; jobs } in
  if scale = Quick then Run.quick ctx else ctx

let figure4 () =
  let sigmas = List.init 31 (fun i -> float_of_int i /. 10.) in
  let series =
    [
      {
        Plot.name = "p5 = P(attacker classifies correctly)";
        points = List.map (fun (s, p) -> (s, p)) (Noise.figure4_series ~sigmas);
      };
    ]
  in
  "Figure 4: observation-noise edge probability p5 vs sigma\n"
  ^ Plot.render ~x_label:"noise sigma (hit/miss gap = 1)" ~y_min:0.5 ~y_max:1.0
      series
  ^ Printf.sprintf "  at the paper's sigma = 1: p5 = %.3f (paper: 0.691)\n"
      (Noise.p5 ~sigma:1.)

let figure8_specs =
  [
    ("SA/RP/RF 8-way", Spec.Sa { ways = 8; policy = Replacement.Random });
    ("SA/RP/RF 32-way", Spec.Sa { ways = 32; policy = Replacement.Random });
    ("RE 8-way T=10", Spec.Re { ways = 8; policy = Replacement.Random; interval = 10 });
    ("Nomo 8-way 1/4", Spec.Nomo { ways = 8; policy = Replacement.Random; reserved = 2 });
    ("Newcache", Spec.paper_newcache);
    ("SP / PL (locked)", Spec.paper_sp);
  ]

let figure8_series ~ks = Prepas.figure8_series ~specs:figure8_specs ~ks

let figure8 ?policy () =
  let ks = List.init 25 (fun i -> i * 5) in
  let specs, policy_label =
    match policy with
    | None -> (figure8_specs, "random replacement")
    | Some p ->
      ( List.map
          (fun (name, spec) -> (name, Spec.with_policy spec p))
          figure8_specs,
        Replacement.policy_to_string p ^ " replacement" )
  in
  let series =
    List.map
      (fun (name, pts) ->
        {
          Plot.name;
          points = List.map (fun (k, p) -> (float_of_int k, p)) pts;
        })
      (Prepas.figure8_series ~specs ~ks)
  in
  Printf.sprintf "Figure 8: pre-PAS vs attacker accesses k (%s)\n" policy_label
  ^ Plot.render ~x_label:"attacker memory accesses k" ~y_min:0. ~y_max:1. series

(* Downsample a 256-point curve for terminal display. *)
let curve_of_times times =
  Array.to_list (Array.mapi (fun i t -> (float_of_int i, t)) times)

(* Figures 9 and 10 follow the same submit-all-then-await shape as the
   validation matrix: with [pipeline:true] (default) every campaign's
   shards are dispatched onto the pool before the first result is
   awaited; [pipeline:false] is the strictly sequential pre-pool order
   (the sequential arm of the e2e bench). Renders are bit-identical
   either way — awaits happen in the same list order. *)
let render_figure9 ?(pipeline = true) (ctx : Run.ctx) =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent "figure9"
  @@ fun sp ->
  let ctx = Run.with_parent sp ctx in
  let submit spec =
    let config =
      {
        Evict_time.default_config with
        Evict_time.trials = trials_for (scale_of ctx) 50000;
      }
    in
    Driver.map_pending (fun r -> (spec, r)) (Driver.submit_evict_time ctx spec config)
  in
  let run spec = Driver.await (submit spec) in
  let render (spec, (r : Evict_time.result)) =
    let plot =
      Plot.render ~height:12
        ~x_label:"plaintext byte value (target byte 0)"
        [ { Plot.name = Spec.display_name spec; points = curve_of_times r.avg_times } ]
    in
    Printf.sprintf
      "%s\n%s  key byte high nibble recovered: %b (winner 0x%02x, true 0x%02x, \
       z = %.1f)\n"
      (Spec.display_name spec)
      plot r.nibble_recovered r.best_candidate r.true_byte r.separation
  in
  let sa, nc =
    if pipeline then begin
      let psa = submit Spec.paper_sa in
      let pnc = submit Spec.paper_newcache in
      (Driver.await psa, Driver.await pnc)
    end
    else begin
      let sa = run Spec.paper_sa in
      let nc = run Spec.paper_newcache in
      (sa, nc)
    end
  in
  "Figure 9: evict-and-time validation, SA cache (leaks) vs Newcache (flat)\n\n"
  ^ render sa ^ "\n" ^ render nc

let figure10_specs =
  [
    Spec.paper_sa;
    Spec.paper_sp;
    Spec.paper_pl;
    Spec.paper_newcache;
    Spec.paper_rp;
    Spec.paper_re;
  ]

let render_figure10 ?(pipeline = true) (ctx : Run.ctx) =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent "figure10"
  @@ fun sp ->
  let ctx = Run.with_parent sp ctx in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 10: prime-and-probe validation across six caches\n\
     (normalised candidate-key scores; a spike at the true byte's nibble = leak)\n\n";
  let submit spec =
    let config =
      {
        Prime_probe.default_config with
        Prime_probe.trials = trials_for (scale_of ctx) 1500;
        lock_victim_tables = (match spec with Spec.Pl _ -> true | _ -> false);
      }
    in
    Driver.submit_prime_probe ctx spec config
  in
  let emit spec (r : Prime_probe.result) =
    let normalized = Recovery.normalize r.Prime_probe.scores in
    Buffer.add_string buf
      (Printf.sprintf "%s\n%s  nibble recovered: %b (winner 0x%02x, true 0x%02x)\n\n"
         (Spec.display_name spec)
         (Plot.render ~height:10 ~x_label:"key byte candidate"
            [ { Plot.name = Spec.display_name spec; points = curve_of_times normalized } ])
         r.Prime_probe.nibble_recovered r.Prime_probe.best_candidate
         r.Prime_probe.true_byte)
  in
  (if pipeline then begin
     let subs = List.map (fun spec -> (spec, submit spec)) figure10_specs in
     List.iter (fun (spec, sub) -> emit spec (Driver.await sub)) subs
   end
   else
     List.iter (fun spec -> emit spec (Driver.await (submit spec)))
       figure10_specs);
  Buffer.contents buf

let render_prepas_crosscheck (ctx : Run.ctx) =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent
    "prepas-crosscheck"
  @@ fun sp ->
  let ctx = Run.with_parent sp ctx in
  let seed = ctx.Run.seed in
  let samples = trials_for (scale_of ctx) 2000 in
  let ks = [ 4; 8; 16; 32; 64 ] in
  let specs =
    [
      Spec.paper_sa;
      Spec.paper_sp;
      Spec.paper_pl;
      Spec.paper_nomo;
      Spec.paper_newcache;
      Spec.paper_rp;
      Spec.paper_rf;
      Spec.Re { ways = 8; policy = Replacement.Random; interval = 10 };
    ]
  in
  let headers = "Cache" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks in
  let nks = List.length ks in
  (* Every (spec, k) cell is an independent Monte-Carlo surface: it gets
     its own derived seed and fans its samples out over the trial
     runtime, so the whole cross-check is reproducible cell-by-cell and
     jobs-invariant. All 40 cleaning-game campaigns are submitted onto
     the pool before the first await — the cell seeds are derived from
     [(seed, si, ki)] exactly as in the sequential formulation, so the
     table is unchanged, only the wall-clock. *)
  let pending_rows =
    List.mapi
      (fun si spec ->
        let analytical =
          List.map (fun k -> Table.fmt_prob (Prepas.for_spec spec ~k)) ks
        in
        let empirical =
          List.mapi
            (fun ki k ->
              let cell_seed = Rng.derive_seed seed ((si * nks) + ki + 1) in
              Driver.map_pending Table.fmt_prob
                (Driver.submit_cleaning_game (Run.with_seed cell_seed ctx)
                   spec ~accesses:k ~samples))
            ks
        in
        (spec, analytical, empirical))
      specs
  in
  let rows =
    List.concat
      (List.map
         (fun (spec, analytical, empirical) ->
           [
             (Spec.display_name spec ^ " (closed form)") :: analytical;
             (Spec.display_name spec ^ " (Monte Carlo)")
             :: Driver.await_all empirical;
           ])
         pending_rows)
  in
  "Pre-PAS: closed form (paper Section 5) vs Monte-Carlo cleaning game\n\
   (RE shown 8-way to exhibit the free-lunch effect; RP's Monte Carlo is \n\
   lower than the closed form by design - see DESIGN.md)\n"
  ^ Table.render ~headers ~rows ()

(* --- deprecated optional-tail wrappers ------------------------------- *)

let figure9 ?scale ?(seed = 42) ?jobs () =
  render_figure9 (ctx_of ?scale ~seed ?jobs ())

let figure10 ?scale ?(seed = 42) ?jobs () =
  render_figure10 (ctx_of ?scale ~seed ?jobs ())

let prepas_crosscheck ?scale ?(seed = 7) ?jobs () =
  render_prepas_crosscheck (ctx_of ?scale ~seed ?jobs ())
