(** Rendered reproductions of the paper's Tables 3, 5, 6 and 7. *)

val table3 : unit -> string
(** Edge probabilities and PAS of evict-and-time for the nine caches. *)

val table5 : unit -> string
(** Same for the cache-collision attack. *)

val table6 : unit -> string
(** PAS of all four attack types, with the paper's printed value beside
    each computed value. *)

val table7 : unit -> string
(** Resilience classification, computed vs paper. *)

val table6_csv_rows : unit -> string list list
(** arch, type, computed PAS, paper PAS — for CSV export. *)

val table6_alt_geometry : unit -> string
(** The same PAS computation at a 16 KB / 4-way design point — the
    model's parametric generality. *)

val policy_resilience :
  ?threshold:float ->
  ?specs:Cachesec_cache.Spec.t list ->
  ?policies:Cachesec_cache.Replacement.policy list ->
  unit ->
  string
(** The policy x attack x architecture refinement of Table 7
    ({!Cachesec_analysis.Resilience.policy_matrix}): one row per
    (architecture, policy), effective PAS and verdict per attack type,
    the k -> infinity cleaning limit and the worst-case absorbed
    information per observation. *)

val policy_resilience_csv_rows : unit -> string list list
(** arch, policy, attack, pas, limit, effective, bits, verdict — for
    CSV export. *)

val all : unit -> string
(** All four tables concatenated with headers. *)
