open Cachesec_stats
open Cachesec_cache
open Cachesec_crypto
open Cachesec_attacks

type t = {
  spec : Spec.t;
  engine : Engine.t;
  victim : Victim.t;
  attacker_pid : int;
  rng : Rng.t;
}

let default_key_hex = "2b7e151628aed2a6abf7158809cf4f3c"

let make ?(seed = 42) ?(key_hex = default_key_hex) ?kernel spec =
  let root = Rng.create ~seed in
  let cache_rng = Rng.split root in
  let experiment_rng = Rng.split root in
  (* The victim-owned line ranges depend only on the layout geometry,
     which is fixed before the engine exists. *)
  let provisional_layout = Aes_layout.create Config.standard in
  let scenario =
    {
      Factory.victim_pid = 0;
      victim_lines = Aes_layout.line_ranges provisional_layout;
    }
  in
  let engine = Factory.build ?kernel spec scenario ~rng:cache_rng in
  let layout = Aes_layout.create engine.Engine.config in
  let victim =
    Victim.create ~engine ~pid:0 ~key:(Aes.key_of_hex key_hex) ~layout
  in
  { spec; engine; victim; attacker_pid = 1; rng = experiment_rng }
