open Cachesec_stats
open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report

type row = { arch : string; svf : float; pas_type2 : float }

let run_row ?(seed = 47) ?(intervals = 80) spec =
  let s = Setup.make ~seed spec in
  let engine = s.Setup.engine in
  let layout = Victim.layout s.Setup.victim in
  let sets = Config.sets engine.Engine.config in
  let rng = s.Setup.rng in
  (* PL's intended use, as everywhere else: prefetch-and-lock. *)
  (match spec with
  | Spec.Pl _ -> ignore (Victim.lock_tables s.Setup.victim)
  | _ -> ());
  (* One secret line and one probe-miss vector per interval. *)
  let secrets = Array.make intervals 0 in
  let observations = Array.make intervals [||] in
  (* One precompiled probe plan for the whole run: per-interval priming
     and probing reuse its line array and scratch (same access and RNG
     order as the historical probe_all_sets path). *)
  let plan = Probe_plan.make engine ~pid:s.Setup.attacker_pid in
  for t = 0 to intervals - 1 do
    Probe_plan.prime_all plan;
    let index = Rng.int rng 256 in
    secrets.(t) <- index / Aes_layout.entries_per_line layout;
    ignore
      (engine.Engine.access ~pid:0
         (Aes_layout.line_of_entry layout ~table:0 ~index));
    Probe_plan.probe_all plan rng;
    observations.(t) <-
      Array.init sets (fun set ->
          float_of_int (Probe_plan.classified_misses plan set))
  done;
  (* Pairwise similarities. *)
  let pairs = intervals * (intervals - 1) / 2 in
  let oracle = Array.make pairs 0. in
  let observed = Array.make pairs 0. in
  let k = ref 0 in
  for i = 0 to intervals - 1 do
    for j = i + 1 to intervals - 1 do
      oracle.(!k) <- (if secrets.(i) = secrets.(j) then 1. else 0.);
      let c = Correlation.pearson observations.(i) observations.(j) in
      observed.(!k) <- (if Float.is_nan c then 0. else c);
      incr k
    done
  done;
  let svf =
    let c = Correlation.pearson oracle observed in
    if Float.is_nan c then 0. else c
  in
  {
    arch = Spec.display_name spec;
    svf;
    pas_type2 = Attack_models.pas Attack_type.Prime_and_probe spec ();
  }

let table ?seed ?intervals () =
  List.map (fun spec -> run_row ?seed ?intervals spec) Spec.all_paper

let render rows =
  let body =
    List.map
      (fun r ->
        [ r.arch; Printf.sprintf "%.2f" r.svf; Table.fmt_prob r.pas_type2 ])
      rows
  in
  "Simplified SVF (Demme et al. [5]) vs PAS Type 2: interval-similarity\n\
   correlation between the victim's secret lines and the attacker's\n\
   prime-probe observations. The metrics agree on the clear-cut designs;\n\
   the noisy cache shows SVF's known sensitivity to observation noise\n\
   (the pitfall Zhang et al. [36] criticise), and SVF needs a run per\n\
   design while PAS is closed-form.\n"
  ^ Table.render ~headers:[ "Cache"; "SVF"; "PAS Type 2" ] ~rows:body ()
