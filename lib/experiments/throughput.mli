(** Simulator-throughput benchmark: accesses/second through
    [Engine.access] per architecture x replacement policy, with a
    machine-readable JSON export ([BENCH_cache.json]) whose format is
    frozen so runs from different PRs are directly comparable. *)

type entry = {
  arch : string;
  policy : string;  (** "lru" | "random" | "fifo" | "secrand" (Newcache) *)
  accesses : int;  (** timed accesses (after a warm-up pass) *)
  seconds : float;
  per_sec : float;
}

val measure : ?accesses:int -> ?seed:int -> Cachesec_cache.Spec.t -> entry
(** Time [accesses] engine accesses over a frozen mixed working set
    (hot 600-line region + 4096-line spread), after a warm-up pass. *)

val cases : unit -> Cachesec_cache.Spec.t list
(** The 25 benchmark rows: 8 policied architectures x {lru, random,
    fifo} plus Newcache (SecRAND only). *)

val run : ?quick:bool -> unit -> entry list
(** Measure every case (40k accesses each under [quick], 400k otherwise). *)

val to_json : entry list -> string
val write : path:string -> entry list -> unit

val read : path:string -> entry list
(** Parse a file produced by {!write}; [[]] if absent or unparseable. *)

val find : entry list -> arch:string -> policy:string -> entry option

val render : ?baseline:string -> entry list -> string
(** Human-readable table; when [baseline] names a readable
    {!write}-format file, adds a per-row speedup column against it. *)
