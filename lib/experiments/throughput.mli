(** Simulator-throughput benchmark: accesses/second through
    [Engine.access] per architecture x replacement policy, with a
    machine-readable JSON export ([BENCH_cache.json]) whose format is
    frozen so runs from different PRs are directly comparable. *)

open Cachesec_runtime

type entry = {
  arch : string;
  policy : string;  (** "lru" | "random" | "fifo" | "secrand" (Newcache) *)
  accesses : int;  (** timed accesses (after a warm-up pass) *)
  seconds : float;
  per_sec : float;
}

val measure : ?accesses:int -> ?seed:int -> Cachesec_cache.Spec.t -> entry
(** Time [accesses] engine accesses over a frozen mixed working set
    (hot 600-line region + 4096-line spread), after a warm-up pass. *)

val cases : unit -> Cachesec_cache.Spec.t list
(** The 25 benchmark rows: 8 policied architectures x {lru, random,
    fifo} plus Newcache (SecRAND only). *)

val bench : Run.ctx -> entry list
(** Measure every case (40k accesses each when [ctx.quick], 400k
    otherwise). Each case is bracketed in a [throughput:<arch>] span
    with [accesses_per_sec] / [accesses] gauges, reported only after the
    stopwatch has stopped — the timed loop is never instrumented. *)

val to_json : ?span_id:int -> entry list -> string

val write : ?span_id:int -> path:string -> entry list -> unit
(** [?span_id] (when non-zero) records the telemetry span id of the
    benchmark section as a ["telemetry_span"] header line, so the file
    cross-references the [TELEMETRY_*.json] of the same run. {!read}
    skips the line, keeping old and new files mutually parseable. *)

val read : path:string -> entry list
(** Parse a file produced by {!write}; [[]] if absent or unparseable. *)

val find : entry list -> arch:string -> policy:string -> entry option

val render : ?baseline:string -> entry list -> string
(** Human-readable table; when [baseline] names a readable
    {!write}-format file, adds a per-row speedup column against it. *)

val run : ?quick:bool -> unit -> entry list
[@@alert deprecated "use bench with a Run.ctx"]
(** {!bench} under a default (null-telemetry) context. *)

(** End-to-end attack throughput: whole attack trials per second
    (prime → victim encryption → probe → scoring) through the real
    harness via each attack's [run_span] — the unit Driver shards fan
    out — per attack class × representative architecture. Exported as
    [BENCH_attacks.json] (schema [bench_attacks/v1], frozen format);
    the committed [bench/BENCH_attacks.baseline.json] was recorded from
    the pre-fast-path harness, so the [vs base] column is the speedup
    the probe-plan fast path delivers. *)
module Attacks : sig
  type entry = {
    attack : string;  (** "prime-probe" | "evict-time" | "flush-reload" | "collision" *)
    arch : string;
    trials : int;  (** timed trials (after a warm-up span) *)
    seconds : float;
    per_sec : float;
  }

  val archs : Cachesec_cache.Spec.t list
  (** sa, newcache, rp — the three harness regimes (many small sets /
      one fully-associative "set" / randomized indexing). *)

  val classes : string list
  (** The four attack-class names, in benchmark row order. *)

  val measure : ?seed:int -> ?trials:int -> string -> Cachesec_cache.Spec.t -> entry
  (** Time [trials] attack trials (one warm-up span of [trials/10]
      first). Raises [Invalid_argument] on an unknown attack class. *)

  val bench : Run.ctx -> entry list
  (** Measure every class × arch case (trials/10 per case under
      [ctx.quick]); each case spanned as [attacks:<class>:<arch>] with
      [trials_per_sec] / [trials] gauges reported after its stopwatch
      has stopped. *)

  val to_json : ?span_id:int -> entry list -> string
  val write : ?span_id:int -> path:string -> entry list -> unit
  val read : path:string -> entry list
  val find : entry list -> attack:string -> arch:string -> entry option

  val min_speedup : entry list -> baseline:entry list -> attack:string -> float option
  (** Worst-case speedup of [attack] across its measured architectures;
      [None] without overlapping baseline rows. *)

  val gate : ?threshold:float -> baseline:string -> entry list ->
    (string * float option * bool) list
  (** Per attack class: [(class, min speedup vs the baseline file,
      speedup >= threshold)]. Threshold defaults to 1.5. *)

  val render : ?baseline:string -> entry list -> string
end
