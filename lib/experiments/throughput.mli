(** Simulator-throughput benchmark: accesses/second through
    [Engine.access] per architecture x replacement policy, with a
    machine-readable JSON export ([BENCH_cache.json]) whose format is
    frozen so runs from different PRs are directly comparable. *)

open Cachesec_runtime

type entry = {
  arch : string;
  policy : string;  (** a {!Cachesec_cache.Policy.to_string} spelling
      ("lru" .. "plru") or "secrand" (Newcache) *)
  accesses : int;  (** timed accesses (after a warm-up pass) *)
  seconds : float;  (** fastest repetition *)
  per_sec : float;  (** [accesses /. seconds] *)
  warmup : int;  (** warm-up accesses before the first stopwatch *)
  repeats : int;  (** timed repetitions behind [seconds]/[stddev] *)
  stddev : float;  (** of accesses/sec across the repetitions — the
      error bar; 0 for single-repetition (or v1-file) rows *)
  kernel : string;  (** [Engine.t.kernel]: the monomorphized kernel name
      or ["generic"]; [""] for rows read from a v1 file *)
  slab_bytes : int;  (** [Engine.t.slab_bytes]; 0 for v1 rows *)
}

val stddev_of : float list -> float
(** Standard deviation of the per-repetition rates behind a row's error
    bar — the POPULATION convention (divide by [n]): the repetitions
    ARE the complete set being described, not a sample from which a
    larger population's spread is inferred. [0.] below two values.
    Contrast {!Cachesec_stats.Summary.std}, which uses the unbiased
    SAMPLE convention ([n-1]) because a summary always holds a sample
    of a larger trial population. Both conventions are pinned by
    regression tests in test_stats. *)

val measure :
  ?accesses:int ->
  ?seed:int ->
  ?repeats:int ->
  ?kernel:Cachesec_cache.Kernel.selection ->
  Cachesec_cache.Spec.t ->
  entry
(** Time [accesses] engine accesses over a frozen mixed working set
    (hot 600-line region + 4096-line spread), after a warm-up pass.
    [repeats] (default 3) timed repetitions over the same addresses;
    the fastest is reported (minimum time is the standard estimator of
    unloaded cost) with the stddev of the per-repetition rates as the
    error bar. [?kernel] forwards to {!Cachesec_cache.Factory.build}
    ([Generic] measures the dispatching fallback). *)

val cases : unit -> Cachesec_cache.Spec.t list
(** The 29 benchmark rows: 8 policied architectures x {lru, random,
    fifo}, with the conventional SA cache swept across the full
    {!Cachesec_cache.Policy.all} registry instead, plus Newcache
    (SecRAND only). Rows missing from a committed baseline render as
    ["-"] in the vs-base column and never gate. *)

val bench : Run.ctx -> entry list
(** Measure every case (40k accesses each when [ctx.quick], 400k
    otherwise; 2 repetitions instead of 3 under [ctx.quick]). Each case
    is bracketed in a [throughput:<arch>] span with [accesses_per_sec] /
    [accesses] gauges plus [cache.kernel] (1.0 = monomorphized kernel,
    0.0 = generic fallback — gauges are floats; the name string is in
    the JSON row) and [cache.slab_bytes], reported only after the
    stopwatch has stopped — the timed loop is never instrumented. *)

val to_json : ?span_id:int -> entry list -> string
(** Schema [bench_cache/v2]: v1's keys plus [warmup], [repeats],
    [stddev], [kernel], [slab_bytes]. {!read} accepts both versions. *)

val write : ?span_id:int -> path:string -> entry list -> unit
(** [?span_id] (when non-zero) records the telemetry span id of the
    benchmark section as a ["telemetry_span"] header line, so the file
    cross-references the [TELEMETRY_*.json] of the same run. {!read}
    skips the line, keeping old and new files mutually parseable. *)

val read : path:string -> entry list
(** Parse a file produced by {!write} — either schema version; v1 rows
    get [warmup = 0], [repeats = 1], [stddev = 0.], [kernel = ""],
    [slab_bytes = 0]. [[]] if absent or unparseable. *)

val find : entry list -> arch:string -> policy:string -> entry option

val render : ?baseline:string -> entry list -> string
(** Human-readable table; when [baseline] names a readable
    {!write}-format file, adds a per-row speedup column against it. *)

val run : ?quick:bool -> unit -> entry list
[@@alert deprecated "use bench with a Run.ctx"]
(** {!bench} under a default (null-telemetry) context. *)

(** End-to-end attack throughput: whole attack trials per second
    (prime → victim encryption → probe → scoring) through the real
    harness via each attack's [run_span] — the unit Driver shards fan
    out — per attack class × representative architecture × replay path.
    Every case is measured twice in one run: [batched] (auto-selected
    [access_run] kernels, the production path) and [scalar]
    ([Kernel.Scalar]: the monomorphized per-access kernel looped by
    [run_of_scalar], the exact pre-batching cost model), so the
    batched/scalar ratio is a same-host controlled experiment. Exported
    as [BENCH_attacks.json] (schema [bench_attacks/v2]; [v1] files,
    which predate batching, still parse with their rows labelled
    [scalar]). The gate compares current batched rows against the
    committed baseline's scalar rows. *)
module Attacks : sig
  type entry = {
    attack : string;  (** "prime-probe" | "evict-time" | "flush-reload" | "collision" *)
    arch : string;
    path : string;  (** "batched" | "scalar" — replay path measured *)
    trials : int;  (** timed trials (after a warm-up span) *)
    seconds : float;
    per_sec : float;
  }

  val archs : Cachesec_cache.Spec.t list
  (** sa, newcache, rp — the three harness regimes (many small sets /
      one fully-associative "set" / randomized indexing). *)

  val classes : string list
  (** The four attack-class names, in benchmark row order. *)

  val measure :
    ?seed:int -> ?trials:int -> ?repeats:int ->
    ?kernel:Cachesec_cache.Kernel.selection ->
    string -> Cachesec_cache.Spec.t -> entry
  (** Time [trials] attack trials (one warm-up span of [trials/10]
      first), repeated [repeats] (default 3) times, keeping the fastest
      repetition — these rates feed a hard gate, and the minimum over
      repetitions is the standard estimator of unloaded cost (external
      load only ever adds time). [kernel] (default [Auto]) selects the
      replay path and labels the row ([Auto] → ["batched"], [Scalar] →
      ["scalar"]). Raises [Invalid_argument] on an unknown attack
      class. *)

  val bench : Run.ctx -> entry list
  (** Measure every class × arch × \{batched, scalar\} case at the FULL
      trial counts — the gate compares rates against a full-count
      baseline, and rates only transfer when per-span fixed costs
      amortize identically on both sides. [ctx.quick] economises on
      repetitions (2 instead of 3) rather than trials: variance, not
      bias. Each case is spanned as [attacks:<class>:<arch>:<path>]
      with [trials_per_sec] / [trials] gauges reported after its
      stopwatch has stopped. *)

  val to_json : ?span_id:int -> entry list -> string
  val write : ?span_id:int -> path:string -> entry list -> unit

  val read : path:string -> entry list
  (** Parses both [bench_attacks/v2] rows and pre-batching [v1] rows —
      the latter carry no [path] field and are labelled ["scalar"],
      which is what they measured. *)

  val find :
    entry list -> attack:string -> arch:string -> path:string -> entry option

  val min_speedup : entry list -> baseline:entry list -> attack:string -> float option
  (** Worst-case speedup of [attack]'s batched rows over the baseline's
      scalar rows, across the measured architectures; [None] without
      overlapping rows on both sides. *)

  val hard_classes : string list
  (** The classes whose gate result is a hard PASS/FAIL
      (["prime-probe"; "evict-time"] — the two whose trial cost is
      dominated by batched runs); the rest report without failing. *)

  val gate : ?threshold:float -> baseline:string -> entry list ->
    (string * float option * bool) list
  (** Per attack class: [(class, min batched-vs-scalar speedup vs the
      baseline file, speedup >= threshold)]. Threshold defaults to
      1.3. *)

  val render : ?baseline:string -> entry list -> string
end

(** Adaptive-stopping benchmark: the quick validation matrix run twice
    through the same adaptive machinery and batch plan — a [fixed] arm
    ([ci_width = 0.], never stops early, measures the CI widths the
    fixed budgets achieve) and an [adaptive] arm targeted at the fixed
    arm's worst achieved width. The trials ratio between the arms is
    what sequential stopping saves at matched worst-cell precision; it
    is seed-deterministic and jobs-invariant, so it gates hard.
    Wall-clock rides along (reported, compared against the committed
    baseline's adaptive rows, never gated). Rows are exported into
    [BENCH_e2e.json] alongside the pipelining rows (schema
    [bench_e2e/v2]). *)
module Adaptive : sig
  type entry = {
    arm : string;  (** "fixed" | "adaptive" *)
    jobs : int;
    cores : int;
    cells : int;
    trials : int;  (** attack trials executed across the matrix *)
    caps : int;  (** total trial budget of the same cells *)
    width : float;  (** worst achieved CI half-width across the cells *)
    seconds : float;
  }

  val confidence : float
  (** Confidence level both arms measure at (0.95). *)

  val bench : Run.ctx -> entry list
  (** Always quick scale; each arm spanned as [adaptive:<arm>] with
      [seconds] / [trials] / [ci_width] gauges. Returns
      [[fixed; adaptive]]. *)

  val entry_to_json : entry -> string
  val read : path:string -> entry list
  (** Scan a [BENCH_e2e.json] for adaptive rows, skipping the
      section-mode rows; [[]] when absent. *)

  val find : entry list -> arm:string -> entry option

  val savings : entry list -> float option
  (** Within-run trials ratio fixed/adaptive — the gate observable. *)

  val wall_reduction : entry list -> float option
  (** Within-run wall-clock ratio fixed/adaptive; reported, not gated. *)

  val gate : ?threshold:float -> entry list -> float option * bool
  (** [(savings, savings >= threshold)] (default 2.0). Hard on every
      host: the ratio is a function of the seeds alone. *)

  val render : ?baseline:string -> entry list -> string
end

(** End-to-end harness throughput: wall-clock of whole report sections —
    the quick-scale validation matrix (36 cells) and the experimental
    figures (9 and 10) — measured twice, with strictly sequential
    campaign execution and with cross-campaign pipelining over the
    persistent Domain pool. Both arms run identical trials under
    identical seeds, so the sequential/pipelined ratio isolates what the
    pool buys: later campaigns' shards filling worker idle time at
    earlier campaigns' join barriers. Exported as [BENCH_e2e.json]
    (schema [bench_e2e/v1], frozen line format); the committed
    [bench/BENCH_e2e.baseline.json] was recorded pre-refactor and feeds
    the [vs base] trajectory column. *)
module E2e : sig
  type entry = {
    section : string;  (** "validation-matrix" | "figures" *)
    mode : string;  (** "sequential" | "pipelined" *)
    jobs : int;  (** resolved worker count of the run *)
    cores : int;  (** [Domain.recommended_domain_count] on the host *)
    units : int;  (** work units in the section (cells / figures) *)
    seconds : float;
  }

  val sections : string list
  (** Benchmark section names, in row order. *)

  val bench : Run.ctx -> entry list
  (** Run both sections in both modes (sequential arm first), always at
      quick scale; each (mode, section) is spanned as
      [e2e:<mode>:<section>] with [seconds] / [units] gauges. Results
      are bit-identical between the arms — only the wall-clock differs
      (enforced by test_runtime's pipelined-equivalence cases). *)

  val to_json :
    ?span_id:int -> ?adaptive:Adaptive.entry list -> entry list -> string
  (** Schema [bench_e2e/v2]: the pipelining rows plus (optionally) the
      adaptive-arm rows in the same entries array. Every reader scans
      line-wise and skips rows it does not parse, so v1 and v2 files
      are mutually readable. *)

  val write :
    ?span_id:int -> ?adaptive:Adaptive.entry list -> path:string ->
    entry list -> unit

  val read : path:string -> entry list
  val find :
    ?jobs:int -> entry list -> section:string -> mode:string -> entry option
  (** Prefer the row matching [?jobs] (baselines may hold several jobs
      settings), falling back to any row of the (section, mode). *)

  val speedup : entry list -> float option
  (** Total sequential seconds / total pipelined seconds across all
      sections; [None] when either arm is missing. *)

  type verdict = Pass | Fail | Reported

  val gate : ?threshold:float -> entry list -> float option * verdict
  (** The pipelining gate: [Pass]/[Fail] against [threshold] (default
      1.3) when the run could demonstrate parallelism (host cores >= 4
      and jobs >= 4); [Reported] otherwise — on a small host there are
      no idle workers to fill, so a ratio near 1.0 is the expected
      honest answer, not a regression. *)

  val render : ?baseline:string -> entry list -> string
end
