open Cachesec_analysis
open Cachesec_report

let edge_table ~title ~labels rows =
  let headers = ("Cache" :: labels) @ [ "PAS" ] in
  let body =
    List.map
      (fun (r : Pas_tables.row) ->
        r.arch
        :: (List.map
              (fun l -> Table.fmt_prob (Edge_probs.find r.edges l))
              labels
           @ [ Table.fmt_prob r.pas ]))
      rows
  in
  title ^ "\n" ^ Table.render ~headers ~rows:body ()

let table3 () =
  edge_table
    ~title:
      "Table 3: Conditional probabilities and PAS, evict-and-time (Type 1)"
    ~labels:[ "p1"; "p2"; "p3"; "p4"; "p5" ]
    (Pas_tables.table3 ())

let table5 () =
  edge_table
    ~title:"Table 5: Conditional probabilities and PAS, cache collision (Type 3)"
    ~labels:[ "p0"; "p4"; "p5" ]
    (Pas_tables.table5 ())

let table6 () =
  let computed = Pas_tables.table6 () in
  let headers =
    [
      "Cache";
      "Type 1";
      "Type 2";
      "Type 3";
      "Type 4";
      "paper T1";
      "paper T2";
      "paper T3";
      "paper T4";
    ]
  in
  let rows =
    List.map
      (fun (r : Pas_tables.table6_row) ->
        let paper =
          match List.assoc_opt r.arch6 Pas_tables.paper_table6 with
          | Some a -> Array.to_list (Array.map Table.fmt_prob a)
          | None -> [ "?"; "?"; "?"; "?" ]
        in
        (r.arch6 :: Array.to_list (Array.map Table.fmt_prob r.pas_by_type))
        @ paper)
      computed
  in
  "Table 6: PAS of four attack types for 9 cache architectures (computed vs paper)\n"
  ^ Table.render ~headers ~rows ()

let table7 () =
  let computed = Resilience.table7 () in
  let headers =
    [ "Cache"; "T1"; "T2"; "T3"; "T4"; "paper"; "match" ]
  in
  let marks vs =
    String.concat " " (Array.to_list (Array.map Resilience.verdict_mark vs))
  in
  let rows =
    List.map
      (fun (arch, vs) ->
        let paper = List.assoc_opt arch Resilience.paper_table7 in
        let paper_s = match paper with Some p -> marks p | None -> "?" in
        let agree =
          match paper with Some p -> if p = vs then "yes" else "NO" | None -> "?"
        in
        (arch :: Array.to_list (Array.map Resilience.verdict_mark vs))
        @ [ paper_s; agree ])
      computed
  in
  "Table 7: Resilience classification (Y = high resilience, X = low)\n"
  ^ Table.render ~headers ~rows ()

let table6_csv_rows () =
  List.concat_map
    (fun (r : Pas_tables.table6_row) ->
      let paper = List.assoc_opt r.arch6 Pas_tables.paper_table6 in
      List.mapi
        (fun i attack ->
          [
            r.arch6;
            Attack_type.name attack;
            Printf.sprintf "%.6g" r.pas_by_type.(i);
            (match paper with
            | Some a -> Printf.sprintf "%.6g" a.(i)
            | None -> "");
          ])
        Attack_type.all)
    (Pas_tables.table6 ())

(* The model is parametric: the same machinery at a different design
   point. 16 KB, 4-way, 256 lines; Nomo reserves 1 of 4 ways, RF keeps
   the paper's window, RE stays direct-mapped. *)
let table6_alt_geometry () =
  let open Cachesec_cache in
  let config = Config.v ~line_bytes:64 ~lines:256 ~ways:4 in
  let specs =
    [
      Spec.Sa { ways = 4; policy = Replacement.Random };
      Spec.Sp { ways = 4; policy = Replacement.Random; partitions = 2 };
      Spec.Pl { ways = 4; policy = Replacement.Random };
      Spec.Nomo { ways = 4; policy = Replacement.Random; reserved = 1 };
      Spec.Newcache { extra_bits = 4 };
      Spec.Rp { ways = 4; policy = Replacement.Random };
      Spec.Rf { ways = 4; policy = Replacement.Random; back = 64; fwd = 64 };
      Spec.Re { ways = 1; policy = Replacement.Random; interval = 10 };
      Spec.Noisy { ways = 4; policy = Replacement.Random; sigma = 1.0 };
    ]
  in
  let rows =
    List.map
      (fun spec ->
        Spec.display_name spec
        :: List.map
             (fun attack ->
               Table.fmt_prob (Attack_models.pas ~config attack spec ()))
             Attack_type.all)
      specs
  in
  "Table 6 recomputed at a different design point (16 KB, 4-way, 256\n\
   lines) - the generality the paper claims: same model, new numbers,\n\
   same qualitative ranking.\n"
  ^ Table.render
      ~headers:[ "Cache"; "Type 1"; "Type 2"; "Type 3"; "Type 4" ]
      ~rows ()

let policy_resilience ?threshold ?specs ?policies () =
  let open Cachesec_cache in
  let matrix = Resilience.policy_matrix ?threshold ?specs ?policies () in
  let headers =
    [ "Cache"; "Policy"; "T1"; "T2"; "T3"; "T4"; "limit"; "max bits" ]
  in
  let rows =
    List.concat_map
      (fun (spec, by_policy) ->
        List.map
          (fun (policy, cells) ->
            (* All miss-based cells of a row share the same cleaning
               limit; the first cell is evict-and-time. *)
            let limit =
              match cells with c :: _ -> c.Resilience.limit | [] -> nan
            in
            let max_bits =
              List.fold_left
                (fun acc (c : Resilience.policy_cell) -> Float.max acc c.bits)
                0. cells
            in
            [ Spec.display_name spec; Replacement.policy_to_string policy ]
            @ List.map
                (fun (c : Resilience.policy_cell) ->
                  Printf.sprintf "%s %s" (Table.fmt_prob c.effective)
                    (Resilience.verdict_mark c.verdict))
                cells
            @ [ Table.fmt_prob limit; Printf.sprintf "%.3f" max_bits ])
          by_policy)
      matrix
  in
  "Policy resilience: effective PAS per replacement policy (Y = high\n\
   resilience, X = low). Miss-based types (T1/T2) are gated by the\n\
   k->inf cleaning limit; 'max bits' is the worst-case absorbed\n\
   information per observation across the four attack types.\n"
  ^ Table.render ~headers ~rows ()

let policy_resilience_csv_rows () =
  let open Cachesec_cache in
  List.concat_map
    (fun (spec, by_policy) ->
      List.concat_map
        (fun (policy, cells) ->
          List.map
            (fun (c : Resilience.policy_cell) ->
              [
                Spec.name spec;
                Replacement.policy_to_string policy;
                Attack_type.name c.attack;
                Printf.sprintf "%.6g" c.pas;
                Printf.sprintf "%.6g" c.limit;
                Printf.sprintf "%.6g" c.effective;
                Printf.sprintf "%.6g" c.bits;
                Resilience.verdict_to_string c.verdict;
              ])
            cells)
        by_policy)
    (Resilience.policy_matrix ())

let all () =
  String.concat "\n" [ table3 (); table5 (); table6 (); table7 () ]
