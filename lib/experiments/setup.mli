(** Scenario wiring shared by the simulation experiments: one victim
    (pid 0) running AES with its five tables at line 0, one attacker
    (pid 1) whose own memory lives at {!Cachesec_attacks.Attacker.default_base}. *)

open Cachesec_cache
open Cachesec_attacks

type t = {
  spec : Spec.t;
  engine : Engine.t;
  victim : Victim.t;
  attacker_pid : int;
  rng : Cachesec_stats.Rng.t;  (** the attacker/experiment stream *)
}

val default_key_hex : string
(** The FIPS-197 Appendix B key, 2b7e1516...: a fixed, documented secret
    for reproducible runs. *)

val make : ?seed:int -> ?key_hex:string -> ?kernel:Kernel.selection -> Spec.t -> t
(** Fresh engine + victim + RNG for one experiment run. [kernel]
    (default [Auto]) forwards to {!Factory.build} — [Scalar] selects the
    pre-batching cost model for bench comparison rows. *)
