(* Simulator-throughput measurement: raw accesses/second through
   [Engine.access] for each architecture x replacement policy. The
   numbers feed a machine-readable BENCH_cache.json so perf work across
   PRs has a trajectory to regress against (CacheFX-style: a
   cache-security evaluation framework lives or dies by simulated
   accesses/second).

   The access pattern, seeds and entry order are deliberately frozen:
   two files produced by different checkouts of this module are directly
   comparable entry by entry. *)

open Cachesec_stats
open Cachesec_cache
open Cachesec_runtime
open Cachesec_telemetry

type entry = {
  arch : string;
  policy : string;
  accesses : int;
  seconds : float;
  per_sec : float;
}

let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }

(* Mixed working set: ~60% of addresses inside a hot 600-line region
   (hit-heavy once warm), the rest spread over 4096 lines (miss-heavy).
   Precomputed so the timed loop does no RNG work and no allocation. *)
let make_addresses ~accesses ~seed =
  let rng = Rng.create ~seed in
  Array.init accesses (fun _ ->
      if Rng.int rng 10 < 6 then Rng.int rng 600 else Rng.int rng 4096)

let measure ?(accesses = 200_000) ?(seed = 0xBE7C) spec =
  let rng = Rng.create ~seed in
  let engine = Factory.build spec scenario ~rng:(Rng.split rng) in
  let addrs = make_addresses ~accesses ~seed:(seed lxor 0x5A5A) in
  (* Warm-up pass so the measurement reflects steady state, not cold
     compulsory misses. *)
  let warm = min accesses 20_000 in
  for i = 0 to warm - 1 do
    ignore (engine.Engine.access ~pid:(i land 1) addrs.(i))
  done;
  let t0 = Unix.gettimeofday () in
  for i = 0 to accesses - 1 do
    ignore (engine.Engine.access ~pid:(i land 1) addrs.(i))
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dt = if dt <= 0. then epsilon_float else dt in
  {
    arch = Spec.name spec;
    policy =
      (match Spec.policy_of spec with
      | Some p -> Replacement.policy_to_string p
      | None -> "secrand");
    accesses;
    seconds = dt;
    per_sec = float_of_int accesses /. dt;
  }

(* 9 architectures x {lru, random, fifo} (Newcache's SecRAND replacement
   is part of the design, so it contributes a single row). *)
let cases () =
  List.concat_map
    (fun spec ->
      match Spec.policy_of spec with
      | None -> [ spec ]
      | Some _ ->
        List.map (Spec.with_policy spec)
          [ Replacement.Lru; Replacement.Random; Replacement.Fifo ])
    Spec.all_paper

(* The timed loop itself is never instrumented (that would measure the
   telemetry, not the engine): each case is bracketed in a span and its
   result reported as gauges after the stopwatch has stopped. *)
let bench (ctx : Run.ctx) =
  let tm = ctx.Run.telemetry in
  Telemetry.with_span tm ~parent:ctx.Run.parent "throughput"
  @@ fun sp ->
  let accesses = if ctx.Run.quick then 40_000 else 400_000 in
  List.map
    (fun spec ->
      Telemetry.with_span tm ~parent:sp ("throughput:" ^ Spec.name spec)
      @@ fun case_sp ->
      let e = measure ~accesses spec in
      Telemetry.gauge tm ~span:case_sp "accesses_per_sec" e.per_sec;
      Telemetry.gauge tm ~span:case_sp "accesses" (float_of_int e.accesses);
      e)
    (cases ())

let run ?(quick = false) () =
  let ctx = { Run.default with Run.quick = quick } in
  bench ctx

(* --- JSON (flat, line-oriented: one entry per line, fixed key order,
   so the file doubles as its own parser format) ------------------- *)

let entry_to_json e =
  Printf.sprintf
    "{\"arch\": \"%s\", \"policy\": \"%s\", \"accesses\": %d, \"seconds\": \
     %.6f, \"accesses_per_sec\": %.1f}"
    e.arch e.policy e.accesses e.seconds e.per_sec

(* [?span_id] cross-references the telemetry JSON of the same run: it is
   the id of the span that wrapped this benchmark section (see
   [Scheduler.timed]), emitted as an extra header line that [read]'s
   line scanner skips over, keeping the format backward compatible. *)
let to_json ?span_id entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_cache/v1\",\n";
  (match span_id with
  | Some id when id <> 0 ->
    Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
  | Some _ | None -> ());
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (entry_to_json e);
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write ?span_id ~path entries =
  let oc = open_out path in
  output_string oc (to_json ?span_id entries);
  close_out oc

(* Reads files produced by [write]: scans each line for an entry object
   with the fixed key order above. Returns [] when the file is absent or
   holds no entries (never raises). *)
let read ~path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match
           Scanf.sscanf line
             "{\"arch\": %S, \"policy\": %S, \"accesses\": %d, \"seconds\": \
              %f, \"accesses_per_sec\": %f}"
             (fun arch policy accesses seconds per_sec ->
               { arch; policy; accesses; seconds; per_sec })
         with
         | e -> entries := e :: !entries
         | exception Scanf.Scan_failure _ -> ()
         | exception End_of_file -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries

let find entries ~arch ~policy =
  List.find_opt (fun e -> e.arch = arch && e.policy = policy) entries

(* --- end-to-end attack throughput (trials/second) ------------------- *)

(* The cache section above times the engine alone; this section times
   whole attack trials (prime -> victim encryption -> probe -> scoring)
   through the real attack harness, per attack class x representative
   architecture. That is the number the paper's campaigns are actually
   bound by: the validation matrix and Figures 9/10 are millions of such
   trials. The measured unit is one [run_span] call — exactly what
   Driver shards fan out — so the committed seed baseline
   (bench/BENCH_attacks.baseline.json, recorded from the pre-fast-path
   harness) and any later run are directly comparable per row. *)

module Attacks = struct
  open Cachesec_attacks

  type entry = {
    attack : string;
    arch : string;
    trials : int;  (** timed trials (after a warm-up span) *)
    seconds : float;
    per_sec : float;
  }

  (* Conventional set-associative, the fully-associative randomized
     design, and per-set random permutation: the three harness regimes
     (many small sets / one huge "set" / randomized indexing). *)
  let archs = Spec.[ paper_sa; paper_newcache; paper_rp ]
  let classes = [ "prime-probe"; "evict-time"; "flush-reload"; "collision" ]

  let full_trials = function
    | "prime-probe" -> 1500
    | "flush-reload" -> 1500
    | "evict-time" -> 12_000
    | "collision" -> 12_000
    | a -> invalid_arg ("Throughput.Attacks: unknown attack class " ^ a)

  let span ~(s : Setup.t) attack count =
    match attack with
    | "prime-probe" ->
      ignore
        (Prime_probe.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~count
           { Prime_probe.default_config with Prime_probe.trials = count })
    | "evict-time" ->
      ignore
        (Evict_time.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~first:0 ~count
           { Evict_time.default_config with Evict_time.trials = count })
    | "flush-reload" ->
      ignore
        (Flush_reload.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~count
           { Flush_reload.default_config with Flush_reload.trials = count })
    | "collision" ->
      ignore
        (Collision.run_span ~victim:s.Setup.victim ~rng:s.Setup.rng ~count
           { Collision.default_config with Collision.trials = count })
    | a -> invalid_arg ("Throughput.Attacks: unknown attack class " ^ a)

  let measure ?(seed = 0xA77A) ?trials attack spec =
    let trials = Option.value trials ~default:(full_trials attack) in
    let s = Setup.make ~seed spec in
    (* Warm-up span: cache warm, any per-campaign state (probe plans,
       scratch buffers) built and in steady state before the stopwatch
       starts. *)
    span ~s attack (max 1 (trials / 10));
    let t0 = Unix.gettimeofday () in
    span ~s attack trials;
    let dt = Unix.gettimeofday () -. t0 in
    let dt = if dt <= 0. then epsilon_float else dt in
    {
      attack;
      arch = Spec.name spec;
      trials;
      seconds = dt;
      per_sec = float_of_int trials /. dt;
    }

  let cases () =
    List.concat_map
      (fun attack -> List.map (fun spec -> (attack, spec)) archs)
      classes

  (* Mirrors [bench] above: each case spanned and gauged only after its
     stopwatch has stopped. *)
  let bench (ctx : Run.ctx) =
    let tm = ctx.Run.telemetry in
    Telemetry.with_span tm ~parent:ctx.Run.parent "attack-throughput"
    @@ fun sp ->
    List.map
      (fun (attack, spec) ->
        Telemetry.with_span tm ~parent:sp
          (Printf.sprintf "attacks:%s:%s" attack (Spec.name spec))
        @@ fun case_sp ->
        let trials =
          let n = full_trials attack in
          if ctx.Run.quick then max 50 (n / 10) else n
        in
        let e = measure ~trials attack spec in
        Telemetry.gauge tm ~span:case_sp "trials_per_sec" e.per_sec;
        Telemetry.gauge tm ~span:case_sp "trials" (float_of_int e.trials);
        e)
      (cases ())

  let entry_to_json e =
    Printf.sprintf
      "{\"attack\": \"%s\", \"arch\": \"%s\", \"trials\": %d, \"seconds\": \
       %.6f, \"trials_per_sec\": %.1f}"
      e.attack e.arch e.trials e.seconds e.per_sec

  let to_json ?span_id entries =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"bench_attacks/v1\",\n";
    (match span_id with
    | Some id when id <> 0 ->
      Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
    | Some _ | None -> ());
    Buffer.add_string buf "  \"entries\": [\n";
    List.iteri
      (fun i e ->
        Buffer.add_string buf "    ";
        Buffer.add_string buf (entry_to_json e);
        if i < List.length entries - 1 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n')
      entries;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf

  let write ?span_id ~path entries =
    let oc = open_out path in
    output_string oc (to_json ?span_id entries);
    close_out oc

  let read ~path =
    match open_in path with
    | exception Sys_error _ -> []
    | ic ->
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           match
             Scanf.sscanf line
               "{\"attack\": %S, \"arch\": %S, \"trials\": %d, \"seconds\": \
                %f, \"trials_per_sec\": %f}"
               (fun attack arch trials seconds per_sec ->
                 { attack; arch; trials; seconds; per_sec })
           with
           | e -> entries := e :: !entries
           | exception Scanf.Scan_failure _ -> ()
           | exception End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !entries

  let find entries ~attack ~arch =
    List.find_opt (fun e -> e.attack = attack && e.arch = arch) entries

  (* Worst-case (minimum) speedup of [attack] across its measured
     architectures — the honest per-class gate number. [None] when the
     baseline has no overlapping rows. *)
  let min_speedup entries ~baseline ~attack =
    List.filter_map
      (fun e ->
        if e.attack <> attack then None
        else
          match find baseline ~attack ~arch:e.arch with
          | Some b when b.per_sec > 0. -> Some (e.per_sec /. b.per_sec)
          | Some _ | None -> None)
      entries
    |> function
    | [] -> None
    | xs -> Some (List.fold_left Float.min Float.infinity xs)

  let gate ?(threshold = 1.5) ~baseline entries =
    let base = read ~path:baseline in
    List.map
      (fun attack ->
        let s = min_speedup entries ~baseline:base ~attack in
        (attack, s, match s with Some x -> x >= threshold | None -> false))
      classes

  let render ?baseline entries =
    let buf = Buffer.create 1024 in
    let base = match baseline with None -> [] | Some path -> read ~path in
    Buffer.add_string buf
      (Printf.sprintf "  %-12s %-10s %10s %14s %10s\n" "attack" "arch"
         "trials" "trials/sec" "vs base");
    List.iter
      (fun e ->
        let vs =
          match find base ~attack:e.attack ~arch:e.arch with
          | Some b when b.per_sec > 0. ->
            Printf.sprintf "%9.2fx" (e.per_sec /. b.per_sec)
          | Some _ | None -> "         -"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %-10s %10d %14.1f %s\n" e.attack e.arch
             e.trials e.per_sec vs))
      entries;
    Buffer.contents buf
end

(* Render the current run, with speedup columns against a baseline file
   when one is present. *)
let render ?baseline entries =
  let buf = Buffer.create 1024 in
  let base = match baseline with None -> [] | Some path -> read ~path in
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %-8s %14s %10s\n" "arch" "policy" "accesses/sec"
       "vs base");
  List.iter
    (fun e ->
      let vs =
        match find base ~arch:e.arch ~policy:e.policy with
        | Some b when b.per_sec > 0. ->
          Printf.sprintf "%9.2fx" (e.per_sec /. b.per_sec)
        | Some _ | None -> "         -"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %-8s %14.0f %s\n" e.arch e.policy e.per_sec vs))
    entries;
  Buffer.contents buf
