(* Simulator-throughput measurement: raw accesses/second through
   [Engine.access] for each architecture x replacement policy. The
   numbers feed a machine-readable BENCH_cache.json so perf work across
   PRs has a trajectory to regress against (CacheFX-style: a
   cache-security evaluation framework lives or dies by simulated
   accesses/second).

   The access pattern, seeds and entry order are deliberately frozen:
   two files produced by different checkouts of this module are directly
   comparable entry by entry. *)

open Cachesec_stats
open Cachesec_cache
open Cachesec_runtime
open Cachesec_telemetry

type entry = {
  arch : string;
  policy : string;
  accesses : int;
  seconds : float;  (** fastest repetition *)
  per_sec : float;  (** [accesses /. seconds] *)
  warmup : int;  (** warm-up accesses before the first stopwatch *)
  repeats : int;  (** timed repetitions behind [seconds]/[stddev] *)
  stddev : float;  (** of accesses/sec across the repetitions *)
  kernel : string;  (** [Engine.t.kernel] of the engine measured *)
  slab_bytes : int;  (** [Engine.t.slab_bytes] *)
}

let scenario = { Factory.victim_pid = 0; victim_lines = [ (0, 200) ] }

(* Mixed working set: ~60% of addresses inside a hot 600-line region
   (hit-heavy once warm), the rest spread over 4096 lines (miss-heavy).
   Precomputed so the timed loop does no RNG work and no allocation. *)
let make_addresses ~accesses ~seed =
  let rng = Rng.create ~seed in
  Array.init accesses (fun _ ->
      if Rng.int rng 10 < 6 then Rng.int rng 600 else Rng.int rng 4096)

(* Population stddev; 0 for a single repetition. *)
let stddev_of rates =
  match rates with
  | [] | [ _ ] -> 0.
  | rates ->
    let n = float_of_int (List.length rates) in
    let mean = List.fold_left ( +. ) 0. rates /. n in
    let var =
      List.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.)) 0. rates /. n
    in
    sqrt var

let measure ?(accesses = 200_000) ?(seed = 0xBE7C) ?(repeats = 3) ?kernel spec =
  let rng = Rng.create ~seed in
  let engine = Factory.build ?kernel spec scenario ~rng:(Rng.split rng) in
  let addrs = make_addresses ~accesses ~seed:(seed lxor 0x5A5A) in
  (* Warm-up pass so the measurement reflects steady state, not cold
     compulsory misses. *)
  let warm = min accesses 20_000 in
  for i = 0 to warm - 1 do
    ignore (engine.Engine.access ~pid:(i land 1) addrs.(i))
  done;
  (* Repeated timed passes over the same addresses (the cache stays in
     steady state between them). The fastest repetition is the reported
     rate — the standard estimator of unloaded cost, matching the attack
     bench below — and the spread across repetitions rides along as an
     honest error bar. Monotonic stopwatch (Clock): these numbers feed
     the perf gate, so an NTP step mid-measurement must not move them. *)
  let repeats = max 1 repeats in
  let best = ref infinity in
  let rates = ref [] in
  for _ = 1 to repeats do
    let t0 = Clock.now_s () in
    for i = 0 to accesses - 1 do
      ignore (engine.Engine.access ~pid:(i land 1) addrs.(i))
    done;
    let dt = Clock.elapsed_s ~since:t0 in
    let dt = if dt <= 0. then epsilon_float else dt in
    if dt < !best then best := dt;
    rates := (float_of_int accesses /. dt) :: !rates
  done;
  let dt = !best in
  {
    arch = Spec.name spec;
    policy =
      (match Spec.policy_of spec with
      | Some p -> Replacement.policy_to_string p
      | None -> "secrand");
    accesses;
    seconds = dt;
    per_sec = float_of_int accesses /. dt;
    warmup = warm;
    repeats;
    stddev = stddev_of !rates;
    kernel = engine.Engine.kernel;
    slab_bytes = engine.Engine.slab_bytes;
  }

(* 9 architectures x {lru, random, fifo} (Newcache's SecRAND replacement
   is part of the design, so it contributes a single row), plus the
   conventional SA cache swept across the FULL policy registry — the SA
   rows are where per-policy victim-selection cost shows up undiluted,
   and the registry's newcomers (mru/lfu/mfu/plru) need a trajectory
   from their first PR. Rows absent from a committed baseline render as
   "-" in the vs-base column and never gate. *)
let cases () =
  List.concat_map
    (fun spec ->
      match Spec.policy_of spec with
      | None -> [ spec ]
      | Some _ when Spec.name spec = "sa" ->
        List.map (Spec.with_policy spec) Policy.all
      | Some _ ->
        List.map (Spec.with_policy spec)
          [ Replacement.Lru; Replacement.Random; Replacement.Fifo ])
    Spec.all_paper

(* The timed loop itself is never instrumented (that would measure the
   telemetry, not the engine): each case is bracketed in a span and its
   result reported as gauges after the stopwatch has stopped.

   The pool is quiesced first: these are single-domain loops compared
   against baselines recorded in a single-domain process, and on OCaml 5
   even parked worker domains tax every minor collection with a
   stop-the-world handshake (noticeably, on small hosts). The pool
   respawns on the next parallel section. The heap is then compacted:
   the goalposts were recorded by [baseline.exe], a fresh process whose
   major heap holds nothing but this bench's own state, whereas inside
   the full bench run the preceding sections (validation matrices, e2e
   campaigns) leave a large live heap behind — and every minor
   collection during the measured loop then drags a proportionally
   larger major slice with it. Compacting restores the recording
   conditions; without it the same harness measures 20-30% slower here
   than standalone, which is bias against the gate, not variance. *)
let bench (ctx : Run.ctx) =
  Pool.quiesce ();
  Gc.compact ();
  let tm = ctx.Run.telemetry in
  Telemetry.with_span tm ~parent:ctx.Run.parent "throughput"
  @@ fun sp ->
  let accesses = if ctx.Run.quick then 40_000 else 400_000 in
  List.map
    (fun spec ->
      Telemetry.with_span tm ~parent:sp ("throughput:" ^ Spec.name spec)
      @@ fun case_sp ->
      let repeats = if ctx.Run.quick then 2 else 3 in
      let e = measure ~accesses ~repeats spec in
      Telemetry.gauge tm ~span:case_sp "accesses_per_sec" e.per_sec;
      Telemetry.gauge tm ~span:case_sp "accesses" (float_of_int e.accesses);
      (* Which access path ran: 1.0 = a monomorphized kernel, 0.0 = the
         generic dispatching fallback (gauges are floats; the kernel
         name string itself goes into the bench JSON row). *)
      Telemetry.gauge tm ~span:case_sp "cache.kernel"
        (if e.kernel = Kernel.generic then 0. else 1.);
      Telemetry.gauge tm ~span:case_sp "cache.slab_bytes"
        (float_of_int e.slab_bytes);
      e)
    (cases ())

let run ?(quick = false) () =
  let ctx = { Run.default with Run.quick = quick } in
  bench ctx

(* --- JSON (flat, line-oriented: one entry per line, fixed key order,
   so the file doubles as its own parser format) ------------------- *)

let entry_to_json e =
  Printf.sprintf
    "{\"arch\": \"%s\", \"policy\": \"%s\", \"accesses\": %d, \"seconds\": \
     %.6f, \"accesses_per_sec\": %.1f, \"warmup\": %d, \"repeats\": %d, \
     \"stddev\": %.1f, \"kernel\": \"%s\", \"slab_bytes\": %d}"
    e.arch e.policy e.accesses e.seconds e.per_sec e.warmup e.repeats e.stddev
    e.kernel e.slab_bytes

(* [?span_id] cross-references the telemetry JSON of the same run: it is
   the id of the span that wrapped this benchmark section (see
   [Scheduler.timed]), emitted as an extra header line that [read]'s
   line scanner skips over, keeping the format backward compatible. *)
let to_json ?span_id entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_cache/v2\",\n";
  (match span_id with
  | Some id when id <> 0 ->
    Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
  | Some _ | None -> ());
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (entry_to_json e);
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write ?span_id ~path entries =
  let oc = open_out path in
  output_string oc (to_json ?span_id entries);
  close_out oc

(* One entry line, v2 first, falling back to the v1 key set (committed
   baselines predate the honesty fields). v1 rows read as a single
   un-warmed repetition with no spread and an unknown access path. *)
let entry_of_line line =
  match
    Scanf.sscanf line
      "{\"arch\": %S, \"policy\": %S, \"accesses\": %d, \"seconds\": %f, \
       \"accesses_per_sec\": %f, \"warmup\": %d, \"repeats\": %d, \"stddev\": \
       %f, \"kernel\": %S, \"slab_bytes\": %d}"
      (fun arch policy accesses seconds per_sec warmup repeats stddev kernel
           slab_bytes ->
        {
          arch;
          policy;
          accesses;
          seconds;
          per_sec;
          warmup;
          repeats;
          stddev;
          kernel;
          slab_bytes;
        })
  with
  | e -> Some e
  | exception Scanf.Scan_failure _ | (exception End_of_file) -> (
    match
      Scanf.sscanf line
        "{\"arch\": %S, \"policy\": %S, \"accesses\": %d, \"seconds\": %f, \
         \"accesses_per_sec\": %f}"
        (fun arch policy accesses seconds per_sec ->
          {
            arch;
            policy;
            accesses;
            seconds;
            per_sec;
            warmup = 0;
            repeats = 1;
            stddev = 0.;
            kernel = "";
            slab_bytes = 0;
          })
    with
    | e -> Some e
    | exception Scanf.Scan_failure _ | (exception End_of_file) -> None)

(* Reads files produced by [write] (either schema version): scans each
   line for an entry object with a fixed key order. Returns [] when the
   file is absent or holds no entries (never raises). *)
let read ~path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match entry_of_line line with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries

let find entries ~arch ~policy =
  List.find_opt (fun e -> e.arch = arch && e.policy = policy) entries

(* --- end-to-end attack throughput (trials/second) ------------------- *)

(* The cache section above times the engine alone; this section times
   whole attack trials (prime -> victim encryption -> probe -> scoring)
   through the real attack harness, per attack class x representative
   architecture. That is the number the paper's campaigns are actually
   bound by: the validation matrix and Figures 9/10 are millions of such
   trials. The measured unit is one [run_span] call — exactly what
   Driver shards fan out — so the committed seed baseline
   (bench/BENCH_attacks.baseline.json, recorded from the pre-fast-path
   harness) and any later run are directly comparable per row. *)

module Attacks = struct
  open Cachesec_attacks

  type entry = {
    attack : string;
    arch : string;
    path : string;  (** "batched" | "scalar" — kernel selection measured *)
    trials : int;  (** timed trials (after a warm-up span) *)
    seconds : float;
    per_sec : float;
  }

  (* Row label for a kernel selection. [Auto] is labelled "batched"
     rather than "auto" because the auto-selection test guarantees every
     benchmarked arch picks a batched kernel — the label names what ran,
     not how it was asked for. *)
  let path_of_kernel = function
    | Kernel.Auto -> "batched"
    | Kernel.Scalar -> "scalar"
    | Kernel.Generic -> "generic"

  (* Conventional set-associative, the fully-associative randomized
     design, and per-set random permutation: the three harness regimes
     (many small sets / one huge "set" / randomized indexing). *)
  let archs = Spec.[ paper_sa; paper_newcache; paper_rp ]
  let classes = [ "prime-probe"; "evict-time"; "flush-reload"; "collision" ]

  let full_trials = function
    | "prime-probe" -> 1500
    | "flush-reload" -> 1500
    | "evict-time" -> 12_000
    | "collision" -> 12_000
    | a -> invalid_arg ("Throughput.Attacks: unknown attack class " ^ a)

  let span ~(s : Setup.t) attack count =
    match attack with
    | "prime-probe" ->
      ignore
        (Prime_probe.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~count
           { Prime_probe.default_config with Prime_probe.trials = count })
    | "evict-time" ->
      ignore
        (Evict_time.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~first:0 ~count
           { Evict_time.default_config with Evict_time.trials = count })
    | "flush-reload" ->
      ignore
        (Flush_reload.run_span ~victim:s.Setup.victim
           ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng ~count
           { Flush_reload.default_config with Flush_reload.trials = count })
    | "collision" ->
      ignore
        (Collision.run_span ~victim:s.Setup.victim ~rng:s.Setup.rng ~count
           { Collision.default_config with Collision.trials = count })
    | a -> invalid_arg ("Throughput.Attacks: unknown attack class " ^ a)

  let measure ?(seed = 0xA77A) ?trials ?(repeats = 3) ?(kernel = Kernel.Auto)
      attack spec =
    let trials = Option.value trials ~default:(full_trials attack) in
    let s = Setup.make ~seed ~kernel spec in
    (* Warm-up span: cache warm, any per-campaign state (probe plans,
       scratch buffers) built and in steady state before the stopwatch
       starts. *)
    span ~s attack (max 1 (trials / 10));
    (* Best-of-[repeats]: these numbers feed a hard PASS/FAIL gate, and
       a single quick-scale repetition lasts ~10 ms — short enough for
       one scheduler preemption on a loaded host to swing the rate by
       tens of percent. The minimum time across repetitions is the
       standard estimator of unloaded cost (external load only ever
       adds time); every repetition runs the same trial count, so the
       reported (trials, seconds) stay a real measured pair. *)
    let best = ref infinity in
    for _ = 1 to max 1 repeats do
      let t0 = Clock.now_s () in
      span ~s attack trials;
      let dt = Clock.elapsed_s ~since:t0 in
      if dt < !best then best := dt
    done;
    let dt = if !best <= 0. then epsilon_float else !best in
    {
      attack;
      arch = Spec.name spec;
      path = path_of_kernel kernel;
      trials;
      seconds = dt;
      per_sec = float_of_int trials /. dt;
    }

  (* Every class x arch is measured twice: once with the auto-selected
     batched kernels (the production path) and once with [Kernel.Scalar]
     — the monomorphized per-access kernel looped by [run_of_scalar],
     i.e. the exact pre-batching cost model. The pair in one file is the
     controlled experiment: same host, same build, same seeds, the only
     variable is the replay path. *)
  let cases () =
    List.concat_map
      (fun attack ->
        List.concat_map
          (fun spec ->
            [ (attack, spec, Kernel.Auto); (attack, spec, Kernel.Scalar) ])
          archs)
      classes

  (* Mirrors [bench] above: each case spanned and gauged only after its
     stopwatch has stopped.

     Trial counts are ALWAYS the full ones, even under [ctx.quick]:
     the gate compares trials/sec against a baseline recorded at full
     counts, and rates only transfer between runs when the per-span
     fixed costs (campaign state setup inside each [run_span]) are
     amortized identically on both sides — at a tenth of the trials
     those costs bias the measured rate low by enough to fail a
     healthy harness. Quick mode economises on repetitions instead
     (2 instead of 3), which costs variance, not bias. The pool is
     quiesced and the heap compacted for the same reasons as the engine
     bench above: both goalpost files were recorded single-domain by a
     fresh [baseline.exe] process, so parked workers' minor-GC
     handshakes and the major heap left behind by earlier bench
     sections are both bias this measurement must shed to compare
     like-for-like. *)
  let bench (ctx : Run.ctx) =
    Pool.quiesce ();
    Gc.compact ();
    let tm = ctx.Run.telemetry in
    Telemetry.with_span tm ~parent:ctx.Run.parent "attack-throughput"
    @@ fun sp ->
    List.map
      (fun (attack, spec, kernel) ->
        Telemetry.with_span tm ~parent:sp
          (Printf.sprintf "attacks:%s:%s:%s" attack (Spec.name spec)
             (path_of_kernel kernel))
        @@ fun case_sp ->
        let trials = full_trials attack in
        let repeats = if ctx.Run.quick then 2 else 3 in
        let e = measure ~trials ~repeats ~kernel attack spec in
        Telemetry.gauge tm ~span:case_sp "trials_per_sec" e.per_sec;
        Telemetry.gauge tm ~span:case_sp "trials" (float_of_int e.trials);
        e)
      (cases ())

  let entry_to_json e =
    Printf.sprintf
      "{\"attack\": \"%s\", \"arch\": \"%s\", \"path\": \"%s\", \"trials\": \
       %d, \"seconds\": %.6f, \"trials_per_sec\": %.1f}"
      e.attack e.arch e.path e.trials e.seconds e.per_sec

  let to_json ?span_id entries =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"bench_attacks/v2\",\n";
    (match span_id with
    | Some id when id <> 0 ->
      Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
    | Some _ | None -> ());
    Buffer.add_string buf "  \"entries\": [\n";
    List.iteri
      (fun i e ->
        Buffer.add_string buf "    ";
        Buffer.add_string buf (entry_to_json e);
        if i < List.length entries - 1 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n')
      entries;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf

  let write ?span_id ~path entries =
    let oc = open_out path in
    output_string oc (to_json ?span_id entries);
    close_out oc

  let read ~path =
    match open_in path with
    | exception Sys_error _ -> []
    | ic ->
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           (* v2 rows first; v1 rows (no "path" field) were recorded
              from the pre-batching harness, so they ARE scalar-path
              measurements — labelled as such, a v1 baseline file keeps
              gating the batched rows without re-recording. *)
           match
             Scanf.sscanf line
               "{\"attack\": %S, \"arch\": %S, \"path\": %S, \"trials\": %d, \
                \"seconds\": %f, \"trials_per_sec\": %f}"
               (fun attack arch path trials seconds per_sec ->
                 { attack; arch; path; trials; seconds; per_sec })
           with
           | e -> entries := e :: !entries
           | exception Scanf.Scan_failure _ -> (
             match
               Scanf.sscanf line
                 "{\"attack\": %S, \"arch\": %S, \"trials\": %d, \"seconds\": \
                  %f, \"trials_per_sec\": %f}"
                 (fun attack arch trials seconds per_sec ->
                   { attack; arch; path = "scalar"; trials; seconds; per_sec })
             with
             | e -> entries := e :: !entries
             | exception Scanf.Scan_failure _ -> ()
             | exception End_of_file -> ())
           | exception End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !entries

  let find entries ~attack ~arch ~path =
    List.find_opt
      (fun e -> e.attack = attack && e.arch = arch && e.path = path)
      entries

  (* Worst-case (minimum) speedup of [attack]'s BATCHED rows over the
     baseline's SCALAR rows, across the measured architectures — the
     honest per-class gate number: what batching buys over the
     pre-batching cost model, not drift between two runs of the same
     path. [None] when either side has no overlapping rows. *)
  let min_speedup entries ~baseline ~attack =
    List.filter_map
      (fun e ->
        if e.attack <> attack || e.path <> "batched" then None
        else
          match find baseline ~attack ~arch:e.arch ~path:"scalar" with
          | Some b when b.per_sec > 0. -> Some (e.per_sec /. b.per_sec)
          | Some _ | None -> None)
      entries
    |> function
    | [] -> None
    | xs -> Some (List.fold_left Float.min Float.infinity xs)

  (* The hard-gated classes. Prime-probe (probe-dominated: sets x ways
     counted accesses per trial) and evict-time (evict-dominated: ways
     Fill accesses per trial) spend their trials inside batched runs, so
     the kernels must show up here or the fast path is broken.
     Flush-reload and collision amortize their batched phases against
     work batching cannot touch (whole-region flush loops, AES
     tracing), so they report without failing the build. *)
  let hard_classes = [ "prime-probe"; "evict-time" ]

  let gate ?(threshold = 1.3) ~baseline entries =
    let base = read ~path:baseline in
    List.map
      (fun attack ->
        let s = min_speedup entries ~baseline:base ~attack in
        (attack, s, match s with Some x -> x >= threshold | None -> false))
      classes

  let render ?baseline entries =
    let buf = Buffer.create 1024 in
    let base = match baseline with None -> [] | Some path -> read ~path in
    Buffer.add_string buf
      (Printf.sprintf "  %-12s %-10s %-8s %10s %14s %10s\n" "attack" "arch"
         "path" "trials" "trials/sec" "vs base");
    List.iter
      (fun e ->
        (* Trajectory column: same attack/arch/path row of the baseline
           (a v1 baseline only carries scalar rows, so batched rows show
           "-" against it). The batched-vs-scalar gate number is
           computed separately by [min_speedup]. *)
        let vs =
          match find base ~attack:e.attack ~arch:e.arch ~path:e.path with
          | Some b when b.per_sec > 0. ->
            Printf.sprintf "%9.2fx" (e.per_sec /. b.per_sec)
          | Some _ | None -> "         -"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %-10s %-8s %10d %14.1f %s\n" e.attack
             e.arch e.path e.trials e.per_sec vs))
      entries;
    Buffer.contents buf
end

(* --- adaptive-stopping throughput (trials-to-confidence) ------------- *)

(* Controlled experiment for the adaptive runtime: the quick validation
   matrix run twice through the SAME adaptive machinery and batch plan —
   once with [ci_width = 0.] (never stops early: a fixed-count run that
   also measures the CI widths its budget achieves) and once with the
   target set to the fixed arm's WORST achieved width. The adaptive arm
   is therefore at least as precise as the fixed arm's least precise
   cell, and the trials ratio between the arms is exactly what
   sequential stopping buys at matched precision. Both arms share plan
   and seeds, so the ratio is seed-deterministic and jobs-invariant —
   it can gate hard, unlike wall-clock (which is reported, and tracked
   against the committed baseline's adaptive rows). *)

module Adaptive = struct
  type entry = {
    arm : string;  (* "fixed" | "adaptive" *)
    jobs : int;
    cores : int;
    cells : int;
    trials : int;  (** attack trials executed across the matrix *)
    caps : int;  (** total trial budget of the same cells *)
    width : float;  (** worst achieved CI half-width across the cells *)
    seconds : float;
  }

  let confidence = 0.95

  let bench (ctx : Run.ctx) =
    let ctx = Run.quick ctx in
    let jobs = Scheduler.resolve_jobs ctx.Run.jobs in
    let cores = Domain.recommended_domain_count () in
    let tm = ctx.Run.telemetry in
    let one ~arm ~ci_width =
      Telemetry.with_span tm ~parent:ctx.Run.parent ("adaptive:" ^ arm)
      @@ fun sp ->
      let ctx = Run.with_parent sp ctx in
      let t0 = Clock.now_s () in
      let cs =
        Validation.cells ~pipeline:true
          ~adaptive:{ Validation.confidence; ci_width }
          ctx
      in
      let dt = Clock.elapsed_s ~since:t0 in
      let dt = if dt <= 0. then epsilon_float else dt in
      let e =
        {
          arm;
          jobs;
          cores;
          cells = List.length cs;
          trials = Validation.total_trials cs;
          caps = Validation.total_caps cs;
          width = Validation.worst_half_width cs;
          seconds = dt;
        }
      in
      Telemetry.gauge tm ~span:sp "seconds" dt;
      Telemetry.gauge tm ~span:sp "trials" (float_of_int e.trials);
      Telemetry.gauge tm ~span:sp "ci_width" e.width;
      e
    in
    let fixed = one ~arm:"fixed" ~ci_width:0. in
    let adaptive = one ~arm:"adaptive" ~ci_width:fixed.width in
    [ fixed; adaptive ]

  let entry_to_json e =
    Printf.sprintf
      "{\"arm\": \"%s\", \"jobs\": %d, \"cores\": %d, \"cells\": %d, \
       \"trials\": %d, \"caps\": %d, \"width\": %.6f, \"seconds\": %.6f}"
      e.arm e.jobs e.cores e.cells e.trials e.caps e.width e.seconds

  let entry_of_line line =
    match
      Scanf.sscanf line
        "{\"arm\": %S, \"jobs\": %d, \"cores\": %d, \"cells\": %d, \
         \"trials\": %d, \"caps\": %d, \"width\": %f, \"seconds\": %f}"
        (fun arm jobs cores cells trials caps width seconds ->
          { arm; jobs; cores; cells; trials; caps; width; seconds })
    with
    | e -> Some e
    | exception Scanf.Scan_failure _ | (exception End_of_file) -> None

  (* Scans a BENCH_e2e.json for adaptive-arm rows, skipping the
     section-mode rows (and anything else) line by line — the same
     schema-compatible coexistence the other readers practice. *)
  let read ~path =
    match open_in path with
    | exception Sys_error _ -> []
    | ic ->
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           match entry_of_line line with
           | Some e -> entries := e :: !entries
           | None -> ()
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !entries

  let find entries ~arm = List.find_opt (fun e -> e.arm = arm) entries

  (* Within-run trials ratio (fixed / adaptive): the gate observable. *)
  let savings entries =
    match (find entries ~arm:"fixed", find entries ~arm:"adaptive") with
    | Some f, Some a when a.trials > 0 ->
      Some (float_of_int f.trials /. float_of_int a.trials)
    | _ -> None

  (* Within-run wall-clock ratio (fixed / adaptive); reported, never
     gated — wall-clock on a shared host is not deterministic. *)
  let wall_reduction entries =
    match (find entries ~arm:"fixed", find entries ~arm:"adaptive") with
    | Some f, Some a when a.seconds > 0. -> Some (f.seconds /. a.seconds)
    | _ -> None

  (* Hard gate: both arms run the same seeds and the stop decisions are
     functions of seed-determined estimates at deterministic round
     boundaries, so the ratio cannot vary across hosts or job counts. *)
  let gate ?(threshold = 2.0) entries =
    match savings entries with
    | None -> (None, false)
    | Some x -> (Some x, x >= threshold)

  let render ?baseline entries =
    let buf = Buffer.create 1024 in
    let base = match baseline with None -> [] | Some path -> read ~path in
    Buffer.add_string buf
      (Printf.sprintf "  %-10s %5s %6s %6s %10s %10s %10s %10s %10s\n" "arm"
         "jobs" "cores" "cells" "trials" "caps" "ci width" "seconds" "vs base");
    List.iter
      (fun e ->
        let vs =
          match find base ~arm:e.arm with
          | Some b when e.seconds > 0. ->
            Printf.sprintf "%9.2fx" (b.seconds /. e.seconds)
          | Some _ | None -> "         -"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %5d %6d %6d %10d %10d %10.4f %10.3f %s\n"
             e.arm e.jobs e.cores e.cells e.trials e.caps e.width e.seconds vs))
      entries;
    (match savings entries with
    | Some x ->
      Buffer.add_string buf
        (Printf.sprintf
           "  trials saved at matched worst-cell width (fixed / adaptive): \
            %.2fx\n"
           x)
    | None -> ());
    (match wall_reduction entries with
    | Some x ->
      Buffer.add_string buf
        (Printf.sprintf "  wall-clock reduction (fixed / adaptive): %.2fx\n" x)
    | None -> ());
    Buffer.contents buf
end

(* --- end-to-end harness throughput (campaign pipelining) ------------- *)

(* The sections above time one engine access and one attack trial; this
   section times whole report sections — the quick-scale validation
   matrix (36 cells) and the experimental figures (9 and 10) — through
   the real orchestration layer, once with strictly sequential campaign
   execution (each campaign awaited before the next is submitted; the
   pre-pool behaviour) and once with cross-campaign pipelining (all
   campaigns' shards submitted onto the pool before the first await).

   Both arms run the same trials with the same seeds, so the pipelined /
   sequential ratio isolates exactly what the pool refactor buys: shards
   of later campaigns filling the worker idle time at earlier campaigns'
   join barriers. That within-run ratio is the gate observable — it is a
   controlled experiment on the machine at hand, unlike a comparison
   against a committed baseline recorded on different hardware. The
   committed bench/BENCH_e2e.baseline.json (recorded pre-refactor, with
   its host's core count in the [cores] field) still feeds the [vs base]
   trajectory column.

   On hosts with fewer than 4 cores (or runs with jobs < 4) the ratio
   measures scheduling overhead, not parallelism — there are no idle
   workers to fill — so the gate reports instead of failing. *)

module E2e = struct
  type entry = {
    section : string;
    mode : string;  (* "sequential" | "pipelined" *)
    jobs : int;
    cores : int;
    units : int;
    seconds : float;
  }

  let sections = [ "validation-matrix"; "figures" ]

  (* Run one section's campaigns; returns the work-unit count (cells /
     figures) so an entry is self-describing. The figure/matrix strings
     are rendered and dropped — the measured quantity is orchestration
     wall-clock, and rendering is part of both arms equally. *)
  let run_section (ctx : Run.ctx) ~pipeline = function
    | "validation-matrix" -> List.length (Validation.cells ~pipeline ctx)
    | "figures" ->
      ignore (Figures.render_figure9 ~pipeline ctx : string);
      ignore (Figures.render_figure10 ~pipeline ctx : string);
      2
    | s -> invalid_arg ("Throughput.E2e: unknown section " ^ s)

  (* Always quick scale: the e2e bench measures orchestration, not trial
     volume, and must stay cheap enough for CI's bench smoke. *)
  let bench (ctx : Run.ctx) =
    let ctx = Run.quick ctx in
    let jobs = Scheduler.resolve_jobs ctx.Run.jobs in
    let cores = Domain.recommended_domain_count () in
    let tm = ctx.Run.telemetry in
    let one ~mode ~pipeline section =
      Telemetry.with_span tm ~parent:ctx.Run.parent
        (Printf.sprintf "e2e:%s:%s" mode section)
      @@ fun sp ->
      let ctx = Run.with_parent sp ctx in
      let t0 = Clock.now_s () in
      let units = run_section ctx ~pipeline section in
      let dt = Clock.elapsed_s ~since:t0 in
      let dt = if dt <= 0. then epsilon_float else dt in
      Telemetry.gauge tm ~span:sp "seconds" dt;
      Telemetry.gauge tm ~span:sp "units" (float_of_int units);
      { section; mode; jobs; cores; units; seconds = dt }
    in
    (* Sequential arm first (matches the committed baseline's order),
       then pipelined: both arms over both sections. *)
    List.map (one ~mode:"sequential" ~pipeline:false) sections
    @ List.map (one ~mode:"pipelined" ~pipeline:true) sections

  let entry_to_json e =
    Printf.sprintf
      "{\"section\": \"%s\", \"mode\": \"%s\", \"jobs\": %d, \"cores\": %d, \
       \"units\": %d, \"seconds\": %.6f}"
      e.section e.mode e.jobs e.cores e.units e.seconds

  (* v2 = v1 plus optional adaptive-arm rows in the same entries array
     (distinct key set; every reader here scans line-wise and skips
     rows it does not parse, so v1 and v2 files are mutually readable). *)
  let to_json ?span_id ?(adaptive = []) entries =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"bench_e2e/v2\",\n";
    (match span_id with
    | Some id when id <> 0 ->
      Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
    | Some _ | None -> ());
    Buffer.add_string buf "  \"entries\": [\n";
    let rows =
      List.map entry_to_json entries
      @ List.map Adaptive.entry_to_json adaptive
    in
    List.iteri
      (fun i r ->
        Buffer.add_string buf "    ";
        Buffer.add_string buf r;
        if i < List.length rows - 1 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n')
      rows;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf

  let write ?span_id ?adaptive ~path entries =
    let oc = open_out path in
    output_string oc (to_json ?span_id ?adaptive entries);
    close_out oc

  let read ~path =
    match open_in path with
    | exception Sys_error _ -> []
    | ic ->
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           match
             Scanf.sscanf line
               "{\"section\": %S, \"mode\": %S, \"jobs\": %d, \"cores\": %d, \
                \"units\": %d, \"seconds\": %f}"
               (fun section mode jobs cores units seconds ->
                 { section; mode; jobs; cores; units; seconds })
           with
           | e -> entries := e :: !entries
           | exception Scanf.Scan_failure _ -> ()
           | exception End_of_file -> ()
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !entries

  (* Baselines may hold rows for several jobs settings; prefer the row
     matching [?jobs], falling back to any row of the (section, mode). *)
  let find ?jobs entries ~section ~mode =
    let m e = e.section = section && e.mode = mode in
    match jobs with
    | Some j -> (
      match List.find_opt (fun e -> m e && e.jobs = j) entries with
      | Some _ as hit -> hit
      | None -> List.find_opt m entries)
    | None -> List.find_opt m entries

  (* Within-run pipelining speedup: total sequential wall over total
     pipelined wall, across all sections. [None] when either arm is
     missing. *)
  let speedup entries =
    let total mode =
      List.fold_left
        (fun acc e -> if e.mode = mode then acc +. e.seconds else acc)
        0. entries
    in
    let s = total "sequential" and p = total "pipelined" in
    if s > 0. && p > 0. then Some (s /. p) else None

  type verdict = Pass | Fail | Reported

  (* Hard gate only where the experiment can demonstrate parallelism:
     >= 4 cores on the host and >= 4 requested jobs. Anywhere else the
     ratio is still computed and printed, but cannot fail the run —
     with nothing to pipeline *into*, a ratio near 1.0 is the expected
     honest answer, not a regression. *)
  let gate ?(threshold = 1.3) entries =
    match speedup entries with
    | None -> (None, Reported)
    | Some x ->
      let hard = List.exists (fun e -> e.jobs >= 4 && e.cores >= 4) entries in
      if not hard then (Some x, Reported)
      else (Some x, if x >= threshold then Pass else Fail)

  let render ?baseline entries =
    let buf = Buffer.create 1024 in
    let base = match baseline with None -> [] | Some path -> read ~path in
    Buffer.add_string buf
      (Printf.sprintf "  %-18s %-11s %5s %6s %6s %10s %10s\n" "section" "mode"
         "jobs" "cores" "units" "seconds" "vs base");
    List.iter
      (fun e ->
        let vs =
          match find ~jobs:e.jobs base ~section:e.section ~mode:e.mode with
          | Some b when e.seconds > 0. ->
            Printf.sprintf "%9.2fx" (b.seconds /. e.seconds)
          | Some _ | None -> "         -"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-18s %-11s %5d %6d %6d %10.3f %s\n" e.section
             e.mode e.jobs e.cores e.units e.seconds vs))
      entries;
    (match speedup entries with
    | Some x ->
      Buffer.add_string buf
        (Printf.sprintf "  pipelining speedup (sequential / pipelined): %.2fx\n"
           x)
    | None -> ());
    Buffer.contents buf
end

(* Render the current run, with speedup columns against a baseline file
   when one is present. The ± column is the stddev of accesses/sec
   across the timed repetitions (0 for single-repetition v1 rows) — see
   docs/USAGE.md on reading it. *)
let render ?baseline entries =
  let buf = Buffer.create 1024 in
  let base = match baseline with None -> [] | Some path -> read ~path in
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %-8s %14s %12s %-11s %10s\n" "arch" "policy"
       "accesses/sec" "+/-" "kernel" "vs base");
  List.iter
    (fun e ->
      let vs =
        match find base ~arch:e.arch ~policy:e.policy with
        | Some b when b.per_sec > 0. ->
          Printf.sprintf "%9.2fx" (e.per_sec /. b.per_sec)
        | Some _ | None -> "         -"
      in
      let kernel = if e.kernel = "" then "-" else e.kernel in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %-8s %14.0f %12.0f %-11s %s\n" e.arch e.policy
           e.per_sec e.stddev kernel vs))
    entries;
  Buffer.contents buf
