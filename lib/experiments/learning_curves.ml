open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report
open Cachesec_runtime
open Cachesec_telemetry

type curve = {
  arch : string;
  pas_type4 : float;
  points : (int * float) list;
}

let default_grid = [ 50; 100; 200; 400; 800; 1600; 3200 ]
let default_seed = 61

(* The (trials x seed-instance) cross product is a flat bag of
   independent campaigns, so the whole curve fans out over the
   scheduler. Each instance keeps the legacy [seed + 1000 i] derivation,
   which makes the curve identical to the old serial loop for any
   [jobs]. *)
let curve ?(seeds = 8) ?(grid = default_grid) (ctx : Run.ctx) spec =
  if seeds <= 0 then
    invalid_arg "Learning_curves.run_curve: seeds must be positive";
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent
    ("learning-curve:" ^ Spec.name spec)
  @@ fun sp ->
  let seed = ctx.Run.seed in
  let work =
    Array.of_list
      (List.concat_map
         (fun trials -> List.init seeds (fun i -> (trials, i)))
         grid)
  in
  let campaign (trials, i) =
    let s = Setup.make ~seed:(seed + (1000 * i)) spec in
    let r =
      Flush_reload.run ~victim:s.Setup.victim
        ~attacker_pid:s.Setup.attacker_pid ~rng:s.Setup.rng
        { Flush_reload.trials; target_byte = 0; victim_prefetch = false }
    in
    if r.Flush_reload.nibble_recovered then 1 else 0
  in
  let wins =
    Scheduler.map_array ?jobs:ctx.Run.jobs ~tm:ctx.Run.telemetry ~span:sp
      campaign work
  in
  let points =
    List.mapi
      (fun gi trials ->
        let total = ref 0 in
        for i = 0 to seeds - 1 do
          total := !total + wins.((gi * seeds) + i)
        done;
        (trials, float_of_int !total /. float_of_int seeds))
      grid
  in
  {
    arch = Spec.display_name spec;
    pas_type4 = Attack_models.pas Attack_type.Flush_and_reload spec ();
    points;
  }

let standard_specs =
  [ Spec.paper_sa; Spec.paper_re; Spec.paper_noisy; Spec.paper_rf;
    Spec.paper_newcache ]

let curves ?seeds (ctx : Run.ctx) =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent
    "learning-curves"
  @@ fun sp ->
  let ctx = Run.with_parent sp ctx in
  List.map (fun spec -> curve ?seeds ctx spec) standard_specs

let render curves =
  let grid =
    match curves with [] -> [] | c :: _ -> List.map fst c.points
  in
  let headers =
    "Cache" :: "PAS T4"
    :: List.map (fun t -> Printf.sprintf "n=%d" t) grid
  in
  let rows =
    List.map
      (fun c ->
        c.arch :: Table.fmt_prob c.pas_type4
        :: List.map (fun (_, f) -> Printf.sprintf "%.2f" f) c.points)
      curves
  in
  "Sample complexity of flush-and-reload (nibble-recovery frequency over\n\
   seeds vs trial count): higher PAS means fewer trials; PAS ~ 0 never\n\
   converges - the operational reading of the metric.\n"
  ^ Table.render ~headers ~rows ()

let csv_rows curves =
  List.concat_map
    (fun c ->
      List.map
        (fun (t, f) ->
          [
            c.arch;
            Printf.sprintf "%.6g" c.pas_type4;
            string_of_int t;
            Printf.sprintf "%.4f" f;
          ])
        c.points)
    curves

(* --- deprecated optional-tail wrappers ------------------------------- *)

let ctx_of ?(seed = default_seed) ?jobs () =
  { Run.default with Run.seed; jobs }

let run_curve ?seed ?seeds ?jobs ?grid spec =
  curve ?seeds ?grid (ctx_of ?seed ?jobs ()) spec

let table ?seed ?seeds ?jobs () = curves ?seeds (ctx_of ?seed ?jobs ())
