open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report
open Cachesec_runtime
open Cachesec_telemetry

(* Both helpers fan their trials out over the trial runtime; ablation
   outcomes are independent of [ctx.jobs]. The submit forms dispatch the
   campaign's shards onto the pool without blocking, so a sweep can
   launch every row's campaign before awaiting the first — rows are
   awaited (and tables built) in row order, keeping the rendered output
   bit-identical to the sequential formulation. *)
let submit_collision (ctx : Run.ctx) spec trials =
  Driver.submit_collision ctx spec
    {
      Collision.default_config with
      Collision.trials = Figures.trials_for (Figures.scale_of ctx) trials;
    }

let submit_evict_time (ctx : Run.ctx) spec trials =
  Driver.submit_evict_time ctx spec
    {
      Evict_time.default_config with
      Evict_time.trials = Figures.trials_for (Figures.scale_of ctx) trials;
    }

(* Every sweep is one telemetry span; the Driver campaigns for its cells
   nest under it. *)
let sweep (ctx : Run.ctx) name body =
  Telemetry.with_span ctx.Run.telemetry ~parent:ctx.Run.parent name
  @@ fun sp -> body (Run.with_parent sp ctx)

let render_rf_window (ctx : Run.ctx) =
  sweep ctx "ablation:rf-window" @@ fun ctx ->
  let windows = [ 0; 4; 16; 64; 128 ] in
  let rows =
    Driver.await_all
      (List.map
         (fun w ->
           let spec = Spec.Rf { ways = 8; policy = Replacement.Random; back = w; fwd = w } in
           let pas = Attack_models.pas Attack_type.Cache_collision spec () in
           Driver.map_pending
             (fun (r : Collision.result) ->
               [
                 string_of_int w;
                 Table.fmt_prob pas;
                 string_of_bool r.Collision.nibble_recovered;
                 Printf.sprintf "%.2f" r.Collision.separation;
               ])
             (submit_collision ctx spec 100000))
         windows)
  in
  "Ablation: RF window half-size vs collision-attack PAS (p0 = 1/(2w+1))\n"
  ^ Table.render
      ~headers:[ "window w"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let render_re_interval (ctx : Run.ctx) =
  sweep ctx "ablation:re-interval" @@ fun ctx ->
  let intervals = [ 1; 2; 5; 10; 100 ] in
  let rows =
    Driver.await_all
      (List.map
         (fun t ->
           let spec = Spec.Re { ways = 1; policy = Replacement.Random; interval = t } in
           let pas = Attack_models.pas Attack_type.Cache_collision spec () in
           Driver.map_pending
             (fun (r : Collision.result) ->
               [
                 string_of_int t;
                 Table.fmt_prob pas;
                 string_of_bool r.Collision.nibble_recovered;
                 Printf.sprintf "%.2f" r.Collision.separation;
               ])
             (submit_collision ctx spec 100000))
         intervals)
  in
  "Ablation: RE eviction interval vs collision-attack PAS (p4 = 1 - 1/(N T))\n"
  ^ Table.render
      ~headers:[ "interval T"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let render_noise_sigma (ctx : Run.ctx) =
  sweep ctx "ablation:noise-sigma" @@ fun ctx ->
  let sigmas = [ 0.; 0.25; 0.5; 1.; 2. ] in
  let rows =
    Driver.await_all
      (List.map
         (fun sigma ->
           let spec = Spec.Noisy { ways = 8; policy = Replacement.Random; sigma } in
           let pas = Attack_models.pas Attack_type.Evict_and_time spec () in
           let trials_needed =
             if sigma = 0. then 1
             else Noise.trials_to_overcome ~sigma ~confidence:0.99
           in
           Driver.map_pending
             (fun (r : Evict_time.result) ->
               [
                 Printf.sprintf "%g" sigma;
                 Table.fmt_prob (Noise.p5 ~sigma);
                 Table.fmt_prob pas;
                 string_of_int trials_needed;
                 string_of_bool r.Evict_time.nibble_recovered;
               ])
             (submit_evict_time ctx spec 50000))
         sigmas)
  in
  "Ablation: noisy-cache sigma vs Type 1 PAS; noise only slows the attacker\n"
  ^ Table.render
      ~headers:
        [ "sigma"; "p5"; "PAS (analytic)"; "avg trials to 99%"; "nibble recovered" ]
      ~rows ()

let render_nomo_reserved (ctx : Run.ctx) =
  sweep ctx "ablation:nomo-reserved" @@ fun ctx ->
  let reservations = [ 0; 1; 2; 4 ] in
  let rows =
    Driver.await_all
      (List.map
         (fun reserved ->
           let spec = Spec.Nomo { ways = 8; policy = Replacement.Random; reserved } in
           let pas = Attack_models.pas Attack_type.Evict_and_time spec () in
           Driver.map_pending
             (fun (r : Evict_time.result) ->
               [
                 Printf.sprintf "%d/8" reserved;
                 Table.fmt_prob pas;
                 string_of_bool r.Evict_time.nibble_recovered;
                 Printf.sprintf "%.2f" r.Evict_time.separation;
               ])
             (submit_evict_time ctx spec 50000))
         reservations)
  in
  "Ablation: Nomo reserved ways vs Type 1 (the AES footprint is 1-2 lines/set:\n\
   protection appears once the reservation covers it)\n"
  ^ Table.render
      ~headers:[ "reserved"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let render_replacement_policy (ctx : Run.ctx) =
  sweep ctx "ablation:replacement-policy" @@ fun ctx ->
  let rows =
    Driver.await_all
      (List.map
         (fun policy ->
           let spec = Spec.Sa { ways = 8; policy } in
           Driver.map_pending
             (fun (r : Evict_time.result) ->
               [
                 Replacement.policy_to_string policy;
                 string_of_bool r.Evict_time.nibble_recovered;
                 Printf.sprintf "%.2f" r.Evict_time.separation;
               ])
             (submit_evict_time ctx spec 50000))
         [ Replacement.Lru; Replacement.Random; Replacement.Fifo ])
  in
  "Ablation: replacement policy vs Type 1. With LRU (or FIFO) the\n\
   attacker's w fresh accesses evict the set deterministically, so the\n\
   attack is stronger than under random replacement - the reason the\n\
   paper evaluates all caches with the random policy ('this gives better\n\
   resilience against cache attackers', Section 3.7).\n"
  ^ Table.render
      ~headers:[ "policy"; "nibble recovered"; "z" ]
      ~rows ()

(* The historical sweep seeds: each sweep has always run under its own
   default seed (11..15), so the combined report keeps doing the same —
   [render] re-seeds the shared ctx per sweep rather than reusing
   [ctx.seed] verbatim, preserving bit-identical output with the
   deprecated [all]. *)
let rf_window_seed = 11
let re_interval_seed = 12
let noise_sigma_seed = 13
let nomo_reserved_seed = 14
let replacement_policy_seed = 15

let render (ctx : Run.ctx) =
  String.concat "\n"
    [
      render_rf_window (Run.with_seed rf_window_seed ctx);
      render_re_interval (Run.with_seed re_interval_seed ctx);
      render_noise_sigma (Run.with_seed noise_sigma_seed ctx);
      render_nomo_reserved (Run.with_seed nomo_reserved_seed ctx);
      render_replacement_policy (Run.with_seed replacement_policy_seed ctx);
    ]

(* --- deprecated optional-tail wrappers ------------------------------- *)

let ctx_of ?(scale = Figures.Full) ~seed ?jobs () =
  let ctx = { Run.default with Run.seed; jobs } in
  if scale = Figures.Quick then Run.quick ctx else ctx

let rf_window ?scale ?(seed = rf_window_seed) ?jobs () =
  render_rf_window (ctx_of ?scale ~seed ?jobs ())

let re_interval ?scale ?(seed = re_interval_seed) ?jobs () =
  render_re_interval (ctx_of ?scale ~seed ?jobs ())

let noise_sigma ?scale ?(seed = noise_sigma_seed) ?jobs () =
  render_noise_sigma (ctx_of ?scale ~seed ?jobs ())

let nomo_reserved ?scale ?(seed = nomo_reserved_seed) ?jobs () =
  render_nomo_reserved (ctx_of ?scale ~seed ?jobs ())

let replacement_policy ?scale ?(seed = replacement_policy_seed) ?jobs () =
  render_replacement_policy (ctx_of ?scale ~seed ?jobs ())

let all ?scale ?seed ?jobs () =
  String.concat "\n"
    [
      rf_window ?scale ?seed ?jobs ();
      re_interval ?scale ?seed ?jobs ();
      noise_sigma ?scale ?seed ?jobs ();
      nomo_reserved ?scale ?seed ?jobs ();
      replacement_policy ?scale ?seed ?jobs ();
    ]
