open Cachesec_cache
open Cachesec_attacks
open Cachesec_analysis
open Cachesec_report

(* Both helpers fan their trials out over the trial runtime; ablation
   outcomes are independent of [jobs]. *)
let run_collision ?jobs ~scale ~seed spec trials =
  Driver.collision ?jobs ~seed spec
    { Collision.default_config with Collision.trials = Figures.trials_for scale trials }

let run_evict_time ?jobs ~scale ~seed spec trials =
  Driver.evict_time ?jobs ~seed spec
    { Evict_time.default_config with Evict_time.trials = Figures.trials_for scale trials }

let rf_window ?(scale = Figures.Full) ?(seed = 11) ?jobs () =
  let windows = [ 0; 4; 16; 64; 128 ] in
  let rows =
    List.map
      (fun w ->
        let spec = Spec.Rf { ways = 8; policy = Replacement.Random; back = w; fwd = w } in
        let pas = Attack_models.pas Attack_type.Cache_collision spec () in
        let r = run_collision ?jobs ~scale ~seed spec 100000 in
        [
          string_of_int w;
          Table.fmt_prob pas;
          string_of_bool r.Collision.nibble_recovered;
          Printf.sprintf "%.2f" r.Collision.separation;
        ])
      windows
  in
  "Ablation: RF window half-size vs collision-attack PAS (p0 = 1/(2w+1))\n"
  ^ Table.render
      ~headers:[ "window w"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let re_interval ?(scale = Figures.Full) ?(seed = 12) ?jobs () =
  let intervals = [ 1; 2; 5; 10; 100 ] in
  let rows =
    List.map
      (fun t ->
        let spec = Spec.Re { ways = 1; policy = Replacement.Random; interval = t } in
        let pas = Attack_models.pas Attack_type.Cache_collision spec () in
        let r = run_collision ?jobs ~scale ~seed spec 100000 in
        [
          string_of_int t;
          Table.fmt_prob pas;
          string_of_bool r.Collision.nibble_recovered;
          Printf.sprintf "%.2f" r.Collision.separation;
        ])
      intervals
  in
  "Ablation: RE eviction interval vs collision-attack PAS (p4 = 1 - 1/(N T))\n"
  ^ Table.render
      ~headers:[ "interval T"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let noise_sigma ?(scale = Figures.Full) ?(seed = 13) ?jobs () =
  let sigmas = [ 0.; 0.25; 0.5; 1.; 2. ] in
  let rows =
    List.map
      (fun sigma ->
        let spec = Spec.Noisy { ways = 8; policy = Replacement.Random; sigma } in
        let pas = Attack_models.pas Attack_type.Evict_and_time spec () in
        let trials_needed =
          if sigma = 0. then 1
          else Noise.trials_to_overcome ~sigma ~confidence:0.99
        in
        let r = run_evict_time ?jobs ~scale ~seed spec 50000 in
        [
          Printf.sprintf "%g" sigma;
          Table.fmt_prob (Noise.p5 ~sigma);
          Table.fmt_prob pas;
          string_of_int trials_needed;
          string_of_bool r.Evict_time.nibble_recovered;
        ])
      sigmas
  in
  "Ablation: noisy-cache sigma vs Type 1 PAS; noise only slows the attacker\n"
  ^ Table.render
      ~headers:
        [ "sigma"; "p5"; "PAS (analytic)"; "avg trials to 99%"; "nibble recovered" ]
      ~rows ()

let nomo_reserved ?(scale = Figures.Full) ?(seed = 14) ?jobs () =
  let reservations = [ 0; 1; 2; 4 ] in
  let rows =
    List.map
      (fun reserved ->
        let spec = Spec.Nomo { ways = 8; policy = Replacement.Random; reserved } in
        let pas = Attack_models.pas Attack_type.Evict_and_time spec () in
        let r = run_evict_time ?jobs ~scale ~seed spec 50000 in
        [
          Printf.sprintf "%d/8" reserved;
          Table.fmt_prob pas;
          string_of_bool r.Evict_time.nibble_recovered;
          Printf.sprintf "%.2f" r.Evict_time.separation;
        ])
      reservations
  in
  "Ablation: Nomo reserved ways vs Type 1 (the AES footprint is 1-2 lines/set:\n\
   protection appears once the reservation covers it)\n"
  ^ Table.render
      ~headers:[ "reserved"; "PAS (analytic)"; "nibble recovered"; "z" ]
      ~rows ()

let replacement_policy ?(scale = Figures.Full) ?(seed = 15) ?jobs () =
  let rows =
    List.map
      (fun policy ->
        let spec = Spec.Sa { ways = 8; policy } in
        let r = run_evict_time ?jobs ~scale ~seed spec 50000 in
        [
          Replacement.policy_to_string policy;
          string_of_bool r.Evict_time.nibble_recovered;
          Printf.sprintf "%.2f" r.Evict_time.separation;
        ])
      [ Replacement.Lru; Replacement.Random; Replacement.Fifo ]
  in
  "Ablation: replacement policy vs Type 1. With LRU (or FIFO) the\n\
   attacker's w fresh accesses evict the set deterministically, so the\n\
   attack is stronger than under random replacement - the reason the\n\
   paper evaluates all caches with the random policy ('this gives better\n\
   resilience against cache attackers', Section 3.7).\n"
  ^ Table.render
      ~headers:[ "policy"; "nibble recovered"; "z" ]
      ~rows ()

let all ?scale ?seed ?jobs () =
  String.concat "\n"
    [
      rf_window ?scale ?seed ?jobs ();
      re_interval ?scale ?seed ?jobs ();
      noise_sigma ?scale ?seed ?jobs ();
      nomo_reserved ?scale ?seed ?jobs ();
      replacement_policy ?scale ?seed ?jobs ();
    ]
