(** Table-based AES-128, instrumented for cache-trace extraction.

    The encryption path is the classic 32-bit T-table implementation whose
    table lookups are precisely the memory accesses the paper's four
    attacks observe. [encrypt_traced] reports every lookup as a
    [(table, index)] pair in program order: 16 lookups into te0..te3 per
    round for rounds 1-9 (round 1's indices are plaintext XOR key — the
    leak exploited by first-round attacks), then 16 final-round lookups
    into te4.

    Correctness is pinned to the FIPS-197 vectors in the test suite, and
    [decrypt] (a byte-oriented inverse cipher) provides the round-trip
    oracle for property tests. *)

type key
(** Expanded AES-128 key schedule. *)

val key_of_bytes : Bytes.t -> key
(** Expand a 16-byte key. Raises [Invalid_argument] on wrong length. *)

val key_of_hex : string -> key
(** Expand a 32-hex-digit key. *)

val key_bytes : key -> Bytes.t
(** The original 16-byte key material. *)

type access = { table : int; index : int }
(** One table lookup: [table] in 0..3 for te0..te3, 4 for the final-round
    table; [index] in 0..255. *)

val encrypt : key -> Bytes.t -> Bytes.t
(** Encrypt one 16-byte block. Raises [Invalid_argument] on wrong length. *)

val encrypt_traced : key -> Bytes.t -> Bytes.t * access array
(** Encrypt and report the 160 table lookups in program order. *)

(** {2 Allocation-free fast path}

    [encrypt_traced] allocates a fresh ciphertext, a fresh trace array
    and one [access] record per lookup — fine for analysis code, fatal
    inside a million-trial attack loop. The [_into] variant below writes
    into caller-owned buffers and encodes each lookup as a packed
    immediate int, so a steady-state call performs no GC allocation. *)

type scratch
(** Reusable cipher state (two 4-word arrays). One scratch per victim
    is enough; calls may not overlap (not re-entrant). *)

val create_scratch : unit -> scratch

val trace_length : int
(** Number of table lookups per block: 160 (9 rounds x 16 + 16 final). *)

val encrypt_traced_into :
  scratch -> key -> src:Bytes.t -> dst:Bytes.t -> trace:int array -> unit
(** Encrypt the 16-byte [src] into the 16-byte [dst], writing the 160
    lookups into [trace.(0..159)] in program order as packed
    [(table lsl 8) lor index] ints. Same cipher, same lookup order and
    same error message ("Aes.encrypt: need a 16-byte block" for a bad
    [src]) as {!encrypt_traced}; raises [Invalid_argument] if [dst] is
    not 16 bytes or [trace] has fewer than {!trace_length} slots. *)

val table_of_packed : int -> int
(** [table_of_packed a = a lsr 8] — 0..3 for te0..te3, 4 for te4. *)

val index_of_packed : int -> int
(** [index_of_packed a = a land 0xff]. *)

val access_of_packed : int -> access
(** Unpack into the record form (allocates). *)

val first_round_accesses : key -> Bytes.t -> access array
(** Just the 16 first-round lookups (computable without encrypting), in
    byte order: byte i reads table [i mod 4] at index
    [plaintext.(i) lxor key.(i)]. *)

val decrypt : key -> Bytes.t -> Bytes.t
(** Inverse cipher (byte-oriented; untraced). *)

val round10_key : key -> Bytes.t
(** The last round key (words w40..w43) as 16 bytes — what a last-round
    attack recovers directly. *)

val key_of_round10 : Bytes.t -> key
(** Invert the AES-128 key schedule: rebuild the full schedule (and the
    master key) from the last round key. Inverse of {!round10_key}:
    [key_bytes (key_of_round10 (round10_key k)) = key_bytes k]. *)

val hex_of_bytes : Bytes.t -> string
val bytes_of_hex : string -> Bytes.t
(** Raises [Invalid_argument] on odd length or non-hex characters. *)
