let mask = 0xffffffff

type key = { words : int array; raw : Bytes.t }
type access = { table : int; index : int }

let getu32 b i =
  (Char.code (Bytes.get b i) lsl 24)
  lor (Char.code (Bytes.get b (i + 1)) lsl 16)
  lor (Char.code (Bytes.get b (i + 2)) lsl 8)
  lor Char.code (Bytes.get b (i + 3))

let putu32 b i w =
  Bytes.set b i (Char.chr ((w lsr 24) land 0xff));
  Bytes.set b (i + 1) (Char.chr ((w lsr 16) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((w lsr 8) land 0xff));
  Bytes.set b (i + 3) (Char.chr (w land 0xff))

let sub_word w =
  (Sbox.sub (w lsr 24) lsl 24)
  lor (Sbox.sub ((w lsr 16) land 0xff) lsl 16)
  lor (Sbox.sub ((w lsr 8) land 0xff) lsl 8)
  lor Sbox.sub (w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land mask

let key_of_bytes raw =
  if Bytes.length raw <> 16 then invalid_arg "Aes.key_of_bytes: need 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <- getu32 raw (4 * i)
  done;
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then
        sub_word (rot_word temp) lxor (Gf256.pow 2 ((i / 4) - 1) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp land mask
  done;
  { words = w; raw = Bytes.copy raw }

let key_bytes k = Bytes.copy k.raw

(* The shared encryption core. [sink] sees every table lookup. *)
let encrypt_core k input sink =
  if Bytes.length input <> 16 then invalid_arg "Aes.encrypt: need a 16-byte block";
  let w = k.words in
  let te0 = Ttables.te 0
  and te1 = Ttables.te 1
  and te2 = Ttables.te 2
  and te3 = Ttables.te 3 in
  let look t tbl i =
    sink { table = t; index = i };
    tbl.(i)
  in
  let s = Array.make 4 0 in
  for c = 0 to 3 do
    s.(c) <- getu32 input (4 * c) lxor w.(c)
  done;
  let t = Array.make 4 0 in
  for round = 1 to 9 do
    for c = 0 to 3 do
      (* Sequential lets fix the lookup order (OCaml evaluates operator
         operands right to left): the trace must reflect program order. *)
      let l0 = look 0 te0 (s.(c) lsr 24) in
      let l1 = look 1 te1 ((s.((c + 1) mod 4) lsr 16) land 0xff) in
      let l2 = look 2 te2 ((s.((c + 2) mod 4) lsr 8) land 0xff) in
      let l3 = look 3 te3 (s.((c + 3) mod 4) land 0xff) in
      t.(c) <- l0 lxor l1 lxor l2 lxor l3 lxor w.((4 * round) + c)
    done;
    Array.blit t 0 s 0 4
  done;
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    let l0 = look 4 Ttables.te4 (s.(c) lsr 24) land 0xff000000 in
    let l1 =
      look 4 Ttables.te4 ((s.((c + 1) mod 4) lsr 16) land 0xff) land 0x00ff0000
    in
    let l2 =
      look 4 Ttables.te4 ((s.((c + 2) mod 4) lsr 8) land 0xff) land 0x0000ff00
    in
    let l3 = look 4 Ttables.te4 (s.((c + 3) mod 4) land 0xff) land 0x000000ff in
    let o = l0 lxor l1 lxor l2 lxor l3 lxor w.(40 + c) in
    putu32 out (4 * c) (o land mask)
  done;
  out

let encrypt k input = encrypt_core k input ignore

(* ------------------------------------------------------------------ *)
(* Allocation-free fast path.

   [encrypt_traced_into] is the same cipher as [encrypt_core], unrolled
   without the [sink] closure: every table lookup is written as a packed
   [(table lsl 8) lor index] int into a caller-owned [trace] array at an
   arithmetically computed position, so a steady-state call allocates
   nothing (ints are immediate; the state arrays live in [scratch]).
   Lookup ORDER and index VALUES are identical to [encrypt_core] —
   [encrypt_traced] below is re-derived from this path and the test
   suite pins it against the closure-based core's historical output. *)

let trace_length = 160

type scratch = { st : int array; tmp : int array }

let create_scratch () = { st = Array.make 4 0; tmp = Array.make 4 0 }

let table_of_packed a = a lsr 8
let index_of_packed a = a land 0xff
let access_of_packed a = { table = a lsr 8; index = a land 0xff }

let encrypt_traced_into sc k ~src ~dst ~trace =
  if Bytes.length src <> 16 then invalid_arg "Aes.encrypt: need a 16-byte block";
  if Bytes.length dst <> 16 then
    invalid_arg "Aes.encrypt_traced_into: dst needs 16 bytes";
  if Array.length trace < trace_length then
    invalid_arg "Aes.encrypt_traced_into: trace needs 160 slots";
  let w = k.words in
  let te0 = Ttables.te 0
  and te1 = Ttables.te 1
  and te2 = Ttables.te 2
  and te3 = Ttables.te 3
  and te4 = Ttables.te4 in
  let s = sc.st and t = sc.tmp in
  for c = 0 to 3 do
    s.(c) <- getu32 src (4 * c) lxor w.(c)
  done;
  for round = 1 to 9 do
    let base = (round - 1) * 16 in
    for c = 0 to 3 do
      let p = base + (4 * c) in
      (* Sequential lets fix the lookup order, exactly as in
         [encrypt_core]: program order is te0, te1, te2, te3. *)
      let i0 = s.(c) lsr 24 in
      trace.(p) <- i0 (* table 0: packed tag is 0 *);
      let l0 = te0.(i0) in
      let i1 = (s.((c + 1) mod 4) lsr 16) land 0xff in
      trace.(p + 1) <- 0x100 lor i1;
      let l1 = te1.(i1) in
      let i2 = (s.((c + 2) mod 4) lsr 8) land 0xff in
      trace.(p + 2) <- 0x200 lor i2;
      let l2 = te2.(i2) in
      let i3 = s.((c + 3) mod 4) land 0xff in
      trace.(p + 3) <- 0x300 lor i3;
      let l3 = te3.(i3) in
      t.(c) <- l0 lxor l1 lxor l2 lxor l3 lxor w.((4 * round) + c)
    done;
    Array.blit t 0 s 0 4
  done;
  for c = 0 to 3 do
    let p = 144 + (4 * c) in
    let i0 = s.(c) lsr 24 in
    trace.(p) <- 0x400 lor i0;
    let l0 = te4.(i0) land 0xff000000 in
    let i1 = (s.((c + 1) mod 4) lsr 16) land 0xff in
    trace.(p + 1) <- 0x400 lor i1;
    let l1 = te4.(i1) land 0x00ff0000 in
    let i2 = (s.((c + 2) mod 4) lsr 8) land 0xff in
    trace.(p + 2) <- 0x400 lor i2;
    let l2 = te4.(i2) land 0x0000ff00 in
    let i3 = s.((c + 3) mod 4) land 0xff in
    trace.(p + 3) <- 0x400 lor i3;
    let l3 = te4.(i3) land 0x000000ff in
    let o = l0 lxor l1 lxor l2 lxor l3 lxor w.(40 + c) in
    putu32 dst (4 * c) (o land mask)
  done

let encrypt_traced k input =
  let sc = create_scratch () in
  let trace = Array.make trace_length 0 in
  let dst = Bytes.create 16 in
  encrypt_traced_into sc k ~src:input ~dst ~trace;
  (dst, Array.map access_of_packed trace)

let first_round_accesses k plaintext =
  if Bytes.length plaintext <> 16 then
    invalid_arg "Aes.first_round_accesses: need a 16-byte block";
  Array.init 16 (fun i ->
      let kb = Char.code (Bytes.get k.raw i) in
      let pb = Char.code (Bytes.get plaintext i) in
      { table = i mod 4; index = pb lxor kb })

(* Byte-oriented inverse cipher, used as the round-trip oracle. *)
let add_round_key state w off =
  for c = 0 to 3 do
    let word = w.(off + c) in
    for r = 0 to 3 do
      let i = (4 * c) + r in
      state.(i) <- state.(i) lxor ((word lsr (24 - (8 * r))) land 0xff)
    done
  done

let inv_shift_rows state =
  let copy = Array.copy state in
  for r = 0 to 3 do
    for c = 0 to 3 do
      (* state'[r][c] = state[r][(c - r) mod 4] *)
      state.((4 * c) + r) <- copy.((4 * ((c - r + 4) mod 4)) + r)
    done
  done

let inv_sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- Sbox.inv_sub state.(i)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b i = state.((4 * c) + i) in
    let a0 = b 0 and a1 = b 1 and a2 = b 2 and a3 = b 3 in
    let m = Gf256.mul in
    state.(4 * c) <- m a0 14 lxor m a1 11 lxor m a2 13 lxor m a3 9;
    state.((4 * c) + 1) <- m a0 9 lxor m a1 14 lxor m a2 11 lxor m a3 13;
    state.((4 * c) + 2) <- m a0 13 lxor m a1 9 lxor m a2 14 lxor m a3 11;
    state.((4 * c) + 3) <- m a0 11 lxor m a1 13 lxor m a2 9 lxor m a3 14
  done

let decrypt k input =
  if Bytes.length input <> 16 then invalid_arg "Aes.decrypt: need a 16-byte block";
  let state = Array.init 16 (fun i -> Char.code (Bytes.get input i)) in
  add_round_key state k.words 40;
  for round = 9 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state k.words (4 * round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state k.words 0;
  Bytes.init 16 (fun i -> Char.chr state.(i))

let round10_key k =
  let b = Bytes.create 16 in
  for c = 0 to 3 do
    putu32 b (4 * c) k.words.(40 + c)
  done;
  b

let key_of_round10 last =
  if Bytes.length last <> 16 then
    invalid_arg "Aes.key_of_round10: need 16 bytes";
  let w = Array.make 44 0 in
  for c = 0 to 3 do
    w.(40 + c) <- getu32 last (4 * c)
  done;
  (* The schedule step is w.(i) = w.(i-4) xor f(w.(i-1)); walking i from
     43 down to 4 recovers w.(i-4) because w.(i-1) is always already
     known (for i = 40 it is w.(39), produced at step i = 43). *)
  for i = 43 downto 4 do
    let temp =
      if i mod 4 = 0 then
        sub_word (rot_word w.(i - 1)) lxor (Gf256.pow 2 ((i / 4) - 1) lsl 24)
      else w.(i - 1)
    in
    w.(i - 4) <- w.(i) lxor temp land mask
  done;
  let raw = Bytes.create 16 in
  for c = 0 to 3 do
    putu32 raw (4 * c) w.(c)
  done;
  key_of_bytes raw

let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Aes.bytes_of_hex: non-hex character"

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Aes.bytes_of_hex: odd length";
  Bytes.init (n / 2) (fun i ->
      Char.chr ((hex_digit s.[2 * i] lsl 4) lor hex_digit s.[(2 * i) + 1]))

let key_of_hex s =
  let b = bytes_of_hex s in
  if Bytes.length b <> 16 then invalid_arg "Aes.key_of_hex: need 32 hex digits";
  key_of_bytes b
