open Cachesec_cache
open Cachesec_analysis
open Cachesec_telemetry

type stats_counters = {
  mutable closed : int;  (* closed-form computes performed *)
  mutable hits : int;  (* memo hits *)
  mutable misses : int;  (* memo misses (computed or sim-launched) *)
  mutable dedup_joins : int;  (* waiters joined onto a running campaign *)
  mutable overloaded : int;  (* queries refused by backpressure *)
  mutable sim_runs : int;  (* campaigns completed successfully *)
  mutable sim_errors : int;  (* campaigns that raised *)
}

type t = {
  memo : Memo.t;  (* canonical key -> encoded reply *)
  lines : Memo.t;  (* exact query line -> encoded reply (fast path) *)
  c : stats_counters;
  tm : Telemetry.t;
  started : float;
}

type decision =
  | Now of string
  | Sim of { key : string option; run : unit -> string }
  | Quit of string

let create ?(telemetry = Telemetry.null) ?(max_memo = 65536) () =
  {
    memo = Memo.create ~max_entries:max_memo ();
    lines = Memo.create ~max_entries:max_memo ();
    c =
      {
        closed = 0;
        hits = 0;
        misses = 0;
        dedup_joins = 0;
        overloaded = 0;
        sim_runs = 0;
        sim_errors = 0;
      };
    tm = telemetry;
    started = Clock.now_s ();
  }

(* Every counter bump is mirrored into telemetry so [--metrics] runs of
   the daemon expose the same numbers the [stats] verb reports. *)
let bump t name field =
  field t.c;
  Telemetry.count t.tm ("serve." ^ name) 1

let note_sim_done t ~key enc =
  bump t "sim_runs" (fun c -> c.sim_runs <- c.sim_runs + 1);
  match key with None -> () | Some k -> Memo.add t.memo k enc

let note_sim_error t =
  bump t "sim_errors" (fun c -> c.sim_errors <- c.sim_errors + 1)

let note_dedup_join t =
  bump t "dedup_joins" (fun c -> c.dedup_joins <- c.dedup_joins + 1)

let note_overloaded t =
  bump t "overloaded" (fun c -> c.overloaded <- c.overloaded + 1)

let memo_size t = Memo.size t.memo

let stats t =
  let qd = Cachesec_runtime.Pool.queued_tasks () in
  Telemetry.gauge t.tm "serve.queue_depth" (float_of_int qd);
  let i = float_of_int in
  [
    ("closed", i t.c.closed);
    ("hits", i t.c.hits);
    ("misses", i t.c.misses);
    ("dedup_joins", i t.c.dedup_joins);
    ("overloaded", i t.c.overloaded);
    ("sim_runs", i t.c.sim_runs);
    ("sim_errors", i t.c.sim_errors);
    ("memo_size", i (Memo.size t.memo));
    ("queue_depth", i qd);
    ("uptime_s", Clock.elapsed_s ~since:t.started);
  ]

(* Closed-form computes. Table rows are keyed by [Spec.name] (not the
   display name): reply pairs are space-separated, so values must be
   single words. *)
let compute_closed (q : Protocol.query) : Protocol.reply =
  match q with
  | Pas { spec; config; attack; cold = _ } ->
    Pas_v (Attack_models.pas ~config attack spec ())
  | Prepas { spec; k; cold = _ } -> Prepas_v (Prepas.for_spec spec ~k)
  | Resilience { spec; attack; cold = _ } ->
    let c = Resilience.combined spec attack in
    Resilience_v
      { verdict = Resilience.verdict_to_string c.Resilience.verdict;
        pas = c.Resilience.pas }
  | Table { attack; config; cold = _ } ->
    let rows = Pas_tables.rows_for ~config attack () in
    Table_v
      (List.map
         (fun r -> (Spec.name r.Pas_tables.spec, r.Pas_tables.pas))
         rows)
  | Ping | Stats | Shutdown | Validate _ -> assert false

(* The campaign thunk runs inside a pool worker. Its [Run.ctx] is
   serial ([jobs = None]), so [Validation.cell]'s scheduler takes the
   eager path and never re-enters the pool — a worker awaiting pooled
   work would be refused by [Pool.await]'s deadlock guard. *)
let sim_thunk (q : Protocol.query) () =
  match q with
  | Validate { spec; attack; seed; quick; cold = _ } ->
    let ctx = Cachesec_runtime.Run.make ~quick ~seed () in
    let cell = Cachesec_experiments.Validation.cell ctx spec attack in
    Protocol.encode_reply
      (Validate_v
         {
           pas = cell.Cachesec_experiments.Validation.pas;
           predicted_leak = cell.Cachesec_experiments.Validation.predicted_leak;
           recovered = cell.Cachesec_experiments.Validation.recovered;
           separation = cell.Cachesec_experiments.Validation.separation;
           agrees = cell.Cachesec_experiments.Validation.agrees;
         })
  | _ -> assert false

let error_reply e =
  Protocol.encode_reply (Error_ (Printexc.to_string e))

(* The memo-hit fast path: a repeated query line is answered by one
   hashtable probe on the raw line, skipping decode and key
   construction entirely. Only lines whose full route ended in a
   memoized answer are ever inserted (never cold lines, never errors,
   never stats/ping), so the fast path can only repeat an answer the
   slow path already gave for that exact spelling; other spellings of
   the same question still canonicalize through [Memo.key] to the one
   shared entry. *)
let rec route t line =
  match Memo.find t.lines line with
  | Some enc ->
    bump t "hits" (fun c -> c.hits <- c.hits + 1);
    Now enc
  | None -> route_slow t line

and route_slow t line =
  match Protocol.decode_query line with
  | Error msg -> Now (Protocol.encode_reply (Error_ msg))
  | Ok Ping -> Now (Protocol.encode_reply Ok_)
  | Ok Stats -> Now (Protocol.encode_reply (Stats_v (stats t)))
  | Ok Shutdown -> Quit (Protocol.encode_reply Ok_)
  | Ok (Validate _ as q) ->
    if Protocol.cold q then Sim { key = None; run = sim_thunk q }
    else begin
      (* Memoizable query: [Memo.key] is total outside the control
         verbs, so [Option.get] cannot raise here. *)
      let key = Option.get (Memo.key q) in
      match Memo.find t.memo key with
      | Some enc ->
        bump t "hits" (fun c -> c.hits <- c.hits + 1);
        Memo.add t.lines line enc;
        Now enc
      | None ->
        bump t "misses" (fun c -> c.misses <- c.misses + 1);
        Sim { key = Some key; run = sim_thunk q }
    end
  | Ok q ->
    let compute () =
      bump t "closed" (fun c -> c.closed <- c.closed + 1);
      Protocol.encode_reply (compute_closed q)
    in
    if Protocol.cold q then Now (try compute () with e -> error_reply e)
    else begin
      let key = Option.get (Memo.key q) in
      match Memo.find t.memo key with
      | Some enc ->
        bump t "hits" (fun c -> c.hits <- c.hits + 1);
        Memo.add t.lines line enc;
        Now enc
      | None -> (
        bump t "misses" (fun c -> c.misses <- c.misses + 1);
        match compute () with
        | enc ->
          Memo.add t.memo key enc;
          Memo.add t.lines line enc;
          Now enc
        | exception e -> Now (error_reply e))
    end
