(** Memoization for the PAS query server: canonical query keys, a
    bounded answer cache, and the in-flight registry behind campaign
    deduplication.

    {2 Keys}

    {!key} maps a {!Protocol.query} to a canonical string built from
    {!Cachesec_core.Ckey} combinators over the query's {e fully
    expanded} semantic content — every spec field, the cache geometry,
    the attack, and (for simulation-backed queries) the seed and scale.
    Two query lines that ask the same question (defaults spelled out or
    omitted, [sigma=1] vs [sigma=1.0]) decode to equal {!Protocol.query}
    values and therefore share one key; two questions that differ in any
    field get distinct keys (Ckey's encoding is injective, pinned by
    test_core and swept across the validation matrix by test_serve).

    The [cold] flag is deliberately {e not} part of the key: it selects
    whether the memo is consulted at all, not which question is asked.

    {2 Table}

    A string->string table (canonical key -> encoded reply line) with
    FIFO eviction at [max_entries] — the server's working set is the
    36-cell matrix times a few parameter sweeps, so recency tracking
    would be complexity without payoff. *)

val key : Protocol.query -> string option
(** [None] for [Ping]/[Stats]/[Shutdown] (not questions, never
    memoized). *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] defaults to 65536. *)

val find : t -> string -> string option
val add : t -> string -> string -> unit
(** Adding an existing key overwrites in place (no duplicate eviction
    bookkeeping). *)

val size : t -> int

(** In-flight simulation campaigns, keyed by canonical query key. A
    memo-miss simulation query either starts a campaign (adding an
    entry) or joins the entry already running — the joiner records
    itself as a waiter and every waiter observes the one shared
    {!Cachesec_runtime.Pool.future}. ['w] is the caller's waiter
    handle (the server uses [(batch, slot index)]). *)
module Inflight : sig
  type ('a, 'w) entry = {
    key : string;
    fut : 'a Cachesec_runtime.Pool.future;
    mutable waiters : 'w list;  (** newest first *)
  }

  type ('a, 'w) t

  val create : unit -> ('a, 'w) t
  val find : ('a, 'w) t -> string -> ('a, 'w) entry option

  val add :
    ('a, 'w) t -> key:string -> fut:'a Cachesec_runtime.Pool.future -> 'w ->
    ('a, 'w) entry
  (** Register a fresh campaign with its first waiter. The key must not
      already be present. *)

  val join : ('a, 'w) entry -> 'w -> unit
  val remove : ('a, 'w) t -> string -> unit
  val count : ('a, 'w) t -> int
  val entries : ('a, 'w) t -> ('a, 'w) entry list
end
