(** Blocking client for the PAS query server.

    One {!t} is one connection; queries are batched into frames (one
    query line per reply line, positionally matched — the server
    guarantees per-connection FIFO ordering, so pipelining frames is
    safe). All calls are synchronous; raise [Unix.Unix_error] on
    transport failure and [Failure] on protocol violations (truncated
    frame, reply/query count mismatch). *)

type t

val connect : string -> t
(** Connect to a server socket path. *)

val connect_retry : ?attempts:int -> ?delay_s:float -> string -> t
(** {!connect}, retrying while the socket is missing or refusing —
    for tests and benches that race a just-forked server. Default 100
    attempts, 50 ms apart. *)

val close : t -> unit

val with_connection : string -> (t -> 'a) -> 'a
(** Connect, run, always close. *)

val round_trip_raw : t -> string list -> string list
(** Send raw query lines as one frame; return the reply lines.
    Raises [Failure] if the server closes without replying or replies
    with a different line count. *)

val request : t -> Protocol.query list -> Protocol.reply list
(** Typed {!round_trip_raw}: encode the batch, decode every reply.
    A reply line that fails to decode raises [Failure]. *)

val request1 : t -> Protocol.query -> Protocol.reply
(** Single-query convenience. *)
