open Cachesec_runtime
open Cachesec_telemetry

type execution = Inline | Pooled of { workers : int; queue_bound : int }

type config = {
  socket : string;
  execution : execution;
  max_memo : int;
}

let default_queue_bound = 64

(* --- connection / batch bookkeeping ----------------------------------- *)

type conn = {
  fd : Unix.file_descr;  (* non-blocking *)
  frames : Protocol.Frames.t;
  pending : batch Queue.t;  (* request frames, oldest first (FIFO) *)
  out : Bytes.t Queue.t;  (* encoded reply frames not yet fully written *)
  mutable out_off : int;  (* bytes of [Queue.peek out] already written *)
  mutable out_bytes : int;  (* total unwritten bytes across [out] *)
  mutable closing : bool;  (* protocol error: stop reading, close when
                              every pending batch has been written out *)
  mutable closed : bool;
}

(* One request frame: a slot per query line. A batch flushes when every
   slot is filled AND it is the oldest unflushed batch on its
   connection — that invariant is what gives clients positional
   response matching. *)
and batch = {
  conn : conn;
  slots : string option array;
  mutable left : int;
}

let deliver b i enc =
  if b.slots.(i) = None then begin
    b.slots.(i) <- Some enc;
    b.left <- b.left - 1
  end

let close_conn c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* A peer that stops reading while pipelining can make us buffer its
   replies without limit; past this backlog it is declared stalled and
   its connection closed. Generous: several maximal reply frames. *)
let max_out_backlog = 4 * Protocol.max_frame

(* Queue an encoded reply frame for (non-blocking) writing. A reply
   payload over [Protocol.max_frame] cannot be framed at all
   ([Protocol.frame] raises [Invalid_argument]); that kills only this
   connection, never the daemon — the request-side frame cap does not
   bound the reply side, so this is reachable by a hostile batch even
   with [max_batch_lines] enforced. *)
let enqueue_frame c payload =
  if not c.closed then begin
    match Protocol.frame payload with
    | b ->
      Queue.push b c.out;
      c.out_bytes <- c.out_bytes + Bytes.length b;
      if c.out_bytes > max_out_backlog then close_conn c
    | exception Invalid_argument _ -> close_conn c
  end

(* Drain as much of the out-queue as the socket accepts right now.
   Write errors (peer gone) close the connection; in-flight campaigns
   it was waiting on keep running — their results still feed the memo
   and any deduplicated co-waiters. *)
let write_out c =
  if not c.closed then begin
    let blocked = ref false in
    while (not !blocked) && (not c.closed) && not (Queue.is_empty c.out) do
      let b = Queue.peek c.out in
      let len = Bytes.length b - c.out_off in
      match Unix.write c.fd b c.out_off len with
      | 0 -> close_conn c
      | w ->
        c.out_bytes <- c.out_bytes - w;
        if w = len then begin
          ignore (Queue.pop c.out);
          c.out_off <- 0
        end
        else begin
          c.out_off <- c.out_off + w;
          blocked := true
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        blocked := true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn c
    done;
    if
      c.closing && (not c.closed)
      && Queue.is_empty c.out
      && Queue.is_empty c.pending
    then close_conn c
  end

(* Move every complete batch at the head of the connection's queue into
   its out-queue (preserving FIFO reply order), then write
   opportunistically. *)
let flush_conn c =
  let rec go () =
    match Queue.peek_opt c.pending with
    | Some b when b.left = 0 ->
      ignore (Queue.pop c.pending);
      if not c.closed then
        enqueue_frame c
          (String.concat "\n"
             (Array.to_list
                (Array.map (fun s -> Option.value s ~default:"") b.slots)));
      go ()
    | _ -> ()
  in
  go ();
  write_out c

(* --- preflight -------------------------------------------------------- *)

let preflight ~socket =
  if not (Sys.file_exists socket) then Ok ()
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () ->
          Error
            (Printf.sprintf
               "%s: a PAS query server is already listening on this socket"
               socket)
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          Error
            (Printf.sprintf
               "%s: stale socket file (no server is listening behind it — \
                probably left by a crash); remove it and retry"
               socket)
        | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
          (* Removed between the existence check and the connect. *)
          Ok ()
        | exception Unix.Unix_error _ ->
          Error
            (Printf.sprintf
               "%s: path exists and is not a connectable socket; refusing \
                to overwrite it"
               socket))
  end

(* --- the event loop --------------------------------------------------- *)

type state = {
  router : Router.t;
  queue_bound : int;
  listener : Unix.file_descr;
  mutable conns : conn list;
  (* deduplicated campaigns: canonical key -> running future + waiters *)
  inflight : (string, batch * int) Memo.Inflight.t;
  (* cold campaigns: tracked for completion, exempt from dedup *)
  mutable anon : (string Pool.future * batch * int) list;
  mutable draining : bool;  (* shutdown requested: no new input *)
}

let inflight_empty st =
  Memo.Inflight.count st.inflight = 0 && st.anon = []

let handle_line st b i line =
  match Router.route st.router line with
  | Router.Now enc -> deliver b i enc
  | Router.Quit enc ->
    st.draining <- true;
    deliver b i enc
  | Router.Sim { key; run } -> (
    let join_existing =
      match key with
      | None -> false
      | Some k -> (
        match Memo.Inflight.find st.inflight k with
        | Some e ->
          Memo.Inflight.join e (b, i);
          Router.note_dedup_join st.router;
          true
        | None -> false)
    in
    if not join_existing then
      match Pool.try_submit ~max_pending:st.queue_bound run with
      | None ->
        Router.note_overloaded st.router;
        deliver b i (Protocol.encode_reply Protocol.Overloaded)
      | Some fut -> (
        match key with
        | Some k -> ignore (Memo.Inflight.add st.inflight ~key:k ~fut (b, i))
        | None -> st.anon <- (fut, b, i) :: st.anon))

(* One read may carry several frames; nothing after the frame that
   doomed a connection is processed. *)
let handle_frame st c payload =
  if c.closing || c.closed then ()
  else begin
    let lines = String.split_on_char '\n' payload in
    let n = List.length lines in
    if n > Protocol.max_batch_lines then begin
      (* An unbounded batch could assemble a reply frame no client
         could even receive. Answer with a single-line error frame —
         queued as a pre-completed one-slot batch so it still goes out
         after every earlier pipelined batch — and close once
         everything pending has been written. *)
      let b = { conn = c; slots = Array.make 1 None; left = 1 } in
      Queue.push b c.pending;
      deliver b 0
        (Protocol.encode_reply
           (Protocol.Error_
              (Printf.sprintf "batch of %d queries exceeds %d lines per frame"
                 n Protocol.max_batch_lines)));
      c.closing <- true
    end
    else begin
      let b = { conn = c; slots = Array.make n None; left = n } in
      Queue.push b c.pending;
      List.iteri (fun i line -> handle_line st b i line) lines
    end
  end

(* Completion sweep: non-blocking poll of every outstanding campaign.
   A completed campaign's result is delivered to every waiter (the
   starter and all dedup joiners — one list, one result), memoized via
   the router, and the entry retired. A raised campaign delivers the
   same error to every waiter and is never memoized. *)
let poll_inflight st =
  let finish_waiters waiters enc =
    List.iter (fun (b, i) -> deliver b i enc) waiters
  in
  List.iter
    (fun (e : (string, batch * int) Memo.Inflight.entry) ->
      match Pool.poll e.fut with
      | None -> ()
      | Some enc ->
        Router.note_sim_done st.router ~key:(Some e.key) enc;
        finish_waiters e.waiters enc;
        Memo.Inflight.remove st.inflight e.key
      | exception ex ->
        Router.note_sim_error st.router;
        finish_waiters e.waiters
          (Protocol.encode_reply (Protocol.Error_ (Printexc.to_string ex)));
        Memo.Inflight.remove st.inflight e.key)
    (Memo.Inflight.entries st.inflight);
  st.anon <-
    List.filter
      (fun (fut, b, i) ->
        match Pool.poll fut with
        | None -> true
        | Some enc ->
          Router.note_sim_done st.router ~key:None enc;
          deliver b i enc;
          false
        | exception ex ->
          Router.note_sim_error st.router;
          deliver b i
            (Protocol.encode_reply (Protocol.Error_ (Printexc.to_string ex)));
          false)
      st.anon

let read_buf = Bytes.create 65536

let read_conn st c =
  match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> close_conn c
  | exception
      Unix.Unix_error
        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn c
  | len -> (
    match Protocol.Frames.feed c.frames ~bytes:read_buf ~len with
    | Error _ -> close_conn c (* oversized frame: unrecoverable stream *)
    | Ok payloads -> List.iter (handle_frame st c) payloads)

(* [Unix.select] breaks past FD_SETSIZE (1024 on Linux): a descriptor
   numbered >= 1024 fails with EINVAL/EBADF and would kill the event
   loop. Cap accepted connections with a margin for the listener,
   stdio, and whatever else the process holds open; extras are
   accepted and immediately closed (the client sees a clean EOF and
   can retry). *)
let max_conns = 960

let serve_loop st ~stop =
  let rec loop () =
    st.conns <- List.filter (fun c -> not c.closed) st.conns;
    List.iter flush_conn st.conns;
    if !stop then ()
    else if
      st.draining && inflight_empty st
      && List.for_all
           (fun c ->
             c.closed || (Queue.is_empty c.pending && Queue.is_empty c.out))
           st.conns
    then ()
    else begin
      (* While campaigns are in flight we tick fast to poll their
         futures; otherwise we sit in select until traffic arrives. *)
      let timeout = if inflight_empty st then 0.5 else 0.02 in
      let read_fds =
        if st.draining then []
        else
          st.listener
          :: List.filter_map
               (fun c ->
                 if c.closed || c.closing then None else Some c.fd)
               st.conns
      in
      let write_fds =
        List.filter_map
          (fun c ->
            if (not c.closed) && c.out_bytes > 0 then Some c.fd else None)
          st.conns
      in
      (match Unix.select read_fds write_fds [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready_r, ready_w, _ ->
        if List.mem st.listener ready_r then begin
          match Unix.accept st.listener with
          | fd, _ ->
            if List.length st.conns >= max_conns then
              (try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              Unix.set_nonblock fd;
              st.conns <-
                {
                  fd;
                  frames = Protocol.Frames.create ();
                  pending = Queue.create ();
                  out = Queue.create ();
                  out_off = 0;
                  out_bytes = 0;
                  closing = false;
                  closed = false;
                }
                :: st.conns
            end
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c ->
            if (not c.closed) && List.mem c.fd ready_w then write_out c)
          st.conns;
        List.iter
          (fun c ->
            if (not c.closed) && (not c.closing) && List.mem c.fd ready_r
            then read_conn st c)
          st.conns);
      poll_inflight st;
      loop ()
    end
  in
  loop ()

let run ?(telemetry = Telemetry.null) cfg =
  match preflight ~socket:cfg.socket with
  | Error _ as e -> e
  | Ok () -> (
    let queue_bound =
      match cfg.execution with
      | Inline -> 1 (* pool stays empty: any positive bound admits inline *)
      | Pooled { queue_bound; _ } -> queue_bound
    in
    (match cfg.execution with
    | Pooled { workers; _ } when workers > 0 -> Pool.ensure ~workers
    | Pooled _ | Inline -> ());
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Non-blocking: a peer that resets between select and accept must
       not block the loop (accepted fds get set_nonblock individually —
       they do not inherit the listener's flag on all platforms). *)
    Unix.set_nonblock listener;
    match
      Unix.bind listener (Unix.ADDR_UNIX cfg.socket);
      Unix.listen listener 64
    with
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "%s: cannot bind/listen: %s" cfg.socket
           (Unix.error_message err))
    | () ->
      let st =
        {
          router = Router.create ~telemetry ~max_memo:cfg.max_memo ();
          queue_bound;
          listener;
          conns = [];
          inflight = Memo.Inflight.create ();
          anon = [];
          draining = false;
        }
      in
      let stop = ref false in
      let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)) in
      let old_term =
        Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
      in
      (* A peer that disconnects mid-write must not kill the daemon. *)
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      Fun.protect
        ~finally:(fun () ->
          List.iter close_conn st.conns;
          (try Unix.close st.listener with Unix.Unix_error _ -> ());
          (try Sys.remove cfg.socket with Sys_error _ -> ());
          (* Leave the process genuinely single-domain: parked workers
             would tax any later serial measurement, and tests fork. *)
          Pool.quiesce ();
          Sys.set_signal Sys.sigint old_int;
          Sys.set_signal Sys.sigterm old_term;
          Sys.set_signal Sys.sigpipe old_pipe)
        (fun () ->
          serve_loop st ~stop;
          Ok ()))
