open Cachesec_runtime
open Cachesec_telemetry
open Cachesec_cache
open Cachesec_analysis

type entry = {
  mix : string;
  queries : int;
  batch : int;
  seconds : float;
  qps : float;
  p50_us : float;
  p99_us : float;
  warmup : int;
  repeats : int;
  stddev : float;
}

let default_socket = "results/.serve-bench.sock"
let default_gate_threshold = 50.

(* The gate query: the heaviest closed form served (all nine
   architectures' PIFGs under one attack), so the memo-hit/cold ratio
   measures memoization against real recomputation, not against a
   trivial formula. *)
let gate_query ~cold =
  Protocol.encode_query
    (Protocol.Table
       { attack = Attack_type.Prime_and_probe; config = Config.standard; cold })

let sim_queries =
  List.map
    (fun (attack, seed) ->
      Protocol.encode_query
        (Protocol.Validate
           {
             spec = Spec.paper_sa;
             attack;
             seed;
             quick = true;
             cold = true;
           }))
    [ (Attack_type.Flush_and_reload, 1201); (Attack_type.Prime_and_probe, 1202) ]

(* --- measurement ------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* One repetition: [frames] sequential round trips of the same frame;
   returns (total seconds, per-frame seconds). *)
let run_rep client lines ~frames =
  let times = Array.make frames 0. in
  for i = 0 to frames - 1 do
    let t0 = Clock.now_s () in
    ignore (Client.round_trip_raw client lines);
    times.(i) <- Clock.elapsed_s ~since:t0
  done;
  (Array.fold_left ( +. ) 0. times, times)

let measure_mix client ~mix ~lines ~frames ~warmup_frames ~repeats =
  let batch = List.length lines in
  for _ = 1 to warmup_frames do
    ignore (Client.round_trip_raw client lines)
  done;
  let reps = List.init repeats (fun _ -> run_rep client lines ~frames) in
  let queries = frames * batch in
  let rates =
    List.map (fun (total, _) -> float_of_int queries /. total) reps
  in
  let best_total, best_times =
    List.fold_left
      (fun (bt, bx) (t, x) -> if t < bt then (t, x) else (bt, bx))
      (List.hd reps) (List.tl reps)
  in
  let mean = List.fold_left ( +. ) 0. rates /. float_of_int repeats in
  let stddev =
    if repeats < 2 then 0.
    else
      sqrt
        (List.fold_left (fun a r -> a +. ((r -. mean) ** 2.)) 0. rates
        /. float_of_int (repeats - 1))
  in
  let per_query =
    Array.map (fun t -> t /. float_of_int batch *. 1e6) best_times
  in
  Array.sort compare per_query;
  {
    mix;
    queries;
    batch;
    seconds = best_total;
    qps = float_of_int queries /. best_total;
    p50_us = percentile per_query 0.50;
    p99_us = percentile per_query 0.99;
    warmup = warmup_frames * batch;
    repeats;
    stddev;
  }

let ensure_results_dir () =
  try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let child_flag = "--serve-bench-child"

let child_entry () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = child_flag then begin
    let socket = Sys.argv.(2) in
    let code =
      match
        Server.run
          { Server.socket; execution = Server.Inline; max_memo = 65536 }
      with
      | Ok () -> 0
      | Error msg ->
        prerr_endline ("serve-bench child: " ^ msg);
        1
      | exception e ->
        prerr_endline ("serve-bench child: " ^ Printexc.to_string e);
        1
    in
    exit code
  end

let bench (ctx : Run.ctx) =
  let quick = ctx.Run.quick in
  let tm = ctx.Run.telemetry in
  ensure_results_dir ();
  let socket = default_socket in
  if Sys.file_exists socket then Sys.remove socket;
  (* The server is a separate process so the numbers include real
     socket round trips, but it canNOT be a fork: on OCaml 5,
     [Unix.fork] is forbidden for the rest of the process lifetime
     once any domain has been spawned (even joined ones), and by the
     time this section runs the pool has usually spawned workers.
     Re-exec ourselves via [create_process] (posix_spawn underneath,
     domain-safe) with a sentinel argv that [child_entry] intercepts
     before Cmdliner ever sees it. Quiesce anyway: parked pool
     domains tax every parent minor GC with a STW handshake, and the
     client-side stopwatch should measure a single-domain process. *)
  Cachesec_runtime.Pool.quiesce ();
  flush stdout;
  flush stderr;
  let exe = Sys.executable_name in
  match
    Unix.create_process exe
      [| exe; child_flag; socket |]
      Unix.stdin Unix.stdout Unix.stderr
  with
  | exception Unix.Unix_error (e, _, _) ->
    failwith
      (Printf.sprintf "serve-bench: cannot spawn server child %s: %s" exe
         (Unix.error_message e))
  | pid ->
    let finished = ref false in
    Fun.protect
      ~finally:(fun () ->
        if not !finished then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          try Sys.remove socket with Sys_error _ -> ()
        end)
      (fun () ->
        let client = Client.connect_retry socket in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            (* Warm the memo (and the raw-line fast path) once. *)
            ignore (Client.round_trip_raw client [ gate_query ~cold:false ]);
            let hit_frames = if quick then 50 else 200 in
            let cold_frames = if quick then 50 else 200 in
            let repeats = if quick then 2 else 3 in
            let hit =
              measure_mix client ~mix:"memo-hit"
                ~lines:(List.init 64 (fun _ -> gate_query ~cold:false))
                ~frames:hit_frames ~warmup_frames:5 ~repeats
            in
            let cold =
              measure_mix client ~mix:"cold"
                ~lines:[ gate_query ~cold:true ]
                ~frames:cold_frames ~warmup_frames:5 ~repeats
            in
            (* Simulation-backed cells are seconds-scale: one repetition,
               one warm-up cell. *)
            let sim =
              measure_mix client ~mix:"sim"
                ~lines:sim_queries
                ~frames:(if quick then 1 else 2)
                ~warmup_frames:0 ~repeats:1
            in
            let entries = [ hit; cold; sim ] in
            List.iter
              (fun e ->
                Telemetry.gauge tm
                  (Printf.sprintf "serve_bench.%s.qps" e.mix)
                  e.qps)
              entries;
            (* Graceful shutdown: the server drains, unlinks the socket
               and exits; reap the child. *)
            ignore (Client.round_trip_raw client [ "shutdown" ]);
            ignore (Unix.waitpid [] pid);
            finished := true;
            entries))

let gate ?(threshold = default_gate_threshold) entries =
  let find mix = List.find_opt (fun e -> e.mix = mix) entries in
  match (find "memo-hit", find "cold") with
  | Some h, Some c when c.qps > 0. ->
    let ratio = h.qps /. c.qps in
    Some (ratio, ratio >= threshold)
  | _ -> None

let find entries ~mix = List.find_opt (fun e -> e.mix = mix) entries

(* --- JSON (flat, line-oriented, fixed key order — same discipline as
   the other BENCH files, so the file doubles as its own parser
   format) -------------------------------------------------------- *)

let entry_to_json e =
  Printf.sprintf
    "{\"mix\": \"%s\", \"queries\": %d, \"batch\": %d, \"seconds\": %.6f, \
     \"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, \"warmup\": %d, \
     \"repeats\": %d, \"stddev\": %.1f}"
    e.mix e.queries e.batch e.seconds e.qps e.p50_us e.p99_us e.warmup
    e.repeats e.stddev

let to_json ?span_id entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_serve/v1\",\n";
  (match span_id with
  | Some id when id <> 0 ->
    Buffer.add_string buf (Printf.sprintf "  \"telemetry_span\": %d,\n" id)
  | Some _ | None -> ());
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (entry_to_json e);
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write ?span_id ~path entries =
  let oc = open_out path in
  output_string oc (to_json ?span_id entries);
  close_out oc

let entry_of_line line =
  match
    Scanf.sscanf line
      "{\"mix\": %S, \"queries\": %d, \"batch\": %d, \"seconds\": %f, \
       \"qps\": %f, \"p50_us\": %f, \"p99_us\": %f, \"warmup\": %d, \
       \"repeats\": %d, \"stddev\": %f}"
      (fun mix queries batch seconds qps p50_us p99_us warmup repeats stddev ->
        { mix; queries; batch; seconds; qps; p50_us; p99_us; warmup; repeats;
          stddev })
  with
  | e -> Some e
  | exception Scanf.Scan_failure _ | (exception End_of_file) -> None

let read ~path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match entry_of_line line with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> close_in ic);
    List.rev !entries

let render ?baseline entries =
  let base =
    match baseline with
    | Some path -> read ~path
    | None -> []
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %6s %9s %12s %10s %10s %8s %9s\n" "mix" "batch"
       "queries" "qps" "p50 us" "p99 us" "+-qps" "vs base");
  List.iter
    (fun e ->
      let vs =
        match List.find_opt (fun b -> b.mix = e.mix) base with
        | Some b when b.qps > 0. -> Printf.sprintf "%8.2fx" (e.qps /. b.qps)
        | _ -> "        -"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %6d %9d %12.1f %10.2f %10.2f %8.1f %s\n" e.mix
           e.batch e.queries e.qps e.p50_us e.p99_us e.stddev vs))
    entries;
  Buffer.contents buf
