(** The PAS query server: a single-domain [Unix.select] event loop over
    a Unix-domain socket, answering {!Protocol} frames.

    Closed-form queries are answered inline by the {!Router} (memo hit:
    microseconds; miss: the [lib/analysis] closed forms). Simulation-
    backed queries are admitted to the process-global
    {!Cachesec_runtime.Pool} through the bounded
    [Pool.try_submit] gate — a full queue yields an [overloaded] reply
    instead of unbounded buffering — and identical in-flight campaigns
    are deduplicated: the second asker joins the running campaign's
    future instead of starting its own, and every joined waiter
    observes the same result (or the same error).

    Response ordering is FIFO per connection: a response frame is
    written only when every earlier frame on that connection has been
    fully answered, so clients can pipeline frames and match replies
    positionally.

    All sockets are non-blocking: replies are buffered per connection
    and drained as [select] reports writability, so one peer that
    pipelines requests but stops reading can never stall the event
    loop (or the other connections) — it is closed once its unread
    backlog passes a few maximal frames. Individual misbehaving
    connections are always closed alone, never the daemon: a batch
    over [Protocol.max_batch_lines] gets a single-line error frame and
    a close, a reply that cannot be framed (over [Protocol.max_frame])
    closes just that connection, and connections beyond the
    [select]/FD_SETSIZE budget (~960) are refused with immediate EOF.

    Shutdown: a [shutdown] query (or SIGINT/SIGTERM) drains in-flight
    campaigns, flushes every completed batch, closes connections,
    removes the socket file and quiesces the pool, so a clean exit
    leaves no socket litter and no live domains. *)

type execution =
  | Inline
      (** Simulations run synchronously in the server's own domain (the
          pool is never started). Queries arriving behind a running
          simulation wait; good for tests and single-client use. *)
  | Pooled of { workers : int; queue_bound : int }
      (** Simulations run in pool workers; at most [queue_bound] may be
          queued awaiting a worker before new admissions are refused
          with [overloaded]. [workers = 0] degrades to inline execution
          with the same admission bound. *)

type config = {
  socket : string;  (** Unix-domain socket path (OS limit ~107 bytes) *)
  execution : execution;
  max_memo : int;  (** answer-cache entry bound *)
}

val default_queue_bound : int
(** 64. *)

val preflight : socket:string -> (unit, string) result
(** Refuse to start over an existing socket path: if a server is
    already listening, or the file is a stale socket left by a crash
    (connect refused), or the path is not a socket at all, return a
    clear error naming the situation. [Ok] when the path is free. *)

val run :
  ?telemetry:Cachesec_telemetry.Telemetry.t -> config -> (unit, string) result
(** Bind, listen and serve until [shutdown]/SIGINT/SIGTERM. Returns
    after cleanup. [Error] covers preflight failures and bind/listen
    errors; protocol errors on individual connections only close that
    connection. *)
