(** Wire protocol of the PAS query server.

    Dependency-free and deliberately boring: a stream of
    length-prefixed frames over a Unix-domain socket, each frame
    carrying a batch of newline-separated text lines. A request frame
    holds one query per line; the matching response frame holds exactly
    one reply per query, in query order. Frames on one connection are
    answered in arrival order (the server never reorders responses), so
    a client may pipeline frames and match responses positionally.

    {2 Frame layout}

    {v
    +----------------+---------------------------+
    | length: 4 bytes| payload: <length> bytes   |
    | big-endian     | UTF-8 text, one query or  |
    | payload length | reply per '\n'-joined line|
    +----------------+---------------------------+
    v}

    Payloads are capped at {!max_frame} bytes; oversized frames are a
    protocol error and the server closes the connection.

    {2 Query lines}

    [<verb> key=value ... [cold]] — e.g.
    [pas cache=sa attack=prime-and-probe],
    [prepas cache=rp k=32 policy=lru],
    [table attack=cache-collision],
    [validate cache=sa attack=flush-and-reload seed=42 quick=1],
    [ping], [stats], [shutdown].

    The [cold] flag bypasses the memo (no read, no write) and, for
    simulation-backed queries, in-flight deduplication — it exists so
    benchmarks can measure the recompute path repeatably.

    Cache arguments accept the paper architectures by name plus
    overrides: [policy=lru|random|fifo|mru|lfu|mfu|plru]
    ({!Cachesec_cache.Policy.names}), [ways=N], [sigma=F] (noisy),
    [nbits=N] (newcache), [partitions=N] (sp), [reserved=N] (nomo),
    [back=N]/[fwd=N] (rf), [interval=N] (re), and geometry
    [lines=N]/[lb=N]. Defaults are the paper's Table 4 values; parsing
    expands every default, so equivalent spellings of the same
    question canonicalize to the same {!query} value (and hence the
    same memo key — see {!Memo}). *)

open Cachesec_cache
open Cachesec_analysis

type query =
  | Ping
  | Stats
  | Shutdown  (** graceful: drain in-flight work, reply, then exit *)
  | Pas of {
      spec : Spec.t;
      config : Config.t;
      attack : Attack_type.t;
      cold : bool;
    }
  | Prepas of { spec : Spec.t; k : int; cold : bool }
  | Resilience of { spec : Spec.t; attack : Attack_type.t; cold : bool }
  | Table of { attack : Attack_type.t; config : Config.t; cold : bool }
      (** all nine architectures' PAS under one attack
          ({!Cachesec_analysis.Pas_tables.rows_for}) — the heaviest
          closed form served *)
  | Validate of {
      spec : Spec.t;
      attack : Attack_type.t;
      seed : int;
      quick : bool;
      cold : bool;
    }  (** simulation-backed: one validation-matrix cell *)

type reply =
  | Ok_
  | Overloaded
      (** backpressure: the simulation admission queue is full; retry
          later. Never sent for closed-form queries. *)
  | Error_ of string
  | Pas_v of float
  | Prepas_v of float
  | Resilience_v of { verdict : string; pas : float }
  | Table_v of (string * float) list  (** (arch name, PAS) per row *)
  | Validate_v of {
      pas : float;
      predicted_leak : bool;
      recovered : bool;
      separation : float;
      agrees : bool;
    }
  | Stats_v of (string * float) list

val cold : query -> bool
(** The [cold] flag ([false] for ping/stats/shutdown). *)

val encode_query : query -> string
val decode_query : string -> (query, string) result
(** One line, no newline. [decode_query (encode_query q) = Ok q].
    [encode_query] raises [Invalid_argument] on a [Pas] whose
    [config.ways] disagrees with the spec's way count (standard 8 for
    [Newcache]): the wire form carries a single [ways=] argument, so
    such a value cannot round-trip and must not be sent silently as a
    different question. *)

val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result
(** One line, no newline. Floats survive the round trip bit-exactly
    ([%.17g]). *)

(** {2 Framing} *)

val max_frame : int
(** 4 MiB payload cap. *)

val max_batch_lines : int
(** 4096 — the most query lines a request frame may carry. Reply lines
    are usually far bigger than their query lines, so the request-side
    {!max_frame} alone does not bound the response frame; this cap is
    what keeps well-formed batches' replies encodable. The server
    answers an oversized batch with a single-line [error] frame and
    closes the connection. *)

val frame : string -> bytes
(** Length prefix + payload, ready to write. Raises [Invalid_argument]
    beyond {!max_frame}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking write of {!frame}, looping over partial writes. *)

val read_frame : Unix.file_descr -> string option
(** Blocking read of one whole frame; [None] on clean EOF. Raises
    [Failure] on a truncated or oversized frame. *)

(** Incremental frame extraction for the server's select loop: feed
    whatever bytes arrived, get back every frame completed so far. *)
module Frames : sig
  type t

  val create : unit -> t

  val feed : t -> bytes:Bytes.t -> len:int -> (string list, string) result
  (** Append [len] bytes and extract complete frame payloads, in order.
      [Error] on an oversized frame declaration (the connection is
      beyond recovery — close it). *)

  val pending_bytes : t -> int
  (** Buffered bytes not yet forming a complete frame. *)
end
