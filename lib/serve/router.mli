(** Query routing for the PAS query server: memo lookup, closed-form
    computation, and classification of simulation-backed work.

    The router is transport-agnostic — it maps decoded queries to
    {!decision}s and never touches sockets or the pool. Closed-form
    queries (pas/prepas/resilience/table) are answered inline: a memo
    hit returns the cached encoded reply, a miss computes through
    [lib/analysis] and memoizes. Simulation-backed queries (validate)
    return {!Sim} on a memo miss; the {e server} decides admission
    (dedup join, pool submit, or overloaded) and reports completed
    campaigns back through {!note_sim_done} so the answer is memoized
    for every later asker.

    A raw-line cache sits in front of the decoder: a repeated query
    line (exact spelling) is answered by one hashtable probe with no
    parsing at all — the memo-hit fast path the [bench_serve] gate
    measures. Lines enter that cache only after a full route ended in a
    memoized answer, so the fast path can never answer a cold line, an
    error, or a stats/ping verb; differently-spelled equivalents of the
    same question still share one canonical entry through {!Memo.key}.

    Errors are never memoized — a transient failure must not poison the
    cache for the lifetime of the daemon. *)

type t

type decision =
  | Now of string
      (** Answer ready: an encoded reply line ([Protocol.encode_reply]).
          Also used for decode errors ([error ...] replies). *)
  | Sim of { key : string option; run : unit -> string }
      (** Simulation needed. [key] is the canonical memo key ([None]
          when the query is [cold] — no dedup, no memoization); [run]
          performs the campaign and encodes the reply. [run] is safe to
          execute inside a pool worker: the campaign context is serial
          ([jobs = None]), so it never re-enters the pool. *)
  | Quit of string
      (** Shutdown requested; the string is the encoded [ok] reply to
          send before exiting. *)

val create :
  ?telemetry:Cachesec_telemetry.Telemetry.t -> ?max_memo:int -> unit -> t
(** [max_memo] bounds the answer cache (default 65536 entries). Counters
    are mirrored to [telemetry] under [serve.*]. *)

val route : t -> string -> decision
(** Route one query line. *)

val note_sim_done : t -> key:string option -> string -> unit
(** Record a completed simulation campaign's encoded reply under [key]
    (no-op for [None]). Call only for successful campaigns. *)

val note_sim_error : t -> unit
val note_dedup_join : t -> unit
val note_overloaded : t -> unit
(** Outcome counters owned by the server's admission logic. *)

val stats : t -> (string * float) list
(** The [stats] reply payload: closed/hits/misses/dedup_joins/
    overloaded/sim_runs/sim_errors counters plus memo_size,
    queue_depth (live {!Cachesec_runtime.Pool.queued_tasks}) and
    uptime_s. *)

val memo_size : t -> int
