open Cachesec_cache
open Cachesec_analysis

type query =
  | Ping
  | Stats
  | Shutdown
  | Pas of {
      spec : Spec.t;
      config : Config.t;
      attack : Attack_type.t;
      cold : bool;
    }
  | Prepas of { spec : Spec.t; k : int; cold : bool }
  | Resilience of { spec : Spec.t; attack : Attack_type.t; cold : bool }
  | Table of { attack : Attack_type.t; config : Config.t; cold : bool }
  | Validate of {
      spec : Spec.t;
      attack : Attack_type.t;
      seed : int;
      quick : bool;
      cold : bool;
    }

type reply =
  | Ok_
  | Overloaded
  | Error_ of string
  | Pas_v of float
  | Prepas_v of float
  | Resilience_v of { verdict : string; pas : float }
  | Table_v of (string * float) list
  | Validate_v of {
      pas : float;
      predicted_leak : bool;
      recovered : bool;
      separation : float;
      agrees : bool;
    }
  | Stats_v of (string * float) list

let cold = function
  | Ping | Stats | Shutdown -> false
  | Pas { cold; _ }
  | Prepas { cold; _ }
  | Resilience { cold; _ }
  | Table { cold; _ }
  | Validate { cold; _ } -> cold

(* --- query encoding --------------------------------------------------- *)

(* [%.17g] is the shortest fixed format that round-trips every double
   through [float_of_string]; canonicalization to a single bit pattern
   happens at parse time, so 1 / 1.0 / 1e0 all yield the same query
   value. *)
let fmt_float f = Printf.sprintf "%.17g" f

let spec_ways = function
  | Spec.Sa { ways; _ }
  | Spec.Sp { ways; _ }
  | Spec.Pl { ways; _ }
  | Spec.Nomo { ways; _ }
  | Spec.Rp { ways; _ }
  | Spec.Rf { ways; _ }
  | Spec.Re { ways; _ }
  | Spec.Noisy { ways; _ } -> Some ways
  | Spec.Newcache _ -> None

(* Every field of the spec is emitted explicitly (no reliance on
   defaults), so encode/decode round-trips by construction. *)
let spec_args spec =
  let pol p = Printf.sprintf "policy=%s" (Replacement.policy_to_string p) in
  let base = Printf.sprintf "cache=%s" (Spec.name spec) in
  match spec with
  | Spec.Sa { ways; policy }
  | Spec.Pl { ways; policy }
  | Spec.Rp { ways; policy } ->
    [ base; Printf.sprintf "ways=%d" ways; pol policy ]
  | Spec.Sp { ways; policy; partitions } ->
    [
      base;
      Printf.sprintf "ways=%d" ways;
      pol policy;
      Printf.sprintf "partitions=%d" partitions;
    ]
  | Spec.Nomo { ways; policy; reserved } ->
    [
      base;
      Printf.sprintf "ways=%d" ways;
      pol policy;
      Printf.sprintf "reserved=%d" reserved;
    ]
  | Spec.Newcache { extra_bits } -> [ base; Printf.sprintf "nbits=%d" extra_bits ]
  | Spec.Rf { ways; policy; back; fwd } ->
    [
      base;
      Printf.sprintf "ways=%d" ways;
      pol policy;
      Printf.sprintf "back=%d" back;
      Printf.sprintf "fwd=%d" fwd;
    ]
  | Spec.Re { ways; policy; interval } ->
    [
      base;
      Printf.sprintf "ways=%d" ways;
      pol policy;
      Printf.sprintf "interval=%d" interval;
    ]
  | Spec.Noisy { ways; policy; sigma } ->
    [
      base;
      Printf.sprintf "ways=%d" ways;
      pol policy;
      Printf.sprintf "sigma=%s" (fmt_float sigma);
    ]

let config_args (c : Config.t) =
  [ Printf.sprintf "lb=%d" c.Config.line_bytes;
    Printf.sprintf "lines=%d" c.Config.lines ]

let attack_arg a = Printf.sprintf "attack=%s" (Attack_type.name a)
let cold_arg cold = if cold then [ "cold" ] else []

let encode_query = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Pas { spec; config; attack; cold } ->
    (* The pas wire form carries one [ways=] (a spec field); the decoder
       mirrors it into the config (Newcache, which has none, gets the
       standard 8). A config whose way count disagrees with the spec
       therefore cannot round-trip — refuse loudly instead of silently
       sending a different question. *)
    let wire_ways = Option.value (spec_ways spec) ~default:8 in
    if config.Config.ways <> wire_ways then
      invalid_arg
        (Printf.sprintf
           "Protocol.encode_query: Pas config.ways (%d) disagrees with the \
            spec's ways (%d); the wire form cannot express the mismatch"
           config.Config.ways wire_ways);
    String.concat " "
      (("pas" :: spec_args spec) @ config_args config @ [ attack_arg attack ]
      @ cold_arg cold)
  | Prepas { spec; k; cold } ->
    String.concat " "
      (("prepas" :: spec_args spec)
      @ [ Printf.sprintf "k=%d" k ]
      @ cold_arg cold)
  | Resilience { spec; attack; cold } ->
    String.concat " "
      (("resilience" :: spec_args spec) @ [ attack_arg attack ] @ cold_arg cold)
  | Table { attack; config; cold } ->
    String.concat " "
      (("table" :: config_args config)
      @ [
          Printf.sprintf "ways=%d" config.Config.ways;
          attack_arg attack;
        ]
      @ cold_arg cold)
  | Validate { spec; attack; seed; quick; cold } ->
    String.concat " "
      (("validate" :: spec_args spec)
      @ [
          attack_arg attack;
          Printf.sprintf "seed=%d" seed;
          Printf.sprintf "quick=%d" (if quick then 1 else 0);
        ]
      @ cold_arg cold)

(* --- query decoding --------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let split_words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

(* key=value args plus bare flags; duplicate keys are an error (a
   silently-last-wins duplicate would canonicalize two different lines
   to the same query). *)
let parse_args words =
  let rec go acc flags = function
    | [] -> Ok (List.rev acc, List.rev flags)
    | w :: rest -> (
      match String.index_opt w '=' with
      | None -> go acc (w :: flags) rest
      | Some i ->
        let k = String.sub w 0 i in
        let v = String.sub w (i + 1) (String.length w - i - 1) in
        if List.mem_assoc k acc then
          Error (Printf.sprintf "duplicate argument %s" k)
        else go ((k, v) :: acc) flags rest)
  in
  go [] [] words

let int_arg args key ~default =
  match List.assoc_opt key args with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: not an integer: %s" key v))

let spec_keys =
  [
    "cache"; "policy"; "ways"; "sigma"; "nbits"; "partitions"; "reserved";
    "back"; "fwd"; "interval";
  ]

let config_keys = [ "lb"; "lines" ]

(* The paper spec by name, then field overrides. Overrides that don't
   apply to the named architecture are errors, not silent no-ops: a
   typo'd query must not canonicalize to (and be answered as) a
   different question. *)
let parse_spec args =
  let* base =
    match List.assoc_opt "cache" args with
    | None -> Error "missing cache=<name>"
    | Some n -> (
      match Spec.of_name n with
      | Some s -> Ok s
      | None ->
        Error
          (Printf.sprintf "unknown cache %s (expected one of: %s)" n
             (String.concat ", " (List.map Spec.name Spec.all_paper))))
  in
  let* spec =
    match List.assoc_opt "policy" args with
    | None -> Ok base
    | Some p -> (
      match Replacement.policy_of_string p with
      | Some policy -> (
        match base with
        | Spec.Newcache _ -> Error "newcache has no replacement policy"
        | _ -> Ok (Spec.with_policy base policy))
      | None ->
        Error
          (Printf.sprintf "unknown policy %s (expected one of: %s)" p
             Policy.names))
  in
  let* spec =
    match List.assoc_opt "ways" args with
    | None -> Ok spec
    | Some v -> (
      match int_of_string_opt v with
      | None -> Error (Printf.sprintf "ways: not an integer: %s" v)
      | Some w when w <= 0 -> Error "ways must be positive"
      | Some w -> (
        match spec with
        | Spec.Sa r -> Ok (Spec.Sa { r with ways = w })
        | Spec.Sp r -> Ok (Spec.Sp { r with ways = w })
        | Spec.Pl r -> Ok (Spec.Pl { r with ways = w })
        | Spec.Nomo r -> Ok (Spec.Nomo { r with ways = w })
        | Spec.Rp r -> Ok (Spec.Rp { r with ways = w })
        | Spec.Rf r -> Ok (Spec.Rf { r with ways = w })
        | Spec.Re r -> Ok (Spec.Re { r with ways = w })
        | Spec.Noisy r -> Ok (Spec.Noisy { r with ways = w })
        | Spec.Newcache _ -> Error "newcache has no ways"))
  in
  let int_override key apply spec =
    match List.assoc_opt key args with
    | None -> Ok spec
    | Some v -> (
      match int_of_string_opt v with
      | None -> Error (Printf.sprintf "%s: not an integer: %s" key v)
      | Some n -> apply spec n)
  in
  let* spec =
    int_override "nbits"
      (fun s n ->
        match s with
        | Spec.Newcache _ -> Ok (Spec.Newcache { extra_bits = n })
        | _ -> Error "nbits applies to newcache only")
      spec
  in
  let* spec =
    int_override "partitions"
      (fun s n ->
        match s with
        | Spec.Sp r -> Ok (Spec.Sp { r with partitions = n })
        | _ -> Error "partitions applies to sp only")
      spec
  in
  let* spec =
    int_override "reserved"
      (fun s n ->
        match s with
        | Spec.Nomo r -> Ok (Spec.Nomo { r with reserved = n })
        | _ -> Error "reserved applies to nomo only")
      spec
  in
  let* spec =
    int_override "back"
      (fun s n ->
        match s with
        | Spec.Rf r -> Ok (Spec.Rf { r with back = n })
        | _ -> Error "back applies to rf only")
      spec
  in
  let* spec =
    int_override "fwd"
      (fun s n ->
        match s with
        | Spec.Rf r -> Ok (Spec.Rf { r with fwd = n })
        | _ -> Error "fwd applies to rf only")
      spec
  in
  let* spec =
    int_override "interval"
      (fun s n ->
        match s with
        | Spec.Re r -> Ok (Spec.Re { r with interval = n })
        | _ -> Error "interval applies to re only")
      spec
  in
  match List.assoc_opt "sigma" args with
  | None -> Ok spec
  | Some v -> (
    match float_of_string_opt v with
    | None -> Error (Printf.sprintf "sigma: not a number: %s" v)
    | Some sigma -> (
      match spec with
      | Spec.Noisy r -> Ok (Spec.Noisy { r with sigma })
      | _ -> Error "sigma applies to noisy only"))

(* Geometry: the paper's Table 4 defaults, with the config's way count
   mirroring the spec's (Newcache, which has no ways, gets the standard
   8). [Config.v] validates pow2/divisibility — its message becomes the
   protocol error. *)
let parse_config args ~ways =
  let* lb = int_arg args "lb" ~default:64 in
  let* lines = int_arg args "lines" ~default:512 in
  match Config.v ~line_bytes:lb ~lines ~ways with
  | c -> Ok c
  | exception Invalid_argument m -> Error m

let parse_attack args =
  match List.assoc_opt "attack" args with
  | None -> Error "missing attack=<name>"
  | Some n -> (
    match Attack_type.of_name n with
    | Some a -> Ok a
    | None ->
      Error
        (Printf.sprintf "unknown attack %s (expected one of: %s)" n
           (String.concat ", " (List.map Attack_type.name Attack_type.all))))

let check_keys args ~allowed =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) args with
  | Some (k, _) -> Error (Printf.sprintf "unknown argument %s" k)
  | None -> Ok ()

let check_flags flags =
  match List.filter (fun f -> f <> "cold") flags with
  | [] -> Ok (List.mem "cold" flags)
  | f :: _ -> Error (Printf.sprintf "unknown flag %s" f)

let decode_query line =
  match split_words line with
  | [] -> Error "empty query"
  | verb :: rest -> (
    let* args, flags = parse_args rest in
    let* cold = check_flags flags in
    let no_args name =
      if args <> [] || cold then
        Error (Printf.sprintf "%s takes no arguments" name)
      else Ok ()
    in
    match verb with
    | "ping" ->
      let* () = no_args "ping" in
      Ok Ping
    | "stats" ->
      let* () = no_args "stats" in
      Ok Stats
    | "shutdown" ->
      let* () = no_args "shutdown" in
      Ok Shutdown
    | "pas" ->
      let* () =
        check_keys args ~allowed:(("attack" :: spec_keys) @ config_keys)
      in
      let* spec = parse_spec args in
      let* config =
        parse_config args ~ways:(Option.value (spec_ways spec) ~default:8)
      in
      let* attack = parse_attack args in
      Ok (Pas { spec; config; attack; cold })
    | "prepas" ->
      let* () = check_keys args ~allowed:("k" :: spec_keys) in
      let* spec = parse_spec args in
      let* k = int_arg args "k" ~default:32 in
      if k < 0 then Error "k must be non-negative"
      else Ok (Prepas { spec; k; cold })
    | "resilience" ->
      let* () = check_keys args ~allowed:("attack" :: spec_keys) in
      let* spec = parse_spec args in
      let* attack = parse_attack args in
      Ok (Resilience { spec; attack; cold })
    | "table" ->
      let* () = check_keys args ~allowed:("attack" :: "ways" :: config_keys) in
      let* attack = parse_attack args in
      let* ways = int_arg args "ways" ~default:8 in
      let* config = parse_config args ~ways in
      Ok (Table { attack; config; cold })
    | "validate" ->
      let* () =
        check_keys args ~allowed:("attack" :: "seed" :: "quick" :: spec_keys)
      in
      let* spec = parse_spec args in
      let* attack = parse_attack args in
      let* seed = int_arg args "seed" ~default:42 in
      let* quick = int_arg args "quick" ~default:1 in
      Ok (Validate { spec; attack; seed; quick = quick <> 0; cold })
    | v -> Error (Printf.sprintf "unknown verb %s" v))

(* --- reply encoding --------------------------------------------------- *)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let pairs kvs =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (fmt_float v)) kvs)

let encode_reply = function
  | Ok_ -> "ok"
  | Overloaded -> "overloaded"
  | Error_ msg -> "error " ^ one_line msg
  | Pas_v v -> Printf.sprintf "pas v=%s" (fmt_float v)
  | Prepas_v v -> Printf.sprintf "prepas v=%s" (fmt_float v)
  | Resilience_v { verdict; pas } ->
    Printf.sprintf "resilience verdict=%s pas=%s" verdict (fmt_float pas)
  | Table_v rows -> "table " ^ pairs rows
  | Validate_v { pas; predicted_leak; recovered; separation; agrees } ->
    Printf.sprintf
      "validate pas=%s predicted=%d recovered=%d separation=%s agrees=%d"
      (fmt_float pas)
      (if predicted_leak then 1 else 0)
      (if recovered then 1 else 0)
      (fmt_float separation)
      (if agrees then 1 else 0)
  | Stats_v kvs -> "stats " ^ pairs kvs

let parse_pairs words =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
      match String.index_opt w '=' with
      | None -> Error (Printf.sprintf "malformed pair %s" w)
      | Some i -> (
        let k = String.sub w 0 i in
        let v = String.sub w (i + 1) (String.length w - i - 1) in
        match float_of_string_opt v with
        | Some f -> go ((k, f) :: acc) rest
        | None -> Error (Printf.sprintf "%s: not a number: %s" k v)))
  in
  go [] words

let float_pair args key =
  match List.assoc_opt key args with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %s=" key)

let decode_reply line =
  match split_words line with
  | [] -> Error "empty reply"
  | [ "ok" ] -> Ok Ok_
  | [ "overloaded" ] -> Ok Overloaded
  | "error" :: _ ->
    (* Everything after the verb, verbatim (the message may contain
       spaces and '='). *)
    let msg =
      if String.length line > 6 then String.sub line 6 (String.length line - 6)
      else ""
    in
    Ok (Error_ msg)
  | "pas" :: rest ->
    let* kvs = parse_pairs rest in
    let* v = float_pair kvs "v" in
    Ok (Pas_v v)
  | "prepas" :: rest ->
    let* kvs = parse_pairs rest in
    let* v = float_pair kvs "v" in
    Ok (Prepas_v v)
  | "resilience" :: rest -> (
    match rest with
    | [ v; p ] when String.length v > 8 && String.sub v 0 8 = "verdict=" -> (
      let verdict = String.sub v 8 (String.length v - 8) in
      match String.index_opt p '=' with
      | Some i when String.sub p 0 i = "pas" -> (
        match
          float_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
        with
        | Some pas -> Ok (Resilience_v { verdict; pas })
        | None -> Error "resilience: bad pas value")
      | _ -> Error "resilience: missing pas=")
    | _ -> Error "resilience: expected verdict= pas=")
  | "table" :: rest ->
    let* rows = parse_pairs rest in
    Ok (Table_v rows)
  | "validate" :: rest ->
    let* kvs = parse_pairs rest in
    let* pas = float_pair kvs "pas" in
    let* predicted = float_pair kvs "predicted" in
    let* recovered = float_pair kvs "recovered" in
    let* separation = float_pair kvs "separation" in
    let* agrees = float_pair kvs "agrees" in
    Ok
      (Validate_v
         {
           pas;
           predicted_leak = predicted <> 0.;
           recovered = recovered <> 0.;
           separation;
           agrees = agrees <> 0.;
         })
  | "stats" :: rest ->
    let* kvs = parse_pairs rest in
    Ok (Stats_v kvs)
  | v :: _ -> Error (Printf.sprintf "unknown reply verb %s" v)

(* --- framing ---------------------------------------------------------- *)

let max_frame = 4 * 1024 * 1024

(* Reply lines are usually far bigger than their query lines (a ~27-byte
   [table] query yields a ~250-byte nine-row reply), so the request-side
   [max_frame] does not bound the response frame. Capping the number of
   query lines per request frame is what keeps well-formed batches'
   replies under [max_frame]; the server rejects bigger batches with a
   protocol error instead of assembling an unencodable reply. *)
let max_batch_lines = 4096

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.frame: payload exceeds max_frame";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  b

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w = 0 then failwith "Protocol.write_frame: socket closed";
    off := !off + w
  done

let write_frame fd payload = write_all fd (frame payload)

let read_exactly fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let r = Unix.read fd b !off (n - !off) in
    if r = 0 then eof := true else off := !off + r
  done;
  if !eof then if !off = 0 then None else failwith "Protocol: truncated frame"
  else Some b

let be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let read_frame fd =
  match read_exactly fd 4 with
  | None -> None
  | Some hdr ->
    let len = be32 (Bytes.to_string hdr) 0 in
    if len > max_frame then failwith "Protocol: oversized frame";
    if len = 0 then Some ""
    else (
      match read_exactly fd len with
      | None -> failwith "Protocol: truncated frame"
      | Some b -> Some (Bytes.to_string b))

module Frames = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }
  let pending_bytes t = String.length t.pending

  let feed t ~bytes ~len =
    t.pending <- t.pending ^ Bytes.sub_string bytes 0 len;
    let rec extract acc =
      let s = t.pending in
      let n = String.length s in
      if n < 4 then Ok (List.rev acc)
      else
        let flen = be32 s 0 in
        if flen > max_frame then Error "oversized frame"
        else if n < 4 + flen then Ok (List.rev acc)
        else begin
          let payload = String.sub s 4 flen in
          t.pending <- String.sub s (4 + flen) (n - 4 - flen);
          extract (payload :: acc)
        end
    in
    extract []
end
