type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> { fd; open_ = true }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_retry ?(attempts = 100) ?(delay_s = 0.05) socket =
  let rec go n =
    match connect socket with
    | c -> c
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
      Unix.sleepf delay_s;
      go (n - 1)
  in
  go attempts

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let with_connection socket f =
  let c = connect socket in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let round_trip_raw c lines =
  if lines = [] then []
  else begin
    Protocol.write_frame c.fd (String.concat "\n" lines);
    match Protocol.read_frame c.fd with
    | None -> failwith "Client: server closed the connection before replying"
    | Some payload ->
      let replies = String.split_on_char '\n' payload in
      if List.length replies <> List.length lines then
        failwith
          (Printf.sprintf "Client: sent %d queries, got %d replies"
             (List.length lines) (List.length replies));
      replies
  end

let request c queries =
  let lines = List.map Protocol.encode_query queries in
  List.map
    (fun line ->
      match Protocol.decode_reply line with
      | Ok r -> r
      | Error msg ->
        failwith (Printf.sprintf "Client: undecodable reply %S: %s" line msg))
    (round_trip_raw c lines)

let request1 c q =
  match request c [ q ] with
  | [ r ] -> r
  | _ -> assert false
