open Cachesec_core
open Cachesec_cache
open Cachesec_analysis

(* --- canonical keys --------------------------------------------------- *)

let policy_key p = Ckey.string (Replacement.policy_to_string p)

(* One tag per Spec constructor, every field encoded — including the
   ones the paper pins to defaults, so a future default change cannot
   silently alias old and new questions. *)
let spec_key = function
  | Spec.Sa { ways; policy } -> Ckey.tag "sa" [ Ckey.int ways; policy_key policy ]
  | Spec.Sp { ways; policy; partitions } ->
    Ckey.tag "sp" [ Ckey.int ways; policy_key policy; Ckey.int partitions ]
  | Spec.Pl { ways; policy } -> Ckey.tag "pl" [ Ckey.int ways; policy_key policy ]
  | Spec.Nomo { ways; policy; reserved } ->
    Ckey.tag "nomo" [ Ckey.int ways; policy_key policy; Ckey.int reserved ]
  | Spec.Newcache { extra_bits } -> Ckey.tag "newcache" [ Ckey.int extra_bits ]
  | Spec.Rp { ways; policy } -> Ckey.tag "rp" [ Ckey.int ways; policy_key policy ]
  | Spec.Rf { ways; policy; back; fwd } ->
    Ckey.tag "rf"
      [ Ckey.int ways; policy_key policy; Ckey.int back; Ckey.int fwd ]
  | Spec.Re { ways; policy; interval } ->
    Ckey.tag "re" [ Ckey.int ways; policy_key policy; Ckey.int interval ]
  | Spec.Noisy { ways; policy; sigma } ->
    Ckey.tag "noisy" [ Ckey.int ways; policy_key policy; Ckey.float sigma ]

let config_key (c : Config.t) =
  Ckey.tag "cfg"
    [ Ckey.int c.Config.line_bytes; Ckey.int c.Config.lines;
      Ckey.int c.Config.ways ]

let attack_key a = Ckey.tag "atk" [ Ckey.int (Attack_type.type_number a) ]

let key q =
  let k name parts = Some (Ckey.to_string (Ckey.tag name parts)) in
  match (q : Protocol.query) with
  | Ping | Stats | Shutdown -> None
  | Pas { spec; config; attack; cold = _ } ->
    k "pas" [ spec_key spec; config_key config; attack_key attack ]
  | Prepas { spec; k = steps; cold = _ } ->
    k "prepas" [ spec_key spec; Ckey.int steps ]
  | Resilience { spec; attack; cold = _ } ->
    k "resilience" [ spec_key spec; attack_key attack ]
  | Table { attack; config; cold = _ } ->
    k "table" [ attack_key attack; config_key config ]
  | Validate { spec; attack; seed; quick; cold = _ } ->
    k "validate"
      [ spec_key spec; attack_key attack; Ckey.int seed; Ckey.bool quick ]

(* --- bounded answer cache --------------------------------------------- *)

type t = {
  table : (string, string) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  max_entries : int;
}

let create ?(max_entries = 65536) () =
  { table = Hashtbl.create 256; order = Queue.create (); max_entries }

let find t k = Hashtbl.find_opt t.table k

let add t k v =
  if Hashtbl.mem t.table k then Hashtbl.replace t.table k v
  else begin
    if Hashtbl.length t.table >= t.max_entries then begin
      (* Evict the oldest insertion. Overwrites don't touch [order], so
         a queue head may already be gone from the table; skip those. *)
      let rec evict () =
        match Queue.take_opt t.order with
        | None -> ()
        | Some old ->
          if Hashtbl.mem t.table old then Hashtbl.remove t.table old
          else evict ()
      in
      evict ()
    end;
    Hashtbl.add t.table k v;
    Queue.push k t.order
  end

let size t = Hashtbl.length t.table

(* --- in-flight registry ----------------------------------------------- *)

module Inflight = struct
  type ('a, 'w) entry = {
    key : string;
    fut : 'a Cachesec_runtime.Pool.future;
    mutable waiters : 'w list;
  }

  type ('a, 'w) t = (string, ('a, 'w) entry) Hashtbl.t

  let create () = Hashtbl.create 16
  let find t k = Hashtbl.find_opt t k

  let add t ~key ~fut w =
    assert (not (Hashtbl.mem t key));
    let e = { key; fut; waiters = [ w ] } in
    Hashtbl.add t key e;
    e

  let join e w = e.waiters <- w :: e.waiters
  let remove t k = Hashtbl.remove t k
  let count t = Hashtbl.length t
  let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t []
end
