(** Client/server throughput benchmark for the PAS query server,
    exported as [BENCH_serve.json] (schema [bench_serve/v1], frozen
    line format like the other bench files).

    The server is a child process: the benchmark re-execs its own
    executable with a sentinel argv that {!child_entry} intercepts
    ([Unix.fork] is off the table — on OCaml 5 it is forbidden for
    the rest of the process lifetime once any domain has been
    spawned, and the pool usually has). The parent drives it over the
    real socket, so every number includes the full protocol path —
    framing, syscalls, decode, route.

    Three mixes, measured separately because they answer different
    questions:
    - ["memo-hit"]: one [table] query repeated [batch] times per frame
      against a warmed memo — the fast path. QPS amortizes the frame
      round trip over the batch; p50/p99 are per-query (frame time /
      batch).
    - ["cold"]: the same [table] query with the [cold] flag, one query
      per frame — every round trip recomputes the closed form
      ({!Cachesec_analysis.Pas_tables.rows_for}, all nine
      architectures). This is the gate's denominator.
    - ["sim"]: quick-scale cold [validate] cells, one per frame — the
      simulation-backed path through the admission gate (single
      repetition; these are seconds-scale, variance is visible in
      p50/p99).

    The hard gate: memo-hit QPS >= {!default_gate_threshold} x cold
    QPS. Batch sizes are recorded in the entries — the comparison is
    honest about amortization: the served fast path is only worth its
    name if batching + memoization beat recomputation by a wide
    margin. *)

open Cachesec_runtime

type entry = {
  mix : string;  (** "memo-hit" | "cold" | "sim" *)
  queries : int;  (** timed queries per repetition *)
  batch : int;  (** queries per frame *)
  seconds : float;  (** fastest repetition *)
  qps : float;  (** [queries /. seconds] *)
  p50_us : float;  (** per-query latency percentiles of the fastest *)
  p99_us : float;  (** repetition, in microseconds *)
  warmup : int;  (** warm-up queries before the first stopwatch *)
  repeats : int;  (** timed repetitions behind [seconds]/[stddev] *)
  stddev : float;  (** of QPS across the repetitions *)
}

val default_socket : string
(** [results/.serve-bench.sock] — inside the repo tree. *)

val child_flag : string
(** ["--serve-bench-child"] — the sentinel argv for the server child. *)

val child_entry : unit -> unit
(** Call FIRST in the [main] of any executable that runs {!bench}
    (before Cmdliner parses argv). If the process was spawned as
    [argv = [| _; child_flag; socket |]], runs an [Inline] server on
    [socket] and exits; otherwise returns immediately. *)

val bench : Run.ctx -> entry list
(** Spawn an [Inline] server child (re-exec via {!child_entry}),
    measure the three mixes, shut it down cleanly (the socket file is
    gone on return). [ctx.quick] economises on frames and
    repetitions. Gauges [serve_bench.<mix>.qps] are reported to
    [ctx.telemetry]. *)

val default_gate_threshold : float
(** 50. *)

val gate : ?threshold:float -> entry list -> (float * bool) option
(** [(memo-hit QPS / cold QPS, ratio >= threshold)]; [None] when either
    mix is missing. *)

val to_json : ?span_id:int -> entry list -> string
val write : ?span_id:int -> path:string -> entry list -> unit
val read : path:string -> entry list
(** [[]] if absent or unparseable (never raises). *)

val find : entry list -> mix:string -> entry option
val render : ?baseline:string -> entry list -> string
(** Human-readable table; with a readable [baseline] file, adds a
    per-mix QPS speedup column against it. *)
