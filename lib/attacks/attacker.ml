open Cachesec_cache

let default_base = 1 lsl 20

(* Align the base to the set stride so base + set + k*sets lands in
   [set] under conventional indexing. *)
let nth_conflict_line cfg ?(base = default_base) ~set k =
  let sets = Config.sets cfg in
  if set < 0 || set >= sets then
    invalid_arg "Attacker.nth_conflict_line: bad set";
  base - (base mod sets) + set + (k * sets)

(* Deprecated list form; the error message is frozen (tests pin it). *)
let conflict_lines cfg ?(base = default_base) ~count set =
  let sets = Config.sets cfg in
  if set < 0 || set >= sets then invalid_arg "Attacker.conflict_lines: bad set";
  let aligned = base - (base mod sets) in
  List.init count (fun k -> aligned + set + (k * sets))

let evict_set engine ~pid ?(base = default_base) set =
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg in
  if set < 0 || set >= sets then invalid_arg "Attacker.evict_set: bad set";
  let aligned = base - (base mod sets) in
  for k = 0 to cfg.Config.ways - 1 do
    ignore (engine.Engine.access ~pid (aligned + set + (k * sets)))
  done

let prime_all_sets engine ~pid ?base () =
  for set = 0 to Config.sets engine.Engine.config - 1 do
    evict_set engine ~pid ?base set
  done

type probe = { true_misses : int; classified_misses : int; time : float }

let probe_set engine rng ~pid ?base set =
  let cfg = engine.Engine.config in
  let lines = conflict_lines cfg ?base ~count:cfg.Config.ways set in
  List.fold_left
    (fun acc line ->
      let o = engine.Engine.access ~pid line in
      let t = Timing.observe_outcome rng ~sigma:engine.Engine.sigma o in
      {
        true_misses = (acc.true_misses + if Outcome.is_miss o then 1 else 0);
        classified_misses =
          (acc.classified_misses
          + match Timing.classify t with Outcome.Miss -> 1 | Outcome.Hit -> 0);
        time = acc.time +. t;
      })
    { true_misses = 0; classified_misses = 0; time = 0. }
    lines

let probe_all_sets engine rng ~pid ?base () =
  Array.init (Config.sets engine.Engine.config) (fun set ->
      probe_set engine rng ~pid ?base set)
