(** Type 2 — the prime-and-probe attack (paper Figure 6).

    Each trial: the attacker primes every cache set with his own lines;
    the victim encrypts a random plaintext; the attacker probes each set
    and classifies each of his own access times as hit or miss. A
    candidate key byte predicts which set the victim's first-round lookup
    touched; the candidate whose predicted sets were missed most
    consistently wins (for the true candidate the predicted set is missed
    on {e every} trial on a leaky cache). *)


type config = {
  trials : int;
  target_byte : int;
  lock_victim_tables : bool;
}

val default_config : config
(** 2000 trials, byte 0, no locking. *)

type result = {
  set_miss_rate : float array;  (** per-set average classified probe misses *)
  scores : float array;  (** 256 candidate scores (Figure 10's series) *)
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;
  separation : float;
}

val run : victim:Victim.t -> attacker_pid:int -> rng:Cachesec_stats.Rng.t -> config -> result

(** {2 Sharded execution} — see {!Evict_time} for the model. Trials are
    exchangeable here (no global-index dependence), so a span is
    identified by its length alone. *)

type partial

val merge_into : partial -> partial -> unit
(** Fold the right partial into the left in place, allocation-free —
    the campaign merge loops consume each partial exactly once, so
    mutating the running accumulator is safe. The right argument is
    unchanged. *)

val merge_partial : partial -> partial -> partial
(** Associative and commutative; raises [Invalid_argument] when the two
    partials were produced against different cache geometries. *)

val observe : partial -> Cachesec_stats.Sequential.observation
(** The adaptive runtime's estimator hook: a [Proportion] — the best
    candidate's per-trial hit rate over the span. Computed from the
    merged partial's existing accumulators; the zero-allocation trial
    loop is never instrumented (the per-access allocation budget in
    test_attacks pins this). *)

val run_span :
  victim:Victim.t ->
  attacker_pid:int ->
  rng:Cachesec_stats.Rng.t ->
  count:int ->
  config ->
  partial
(** Accumulate [count] trials ([config.trials] is ignored by the span). *)

val finalize : victim:Victim.t -> config -> partial -> result
