(** The victim process: table-based AES-128 run through a cache engine.

    Every table lookup of a block encryption becomes one cache access by
    the victim's pid; the block's execution time is the sum of the per-
    access hit/miss latencies (hit = 0, miss = 1), which is what the
    attacker's coarse timer measures in timing-based attacks.

    Each victim owns one set of reusable encryption scratch buffers
    (cipher state, packed trace, ciphertext), so the [_fast]/[_misses]
    entry points below run a whole encryption through the cache without
    GC allocation. Encryptions on one victim must not overlap (trials
    are sequential within a campaign shard; never share a victim across
    domains). *)

open Cachesec_cache
open Cachesec_crypto

type t

val create :
  engine:Engine.t -> pid:int -> key:Aes.key -> layout:Aes_layout.t -> t

val pid : t -> int
val key : t -> Aes.key
val layout : t -> Aes_layout.t
val engine : t -> Engine.t

val encrypt_timed : t -> Bytes.t -> Bytes.t * float
(** Encrypt one block through the cache; the float is the exact total
    access time (misses counted at 1.0 each, before observation noise).
    Allocates a fresh ciphertext — per-trial loops that only need the
    time should use {!encrypt_misses}. *)

val encrypt_quiet : t -> Bytes.t -> Bytes.t
(** Same cache side effects, discarding the time (but still allocating
    the returned ciphertext; see {!encrypt_quiet_fast}). *)

val encrypt_misses : t -> Bytes.t -> int
(** Allocation-free encryption: same cache side effects (and engine RNG
    stream) as {!encrypt_timed}, returning the number of missing
    accesses as an immediate int. The exact time is
    [Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m];
    the ciphertext stays in the victim's scratch (overwritten by the
    next encryption). *)

val encrypt_quiet_fast : t -> Bytes.t -> unit
(** {!encrypt_misses} with the count discarded. *)

val warm_tables : t -> unit
(** Access every table line once (brings them in where the architecture
    allows it). Allocation-free: the table lines are one contiguous
    range. *)

val lock_tables : t -> int
(** PL cache: prefetch-and-lock every table line; returns how many locked
    (0 on architectures without locking). *)

val random_plaintext : Cachesec_stats.Rng.t -> Bytes.t
(** 16 uniform bytes (fresh buffer). *)

val random_plaintext_into : Cachesec_stats.Rng.t -> Bytes.t -> unit
(** Fill a caller-owned buffer with uniform bytes, drawing one
    [Rng.int rng 256] per byte in ascending order — the same stream
    {!random_plaintext} consumes, without the allocation. *)
