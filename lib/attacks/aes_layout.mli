(** Memory placement of the victim's AES tables.

    The five 1 KB tables (te0..te3 and the final-round table) sit
    contiguously from [base_line]: with 64-byte lines each table covers 16
    lines and an entry lookup [(table, index)] touches line
    [base_line + 16*table + index/16]. This is the address knowledge both
    the attacker (to aim evictions) and the analysis share. *)

open Cachesec_cache
open Cachesec_crypto

type t

val create : ?base_line:int -> Config.t -> t
(** [base_line] defaults to 0 (line-aligned by construction). *)

val base_line : t -> int
val config : t -> Config.t

val entries_per_line : t -> int
(** Table entries sharing one cache line (16 for 64-byte lines). *)

val lines_per_table : t -> int
val line_of_access : t -> Aes.access -> int
(** The memory line touched by one AES table lookup. *)

val line_of_entry : t -> table:int -> index:int -> int

val line_of_packed : t -> int -> int
(** The line touched by one packed lookup ([(table lsl 8) lor index],
    as produced by [Aes.encrypt_traced_into]). Pure arithmetic on
    precomputed geometry — no bounds checks, no allocation; only feed
    it packed accesses from the cipher. *)

val table_lines : t -> table:int -> int list
(** All lines of one table, ascending. *)

val all_lines : t -> int list
(** All table lines, ascending (80 lines in the standard layout). *)

val line_count : t -> int
(** [List.length (all_lines t)] without building the list; the lines are
    contiguous from {!base_line}, so allocation-free consumers can loop
    [base_line t .. base_line t + line_count t - 1]. *)

val line_ranges : t -> (int * int) list
(** Inclusive ranges for {!Factory.scenario}'s [victim_lines]. *)

val set_of_entry : t -> table:int -> index:int -> int
(** Cache set of an entry under conventional indexing. *)

val entry_line_of_index : t -> int -> int
(** [index / entries_per_line]: which line {e within its table} an entry
    index falls on. *)
