(** Precompiled prime/probe plan: the allocation-free attack fast path.

    A plan snapshots one attacker's conflict-line addresses for EVERY
    cache set into a single flat int array ([ways] lines per set,
    set-major) at construction, and owns per-set scratch buffers for the
    probe results. A prime-probe trial then runs

    {[
      Probe_plan.prime_all plan;
      (* ... victim activity ... *)
      Probe_plan.probe_all plan rng;
      (* read Probe_plan.classified_misses plan set, etc. *)
    ]}

    without allocating: the addresses are precompiled, the results are
    written in place as unboxed ints/floats, and nothing survives the
    trial but the scratch contents.

    {b Lifetime and ownership.} A plan is valid for the lifetime of the
    engine (and [base]) it was built from — line addresses depend only on
    the engine's geometry, so one plan per [Setup]/engine is the intended
    shape; build it once per campaign shard, outside the trial loop. The
    scratch buffers are overwritten by every [probe_*] call and must be
    consumed (or copied) before the next probe; plans are therefore not
    shareable between domains or concurrent trials.

    {b Determinism.} Access order is identical to the historical
    list-based [Attacker.evict_set]/[probe_all_sets] path (set 0..sets-1,
    line k = 0..ways-1 within a set) and the probe consumes the
    observation RNG exactly as [Attacker.probe_set] did, so campaigns
    produce bit-for-bit identical results (pinned by the attack golden
    digests in [test/golden/attacks.golden]). *)

open Cachesec_cache

type t

val make : ?base:int -> Engine.t -> pid:int -> t
(** Precompile the plan for [engine]'s geometry. [base] defaults to
    {!Attacker.default_base}; lines follow
    [Attacker.nth_conflict_line engine.config ~base ~set k]. *)

val sets : t -> int
val ways : t -> int

val line : t -> set:int -> int -> int
(** [line t ~set k] — the [k]-th precompiled conflict line of [set]
    (unchecked indexing into the flat array). *)

val prime_set : t -> int -> unit
(** Access the [ways] plan lines of one set (the prime / evict step). *)

val prime_all : t -> unit
(** {!prime_set} for every set, ascending. *)

val probe_set : t -> Cachesec_stats.Rng.t -> int -> unit
(** Re-access the plan lines of one set, overwriting that set's scratch
    slots: true misses, classified misses (after per-access noisy-time
    classification; equal to true misses when sigma = 0) and total
    observed time. The RNG is consumed exactly as the record-returning
    [Attacker.probe_set] consumes it (not at all when sigma = 0). *)

val probe_all : t -> Cachesec_stats.Rng.t -> unit
(** {!probe_set} for every set, ascending. *)

val true_misses : t -> int -> int
(** Scratch readback for one set, valid until the next probe of it. *)

val classified_misses : t -> int -> int
val time : t -> int -> float
