open Cachesec_cache
open Cachesec_crypto

type config = { trials : int; target_byte : int; victim_prefetch : bool }

let default_config = { trials = 2000; target_byte = 0; victim_prefetch = false }

type result = {
  line_hit_rate : float array;
  scores : float array;
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;
  separation : float;
}

let validate c =
  if c.trials <= 0 then invalid_arg "Flush_reload.run: trials must be positive";
  if c.target_byte < 0 || c.target_byte > 15 then
    invalid_arg "Flush_reload.run: target_byte must be in 0..15"

(* --- partial (mergeable) trial accumulators -------------------------- *)

type partial = {
  hit_counts : float array;
  cand_hits : float array;
  mutable span : int;
}

(* In-place fold — see [Prime_probe.merge_into] for the single-consumer
   argument that makes mutating the accumulator safe. *)
let merge_into a b =
  if Array.length a.hit_counts <> Array.length b.hit_counts then
    invalid_arg "Flush_reload.merge_into: line-count mismatch";
  for i = 0 to Array.length a.hit_counts - 1 do
    a.hit_counts.(i) <- a.hit_counts.(i) +. b.hit_counts.(i)
  done;
  for k = 0 to 255 do
    a.cand_hits.(k) <- a.cand_hits.(k) +. b.cand_hits.(k)
  done;
  a.span <- a.span + b.span

(* Pure compatibility wrapper: copy, then fold. *)
let merge_partial a b =
  let acc =
    {
      hit_counts = Array.copy a.hit_counts;
      cand_hits = Array.copy a.cand_hits;
      span = a.span;
    }
  in
  merge_into acc b;
  acc

(* Adaptive-runtime estimator: the best candidate's reload-hit rate, a
   proportion over the span — computed from the merged partial's
   existing accumulators, never inside the zero-allocation trial loop. *)
let observe p =
  Cachesec_stats.Sequential.Proportion
    {
      successes = Array.fold_left Float.max 0. p.cand_hits;
      trials = p.span;
    }

let run_span ~victim ~attacker_pid ~rng ~count c =
  validate { c with trials = count };
  let layout = Victim.layout victim in
  let engine = Victim.engine victim in
  let table = c.target_byte mod 4 in
  let lines = Array.of_list (Aes_layout.table_lines layout ~table) in
  let nlines = Array.length lines in
  let epl = Aes_layout.entries_per_line layout in
  let hit_counts = Array.make nlines 0. in
  let cand_hits = Array.make 256 0. in
  (* Per-trial scratch, hoisted out of the loop: the reload-hit vector
     is fully overwritten every trial, the plaintext buffer is refilled,
     and the table region to flush is one contiguous line range. The
     trial loop allocates nothing; access/RNG order matches the
     historical per-trial-list code bit for bit. *)
  let hit = Array.make nlines false in
  let p = Bytes.create 16 in
  let flush_base = Aes_layout.base_line layout in
  let flush_count = Aes_layout.line_count layout in
  (* Reload outcomes, written back by one batched Trace run per trial.
     The engine draws (its own stream) group before the observation
     draws (the experiment stream) instead of interleaving — distinct
     streams, so both consume exactly the scalar sequence. *)
  let out = Array.make nlines Outcome.hit in
  let trace_mode = Kernel.Trace out in
  for _ = 1 to count do
    (* Flush the whole shared table region (all five tables) so later-
       round fetches cannot linger across trials. *)
    for line = flush_base to flush_base + flush_count - 1 do
      ignore (engine.Engine.flush_line ~pid:attacker_pid line)
    done;
    (* Prefetching makes every table line victim-touched, drowning the
       secret-dependent reload signal at operation granularity. *)
    if c.victim_prefetch then Victim.warm_tables victim;
    Victim.random_plaintext_into rng p;
    Victim.encrypt_quiet_fast victim p;
    (* Reload: one batched Trace run, then classify each outcome's
       noisy time. At sigma = 0, [observe] draws nothing and [classify]
       returns the true event, so the observation step reduces to
       [is_hit]. *)
    engine.Engine.access_run ~pid:attacker_pid ~trace:lines ~pos:0 ~len:nlines
      trace_mode;
    let sigma = engine.Engine.sigma in
    for idx = 0 to nlines - 1 do
      let o = Array.unsafe_get out idx in
      hit.(idx) <-
        (if sigma = 0. then Outcome.is_hit o
         else Timing.classify (Timing.observe_outcome rng ~sigma o) = Outcome.Hit)
    done;
    for idx = 0 to nlines - 1 do
      if hit.(idx) then hit_counts.(idx) <- hit_counts.(idx) +. 1.
    done;
    let pb = Char.code (Bytes.get p c.target_byte) in
    for k = 0 to 255 do
      let predicted = (pb lxor k) / epl in
      if hit.(predicted) then cand_hits.(k) <- cand_hits.(k) +. 1.
    done
  done;
  { hit_counts; cand_hits; span = count }

let finalize ~victim c { hit_counts; cand_hits; span } =
  let epl = Aes_layout.entries_per_line (Victim.layout victim) in
  let ft = float_of_int span in
  let line_hit_rate = Array.map (fun x -> x /. ft) hit_counts in
  let scores = Array.map (fun x -> x /. ft) cand_hits in
  let true_byte =
    Char.code (Bytes.get (Aes.key_bytes (Victim.key victim)) c.target_byte)
  in
  let best_candidate = Recovery.argmax scores in
  {
    line_hit_rate;
    scores;
    best_candidate;
    true_byte;
    nibble_recovered = Recovery.nibble_recovered ~scores ~true_byte ~group_size:epl;
    separation = Recovery.separation scores ~winner:best_candidate;
  }

let run ~victim ~attacker_pid ~rng c =
  validate c;
  finalize ~victim c (run_span ~victim ~attacker_pid ~rng ~count:c.trials c)
