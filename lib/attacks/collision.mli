(** Type 3 — the cache-collision attack (paper Figure 5).

    No attacker interference at all: the cache starts clean, the victim
    encrypts a random plaintext, and the attacker only observes the total
    time. When the first-round lookups of two bytes i and j that share a
    table collide on the same cache line — which happens exactly when
    [p_i XOR p_j] agrees with [k_i XOR k_j] at line granularity — the
    second lookup hits and the block is faster. Binning times by
    [p_i XOR p_j] recovers the high nibble of [k_i XOR k_j]. *)

type config = {
  trials : int;
  byte_i : int;
  byte_j : int;  (** must satisfy [byte_i <> byte_j] and
                     [byte_i mod 4 = byte_j mod 4] (same table) *)
  victim_prefetch : bool;
      (** the software mitigation the paper cites ([34], [16]): the
          victim preloads all tables at the start of each operation,
          making reuse independent of the secret *)
}

val default_config : config
(** 20000 trials over bytes 0 and 4, no prefetching. *)

type result = {
  avg_times : float array;  (** 256 bins over delta = p_i XOR p_j *)
  counts : int array;
  scores : float array;  (** negated, normalised times: higher = hotter *)
  best_delta : int;
  true_delta : int;  (** k_i XOR k_j *)
  nibble_recovered : bool;
  separation : float;
}

val run : victim:Victim.t -> rng:Cachesec_stats.Rng.t -> config -> result
(** The cache is flushed before every trial (the cleaning prerequisite
    whose feasibility Section 5 / {!Cleaner} quantifies separately). *)

(** {2 Sharded execution} — see {!Evict_time} for the model. Trials are
    exchangeable (the cache is flushed per trial), so spans merge freely. *)

type partial

val empty_partial : unit -> partial
val merge_into : partial -> partial -> unit
(** Fold the right partial into the left in place, allocation-free —
    the campaign merge loops consume each partial exactly once, so
    mutating the running accumulator is safe. The right argument is
    unchanged. *)

val merge_partial : partial -> partial -> partial

val observe : partial -> Cachesec_stats.Sequential.observation
(** The adaptive runtime's estimator hook: a [Mean_rel] over the span's
    observed whole-block times (see {!Evict_time.observe}). *)

val run_span :
  victim:Victim.t -> rng:Cachesec_stats.Rng.t -> count:int -> config -> partial

val finalize : victim:Victim.t -> config -> partial -> result
