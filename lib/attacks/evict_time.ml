open Cachesec_cache
open Cachesec_crypto
open Cachesec_stats

type config = {
  trials : int;
  target_byte : int;
  target_table_line : int;
  lock_victim_tables : bool;
}

let default_config =
  { trials = 50000; target_byte = 0; target_table_line = 3; lock_victim_tables = false }

type result = {
  avg_times : float array;
  counts : int array;
  scores : float array;
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;
  separation : float;
}

let validate layout c =
  if c.trials <= 0 then invalid_arg "Evict_time.run: trials must be positive";
  if c.target_byte < 0 || c.target_byte > 15 then
    invalid_arg "Evict_time.run: target_byte must be in 0..15";
  if c.target_table_line < 0 || c.target_table_line >= Aes_layout.lines_per_table layout
  then invalid_arg "Evict_time.run: target_table_line out of range"

(* --- partial (mergeable) trial accumulators -------------------------- *)

(* [times] is a Welford summary of every observed block time — the
   estimator the adaptive runtime stops on ([observe]). It rides along
   without touching the per-bin sums the finalize consumes, so adding it
   changes no result field (the golden digests pin this). *)
type partial = { sums : float array; counts : int array; times : Summary.t }

let empty_partial () =
  { sums = Array.make 256 0.; counts = Array.make 256 0; times = Summary.create () }

(* In-place fold — see [Prime_probe.merge_into] for the single-consumer
   argument that makes mutating the accumulator safe. *)
let merge_into a b =
  for i = 0 to 255 do
    a.sums.(i) <- a.sums.(i) +. b.sums.(i);
    a.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  Summary.merge_into a.times b.times

(* Pure compatibility wrapper: copy, then fold. *)
let merge_partial a b =
  let acc =
    {
      sums = Array.copy a.sums;
      counts = Array.copy a.counts;
      times = Summary.copy a.times;
    }
  in
  merge_into acc b;
  acc

let observe p = Sequential.Mean_rel p.times

(* One contiguous span of the global trial index space, [first+1 ..
   first+count]. The global index matters: the attacker rotates through
   4096 distinct conflict-line bases keyed on it, and keeping that keyed
   on the *global* trial number makes a sharded run visit exactly the
   same base sequence as a monolithic one. *)
let run_span ~victim ~attacker_pid ~rng ~first ~count c =
  let layout = Victim.layout victim in
  validate layout { c with trials = count };
  let engine = Victim.engine victim in
  let epl = Aes_layout.entries_per_line layout in
  let table = c.target_byte mod 4 in
  let target_set =
    Aes_layout.set_of_entry layout ~table ~index:(c.target_table_line * epl)
  in
  if c.lock_victim_tables then ignore (Victim.lock_tables victim);
  let ({ sums; counts; times } as part) = empty_partial () in
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg in
  let ways = cfg.Config.ways in
  let stride = ways * sets in
  let p = Bytes.create 16 in
  (* Per-span eviction scratch: the [ways] conflict lines of the trial's
     rotating base, refilled in place and replayed as one batched Fill
     run (same addresses and order as [Attacker.evict_set]). *)
  let ev = Array.make ways 0 in
  for trial = first + 1 to first + count do
    Victim.warm_tables victim;
    (* Fresh conflict lines every trial: each of the [ways] accesses is a
       miss, so the eviction pressure on the target set is full (with the
       same lines, later trials mostly hit and evict nothing). *)
    let base = Attacker.default_base + (trial mod 4096 * stride) in
    let aligned = base - (base mod sets) in
    for k = 0 to ways - 1 do
      Array.unsafe_set ev k (aligned + target_set + (k * sets))
    done;
    engine.Engine.access_run ~pid:attacker_pid ~trace:ev ~pos:0 ~len:ways
      Kernel.Fill;
    Victim.random_plaintext_into rng p;
    let m = Victim.encrypt_misses victim p in
    let time = Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m in
    let observed =
      if engine.Engine.sigma = 0. then time
      else time +. Rng.gaussian rng ~mu:0. ~sigma:engine.Engine.sigma
    in
    let bin = Char.code (Bytes.get p c.target_byte) in
    sums.(bin) <- sums.(bin) +. observed;
    counts.(bin) <- counts.(bin) + 1;
    Summary.add times observed
  done;
  part

let finalize ~victim c { sums; counts; _ } =
  let layout = Victim.layout victim in
  let epl = Aes_layout.entries_per_line layout in
  let grand_total = Array.fold_left ( +. ) 0. sums in
  let grand_count = Array.fold_left ( + ) 0 counts in
  let grand_mean = grand_total /. float_of_int grand_count in
  let avg_times =
    Array.init 256 (fun v ->
        if counts.(v) = 0 then grand_mean else sums.(v) /. float_of_int counts.(v))
  in
  (* Candidate k: plaintext values p with (p xor k) on the evicted line
     should time high. Score = mean(avg over hot values) - grand mean. *)
  let scores =
    Array.init 256 (fun k ->
        let hot = ref 0. in
        for low = 0 to epl - 1 do
          let index = (c.target_table_line * epl) + low in
          hot := !hot +. avg_times.(index lxor k)
        done;
        (!hot /. float_of_int epl) -. grand_mean)
  in
  let true_byte = Char.code (Bytes.get (Aes.key_bytes (Victim.key victim)) c.target_byte) in
  let best_candidate = Recovery.argmax scores in
  {
    avg_times;
    counts;
    scores;
    best_candidate;
    true_byte;
    nibble_recovered = Recovery.nibble_recovered ~scores ~true_byte ~group_size:epl;
    separation = Recovery.separation scores ~winner:best_candidate;
  }

let run ~victim ~attacker_pid ~rng c =
  validate (Victim.layout victim) c;
  finalize ~victim c (run_span ~victim ~attacker_pid ~rng ~first:0 ~count:c.trials c)
