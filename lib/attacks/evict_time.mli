(** Type 1 — the evict-and-time attack (paper Algorithm 1, Figure 3).

    Each trial: the victim's tables are warm; the attacker evicts the
    cache set holding one chosen line of the target table; the victim
    encrypts a random plaintext; the attacker observes the whole block's
    execution time (plus the cache's Gaussian observation noise) and
    accumulates it in the bin of the targeted plaintext byte. Plaintext
    byte values whose first-round lookup [p XOR k] lands on the evicted
    line show a longer average time, which identifies the key byte's high
    nibble. *)


type config = {
  trials : int;
  target_byte : int;  (** which of the 16 key bytes to attack *)
  target_table_line : int;  (** which line of that byte's table to evict *)
  lock_victim_tables : bool;
      (** exercise the PL cache's intended use: prefetch-and-lock the
          tables before the attack (no-op on other architectures) *)
}

val default_config : config
(** 50000 trials, byte 0, table line 3, no locking. (The victim's later
    rounds touch most table lines anyway, so the per-trial contrast is a
    fraction of a miss — recovery needs tens of thousands of trials, just
    as the original attacks did.) *)

type result = {
  avg_times : float array;  (** 256 bins: mean observed block time per
                                plaintext-byte value (Figure 9's curve) *)
  counts : int array;
  scores : float array;  (** per key-byte-candidate score *)
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;  (** line-granularity success *)
  separation : float;  (** z-score of the winning candidate *)
}

val run : victim:Victim.t -> attacker_pid:int -> rng:Cachesec_stats.Rng.t -> config -> result
(** [run] is [run_span] over the whole trial range followed by
    {!finalize} — the serial reference path. *)

(** {2 Sharded execution}

    The trial loop decomposes into mergeable partial accumulators so the
    Domain-parallel trial runtime can execute disjoint spans of the trial
    index space against independent per-shard victims and fold the spans
    back together (associatively, in span order). *)

type partial
(** Per-plaintext-byte timing sums and counts for a span of trials,
    plus a Welford summary of every observed time for {!observe}. *)

val empty_partial : unit -> partial
val merge_into : partial -> partial -> unit
(** Fold the right partial into the left in place, allocation-free —
    the campaign merge loops consume each partial exactly once, so
    mutating the running accumulator is safe. The right argument is
    unchanged. *)

val merge_partial : partial -> partial -> partial

val observe : partial -> Cachesec_stats.Sequential.observation
(** The adaptive runtime's estimator hook: a [Mean_rel] over the span's
    observed block times — the stopping rule pins the mean observed time
    to a relative half-width. Derived from the merged partial only; the
    trial loop is unchanged. *)

val run_span :
  victim:Victim.t ->
  attacker_pid:int ->
  rng:Cachesec_stats.Rng.t ->
  first:int ->
  count:int ->
  config ->
  partial
(** Execute global trials [first+1 .. first+count]. The config's
    [trials] field is ignored by the span (the span length is [count]);
    the global index keys the attacker's conflict-line base rotation. *)

val finalize : victim:Victim.t -> config -> partial -> result
