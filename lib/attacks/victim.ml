open Cachesec_cache
open Cachesec_crypto
open Cachesec_stats

type t = {
  engine : Engine.t;
  pid : int;
  key : Aes.key;
  layout : Aes_layout.t;
  (* Reusable per-victim scratch for the allocation-free encryption
     path. One victim never runs two encryptions concurrently (trials
     are sequential within a campaign shard), so a single set of buffers
     suffices. *)
  sc : Aes.scratch;
  trace : int array;
  ct : Bytes.t;
  mutable misses : int;
}

let create ~engine ~pid ~key ~layout =
  {
    engine;
    pid;
    key;
    layout;
    sc = Aes.create_scratch ();
    trace = Array.make Aes.trace_length 0;
    ct = Bytes.create 16;
    misses = 0;
  }

let pid t = t.pid
let key t = t.key
let layout t = t.layout
let engine t = t.engine

(* The fast path: cipher writes the packed trace into [t.trace], each
   lookup is replayed through the cache in program order, and the miss
   count accumulates in a mutable int field (no ref cell, no float
   boxing). Access order — hence the engine's internal RNG stream — is
   identical to the historical [encrypt_traced]-based implementation. *)
let encrypt_misses t plaintext =
  Aes.encrypt_traced_into t.sc t.key ~src:plaintext ~dst:t.ct ~trace:t.trace;
  t.misses <- 0;
  let tr = t.trace in
  for i = 0 to Aes.trace_length - 1 do
    let o =
      t.engine.Engine.access ~pid:t.pid (Aes_layout.line_of_packed t.layout tr.(i))
    in
    if Outcome.is_miss o then t.misses <- t.misses + 1
  done;
  t.misses

let encrypt_quiet_fast t plaintext = ignore (encrypt_misses t plaintext)

let encrypt_timed t plaintext =
  let m = encrypt_misses t plaintext in
  ( Bytes.copy t.ct,
    Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m )

let encrypt_quiet t plaintext =
  encrypt_quiet_fast t plaintext;
  Bytes.copy t.ct

(* The table lines are contiguous ([Aes_layout.line_ranges] is a single
   range), so warming/locking is a plain counted loop — same ascending
   order as the historical [Aes_layout.all_lines] list, no allocation. *)
let warm_tables t =
  let base = Aes_layout.base_line t.layout in
  for line = base to base + Aes_layout.line_count t.layout - 1 do
    ignore (t.engine.Engine.access ~pid:t.pid line)
  done

let lock_tables t =
  let base = Aes_layout.base_line t.layout in
  let locked = ref 0 in
  for line = base to base + Aes_layout.line_count t.layout - 1 do
    if t.engine.Engine.lock_line ~pid:t.pid line then incr locked
  done;
  !locked

let random_plaintext_into rng b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done

let random_plaintext rng =
  let b = Bytes.create 16 in
  random_plaintext_into rng b;
  b
