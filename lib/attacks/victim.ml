open Cachesec_cache
open Cachesec_crypto
open Cachesec_stats

type t = {
  engine : Engine.t;
  pid : int;
  key : Aes.key;
  layout : Aes_layout.t;
  (* Reusable per-victim scratch for the allocation-free encryption
     path. One victim never runs two encryptions concurrently (trials
     are sequential within a campaign shard), so a single set of buffers
     suffices. *)
  sc : Aes.scratch;
  trace : int array;
  lines : int array;  (** [trace] translated to cache lines, replay input *)
  warm : int array;  (** the contiguous table lines, for batched warming *)
  counter : Kernel.counter;
  count_mode : Kernel.mode;
  ct : Bytes.t;
  mutable misses : int;
}

let create ~engine ~pid ~key ~layout =
  let counter = Kernel.make_counter ~bins:1 in
  {
    engine;
    pid;
    key;
    layout;
    sc = Aes.create_scratch ();
    trace = Array.make Aes.trace_length 0;
    lines = Array.make Aes.trace_length 0;
    warm =
      (let base = Aes_layout.base_line layout in
       Array.init (Aes_layout.line_count layout) (fun i -> base + i));
    counter;
    count_mode = Kernel.Count counter;
    ct = Bytes.create 16;
    misses = 0;
  }

let pid t = t.pid
let key t = t.key
let layout t = t.layout
let engine t = t.engine

(* The fast path, fused: cipher writes the packed trace into [t.trace],
   the trace is translated to cache lines in one tight loop, and a
   single batched Count run replays the whole encryption in program
   order — same engine state and RNG stream as the historical per-access
   loop, without building an [Outcome.t] per lookup. The counter's sigma
   stays 0 (the victim never classifies its own accesses), so the run
   consumes no observation randomness. *)
let encrypt_misses t plaintext =
  Aes.encrypt_traced_into t.sc t.key ~src:plaintext ~dst:t.ct ~trace:t.trace;
  let tr = t.trace in
  let lines = t.lines in
  for i = 0 to Aes.trace_length - 1 do
    Array.unsafe_set lines i
      (Aes_layout.line_of_packed t.layout (Array.unsafe_get tr i))
  done;
  let c = t.counter in
  c.Kernel.true_misses.(0) <- 0;
  c.Kernel.classified.(0) <- 0;
  c.Kernel.times.(0) <- 0.;
  t.engine.Engine.access_run ~pid:t.pid ~trace:lines ~pos:0
    ~len:Aes.trace_length t.count_mode;
  t.misses <- c.Kernel.true_misses.(0);
  t.misses

let encrypt_quiet_fast t plaintext = ignore (encrypt_misses t plaintext)

let encrypt_timed t plaintext =
  let m = encrypt_misses t plaintext in
  ( Bytes.copy t.ct,
    Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m )

let encrypt_quiet t plaintext =
  encrypt_quiet_fast t plaintext;
  Bytes.copy t.ct

(* The table lines are contiguous ([Aes_layout.line_ranges] is a single
   range), precompiled into [t.warm] at creation: warming is one batched
   Fill run in the same ascending order as the historical
   [Aes_layout.all_lines] loop. *)
let warm_tables t =
  t.engine.Engine.access_run ~pid:t.pid ~trace:t.warm ~pos:0
    ~len:(Array.length t.warm) Kernel.Fill

let lock_tables t =
  let base = Aes_layout.base_line t.layout in
  let locked = ref 0 in
  for line = base to base + Aes_layout.line_count t.layout - 1 do
    if t.engine.Engine.lock_line ~pid:t.pid line then incr locked
  done;
  !locked

let random_plaintext_into rng b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done

let random_plaintext rng =
  let b = Bytes.create 16 in
  random_plaintext_into rng b;
  b
