(** The attacker's cache-cleaning prerequisite (paper Section 5).

    Collision and flush-and-reload attacks need the security-critical data
    out of the cache first. This module Monte-Carlo-estimates the
    probability that an attacker succeeds by issuing [accesses] distinct
    memory reads that map into the victim's cache set — the empirical
    counterpart of the paper's closed-form pre-PAS (which
    {!Cachesec_analysis.Prepas} computes analytically).

    Per sample: the victim fills the target set ([ways] of his lines; a
    single line for Newcache, whose success criterion is evicting one
    designated physical line; locked lines for PL — its intended use),
    then the attacker issues his reads, and success is judged by whether
    any victim target line still hits.

    Known model deviation (documented in DESIGN.md): for the RP cache the
    paper assumes the attacker can opt out of the permutation feature and
    clean like on an SA cache; our simulated RP always applies the
    randomized interference handling, so the Monte-Carlo estimate is
    {e lower} than the paper's SA-equal curve. *)

open Cachesec_cache

val clean_once :
  Spec.t -> rng:Cachesec_stats.Rng.t -> accesses:int -> bool
(** One sample of the cleaning game on a fresh cache. *)

val count_wins :
  Spec.t -> accesses:int -> samples:int -> rng:Cachesec_stats.Rng.t -> int
(** Number of successful samples out of [samples] — the mergeable
    (additive) partial behind {!monte_carlo}, used by the trial runtime
    to shard the cleaning game across Domains. [samples] must be
    positive. *)

val monte_carlo :
  Spec.t -> accesses:int -> samples:int -> rng:Cachesec_stats.Rng.t -> float
(** Fraction of successful samples. [samples] must be positive. *)

val sweep :
  Spec.t ->
  accesses_list:int list ->
  samples:int ->
  rng:Cachesec_stats.Rng.t ->
  (int * float) list
(** The (k, pre-PAS) series behind a Figure 8-style curve. *)
