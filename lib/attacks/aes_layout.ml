open Cachesec_cache
open Cachesec_crypto

type t = { base_line : int; cfg : Config.t; epl : int; lpt : int }
(* [epl] (entries per line) and [lpt] (lines per table) are precomputed
   at [create] so the per-lookup hot path [line_of_packed] is pure
   arithmetic on immediates. *)

let create ?(base_line = 0) cfg =
  if base_line < 0 then invalid_arg "Aes_layout.create: negative base line";
  if cfg.Config.line_bytes > Ttables.table_bytes then
    invalid_arg "Aes_layout.create: line larger than a table";
  {
    base_line;
    cfg;
    epl = cfg.Config.line_bytes / Ttables.entry_bytes;
    lpt = Ttables.table_bytes / cfg.Config.line_bytes;
  }

let base_line t = t.base_line
let config t = t.cfg
let entries_per_line t = t.epl
let lines_per_table t = t.lpt

let line_count t = Ttables.table_count * t.lpt

let line_of_packed t a =
  (* Unchecked by design: [a] comes from [Aes.encrypt_traced_into],
     whose packed accesses are well-formed by construction. *)
  t.base_line + ((a lsr 8) * t.lpt) + ((a land 0xff) / t.epl)

let line_of_entry t ~table ~index =
  if table < 0 || table >= Ttables.table_count then
    invalid_arg "Aes_layout.line_of_entry: bad table";
  if index < 0 || index >= Ttables.entries_per_table then
    invalid_arg "Aes_layout.line_of_entry: bad index";
  t.base_line + (table * lines_per_table t) + (index / entries_per_line t)

let line_of_access t (a : Aes.access) = line_of_entry t ~table:a.table ~index:a.index

let table_lines t ~table =
  List.init (lines_per_table t) (fun i ->
      t.base_line + (table * lines_per_table t) + i)

let all_lines t =
  List.concat_map
    (fun table -> table_lines t ~table)
    (List.init Ttables.table_count Fun.id)

let line_ranges t =
  let n = Ttables.table_count * lines_per_table t in
  [ (t.base_line, t.base_line + n - 1) ]

let set_of_entry t ~table ~index =
  Address.set_index t.cfg (line_of_entry t ~table ~index)

let entry_line_of_index t index = index / entries_per_line t
