open Cachesec_cache
open Cachesec_crypto

type config = { trials : int; target_byte : int; lock_victim_tables : bool }

let default_config = { trials = 2000; target_byte = 0; lock_victim_tables = false }

type result = {
  set_miss_rate : float array;
  scores : float array;
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;
  separation : float;
}

let validate c =
  if c.trials <= 0 then invalid_arg "Prime_probe.run: trials must be positive";
  if c.target_byte < 0 || c.target_byte > 15 then
    invalid_arg "Prime_probe.run: target_byte must be in 0..15"

(* --- partial (mergeable) trial accumulators -------------------------- *)

type partial = {
  miss_freq : float array;
  cand_hits : float array;
  mutable span : int;
}
(* miss_freq.(s) = #trials in the span where probing set s saw >= 1
   classified miss; cand_hits.(k) accumulates the miss indicator of the
   set candidate k predicts; [span] is the trial count folded in. *)

(* In-place fold for the campaign merge loops ([Driver.fold_partials]
   consumes each partial exactly once into a running accumulator, so
   mutating the left argument is safe and saves the per-merge array
   pair). *)
let merge_into a b =
  if Array.length a.miss_freq <> Array.length b.miss_freq then
    invalid_arg "Prime_probe.merge_into: set-count mismatch";
  for s = 0 to Array.length a.miss_freq - 1 do
    a.miss_freq.(s) <- a.miss_freq.(s) +. b.miss_freq.(s)
  done;
  for k = 0 to 255 do
    a.cand_hits.(k) <- a.cand_hits.(k) +. b.cand_hits.(k)
  done;
  a.span <- a.span + b.span

(* Pure compatibility wrapper: copy, then fold. *)
let merge_partial a b =
  let acc =
    {
      miss_freq = Array.copy a.miss_freq;
      cand_hits = Array.copy a.cand_hits;
      span = a.span;
    }
  in
  merge_into acc b;
  acc

(* Adaptive-runtime estimator: the best candidate's hit rate, a
   proportion over the span. Computed from the merged partial's existing
   accumulators — the zero-allocation trial loop is never touched. *)
let observe p =
  Cachesec_stats.Sequential.Proportion
    {
      successes = Array.fold_left Float.max 0. p.cand_hits;
      trials = p.span;
    }

let run_span ~victim ~attacker_pid ~rng ~count c =
  validate { c with trials = count };
  let layout = Victim.layout victim in
  let engine = Victim.engine victim in
  let sets = Config.sets engine.Engine.config in
  let table = c.target_byte mod 4 in
  if c.lock_victim_tables then ignore (Victim.lock_tables victim);
  let miss_freq = Array.make sets 0. in
  let cand_hits = Array.make 256 0. in
  (* Everything a trial touches is precompiled or reused: the probe plan
     holds the conflict lines and per-set scratch, [p] is the plaintext
     buffer, and candidate k's predicted set is a pure table lookup. The
     trial loop itself allocates nothing; access and RNG order are
     identical to the historical list/record-based code (pinned by
     test/golden/attacks.golden). *)
  let plan = Probe_plan.make engine ~pid:attacker_pid in
  let p = Bytes.create 16 in
  let predicted =
    Array.init 256 (fun index -> Aes_layout.set_of_entry layout ~table ~index)
  in
  for _ = 1 to count do
    Probe_plan.prime_all plan;
    Victim.random_plaintext_into rng p;
    Victim.encrypt_quiet_fast victim p;
    Probe_plan.probe_all plan rng;
    for s = 0 to sets - 1 do
      if Probe_plan.classified_misses plan s > 0 then
        miss_freq.(s) <- miss_freq.(s) +. 1.
    done;
    let pb = Char.code (Bytes.get p c.target_byte) in
    for k = 0 to 255 do
      if Probe_plan.classified_misses plan predicted.(pb lxor k) > 0 then
        cand_hits.(k) <- cand_hits.(k) +. 1.
    done
  done;
  { miss_freq; cand_hits; span = count }

let finalize ~victim c { miss_freq; cand_hits; span } =
  let layout = Victim.layout victim in
  let epl = Aes_layout.entries_per_line layout in
  let ft = float_of_int span in
  let set_miss_rate = Array.map (fun x -> x /. ft) miss_freq in
  let scores = Array.map (fun x -> x /. ft) cand_hits in
  let true_byte =
    Char.code (Bytes.get (Aes.key_bytes (Victim.key victim)) c.target_byte)
  in
  let best_candidate = Recovery.argmax scores in
  {
    set_miss_rate;
    scores;
    best_candidate;
    true_byte;
    nibble_recovered = Recovery.nibble_recovered ~scores ~true_byte ~group_size:epl;
    separation = Recovery.separation scores ~winner:best_candidate;
  }

let run ~victim ~attacker_pid ~rng c =
  validate c;
  finalize ~victim c (run_span ~victim ~attacker_pid ~rng ~count:c.trials c)
