open Cachesec_cache
open Cachesec_stats

let victim_pid = 0
let attacker_pid = 1
let target_set = 0

let clean_once spec ~rng ~accesses =
  if accesses < 0 then invalid_arg "Cleaner.clean_once: negative accesses";
  let scenario =
    { Factory.victim_pid; victim_lines = [ (0, Attacker.default_base - 1) ] }
  in
  let engine = Factory.build spec scenario ~rng in
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg and ways = cfg.Config.ways in
  (* The cleaning game starts from the victim's data being IN the cache;
     under RF the victim's randomized fills would defeat the seeding
     itself, so seed with a demand window (the game measures cleaning,
     not filling). *)
  engine.Engine.set_window ~pid:victim_pid ~back:0 ~fwd:0;
  (* Victim seeds the target set. *)
  let seeded =
    match spec with
    | Spec.Newcache _ -> [ 0 ]
    | Spec.Sa _ | Spec.Sp _ | Spec.Pl _ | Spec.Nomo _ | Spec.Rp _ | Spec.Rf _
    | Spec.Re _ | Spec.Noisy _ ->
      List.init ways (fun k -> target_set + (k * sets))
  in
  List.iter (fun l -> ignore (engine.Engine.access ~pid:victim_pid l)) seeded;
  (match spec with
  | Spec.Pl _ ->
    List.iter (fun l -> ignore (engine.Engine.lock_line ~pid:victim_pid l)) seeded
  | _ -> ());
  (* What must be gone for the attacker to have "cleaned" the set: for
     Nomo only the victim lines that spilled into shared ways count (the
     reserved ways are untouchable by design, and the paper's success
     criterion is evicting all shared lines). *)
  let targets =
    match spec with
    | Spec.Nomo { reserved; _ } ->
      engine.Engine.dump ()
      |> List.filter_map (fun (idx, (l : Line.t)) ->
             if l.owner = victim_pid && idx mod ways >= reserved then Some l.tag
             else None)
    | _ -> seeded
  in
  (* Attacker: [accesses] distinct reads mapping to the target set. *)
  for k = 0 to accesses - 1 do
    ignore
      (engine.Engine.access ~pid:attacker_pid
         (Attacker.nth_conflict_line cfg ~set:target_set k))
  done;
  targets <> []
  && List.for_all (fun l -> not (engine.Engine.peek ~pid:victim_pid l)) targets

let count_wins spec ~accesses ~samples ~rng =
  if samples <= 0 then invalid_arg "Cleaner.monte_carlo: samples must be positive";
  let wins = ref 0 in
  for _ = 1 to samples do
    if clean_once spec ~rng:(Rng.split rng) ~accesses then incr wins
  done;
  !wins

let monte_carlo spec ~accesses ~samples ~rng =
  float_of_int (count_wins spec ~accesses ~samples ~rng) /. float_of_int samples

let sweep spec ~accesses_list ~samples ~rng =
  List.map
    (fun accesses -> (accesses, monte_carlo spec ~accesses ~samples ~rng))
    accesses_list
