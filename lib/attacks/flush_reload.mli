(** Type 4 — the flush-and-reload attack (paper Figure 7).

    The AES tables are a shared library: the attacker can name their
    lines directly. Each trial he flushes every table line, lets the
    victim encrypt a random plaintext, then reloads the target table's 16
    lines and classifies each of his own access times. A reload hit means
    the victim fetched that line; the candidate key byte whose predicted
    first-round line was hit most consistently wins. Architectures whose
    per-process tags prevent cross-context hits (Newcache, RP) produce a
    flat profile — the paper's p4 = 0. *)

type config = { trials : int; target_byte : int; victim_prefetch : bool }

val default_config : config
(** 2000 trials, byte 0, no prefetching. [victim_prefetch] applies the
    paper's cited software mitigation (preload all tables per
    operation), which blinds operation-granularity reloads. *)

type result = {
  line_hit_rate : float array;  (** reload hit frequency per target-table line *)
  scores : float array;
  best_candidate : int;
  true_byte : int;
  nibble_recovered : bool;
  separation : float;
}

val run : victim:Victim.t -> attacker_pid:int -> rng:Cachesec_stats.Rng.t -> config -> result

(** {2 Sharded execution} — see {!Evict_time} for the model. Trials are
    exchangeable (every table line is flushed per trial). *)

type partial

val merge_into : partial -> partial -> unit
(** Fold the right partial into the left in place, allocation-free —
    the campaign merge loops consume each partial exactly once, so
    mutating the running accumulator is safe. The right argument is
    unchanged. *)

val merge_partial : partial -> partial -> partial

val observe : partial -> Cachesec_stats.Sequential.observation
(** The adaptive runtime's estimator hook: a [Proportion] — the best
    candidate's reload-hit rate over the span, from the merged partial's
    existing accumulators (the zero-allocation trial loop is never
    instrumented). *)

val run_span :
  victim:Victim.t ->
  attacker_pid:int ->
  rng:Cachesec_stats.Rng.t ->
  count:int ->
  config ->
  partial

val finalize : victim:Victim.t -> config -> partial -> result
