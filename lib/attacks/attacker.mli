(** Attacker-side primitives shared by the attack implementations:
    conflict-set construction, priming and probing. The attacker's own
    memory lives at [base] (far above the victim's tables) so his lines
    are his under every ownership model.

    The priming/evicting entry points here compute conflict lines
    arithmetically and allocate nothing; hot per-trial loops that probe
    whole caches should use {!Probe_plan}, which precompiles the line
    addresses once and reuses per-set scratch buffers. *)

open Cachesec_cache

val default_base : int
(** 1 lsl 20 — a line number far from any victim data. *)

val nth_conflict_line : Config.t -> ?base:int -> set:int -> int -> int
(** [nth_conflict_line cfg ~set k] is the [k]-th distinct attacker line
    mapping (under conventional indexing) to [set]: base aligned down to
    the set stride, plus [set + k*sets]. Pure arithmetic — this is the
    element formula behind {!conflict_lines} and {!Probe_plan}. Raises
    [Invalid_argument] on a bad set. *)

val conflict_lines : Config.t -> ?base:int -> count:int -> int -> int list
[@@alert
  deprecated
    "allocates a fresh list per call; use nth_conflict_line or Probe_plan"]
(** [conflict_lines cfg ~count set] is [count] distinct attacker line
    numbers that map (under conventional indexing) to [set] — the list
    form of {!nth_conflict_line} for [k = 0 .. count-1], kept as a thin
    compatibility wrapper. *)

val evict_set : Engine.t -> pid:int -> ?base:int -> int -> unit
(** Access [ways] attacker lines mapping to [set] — the "evict" / "prime"
    step for one set. Allocation-free: the lines are computed inline. *)

val prime_all_sets : Engine.t -> pid:int -> ?base:int -> unit -> unit
(** Prime every set with [ways] attacker lines. *)

type probe = {
  true_misses : int;  (** ground truth from the simulator *)
  classified_misses : int;
      (** what the attacker concludes after classifying each noisy
          per-access time (equals [true_misses] when sigma = 0) *)
  time : float;  (** total observed probe time, noise included *)
}

val probe_set :
  Engine.t -> Cachesec_stats.Rng.t -> pid:int -> ?base:int -> int -> probe
(** Re-access the priming lines of [set]. Allocates its result record;
    per-trial loops should prefer {!Probe_plan.probe_all}. *)

val probe_all_sets :
  Engine.t -> Cachesec_stats.Rng.t -> pid:int -> ?base:int -> unit -> probe array
(** {!probe_set} for every set, indexed by set number. *)
