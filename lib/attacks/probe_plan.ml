open Cachesec_cache

type t = {
  engine : Engine.t;
  pid : int;
  sets : int;
  ways : int;
  lines : int array;  (** set-major: [lines.(set * ways + k)] *)
  true_misses : int array;  (** per-set scratch, overwritten by probes *)
  classified : int array;
  times : float array;
}

let make ?(base = Attacker.default_base) engine ~pid =
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg and ways = cfg.Config.ways in
  let lines =
    Array.init (sets * ways) (fun i ->
        Attacker.nth_conflict_line cfg ~base ~set:(i / ways) (i mod ways))
  in
  {
    engine;
    pid;
    sets;
    ways;
    lines;
    true_misses = Array.make sets 0;
    classified = Array.make sets 0;
    times = Array.make sets 0.;
  }

let sets t = t.sets
let ways t = t.ways
let line t ~set k = t.lines.((set * t.ways) + k)

let prime_set t set =
  let off = set * t.ways in
  for k = 0 to t.ways - 1 do
    ignore (t.engine.Engine.access ~pid:t.pid t.lines.(off + k))
  done

let prime_all t =
  for set = 0 to t.sets - 1 do
    prime_set t set
  done

let probe_set t rng set =
  let off = set * t.ways in
  let sigma = t.engine.Engine.sigma in
  t.true_misses.(set) <- 0;
  t.classified.(set) <- 0;
  t.times.(set) <- 0.;
  if sigma = 0. then
    (* [Timing.observe] consumes no randomness and returns the exact
       hit/miss constant at sigma = 0, and [Timing.classify] maps those
       constants back to the true event — so the classified count equals
       the true count and the time is the exact miss total (adding
       hit_time = 0. per hit is a no-op, skipped). Bit-for-bit the same
       results and the same RNG stream as the general branch, with no
       float boxing in the loop. *)
    for k = 0 to t.ways - 1 do
      let o = t.engine.Engine.access ~pid:t.pid t.lines.(off + k) in
      if Outcome.is_miss o then begin
        t.true_misses.(set) <- t.true_misses.(set) + 1;
        t.classified.(set) <- t.classified.(set) + 1;
        t.times.(set) <- t.times.(set) +. Timing.miss_time
      end
    done
  else
    for k = 0 to t.ways - 1 do
      let o = t.engine.Engine.access ~pid:t.pid t.lines.(off + k) in
      let tm = Timing.observe_outcome rng ~sigma o in
      if Outcome.is_miss o then t.true_misses.(set) <- t.true_misses.(set) + 1;
      (match Timing.classify tm with
      | Outcome.Miss -> t.classified.(set) <- t.classified.(set) + 1
      | Outcome.Hit -> ());
      t.times.(set) <- t.times.(set) +. tm
    done

let probe_all t rng =
  for set = 0 to t.sets - 1 do
    probe_set t rng set
  done

let true_misses t set = t.true_misses.(set)
let classified_misses t set = t.classified.(set)
let time t set = t.times.(set)
