open Cachesec_cache

type t = {
  engine : Engine.t;
  pid : int;
  sets : int;
  ways : int;
  lines : int array;  (** set-major: [lines.(set * ways + k)] *)
  (* Per-set probe scratch, owned by the embedded Count counter: its
     arrays ARE the plan's result buffers ([bin] = the set being
     probed). The counter and the [Count] value wrapping it are built
     once here so the trial loops allocate nothing. *)
  counter : Kernel.counter;
  count_mode : Kernel.mode;
}

let make ?(base = Attacker.default_base) engine ~pid =
  let cfg = engine.Engine.config in
  let sets = Config.sets cfg and ways = cfg.Config.ways in
  let lines =
    Array.init (sets * ways) (fun i ->
        Attacker.nth_conflict_line cfg ~base ~set:(i / ways) (i mod ways))
  in
  let counter = Kernel.make_counter ~bins:sets in
  { engine; pid; sets; ways; lines; counter; count_mode = Kernel.Count counter }

let sets t = t.sets
let ways t = t.ways
let line t ~set k = t.lines.((set * t.ways) + k)

(* Prime: one batched Fill run — outcomes discarded, engine state and
   RNG stream identical to the scalar access loop. *)
let prime_set t set =
  t.engine.Engine.access_run ~pid:t.pid ~trace:t.lines ~pos:(set * t.ways)
    ~len:t.ways Kernel.Fill

let prime_all t =
  t.engine.Engine.access_run ~pid:t.pid ~trace:t.lines ~pos:0
    ~len:(t.sets * t.ways) Kernel.Fill

(* Probe: one batched Count run per set, folding into the set's scratch
   slot. [Kernel.count_miss]/[count_hit] reproduce the scalar branch
   exactly: at sigma = 0 no randomness is consumed, classified = true
   misses and the time sum is the exact miss total; at sigma > 0 one
   gaussian per access in access order — the same stream the scalar
   [Timing.observe_outcome] loop consumed. *)
let probe_set t rng set =
  let c = t.counter in
  c.Kernel.true_misses.(set) <- 0;
  c.Kernel.classified.(set) <- 0;
  c.Kernel.times.(set) <- 0.;
  c.Kernel.bin <- set;
  c.Kernel.sigma <- t.engine.Engine.sigma;
  c.Kernel.noise <- rng;
  t.engine.Engine.access_run ~pid:t.pid ~trace:t.lines ~pos:(set * t.ways)
    ~len:t.ways t.count_mode

let probe_all t rng =
  for set = 0 to t.sets - 1 do
    probe_set t rng set
  done

let true_misses t set = t.counter.Kernel.true_misses.(set)
let classified_misses t set = t.counter.Kernel.classified.(set)
let time t set = t.counter.Kernel.times.(set)
