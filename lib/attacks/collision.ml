open Cachesec_cache
open Cachesec_crypto
open Cachesec_stats

type config = {
  trials : int;
  byte_i : int;
  byte_j : int;
  victim_prefetch : bool;
}

let default_config =
  { trials = 20000; byte_i = 0; byte_j = 4; victim_prefetch = false }

type result = {
  avg_times : float array;
  counts : int array;
  scores : float array;
  best_delta : int;
  true_delta : int;
  nibble_recovered : bool;
  separation : float;
}

let validate c =
  if c.trials <= 0 then invalid_arg "Collision.run: trials must be positive";
  if c.byte_i < 0 || c.byte_i > 15 || c.byte_j < 0 || c.byte_j > 15 then
    invalid_arg "Collision.run: byte indices must be in 0..15";
  if c.byte_i = c.byte_j then invalid_arg "Collision.run: bytes must differ";
  if c.byte_i mod 4 <> c.byte_j mod 4 then
    invalid_arg "Collision.run: bytes must share a table (equal mod 4)"

(* --- partial (mergeable) trial accumulators -------------------------- *)

(* [times] is a Welford summary of every observed whole-block time —
   the adaptive runtime's stopping estimator ([observe]). It never feeds
   [finalize], so results (and the golden digests over them) are
   unchanged. *)
type partial = { sums : float array; counts : int array; times : Summary.t }

let empty_partial () =
  { sums = Array.make 256 0.; counts = Array.make 256 0; times = Summary.create () }

(* In-place fold — see [Prime_probe.merge_into] for the single-consumer
   argument that makes mutating the accumulator safe. *)
let merge_into a b =
  for i = 0 to 255 do
    a.sums.(i) <- a.sums.(i) +. b.sums.(i);
    a.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  Summary.merge_into a.times b.times

(* Pure compatibility wrapper: copy, then fold. *)
let merge_partial a b =
  let acc =
    {
      sums = Array.copy a.sums;
      counts = Array.copy a.counts;
      times = Summary.copy a.times;
    }
  in
  merge_into acc b;
  acc

let observe p = Sequential.Mean_rel p.times

let run_span ~victim ~rng ~count c =
  validate { c with trials = count };
  let engine = Victim.engine victim in
  let ({ sums; counts; times } as part) = empty_partial () in
  let p = Bytes.create 16 in
  for _ = 1 to count do
    engine.Engine.flush_all ();
    (* The software mitigation of [34]/[16]: the victim preloads its
       tables at the start of the security-critical operation, so reuse
       no longer depends on the secret indices. *)
    if c.victim_prefetch then Victim.warm_tables victim;
    Victim.random_plaintext_into rng p;
    let m = Victim.encrypt_misses victim p in
    let time = Timing.time_of_counts ~hits:(Aes.trace_length - m) ~misses:m in
    let observed =
      if engine.Engine.sigma = 0. then time
      else time +. Rng.gaussian rng ~mu:0. ~sigma:engine.Engine.sigma
    in
    let delta =
      Char.code (Bytes.get p c.byte_i) lxor Char.code (Bytes.get p c.byte_j)
    in
    sums.(delta) <- sums.(delta) +. observed;
    counts.(delta) <- counts.(delta) + 1;
    Summary.add times observed
  done;
  part

let finalize ~victim c { sums; counts; _ } =
  let grand_mean =
    Array.fold_left ( +. ) 0. sums /. float_of_int (Array.fold_left ( + ) 0 counts)
  in
  let avg_times =
    Array.init 256 (fun d ->
        if counts.(d) = 0 then grand_mean else sums.(d) /. float_of_int counts.(d))
  in
  (* Faster is likelier: negate so that higher score = better candidate. *)
  let scores = Recovery.normalize (Array.map (fun t -> -.t) avg_times) in
  let key = Aes.key_bytes (Victim.key victim) in
  let true_delta =
    Char.code (Bytes.get key c.byte_i) lxor Char.code (Bytes.get key c.byte_j)
  in
  let best_delta = Recovery.argmax scores in
  let epl = Aes_layout.entries_per_line (Victim.layout victim) in
  {
    avg_times;
    counts;
    scores;
    best_delta;
    true_delta;
    nibble_recovered =
      Recovery.nibble_recovered ~scores ~true_byte:true_delta ~group_size:epl;
    separation = Recovery.separation scores ~winner:best_delta;
  }

let run ~victim ~rng c =
  validate c;
  finalize ~victim c (run_span ~victim ~rng ~count:c.trials c)
