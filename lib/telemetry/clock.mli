(** Monotonic time source (CLOCK_MONOTONIC via a C stub).

    [Unix.gettimeofday] is wall-clock time and moves when NTP steps the
    host clock; a step in the middle of a benchmark section skews the
    measured wall-clock and can flip a perf-gate verdict. Everything in
    this codebase that measures a {e duration} — telemetry event
    timestamps, [Scheduler.timed], the [Throughput] stopwatches, the
    domain pool's busy accounting — uses this module instead. *)

val monotonic_ns : unit -> int64
(** Nanoseconds since an unspecified (boot-time) origin. Only
    differences are meaningful. *)

val now_s : unit -> float
(** {!monotonic_ns} in seconds. *)

val elapsed_s : since:float -> float
(** [now_s () -. since]. *)
