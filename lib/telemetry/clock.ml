(* Monotonic time source. See clock_stubs.c for why this exists: every
   duration in the codebase (telemetry event times, bench stopwatches,
   pool busy accounting) must be measured against a clock that NTP
   cannot step, or wall-clock regressions/gate verdicts can be skewed by
   the host adjusting its realtime clock mid-run. *)

external monotonic_ns : unit -> int64 = "cachesec_clock_monotonic_ns"

(* Nanoseconds-to-seconds conversion keeps full double precision for
   realistic process lifetimes: 2^53 ns is ~104 days. *)
let now_s () = Int64.to_float (monotonic_ns ()) /. 1e9
let elapsed_s ~since = now_s () -. since
