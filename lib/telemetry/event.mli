(** Telemetry events — the vocabulary every sink consumes.

    All [t_s]/[dur_s]/[busy_s] fields are seconds relative to the owning
    {!Telemetry.t}'s creation instant, so exports are host-epoch
    independent. Span and batch events reference spans by integer id
    ([0] = no parent / root). *)

type t =
  | Span_start of { id : int; parent : int; name : string; t_s : float }
  | Span_end of {
      id : int;
      parent : int;
      name : string;
      t_s : float;
      dur_s : float;
    }
  | Batch_start of {
      span : int;
      index : int;  (** work-unit index in the scheduler's index space *)
      total : int;  (** size of that index space *)
      domain : int;  (** worker (domain) slot that claimed the unit *)
      t_s : float;
    }
  | Batch_end of {
      span : int;
      index : int;
      total : int;
      domain : int;
      t_s : float;
      dur_s : float;
    }
  | Domain_busy of { span : int; domain : int; busy_s : float; units : int }
      (** per-worker utilisation: wall-clock spent inside work units and
          how many units the worker claimed (emitted at join) *)
  | Gauge of { span : int; name : string; value : float; t_s : float }
  | Counter_total of { name : string; value : int }
      (** merged value of a named counter (emitted at context close) *)

val to_json_line : t -> string
(** One JSON object, no trailing newline, fixed key order per event
    kind — the [telemetry/v1] line format. *)

val of_json_line : string -> t option
(** Inverse of {!to_json_line} (tolerates a trailing comma and
    surrounding whitespace); [None] for non-event lines. *)
