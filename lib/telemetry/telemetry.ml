(* Telemetry context: spans, counters, gauges.

   Cost model: the null context is a constant constructor, so every
   operation on it is a single match with no allocation — the default
   for all library entry points, guarded by the zero-alloc tests. An
   active context pays one mutex acquisition per *event* (batch
   boundaries, span edges), never per simulated cache access.

   Counter discipline mirrors the trial runtime's merge discipline:
   increments go to a per-domain (lock-free, unsynchronized) table owned
   by the incrementing domain; tables are registered once via an atomic
   cons and merged by name-summation at read time, after the scheduler
   has joined its workers. Because each batch's increments are a pure
   function of the batch (never of the worker that ran it), merged
   totals are identical for jobs:1 and jobs:N — timings are the only
   thing parallelism may change. *)

type span = { id : int; parent : int; name : string; start_s : float }

let null_span = { id = 0; parent = 0; name = ""; start_s = 0. }

type active = {
  sink : Sink.t;
  lock : Mutex.t;
  next_id : int Atomic.t;  (* span ids start at 1; 0 = root/none *)
  locals : (int * (string, int ref) Hashtbl.t) list Atomic.t;
  epoch : float;  (* wall-clock origin; event times are relative *)
  closed : bool Atomic.t;
}

type t = Null | Active of active

let null = Null
let is_null = function Null -> true | Active _ -> false

let make ~sink () =
  Active
    {
      sink;
      lock = Mutex.create ();
      next_id = Atomic.make 1;
      locals = Atomic.make [];
      epoch = Clock.now_s ();
      closed = Atomic.make false;
    }

(* Relative clock, backed by {!Clock} (CLOCK_MONOTONIC): event times
   cannot be skewed by NTP stepping the host's realtime clock mid-run.
   The [Float.max 0.] clamps at the duration use sites are kept as
   belt-and-braces. *)
let now_s = function
  | Null -> 0.
  | Active a -> Clock.now_s () -. a.epoch

let emit t e =
  match t with
  | Null -> ()
  | Active a ->
    Mutex.lock a.lock;
    (try a.sink.Sink.emit e
     with exn ->
       Mutex.unlock a.lock;
       raise exn);
    Mutex.unlock a.lock

(* --- spans ----------------------------------------------------------- *)

let span_id (s : span) = s.id

let span t ?(parent = null_span) name =
  match t with
  | Null -> null_span
  | Active a ->
    let id = Atomic.fetch_and_add a.next_id 1 in
    let start_s = now_s t in
    let s = { id; parent = parent.id; name; start_s } in
    emit t (Event.Span_start { id; parent = parent.id; name; t_s = start_s });
    s

let close_span t (s : span) =
  match t with
  | Null -> ()
  | Active _ ->
    if s.id <> 0 then begin
      let t_s = now_s t in
      emit t
        (Event.Span_end
           {
             id = s.id;
             parent = s.parent;
             name = s.name;
             t_s;
             dur_s = Float.max 0. (t_s -. s.start_s);
           })
    end

let with_span t ?parent name f =
  match t with
  | Null -> f null_span
  | Active _ ->
    let s = span t ?parent name in
    (match f s with
    | v ->
      close_span t s;
      v
    | exception exn ->
      close_span t s;
      raise exn)

(* --- counters (lock-free per-domain, merged at read) ------------------ *)

let local_table (a : active) =
  let me = (Domain.self () :> int) in
  let rec find = function
    | (d, tbl) :: _ when d = me -> Some tbl
    | _ :: rest -> find rest
    | [] -> None
  in
  match find (Atomic.get a.locals) with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    let rec push () =
      let cur = Atomic.get a.locals in
      if not (Atomic.compare_and_set a.locals cur ((me, tbl) :: cur)) then
        push ()
    in
    push ();
    tbl

let count t name v =
  match t with
  | Null -> ()
  | Active a -> (
    let tbl = local_table a in
    match Hashtbl.find tbl name with
    | r -> r := !r + v
    | exception Not_found -> Hashtbl.replace tbl name (ref v))

let counters t =
  match t with
  | Null -> []
  | Active a ->
    let merged = Hashtbl.create 32 in
    List.iter
      (fun (_, tbl) ->
        Hashtbl.iter
          (fun name r ->
            match Hashtbl.find_opt merged name with
            | Some total -> Hashtbl.replace merged name (total + !r)
            | None -> Hashtbl.replace merged name !r)
          tbl)
      (Atomic.get a.locals);
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged []
    |> List.sort compare

(* --- gauges and scheduler events -------------------------------------- *)

let gauge t ?(span = null_span) name value =
  match t with
  | Null -> ()
  | Active _ ->
    emit t (Event.Gauge { span = span.id; name; value; t_s = now_s t })

let batch_start t ~span:(s : span) ~index ~total ~domain ~t_s =
  match t with
  | Null -> ()
  | Active _ ->
    emit t (Event.Batch_start { span = s.id; index; total; domain; t_s })

let batch_end t ~span:(s : span) ~index ~total ~domain ~start_s =
  match t with
  | Null -> ()
  | Active _ ->
    let t_s = now_s t in
    emit t
      (Event.Batch_end
         {
           span = s.id;
           index;
           total;
           domain;
           t_s;
           dur_s = Float.max 0. (t_s -. start_s);
         })

let domain_busy t ~span:(s : span) ~domain ~busy_s ~units =
  match t with
  | Null -> ()
  | Active _ ->
    emit t (Event.Domain_busy { span = s.id; domain; busy_s; units })

(* --- close ------------------------------------------------------------ *)

let close t =
  match t with
  | Null -> ()
  | Active a ->
    if Atomic.compare_and_set a.closed false true then begin
      List.iter
        (fun (name, value) -> emit t (Event.Counter_total { name; value }))
        (counters t);
      Mutex.lock a.lock;
      (try a.sink.Sink.close ()
       with exn ->
         Mutex.unlock a.lock;
         raise exn);
      Mutex.unlock a.lock
    end
