(** Pluggable telemetry sinks.

    A sink receives every {!Event.t} the owning {!Telemetry.t} emits and
    is closed exactly once at context close. Sinks need not be
    thread-safe: the context serializes [emit]/[close] behind a mutex
    (events fire at batch boundaries only, never on the simulator's
    per-access hot path). *)

type t = { emit : Event.t -> unit; close : unit -> unit }

val null : t
(** Drops everything. Prefer {!Telemetry.null} (the whole context) when
    you want the zero-cost off switch: a null [Telemetry.t] never even
    constructs events. *)

val tee : t list -> t
(** Fan every event out to each sink, close them all in order. *)

val memory : unit -> t * (unit -> Event.t list)
(** In-memory sink for tests: the second component returns the events
    emitted so far, in emission order. *)

val progress : ?out:out_channel -> unit -> t
(** Human-readable progress on [out] (default [stderr]): span open/close
    lines indented by nesting depth, ≤ ~9 batch-progress lines per span,
    per-domain busy summaries, gauges and final counter totals. *)

val schema_version : string
(** ["telemetry/v1"]. *)

val default_json_path : run:string -> string
(** ["results/TELEMETRY_<run>.json"] — the conventional export path. *)

val json : ?run:string -> path:string -> unit -> t
(** Machine-readable sink: buffers events and, at close, writes a
    [telemetry/v1] document to [path] (creating parent directories):
    a JSON object with ["schema"], ["run"] and an ["events"] array
    holding one fixed-key-order object per line ({!Event.to_json_line}),
    so the file round-trips through {!read_json} without a JSON
    dependency. *)

val read_json : path:string -> (string * string * Event.t list) option
(** Parse a {!json}-produced file: [(schema, run, events)]. [None] if
    the file is absent or has no schema line. *)
