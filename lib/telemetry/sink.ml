(* Pluggable telemetry sinks.

   A sink is a plain record of functions. Sinks need not be
   thread-safe: the owning [Telemetry.t] serializes every [emit]/[close]
   behind its own mutex (events are emitted at batch boundaries only, so
   the lock is uncontended in practice). *)

type t = { emit : Event.t -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let memory () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); close = ignore },
    fun () -> List.rev !events )

(* --- human-readable progress sink ----------------------------------- *)

let progress ?(out = stderr) () =
  (* span id -> (name, depth); id 0 is the implicit root at depth -1. *)
  let spans = Hashtbl.create 32 in
  let depth_of id =
    match Hashtbl.find_opt spans id with Some (_, d) -> d | None -> -1
  in
  let name_of id =
    match Hashtbl.find_opt spans id with Some (n, _) -> n | None -> "?"
  in
  let indent d = String.make (2 * max 0 d) ' ' in
  let emit (e : Event.t) =
    match e with
    | Event.Span_start { id; parent; name; t_s = _ } ->
      let d = depth_of parent + 1 in
      Hashtbl.replace spans id (name, d);
      Printf.fprintf out "%s-> %s\n%!" (indent d) name
    | Event.Span_end { id; name; dur_s; _ } ->
      let d = depth_of id in
      Printf.fprintf out "%s<- %s  %.2fs\n%!" (indent d) name dur_s
    | Event.Batch_start _ -> ()
    | Event.Batch_end { span; index; total; domain; dur_s; _ } ->
      (* At most ~8 progress lines per span, plus the final one. *)
      let stride = max 1 (total / 8) in
      if (index + 1) mod stride = 0 || index + 1 = total then
        Printf.fprintf out "%s   [%s] %d/%d  (%.3fs on domain %d)\n%!"
          (indent (depth_of span))
          (name_of span) (index + 1) total dur_s domain
    | Event.Domain_busy { span; domain; busy_s; units } ->
      Printf.fprintf out "%s   [%s] domain %d: busy %.2fs over %d units\n%!"
        (indent (depth_of span))
        (name_of span) domain busy_s units
    | Event.Gauge { span; name; value; _ } ->
      Printf.fprintf out "%s   [%s] %s = %g\n%!"
        (indent (depth_of span))
        (name_of span) name value
    | Event.Counter_total { name; value } ->
      Printf.fprintf out "   counter %s = %d\n%!" name value
  in
  { emit; close = (fun () -> Printf.fprintf out "%!") }

(* --- machine-readable JSON sink (telemetry/v1) ----------------------- *)

let schema_version = "telemetry/v1"

let default_json_path ~run =
  Printf.sprintf "results/TELEMETRY_%s.json" run

let mkdir_p path =
  let rec build prefix = function
    | [] -> ()
    | seg :: rest ->
      let dir = if prefix = "" then seg else prefix ^ "/" ^ seg in
      if dir <> "" && dir <> "." then (
        try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      build dir rest
  in
  match String.split_on_char '/' path with
  | [] | [ _ ] -> () (* bare filename: nothing to create *)
  | segs ->
    (* all but the last segment form the directory chain *)
    build "" (List.filteri (fun i _ -> i < List.length segs - 1) segs)

let json ?(run = "run") ~path () =
  let events = ref [] in
  let n = ref 0 in
  let emit e =
    events := e :: !events;
    incr n
  in
  let close () =
    mkdir_p path;
    let oc = open_out path in
    output_string oc "{\n";
    Printf.fprintf oc "  \"schema\": %S,\n" schema_version;
    Printf.fprintf oc "  \"run\": %S,\n" run;
    output_string oc "  \"events\": [\n";
    let total = !n in
    List.iteri
      (fun i e ->
        output_string oc "    ";
        output_string oc (Event.to_json_line e);
        if i < total - 1 then output_char oc ',';
        output_char oc '\n')
      (List.rev !events);
    output_string oc "  ]\n}\n";
    close_out oc
  in
  { emit; close }

(* Reads a file produced by the [json] sink: (schema, run, events).
   [None] when the file is absent or carries no schema line. *)
let read_json ~path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let schema = ref None in
    let run = ref "" in
    let events = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         (try
            Scanf.sscanf line "\"schema\": %S" (fun s -> schema := Some s)
          with _ -> ());
         (try Scanf.sscanf line "\"run\": %S" (fun r -> run := r)
          with _ -> ());
         match Event.of_json_line line with
         | Some e -> events := e :: !events
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    (match !schema with
    | None -> None
    | Some s -> Some (s, !run, List.rev !events))
