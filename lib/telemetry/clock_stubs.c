/* Monotonic clock for telemetry timestamps and bench stopwatches.
 *
 * Unix.gettimeofday is wall-clock time: an NTP step (or a sysadmin's
 * `date -s`) in the middle of a benchmark section moves the stopwatch,
 * which can flip a perf-gate verdict. CLOCK_MONOTONIC is immune to
 * clock steps (and, on Linux, to slews of the realtime clock), so every
 * duration measured in this codebase goes through this stub.
 *
 * The value returned is nanoseconds since an unspecified origin; only
 * differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value cachesec_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
