(* Telemetry events: the wire format shared by every sink.

   Times are seconds relative to the owning context's creation
   ([Telemetry.make]), so the JSON export is small, diffable and
   independent of the host's wall-clock epoch.

   The JSON line codec mirrors Throughput's discipline: one object per
   line with a fixed key order, so the file is parseable with [Scanf]
   alone and the library needs no JSON dependency. *)

type t =
  | Span_start of { id : int; parent : int; name : string; t_s : float }
  | Span_end of {
      id : int;
      parent : int;
      name : string;
      t_s : float;
      dur_s : float;
    }
  | Batch_start of {
      span : int;
      index : int;
      total : int;
      domain : int;
      t_s : float;
    }
  | Batch_end of {
      span : int;
      index : int;
      total : int;
      domain : int;
      t_s : float;
      dur_s : float;
    }
  | Domain_busy of { span : int; domain : int; busy_s : float; units : int }
  | Gauge of { span : int; name : string; value : float; t_s : float }
  | Counter_total of { name : string; value : int }

let to_json_line = function
  | Span_start { id; parent; name; t_s } ->
    Printf.sprintf
      "{\"ev\": \"span_start\", \"id\": %d, \"parent\": %d, \"name\": %S, \
       \"t\": %.6f}"
      id parent name t_s
  | Span_end { id; parent; name; t_s; dur_s } ->
    Printf.sprintf
      "{\"ev\": \"span_end\", \"id\": %d, \"parent\": %d, \"name\": %S, \
       \"t\": %.6f, \"dur\": %.6f}"
      id parent name t_s dur_s
  | Batch_start { span; index; total; domain; t_s } ->
    Printf.sprintf
      "{\"ev\": \"batch_start\", \"span\": %d, \"index\": %d, \"total\": %d, \
       \"domain\": %d, \"t\": %.6f}"
      span index total domain t_s
  | Batch_end { span; index; total; domain; t_s; dur_s } ->
    Printf.sprintf
      "{\"ev\": \"batch_end\", \"span\": %d, \"index\": %d, \"total\": %d, \
       \"domain\": %d, \"t\": %.6f, \"dur\": %.6f}"
      span index total domain t_s dur_s
  | Domain_busy { span; domain; busy_s; units } ->
    Printf.sprintf
      "{\"ev\": \"domain_busy\", \"span\": %d, \"domain\": %d, \"busy\": \
       %.6f, \"units\": %d}"
      span domain busy_s units
  | Gauge { span; name; value; t_s } ->
    Printf.sprintf
      "{\"ev\": \"gauge\", \"span\": %d, \"name\": %S, \"value\": %.6f, \
       \"t\": %.6f}"
      span name value t_s
  | Counter_total { name; value } ->
    Printf.sprintf "{\"ev\": \"counter\", \"name\": %S, \"value\": %d}" name
      value

(* Parse a line produced by [to_json_line]. Returns [None] on anything
   else (other JSON lines, structural braces), so a reader can fold it
   over a whole file. *)
let of_json_line line =
  let line = String.trim line in
  let line =
    if String.length line > 0 && line.[String.length line - 1] = ',' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  let tag =
    try Some (Scanf.sscanf line "{\"ev\": %S" (fun ev -> ev)) with
    | Scanf.Scan_failure _ | End_of_file | Failure _ -> None
  in
  let parse fmt k = try Some (Scanf.sscanf line fmt k) with _ -> None in
  match tag with
  | Some "span_start" ->
    parse "{\"ev\": %S, \"id\": %d, \"parent\": %d, \"name\": %S, \"t\": %f}"
      (fun _ id parent name t_s -> Span_start { id; parent; name; t_s })
  | Some "span_end" ->
    parse
      "{\"ev\": %S, \"id\": %d, \"parent\": %d, \"name\": %S, \"t\": %f, \
       \"dur\": %f}" (fun _ id parent name t_s dur_s ->
        Span_end { id; parent; name; t_s; dur_s })
  | Some "batch_start" ->
    parse
      "{\"ev\": %S, \"span\": %d, \"index\": %d, \"total\": %d, \"domain\": \
       %d, \"t\": %f}" (fun _ span index total domain t_s ->
        Batch_start { span; index; total; domain; t_s })
  | Some "batch_end" ->
    parse
      "{\"ev\": %S, \"span\": %d, \"index\": %d, \"total\": %d, \"domain\": \
       %d, \"t\": %f, \"dur\": %f}" (fun _ span index total domain t_s dur_s ->
        Batch_end { span; index; total; domain; t_s; dur_s })
  | Some "domain_busy" ->
    parse "{\"ev\": %S, \"span\": %d, \"domain\": %d, \"busy\": %f, \"units\": %d}"
      (fun _ span domain busy_s units ->
        Domain_busy { span; domain; busy_s; units })
  | Some "gauge" ->
    parse "{\"ev\": %S, \"span\": %d, \"name\": %S, \"value\": %f, \"t\": %f}"
      (fun _ span name value t_s -> Gauge { span; name; value; t_s })
  | Some "counter" ->
    parse "{\"ev\": %S, \"name\": %S, \"value\": %d}" (fun _ name value ->
        Counter_total { name; value })
  | Some _ | None -> None
