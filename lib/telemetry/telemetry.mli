(** Telemetry context: monotonic spans, merged counters, gauges.

    The context is the single handle the rest of the system threads
    around (via [Run.ctx]). Its cost model is the design:

    - {!null} is a constant: every operation on it is one pattern match,
      zero allocation — safe to leave on the simulator's hot path and
      guarded by the zero-alloc tests.
    - An active context pays one mutex acquisition per {e event} (span
      edges, batch boundaries), never per simulated cache access.

    Counters follow the trial runtime's merge discipline: each domain
    accumulates into its own unsynchronized table (registered once via a
    lock-free atomic cons), and {!counters} merges by name-summation
    after the scheduler has joined its workers. Batch increments are
    pure functions of the batch, so merged totals are bit-identical for
    [jobs:1] and [jobs:N]; only timings vary. *)

type span
(** A started span. Value-compare by {!span_id}. *)

type t

val null : t
(** The zero-cost default: emits nothing, allocates nothing. *)

val is_null : t -> bool

val make : sink:Sink.t -> unit -> t
(** Active context writing to [sink]. Event times are seconds relative
    to this call. *)

val now_s : t -> float
(** Seconds since {!make} ([0.] on {!null}). *)

val null_span : span
(** Span id [0]: "no parent". The default parent everywhere. *)

val span : t -> ?parent:span -> string -> span
(** Open a span (emits [Span_start]). On {!null} returns {!null_span}. *)

val close_span : t -> span -> unit
(** Emit [Span_end] with the span's duration. No-op on {!null} and on
    {!null_span}. *)

val with_span : t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** [span] / [close_span] bracket; closes on exception too. *)

val span_id : span -> int
(** Unique id ([>= 1]; [0] for {!null_span}) — the cross-reference key
    written into e.g. [BENCH_cache.json]. *)

val emit : t -> Event.t -> unit
(** Thread-safe raw emission (serialized behind the context mutex). *)

val count : t -> string -> int -> unit
(** Add to a named counter in the calling domain's local table.
    Lock-free; safe from scheduler workers. *)

val counters : t -> (string * int) list
(** Merged counter totals, sorted by name. Call after workers joined. *)

val gauge : t -> ?span:span -> string -> float -> unit
(** Emit a point-in-time sampled value attributed to [span]. *)

val batch_start :
  t -> span:span -> index:int -> total:int -> domain:int -> t_s:float -> unit

val batch_end :
  t -> span:span -> index:int -> total:int -> domain:int -> start_s:float ->
  unit

val domain_busy :
  t -> span:span -> domain:int -> busy_s:float -> units:int -> unit

val close : t -> unit
(** Emit merged counter totals, then close the sink. Idempotent. *)
