(** Persistent, process-global Domain pool.

    Spawned once per process and lazily sized to the largest worker
    count ever requested ({!ensure}); every layer of the system —
    scheduler shards, pipelined campaigns, report builders — dispatches
    its tasks into the one shared FIFO queue. Workers park on a
    condition variable between campaigns (no CPU cost), so the pool
    replaces the per-campaign [Domain.spawn]/[Domain.join] cycle the
    scheduler used to pay, and lets independent campaigns' shards
    overlap instead of idling at each campaign's join barrier.

    This module is the {e only} place in the codebase allowed to call
    [Domain.spawn].

    Determinism: the pool schedules opaque thunks; ordering between
    tasks is never semantics. Callers must make each task a pure
    function of its own inputs (in this codebase: RNG derived from
    [(seed, index)], results into per-index slots, merges at await time
    in index order) — then results are bit-identical for any worker
    count, including zero ([{!submit}] degrades to eager inline
    execution when the pool was never started, keeping serial paths
    byte-identical to a pool-less world). *)

type 'a future
(** Handle to a submitted task's eventual result. *)

val ensure : workers:int -> unit
(** Grow the pool to at least [workers] Domains (never shrinks; capped
    at 126 to respect OCaml 5's 128-domain limit). The first spawn
    registers an [at_exit] {!shutdown}. Raises [Invalid_argument] after
    {!shutdown}. *)

val workers : unit -> int
(** Current worker count ([0] until the first {!ensure}). *)

val submit : (unit -> 'a) -> 'a future
(** Enqueue a task. With zero workers the task runs eagerly inline in
    the caller. Exceptions raised by the task are captured (with
    backtrace) into the future and re-raised by {!await}. *)

val try_submit : max_pending:int -> (unit -> 'a) -> 'a future option
(** Bounded {!submit}: enqueue only while fewer than [max_pending]
    tasks are queued (waiting for a worker; running tasks don't count),
    else [None]. Check and push are atomic, so concurrent admitters
    never jointly overshoot the bound. [max_pending = 0] refuses
    everything. With zero workers the queue is always empty, so any
    positive bound admits and the task runs eagerly inline like
    {!submit}. This is the admission point for callers that must
    reply "overloaded" rather than buffer without limit — the PAS
    query server's backpressure path. *)

val queued_tasks : unit -> int
(** Tasks currently queued (not yet claimed by a worker). The queue
    depth behind {!try_submit}'s bound; exported as the server's
    [serve.queue_depth] gauge. *)

val await : 'a future -> 'a
(** Block until the task completed; return its value or re-raise its
    exception with the original backtrace. Must be called from outside
    the pool (orchestration lives in the main domain; pooled tasks are
    leaves) — awaiting from a pool worker raises [Invalid_argument]
    rather than risking deadlock. *)

val poll : 'a future -> 'a option
(** Non-blocking {!await}: [None] while the task is pending, its value
    once done, or re-raises its captured exception (with backtrace) if
    it failed. Safe from any domain, including pool workers — it takes
    the pool lock only for the instant of the state read (so a polling
    loop in another domain is guaranteed to eventually observe
    completion; a plain racy read would carry no such guarantee under
    the OCaml memory model) and never waits on a condition, so the
    worker-deadlock guard of {!await} is unnecessary. Like {!await},
    polling a failed future re-raises the same exception on every
    call, so any number of joined observers see the same outcome. *)

val busy_seconds : unit -> float
(** Cumulative seconds all workers have spent executing tasks (i.e. not
    parked), measured on the monotonic clock. Sampled by
    [Scheduler.timed] to derive the [pool.utilization] telemetry gauge:
    [delta busy / (workers * wall)]. *)

val worker_busy_seconds : unit -> float array
(** Per-worker cumulative busy seconds (index = worker slot). *)

val quiesce : unit -> unit
(** Drain the queue, join every worker, and return the pool to its
    zero-worker state — a later {!ensure} respawns. Use before a
    single-domain timed measurement: on OCaml 5 every minor collection
    is a stop-the-world handshake across all live domains, so even
    parked workers tax a serial hot loop; quiescing makes the process
    genuinely single-domain, matching the world throughput baselines
    were recorded in. Cumulative {!busy_seconds} survive the cycle.
    No-op with zero workers. *)

val shutdown : unit -> unit
(** Drain the queue, wake and join every worker, permanently ({!ensure}
    afterwards raises). Runs automatically via [at_exit]; safe to call
    more than once. *)
