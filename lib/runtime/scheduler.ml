(* Work-stealing-free static execution of independent trial instances.

   Parallelism model: the instance index space [0, n) is the unit of
   scheduling. Workers (OCaml 5 Domains) pull the next index from an
   atomic counter and write the result into its slot of a pre-sized
   results array. Because instance [i]'s RNG is derived purely from
   [(seed_base, i)] (see {!Trial}), the contents of the results array do
   not depend on which worker ran which index or in what order — only
   the wall-clock does. All merging therefore happens after the join, in
   index order, which makes [jobs:1] and [jobs:n] bit-identical.

   Telemetry: when handed an active [Telemetry.t], the scheduler emits
   batch-start/batch-end events per claimed index and one per-domain
   busy-time event per worker at join — all at batch boundaries, never
   inside a trial body. With the default null context the execution path
   is byte-for-byte the uninstrumented one (no clock reads, no
   allocation), which is what keeps the zero-alloc and throughput gates
   honest. *)

open Cachesec_telemetry

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  match jobs with
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j < 0 ->
    invalid_arg "Scheduler.run: jobs must be non-negative (0 = auto)"
  | Some j -> j

(* Uninstrumented core: exactly the pre-telemetry execution. *)
let parallel_init_plain ~jobs n f =
  if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f i with
          | v -> slots.(i) <- Some v
          | exception e ->
            (* Keep the first failure; losers of the race are dropped. *)
            ignore
              (Atomic.compare_and_set failure None
                 (Some (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index < n was claimed and ran *))
      slots
  end

(* Instrumented core: same claiming logic, plus per-index batch events
   and a per-worker busy-time summary. Worker [k]'s identity is its slot
   index (0 = the caller's domain), not the runtime domain id, so event
   streams are comparable across runs. *)
let parallel_init_instrumented ~tm ~span ~jobs n f =
  let run_unit ~domain i =
    let t0 = Telemetry.now_s tm in
    Telemetry.batch_start tm ~span ~index:i ~total:n ~domain ~t_s:t0;
    let v = f i in
    Telemetry.batch_end tm ~span ~index:i ~total:n ~domain ~start_s:t0;
    (v, Telemetry.now_s tm -. t0)
  in
  if jobs <= 1 || n = 1 then begin
    let busy = ref 0. in
    let r =
      Array.init n (fun i ->
          let v, dt = run_unit ~domain:0 i in
          busy := !busy +. dt;
          v)
    in
    Telemetry.domain_busy tm ~span ~domain:0 ~busy_s:!busy ~units:n;
    r
  end
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker k () =
      let busy = ref 0. in
      let units = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match run_unit ~domain:k i with
          | v, dt ->
            slots.(i) <- Some v;
            busy := !busy +. dt;
            incr units
          | exception e ->
            ignore
              (Atomic.compare_and_set failure None
                 (Some (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ();
      Telemetry.domain_busy tm ~span ~domain:k ~busy_s:!busy ~units:!units
    in
    let domains =
      Array.init (min jobs n - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function Some v -> v | None -> assert false)
      slots
  end

let parallel_init ?(tm = Telemetry.null) ?(span = Telemetry.null_span) ~jobs n
    f =
  if n < 0 then invalid_arg "Scheduler: negative instance count";
  if n = 0 then [||]
  else if Telemetry.is_null tm then parallel_init_plain ~jobs n f
  else parallel_init_instrumented ~tm ~span ~jobs n f

let run ?jobs ?tm ?span trial ~instances =
  let jobs = resolve_jobs jobs in
  parallel_init ?tm ?span ~jobs instances (fun i -> Trial.run_instance trial i)

let run_reduce ?jobs ?tm ?span ~merge trial ~instances =
  match run ?jobs ?tm ?span trial ~instances with
  | [||] -> invalid_arg "Scheduler.run_reduce: zero instances"
  | results ->
    let acc = ref results.(0) in
    for i = 1 to Array.length results - 1 do
      acc := merge !acc results.(i)
    done;
    !acc

let map_array ?jobs ?tm ?span f xs =
  let jobs = resolve_jobs jobs in
  parallel_init ?tm ?span ~jobs (Array.length xs) (fun i -> f xs.(i))

let map_list ?jobs ?tm ?span f xs =
  Array.to_list (map_array ?jobs ?tm ?span f (Array.of_list xs))

(* --- batch planning -------------------------------------------------- *)

type batch = { index : int; first : int; count : int }

let plan ~total ~batch_size =
  if total < 0 then invalid_arg "Scheduler.plan: negative total";
  if batch_size <= 0 then invalid_arg "Scheduler.plan: batch_size must be positive";
  let n = (total + batch_size - 1) / batch_size in
  Array.init n (fun i ->
      let first = i * batch_size in
      { index = i; first; count = min batch_size (total - first) })

type timed = { wall_s : float; jobs : int; span_id : int }

let timed ?jobs ?(tm = Telemetry.null) ?(name = "timed") f =
  let j = resolve_jobs jobs in
  let sp = Telemetry.span tm name in
  let t0 = Unix.gettimeofday () in
  match f () with
  | v ->
    let wall_s = Unix.gettimeofday () -. t0 in
    Telemetry.close_span tm sp;
    (v, { wall_s; jobs = j; span_id = Telemetry.span_id sp })
  | exception e ->
    Telemetry.close_span tm sp;
    raise e
