(* Work-stealing-free static execution of independent trial instances.

   Parallelism model: the instance index space [0, n) is the unit of
   scheduling. Workers (OCaml 5 Domains) pull the next index from an
   atomic counter and write the result into its slot of a pre-sized
   results array. Because instance [i]'s RNG is derived purely from
   [(seed_base, i)] (see {!Trial}), the contents of the results array do
   not depend on which worker ran which index or in what order — only
   the wall-clock does. All merging therefore happens after the join, in
   index order, which makes [jobs:1] and [jobs:n] bit-identical. *)

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  match jobs with
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j < 0 ->
    invalid_arg "Scheduler.run: jobs must be non-negative (0 = auto)"
  | Some j -> j

(* [parallel_init ~jobs n f] is [Array.init n f] computed by [jobs]
   domains. Exceptions raised by [f] are captured and re-raised (the
   first one observed) after every domain has joined, so no domain is
   leaked. *)
let parallel_init ~jobs n f =
  if n < 0 then invalid_arg "Scheduler: negative instance count";
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f i with
          | v -> slots.(i) <- Some v
          | exception e ->
            (* Keep the first failure; losers of the race are dropped. *)
            ignore
              (Atomic.compare_and_set failure None
                 (Some (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index < n was claimed and ran *))
      slots
  end

let run ?jobs trial ~instances =
  let jobs = resolve_jobs jobs in
  parallel_init ~jobs instances (fun i -> Trial.run_instance trial i)

let run_reduce ?jobs ~merge trial ~instances =
  match run ?jobs trial ~instances with
  | [||] -> invalid_arg "Scheduler.run_reduce: zero instances"
  | results ->
    let acc = ref results.(0) in
    for i = 1 to Array.length results - 1 do
      acc := merge !acc results.(i)
    done;
    !acc

let map_array ?jobs f xs =
  let jobs = resolve_jobs jobs in
  parallel_init ~jobs (Array.length xs) (fun i -> f xs.(i))

let map_list ?jobs f xs =
  Array.to_list (map_array ?jobs f (Array.of_list xs))

(* --- batch planning -------------------------------------------------- *)

type batch = { index : int; first : int; count : int }

let plan ~total ~batch_size =
  if total < 0 then invalid_arg "Scheduler.plan: negative total";
  if batch_size <= 0 then invalid_arg "Scheduler.plan: batch_size must be positive";
  let n = (total + batch_size - 1) / batch_size in
  Array.init n (fun i ->
      let first = i * batch_size in
      { index = i; first; count = min batch_size (total - first) })

type timed = { wall_s : float; jobs : int }

let timed ?jobs f =
  let j = resolve_jobs jobs in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, { wall_s = Unix.gettimeofday () -. t0; jobs = j })
