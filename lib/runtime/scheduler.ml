(* Deterministic execution of independent trial instances on the
   persistent Domain pool.

   Parallelism model: the instance index space [0, n) is the unit of
   scheduling. Claimer tasks dispatched onto {!Pool} pull the next index
   from an atomic counter and write the result into its slot of a
   pre-sized results array. Because instance [i]'s RNG is derived purely
   from [(seed_base, i)] (see {!Trial}), the contents of the results
   array do not depend on which worker ran which index or in what order
   — only the wall-clock does. All merging therefore happens after the
   await, in index order, which makes [jobs:1] and [jobs:n]
   bit-identical.

   Since the pool refactor the execution entry points come in pairs:
   [submit_*] enqueues the claimer tasks and returns a ['a pending]
   without blocking, [await] joins them. The blocking forms ([run],
   [map_array], ...) are submit-then-await. Campaign pipelining is
   exactly "call several [submit_*] before the first [await]": shards
   from many campaigns share the one pool queue, so a short campaign no
   longer leaves workers idle at its join barrier while the next
   campaign waits its turn. Determinism is unaffected — ordering moved
   from execution time to await time.

   The serial path ([jobs <= 1], the library default) never touches the
   pool: [submit_*] degrades to an eager inline [Array.init], keeping it
   byte-identical to the pre-pool world (no queue traffic, no context
   switches) — which is what the zero-alloc and throughput gates
   measure.

   Telemetry: when handed an active [Telemetry.t], claimers emit
   batch-start/batch-end events per claimed index and one per-claimer
   busy-time event at exhaustion — all at batch boundaries, never inside
   a trial body. With the default null context the execution path is
   byte-for-byte the uninstrumented one (no clock reads, no
   allocation). *)

open Cachesec_telemetry

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs =
  match jobs with
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j < 0 ->
    invalid_arg "Scheduler.run: jobs must be non-negative (0 = auto)"
  | Some j -> j

(* --- index-order fold (shared by run_reduce and Driver) --------------- *)

(* [?what] names the campaign whose results are being folded, so an
   empty-input failure points at the experiment that produced no
   partials instead of at this anonymous fold. The default keeps the
   historical message (pinned by test_runtime). *)
let fold_results ?(what = "results") ~merge = function
  | [||] -> invalid_arg ("Scheduler.fold_results: empty " ^ what)
  | results ->
    let acc = ref results.(0) in
    for i = 1 to Array.length results - 1 do
      acc := merge !acc results.(i)
    done;
    !acc

let fold_results_opt ~merge = function
  | [||] -> None
  | results -> Some (fold_results ~merge results)

(* --- non-blocking execution ------------------------------------------- *)

type 'a pending =
  | Ready of 'a array  (* serial path: computed eagerly at submit *)
  | Shards of {
      slots : 'a option array;
      failure : (exn * Printexc.raw_backtrace) option Atomic.t;
      claimers : unit Pool.future array;
    }

(* Uninstrumented claimer body: exactly the pre-pool worker loop. *)
let plain_claimer ~slots ~next ~failure n f () =
  let rec loop () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n && Atomic.get failure = None then begin
      (match f i with
      | v -> slots.(i) <- Some v
      | exception e ->
        (* Keep the first failure; losers of the race are dropped. *)
        ignore
          (Atomic.compare_and_set failure None
             (Some (e, Printexc.get_raw_backtrace ()))));
      loop ()
    end
  in
  loop ()

(* Instrumented claimer: same claiming logic, plus per-index batch
   events and a per-claimer busy-time summary. Claimer [k]'s identity is
   its slot index, not the runtime domain id, so event streams are
   comparable across runs and pool sizes. *)
let instrumented_claimer ~tm ~span ~slots ~next ~failure n f k () =
  let run_unit i =
    let t0 = Telemetry.now_s tm in
    Telemetry.batch_start tm ~span ~index:i ~total:n ~domain:k ~t_s:t0;
    let v = f i in
    Telemetry.batch_end tm ~span ~index:i ~total:n ~domain:k ~start_s:t0;
    (v, Telemetry.now_s tm -. t0)
  in
  let busy = ref 0. in
  let units = ref 0 in
  let rec loop () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n && Atomic.get failure = None then begin
      (match run_unit i with
      | v, dt ->
        slots.(i) <- Some v;
        busy := !busy +. dt;
        incr units
      | exception e ->
        ignore
          (Atomic.compare_and_set failure None
             (Some (e, Printexc.get_raw_backtrace ()))));
      loop ()
    end
  in
  loop ();
  Telemetry.domain_busy tm ~span ~domain:k ~busy_s:!busy ~units:!units

(* Serial instrumented path, eager (pre-pool behaviour, unchanged). *)
let serial_instrumented ~tm ~span n f =
  let busy = ref 0. in
  let r =
    Array.init n (fun i ->
        let t0 = Telemetry.now_s tm in
        Telemetry.batch_start tm ~span ~index:i ~total:n ~domain:0 ~t_s:t0;
        let v = f i in
        Telemetry.batch_end tm ~span ~index:i ~total:n ~domain:0 ~start_s:t0;
        busy := !busy +. (Telemetry.now_s tm -. t0);
        v)
  in
  Telemetry.domain_busy tm ~span ~domain:0 ~busy_s:!busy ~units:n;
  r

let submit_init ?(tm = Telemetry.null) ?(span = Telemetry.null_span) ~jobs n f
    =
  if n < 0 then invalid_arg "Scheduler: negative instance count";
  if n = 0 then Ready [||]
  else if jobs <= 1 || n = 1 then
    Ready
      (if Telemetry.is_null tm then Array.init n f
       else serial_instrumented ~tm ~span n f)
  else begin
    Pool.ensure ~workers:jobs;
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let m = min jobs n in
    let claimers =
      if Telemetry.is_null tm then
        Array.init m (fun _ ->
            Pool.submit (plain_claimer ~slots ~next ~failure n f))
      else
        Array.init m (fun k ->
            Pool.submit (instrumented_claimer ~tm ~span ~slots ~next ~failure n f k))
    in
    Shards { slots; failure; claimers }
  end

let await = function
  | Ready r -> r
  | Shards { slots; failure; claimers } ->
    Array.iter Pool.await claimers;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index was claimed and ran *))
      slots

let parallel_init ?tm ?span ~jobs n f = await (submit_init ?tm ?span ~jobs n f)

(* --- blocking conveniences -------------------------------------------- *)

let run ?jobs ?tm ?span trial ~instances =
  let jobs = resolve_jobs jobs in
  parallel_init ?tm ?span ~jobs instances (fun i -> Trial.run_instance trial i)

let run_reduce ?jobs ?tm ?span ~merge trial ~instances =
  match run ?jobs ?tm ?span trial ~instances with
  | [||] -> invalid_arg "Scheduler.run_reduce: zero instances"
  | results -> fold_results ~merge results

let submit_map ?jobs ?tm ?span f xs =
  let jobs = resolve_jobs jobs in
  submit_init ?tm ?span ~jobs (Array.length xs) (fun i -> f xs.(i))

let map_array ?jobs ?tm ?span f xs = await (submit_map ?jobs ?tm ?span f xs)

let map_list ?jobs ?tm ?span f xs =
  Array.to_list (map_array ?jobs ?tm ?span f (Array.of_list xs))

(* --- batch planning -------------------------------------------------- *)

type batch = { index : int; first : int; count : int }

let plan ~total ~batch_size =
  if total < 0 then invalid_arg "Scheduler.plan: negative total";
  if batch_size <= 0 then invalid_arg "Scheduler.plan: batch_size must be positive";
  let n = (total + batch_size - 1) / batch_size in
  Array.init n (fun i ->
      let first = i * batch_size in
      { index = i; first; count = min batch_size (total - first) })

type timed = { wall_s : float; jobs : int; span_id : int }

(* The stopwatch is monotonic (Clock, not Unix.gettimeofday): an NTP
   step mid-section must not skew the reported wall-clock — these
   numbers feed the bench regression gates.

   With an active telemetry context and a live pool, the section also
   gets pool-utilization gauges: delta busy / (workers * wall) over the
   timed window, plus the worker count. A sequence of join-barrier-bound
   campaigns shows up as low utilization; pipelined submits of the same
   campaigns push it toward 1.0 — that is the observable the e2e bench
   gate is built on. *)
let timed ?jobs ?(tm = Telemetry.null) ?(name = "timed") f =
  let j = resolve_jobs jobs in
  let sp = Telemetry.span tm name in
  let busy0 = if Telemetry.is_null tm then 0. else Pool.busy_seconds () in
  let t0 = Clock.now_s () in
  match f () with
  | v ->
    let wall_s = Clock.elapsed_s ~since:t0 in
    (if not (Telemetry.is_null tm) then begin
       let workers = Pool.workers () in
       if workers > 0 && wall_s > 0. then begin
         let busy = Pool.busy_seconds () -. busy0 in
         Telemetry.gauge tm ~span:sp "pool.workers" (float_of_int workers);
         Telemetry.gauge tm ~span:sp "pool.utilization"
           (Float.max 0. (busy /. (float_of_int workers *. wall_s)))
       end
     end);
    Telemetry.close_span tm sp;
    (v, { wall_s; jobs = j; span_id = Telemetry.span_id sp })
  | exception e ->
    Telemetry.close_span tm sp;
    raise e
