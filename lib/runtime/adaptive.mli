(** Adaptive (run-to-confidence) execution of a batched campaign in
    deterministic geometrically-growing rounds.

    An adaptive campaign is the fixed campaign's batch plan
    ([Scheduler.plan ~total:cap ~batch_size]) partitioned into rounds
    whose boundaries depend only on [(cap, batch_size, start, factor)].
    After each round the partials executed so far are merged in batch
    index order and a caller-supplied predicate decides whether to
    continue; the suffix of batches never run is the saving.

    Because batch seeds, the round partition and the batch-order merge
    are all independent of [jobs] and of submission order, an adaptive
    run is bit-identical across [jobs:1] / [jobs:N] and across
    sequential / pipelined execution — the invariant the rest of the
    trial runtime already guarantees for fixed campaigns (enforced by
    test_runtime's adaptive matrix case). Stopping decisions happen at
    round boundaries ONLY, never inside a round or a batch. *)

open Cachesec_telemetry

type plan = {
  batches : Scheduler.batch array;
  boundaries : int array;
      (** [boundaries.(r)] = number of leading batches executed once
          round [r] has completed; strictly increasing, ending at
          [Array.length batches]. *)
}

val plan :
  ?start:int -> ?factor:int -> total:int -> batch_size:int -> unit -> plan
(** Partition the fixed plan for [total] trials into rounds with
    cumulative trial targets [start, start*factor, start*factor^2, ...]
    (each rounded up to a batch boundary; every round is non-empty).
    [start] must be non-negative; [0] (the default) means one batch.
    [factor] defaults to 2 and must be [>= 2]. A [total] of 0 yields an
    empty plan. *)

val rounds : plan -> int
(** Number of rounds in the plan (0 only for an empty plan). *)

val round_trials : plan -> int -> int
(** [round_trials p r] is the cumulative trial count once round [r] has
    completed. Raises [Invalid_argument] out of range. *)

(** {1 Execution} *)

type 'p progress = {
  merged : 'p;  (** batch-order merge of every executed batch *)
  trials : int;  (** trials actually executed *)
  cap : int;  (** the fixed-count bound ([trials = cap] without early stop) *)
  batches_run : int;
  rounds_run : int;
  stopped_early : bool;
}

type 'p running
(** An adaptive campaign whose round 0 has been dispatched. *)

val submit :
  ?jobs:int ->
  ?tm:Telemetry.t ->
  ?span:Telemetry.span ->
  what:string ->
  shard:(Scheduler.batch -> 'p) ->
  merge:('p -> 'p -> 'p) ->
  keep_going:(trials:int -> 'p -> bool) ->
  plan ->
  'p running
(** Dispatch round 0's shards onto the pool (or run them eagerly on the
    serial path) and return without blocking — so several adaptive
    campaigns submitted before the first {!await} pipeline their round-0
    shards exactly like fixed campaigns. [keep_going] is consulted at
    each round boundary with the cumulative trial count and the merged
    partials; it must be pure (typically [Sequential.decide] against a
    target). [what] names the campaign in error messages. Raises
    [Invalid_argument] on an empty plan. *)

val await : 'p running -> 'p progress
(** Drive rounds to completion: await the current round, merge its
    partials in batch order, consult [keep_going], and either dispatch
    the next round or return. Must be called from outside the pool. *)

val run :
  ?jobs:int ->
  ?tm:Telemetry.t ->
  ?span:Telemetry.span ->
  what:string ->
  shard:(Scheduler.batch -> 'p) ->
  merge:('p -> 'p -> 'p) ->
  keep_going:(trials:int -> 'p -> bool) ->
  plan ->
  'p progress
(** [await] of [submit] — the blocking form. *)
