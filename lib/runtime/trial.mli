(** A [Trial] is one independently repeatable unit of Monte-Carlo work.

    Every experiment in the library (validation-matrix cells, figure
    curves, pre-PAS cleaning games, learning curves) is some number of
    statistically independent repetitions of a closed-over computation.
    A trial family captures that computation together with a [seed_base];
    repetition [i] always runs against [Rng.create
    ~seed:(Rng.derive_seed seed_base i)] — never a shared stream — so the
    result of repetition [i] is a pure function of [(seed_base, i)] and
    serial and Domain-parallel executions are bit-identical. *)

open Cachesec_stats

type 'a t = {
  name : string;  (** label for logging / scheduler stats *)
  seed_base : int;  (** root of the per-instance seed derivation *)
  run : rng:Rng.t -> 'a;  (** the trial body; must draw only from [rng] *)
}

val make : ?name:string -> seed_base:int -> (rng:Rng.t -> 'a) -> 'a t

val seed_for : 'a t -> int -> int
(** [seed_for t i] is the derived seed of instance [i]. *)

val rng_for : 'a t -> int -> Rng.t
(** A fresh generator for instance [i]; equal [(seed_base, i)] give equal
    streams. *)

val run_instance : 'a t -> int -> 'a
(** [run_instance t i] executes the body against [rng_for t i]. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-compose a pure function onto the trial body. *)
