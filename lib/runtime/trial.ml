open Cachesec_stats

type 'a t = { name : string; seed_base : int; run : rng:Rng.t -> 'a }

let make ?(name = "trial") ~seed_base run = { name; seed_base; run }

let seed_for t i = Rng.derive_seed t.seed_base i
let rng_for t i = Rng.create ~seed:(seed_for t i)
let run_instance t i = t.run ~rng:(rng_for t i)

let map f t = { t with run = (fun ~rng -> f (t.run ~rng)) }
