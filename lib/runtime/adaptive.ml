(* Round-based adaptive execution on top of the fixed batch plan.

   The whole trick is that adaptivity changes WHICH PREFIX of the fixed
   campaign runs, never what any batch computes:

   - The batch plan is [Scheduler.plan ~total:cap ~batch_size] — the
     same plan a fixed-count campaign over [cap] trials would use, so
     batch [i]'s seed, first index and count are byte-identical to the
     fixed world's.
   - Rounds are a deterministic, geometrically growing partition of
     that plan: round [r] covers batches [boundaries.(r-1) ..
     boundaries.(r) - 1], where the boundaries are computed from
     [(cap, batch_size, start, factor)] alone — never from [jobs],
     wall-clock or partial values.
   - The stop decision is taken ONLY at round boundaries, on the
     batch-order merge of every batch executed so far. Merging in batch
     index order makes the merged value jobs-invariant (same argument
     as [Scheduler.fold_results]), hence the decision — and therefore
     the executed prefix — is too.

   So an adaptive run is bit-identical across jobs:1 / jobs:N and
   across sequential / pipelined submission; what it saves is the
   suffix of batches it never runs.

   Round 0's shards are dispatched at [submit] time (pipelining with
   other campaigns' shards works exactly as for fixed campaigns); each
   later round is dispatched from [await] after the previous round's
   merge said Continue. The inter-round join is the price of adaptivity
   — with several adaptive campaigns submitted before the first await,
   the other campaigns' round-0 shards fill the pool while this one
   decides. *)

open Cachesec_telemetry

type plan = {
  batches : Scheduler.batch array;
  boundaries : int array;
      (* boundaries.(r) = #batches executed once round r completed;
         strictly increasing, last element = Array.length batches. *)
}

let plan ?(start = 0) ?(factor = 2) ~total ~batch_size () =
  if factor < 2 then invalid_arg "Adaptive.plan: factor must be >= 2";
  if start < 0 then invalid_arg "Adaptive.plan: start must be non-negative";
  let batches = Scheduler.plan ~total ~batch_size in
  let nbatches = Array.length batches in
  if nbatches = 0 then { batches; boundaries = [||] }
  else begin
    (* Cumulative trial target after round r: start * factor^r (start
       defaults to one batch), rounded UP to a batch boundary so a
       round is never empty. *)
    let start = if start <= 0 then batch_size else start in
    let bound_of_target t = min nbatches ((t + batch_size - 1) / batch_size) in
    let rec grow acc target prev =
      let b = max (prev + 1) (bound_of_target target) in
      if b >= nbatches then List.rev (nbatches :: acc)
      else grow (b :: acc) (target * factor) b
    in
    { batches; boundaries = Array.of_list (grow [] start 0) }
  end

let rounds p = Array.length p.boundaries

let round_trials p r =
  if r < 0 || r >= Array.length p.boundaries then
    invalid_arg "Adaptive.round_trials: round out of range";
  let upto = p.boundaries.(r) in
  let t = ref 0 in
  for i = 0 to upto - 1 do
    t := !t + p.batches.(i).Scheduler.count
  done;
  !t

(* --- execution -------------------------------------------------------- *)

type 'p progress = {
  merged : 'p;
  trials : int;  (** trials actually executed (sum over executed batches) *)
  cap : int;  (** the fixed-count total the campaign was bounded by *)
  batches_run : int;
  rounds_run : int;
  stopped_early : bool;
}

type 'p running = {
  p : plan;
  what : string;
  shard : Scheduler.batch -> 'p;
  merge : 'p -> 'p -> 'p;
  keep_going : trials:int -> 'p -> bool;
  jobs : int option;
  tm : Telemetry.t;
  span : Telemetry.span;
  first_round : 'p Scheduler.pending;
}

let submit_round r ~jobs ~tm ~span ~shard (p : plan) =
  let lo = if r = 0 then 0 else p.boundaries.(r - 1) in
  let hi = p.boundaries.(r) in
  Scheduler.submit_map ?jobs ~tm ~span shard
    (Array.sub p.batches lo (hi - lo))

let submit ?jobs ?(tm = Telemetry.null) ?(span = Telemetry.null_span)
    ~what ~shard ~merge ~keep_going p =
  if rounds p = 0 then
    invalid_arg ("Adaptive.submit: empty plan for " ^ what);
  let first_round = submit_round 0 ~jobs ~tm ~span ~shard p in
  { p; what; shard; merge; keep_going; jobs; tm; span; first_round }

let await (r : 'p running) =
  let { p; what; shard; merge; keep_going; jobs; tm; span; first_round } =
    r
  in
  let total_rounds = rounds p in
  let cap =
    Array.fold_left (fun acc b -> acc + b.Scheduler.count) 0 p.batches
  in
  let fold_new acc parts =
    (* Batch-order merge: [acc] already holds batches [0, lo); [parts]
       are batches [lo, hi) in index order, so the running left fold is
       exactly [Scheduler.fold_results] over the executed prefix. *)
    Array.fold_left
      (fun a part -> match a with None -> Some part | Some a -> Some (merge a part))
      acc parts
  in
  let rec loop round acc trials pending_round =
    let parts = Scheduler.await pending_round in
    let acc = fold_new acc parts in
    let lo = if round = 0 then 0 else p.boundaries.(round - 1) in
    let trials =
      Array.fold_left
        (fun t (b : Scheduler.batch) -> t + b.Scheduler.count)
        trials
        (Array.sub p.batches lo (p.boundaries.(round) - lo))
    in
    let merged =
      match acc with
      | Some v -> v
      | None ->
        invalid_arg ("Adaptive.await: empty round for " ^ what)
    in
    let finish ~stopped_early =
      {
        merged;
        trials;
        cap;
        batches_run = p.boundaries.(round);
        rounds_run = round + 1;
        stopped_early;
      }
    in
    if round + 1 >= total_rounds then finish ~stopped_early:false
    else if not (keep_going ~trials merged) then finish ~stopped_early:true
    else
      loop (round + 1) acc trials
        (submit_round (round + 1) ~jobs ~tm ~span ~shard p)
  in
  loop 0 None 0 first_round

let run ?jobs ?tm ?span ~what ~shard ~merge ~keep_going p =
  await (submit ?jobs ?tm ?span ~what ~shard ~merge ~keep_going p)
