open Cachesec_stats
open Cachesec_telemetry

type ctx = {
  seed : int;
  jobs : int option;
  batch : int option;
  telemetry : Telemetry.t;
  parent : Telemetry.span;
  quick : bool;
}

let default =
  {
    seed = 42;
    jobs = None;
    batch = None;
    telemetry = Telemetry.null;
    parent = Telemetry.null_span;
    quick = false;
  }

let make ?jobs ?batch ?(telemetry = Telemetry.null) ?(quick = false) ~seed () =
  { seed; jobs; batch; telemetry; parent = Telemetry.null_span; quick }

let with_seed seed ctx = { ctx with seed }
let with_jobs jobs ctx = { ctx with jobs = Some jobs }
let with_batch batch ctx = { ctx with batch = Some batch }
let with_telemetry telemetry ctx = { ctx with telemetry }
let with_parent parent ctx = { ctx with parent }
let quick ctx = { ctx with quick = true }

(* Batch 0 reuses the experiment's root seed verbatim, so a run that
   fits in a single batch is bit-identical to the legacy monolithic
   serial loop (and to every result recorded before the trial-runtime
   refactor). Later batches draw well-separated seeds from the pure
   hash. This is the single point of seed derivation for the whole
   experiments layer; [Driver.shard_seed] is a deprecated alias. *)
let seed_for_batch ~seed i = if i = 0 then seed else Rng.derive_seed seed i
let batch_seed ctx i = seed_for_batch ~seed:ctx.seed i

(* --- shared CLI wiring ------------------------------------------------ *)

let of_cmdline ?(default_seed = 42) ?(run = "run") () =
  let open Cmdliner in
  let seed =
    Arg.(
      value & opt int default_seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced trial counts.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard Monte-Carlo trials over $(docv) domains (0 = one per \
             core). Results are independent of $(docv).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Stream human-readable telemetry (spans, batch progress, \
             per-domain utilisation) to stderr.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write machine-readable telemetry (schema telemetry/v1) to \
             $(docv) at exit.")
  in
  let build seed quick_flag jobs progress metrics =
    let sinks =
      (if progress then [ Sink.progress () ] else [])
      @
      match metrics with
      | Some path -> [ Sink.json ~run ~path () ]
      | None -> []
    in
    let telemetry =
      match sinks with
      | [] -> Telemetry.null
      | [ s ] -> Telemetry.make ~sink:s ()
      | ss -> Telemetry.make ~sink:(Sink.tee ss) ()
    in
    (* The JSON sink only materialises its file at close; closing from
       [at_exit] covers every exit path of the CLI, and [close] is
       idempotent if the command also closes explicitly. *)
    if not (Telemetry.is_null telemetry) then
      at_exit (fun () -> Telemetry.close telemetry);
    {
      seed;
      jobs = Some jobs;
      batch = None;
      telemetry;
      parent = Telemetry.null_span;
      quick = quick_flag;
    }
  in
  Term.(const build $ seed $ quick $ jobs $ progress $ metrics)
