(* Persistent, process-global Domain pool.

   Why it exists: before this module, [Scheduler.parallel_init] spawned
   and joined fresh Domains for every campaign, so a full harness run
   (dozens of campaigns: 36 validation cells, figures, ablations) paid a
   spawn cost and a join-barrier idle tail per campaign — while the
   campaigns themselves ran strictly one after another, leaving cores
   idle whenever a campaign had fewer shards than workers. The pool is
   spawned once per process, lazily sized to the largest worker count
   ever requested, and every layer of the system dispatches its shard
   tasks into the one shared FIFO queue. Campaign-level pipelining
   (submit all campaigns' shards, await results in deterministic order)
   then falls out for free: workers never idle at a campaign boundary
   while another campaign has runnable shards.

   Determinism: the pool executes opaque thunks; which worker runs which
   task, and in what order tasks from different campaigns interleave, is
   scheduling — never semantics. Every task in this codebase derives its
   RNG purely from its own (seed, index), writes into its own slot, and
   all merging happens at await time in index order, so results are
   bit-identical whether the queue is drained by 1 worker or 16
   (enforced by test_runtime's pipelined-vs-sequential cases).

   Concurrency structure: one mutex guards the queue, the worker list
   and all futures' states; [work] wakes parked workers when a task is
   enqueued, [finished] is broadcast when any future completes (awaiters
   recheck their own future — completion events are per-batch, so the
   broadcast herd is cheap). Workers park in [Condition.wait] between
   campaigns; a parked Domain costs no CPU.

   Exceptions: a task that raises has its exception and backtrace
   captured into its future; [await] re-raises them in the awaiting
   domain with [Printexc.raise_with_backtrace]. First-failure semantics
   across a *family* of tasks (a campaign's shards) are layered on top
   by the scheduler's failure atomic, exactly as before the pool.

   Shutdown: the first spawn registers an [at_exit] hook that drains the
   queue, wakes every worker and joins them, so the process never exits
   with runnable work or unjoined domains. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable state : 'a state }

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a task was enqueued, or shutdown began *)
  finished : Condition.t;  (* some future completed *)
  queue : (unit -> unit) Queue.t;  (* completion thunks; never raise *)
  mutable domains : unit Domain.t list;
  mutable worker_ids : int list;  (* Domain ids, for deadlock detection *)
  mutable size : int;
  mutable busy_s : float array;  (* cumulative task seconds per worker *)
  mutable stop : bool;
}

(* OCaml 5 caps live domains at 128 (including the main domain and any
   the program spawns elsewhere); stay well under it. *)
let max_workers = 126

let the : t =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    queue = Queue.create ();
    domains = [];
    worker_ids = [];
    size = 0;
    busy_s = [||];
    stop = false;
  }

let rec worker_loop k =
  let p = the in
  Mutex.lock p.lock;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.work p.lock
  done;
  if Queue.is_empty p.queue then (* stop && empty: drained, exit *)
    Mutex.unlock p.lock
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.lock;
    let t0 = Cachesec_telemetry.Clock.now_s () in
    task ();
    (* tasks are wrapped: they never raise *)
    let dt = Cachesec_telemetry.Clock.elapsed_s ~since:t0 in
    Mutex.lock p.lock;
    p.busy_s.(k) <- p.busy_s.(k) +. dt;
    Mutex.unlock p.lock;
    worker_loop k
  end

let shutdown () =
  let p = the in
  Mutex.lock p.lock;
  p.stop <- true;
  Condition.broadcast p.work;
  let ds = p.domains in
  p.domains <- [];
  Mutex.unlock p.lock;
  List.iter Domain.join ds

(* Like [shutdown], but the pool comes back: workers drain the queue
   and are joined, the pool returns to its zero-worker state, and a
   later [ensure] respawns. Exists for the serial throughput benches:
   on OCaml 5 every minor collection is a stop-the-world handshake
   across ALL live domains, so even parked workers tax a single-domain
   timed loop (measurably, on small hosts) — quiescing first means the
   serial sections measure a genuinely single-domain process, exactly
   like the world their baselines were recorded in. [busy_s] is kept
   (cumulative across quiesce/respawn cycles) so utilization deltas
   sampled around a quiesce never go negative. *)
let quiesce () =
  let p = the in
  Mutex.lock p.lock;
  if p.size = 0 then Mutex.unlock p.lock
  else begin
    p.stop <- true;
    Condition.broadcast p.work;
    let ds = p.domains in
    p.domains <- [];
    p.worker_ids <- [];
    p.size <- 0;
    Mutex.unlock p.lock;
    List.iter Domain.join ds;
    Mutex.lock p.lock;
    p.stop <- false;
    Mutex.unlock p.lock
  end

let ensure ~workers =
  let target = min workers max_workers in
  let p = the in
  Mutex.lock p.lock;
  if p.stop then begin
    Mutex.unlock p.lock;
    invalid_arg "Pool.ensure: pool already shut down"
  end;
  let missing = target - p.size in
  if missing > 0 then begin
    (* [busy_s] only ever grows (it survives quiesce/respawn cycles, so
       it may already be larger than [target] after a shrink). *)
    let old = p.busy_s in
    if Array.length old < target then begin
      p.busy_s <- Array.make target 0.;
      Array.blit old 0 p.busy_s 0 (Array.length old)
    end;
    let first_spawn = p.size = 0 in
    for k = p.size to target - 1 do
      let d = Domain.spawn (fun () -> worker_loop k) in
      p.domains <- d :: p.domains;
      p.worker_ids <- (Domain.get_id d :> int) :: p.worker_ids
    done;
    p.size <- target;
    Mutex.unlock p.lock;
    (* Registered outside the lock: at_exit runs in the main domain and
       shutdown retakes the lock. *)
    if first_spawn then at_exit shutdown
  end
  else Mutex.unlock p.lock

let workers () =
  let p = the in
  Mutex.lock p.lock;
  let n = p.size in
  Mutex.unlock p.lock;
  n

let worker_busy_seconds () =
  let p = the in
  Mutex.lock p.lock;
  let a = Array.copy p.busy_s in
  Mutex.unlock p.lock;
  a

let busy_seconds () = Array.fold_left ( +. ) 0. (worker_busy_seconds ())

let run_task f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

(* Enqueue under the (held) lock and return the future. *)
let enqueue_locked p f =
  let fut = { state = Pending } in
  Queue.push
    (fun () ->
      let r = run_task f in
      Mutex.lock p.lock;
      fut.state <- r;
      Condition.broadcast p.finished;
      Mutex.unlock p.lock)
    p.queue;
  Condition.signal p.work;
  Mutex.unlock p.lock;
  fut

let submit f =
  let p = the in
  Mutex.lock p.lock;
  if p.size = 0 then begin
    (* No workers: degrade to eager inline execution in the caller.
       This keeps the serial ([jobs:1]) paths byte-identical to a world
       without the pool — no queue traffic, no context switch — which
       is what the zero-alloc and serial-throughput gates measure. *)
    Mutex.unlock p.lock;
    { state = run_task f }
  end
  else enqueue_locked p f

let queued_tasks () =
  let p = the in
  Mutex.lock p.lock;
  let n = Queue.length p.queue in
  Mutex.unlock p.lock;
  n

(* Bounded admission for callers that must not buffer without limit
   (the PAS query server's backpressure path): the task is enqueued
   only while fewer than [max_pending] tasks are waiting for a worker.
   The bound is on the *queue*, not on running tasks — a saturated pool
   with an empty queue still admits, which is the intended semantics
   (admitting work that a worker will pick up next keeps the pool warm;
   the bound exists to cap memory and queueing delay). The length check
   and the push happen under one lock acquisition, so concurrent
   admitters cannot jointly overshoot the bound. [max_pending = 0]
   refuses everything — callers use it as a hard "serve from cache
   only" switch. With zero workers the queue is always empty, so any
   positive bound admits and the task degrades to eager inline
   execution exactly like {!submit}. *)
let try_submit ~max_pending f =
  let p = the in
  Mutex.lock p.lock;
  if Queue.length p.queue >= max_pending then begin
    Mutex.unlock p.lock;
    None
  end
  else if p.size = 0 then begin
    Mutex.unlock p.lock;
    Some { state = run_task f }
  end
  else Some (enqueue_locked p f)

(* Non-blocking completion check. [state] is written by a worker domain
   under the pool lock, so read it under the same lock: a plain
   unsynchronized read could never tear, but the OCaml memory model
   would also permit it to keep returning a stale [Pending] forever —
   a polling loop needs the acquire/release pairing the mutex provides
   to be guaranteed to eventually observe completion. The lock is
   uncontended in the common case (workers hold it only for the
   instants of dequeue and completion), so this costs nanoseconds. *)
let poll fut =
  let p = the in
  Mutex.lock p.lock;
  let s = fut.state in
  Mutex.unlock p.lock;
  match s with
  | Pending -> None
  | Done v -> Some v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let await fut =
  match fut.state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
    let p = the in
    Mutex.lock p.lock;
    (* Awaiting from a pool worker would park the worker on a condition
       the remaining workers may never signal (every worker could end up
       waiting on work only the pool itself can run): refuse loudly
       instead of deadlocking. Orchestration always lives in the main
       domain; pooled tasks are leaves. *)
    if List.mem (Domain.self () :> int) p.worker_ids then begin
      Mutex.unlock p.lock;
      invalid_arg "Pool.await: cannot await from inside a pool worker"
    end;
    let rec wait () =
      match fut.state with
      | Pending ->
        Condition.wait p.finished p.lock;
        wait ()
      | s -> s
    in
    let s = wait () in
    Mutex.unlock p.lock;
    (match s with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false)
