(** Deterministic serial / Domain-parallel execution of trial families.

    The scheduler's contract: for any trial family [t] and instance count
    [n], [run ~jobs:j t ~instances:n] returns the same array for every
    [j] — parallelism changes wall-clock only. This holds because each
    instance draws from its own derived generator ({!Trial.rng_for}) and
    results are written into per-instance slots, with any reduction
    performed after the join in index order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int option -> int
(** [None] is serial ([1]); [Some 0] is auto ({!default_jobs}); [Some j]
    with [j > 0] is exactly [j] workers. Raises [Invalid_argument] on
    negative [j]. *)

val run : ?jobs:int -> 'a Trial.t -> instances:int -> 'a array
(** Execute instances [0 .. instances-1]; result [i] is instance [i]'s.
    [?jobs] follows {!resolve_jobs}. Exceptions raised by a trial body
    are re-raised in the caller after all workers join. *)

val run_reduce : ?jobs:int -> merge:('a -> 'a -> 'a) -> 'a Trial.t -> instances:int -> 'a
(** [run] followed by a left fold of [merge] in index order (so [merge]
    need only be associative, not commutative). Raises [Invalid_argument]
    when [instances = 0]. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map for heterogeneous work units (e.g. the
    36 validation-matrix cells). The caller is responsible for making
    [f] independent of execution order — in this library every such [f]
    seeds its own RNG from the element. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

type batch = { index : int; first : int; count : int }

val plan : total:int -> batch_size:int -> batch array
(** Split [total] trial repetitions into contiguous batches of at most
    [batch_size]. The plan depends only on [(total, batch_size)] — never
    on [jobs] — which is what keeps batched merges identical across
    worker counts. *)

type timed = { wall_s : float; jobs : int }

val timed : ?jobs:int -> (unit -> 'a) -> 'a * timed
(** Wall-clock a section, recording the resolved worker count. *)
