(** Deterministic serial / Domain-parallel execution of trial families.

    The scheduler's contract: for any trial family [t] and instance count
    [n], [run ~jobs:j t ~instances:n] returns the same array for every
    [j] — parallelism changes wall-clock only. This holds because each
    instance draws from its own derived generator ({!Trial.rng_for}) and
    results are written into per-instance slots, with any reduction
    performed after the join in index order.

    Observability: every execution entry point accepts a telemetry
    context [?tm] and a parent [?span]. With an active context the
    scheduler emits [Batch_start]/[Batch_end] per claimed index and one
    [Domain_busy] utilisation event per worker at join — all at batch
    boundaries, never inside a trial body. With the default
    {!Cachesec_telemetry.Telemetry.null} the execution path is exactly
    the uninstrumented one (no clock reads, no allocation). *)

open Cachesec_telemetry

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int option -> int
(** [None] is serial ([1]); [Some 0] is auto ({!default_jobs}); [Some j]
    with [j > 0] is exactly [j] workers. Raises [Invalid_argument] on
    negative [j]. *)

val run :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> 'a Trial.t ->
  instances:int -> 'a array
(** Execute instances [0 .. instances-1]; result [i] is instance [i]'s.
    [?jobs] follows {!resolve_jobs}. Exceptions raised by a trial body
    are re-raised in the caller after all workers join. *)

val run_reduce :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span ->
  merge:('a -> 'a -> 'a) -> 'a Trial.t -> instances:int -> 'a
(** [run] followed by a left fold of [merge] in index order (so [merge]
    need only be associative, not commutative). Raises [Invalid_argument]
    when [instances = 0]. *)

val map_array :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> ('a -> 'b) ->
  'a array -> 'b array
(** Order-preserving parallel map for heterogeneous work units (e.g. the
    36 validation-matrix cells). The caller is responsible for making
    [f] independent of execution order — in this library every such [f]
    seeds its own RNG from the element. *)

val map_list :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> ('a -> 'b) ->
  'a list -> 'b list

type batch = { index : int; first : int; count : int }

val plan : total:int -> batch_size:int -> batch array
(** Split [total] trial repetitions into contiguous batches of at most
    [batch_size]. The plan depends only on [(total, batch_size)] — never
    on [jobs] — which is what keeps batched merges identical across
    worker counts. *)

type timed = { wall_s : float; jobs : int; span_id : int }
(** [span_id] is [0] under a null context; otherwise the id of the span
    wrapping the timed section, for cross-referencing wall-clock
    sections (e.g. [BENCH_cache.json]) against the telemetry JSON. *)

val timed :
  ?jobs:int -> ?tm:Telemetry.t -> ?name:string -> (unit -> 'a) ->
  'a * timed
(** Wall-clock a section, recording the resolved worker count. With an
    active [tm], also brackets the section in a span named [name]
    (default ["timed"]) and reports its id. *)
