(** Deterministic serial / Domain-parallel execution of trial families.

    The scheduler's contract: for any trial family [t] and instance count
    [n], [run ~jobs:j t ~instances:n] returns the same array for every
    [j] — parallelism changes wall-clock only. This holds because each
    instance draws from its own derived generator ({!Trial.rng_for}) and
    results are written into per-instance slots, with any reduction
    performed after the join in index order.

    Execution is dispatched onto the persistent process-global {!Pool}:
    parallel entry points submit index-claiming shard tasks into the one
    shared queue instead of spawning Domains per call. Each entry point
    comes in a blocking form ([run], [map_array], ...) and a
    non-blocking pair ([submit_*] returning an ['a pending], joined by
    {!await}). Campaign pipelining is calling several [submit_*] before
    the first [await]: shards from many campaigns interleave in the pool
    queue, so workers never idle at one campaign's join barrier while
    another campaign has runnable shards. Determinism is unaffected —
    ordering moved from execution time to await time.

    The serial path ([jobs <= 1], the default) never touches the pool:
    [submit_*] degrades to an eager inline [Array.init], byte-identical
    to the pre-pool world.

    Observability: every execution entry point accepts a telemetry
    context [?tm] and a parent [?span]. With an active context the
    scheduler emits [Batch_start]/[Batch_end] per claimed index and one
    [Domain_busy] utilisation event per worker at join — all at batch
    boundaries, never inside a trial body. With the default
    {!Cachesec_telemetry.Telemetry.null} the execution path is exactly
    the uninstrumented one (no clock reads, no allocation). *)

open Cachesec_telemetry

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int option -> int
(** [None] is serial ([1]); [Some 0] is auto ({!default_jobs}); [Some j]
    with [j > 0] is exactly [j] workers. Raises [Invalid_argument] on
    negative [j]. *)

val fold_results : ?what:string -> merge:('a -> 'a -> 'a) -> 'a array -> 'a
(** Left fold of [merge] over a results array in index order (so [merge]
    need only be associative, not commutative). The single reduction
    used by both {!run_reduce} and the experiment driver's partial-merge
    step. Raises [Invalid_argument] on an empty array; [?what] (default
    ["results"]) names the campaign in that message — e.g.
    ["Scheduler.fold_results: empty evict-time:sa partials"] — so an
    empty campaign is attributed, not anonymous. Callers that have a
    meaningful empty case should prefer {!fold_results_opt}. *)

val fold_results_opt : merge:('a -> 'a -> 'a) -> 'a array -> 'a option
(** Total variant of {!fold_results}: [None] on an empty array instead
    of raising. *)

type 'a pending
(** A family of submitted shard tasks not yet joined. Obtained from
    {!submit_init} / {!submit_map}; consumed exactly once by {!await}.
    On the serial path the value is already computed at submit time. *)

val submit_init :
  ?tm:Telemetry.t -> ?span:Telemetry.span -> jobs:int -> int ->
  (int -> 'a) -> 'a pending
(** Non-blocking core: dispatch the index space [0, n) as [min jobs n]
    index-claiming tasks onto the pool and return immediately. [jobs] is
    a resolved worker count (see {!resolve_jobs}); [jobs <= 1] or
    [n <= 1] computes eagerly inline without touching the pool. *)

val await : 'a pending -> 'a array
(** Join a pending family: block until every index has run, re-raise the
    first failure (with its backtrace) if any shard raised, otherwise
    return the results array in index order. Must be called from outside
    the pool (shard tasks are leaves). *)

val submit_map :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> ('a -> 'b) ->
  'a array -> 'b pending
(** Non-blocking {!map_array}: [await (submit_map f xs)] ≡
    [map_array f xs]. [?jobs] follows {!resolve_jobs}. *)

val run :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> 'a Trial.t ->
  instances:int -> 'a array
(** Execute instances [0 .. instances-1]; result [i] is instance [i]'s.
    [?jobs] follows {!resolve_jobs}. Exceptions raised by a trial body
    are re-raised in the caller after all workers join. *)

val run_reduce :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span ->
  merge:('a -> 'a -> 'a) -> 'a Trial.t -> instances:int -> 'a
(** [run] followed by a left fold of [merge] in index order (so [merge]
    need only be associative, not commutative). Raises [Invalid_argument]
    when [instances = 0]. *)

val map_array :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> ('a -> 'b) ->
  'a array -> 'b array
(** Order-preserving parallel map for heterogeneous work units (e.g. the
    36 validation-matrix cells). The caller is responsible for making
    [f] independent of execution order — in this library every such [f]
    seeds its own RNG from the element. *)

val map_list :
  ?jobs:int -> ?tm:Telemetry.t -> ?span:Telemetry.span -> ('a -> 'b) ->
  'a list -> 'b list

type batch = { index : int; first : int; count : int }

val plan : total:int -> batch_size:int -> batch array
(** Split [total] trial repetitions into contiguous batches of at most
    [batch_size]. The plan depends only on [(total, batch_size)] — never
    on [jobs] — which is what keeps batched merges identical across
    worker counts. *)

type timed = { wall_s : float; jobs : int; span_id : int }
(** [span_id] is [0] under a null context; otherwise the id of the span
    wrapping the timed section, for cross-referencing wall-clock
    sections (e.g. [BENCH_cache.json]) against the telemetry JSON. *)

val timed :
  ?jobs:int -> ?tm:Telemetry.t -> ?name:string -> (unit -> 'a) ->
  'a * timed
(** Wall-clock a section on the monotonic clock ({!Clock}), recording
    the resolved worker count. With an active [tm], also brackets the
    section in a span named [name] (default ["timed"]), reports its id,
    and — when the pool is live — emits [pool.workers] and
    [pool.utilization] gauges for the section, where utilization is
    [delta busy_seconds / (workers * wall_s)] over the timed window. *)
