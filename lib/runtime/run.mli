(** The experiment-calling context: one record instead of the
    [?jobs ?batch seed] optional tails that every experiment entry point
    had grown independently.

    A [ctx] is cheap, immutable and copied freely; the smart
    constructors below are the intended way to build one. Every
    ctx-taking experiment function ([Driver.run_*],
    [Validation.cells], [Figures.render_*], ...) promises the trial
    runtime's contract: the result depends on [seed]/[batch]/[quick]
    only, never on [jobs] or [telemetry]. *)

open Cachesec_telemetry

type ctx = {
  seed : int;  (** root RNG seed of the experiment *)
  jobs : int option;
      (** worker domains, per {!Scheduler.resolve_jobs}: [None] serial,
          [Some 0] auto, [Some n] exactly [n] *)
  batch : int option;
      (** trial-batch size override; [None] = the experiment's own
          default. Part of the experiment definition: changing it
          changes results (the batch plan), unlike [jobs]. *)
  telemetry : Telemetry.t;  (** {!Telemetry.null} = zero-cost off *)
  parent : Telemetry.span;
      (** span under which experiment spans nest
          ({!Telemetry.null_span} = root) *)
  quick : bool;  (** reduced trial counts (the CLIs' [--quick]) *)
}

val default : ctx
(** [seed 42], serial, default batches, null telemetry, full scale. *)

val make :
  ?jobs:int -> ?batch:int -> ?telemetry:Telemetry.t -> ?quick:bool ->
  seed:int -> unit -> ctx

val with_seed : int -> ctx -> ctx
val with_jobs : int -> ctx -> ctx
val with_batch : int -> ctx -> ctx
val with_telemetry : Telemetry.t -> ctx -> ctx
val with_parent : Telemetry.span -> ctx -> ctx

val quick : ctx -> ctx
(** Reduced trial counts ([Figures.Quick] scale). *)

val seed_for_batch : seed:int -> int -> int
(** Seed of trial batch [i]: the root [seed] itself for batch 0 (keeping
    single-batch runs bit-identical to the legacy serial loops and to
    the pre-runtime results), [Rng.derive_seed seed i] otherwise. The
    single point of seed derivation for the experiments layer;
    [Driver.shard_seed] is a deprecated alias. *)

val batch_seed : ctx -> int -> int
(** [seed_for_batch ~seed:ctx.seed]. *)

val of_cmdline :
  ?default_seed:int -> ?run:string -> unit -> ctx Cmdliner.Term.t
(** Shared Cmdliner wiring for [pas_tool] and [bench]: [--seed],
    [--quick], [--jobs N], [--progress] (human-readable telemetry on
    stderr) and [--metrics PATH] (telemetry/v1 JSON written at exit,
    conventionally [results/TELEMETRY_<run>.json]). Registers an
    [at_exit] close for any active telemetry, so the JSON file is
    written on every exit path. *)
