(** Canonical, injective keys for memoization.

    The PAS query server memoizes closed-form and simulation-backed
    answers keyed on the query's semantic content — the effective
    [Spec.t], [Config.t], attack type, noise and seed after every
    default has been expanded. Two differently-constructed but
    equivalent values must produce the same key, and two distinct
    values must never collide; this module provides the encoding
    discipline that makes the second half provable rather than hoped
    for.

    Every atom is self-delimiting (a type character, a payload whose
    representation cannot contain the terminator, and a terminator —
    or an explicit length prefix), and composite nodes are
    length-prefixed tags over the concatenation of their children. A
    concatenation of self-delimiting encodings has exactly one parse,
    so [to_string] is injective on the combinator algebra: equal
    strings imply the same constructor tree with the same atoms.
    Collision-freedom over the actual query space is additionally
    pinned by tests sweeping the full architecture x attack matrix
    (see [test_serve.ml]). *)

type t

val int : int -> t
val bool : bool -> t

val float : float -> t
(** Encoded in hexadecimal notation ([%h]): exact for every finite
    float, so [0.1 +. 0.2] and [0.3] correctly get different keys.
    All NaNs encode alike. *)

val string : string -> t
(** Length-prefixed: the payload may contain any byte, including the
    separators used by the other encoders. *)

val list : t list -> t

val tag : string -> t list -> t
(** [tag name children]: a named composite node — use one distinct tag
    per variant constructor. The name is length-prefixed, so tags that
    are prefixes of one another ("sa" / "sas") cannot collide. *)

val to_string : t -> string
(** The canonical encoding. Injective: [to_string a = to_string b]
    iff [a] and [b] are the same tree. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
