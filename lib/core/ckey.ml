(* Injective canonical keys (see the mli for the encoding argument).

   Each atom is "type char + payload + ';'" where the payload's
   representation cannot contain ';' (decimal integers, %h floats), or
   "type char + length + ':' + payload + ';'" when the payload is
   arbitrary bytes. Composites are 'l'/'t' nodes wrapping the
   concatenation of their children in parentheses; since every child
   encoding is self-delimiting, the concatenation has a unique parse
   and the whole encoding is injective by structural induction. *)

type t = K of string [@@unboxed]

let to_string (K s) = s
let int n = K (Printf.sprintf "i%d;" n)
let bool b = K (if b then "b1;" else "b0;")

(* %h prints the sign, so +0. and -0. differ (they are distinct IEEE
   values; callers that want them unified normalize first). All NaN
   payloads print as "nan". *)
let float f = K (Printf.sprintf "f%h;" f)
let string s = K (Printf.sprintf "s%d:%s;" (String.length s) s)

let concat parts =
  String.concat "" (List.map to_string parts)

let list parts = K (Printf.sprintf "l(%s)" (concat parts))

let tag name parts =
  K (Printf.sprintf "t%d:%s(%s)" (String.length name) name (concat parts))

let equal (K a) (K b) = String.equal a b
let compare (K a) (K b) = String.compare a b
let hash (K a) = Hashtbl.hash a
