(** Mutable cache-line metadata shared by all architecture models. *)

type t = {
  mutable valid : bool;
  mutable tag : int;  (** full memory-line number of the cached line *)
  mutable owner : int;  (** pid that filled the line *)
  mutable locked : bool;  (** PL cache protection bit *)
  mutable last_use : int;  (** global access sequence of the last touch (LRU) *)
  mutable fill_seq : int;  (** global access sequence of the fill (FIFO) *)
  mutable aux : int;  (** architecture-specific field (Newcache logical index) *)
}

val make : unit -> t
(** A fresh invalid line. *)

val make_array : int -> t array
(** [make_array n] is [n] fresh independent invalid lines. *)

val invalidate : t -> unit
(** Clear the line (also clears the lock bit). *)

val fill : t -> tag:int -> owner:int -> seq:int -> unit
(** Install a new memory line; clears the lock bit, sets both timestamps. *)

val touch : t -> seq:int -> unit
(** Record a hit for LRU bookkeeping. *)

val victim : t -> (int * int) option
(** [(owner, tag)] if the line is valid — the eviction payload produced
    when this line is displaced. Allocates only when valid. *)
