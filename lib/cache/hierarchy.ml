open Cachesec_stats

type t = {
  l2 : Engine.t;
  l1_config : Config.t;
  l1_policy : Replacement.policy;
  l1s : (int, Engine.t) Hashtbl.t;
  rng : Rng.t;
  counters : Counters.t;
}

let l2_hit_time = 0.4

let default_l1 = Config.v ~line_bytes:64 ~lines:64 ~ways:4

let create ?(l1_config = default_l1) ?(l1_policy = Replacement.Random) ~l2 ~rng () =
  {
    l2;
    l1_config;
    l1_policy;
    l1s = Hashtbl.create 8;
    rng;
    counters = Counters.create ();
  }

let l2 t = t.l2

let l1_for t ~pid =
  match Hashtbl.find_opt t.l1s pid with
  | Some e -> e
  | None ->
    let e =
      Sa.engine
        (Sa.create ~config:t.l1_config ~policy:t.l1_policy ~rng:(Rng.split t.rng) ())
    in
    Hashtbl.replace t.l1s pid e;
    e

let access_timed t ~pid addr =
  let l1 = l1_for t ~pid in
  if l1.Engine.peek ~pid addr then begin
    let o = l1.Engine.access ~pid addr in
    Counters.record t.counters ~pid o;
    (o, Timing.hit_time)
  end
  else begin
    (* L1 miss: consult the shared level, then fill the L1. The uniform
       event is Hit when any level holds the line (latency below memory);
       the three-way latency carries the L1/L2 distinction. *)
    let o2 = t.l2.Engine.access ~pid addr in
    ignore (l1.Engine.access ~pid addr);
    let time =
      match o2.Outcome.event with
      | Outcome.Hit -> l2_hit_time
      | Outcome.Miss -> Timing.miss_time
    in
    Counters.record t.counters ~pid o2;
    (o2, time)
  end

let access t ~pid addr = fst (access_timed t ~pid addr)

(* clflush is coherence-wide: the line leaves every private L1 as well as
   the shared level (otherwise a victim could keep hitting a stale L1
   copy and flush-and-reload would never observe anything). *)
let flush_line t ~pid addr =
  let l1_hit =
    Hashtbl.fold
      (fun owner (l1 : Engine.t) acc -> l1.Engine.flush_line ~pid:owner addr || acc)
      t.l1s false
  in
  let l2_hit = t.l2.Engine.flush_line ~pid addr in
  if l1_hit || l2_hit then begin
    Counters.record_flush t.counters ~pid;
    true
  end
  else false

let engine t =
  {
    Engine.name = Printf.sprintf "l1+%s" t.l2.Engine.name;
    config = t.l2.Engine.config;
    sigma = t.l2.Engine.sigma;
    (* The L1s are private per-pid Sa engines created on demand; the
       hierarchy reports the shared level's path and footprint. *)
    kernel = t.l2.Engine.kernel;
    slab_bytes = t.l2.Engine.slab_bytes;
    access = (fun ~pid addr -> access t ~pid addr);
    (* The batched run must route through the hierarchy's own access
       (L1 probe + L2 fallback), not the L2's. *)
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek =
      (fun ~pid addr ->
        (l1_for t ~pid).Engine.peek ~pid addr || t.l2.Engine.peek ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all =
      (fun () ->
        Hashtbl.iter (fun _ l1 -> l1.Engine.flush_all ()) t.l1s;
        t.l2.Engine.flush_all ());
    lock_line = (fun ~pid addr -> t.l2.Engine.lock_line ~pid addr);
    unlock_line = (fun ~pid addr -> t.l2.Engine.unlock_line ~pid addr);
    set_window = (fun ~pid ~back ~fwd -> t.l2.Engine.set_window ~pid ~back ~fwd);
    counters = (fun () -> Counters.global t.counters);
    counters_for = (fun pid -> Counters.for_pid t.counters pid);
    reset_counters =
      (fun () ->
        Counters.reset t.counters;
        t.l2.Engine.reset_counters ();
        Hashtbl.iter (fun _ l1 -> l1.Engine.reset_counters ()) t.l1s);
    dump = (fun () -> t.l2.Engine.dump ());
  }
