(** Build a runnable {!Engine.t} from a {!Spec.t} plus scenario bindings. *)

type scenario = {
  victim_pid : int;
  victim_lines : (int * int) list;
      (** inclusive line ranges owned by the victim's security domain
          (AES tables, victim private data). SP homes these in the victim
          partition; Nomo protects [victim_pid]; RF applies the spec's
          window to [victim_pid]. *)
}

val default_scenario : scenario
(** victim pid 0 and no owned ranges — fine for single-process use. *)

val build :
  ?config:Config.t ->
  ?kernel:Kernel.selection ->
  Spec.t ->
  scenario ->
  rng:Cachesec_stats.Rng.t ->
  Engine.t
(** Instantiate. [config]'s [ways] is overridden by the spec's [ways]
    (its line count and line size are kept); Newcache ignores [ways].
    [?kernel] (default [Auto]) selects monomorphized access kernels
    where they exist (SA, PL, RP, Newcache, Noisy's inner SA) and is
    ignored by the always-generic architectures; [Generic] forces the
    dispatching fallback everywhere (the differential-testing oracle). *)
