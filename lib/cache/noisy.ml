type t = { sa : Sa.t; sigma : float }

let create ?config ?policy ?(sigma = 1.0) ~rng () =
  if sigma < 0. then invalid_arg "Noisy.create: negative sigma";
  { sa = Sa.create ?config ?policy ~rng (); sigma }

let sigma t = t.sigma
let access t ~pid addr = Sa.access t.sa ~pid addr
let peek t ~pid addr = Sa.peek t.sa ~pid addr

let engine ?kernel t =
  let e = Sa.engine ?kernel t.sa in
  { e with Engine.name = Printf.sprintf "noisy-sigma-%g" t.sigma; sigma = t.sigma }
