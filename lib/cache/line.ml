type t = {
  mutable valid : bool;
  mutable tag : int;
  mutable owner : int;
  mutable locked : bool;
  mutable last_use : int;
  mutable fill_seq : int;
  mutable aux : int;
}

let make () =
  { valid = false; tag = 0; owner = -1; locked = false; last_use = 0; fill_seq = 0; aux = 0 }

let make_array n = Array.init n (fun _ -> make ())

let invalidate t =
  t.valid <- false;
  t.tag <- 0;
  t.owner <- -1;
  t.locked <- false;
  t.aux <- 0

let fill t ~tag ~owner ~seq =
  t.valid <- true;
  t.tag <- tag;
  t.owner <- owner;
  t.locked <- false;
  t.last_use <- seq;
  t.fill_seq <- seq;
  t.aux <- 0

let touch t ~seq = t.last_use <- seq

let victim t = if t.valid then Some (t.owner, t.tag) else None
