open Cachesec_stats

(* CAM keys are packed ints ((context, logical index) in one immediate
   word), so probes allocate neither a tuple key nor hash a block: the
   polymorphic [Hashtbl] primitives specialise to one [caml_hash] call
   and an unboxed compare. (A [Hashtbl.Make] functor over int was
   measured ~30% slower end to end here: without flambda each bucket
   probe pays indirect closure calls for [equal]/[hash], whereas the
   polymorphic table runs them in the C runtime.) *)
type t = {
  b : Backing.t;
  logical_lines : int;
  lbits : int;  (** bits of a logical index: [1 lsl lbits = logical_lines] *)
  (* CAM index: packed (context, logical index) key -> physical line
     index. Kept in lock-step with the line array so lookups are O(1)
     instead of a scan over all physical lines. *)
  cam : (int, int) Hashtbl.t;
}

let create ?(config = Config.fully_associative) ?(extra_bits = 4) ~rng () =
  if extra_bits < 0 then invalid_arg "Newcache.create: negative extra_bits";
  let logical_lines = config.Config.lines lsl extra_bits in
  let lbits =
    let rec go b = if 1 lsl b >= logical_lines then b else go (b + 1) in
    go 0
  in
  { b = Backing.create config ~rng; logical_lines; lbits; cam = Hashtbl.create 1024 }

let config t = t.b.Backing.cfg
let logical_lines t = t.logical_lines
let lindex t addr = addr mod t.logical_lines
(* The stored tag is the full memory-line number, which subsumes the
   logical tag addr / logical_lines. *)

(* Packed CAM key: context in the high bits, logical index below. *)
let cam_key t ~pid lindex = (pid lsl t.lbits) lor lindex

(* CAM lookup: physical index of the line holding (context, logical
   index), verified against the line array, or -1. Allocation-free. *)
let cam_find t ~pid ~lindex =
  match Hashtbl.find t.cam (cam_key t ~pid lindex) with
  | i -> if t.b.Backing.lines.(i).Line.valid then i else -1
  | exception Not_found -> -1

let cam_remove_entry_of t i =
  let l = t.b.Backing.lines.(i) in
  if l.Line.valid then Hashtbl.remove t.cam (cam_key t ~pid:l.owner l.Line.aux)

let full_match t ~pid addr =
  let i = cam_find t ~pid ~lindex:(lindex t addr) in
  if i >= 0 && t.b.Backing.lines.(i).Line.tag = addr then i else -1

let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let li = lindex t addr in
  let m = cam_find t ~pid ~lindex:li in
  let outcome =
    if m >= 0 && b.lines.(m).Line.tag = addr then begin
      Line.touch b.lines.(m) ~seq;
      Outcome.hit
    end
    else begin
      (* Tag miss: clear the index-conflicting line (the [m >= 0] case)
         to keep the (context, index) CAM key unique. *)
      let conflict_evicted =
        if m >= 0 then begin
          let l = b.lines.(m) in
          let victim = Line.victim l in
          cam_remove_entry_of t m;
          Line.invalidate l;
          victim
        end
        else None
      in
      let way = Rng.int b.rng (Array.length b.lines) in
      let victim = b.lines.(way) in
      let evicted = Line.victim victim in
      cam_remove_entry_of t way;
      Line.fill victim ~tag:addr ~owner:pid ~seq;
      victim.Line.aux <- li;
      Hashtbl.replace t.cam (cam_key t ~pid li) way;
      {
        Outcome.event = Miss;
        cached = true;
        fetched = Some addr;
        evicted;
        also_evicted = conflict_evicted;
      }
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid addr = full_match t ~pid addr >= 0

let flush_line t ~pid addr =
  let i = full_match t ~pid addr in
  if i >= 0 then begin
    cam_remove_entry_of t i;
    Line.invalidate t.b.lines.(i);
    Counters.record_flush t.b.counters ~pid;
    true
  end
  else false

let flush_all t =
  Hashtbl.reset t.cam;
  Backing.flush_all t.b

let engine t =
  {
    Engine.name = Printf.sprintf "newcache-%d-logical" t.logical_lines;
    config = config t;
    sigma = 0.;
    access = (fun ~pid addr -> access t ~pid addr);
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
