open Cachesec_stats

(* The CAM index (packed (context, logical index) key -> physical line)
   lives in [Kernel_newcache.cam] so the monomorphized kernel and this
   generic path share the one table; see that module for the packed-key
   rationale. *)
type t = { b : Backing.t; cam : Kernel_newcache.cam }

let create ?(config = Config.fully_associative) ?(extra_bits = 4) ~rng () =
  if extra_bits < 0 then invalid_arg "Newcache.create: negative extra_bits";
  {
    b = Backing.create config ~rng;
    cam = Kernel_newcache.create_cam ~logical_lines:(config.Config.lines lsl extra_bits);
  }

let config t = t.b.Backing.cfg
let logical_lines t = t.cam.Kernel_newcache.logical_lines
let lindex t addr = addr mod logical_lines t
(* The stored tag is the full memory-line number, which subsumes the
   logical tag addr / logical_lines. *)

let cam_find t ~pid ~lindex =
  Kernel_newcache.cam_find t.cam t.b.Backing.slab ~pid ~lindex

let full_match t ~pid addr =
  let i = cam_find t ~pid ~lindex:(lindex t addr) in
  if i >= 0 && t.b.Backing.slab.Slab.tags.(i) = addr then i else -1

let access t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let seq = Backing.tick b in
  let li = lindex t addr in
  let m = cam_find t ~pid ~lindex:li in
  let outcome =
    if m >= 0 && s.Slab.tags.(m) = addr then begin
      Slab.touch s m ~seq;
      Outcome.hit
    end
    else begin
      (* Tag miss: clear the index-conflicting line (the [m >= 0] case)
         to keep the (context, index) CAM key unique. *)
      let conflict_evicted =
        if m >= 0 then begin
          let victim = Slab.victim s m in
          Kernel_newcache.cam_remove_entry_of t.cam s m;
          Slab.invalidate s m;
          victim
        end
        else None
      in
      let way = Rng.int b.rng s.Slab.n in
      let evicted = Slab.victim s way in
      Kernel_newcache.cam_remove_entry_of t.cam s way;
      Slab.fill s way ~tag:addr ~owner:pid ~seq;
      s.Slab.aux.(way) <- li;
      Hashtbl.replace t.cam.Kernel_newcache.table
        (Kernel_newcache.cam_key t.cam ~pid li)
        way;
      {
        Outcome.event = Miss;
        cached = true;
        fetched = Some addr;
        evicted;
        also_evicted = conflict_evicted;
      }
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid addr = full_match t ~pid addr >= 0

let flush_line t ~pid addr =
  let i = full_match t ~pid addr in
  if i >= 0 then begin
    Kernel_newcache.cam_remove_entry_of t.cam t.b.Backing.slab i;
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t =
  Hashtbl.reset t.cam.Kernel_newcache.table;
  Backing.flush_all t.b

let engine ?(kernel = Kernel.Auto) t =
  let generic ~pid addr = access t ~pid addr in
  let access, run, kernel_name, run_name =
    match kernel with
    | Kernel.Generic ->
      (generic, Kernel.run_of_scalar generic, Kernel.generic, Kernel.generic)
    | Kernel.Auto ->
      ( Kernel_newcache.access t.cam t.b,
        Kernel_newcache.run t.cam t.b,
        "newcache",
        "newcache" )
    | Kernel.Scalar ->
      let a = Kernel_newcache.access t.cam t.b in
      (a, Kernel.run_of_scalar a, "newcache", Kernel.scalar)
  in
  {
    Engine.name = Printf.sprintf "newcache-%d-logical" (logical_lines t);
    config = config t;
    sigma = 0.;
    kernel = kernel_name;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access;
    access_run = run;
    run_kernel = run_name;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
