type t = { b : Backing.t; policy : Replacement.policy }

let create ?(config = Config.standard) ?(policy = Replacement.Random) ~rng () =
  { b = Backing.create config ~rng; policy }

let config t = t.b.Backing.cfg
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Line.touch b.lines.(i) ~seq;
      Outcome.hit
    end
    else begin
      let way =
        Replacement.choose t.policy b.rng b.lines
          ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
      in
      let victim = b.lines.(way) in
      if victim.Line.valid && victim.locked then
        (* Protected victim: direct memory-to-processor transfer. *)
        Outcome.miss_uncached
      else begin
        let evicted = Line.victim victim in
        Line.fill victim ~tag:addr ~owner:pid ~seq;
        Outcome.fill ~fetched:addr ~evicted
      end
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

(* Cold path: locking may need the victim choice restricted to the
   unlocked (non-contiguous) ways, so it keeps the list form. *)
let lock_line t ~pid addr =
  let b = t.b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  if i >= 0 then begin
    b.lines.(i).Line.locked <- true;
    b.lines.(i).Line.owner <- pid;
    true
  end
  else begin
    let seq = Backing.tick b in
    let unlocked =
      List.filter
        (fun i -> not b.lines.(i).Line.locked)
        (Backing.ways_of_set b ~set)
    in
    match unlocked with
    | [] -> false
    | candidates ->
      let way = Replacement.choose_among t.policy b.rng b.lines ~candidates in
      let victim = b.lines.(way) in
      let evicted = if victim.Line.valid then 1 else 0 in
      Line.fill victim ~tag:addr ~owner:pid ~seq;
      victim.Line.locked <- true;
      Counters.record_eviction b.counters ~count:evicted;
      true
  end

let unlock_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 && t.b.lines.(i).Line.locked && t.b.lines.(i).Line.owner = pid then begin
    t.b.lines.(i).Line.locked <- false;
    true
  end
  else false

let locked_lines t =
  Backing.dump t.b
  |> List.filter_map (fun (_, (l : Line.t)) -> if l.locked then Some l.tag else None)
  |> List.sort Int.compare

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    let l = t.b.lines.(i) in
    if l.Line.locked && l.owner <> pid then false
    else begin
      Line.invalidate l;
      Counters.record_flush t.b.counters ~pid;
      true
    end
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name = Printf.sprintf "pl-%d-way" (config t).Config.ways;
    config = config t;
    sigma = 0.;
    access = (fun ~pid addr -> access t ~pid addr);
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = (fun ~pid addr -> lock_line t ~pid addr);
    unlock_line = (fun ~pid addr -> unlock_line t ~pid addr);
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
