type t = { b : Backing.t; policy : Replacement.policy }

let create ?(config = Config.standard) ?(policy = Replacement.Random) ~rng () =
  { b = Backing.create config ~rng; policy }

let config t = t.b.Backing.cfg
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* Generic access path; [Kernel_pl] holds the per-policy monomorphized
   equivalents (bit-identical, see the differential kernel tests). *)
let access t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Policy.touch t.policy s i ~seq;
      Outcome.hit
    end
    else begin
      let way =
        Policy.victim_in t.policy b.rng s
          ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
      in
      if Slab.valid s way && Slab.locked s way then
        (* Protected victim: direct memory-to-processor transfer (no
           fill, so no [Policy.filled] either — the tree/counters only
           move when cache state does). *)
        Outcome.miss_uncached
      else begin
        let evicted = Slab.victim s way in
        Slab.fill s way ~tag:addr ~owner:pid ~seq;
        Policy.filled t.policy s way;
        Outcome.fill ~fetched:addr ~evicted
      end
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

(* Cold path: locking may need the victim choice restricted to the
   unlocked (non-contiguous) ways, so it keeps the list form. *)
let lock_line t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  if i >= 0 then begin
    Slab.set_locked s i true;
    s.Slab.owners.(i) <- pid;
    true
  end
  else begin
    let seq = Backing.tick b in
    let unlocked =
      List.filter (fun i -> not (Slab.locked s i)) (Backing.ways_of_set b ~set)
    in
    match unlocked with
    | [] -> false
    | candidates ->
      let way = Policy.victim_among_in t.policy b.rng s ~candidates in
      let evicted = if Slab.valid s way then 1 else 0 in
      Slab.fill s way ~tag:addr ~owner:pid ~seq;
      Policy.filled t.policy s way;
      Slab.set_locked s way true;
      Counters.record_eviction b.counters ~count:evicted;
      true
  end

let unlock_line t ~pid addr =
  let s = t.b.Backing.slab in
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 && Slab.locked s i && s.Slab.owners.(i) = pid then begin
    Slab.set_locked s i false;
    true
  end
  else false

let locked_lines t =
  Backing.dump t.b
  |> List.filter_map (fun (_, (l : Line.t)) -> if l.locked then Some l.tag else None)
  |> List.sort Int.compare

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let s = t.b.Backing.slab in
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    if Slab.locked s i && s.Slab.owners.(i) <> pid then false
    else begin
      Slab.invalidate s i;
      Counters.record_flush t.b.Backing.counters ~pid;
      true
    end
  end
  else false

let flush_all t = Backing.flush_all t.b

(* Only the three original policies are monomorphized here; the newer
   ones run the generic path (Kernel.pick returns None). *)
let kernels =
  Kernel.table ~prefix:"pl"
    [
      (Policy.Lru, (Kernel_pl.access_lru, Kernel_pl.run_lru));
      (Policy.Random, (Kernel_pl.access_random, Kernel_pl.run_random));
      (Policy.Fifo, (Kernel_pl.access_fifo, Kernel_pl.run_fifo));
    ]

let engine ?(kernel = Kernel.Auto) t =
  let generic ~pid addr = access t ~pid addr in
  let access, run, kernel_name, run_name =
    match (kernel, Kernel.pick kernels t.policy) with
    | Kernel.Auto, Some (name, (a, r)) -> (a t.b, r t.b, name, name)
    | Kernel.Scalar, Some (name, (a, _)) ->
      let a = a t.b in
      (a, Kernel.run_of_scalar a, name, Kernel.scalar)
    | (Kernel.Auto | Kernel.Scalar), None | Kernel.Generic, _ ->
      (generic, Kernel.run_of_scalar generic, Kernel.generic, Kernel.generic)
  in
  {
    Engine.name = Printf.sprintf "pl-%d-way" (config t).Config.ways;
    config = config t;
    sigma = 0.;
    kernel = kernel_name;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access;
    access_run = run;
    run_kernel = run_name;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = (fun ~pid addr -> lock_line t ~pid addr);
    unlock_line = (fun ~pid addr -> unlock_line t ~pid addr);
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
