open Cachesec_stats

let hit_time = 0.
let miss_time = 1.

let observe rng ~sigma event =
  let base = match event with Outcome.Hit -> hit_time | Outcome.Miss -> miss_time in
  if sigma = 0. then base else Rng.gaussian rng ~mu:base ~sigma

let observe_outcome rng ~sigma (o : Outcome.t) = observe rng ~sigma o.event

let time_of_counts ~hits ~misses =
  (* Bit-for-bit equal to summing the per-access constants in any order:
     the sequence sums are integer-valued floats well below 2^53, and
     with hit_time = 0. the hit term is an exact +0. *)
  (float_of_int misses *. miss_time) +. (float_of_int hits *. hit_time)

let classify ?(threshold = 0.5) time =
  if time > threshold then Outcome.Miss else Outcome.Hit

let error_probability ~sigma =
  if sigma < 0. then invalid_arg "Timing.error_probability: negative sigma";
  if sigma = 0. then 0.
  else 1. -. Special.normal_cdf (1. /. (2. *. sigma))
