(** The timing channel.

    The paper normalises the channel exactly this way (Section 3.7): a hit
    observes time 0, a miss observes time 1, and the observation carries
    additive Gaussian noise N(0, sigma^2) — sigma = 0 for every cache but
    the noisy cache. *)

val hit_time : float
(** 0.0 *)

val miss_time : float
(** 1.0 *)

val observe : Cachesec_stats.Rng.t -> sigma:float -> Outcome.event -> float
(** The time the attacker's timer reads for one access. *)

val observe_outcome : Cachesec_stats.Rng.t -> sigma:float -> Outcome.t -> float

val time_of_counts : hits:int -> misses:int -> float
(** The exact (noise-free) total time of [hits + misses] accesses:
    [misses *. miss_time +. hits *. hit_time]. Bit-for-bit equal to
    summing {!observe}'s sigma = 0 per-access values in sequence, so the
    allocation-free attack paths can accumulate integer miss counts and
    convert once per encryption instead of summing floats per access. *)

val classify : ?threshold:float -> float -> Outcome.event
(** Maximum-likelihood decision between the two Gaussians: times above
    [threshold] (default 0.5, the midpoint) read as a miss. *)

val error_probability : sigma:float -> float
(** Probability that {!classify} mislabels an observation,
    [1 - Phi(1 / (2 sigma))]; 0 when [sigma = 0]. This is [1 - p5] of the
    paper's Figure 4. *)
