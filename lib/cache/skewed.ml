open Cachesec_stats

type t = {
  b : Backing.t;
  (* packed (pid, bank) -> secret slot permutation for that domain and
     bank. The key is [pid * banks + bank] (an int, so the per-probe
     lookup allocates neither a tuple nor an option). *)
  keys : (int, int array) Hashtbl.t;
}

let create ?(config = Config.standard) ~rng () =
  { b = Backing.create config ~rng; keys = Hashtbl.create 16 }

let config t = t.b.Backing.cfg
let banks t = t.b.Backing.cfg.Config.ways
let slots_per_bank t = Config.sets t.b.Backing.cfg

let key_of t ~pid ~bank =
  let k = (pid * banks t) + bank in
  match Hashtbl.find t.keys k with
  | p -> p
  | exception Not_found ->
    let p = Rng.permutation t.b.rng (slots_per_bank t) in
    Hashtbl.replace t.keys k p;
    p

let slot_of t ~pid ~bank addr =
  (* Mix the tag bits into the index before the secret permutation so
     that lines sharing a conventional set index still scatter. *)
  let s = slots_per_bank t in
  let mixed = (addr + ((addr / s) * 7)) mod s in
  (key_of t ~pid ~bank).(mixed)

(* Physical index of (bank, slot): bank-major layout. *)
let cell t ~bank ~slot = (bank * slots_per_bank t) + slot

(* Top-level probe loop (state passed explicitly) so the non-flambda
   compiler emits no per-call closure. Tags are non-negative when
   valid, so [tags.(i) = addr] subsumes the valid check. *)
let rec probe_banks t pid addr bank n =
  if bank >= n then -1
  else begin
    let i = cell t ~bank ~slot:(slot_of t ~pid ~bank addr) in
    let s = t.b.Backing.slab in
    if s.Slab.tags.(i) = addr && s.Slab.owners.(i) = pid then i
    else probe_banks t pid addr (bank + 1) n
  end

(* Physical index of the bank cell holding [addr] for [pid], or -1.
   Allocation-free once the per-(pid, bank) permutations exist. *)
let find t ~pid addr = probe_banks t pid addr 0 (banks t)

let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let i = find t ~pid addr in
  let outcome =
    if i >= 0 then begin
      Slab.touch b.Backing.slab i ~seq;
      Outcome.hit
    end
    else begin
      let s = b.Backing.slab in
      let bank = Rng.int b.rng (banks t) in
      let i = cell t ~bank ~slot:(slot_of t ~pid ~bank addr) in
      let evicted = Slab.victim s i in
      Slab.fill s i ~tag:addr ~owner:pid ~seq;
      Outcome.fill ~fetched:addr ~evicted
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid addr = find t ~pid addr >= 0

let flush_line t ~pid addr =
  let i = find t ~pid addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name = Printf.sprintf "skewed-%d-bank" (banks t);
    config = config t;
    sigma = 0.;
    kernel = Kernel.generic;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access = (fun ~pid addr -> access t ~pid addr);
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
