(** Replacement policies — legacy entry points.

    The policy type and all victim-selection / touch dispatch now live
    in the {!Policy} registry; this module re-exports the type (so the
    historical [Replacement.Lru] spellings keep compiling across the
    codebase) and keeps the old entry points as compat wrappers.

    New code should call {!Policy.victim_in} / {!Policy.victim_among_in}
    and thread {!Policy.touch} / {!Policy.filled}; the slab wrappers
    below are deprecated and merely forward there.

    A policy selects the victim way among a candidate subset of a set's
    lines. Invalid candidates are always preferred (a fill never evicts
    while free space remains), matching every design in the paper. *)

type policy = Policy.t = Lru | Random | Fifo | Mru | Lfu | Mfu | Plru

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

(** [choose policy rng lines ~base ~len] picks the victim index from the
    range [base, base + len) of boxed [lines]: any invalid candidate
    first (lowest index), otherwise by policy (LRU = least [last_use],
    FIFO = least [fill_seq], Random = uniform over the range, MRU =
    greatest [last_use]). Allocation-free. Raises [Invalid_argument]
    when the range is empty or out of bounds — or for [Lfu]/[Mfu]/[Plru],
    whose state lives in {!Slab} field arrays the boxed view does not
    carry (use {!Policy.victim_in}). *)
val choose :
  policy -> Cachesec_stats.Rng.t -> Line.t array -> base:int -> len:int -> int
[@@alert deprecated "use Policy.victim_in over a Slab"]

(** As {!choose} over an explicit candidate list (invalid-first order is
    list order; Random is [List.nth] over the list). Same policy support
    as {!choose}. *)
val choose_among :
  policy -> Cachesec_stats.Rng.t -> Line.t array -> candidates:int list -> int
[@@alert deprecated "use Policy.victim_among_in over a Slab"]

val lru_victim : Line.t array -> base:int -> len:int -> int
(** The LRU choice alone (exposed for tests). *)

(** {2 Slab variants — deprecated forwards to {!Policy}} *)

(** Forwards to {!Policy.victim_in}. *)
val choose_in :
  policy -> Cachesec_stats.Rng.t -> Slab.t -> base:int -> len:int -> int
[@@alert deprecated "use Policy.victim_in"]

(** Forwards to {!Policy.victim_among_in}. *)
val choose_among_in :
  policy -> Cachesec_stats.Rng.t -> Slab.t -> candidates:int list -> int
[@@alert deprecated "use Policy.victim_among_in"]

val lru_victim_in : Slab.t -> base:int -> len:int -> int
val first_invalid_in : Slab.t -> base:int -> len:int -> int
