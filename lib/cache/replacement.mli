(** Replacement policies.

    A policy selects the victim way among a candidate subset of a set's
    lines. Invalid candidates are always preferred (a fill never evicts
    while free space remains), matching every design in the paper.

    The hot-path entry point {!choose} takes the candidate ways as a
    contiguous index range [(base, len)] — which every per-access fill
    in the simulator has: a whole set, or a contiguous slice of one
    (Nomo's reserved/shared split) — and runs allocation-free.
    {!choose_among} keeps the general list form for cold paths with
    non-contiguous candidates (PL way-locking). *)

type policy = Lru | Random | Fifo

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

val choose :
  policy -> Cachesec_stats.Rng.t -> Line.t array -> base:int -> len:int -> int
(** [choose policy rng lines ~base ~len] picks the victim index from the
    range [base, base + len) of [lines]:
    - any invalid candidate first (lowest index);
    - otherwise by policy: LRU = least [last_use], FIFO = least
      [fill_seq], Random = uniform over the range (one RNG draw).
    Allocation-free. Raises [Invalid_argument] when the range is empty
    or out of bounds. *)

val choose_among :
  policy -> Cachesec_stats.Rng.t -> Line.t array -> candidates:int list -> int
(** As {!choose} over an explicit candidate list (invalid-first order is
    list order; Random is [List.nth] over the list). For cold paths with
    non-contiguous candidates only. *)

val lru_victim : Line.t array -> base:int -> len:int -> int
(** The LRU choice alone (exposed for tests). *)

(** {2 Slab variants}

    The same contracts over the flat {!Slab} state the engines keep
    their lines in since the slab refactor. The [Line.t array] entry
    points above remain as a compat shim for tests and tools that build
    small line arrays directly. *)

val choose_in :
  policy -> Cachesec_stats.Rng.t -> Slab.t -> base:int -> len:int -> int
(** {!choose} over a slab range: invalid-first (lowest index), then
    LRU/FIFO minimum with first-occurrence tie-break, Random = one RNG
    draw over the range. Allocation-free. *)

val choose_among_in :
  policy -> Cachesec_stats.Rng.t -> Slab.t -> candidates:int list -> int
(** {!choose_among} over a slab (PL way-locking cold path). *)

val lru_victim_in : Slab.t -> base:int -> len:int -> int
val first_invalid_in : Slab.t -> base:int -> len:int -> int
