(* Newcache: shared CAM state + monomorphized access loop.

   CAM keys are packed ints ((context, logical index) in one immediate
   word), so probes allocate neither a tuple key nor hash a block: the
   polymorphic [Hashtbl] primitives specialise to one [caml_hash] call
   and an unboxed compare. (A [Hashtbl.Make] functor over int was
   measured ~30% slower end to end here: without flambda each bucket
   probe pays indirect closure calls for [equal]/[hash], whereas the
   polymorphic table runs them in the C runtime.)

   The CAM lives here (not in [Newcache]) because both the generic path
   and the kernel mutate it and it must stay in lock-step with the slab
   state. Bit-identity contract with [Newcache.access]: same CAM
   probes/updates, same conflict invalidation, same single RNG draw. *)

open Cachesec_stats

type cam = {
  table : (int, int) Hashtbl.t;
      (** packed (context, logical index) key -> physical line index *)
  lbits : int;  (** bits of a logical index: [1 lsl lbits >= logical_lines] *)
  logical_lines : int;
}

let create_cam ~logical_lines =
  if logical_lines <= 0 then
    invalid_arg "Kernel_newcache.create_cam: logical_lines must be positive";
  let lbits =
    let rec go b = if 1 lsl b >= logical_lines then b else go (b + 1) in
    go 0
  in
  { table = Hashtbl.create 1024; lbits; logical_lines }

(* Packed CAM key: context in the high bits, logical index below. *)
let cam_key c ~pid lindex = (pid lsl c.lbits) lor lindex

(* CAM lookup: physical index of the line holding (context, logical
   index), verified against the slab, or -1. Allocation-free. *)
let cam_find c (s : Slab.t) ~pid ~lindex =
  match Hashtbl.find c.table (cam_key c ~pid lindex) with
  | i -> if s.Slab.tags.(i) >= 0 then i else -1
  | exception Not_found -> -1

let cam_remove_entry_of c (s : Slab.t) i =
  if s.Slab.tags.(i) >= 0 then
    Hashtbl.remove c.table (cam_key c ~pid:s.Slab.owners.(i) s.Slab.aux.(i))

let access c (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let seq = Kernel_sa.tick b in
  let li = addr mod c.logical_lines in
  let m = cam_find c s ~pid ~lindex:li in
  let outcome =
    if m >= 0 && Array.unsafe_get s.Slab.tags m = addr then begin
      Array.unsafe_set s.Slab.last_use m seq;
      Outcome.hit
    end
    else begin
      (* Tag miss: clear the index-conflicting line (the [m >= 0] case)
         to keep the (context, index) CAM key unique. *)
      let conflict_evicted =
        if m >= 0 then begin
          let victim = Slab.victim s m in
          cam_remove_entry_of c s m;
          Slab.invalidate s m;
          victim
        end
        else None
      in
      let way = Rng.int b.Backing.rng s.Slab.n in
      let evicted = Slab.victim s way in
      cam_remove_entry_of c s way;
      Slab.fill s way ~tag:addr ~owner:pid ~seq;
      s.Slab.aux.(way) <- li;
      Hashtbl.replace c.table (cam_key c ~pid li) way;
      {
        Outcome.event = Miss;
        cached = true;
        fetched = Some addr;
        evicted;
        also_evicted = conflict_evicted;
      }
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* --- batched run kernel ------------------------------------------------ *)

(* Batched replay: Trace replays the scalar miss tail verbatim;
   Fill/Count skip both [Slab.victim] allocations and count evictions
   directly — the conflict invalidation always displaces a valid line
   ([cam_find] verified the tag), and invalidating it first means a
   random victim landing on the same way correctly counts 0, exactly as
   the scalar [Slab.victim] returning [None] there. *)
let run (c : cam) (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let li = addr mod c.logical_lines in
    let m = cam_find c s ~pid ~lindex:li in
    if m >= 0 && Array.unsafe_get s.Slab.tags m = addr then begin
      Array.unsafe_set s.Slab.last_use m seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      match mode with
      | Kernel.Trace out ->
        let conflict_evicted =
          if m >= 0 then begin
            let victim = Slab.victim s m in
            cam_remove_entry_of c s m;
            Slab.invalidate s m;
            victim
          end
          else None
        in
        let way = Rng.int b.Backing.rng s.Slab.n in
        let evicted = Slab.victim s way in
        cam_remove_entry_of c s way;
        Slab.fill s way ~tag:addr ~owner:pid ~seq;
        s.Slab.aux.(way) <- li;
        Hashtbl.replace c.table (cam_key c ~pid li) way;
        let o =
          {
            Outcome.event = Miss;
            cached = true;
            fetched = Some addr;
            evicted;
            also_evicted = conflict_evicted;
          }
        in
        Counters.cell_record g o;
        Counters.cell_record p o;
        Array.unsafe_set out k o
      | Kernel.Fill | Kernel.Count _ ->
        let conflict =
          if m >= 0 then begin
            cam_remove_entry_of c s m;
            Slab.invalidate s m;
            1
          end
          else 0
        in
        let way = Rng.int b.Backing.rng s.Slab.n in
        let ev =
          conflict + if Array.unsafe_get s.Slab.tags way >= 0 then 1 else 0
        in
        cam_remove_entry_of c s way;
        Slab.fill s way ~tag:addr ~owner:pid ~seq;
        s.Slab.aux.(way) <- li;
        Hashtbl.replace c.table (cam_key c ~pid li) way;
        Counters.cell_miss_cached g ~evictions:ev;
        Counters.cell_miss_cached p ~evictions:ev;
        (match mode with Kernel.Count cnt -> Kernel.count_miss cnt | _ -> ())
    end
  done;
  b.Backing.seq <- seq0 + len
