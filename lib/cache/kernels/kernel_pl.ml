(* Monomorphized per-policy access loops for the PL cache: the SA loops
   with one extra check on the miss path — a locked victim is served
   read-through instead of displaced (paper Section 2.2.1). Locking
   itself stays in [Pl] (cold path). Bit-identical to the generic
   [Pl.access]; see [Kernel_sa] for the layout rationale. *)

open Cachesec_stats

(* Miss tail shared by the three policies: read-through when the chosen
   victim is locked (locked implies valid — [Slab.fill] and
   [Slab.invalidate] both clear the bit), else fill. *)
let miss_tail (s : Slab.t) way ~pid ~addr ~seq =
  if Array.unsafe_get s.Slab.locked way = 1 then Outcome.miss_uncached
  else begin
    let evicted = Slab.victim s way in
    Slab.fill s way ~tag:addr ~owner:pid ~seq;
    Outcome.fill ~fetched:addr ~evicted
  end

let access_lru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = Kernel_sa.tick b in
  let base = Kernel_sa.set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      miss_tail s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_fifo (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = Kernel_sa.tick b in
  let base = Kernel_sa.set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      miss_tail s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_random (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = Kernel_sa.tick b in
  let base = Kernel_sa.set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng s.Slab.ways
      in
      miss_tail s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* --- batched run kernels ---------------------------------------------- *)

(* Batched miss tail: the PL read-through check in front of the shared
   SA fill epilogue. *)
let finish_miss_pl (s : Slab.t) way ~pid ~addr ~seq g p (mode : Kernel.mode) k
    =
  if Array.unsafe_get s.Slab.locked way = 1 then begin
    Counters.cell_miss_uncached g;
    Counters.cell_miss_uncached p;
    match mode with
    | Kernel.Fill -> ()
    | Kernel.Count c -> Kernel.count_miss c
    | Kernel.Trace out -> Array.unsafe_set out k Outcome.miss_uncached
  end
  else Kernel_sa.finish_miss_fill s way ~pid ~addr ~seq g p mode k

let run_lru (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = Kernel_sa.set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      finish_miss_pl s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_fifo (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = Kernel_sa.set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      finish_miss_pl s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_random (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = Kernel_sa.set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng ways
      in
      finish_miss_pl s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len
