(* Monomorphized access loops for the conventional set-associative
   cache, one per replacement policy. Each is the [Sa.access] generic
   path with every layer flattened into one straight-line function:
   sequence tick and set index inlined (no [Backing] calls), the tag
   probe and victim scans running directly over the slab arrays, and the
   policy dispatch hoisted to engine-build time (the caller binds
   [access_lru]/[access_fifo]/[access_random] once).

   Bit-identity contract: state writes, RNG draw order and outcome
   construction exactly match the generic path — [test_kernels] replays
   random workloads against both. The hit path allocates nothing. *)

open Cachesec_stats

(* Shared straight-line pieces; top-level with all state as arguments so
   the non-flambda compiler emits no closures. *)

let[@inline] tick (b : Backing.t) =
  let seq = b.Backing.seq + 1 in
  b.Backing.seq <- seq;
  seq

let[@inline] set_of (b : Backing.t) addr =
  if b.Backing.set_mask >= 0 then addr land b.Backing.set_mask
  else addr mod b.Backing.sets

(* Fill [way] with [addr] and build the filled outcome (identical to the
   generic miss tail). *)
let fill_outcome (s : Slab.t) way ~pid ~addr ~seq =
  let evicted = Slab.victim s way in
  Slab.fill s way ~tag:addr ~owner:pid ~seq;
  Outcome.fill ~fetched:addr ~evicted

let access_lru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_fifo (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_random (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng s.Slab.ways
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome
