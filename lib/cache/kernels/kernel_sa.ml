(* Monomorphized access loops for the conventional set-associative
   cache, one per replacement policy. Each is the [Sa.access] generic
   path with every layer flattened into one straight-line function:
   sequence tick and set index inlined (no [Backing] calls), the tag
   probe and victim scans running directly over the slab arrays, and the
   policy dispatch hoisted to engine-build time (the caller binds
   [access_lru]/[access_fifo]/[access_random] once).

   Bit-identity contract: state writes, RNG draw order and outcome
   construction exactly match the generic path — [test_kernels] replays
   random workloads against both. The hit path allocates nothing. *)

open Cachesec_stats

(* Shared straight-line pieces; top-level with all state as arguments so
   the non-flambda compiler emits no closures. *)

let[@inline] tick (b : Backing.t) =
  let seq = b.Backing.seq + 1 in
  b.Backing.seq <- seq;
  seq

let[@inline] set_of (b : Backing.t) addr =
  if b.Backing.set_mask >= 0 then addr land b.Backing.set_mask
  else addr mod b.Backing.sets

(* Fill [way] with [addr] and build the filled outcome (identical to the
   generic miss tail). *)
let fill_outcome (s : Slab.t) way ~pid ~addr ~seq =
  let evicted = Slab.victim s way in
  Slab.fill s way ~tag:addr ~owner:pid ~seq;
  Outcome.fill ~fetched:addr ~evicted

let access_lru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_fifo (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_random (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng s.Slab.ways
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_mru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* LFU/MFU: the hit path carries one extra int store (the frequency
   bump [Policy.touch] does on the generic path); the victim scan runs
   over the frequency slab with the same first-occurrence tie-break as
   every other scan. *)

let access_lfu (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_mfu (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* Tree-PLRU: the tree word is re-pointed on every hit AND after every
   fill ([Policy.touch]/[Policy.filled] on the generic path). The
   non-power-of-two fallback mirrors [Policy.victim_in]'s LRU order so
   the two paths stay bit-identical on any geometry. *)

let access_plru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let set = set_of b addr in
  let w = s.Slab.ways in
  let base = set * w in
  let stop = base + w in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Policy.plru_touch s i;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else if Policy.plru_tree_capable w then
          base + Policy.plru_walk (Array.unsafe_get s.Slab.tree set) w 1
        else
          let last_use = s.Slab.last_use in
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      let o = fill_outcome s way ~pid ~addr ~seq in
      Policy.plru_touch s way;
      o
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome
