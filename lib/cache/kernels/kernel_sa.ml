(* Monomorphized access loops for the conventional set-associative
   cache, one per replacement policy. Each is the [Sa.access] generic
   path with every layer flattened into one straight-line function:
   sequence tick and set index inlined (no [Backing] calls), the tag
   probe and victim scans running directly over the slab arrays, and the
   policy dispatch hoisted to engine-build time (the caller binds
   [access_lru]/[access_fifo]/[access_random] once).

   Bit-identity contract: state writes, RNG draw order and outcome
   construction exactly match the generic path — [test_kernels] replays
   random workloads against both. The hit path allocates nothing. *)

open Cachesec_stats

(* Shared straight-line pieces; top-level with all state as arguments so
   the non-flambda compiler emits no closures. *)

let[@inline] tick (b : Backing.t) =
  let seq = b.Backing.seq + 1 in
  b.Backing.seq <- seq;
  seq

let[@inline] set_of (b : Backing.t) addr =
  if b.Backing.set_mask >= 0 then addr land b.Backing.set_mask
  else addr mod b.Backing.sets

(* Fill [way] with [addr] and build the filled outcome (identical to the
   generic miss tail). *)
let fill_outcome (s : Slab.t) way ~pid ~addr ~seq =
  let evicted = Slab.victim s way in
  Slab.fill s way ~tag:addr ~owner:pid ~seq;
  Outcome.fill ~fetched:addr ~evicted

let access_lru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_fifo (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_random (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng s.Slab.ways
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_mru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* LFU/MFU: the hit path carries one extra int store (the frequency
   bump [Policy.touch] does on the generic path); the victim scan runs
   over the frequency slab with the same first-occurrence tie-break as
   every other scan. *)

let access_lfu (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_mfu (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let seq = tick b in
  let base = set_of b addr * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      fill_outcome s way ~pid ~addr ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* Tree-PLRU: the tree word is re-pointed on every hit AND after every
   fill ([Policy.touch]/[Policy.filled] on the generic path). The
   non-power-of-two fallback mirrors [Policy.victim_in]'s LRU order so
   the two paths stay bit-identical on any geometry. *)

let access_plru (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = tick b in
  let set = set_of b addr in
  let w = s.Slab.ways in
  let base = set * w in
  let stop = base + w in
  let i = Slab.scan_tag tags addr base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Policy.plru_touch s i;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else if Policy.plru_tree_capable w then
          base + Policy.plru_walk (Array.unsafe_get s.Slab.tree set) w 1
        else
          let last_use = s.Slab.last_use in
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      let o = fill_outcome s way ~pid ~addr ~seq in
      Policy.plru_touch s way;
      o
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* --- batched run kernels ---------------------------------------------- *)

(* One straight-line loop per policy over a packed address run: the
   scalar kernel body with the per-access costs hoisted — the counters
   cells resolved once per run (the pid is constant across a trace), the
   sequence counter kept in a local and written back once, and the
   [Outcome.t] materialized only in [Trace] mode ([Fill]/[Count] bump
   the cells field-wise and never call [Slab.victim], so the miss path
   stops allocating). Bit-identity contract with [len] scalar accesses:
   same state writes, same RNG draw order, same counters (differential
   batched-vs-scalar fuzz in test_kernels; attack golden digests). *)

(* Hit epilogue shared by every batched kernel (and [Kernel_pl]/
   [Kernel_rp]/[Kernel_newcache]): counters plus per-mode accumulation.
   [k] indexes the Trace writeback slot. *)
let finish_hit g p (mode : Kernel.mode) k =
  Counters.cell_hit g;
  Counters.cell_hit p;
  match mode with
  | Kernel.Fill -> ()
  | Kernel.Count c -> Kernel.count_hit c
  | Kernel.Trace out -> Array.unsafe_set out k Outcome.hit

(* Fill-miss epilogue (the [fill_outcome] tail): Trace builds the exact
   scalar outcome; Fill/Count test way validity directly instead of
   allocating [Slab.victim]'s [(pid, tag) option]. *)
let finish_miss_fill (s : Slab.t) way ~pid ~addr ~seq g p (mode : Kernel.mode)
    k =
  match mode with
  | Kernel.Trace out ->
    let o = fill_outcome s way ~pid ~addr ~seq in
    Counters.cell_record g o;
    Counters.cell_record p o;
    Array.unsafe_set out k o
  | Kernel.Fill | Kernel.Count _ ->
    let evictions = if Array.unsafe_get s.Slab.tags way >= 0 then 1 else 0 in
    Slab.fill s way ~tag:addr ~owner:pid ~seq;
    Counters.cell_miss_cached g ~evictions;
    Counters.cell_miss_cached p ~evictions;
    (match mode with Kernel.Count c -> Kernel.count_miss c | _ -> ())

let run_lru (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_fifo (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_random (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng ways
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_mru (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let last_use = s.Slab.last_use in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set last_use i seq;
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_lfu (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_min freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_mfu (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let freq = s.Slab.freq in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let base = set_of b addr * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Array.unsafe_set freq i (Array.unsafe_get freq i + 1);
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          Slab.scan_max freq (base + 1) stop base (Array.unsafe_get freq base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_plru (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let set = set_of b addr in
    let base = set * ways in
    let stop = base + ways in
    let i = Slab.scan_tag tags addr base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Policy.plru_touch s i;
      finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else if Policy.plru_tree_capable ways then
          base + Policy.plru_walk (Array.unsafe_get s.Slab.tree set) ways 1
        else
          let last_use = s.Slab.last_use in
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      finish_miss_fill s way ~pid ~addr ~seq g p mode k;
      Policy.plru_touch s way
    end
  done;
  b.Backing.seq <- seq0 + len
