(** RP cache mapping state + monomorphized per-policy access kernels.

    The per-pid permutation tables (with their one-entry memo) are owned
    here so the generic [Rp.access] path and the kernels below share one
    record — a private memo in either path could go stale across
    [set_identity]. Bit-identical to the generic path; selected by
    [Rp.engine] with [~kernel:Auto]. *)

type map = {
  tables : (int, int array) Hashtbl.t;
  mutable memo_pid : int;
  mutable memo_tbl : int array;
}

val create_map : unit -> map

val table_of : map -> sets:int -> int -> int array
(** The pid's permutation table, created as the identity on first use.
    The returned array is the live table (not a copy). *)

val set_identity : map -> sets:int -> pid:int -> unit
(** Reset the pid's table to the identity and drop the memo. *)

val swap_mapping : map -> sets:int -> int -> logical:int -> target_set:int -> unit
(** Exchange the pid's mappings of [logical] and (the logical index
    currently mapped to) [target_set], keeping the table a bijection. *)

val access_lru : map -> Backing.t -> pid:int -> int -> Outcome.t
val access_fifo : map -> Backing.t -> pid:int -> int -> Outcome.t
val access_random : map -> Backing.t -> pid:int -> int -> Outcome.t

(** {2 Batched trace replay} — see {!Kernel_sa}. External misses draw
    set then way in the scalar order; the permutation table is hoisted
    once per run (mutated in place, never replaced mid-replay). *)

val run_lru :
  map -> Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_fifo :
  map -> Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_random :
  map -> Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit
