(** Access-kernel selection and batched trace replay.

    Engines with monomorphized access loops ({!Kernel_sa}, {!Kernel_pl},
    {!Kernel_rp}, {!Kernel_newcache}) take a [selection] at
    engine-build time: [Auto] binds the per-(architecture, policy)
    scalar kernel AND its batched [run] twin once, [Generic] keeps the
    policy-dispatching path — the differential-testing oracle — and
    [Scalar] binds the monomorphized scalar kernel but leaves the
    batched entry point on the scalar-looping fallback (the exact
    pre-batching cost model, recorded as the bench "scalar" rows). All
    paths must stay bit-identical in state, RNG draw order and
    outcomes; the selection is observable only as throughput and as the
    [Engine.t.kernel] / [Engine.t.run_kernel] labels. *)

open Cachesec_stats

type selection = Auto | Generic | Scalar

val generic : string
(** ["generic"] — the label of the policy-dispatching fallback path. *)

val scalar : string
(** ["scalar"] — the [Engine.t.run_kernel] label of the [Scalar]
    selection: monomorphized scalar access looped by the generic run
    wrapper. *)

val selection_to_string : selection -> string
val selection_of_string : string -> selection option

(** {2 Kernel registry}

    One table per engine, keyed by {!Policy.id}. [table ~prefix entries]
    labels each kernel [prefix ^ "-" ^ Policy.to_string p] (the
    [Engine.t.kernel] string); {!pick} returns the kernel for a policy,
    or [None] when the engine has no monomorphized loop for it — the
    caller then uses the generic path. *)

val table : prefix:string -> (Policy.t * 'k) list -> (string * 'k) option array
val pick : (string * 'k) option array -> Policy.t -> (string * 'k) option

(** {2 Batched trace replay}

    A batched [run] kernel replays [len] packed addresses
    [trace.(pos) .. trace.(pos + len - 1)] for one pid in a straight-line
    loop with the engine fields hoisted into locals, accumulating per
    [mode]. State writes, RNG draw order and counters are bit-identical
    to [len] scalar accesses (differential-fuzzed and pinned by the
    golden digests). *)

(** Caller-owned accumulation state for a [Count] run. The counter (and
    the [Count] value wrapping it) is preallocated once per plan/victim;
    [bin], [sigma] and [noise] are re-pointed between runs so the trial
    loops allocate nothing. At [sigma = 0.] no RNG is consumed,
    classified = true misses and the time sum is exact; at [sigma > 0.]
    one gaussian is drawn from [noise] per access in access order — the
    same stream the scalar [Timing.observe_outcome] loop consumes. *)
type counter = {
  true_misses : int array;
  classified : int array;
  times : float array;
  mutable bin : int;  (** scratch index the counts fold into *)
  mutable sigma : float;  (** observation noise; 0. = RNG-neutral *)
  mutable noise : Rng.t;  (** observation stream (only read at sigma > 0) *)
}

type mode =
  | Fill  (** outcomes discarded (prime/evict/warm phases) *)
  | Count of counter  (** fold miss counts; no [Outcome.t] is ever built *)
  | Trace of Outcome.t array
      (** full outcome writeback at indices [0 .. len-1] (compatibility) *)

val make_counter : bins:int -> counter
(** Fresh counter with [bins]-slot scratch arrays, [bin = 0],
    [sigma = 0.] and a placeholder noise stream. *)

val count_hit : counter -> unit
val count_miss : counter -> unit
(** Per-access Count accumulation — one definition shared by the batched
    kernels and {!run_of_scalar} so both paths classify identically. *)

val run_of_scalar :
  (pid:int -> int -> Outcome.t) ->
  pid:int ->
  trace:int array ->
  pos:int ->
  len:int ->
  mode ->
  unit
(** Loop the scalar access closure over the run: the generic
    [Engine.t.access_run] fallback, the [Scalar] selection's
    pre-batching cost model, and the differential oracle the batched
    kernels are fuzzed against. *)
