(** Access-kernel selection.

    Engines with monomorphized access loops ({!Kernel_sa}, {!Kernel_pl},
    {!Kernel_rp}, {!Kernel_newcache}) take a [selection] at
    engine-build time: [Auto] binds the per-(architecture, policy)
    kernel once, [Generic] keeps the policy-dispatching path — the
    differential-testing oracle. Both paths must stay bit-identical in
    state, RNG draw order and outcomes; the selection is observable only
    as throughput and as the [Engine.t.kernel] label. *)

type selection = Auto | Generic

val generic : string
(** ["generic"] — the [Engine.t.kernel] label of the fallback path. *)

val selection_to_string : selection -> string
val selection_of_string : string -> selection option

(** {2 Kernel registry}

    One table per engine, keyed by {!Policy.id}. [table ~prefix entries]
    labels each kernel [prefix ^ "-" ^ Policy.to_string p] (the
    [Engine.t.kernel] string); {!pick} returns the kernel for a policy,
    or [None] when the engine has no monomorphized loop for it — the
    caller then uses the generic path. *)

val table : prefix:string -> (Policy.t * 'k) list -> (string * 'k) option array
val pick : (string * 'k) option array -> Policy.t -> (string * 'k) option
