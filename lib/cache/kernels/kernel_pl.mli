(** Monomorphized per-policy access kernels for the PL cache.
    Bit-identical to the generic [Pl.access] path; selected by
    [Pl.engine] with [~kernel:Auto]. Locking stays in [Pl]. *)

val access_lru : Backing.t -> pid:int -> int -> Outcome.t
val access_fifo : Backing.t -> pid:int -> int -> Outcome.t
val access_random : Backing.t -> pid:int -> int -> Outcome.t

(** {2 Batched trace replay} — see {!Kernel_sa}. The miss tail adds the
    PL read-through check in front of the shared fill epilogue. *)

val run_lru :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_fifo :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_random :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit
