(** Monomorphized per-policy access kernels for the PL cache.
    Bit-identical to the generic [Pl.access] path; selected by
    [Pl.engine] with [~kernel:Auto]. Locking stays in [Pl]. *)

val access_lru : Backing.t -> pid:int -> int -> Outcome.t
val access_fifo : Backing.t -> pid:int -> int -> Outcome.t
val access_random : Backing.t -> pid:int -> int -> Outcome.t
