(* RP cache: shared mapping state + monomorphized per-policy access
   loops.

   The per-pid permutation tables live here (not in [Rp]) because both
   the generic [Rp.access] path and the kernels below read and mutate
   them — in particular the single-entry (pid -> table) memo: if each
   path kept its own memo, [Rp.set_identity] could invalidate one and
   leave the other serving a stale table. [Rp.t] embeds a [map] and
   delegates.

   Bit-identity contract with [Rp.access]: same probe, same victim
   choice, same internal/external split, same RNG draw order (victim
   draw, then set draw + way draw on external misses). *)

open Cachesec_stats

type map = {
  tables : (int, int array) Hashtbl.t;
  (* Last (pid, table) pair served by [table_of]: attack loops access in
     long same-pid runs (a 512-line prime, a 160-lookup encryption), so
     the memo turns the per-access table lookup into one int compare.
     Invalidated by [set_identity]. *)
  mutable memo_pid : int;
  mutable memo_tbl : int array;
}

let create_map () =
  { tables = Hashtbl.create 8; memo_pid = min_int; memo_tbl = [||] }

(* [Hashtbl.find] + preallocated [Not_found] rather than [find_opt]:
   this runs once per access and the option wrapper would put a
   minor-heap allocation on the hit path. *)
let table_of m ~sets pid =
  if pid = m.memo_pid then m.memo_tbl
  else begin
    let tbl =
      match Hashtbl.find m.tables pid with
      | tbl -> tbl
      | exception Not_found ->
        let tbl = Array.init sets Fun.id in
        Hashtbl.replace m.tables pid tbl;
        tbl
    in
    m.memo_pid <- pid;
    m.memo_tbl <- tbl;
    tbl
  end

let set_identity m ~sets ~pid =
  Hashtbl.replace m.tables pid (Array.init sets Fun.id);
  m.memo_pid <- min_int

(* Top-level downward scan (all state as arguments): the table is a
   bijection, so first-from-the-end = last-from-the-start, without
   allocating an iteri closure per external miss. *)
let rec last_mapped (tbl : int array) target i =
  if i < 0 then -1
  else if tbl.(i) = target then i
  else last_mapped tbl target (i - 1)

let swap_mapping m ~sets pid ~logical ~target_set =
  let tbl = table_of m ~sets pid in
  (* Find the logical index currently mapped to [target_set] and exchange
     it with [logical] so the table stays a bijection. *)
  let other =
    match last_mapped tbl target_set (Array.length tbl - 1) with
    | -1 -> logical
    | i -> i
  in
  let tmp = tbl.(logical) in
  tbl.(logical) <- tbl.(other);
  tbl.(other) <- tmp

(* Miss tail shared by the three policies: internal miss replaces in
   place; external miss (victim way owned by another process) fills a
   random line of a random set and swaps the accessor's mappings. *)
let miss_tail m (b : Backing.t) (s : Slab.t) way ~pid ~addr ~logical ~seq =
  if Array.unsafe_get s.Slab.tags way < 0
     || Array.unsafe_get s.Slab.owners way = pid
  then begin
    let evicted = Slab.victim s way in
    Slab.fill s way ~tag:addr ~owner:pid ~seq;
    Outcome.fill ~fetched:addr ~evicted
  end
  else begin
    let s' = Rng.int b.Backing.rng b.Backing.sets in
    let way' = (s' * s.Slab.ways) + Rng.int b.Backing.rng s.Slab.ways in
    let evicted = Slab.victim s way' in
    Slab.fill s way' ~tag:addr ~owner:pid ~seq;
    swap_mapping m ~sets:b.Backing.sets pid ~logical ~target_set:s';
    Outcome.fill ~fetched:addr ~evicted
  end

let access_lru m (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = Kernel_sa.tick b in
  let logical = Kernel_sa.set_of b addr in
  let base = (table_of m ~sets:b.Backing.sets pid).(logical) * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let last_use = s.Slab.last_use in
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      miss_tail m b s way ~pid ~addr ~logical ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_fifo m (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = Kernel_sa.tick b in
  let logical = Kernel_sa.set_of b addr in
  let base = (table_of m ~sets:b.Backing.sets pid).(logical) * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      miss_tail m b s way ~pid ~addr ~logical ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

let access_random m (b : Backing.t) ~pid addr =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let seq = Kernel_sa.tick b in
  let logical = Kernel_sa.set_of b addr in
  let base = (table_of m ~sets:b.Backing.sets pid).(logical) * s.Slab.ways in
  let stop = base + s.Slab.ways in
  let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
  let outcome =
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Outcome.hit
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng s.Slab.ways
      in
      miss_tail m b s way ~pid ~addr ~logical ~seq
    end
  in
  Counters.record b.Backing.counters ~pid outcome;
  outcome

(* --- batched run kernels ---------------------------------------------- *)

(* Batched miss tail: internal misses reuse the SA fill epilogue in
   place; external misses draw set + way (same order as [miss_tail]),
   fill there and swap the accessor's mappings. The swap lands after the
   counter bumps instead of before — disjoint state, identical result. *)
let finish_miss_rp m (b : Backing.t) (s : Slab.t) way ~pid ~addr ~logical ~seq
    g p (mode : Kernel.mode) k =
  if Array.unsafe_get s.Slab.tags way < 0
     || Array.unsafe_get s.Slab.owners way = pid
  then Kernel_sa.finish_miss_fill s way ~pid ~addr ~seq g p mode k
  else begin
    let s' = Rng.int b.Backing.rng b.Backing.sets in
    let way' = (s' * s.Slab.ways) + Rng.int b.Backing.rng s.Slab.ways in
    Kernel_sa.finish_miss_fill s way' ~pid ~addr ~seq g p mode k;
    swap_mapping m ~sets:b.Backing.sets pid ~logical ~target_set:s'
  end

(* The permutation table is hoisted once per run: [swap_mapping] mutates
   it in place (never replaces it) and [set_identity] cannot run
   mid-replay, so the per-access [table_of] memo probe collapses to an
   array read. *)

let run_lru m (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let tbl = table_of m ~sets:b.Backing.sets pid in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let logical = Kernel_sa.set_of b addr in
    let base = Array.unsafe_get tbl logical * ways in
    let stop = base + ways in
    let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let last_use = s.Slab.last_use in
          Slab.scan_min last_use (base + 1) stop base
            (Array.unsafe_get last_use base)
      in
      finish_miss_rp m b s way ~pid ~addr ~logical ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_fifo m (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let tbl = table_of m ~sets:b.Backing.sets pid in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let logical = Kernel_sa.set_of b addr in
    let base = Array.unsafe_get tbl logical * ways in
    let stop = base + ways in
    let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv
        else
          let fill_seq = s.Slab.fill_seq in
          Slab.scan_min fill_seq (base + 1) stop base
            (Array.unsafe_get fill_seq base)
      in
      finish_miss_rp m b s way ~pid ~addr ~logical ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len

let run_random m (b : Backing.t) ~pid ~trace ~pos ~len (mode : Kernel.mode) =
  let s = b.Backing.slab in
  let tags = s.Slab.tags in
  let ways = s.Slab.ways in
  let tbl = table_of m ~sets:b.Backing.sets pid in
  let g = Counters.global_cell b.Backing.counters in
  let p = Counters.cell b.Backing.counters pid in
  let seq0 = b.Backing.seq in
  for k = 0 to len - 1 do
    let addr = Array.unsafe_get trace (pos + k) in
    let seq = seq0 + k + 1 in
    let logical = Kernel_sa.set_of b addr in
    let base = Array.unsafe_get tbl logical * ways in
    let stop = base + ways in
    let i = Slab.scan_tag_owned tags s.Slab.owners addr pid base stop in
    if i >= 0 then begin
      Array.unsafe_set s.Slab.last_use i seq;
      Kernel_sa.finish_hit g p mode k
    end
    else begin
      let inv = Slab.scan_invalid tags base stop in
      let way =
        if inv >= 0 then inv else base + Rng.int b.Backing.rng ways
      in
      finish_miss_rp m b s way ~pid ~addr ~logical ~seq g p mode k
    end
  done;
  b.Backing.seq <- seq0 + len
