(** Monomorphized per-policy access kernels for the conventional
    set-associative cache. Bit-identical to the generic [Sa.access]
    path (state writes, RNG draws, outcomes); selected by [Sa.engine]
    with [~kernel:Auto]. The hit path allocates nothing. *)

val tick : Backing.t -> int
(** Inlined [Backing.tick] (shared by the other kernels). *)

val set_of : Backing.t -> int -> int
(** Inlined [Backing.set_of] (shared by the other kernels). *)

val access_lru : Backing.t -> pid:int -> int -> Outcome.t
val access_fifo : Backing.t -> pid:int -> int -> Outcome.t
val access_random : Backing.t -> pid:int -> int -> Outcome.t
val access_mru : Backing.t -> pid:int -> int -> Outcome.t
val access_lfu : Backing.t -> pid:int -> int -> Outcome.t
val access_mfu : Backing.t -> pid:int -> int -> Outcome.t
val access_plru : Backing.t -> pid:int -> int -> Outcome.t
