(** Monomorphized per-policy access kernels for the conventional
    set-associative cache. Bit-identical to the generic [Sa.access]
    path (state writes, RNG draws, outcomes); selected by [Sa.engine]
    with [~kernel:Auto]. The hit path allocates nothing. *)

val tick : Backing.t -> int
(** Inlined [Backing.tick] (shared by the other kernels). *)

val set_of : Backing.t -> int -> int
(** Inlined [Backing.set_of] (shared by the other kernels). *)

val access_lru : Backing.t -> pid:int -> int -> Outcome.t
val access_fifo : Backing.t -> pid:int -> int -> Outcome.t
val access_random : Backing.t -> pid:int -> int -> Outcome.t
val access_mru : Backing.t -> pid:int -> int -> Outcome.t
val access_lfu : Backing.t -> pid:int -> int -> Outcome.t
val access_mfu : Backing.t -> pid:int -> int -> Outcome.t
val access_plru : Backing.t -> pid:int -> int -> Outcome.t

(** {2 Batched trace replay}

    Per-policy [run] kernels replaying [len] packed addresses for one
    pid, bit-identical to the same accesses through the scalar kernels
    (state writes, RNG draws, counters); [Fill]/[Count] modes never
    build an [Outcome.t]. *)

val finish_hit : Counters.cell -> Counters.cell -> Kernel.mode -> int -> unit
(** Shared hit epilogue: bump both cells, then accumulate per mode
    (Trace writes [Outcome.hit] at the given index). *)

val finish_miss_fill :
  Slab.t ->
  int ->
  pid:int ->
  addr:int ->
  seq:int ->
  Counters.cell ->
  Counters.cell ->
  Kernel.mode ->
  int ->
  unit
(** Shared fill-miss epilogue at a chosen way: Trace replays the scalar
    [Slab.victim]/[Outcome.fill] tail; Fill/Count fill without
    allocating and count the displaced valid line directly. *)

val run_lru :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_fifo :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_random :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_mru :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_lfu :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_mfu :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit

val run_plru :
  Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit
