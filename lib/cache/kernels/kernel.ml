open Cachesec_stats

type selection = Auto | Generic | Scalar

let generic = "generic"
let scalar = "scalar"

let selection_to_string = function
  | Auto -> "auto"
  | Generic -> "generic"
  | Scalar -> "scalar"

let selection_of_string = function
  | "auto" -> Some Auto
  | "generic" -> Some Generic
  | "scalar" -> Some Scalar
  | _ -> None

(* Table-driven kernel registry, keyed by [Policy.id]: each engine
   declares its monomorphized kernels once and [pick] replaces the old
   per-engine [Kernel.Auto, Replacement.Lru -> ...] match ladders. A
   policy without an entry falls back to the generic path — adding a
   policy never breaks an engine, it just runs generic until someone
   monomorphizes it. *)

let table ~prefix entries =
  let t = Array.make Policy.count None in
  List.iter
    (fun (p, k) -> t.(Policy.id p) <- Some (prefix ^ "-" ^ Policy.to_string p, k))
    entries;
  t

let pick t (policy : Policy.t) = t.(Policy.id policy)

(* --- batched trace replay --------------------------------------------- *)

(* Accumulation state for a [Count] run: true/classified miss counts and
   observed-time sums folded into caller-owned scratch arrays at [bin].
   The caller preallocates one counter (and one [Count] mode value
   wrapping it) per plan/victim and re-points [bin]/[sigma]/[noise]
   between runs, so the trial loops stay allocation-free. At
   [sigma = 0.] no RNG is consumed and classified = true (the exact
   [Timing.observe]/[Timing.classify] collapse the scalar probe loop
   relies on); at [sigma > 0.] one gaussian is drawn from [noise] per
   access, in access order — the same stream the scalar
   [Timing.observe_outcome] loop consumes. *)
type counter = {
  true_misses : int array;
  classified : int array;
  times : float array;
  mutable bin : int;
  mutable sigma : float;
  mutable noise : Rng.t;
}

type mode =
  | Fill  (** outcomes discarded (prime/evict/warm phases) *)
  | Count of counter  (** fold miss counts; no [Outcome.t] is ever built *)
  | Trace of Outcome.t array
      (** full outcome writeback at indices [0 .. len-1] (compatibility) *)

let make_counter ~bins =
  if bins <= 0 then invalid_arg "Kernel.make_counter: bins must be positive";
  {
    true_misses = Array.make bins 0;
    classified = Array.make bins 0;
    times = Array.make bins 0.;
    bin = 0;
    sigma = 0.;
    noise = Rng.create ~seed:0;
  }

(* Per-access Count accumulation, shared by every batched kernel AND the
   scalar-looping fallback so the classification arithmetic has exactly
   one definition. [Timing.observe] keeps the draw semantics (mu = the
   event's base time) in one place. *)
let count_hit (c : counter) =
  if c.sigma <> 0. then begin
    let tm = Timing.observe c.noise ~sigma:c.sigma Outcome.Hit in
    (match Timing.classify tm with
    | Outcome.Miss -> c.classified.(c.bin) <- c.classified.(c.bin) + 1
    | Outcome.Hit -> ());
    c.times.(c.bin) <- c.times.(c.bin) +. tm
  end

let count_miss (c : counter) =
  c.true_misses.(c.bin) <- c.true_misses.(c.bin) + 1;
  if c.sigma = 0. then begin
    c.classified.(c.bin) <- c.classified.(c.bin) + 1;
    c.times.(c.bin) <- c.times.(c.bin) +. Timing.miss_time
  end
  else begin
    let tm = Timing.observe c.noise ~sigma:c.sigma Outcome.Miss in
    (match Timing.classify tm with
    | Outcome.Miss -> c.classified.(c.bin) <- c.classified.(c.bin) + 1
    | Outcome.Hit -> ());
    c.times.(c.bin) <- c.times.(c.bin) +. tm
  end

(* Generic [access_run]: loop the scalar access closure. Serves three
   roles — the fallback for engines without batched kernels (sp, nomo,
   rf, re, wrappers), the [Scalar] selection's pre-batching cost model
   (monomorphized scalar access under the same loop), and the
   differential oracle the batched kernels are fuzzed against. *)
let run_of_scalar (access : pid:int -> int -> Outcome.t) ~pid ~trace ~pos ~len
    mode =
  match mode with
  | Fill ->
    for k = 0 to len - 1 do
      ignore (access ~pid (Array.unsafe_get trace (pos + k)))
    done
  | Count c ->
    for k = 0 to len - 1 do
      let o = access ~pid (Array.unsafe_get trace (pos + k)) in
      if Outcome.is_miss o then count_miss c else count_hit c
    done
  | Trace out ->
    for k = 0 to len - 1 do
      Array.unsafe_set out k (access ~pid (Array.unsafe_get trace (pos + k)))
    done
