type selection = Auto | Generic

let generic = "generic"
let selection_to_string = function Auto -> "auto" | Generic -> "generic"

let selection_of_string = function
  | "auto" -> Some Auto
  | "generic" -> Some Generic
  | _ -> None

(* Table-driven kernel registry, keyed by [Policy.id]: each engine
   declares its monomorphized kernels once and [pick] replaces the old
   per-engine [Kernel.Auto, Replacement.Lru -> ...] match ladders. A
   policy without an entry falls back to the generic path — adding a
   policy never breaks an engine, it just runs generic until someone
   monomorphizes it. *)

let table ~prefix entries =
  let t = Array.make Policy.count None in
  List.iter
    (fun (p, k) -> t.(Policy.id p) <- Some (prefix ^ "-" ^ Policy.to_string p, k))
    entries;
  t

let pick t (policy : Policy.t) = t.(Policy.id policy)
