type selection = Auto | Generic

let generic = "generic"
let selection_to_string = function Auto -> "auto" | Generic -> "generic"

let selection_of_string = function
  | "auto" -> Some Auto
  | "generic" -> Some Generic
  | _ -> None
