(** Newcache CAM state + monomorphized access kernel.

    The packed-key CAM index is owned here so the generic
    [Newcache.access] path and the kernel share one table kept in
    lock-step with the slab. Bit-identical to the generic path; selected
    by [Newcache.engine] with [~kernel:Auto]. *)

type cam = {
  table : (int, int) Hashtbl.t;
      (** packed (context, logical index) key -> physical line index *)
  lbits : int;
  logical_lines : int;
}

val create_cam : logical_lines:int -> cam

val cam_key : cam -> pid:int -> int -> int
(** [cam_key c ~pid lindex] — context in the high bits, index below. *)

val cam_find : cam -> Slab.t -> pid:int -> lindex:int -> int
(** Physical index of the valid line holding (context, logical index),
    or -1. Allocation-free. *)

val cam_remove_entry_of : cam -> Slab.t -> int -> unit
(** Drop the CAM entry of physical line [i] if it is valid. *)

val access : cam -> Backing.t -> pid:int -> int -> Outcome.t

val run :
  cam -> Backing.t -> pid:int -> trace:int array -> pos:int -> len:int ->
  Kernel.mode -> unit
(** Batched trace replay — see {!Kernel_sa}. Fill/Count count the
    conflict invalidation and random-victim displacement without
    allocating either [Slab.victim] option. *)
