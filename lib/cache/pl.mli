(** Partition-Locked (PL) cache.

    A set-associative cache whose lines carry a protection bit. The
    intended use (paper Section 2.2.1) is to prefetch-and-lock all
    security-critical lines before the security-critical operation. On a
    miss, the replacement victim is chosen as usual over all ways (which is
    why the paper's Table 3 keeps p2 = 1/W for PL); if the chosen victim is
    protected, the access is served read-through — the protected line is
    not evicted and the accessor's line is not cached (p3 = 0). *)

type t

val create :
  ?config:Config.t ->
  ?policy:Replacement.policy ->
  rng:Cachesec_stats.Rng.t ->
  unit ->
  t

val config : t -> Config.t
val access : t -> pid:int -> int -> Outcome.t

val lock_line : t -> pid:int -> int -> bool
(** Prefetch (if absent) and protect a line. The locking fill prefers
    invalid ways, then unlocked ways by policy; returns [false] if every
    way of the set is already locked by another line. Locking an already
    cached line just sets its bit. *)

val unlock_line : t -> pid:int -> int -> bool
(** Clear the protection bit; only the locking owner may unlock. Returns
    whether a bit was cleared. *)

val locked_lines : t -> int list
(** Memory lines currently locked, ascending. *)

val peek : t -> pid:int -> int -> bool
val flush_line : t -> pid:int -> int -> bool
(** Flush refuses to remove a line locked by a different pid (returns
    [false]), mirroring that eviction of protected lines is impossible. *)

val flush_all : t -> unit

val engine : ?kernel:Kernel.selection -> t -> Engine.t
(** [?kernel] (default [Auto]) binds the per-policy monomorphized access
    kernel from {!Kernel_pl}; [Generic] keeps the dispatching fallback.
    Bit-identical either way. *)
