type event = {
  seq : int;
  pid : int;
  line : int;
  hit : bool;
  kind : [ `Access | `Flush ];
}

type t = { mutable events : event list; mutable n : int }

let record t ~pid ~line ~hit ~kind =
  t.n <- t.n + 1;
  t.events <- { seq = t.n; pid; line; hit; kind } :: t.events

let wrap (e : Engine.t) =
  let t = { events = []; n = 0 } in
  let logged_access ~pid line =
    let o = e.Engine.access ~pid line in
    record t ~pid ~line ~hit:(Outcome.is_hit o) ~kind:`Access;
    o
  in
  let wrapped =
    {
      e with
      Engine.name = e.Engine.name ^ "+recorder";
      access = logged_access;
      (* Inheriting the wrapped engine's batched path would bypass
         recording — loop the logged access instead. *)
      access_run = Kernel.run_of_scalar logged_access;
      run_kernel = Kernel.generic;
      flush_line =
        (fun ~pid line ->
          let removed = e.Engine.flush_line ~pid line in
          record t ~pid ~line ~hit:removed ~kind:`Flush;
          removed);
    }
  in
  (t, wrapped)

let events t = List.rev t.events
let count t = t.n

let clear t =
  t.events <- [];
  t.n <- 0

let lines_touched t ~pid =
  events t
  |> List.filter_map (fun ev ->
         if ev.pid = pid && ev.kind = `Access then Some ev.line else None)
  |> List.sort_uniq Int.compare

let csv_rows t =
  List.map
    (fun ev ->
      [
        string_of_int ev.seq;
        string_of_int ev.pid;
        string_of_int ev.line;
        string_of_bool ev.hit;
        (match ev.kind with `Access -> "access" | `Flush -> "flush");
      ])
    (events t)
