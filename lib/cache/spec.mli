(** Plain-data descriptors of the nine evaluated cache architectures.

    A [Spec.t] carries everything needed to instantiate an architecture
    except the scenario bindings (which pid is the victim, which memory
    lines are security-critical, the RNG); {!Factory.build} supplies
    those. The [paper_*] values reproduce the paper's Table 4. *)

type t =
  | Sa of { ways : int; policy : Replacement.policy }
  | Sp of { ways : int; policy : Replacement.policy; partitions : int }
  | Pl of { ways : int; policy : Replacement.policy }
  | Nomo of { ways : int; policy : Replacement.policy; reserved : int }
  | Newcache of { extra_bits : int }
  | Rp of { ways : int; policy : Replacement.policy }
  | Rf of { ways : int; policy : Replacement.policy; back : int; fwd : int }
      (** [back]/[fwd]: the {e victim's} random-fill window *)
  | Re of { ways : int; policy : Replacement.policy; interval : int }
  | Noisy of { ways : int; policy : Replacement.policy; sigma : float }

val paper_sa : t  (** 8-way SA, random replacement *)

val paper_sp : t  (** 8-way, 2 static partitions *)

val paper_pl : t  (** 8-way PL *)

val paper_nomo : t  (** 8-way, 1/4 ways reserved *)

val paper_newcache : t  (** 512 physical lines, 4 extra index bits *)

val paper_rp : t  (** 8-way RP *)

val paper_rf : t  (** 8-way RF, window Wa = Wb = 64 *)

val paper_re : t  (** direct-mapped, 10% random eviction *)

val paper_noisy : t  (** 8-way, noise sigma = 1 *)

val all_paper : t list
(** The nine Table 4 rows, in the paper's order. *)

val name : t -> string
(** Short stable identifier: "sa", "sp", "pl", "nomo", "newcache", "rp",
    "rf", "re", "noisy". *)

val display_name : t -> string
(** The paper's row label, e.g. "SA Cache". *)

val of_name : string -> t option
(** Inverse of {!name} over the paper configurations. *)

val with_policy : t -> Replacement.policy -> t
(** The same architecture under a different replacement policy. Identity
    on {!Newcache}, whose SecRAND replacement is part of the design. *)

val policy_of : t -> Replacement.policy option
(** The spec's replacement policy; [None] for {!Newcache}. *)

val pp : Format.formatter -> t -> unit
