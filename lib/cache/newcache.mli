(** Newcache (Wang & Lee 2008; Liu et al. 2016).

    Memory maps into an {e ephemeral logical cache}: a per-process
    direct-mapped cache of [lines * 2^extra_bits] logical lines; logical
    lines map to the physical array fully associatively. Our model keeps,
    per physical line, the triple (context, logical index, tag):

    - {e hit}: some physical line matches all three;
    - {e index miss} (no line matches context+index): the incoming line
      replaces a uniformly random physical line — the paper's p2 = 1/N;
    - {e tag miss} (context+index match but tag differs): the conflicting
      line is invalidated and the incoming line replaces a uniformly
      random physical line (the randomized arm of the SecRAND policy; we
      apply it uniformly, a simplification documented in DESIGN.md).

    The per-context mapping is also what zeroes p4 for flush-and-reload:
    a line fetched by the victim's context can never hit for the
    attacker's context, even at the same memory address. *)

type t

val create :
  ?config:Config.t -> ?extra_bits:int -> rng:Cachesec_stats.Rng.t -> unit -> t
(** [config] wants [ways = lines] conceptually, but only [lines] is used:
    the physical array is fully associative by construction. [extra_bits]
    defaults to 4 (logical cache 16x the physical size). *)

val config : t -> Config.t
val logical_lines : t -> int
val access : t -> pid:int -> int -> Outcome.t
val peek : t -> pid:int -> int -> bool
val flush_line : t -> pid:int -> int -> bool
(** Removes only the accessor's own context's copy (the PID feature means
    a pid cannot name another context's line). *)

val flush_all : t -> unit

val engine : ?kernel:Kernel.selection -> t -> Engine.t
(** [?kernel] (default [Auto]) binds the monomorphized access kernel
    from {!Kernel_newcache}; [Generic] keeps the fallback. Bit-identical
    either way. *)
