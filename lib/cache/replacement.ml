open Cachesec_stats

(* Compat shim: the policy type and its dispatch now live in {!Policy}
   (the registry every engine, kernel table and protocol speller
   consumes). This module re-exports the type so the historical
   [Replacement.Lru] spellings keep compiling, keeps the boxed
   [Line.t array] entry points for tests and tools that build small
   line arrays directly, and forwards the slab entry points to
   {!Policy} behind deprecation alerts. *)

type policy = Policy.t = Lru | Random | Fifo | Mru | Lfu | Mfu | Plru

let policy_to_string = Policy.to_string
let policy_of_string = Policy.of_string

(* --- boxed [Line.t array] paths (compat) ---------------------------
   Candidates are the contiguous index range [base, base + len). Only
   the policies whose state lives inside [Line.t] are supported here:
   Lru/Random/Fifo/Mru. The slab-state policies (Lfu/Mfu need the
   frequency slab, Plru the tree-bits slab) raise — refusing beats
   silently picking a different victim order. ----------------------- *)

let check lines ~base ~len =
  if len <= 0 then invalid_arg "Replacement.choose: no candidates";
  if base < 0 || base + len > Array.length lines then
    invalid_arg "Replacement.choose: candidate out of range"

let slab_only () =
  invalid_arg
    "Replacement.choose: policy state lives in Slab arrays (use \
     Policy.victim_in)"

(* The loops are top-level recursive functions with every free variable
   passed explicitly: without flambda a local [let rec] capturing
   [lines]/[stop] allocates its closure per call, defeating the whole
   point of the range API. *)
let rec scan_invalid (lines : Line.t array) i stop =
  if i >= stop then -1
  else if not lines.(i).Line.valid then i
  else scan_invalid lines (i + 1) stop

(* First invalid index in the range, or -1 (a fill never evicts while
   free space remains, matching every design in the paper). *)
let first_invalid lines ~base ~len = scan_invalid lines base (base + len)

let rec scan_min_last_use (lines : Line.t array) i stop best =
  if i >= stop then best
  else
    scan_min_last_use lines (i + 1) stop
      (if lines.(i).Line.last_use < lines.(best).Line.last_use then i else best)

let min_last_use (lines : Line.t array) ~base ~len =
  scan_min_last_use lines (base + 1) (base + len) base

let rec scan_max_last_use (lines : Line.t array) i stop best =
  if i >= stop then best
  else
    scan_max_last_use lines (i + 1) stop
      (if lines.(i).Line.last_use > lines.(best).Line.last_use then i else best)

let max_last_use (lines : Line.t array) ~base ~len =
  scan_max_last_use lines (base + 1) (base + len) base

let rec scan_min_fill_seq (lines : Line.t array) i stop best =
  if i >= stop then best
  else
    scan_min_fill_seq lines (i + 1) stop
      (if lines.(i).Line.fill_seq < lines.(best).Line.fill_seq then i else best)

let min_fill_seq (lines : Line.t array) ~base ~len =
  scan_min_fill_seq lines (base + 1) (base + len) base

let lru_victim lines ~base ~len =
  check lines ~base ~len;
  let i = first_invalid lines ~base ~len in
  if i >= 0 then i else min_last_use lines ~base ~len

let choose policy rng lines ~base ~len =
  check lines ~base ~len;
  let i = first_invalid lines ~base ~len in
  if i >= 0 then i
  else
    match policy with
    | Lru -> min_last_use lines ~base ~len
    | Fifo -> min_fill_seq lines ~base ~len
    | Random -> base + Rng.int rng len
    | Mru -> max_last_use lines ~base ~len
    | Lfu | Mfu | Plru -> slab_only ()

(* --- slab paths: forwarded to the {!Policy} registry --------------- *)

let choose_in policy rng s ~base ~len = Policy.victim_in policy rng s ~base ~len

let lru_victim_in (s : Slab.t) ~base ~len =
  if len <= 0 then invalid_arg "Replacement.lru_victim_in: no candidates";
  if base < 0 || base + len > s.Slab.n then
    invalid_arg "Replacement.lru_victim_in: candidate out of range";
  let i = Slab.first_invalid s ~base ~len in
  if i >= 0 then i else Slab.min_last_use s ~base ~len

let first_invalid_in (s : Slab.t) ~base ~len = Slab.first_invalid s ~base ~len

(* --- cold path: arbitrary (possibly non-contiguous) candidate sets,
   e.g. the unlocked ways of a PL set during [lock_line]. ----------- *)

let check_list lines candidates =
  if candidates = [] then invalid_arg "Replacement.choose: no candidates";
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length lines then
        invalid_arg "Replacement.choose: candidate out of range")
    candidates

let min_by key (lines : Line.t array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun best i -> if key lines.(i) < key lines.(best) then i else best)
      first rest

let max_by key (lines : Line.t array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun best i -> if key lines.(i) > key lines.(best) then i else best)
      first rest

let choose_among policy rng lines ~candidates =
  check_list lines candidates;
  match List.find_opt (fun i -> not lines.(i).Line.valid) candidates with
  | Some i -> i
  | None -> (
    match policy with
    | Lru -> min_by (fun (l : Line.t) -> l.last_use) lines candidates
    | Fifo -> min_by (fun (l : Line.t) -> l.fill_seq) lines candidates
    | Random -> List.nth candidates (Rng.int rng (List.length candidates))
    | Mru -> max_by (fun (l : Line.t) -> l.last_use) lines candidates
    | Lfu | Mfu | Plru -> slab_only ())

let choose_among_in policy rng s ~candidates =
  Policy.victim_among_in policy rng s ~candidates
