open Cachesec_stats

type policy = Lru | Random | Fifo

let policy_to_string = function Lru -> "lru" | Random -> "random" | Fifo -> "fifo"

let policy_of_string = function
  | "lru" -> Some Lru
  | "random" -> Some Random
  | "fifo" -> Some Fifo
  | _ -> None

(* --- hot path: candidates are the contiguous index range
   [base, base + len) (one set, or a contiguous slice of one for Nomo's
   reserved/shared split). No lists, no options, no closures: every
   scan is a bounded int loop and the only allocation anywhere below is
   [invalid_arg]'s on the error path. ------------------------------- *)

let check lines ~base ~len =
  if len <= 0 then invalid_arg "Replacement.choose: no candidates";
  if base < 0 || base + len > Array.length lines then
    invalid_arg "Replacement.choose: candidate out of range"

(* The loops are top-level recursive functions with every free variable
   passed explicitly: without flambda a local [let rec] capturing
   [lines]/[stop] allocates its closure per call, defeating the whole
   point of the range API. *)
let rec scan_invalid (lines : Line.t array) i stop =
  if i >= stop then -1
  else if not lines.(i).Line.valid then i
  else scan_invalid lines (i + 1) stop

(* First invalid index in the range, or -1 (a fill never evicts while
   free space remains, matching every design in the paper). *)
let first_invalid lines ~base ~len = scan_invalid lines base (base + len)

let rec scan_min_last_use (lines : Line.t array) i stop best =
  if i >= stop then best
  else
    scan_min_last_use lines (i + 1) stop
      (if lines.(i).Line.last_use < lines.(best).Line.last_use then i else best)

let min_last_use (lines : Line.t array) ~base ~len =
  scan_min_last_use lines (base + 1) (base + len) base

let rec scan_min_fill_seq (lines : Line.t array) i stop best =
  if i >= stop then best
  else
    scan_min_fill_seq lines (i + 1) stop
      (if lines.(i).Line.fill_seq < lines.(best).Line.fill_seq then i else best)

let min_fill_seq (lines : Line.t array) ~base ~len =
  scan_min_fill_seq lines (base + 1) (base + len) base

let lru_victim lines ~base ~len =
  check lines ~base ~len;
  let i = first_invalid lines ~base ~len in
  if i >= 0 then i else min_last_use lines ~base ~len

let choose policy rng lines ~base ~len =
  check lines ~base ~len;
  let i = first_invalid lines ~base ~len in
  if i >= 0 then i
  else
    match policy with
    | Lru -> min_last_use lines ~base ~len
    | Fifo -> min_fill_seq lines ~base ~len
    | Random -> base + Rng.int rng len

(* --- slab hot path: the same contract as [choose], over the flat
   {!Slab} field arrays the engines now keep their state in. The
   [Line.t array] entry points above survive as a compat shim (tests
   and tools still build small line arrays directly). -------------- *)

let check_slab (s : Slab.t) ~base ~len =
  if len <= 0 then invalid_arg "Replacement.choose_in: no candidates";
  if base < 0 || base + len > s.Slab.n then
    invalid_arg "Replacement.choose_in: candidate out of range"

let first_invalid_in (s : Slab.t) ~base ~len = Slab.first_invalid s ~base ~len

let lru_victim_in (s : Slab.t) ~base ~len =
  check_slab s ~base ~len;
  let i = Slab.first_invalid s ~base ~len in
  if i >= 0 then i else Slab.min_last_use s ~base ~len

let choose_in policy rng (s : Slab.t) ~base ~len =
  check_slab s ~base ~len;
  let i = Slab.first_invalid s ~base ~len in
  if i >= 0 then i
  else
    match policy with
    | Lru -> Slab.min_last_use s ~base ~len
    | Fifo -> Slab.min_fill_seq s ~base ~len
    | Random -> base + Rng.int rng len

(* --- cold path: arbitrary (possibly non-contiguous) candidate sets,
   e.g. the unlocked ways of a PL set during [lock_line]. ----------- *)

let check_list lines candidates =
  if candidates = [] then invalid_arg "Replacement.choose: no candidates";
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length lines then
        invalid_arg "Replacement.choose: candidate out of range")
    candidates

let min_by key (lines : Line.t array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun best i -> if key lines.(i) < key lines.(best) then i else best)
      first rest

let choose_among policy rng lines ~candidates =
  check_list lines candidates;
  match List.find_opt (fun i -> not lines.(i).Line.valid) candidates with
  | Some i -> i
  | None -> (
    match policy with
    | Lru -> min_by (fun (l : Line.t) -> l.last_use) lines candidates
    | Fifo -> min_by (fun (l : Line.t) -> l.fill_seq) lines candidates
    | Random -> List.nth candidates (Rng.int rng (List.length candidates)))

(* Slab variant of the list cold path (PL way-locking): same candidate
   order, same tie-breaks (first occurrence of the minimum wins). *)

let check_list_slab (s : Slab.t) candidates =
  if candidates = [] then invalid_arg "Replacement.choose_among_in: no candidates";
  List.iter
    (fun i ->
      if i < 0 || i >= s.Slab.n then
        invalid_arg "Replacement.choose_among_in: candidate out of range")
    candidates

let min_by_slab (a : int array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun best i -> if a.(i) < a.(best) then i else best) first rest

let choose_among_in policy rng (s : Slab.t) ~candidates =
  check_list_slab s candidates;
  match List.find_opt (fun i -> not (Slab.valid s i)) candidates with
  | Some i -> i
  | None -> (
    match policy with
    | Lru -> min_by_slab s.Slab.last_use candidates
    | Fifo -> min_by_slab s.Slab.fill_seq candidates
    | Random -> List.nth candidates (Rng.int rng (List.length candidates)))
