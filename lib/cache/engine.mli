(** Uniform, architecture-agnostic cache interface.

    Each architecture module exposes its own typed API plus an [engine]
    projection to this record of operations, which is what the attack
    harness, benches and examples drive. Operations that an architecture
    does not implement (locking outside PL, windows outside RF) are no-ops
    that return [()] or [false]. *)

type t = {
  name : string;
  config : Config.t;
  sigma : float;
      (** standard deviation of Gaussian observation noise this cache adds
          to timing measurements (non-zero only for the noisy cache) *)
  kernel : string;
      (** which access path serves this engine: a monomorphized kernel
          name (["sa-lru"], ["newcache"], ...) or ["generic"] for the
          policy-dispatching fallback. Reported as the [cache.kernel]
          telemetry gauge and in bench rows. *)
  slab_bytes : int;
      (** resident footprint of the engine's flat line-state slabs in
          bytes (0 for wrappers without slabs of their own). *)
  access : pid:int -> int -> Outcome.t;
      (** one read of a memory line (line-number addressing) *)
  access_run :
    pid:int -> trace:int array -> pos:int -> len:int -> Kernel.mode -> unit;
      (** batched replay of [trace.(pos) .. trace.(pos + len - 1)] for one
          pid, accumulating per {!Kernel.mode}. Bit-identical to [len]
          calls of [access] in state, RNG draws and counters; [Fill] and
          [Count] modes never build an [Outcome.t]. *)
  run_kernel : string;
      (** which path serves [access_run]: a monomorphized kernel name,
          ["generic"] (scalar [access] looped — wrappers and
          non-monomorphized engines), or ["scalar"] (the [Kernel.Scalar]
          selection: monomorphized scalar access under the generic loop —
          the pre-batching cost model benched as the "scalar" rows). *)
  peek : pid:int -> int -> bool;
      (** non-mutating: would [access] hit right now? *)
  flush_line : pid:int -> int -> bool;
      (** clflush analogue: remove the line wherever the pid could hit on
          it; returns whether anything was removed *)
  flush_all : unit -> unit;  (** invalidate the whole cache *)
  lock_line : pid:int -> int -> bool;
      (** PL cache: prefetch and protect a line; [false] if unsupported or
          the line could not be locked *)
  unlock_line : pid:int -> int -> bool;
  set_window : pid:int -> back:int -> fwd:int -> unit;
      (** RF cache: set the pid's random-fill window; no-op elsewhere *)
  counters : unit -> Counters.snapshot;
  counters_for : int -> Counters.snapshot;
  reset_counters : unit -> unit;
  dump : unit -> (int * Line.t) list;
      (** valid lines with their physical way index, for tests/debugging *)
}

val no_lock : pid:int -> int -> bool
(** Constant [false]; default for caches without locking. *)

val no_window : pid:int -> back:int -> fwd:int -> unit
(** No-op; default for caches without random fill. *)
