(** The result of one memory access as seen by the timing channel.

    The encoding is sized for the hot path: a fill displaces at most one
    line, and at most one architecture-specific side eviction can ride
    along (Newcache's CAM index conflict, RE's periodic random
    eviction), so the payload is two inline options rather than a list.
    Plain hits return the preallocated {!hit} value, and PL/SP
    read-throughs the preallocated {!miss_uncached} value, so those
    paths allocate nothing. *)

type event = Hit | Miss

type t = {
  event : event;
  cached : bool;
      (** whether the {e accessed} line resides in the cache afterwards
          (false for PL read-through and for RF, whose fill may be a
          different line) *)
  fetched : int option;
      (** the memory line actually brought into the cache by this access,
          if any; differs from the accessed line under random fill *)
  evicted : (int * int) option;
      (** [(owner_pid, line)] displaced by this access's fill (or, on an
          RE access with no fill eviction, its periodic eviction) *)
  also_evicted : (int * int) option;
      (** second displaced line, when one access evicts twice: Newcache's
          invalidated CAM-conflict line, RE's periodic random eviction *)
}

val hit : t
(** A plain hit: cached, nothing fetched or evicted. Preallocated. *)

val miss_uncached : t
(** A miss served straight from memory: nothing fetched or evicted
    (SP cross-partition, PL locked-victim read-through). Preallocated. *)

val fill : fetched:int -> evicted:(int * int) option -> t
(** A miss that cached [fetched], displacing [evicted] if [Some]. *)

val event_to_string : event -> string
val is_hit : t -> bool
val is_miss : t -> bool

val eviction_count : t -> int
(** 0, 1 or 2; allocation-free. *)

val evictions : t -> (int * int) list
(** The displaced [(owner_pid, line)] pairs in eviction order ([evicted]
    first, then [also_evicted]). Allocates; not for the hot path. *)

val pp : Format.formatter -> t -> unit
