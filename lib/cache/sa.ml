type t = { b : Backing.t; policy : Replacement.policy }

let create ?(config = Config.standard) ?(policy = Replacement.Random) ~rng () =
  { b = Backing.create config ~rng; policy }

let config t = t.b.Backing.cfg
let policy t = t.policy
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* Generic access path: policy dispatched per access through the
   {!Policy} registry (victim selection on miss, touch hook on hit,
   filled hook after install). [Kernel_sa] holds the per-policy
   monomorphized equivalents selected by {!engine}; the two must stay
   bit-identical (state, RNG draws, outcomes — replayed against each
   other by the differential kernel tests). The hit path allocates
   nothing: tag probe and policy touch are int loops/stores over the
   slab and the outcome is the preallocated [Outcome.hit]. *)
let access t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Policy.touch t.policy s i ~seq;
      Outcome.hit
    end
    else begin
      let way =
        Policy.victim_in t.policy b.rng s
          ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
      in
      let evicted = Slab.victim s way in
      Slab.fill s way ~tag:addr ~owner:pid ~seq;
      Policy.filled t.policy s way;
      Outcome.fill ~fetched:addr ~evicted
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b
let counters t = t.b.Backing.counters

(* All seven policies are monomorphized for this engine (it is the
   gated bench row and the hottest path), each as a (scalar access,
   batched run) twin pair bound together at build time. *)
let kernels =
  Kernel.table ~prefix:"sa"
    [
      (Policy.Lru, (Kernel_sa.access_lru, Kernel_sa.run_lru));
      (Policy.Random, (Kernel_sa.access_random, Kernel_sa.run_random));
      (Policy.Fifo, (Kernel_sa.access_fifo, Kernel_sa.run_fifo));
      (Policy.Mru, (Kernel_sa.access_mru, Kernel_sa.run_mru));
      (Policy.Lfu, (Kernel_sa.access_lfu, Kernel_sa.run_lfu));
      (Policy.Mfu, (Kernel_sa.access_mfu, Kernel_sa.run_mfu));
      (Policy.Plru, (Kernel_sa.access_plru, Kernel_sa.run_plru));
    ]

let engine ?(kernel = Kernel.Auto) t =
  let generic ~pid addr = access t ~pid addr in
  let access, run, kernel_name, run_name =
    match (kernel, Kernel.pick kernels t.policy) with
    | Kernel.Auto, Some (name, (a, r)) -> (a t.b, r t.b, name, name)
    | Kernel.Scalar, Some (name, (a, _)) ->
      let a = a t.b in
      (a, Kernel.run_of_scalar a, name, Kernel.scalar)
    | (Kernel.Auto | Kernel.Scalar), None | Kernel.Generic, _ ->
      (generic, Kernel.run_of_scalar generic, Kernel.generic, Kernel.generic)
  in
  {
    Engine.name = Printf.sprintf "sa-%d-way-%s" (config t).Config.ways
        (Replacement.policy_to_string t.policy);
    config = config t;
    sigma = 0.;
    kernel = kernel_name;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access;
    access_run = run;
    run_kernel = run_name;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
