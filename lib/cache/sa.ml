type t = { b : Backing.t; policy : Replacement.policy }

let create ?(config = Config.standard) ?(policy = Replacement.Random) ~rng () =
  { b = Backing.create config ~rng; policy }

let config t = t.b.Backing.cfg
let policy t = t.policy
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* The hit path allocates nothing: tag probe and LRU touch are int
   loops/stores and the outcome is the preallocated [Outcome.hit]. *)
let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Line.touch b.lines.(i) ~seq;
      Outcome.hit
    end
    else begin
      let way =
        Replacement.choose t.policy b.rng b.lines
          ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
      in
      let victim = b.lines.(way) in
      let evicted = Line.victim victim in
      Line.fill victim ~tag:addr ~owner:pid ~seq;
      Outcome.fill ~fetched:addr ~evicted
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Line.invalidate t.b.lines.(i);
    Counters.record_flush t.b.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b
let counters t = t.b.Backing.counters

let engine t =
  {
    Engine.name = Printf.sprintf "sa-%d-way-%s" (config t).Config.ways
        (Replacement.policy_to_string t.policy);
    config = config t;
    sigma = 0.;
    access = (fun ~pid addr -> access t ~pid addr);
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
