type snapshot = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  read_throughs : int;
  flushes : int;
}

let zero =
  { accesses = 0; hits = 0; misses = 0; evictions = 0; read_throughs = 0; flushes = 0 }

type cell = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable read_throughs : int;
  mutable flushes : int;
}

(* Per-pid cells live in a small array indexed directly by pid: every
   simulated process in the repository is a tiny non-negative int
   (victim 0, attacker 1, covert sender 2, ...), and [cell_for] runs
   once per cache access, so a generic [Hashtbl.find] — a hash plus a
   bucket probe per access — is measurable against the ~tens-of-ns
   access itself. Exotic pids spill into the overflow table. *)
let small_pids = 16

type t = {
  global : cell;
  small : cell array;  (** index = pid, for 0 <= pid < {!small_pids} *)
  overflow : (int, cell) Hashtbl.t;
}

let fresh_cell () =
  { accesses = 0; hits = 0; misses = 0; evictions = 0; read_throughs = 0; flushes = 0 }

let create () =
  {
    global = fresh_cell ();
    small = Array.init small_pids (fun _ -> fresh_cell ());
    overflow = Hashtbl.create 8;
  }

(* [Hashtbl.find] + preallocated [Not_found] rather than [find_opt] on
   the overflow path: the option wrapper is a minor-heap allocation on
   every access and this runs on the hit fast path. *)
let cell_for t pid =
  if pid >= 0 && pid < small_pids then t.small.(pid)
  else
    match Hashtbl.find t.overflow pid with
    | c -> c
    | exception Not_found ->
      let c = fresh_cell () in
      Hashtbl.replace t.overflow pid c;
      c

(* Single match per field group; no polymorphic [=] (which compiles to a
   [caml_equal] call even on constant constructors without flambda). *)
let bump c (o : Outcome.t) =
  c.accesses <- c.accesses + 1;
  (match o.event with
  | Outcome.Hit -> c.hits <- c.hits + 1
  | Outcome.Miss ->
    c.misses <- c.misses + 1;
    if not o.cached then c.read_throughs <- c.read_throughs + 1);
  (match o.evicted with
  | Some _ -> c.evictions <- c.evictions + 1
  | None -> ());
  (match o.also_evicted with
  | Some _ -> c.evictions <- c.evictions + 1
  | None -> ())

let record t ~pid o =
  bump t.global o;
  bump (cell_for t pid) o

(* --- hoisted-cell API for the batched run kernels -------------------- *)

(* A batched [run] replays a whole trace for ONE pid, so the kernels
   resolve the global and per-pid cells once per run and bump them with
   the field-wise helpers below — no [Outcome.t] needed on the
   Fill/Count paths. Each helper must leave the cells in exactly the
   state [record] would with the equivalent outcome (the differential
   fuzz and golden digests pin this). *)

let global_cell t = t.global
let cell t pid = cell_for t pid

let cell_hit (c : cell) =
  c.accesses <- c.accesses + 1;
  c.hits <- c.hits + 1

(* Miss served by a fill: [evictions] counts the displaced valid lines
   (0 or 1 for set-associative fills, up to 2 for Newcache's conflict
   invalidation + random victim). *)
let cell_miss_cached (c : cell) ~evictions =
  c.accesses <- c.accesses + 1;
  c.misses <- c.misses + 1;
  c.evictions <- c.evictions + evictions

(* Miss served read-through (PL locked victim): no fill, no eviction. *)
let cell_miss_uncached (c : cell) =
  c.accesses <- c.accesses + 1;
  c.misses <- c.misses + 1;
  c.read_throughs <- c.read_throughs + 1

let cell_record (c : cell) o = bump c o

let record_flush t ~pid =
  t.global.flushes <- t.global.flushes + 1;
  let c = cell_for t pid in
  c.flushes <- c.flushes + 1

let record_eviction t ~count = t.global.evictions <- t.global.evictions + count

let snap (c : cell) : snapshot =
  {
    accesses = c.accesses;
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    read_throughs = c.read_throughs;
    flushes = c.flushes;
  }

let global t = snap t.global

let for_pid t pid =
  if pid >= 0 && pid < small_pids then snap t.small.(pid)
  else
    match Hashtbl.find_opt t.overflow pid with Some c -> snap c | None -> zero

let hit_rate (s : snapshot) =
  if s.accesses = 0 then nan else float_of_int s.hits /. float_of_int s.accesses

let reset t =
  let clear c =
    c.accesses <- 0;
    c.hits <- 0;
    c.misses <- 0;
    c.evictions <- 0;
    c.read_throughs <- 0;
    c.flushes <- 0
  in
  clear t.global;
  Array.iter clear t.small;
  Hashtbl.iter (fun _ c -> clear c) t.overflow

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "acc=%d hit=%d miss=%d evict=%d rt=%d flush=%d" s.accesses
    s.hits s.misses s.evictions s.read_throughs s.flushes
