type snapshot = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  read_throughs : int;
  flushes : int;
}

let zero =
  { accesses = 0; hits = 0; misses = 0; evictions = 0; read_throughs = 0; flushes = 0 }

type cell = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable read_throughs : int;
  mutable flushes : int;
}

type t = { global : cell; per_pid : (int, cell) Hashtbl.t }

let fresh_cell () =
  { accesses = 0; hits = 0; misses = 0; evictions = 0; read_throughs = 0; flushes = 0 }

let create () = { global = fresh_cell (); per_pid = Hashtbl.create 8 }

(* [Hashtbl.find] + preallocated [Not_found] rather than [find_opt]: the
   option wrapper is a minor-heap allocation on every access and this
   runs on the hit fast path. *)
let cell_for t pid =
  match Hashtbl.find t.per_pid pid with
  | c -> c
  | exception Not_found ->
    let c = fresh_cell () in
    Hashtbl.replace t.per_pid pid c;
    c

let bump c (o : Outcome.t) =
  c.accesses <- c.accesses + 1;
  (match o.event with
  | Outcome.Hit -> c.hits <- c.hits + 1
  | Outcome.Miss -> c.misses <- c.misses + 1);
  (match o.evicted with
  | Some _ -> c.evictions <- c.evictions + 1
  | None -> ());
  (match o.also_evicted with
  | Some _ -> c.evictions <- c.evictions + 1
  | None -> ());
  if o.event = Outcome.Miss && not o.cached then
    c.read_throughs <- c.read_throughs + 1

let record t ~pid o =
  bump t.global o;
  bump (cell_for t pid) o

let record_flush t ~pid =
  t.global.flushes <- t.global.flushes + 1;
  let c = cell_for t pid in
  c.flushes <- c.flushes + 1

let record_eviction t ~count = t.global.evictions <- t.global.evictions + count

let snap (c : cell) : snapshot =
  {
    accesses = c.accesses;
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    read_throughs = c.read_throughs;
    flushes = c.flushes;
  }

let global t = snap t.global

let for_pid t pid =
  match Hashtbl.find_opt t.per_pid pid with Some c -> snap c | None -> zero

let hit_rate (s : snapshot) =
  if s.accesses = 0 then nan else float_of_int s.hits /. float_of_int s.accesses

let reset t =
  let clear c =
    c.accesses <- 0;
    c.hits <- 0;
    c.misses <- 0;
    c.evictions <- 0;
    c.read_throughs <- 0;
    c.flushes <- 0
  in
  clear t.global;
  Hashtbl.iter (fun _ c -> clear c) t.per_pid

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "acc=%d hit=%d miss=%d evict=%d rt=%d flush=%d" s.accesses
    s.hits s.misses s.evictions s.read_throughs s.flushes
