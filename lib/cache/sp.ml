type t = {
  b : Backing.t;
  policy : Replacement.policy;
  partitions : int;
  per : int;  (** sets per partition, precomputed off the access path *)
  home : int -> int;
  partition_of_pid : int -> int;
}

let create ?(config = Config.standard) ?(policy = Replacement.Random)
    ?(partitions = 2) ~home ~partition_of_pid ~rng () =
  if partitions <= 0 then invalid_arg "Sp.create: partitions must be positive";
  if Config.sets config mod partitions <> 0 then
    invalid_arg "Sp.create: partitions must divide the set count";
  {
    b = Backing.create config ~rng;
    policy;
    partitions;
    per = Config.sets config / partitions;
    home;
    partition_of_pid;
  }

let create_two_domain ?config ?policy ~victim_pid ~victim_lines ~rng () =
  let in_victim_ranges line =
    List.exists (fun (lo, hi) -> line >= lo && line <= hi) victim_lines
  in
  let home line = if in_victim_ranges line then 0 else 1 in
  let partition_of_pid pid = if pid = victim_pid then 0 else 1 in
  create ?config ?policy ~partitions:2 ~home ~partition_of_pid ~rng ()

let config t = t.b.Backing.cfg
let sets_per_partition t = Config.sets t.b.Backing.cfg / t.partitions

let check_partition t p who =
  if p < 0 || p >= t.partitions then
    invalid_arg (Printf.sprintf "Sp: %s returned partition %d of %d" who p t.partitions)

(* The set of a line is determined by its home partition, so both processes
   agree on where a shared line lives. *)
let set_of t addr =
  let p = t.home addr in
  check_partition t p "home";
  (p * t.per) + (addr mod t.per)

let access t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Policy.touch t.policy s i ~seq;
      Outcome.hit
    end
    else begin
      let own = t.partition_of_pid pid in
      check_partition t own "partition_of_pid";
      if own <> t.home addr then
        (* Cross-partition miss: served from memory, nothing displaced. *)
        Outcome.miss_uncached
      else begin
        let way =
          Policy.victim_in t.policy b.rng s
            ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
        in
        let evicted = Slab.victim s way in
        Slab.fill s way ~tag:addr ~owner:pid ~seq;
        Policy.filled t.policy s way;
        Outcome.fill ~fetched:addr ~evicted
      end
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name = Printf.sprintf "sp-%d-part-%d-way" t.partitions (config t).Config.ways;
    config = config t;
    sigma = 0.;
    kernel = Kernel.generic;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access = (fun ~pid addr -> access t ~pid addr);
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
