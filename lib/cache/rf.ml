open Cachesec_stats

type t = {
  b : Backing.t;
  policy : Replacement.policy;
  default_window : int * int;
  windows : (int, int * int) Hashtbl.t;
}

let create ?(config = Config.standard) ?(policy = Replacement.Random)
    ?(default_window = (0, 0)) ~rng () =
  let back, fwd = default_window in
  if back < 0 || fwd < 0 then invalid_arg "Rf.create: negative window";
  { b = Backing.create config ~rng; policy; default_window; windows = Hashtbl.create 8 }

let config t = t.b.Backing.cfg

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: runs on every
   miss, and the option wrapper would allocate. *)
let window t ~pid =
  match Hashtbl.find t.windows pid with
  | w -> w
  | exception Not_found -> t.default_window

let set_window t ~pid ~back ~fwd =
  if back < 0 || fwd < 0 then invalid_arg "Rf.set_window: negative window";
  Hashtbl.replace t.windows pid (back, fwd)

(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* Install [line] unless already cached; the filled outcome for an
   access to [addr] that randomly fetched [line]. *)
let fill_line t ~pid ~addr line ~seq =
  let b = t.b in
  let s = b.Backing.slab in
  let set = set_of t line in
  if Backing.find_tag b ~set ~tag:line >= 0 then
    (* already cached; nothing fetched, nothing displaced *)
    Outcome.miss_uncached
  else begin
    let way =
      Policy.victim_in t.policy b.rng s
        ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
    in
    let evicted = Slab.victim s way in
    Slab.fill s way ~tag:line ~owner:pid ~seq;
    Policy.filled t.policy s way;
    {
      Outcome.event = Miss;
      cached = line = addr;
      fetched = Some line;
      evicted;
      also_evicted = None;
    }
  end

let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Policy.touch t.policy b.Backing.slab i ~seq;
      Outcome.hit
    end
    else begin
      let back, fwd = window t ~pid in
      (* Uniform over the window [addr - back, addr + fwd], clamped to
         non-negative lines. A zero window is exactly demand fetch and
         draws no randomness (so RF(0,0) replays an SA cache's RNG
         stream bit-for-bit). *)
      let lo = Stdlib.max 0 (addr - back) and hi = addr + fwd in
      let target = if lo = hi then lo else lo + Rng.int b.rng (hi - lo + 1) in
      fill_line t ~pid ~addr target ~seq
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name = Printf.sprintf "rf-%d-way" (config t).Config.ways;
    config = config t;
    sigma = 0.;
    kernel = Kernel.generic;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access = (fun ~pid addr -> access t ~pid addr);
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = (fun ~pid ~back ~fwd -> set_window t ~pid ~back ~fwd);
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
