(** Conventional set-associative cache (the paper's baseline).

    Physically indexed and tagged: any process hits on any cached line with
    a matching address, which is what makes the conventional cache leak
    through all four attack types. With [ways = lines] this is the fully
    associative cache; the paper's baseline uses random replacement "since
    this gives better resilience against cache attackers" (Section 3.7). *)

type t

val create :
  ?config:Config.t ->
  ?policy:Replacement.policy ->
  rng:Cachesec_stats.Rng.t ->
  unit ->
  t
(** Defaults: {!Config.standard}, random replacement. *)

val config : t -> Config.t
val policy : t -> Replacement.policy
val access : t -> pid:int -> int -> Outcome.t
val peek : t -> pid:int -> int -> bool
val flush_line : t -> pid:int -> int -> bool
val flush_all : t -> unit
val counters : t -> Counters.t

val engine : ?kernel:Kernel.selection -> t -> Engine.t
(** [?kernel] (default [Auto]) selects the access path: [Auto] binds the
    per-policy monomorphized kernel from {!Kernel_sa}; [Generic] keeps
    the policy-dispatching fallback (differential-testing oracle). Both
    are bit-identical in state, RNG draws and outcomes. *)
