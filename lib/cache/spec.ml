type t =
  | Sa of { ways : int; policy : Replacement.policy }
  | Sp of { ways : int; policy : Replacement.policy; partitions : int }
  | Pl of { ways : int; policy : Replacement.policy }
  | Nomo of { ways : int; policy : Replacement.policy; reserved : int }
  | Newcache of { extra_bits : int }
  | Rp of { ways : int; policy : Replacement.policy }
  | Rf of { ways : int; policy : Replacement.policy; back : int; fwd : int }
  | Re of { ways : int; policy : Replacement.policy; interval : int }
  | Noisy of { ways : int; policy : Replacement.policy; sigma : float }

let paper_sa = Sa { ways = 8; policy = Replacement.Random }
let paper_sp = Sp { ways = 8; policy = Replacement.Random; partitions = 2 }
let paper_pl = Pl { ways = 8; policy = Replacement.Random }
let paper_nomo = Nomo { ways = 8; policy = Replacement.Random; reserved = 2 }
let paper_newcache = Newcache { extra_bits = 4 }
let paper_rp = Rp { ways = 8; policy = Replacement.Random }
let paper_rf = Rf { ways = 8; policy = Replacement.Random; back = 64; fwd = 64 }
let paper_re = Re { ways = 1; policy = Replacement.Random; interval = 10 }
let paper_noisy = Noisy { ways = 8; policy = Replacement.Random; sigma = 1.0 }

let all_paper =
  [
    paper_sa;
    paper_sp;
    paper_pl;
    paper_nomo;
    paper_newcache;
    paper_rp;
    paper_rf;
    paper_re;
    paper_noisy;
  ]

let name = function
  | Sa _ -> "sa"
  | Sp _ -> "sp"
  | Pl _ -> "pl"
  | Nomo _ -> "nomo"
  | Newcache _ -> "newcache"
  | Rp _ -> "rp"
  | Rf _ -> "rf"
  | Re _ -> "re"
  | Noisy _ -> "noisy"

let display_name = function
  | Sa _ -> "SA Cache"
  | Sp _ -> "SP Cache"
  | Pl _ -> "PL Cache"
  | Nomo _ -> "Nomo Cache"
  | Newcache _ -> "Newcache"
  | Rp _ -> "RP Cache"
  | Rf _ -> "RF Cache"
  | Re _ -> "RE Cache"
  | Noisy _ -> "Noisy Cache"

let of_name s =
  List.find_opt (fun spec -> name spec = s) all_paper

let with_policy spec policy =
  match spec with
  | Sa r -> Sa { r with policy }
  | Sp r -> Sp { r with policy }
  | Pl r -> Pl { r with policy }
  | Nomo r -> Nomo { r with policy }
  | Newcache _ as s -> s
  | Rp r -> Rp { r with policy }
  | Rf r -> Rf { r with policy }
  | Re r -> Re { r with policy }
  | Noisy r -> Noisy { r with policy }

let policy_of = function
  | Sa { policy; _ }
  | Sp { policy; _ }
  | Pl { policy; _ }
  | Nomo { policy; _ }
  | Rp { policy; _ }
  | Rf { policy; _ }
  | Re { policy; _ }
  | Noisy { policy; _ } -> Some policy
  | Newcache _ -> None

let pp ppf t =
  match t with
  | Sa { ways; policy } ->
    Format.fprintf ppf "SA(%d-way, %s)" ways (Replacement.policy_to_string policy)
  | Sp { ways; policy; partitions } ->
    Format.fprintf ppf "SP(%d-way, %s, %d partitions)" ways
      (Replacement.policy_to_string policy)
      partitions
  | Pl { ways; policy } ->
    Format.fprintf ppf "PL(%d-way, %s)" ways (Replacement.policy_to_string policy)
  | Nomo { ways; policy; reserved } ->
    Format.fprintf ppf "Nomo(%d-way, %s, %d reserved)" ways
      (Replacement.policy_to_string policy)
      reserved
  | Newcache { extra_bits } -> Format.fprintf ppf "Newcache(k=%d)" extra_bits
  | Rp { ways; policy } ->
    Format.fprintf ppf "RP(%d-way, %s)" ways (Replacement.policy_to_string policy)
  | Rf { ways; policy; back; fwd } ->
    Format.fprintf ppf "RF(%d-way, %s, window -%d/+%d)" ways
      (Replacement.policy_to_string policy)
      back fwd
  | Re { ways; policy; interval } ->
    Format.fprintf ppf "RE(%d-way, %s, every %d)" ways
      (Replacement.policy_to_string policy)
      interval
  | Noisy { ways; policy; sigma } ->
    Format.fprintf ppf "Noisy(%d-way, %s, sigma=%g)" ways
      (Replacement.policy_to_string policy)
      sigma
