(** Per-cache and per-pid access accounting. *)

type snapshot = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;  (** valid lines displaced (any cause) *)
  read_throughs : int;  (** misses served without caching the line *)
  flushes : int;
}

type t

val create : unit -> t
val record : t -> pid:int -> Outcome.t -> unit
val record_flush : t -> pid:int -> unit
val record_eviction : t -> count:int -> unit
(** Extra evictions not tied to an access outcome (e.g. flush_all). *)

(** {2 Hoisted cells (batched run kernels)}

    A batched trace replay serves one pid, so the run kernels resolve
    the global and per-pid accumulator cells once per run and bump them
    field-wise per access — equivalent to {!record} with the matching
    outcome, without materializing an [Outcome.t] on the Fill/Count
    paths. *)

type cell

val global_cell : t -> cell
val cell : t -> int -> cell
(** The pid's accumulator cell (created on first use). *)

val cell_hit : cell -> unit
val cell_miss_cached : cell -> evictions:int -> unit
(** Miss served by a fill displacing [evictions] valid lines (0/1 for
    set-associative fills, up to 2 for Newcache). *)

val cell_miss_uncached : cell -> unit
(** Miss served read-through (PL locked victim). *)

val cell_record : cell -> Outcome.t -> unit
(** Bump one cell from a full outcome (the Trace-mode path). *)

val global : t -> snapshot
val for_pid : t -> int -> snapshot
(** All-zero snapshot for a pid never seen. *)

val hit_rate : snapshot -> float
(** [nan] when no accesses. *)

val reset : t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
