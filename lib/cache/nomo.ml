type t = {
  b : Backing.t;
  policy : Replacement.policy;
  reserved : int;
  protected_pids : int list;
}

let create ?(config = Config.standard) ?(policy = Replacement.Random) ?reserved
    ~protected_pids ~rng () =
  let reserved = Option.value reserved ~default:(config.Config.ways / 4) in
  if reserved < 0 || reserved >= config.Config.ways then
    invalid_arg "Nomo.create: reserved must lie in [0, ways)";
  { b = Backing.create config ~rng; policy; reserved; protected_pids }

let config t = t.b.Backing.cfg
let reserved_ways t = t.reserved
let shared_ways t = t.b.Backing.cfg.Config.ways - t.reserved
let is_protected t pid = List.mem pid t.protected_pids
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* Top-level loop (all state as arguments): a local [let rec] capturing
   the slabs/[stop]/[pid] would allocate its closure on every miss under
   the non-flambda compiler. Valid lines have non-negative tags. *)
let rec count_owned (tags : int array) (owners : int array) pid i stop n =
  if i >= stop then n
  else
    count_owned tags owners pid (i + 1) stop
      (if tags.(i) >= 0 && owners.(i) = pid then n + 1 else n)

(* Valid lines in [base, base + len) filled by [pid]. Allocation-free. *)
let owned_in_range t ~base ~len ~pid =
  let s = t.b.Backing.slab in
  count_owned s.Slab.tags s.Slab.owners pid base (base + len) 0

(* The set's ways split into two contiguous slices: the first [reserved]
   ways and the shared remainder. A protected pid that holds fewer than
   [reserved] lines in the whole set fills into the reserved slice;
   everyone else fills into the shared slice. Returns (base, len). *)
let fill_range t ~set ~pid =
  let base = Backing.base_of_set t.b ~set in
  let w = t.b.Backing.cfg.Config.ways in
  if not (is_protected t pid) then (base + t.reserved, w - t.reserved)
  else if owned_in_range t ~base ~len:w ~pid < t.reserved then
    (base, t.reserved)
  else (base + t.reserved, w - t.reserved)

let access t ~pid addr =
  let b = t.b in
  let s = b.Backing.slab in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let outcome =
    if i >= 0 then begin
      Policy.touch t.policy s i ~seq;
      Outcome.hit
    end
    else begin
      let cand_base, cand_len = fill_range t ~set ~pid in
      if cand_len <= 0 then
        (* reserved = 0 for a protected pid never happens (owned < 0 is
           impossible); an empty shared slice can only occur if
           reserved = ways, excluded at create. Still: serve
           read-through defensively. *)
        Outcome.miss_uncached
      else begin
        (* The reserved/shared slices are never a whole set, so under
           Plru the victim choice is the deterministic LRU fallback
           (tree bits are maintained by the hooks but never consulted
           for slice-shaped ranges — see {!Policy}). *)
        let way =
          Policy.victim_in t.policy b.rng s ~base:cand_base ~len:cand_len
        in
        let evicted = Slab.victim s way in
        Slab.fill s way ~tag:addr ~owner:pid ~seq;
        Policy.filled t.policy s way;
        Outcome.fill ~fetched:addr ~evicted
      end
    end
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name =
      Printf.sprintf "nomo-%d/%d-reserved" t.reserved (config t).Config.ways;
    config = config t;
    sigma = 0.;
    kernel = Kernel.generic;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access = (fun ~pid addr -> access t ~pid addr);
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
