type scenario = { victim_pid : int; victim_lines : (int * int) list }

let default_scenario = { victim_pid = 0; victim_lines = [] }

let with_ways (cfg : Config.t) ways =
  Config.v ~line_bytes:cfg.line_bytes ~lines:cfg.lines ~ways

let build ?(config = Config.standard) ?kernel spec scenario ~rng =
  match spec with
  | Spec.Sa { ways; policy } ->
    Sa.engine ?kernel (Sa.create ~config:(with_ways config ways) ~policy ~rng ())
  | Spec.Sp { ways; policy; partitions } ->
    let in_victim_ranges line =
      List.exists (fun (lo, hi) -> line >= lo && line <= hi) scenario.victim_lines
    in
    let home line = if in_victim_ranges line then 0 else 1 in
    let partition_of_pid pid = if pid = scenario.victim_pid then 0 else 1 in
    Sp.engine
      (Sp.create ~config:(with_ways config ways) ~policy ~partitions ~home
         ~partition_of_pid ~rng ())
  | Spec.Pl { ways; policy } ->
    Pl.engine ?kernel (Pl.create ~config:(with_ways config ways) ~policy ~rng ())
  | Spec.Nomo { ways; policy; reserved } ->
    Nomo.engine
      (Nomo.create ~config:(with_ways config ways) ~policy ~reserved
         ~protected_pids:[ scenario.victim_pid ] ~rng ())
  | Spec.Newcache { extra_bits } ->
    let config = with_ways config config.Config.lines in
    Newcache.engine ?kernel (Newcache.create ~config ~extra_bits ~rng ())
  | Spec.Rp { ways; policy } ->
    Rp.engine ?kernel (Rp.create ~config:(with_ways config ways) ~policy ~rng ())
  | Spec.Rf { ways; policy; back; fwd } ->
    let rf = Rf.create ~config:(with_ways config ways) ~policy ~rng () in
    Rf.set_window rf ~pid:scenario.victim_pid ~back ~fwd;
    Rf.engine rf
  | Spec.Re { ways; policy; interval } ->
    Re.engine (Re.create ~config:(with_ways config ways) ~policy ~interval ~rng ())
  | Spec.Noisy { ways; policy; sigma } ->
    Noisy.engine ?kernel
      (Noisy.create ~config:(with_ways config ways) ~policy ~sigma ~rng ())
