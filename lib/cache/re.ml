open Cachesec_stats

type t = {
  b : Backing.t;
  policy : Replacement.policy;
  interval : int;
  mutable since_eviction : int;
  mutable random_evictions : int;
}

let create ?(config = Config.direct_mapped) ?(policy = Replacement.Random)
    ?(interval = 10) ~rng () =
  if interval <= 0 then invalid_arg "Re.create: interval must be positive";
  {
    b = Backing.create config ~rng;
    policy;
    interval;
    since_eviction = 0;
    random_evictions = 0;
  }

let config t = t.b.Backing.cfg
let interval t = t.interval
let random_evictions t = t.random_evictions
(* Division-free on power-of-two set counts; same value as
   [Address.set_index]. *)
let set_of t addr = Backing.set_of t.b addr

(* Fires after every [interval]-th access; evicts a uniformly random slot. *)
let periodic_eviction t =
  t.since_eviction <- t.since_eviction + 1;
  if t.since_eviction >= t.interval then begin
    t.since_eviction <- 0;
    t.random_evictions <- t.random_evictions + 1;
    let s = t.b.Backing.slab in
    let slot = Rng.int t.b.Backing.rng s.Slab.n in
    let victim = Slab.victim s slot in
    if Slab.valid s slot then Slab.invalidate s slot;
    victim
  end
  else None

let access t ~pid addr =
  let b = t.b in
  let seq = Backing.tick b in
  let set = set_of t addr in
  let i = Backing.find_tag b ~set ~tag:addr in
  let base =
    if i >= 0 then begin
      Policy.touch t.policy b.Backing.slab i ~seq;
      Outcome.hit
    end
    else begin
      let s = b.Backing.slab in
      let way =
        Policy.victim_in t.policy b.rng s
          ~base:(Backing.base_of_set b ~set) ~len:b.cfg.Config.ways
      in
      let evicted = Slab.victim s way in
      Slab.fill s way ~tag:addr ~owner:pid ~seq;
      Policy.filled t.policy s way;
      Outcome.fill ~fetched:addr ~evicted
    end
  in
  let outcome =
    (* The off-beat (interval - 1 of interval) accesses pass [base]
       through untouched, so plain RE hits stay allocation-free. *)
    match periodic_eviction t with
    | None -> base
    | Some _ as v -> { base with Outcome.also_evicted = v }
  in
  Counters.record b.counters ~pid outcome;
  outcome

let peek t ~pid:_ addr = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr >= 0

let flush_line t ~pid addr =
  let i = Backing.find_tag t.b ~set:(set_of t addr) ~tag:addr in
  if i >= 0 then begin
    Slab.invalidate t.b.Backing.slab i;
    Counters.record_flush t.b.Backing.counters ~pid;
    true
  end
  else false

let flush_all t = Backing.flush_all t.b

let engine t =
  {
    Engine.name =
      Printf.sprintf "re-%d-way-T%d" (config t).Config.ways t.interval;
    config = config t;
    sigma = 0.;
    kernel = Kernel.generic;
    slab_bytes = Slab.bytes t.b.Backing.slab;
    access = (fun ~pid addr -> access t ~pid addr);
    access_run = Kernel.run_of_scalar (fun ~pid addr -> access t ~pid addr);
    run_kernel = Kernel.generic;
    peek = (fun ~pid addr -> peek t ~pid addr);
    flush_line = (fun ~pid addr -> flush_line t ~pid addr);
    flush_all = (fun () -> flush_all t);
    lock_line = Engine.no_lock;
    unlock_line = Engine.no_lock;
    set_window = Engine.no_window;
    counters = (fun () -> Counters.global t.b.Backing.counters);
    counters_for = (fun pid -> Counters.for_pid t.b.Backing.counters pid);
    reset_counters = (fun () -> Counters.reset t.b.Backing.counters);
    dump = (fun () -> Backing.dump t.b);
  }
