type t = {
  name : string;
  config : Config.t;
  sigma : float;
  kernel : string;
  slab_bytes : int;
  access : pid:int -> int -> Outcome.t;
  access_run :
    pid:int -> trace:int array -> pos:int -> len:int -> Kernel.mode -> unit;
  run_kernel : string;
  peek : pid:int -> int -> bool;
  flush_line : pid:int -> int -> bool;
  flush_all : unit -> unit;
  lock_line : pid:int -> int -> bool;
  unlock_line : pid:int -> int -> bool;
  set_window : pid:int -> back:int -> fwd:int -> unit;
  counters : unit -> Counters.snapshot;
  counters_for : int -> Counters.snapshot;
  reset_counters : unit -> unit;
  dump : unit -> (int * Line.t) list;
}

let no_lock ~pid:_ _ = false
let no_window ~pid:_ ~back:_ ~fwd:_ = ()
