(** Noisy cache: a conventional set-associative cache whose timing channel
    carries Gaussian observation noise.

    The cache logic is exactly {!Sa}; the only difference is the non-zero
    [sigma] surfaced through the engine, which {!Timing.observe} uses to
    blur the attacker's measurements (the paper's edge e5, Figure 4). *)

type t

val create :
  ?config:Config.t ->
  ?policy:Replacement.policy ->
  ?sigma:float ->
  rng:Cachesec_stats.Rng.t ->
  unit ->
  t
(** [sigma] defaults to 1.0, the paper's Table 4 configuration (noise
    standard deviation equal to the hit/miss time difference). Must be
    non-negative. *)

val sigma : t -> float
val access : t -> pid:int -> int -> Outcome.t
val peek : t -> pid:int -> int -> bool

val engine : ?kernel:Kernel.selection -> t -> Engine.t
(** [?kernel] is forwarded to the underlying {!Sa.engine}. *)
