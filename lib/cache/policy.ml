open Cachesec_stats

(* The one place that knows every replacement policy. Engines, kernel
   selection, the factory, the CLI and the serve protocol all consume
   this registry, so adding a policy means editing this module (plus an
   optional monomorphized kernel and a pre-PAS formula) instead of
   auditing seven match sites. *)

type t = Lru | Random | Fifo | Mru | Lfu | Mfu | Plru

let all = [ Lru; Random; Fifo; Mru; Lfu; Mfu; Plru ]
let count = 7

let id = function
  | Lru -> 0
  | Random -> 1
  | Fifo -> 2
  | Mru -> 3
  | Lfu -> 4
  | Mfu -> 5
  | Plru -> 6

let to_string = function
  | Lru -> "lru"
  | Random -> "random"
  | Fifo -> "fifo"
  | Mru -> "mru"
  | Lfu -> "lfu"
  | Mfu -> "mfu"
  | Plru -> "plru"

let of_string = function
  | "lru" -> Some Lru
  | "random" -> Some Random
  | "fifo" -> Some Fifo
  | "mru" -> Some Mru
  | "lfu" -> Some Lfu
  | "mfu" -> Some Mfu
  | "plru" -> Some Plru
  | _ -> None

let names = String.concat "|" (List.map to_string all)

(* --- state-needs descriptor ----------------------------------------- *)

type needs = {
  last_use : bool;
  fill_seq : bool;
  freq : bool;
  tree : bool;
  rng : bool;
}

let no_needs =
  { last_use = false; fill_seq = false; freq = false; tree = false; rng = false }

let needs = function
  | Lru | Mru -> { no_needs with last_use = true }
  | Random -> { no_needs with rng = true }
  | Fifo -> { no_needs with fill_seq = true }
  | Lfu | Mfu -> { no_needs with freq = true }
  | Plru -> { no_needs with tree = true }

(* --- tree-PLRU ------------------------------------------------------- *)

(* Per-set (ways - 1)-bit word in [Slab.tree], heap-numbered: node 1 is
   the root, node [k] has children [2k]/[2k+1], bit [k] = 1 points at
   the right subtree. The victim walk follows the bits root-to-leaf; a
   touch walks leaf-to-root flipping every ancestor to point away from
   the touched way — on every hit and every fill, so one access
   protects its line from the next (ways - 1) victim walks.

   The tree path requires the candidate range to be one whole
   set-aligned set with a power-of-two way count (the only shape the
   heap covers). Any other range — Nomo's reserved/shared slices, PL's
   unlocked-way lists, a non-power-of-two geometry — deterministically
   falls back to LRU order, and {!plru_touch} is then a no-op, so the
   fallback engines behave exactly like LRU (documented in the .mli and
   relied on by the Nomo pre-PAS composition). *)

let[@inline] plru_tree_capable ways = ways > 1 && ways land (ways - 1) = 0

let rec plru_walk tree ways node =
  if node >= ways then node - ways
  else plru_walk tree ways ((2 * node) + ((tree lsr node) land 1))

(* Flip ancestors of [leaf] (heap node [ways + way]) to point at the
   sibling subtree: a left child sets its parent bit to 1, a right
   child to 0. *)
let rec plru_point_away tree node =
  if node <= 1 then tree
  else
    let parent = node / 2 in
    let bit = node land 1 lxor 1 in
    plru_point_away ((tree land lnot (1 lsl parent)) lor (bit lsl parent)) parent

let plru_victim (s : Slab.t) ~set =
  let w = s.Slab.ways in
  (set * w) + plru_walk s.Slab.tree.(set) w 1

let plru_touch (s : Slab.t) i =
  let w = s.Slab.ways in
  if plru_tree_capable w then begin
    let set = i / w in
    let leaf = w + (i - (set * w)) in
    s.Slab.tree.(set) <- plru_point_away s.Slab.tree.(set) leaf
  end

(* --- victim selection ------------------------------------------------ *)

let check (s : Slab.t) ~base ~len =
  if len <= 0 then invalid_arg "Policy.victim_in: no candidates";
  if base < 0 || base + len > s.Slab.n then
    invalid_arg "Policy.victim_in: candidate out of range"

let victim_in p rng (s : Slab.t) ~base ~len =
  check s ~base ~len;
  let i = Slab.first_invalid s ~base ~len in
  if i >= 0 then i
  else
    match p with
    | Lru -> Slab.min_last_use s ~base ~len
    | Fifo -> Slab.min_fill_seq s ~base ~len
    | Random -> base + Rng.int rng len
    | Mru -> Slab.max_last_use s ~base ~len
    | Lfu -> Slab.min_freq s ~base ~len
    | Mfu -> Slab.max_freq s ~base ~len
    | Plru ->
      if
        len = s.Slab.ways
        && plru_tree_capable len
        && base land (len - 1) = 0
      then base + plru_walk s.Slab.tree.(base / len) len 1
      else Slab.min_last_use s ~base ~len

(* --- per-access state hooks ------------------------------------------ *)

let touch p (s : Slab.t) i ~seq =
  Slab.touch s i ~seq;
  match p with
  | Lru | Random | Fifo | Mru -> ()
  | Lfu | Mfu -> s.Slab.freq.(i) <- s.Slab.freq.(i) + 1
  | Plru -> plru_touch s i

let filled p (s : Slab.t) i =
  match p with
  | Lru | Random | Fifo | Mru | Lfu | Mfu -> ()
  | Plru -> plru_touch s i

(* --- cold path: explicit candidate lists ----------------------------- *)

let check_list (s : Slab.t) candidates =
  if candidates = [] then invalid_arg "Policy.victim_among_in: no candidates";
  List.iter
    (fun i ->
      if i < 0 || i >= s.Slab.n then
        invalid_arg "Policy.victim_among_in: candidate out of range")
    candidates

let min_by (a : int array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun best i -> if a.(i) < a.(best) then i else best) first rest

let max_by (a : int array) candidates =
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun best i -> if a.(i) > a.(best) then i else best) first rest

let victim_among_in p rng (s : Slab.t) ~candidates =
  check_list s candidates;
  match List.find_opt (fun i -> not (Slab.valid s i)) candidates with
  | Some i -> i
  | None -> (
    match p with
    | Lru -> min_by s.Slab.last_use candidates
    | Fifo -> min_by s.Slab.fill_seq candidates
    | Random -> List.nth candidates (Rng.int rng (List.length candidates))
    | Mru -> max_by s.Slab.last_use candidates
    | Lfu -> min_by s.Slab.freq candidates
    | Mfu -> max_by s.Slab.freq candidates
    | Plru -> min_by s.Slab.last_use candidates)
