open Cachesec_stats

type t = {
  cfg : Config.t;
  slab : Slab.t;
  mutable seq : int;
  counters : Counters.t;
  rng : Rng.t;
  sets : int;  (** [Config.sets cfg], precomputed off the access path *)
  set_mask : int;
      (** [sets - 1] when [sets] is a power of two, else -1: lets
          {!set_of} replace the per-access division with a masked AND *)
}

let create cfg ~rng =
  let sets = Config.sets cfg in
  {
    cfg;
    slab = Slab.create ~lines:cfg.Config.lines ~ways:cfg.Config.ways;
    seq = 0;
    counters = Counters.create ();
    rng;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
  }

let tick t =
  t.seq <- t.seq + 1;
  t.seq

(* --- hot path: bounded int scans over the flat slabs ---------------- *)

let base_of_set t ~set = set * t.cfg.Config.ways

(* Conventional set index of a line. Same value as [Address.set_index
   t.cfg line] but with the two per-access integer divisions (sets =
   lines/ways, then mod) replaced by one predictable branch and an AND
   whenever the set count is a power of two — which it is for every
   paper geometry. Line numbers are non-negative, so [land] and [mod]
   agree. *)
let set_of t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

(* Global index of the valid line in [set] holding [tag], or -1. *)
let find_tag t ~set ~tag =
  let w = t.cfg.Config.ways in
  Slab.find_tag t.slab ~tag ~base:(set * w) ~len:w

(* As [find_tag], additionally requiring the filling pid to match (the
   RP cache's PID feature: the tag array stores the owning context). *)
let find_tag_owned t ~set ~tag ~owner =
  let w = t.cfg.Config.ways in
  Slab.find_tag_owned t.slab ~tag ~owner ~base:(set * w) ~len:w

(* --- cold paths ---------------------------------------------------- *)

let ways_of_set t ~set =
  let w = t.cfg.Config.ways in
  if set < 0 || set >= Config.sets t.cfg then
    invalid_arg "Backing.ways_of_set: set out of range";
  List.init w (fun i -> (set * w) + i)

let valid_indices t =
  let acc = ref [] in
  for i = t.slab.Slab.n - 1 downto 0 do
    if Slab.valid t.slab i then acc := i :: !acc
  done;
  !acc

(* Valid lines with their global index, as fresh boxed snapshots (the
   slabs are the state of record; mutating a dumped [Line.t] no longer
   reaches the engine). *)
let dump t =
  let acc = ref [] in
  for i = t.slab.Slab.n - 1 downto 0 do
    if Slab.valid t.slab i then acc := (i, Slab.line t.slab i) :: !acc
  done;
  !acc

let flush_all t =
  Counters.record_eviction t.counters ~count:(Slab.clear t.slab)
