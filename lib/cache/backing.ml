open Cachesec_stats

type t = {
  cfg : Config.t;
  lines : Line.t array;
  mutable seq : int;
  counters : Counters.t;
  rng : Rng.t;
  sets : int;  (** [Config.sets cfg], precomputed off the access path *)
  set_mask : int;
      (** [sets - 1] when [sets] is a power of two, else -1: lets
          {!set_of} replace the per-access division with a masked AND *)
}

let create cfg ~rng =
  let sets = Config.sets cfg in
  {
    cfg;
    lines = Line.make_array cfg.Config.lines;
    seq = 0;
    counters = Counters.create ();
    rng;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
  }

let tick t =
  t.seq <- t.seq + 1;
  t.seq

(* --- hot path: bounded int loops over the flat [lines] array, index
   arithmetic instead of per-access list construction. -------------- *)

let base_of_set t ~set = set * t.cfg.Config.ways

(* Conventional set index of a line. Same value as [Address.set_index
   t.cfg line] but with the two per-access integer divisions (sets =
   lines/ways, then mod) replaced by one predictable branch and an AND
   whenever the set count is a power of two — which it is for every
   paper geometry. Line numbers are non-negative, so [land] and [mod]
   agree. *)
let set_of t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

(* The scan loops live at top level and take every free variable as an
   argument: without flambda, a local [let rec] capturing [lines]/[tag]
   allocates its closure on each call, which would put ~6 minor words
   back on the hit path. Top-level direct calls allocate nothing. *)
let rec scan_tag (lines : Line.t array) tag i stop =
  if i >= stop then -1
  else
    let l = lines.(i) in
    if l.Line.valid && l.Line.tag = tag then i else scan_tag lines tag (i + 1) stop

let rec scan_tag_owned (lines : Line.t array) tag owner i stop =
  if i >= stop then -1
  else
    let l = lines.(i) in
    if l.Line.valid && l.Line.tag = tag && l.Line.owner = owner then i
    else scan_tag_owned lines tag owner (i + 1) stop

(* Global index of the valid line in [set] holding [tag], or -1. *)
let find_tag t ~set ~tag =
  let base = set * t.cfg.Config.ways in
  scan_tag t.lines tag base (base + t.cfg.Config.ways)

(* As [find_tag], additionally requiring the filling pid to match (the
   RP cache's PID feature: the tag array stores the owning context). *)
let find_tag_owned t ~set ~tag ~owner =
  let base = set * t.cfg.Config.ways in
  scan_tag_owned t.lines tag owner base (base + t.cfg.Config.ways)

(* --- cold paths ---------------------------------------------------- *)

let ways_of_set t ~set =
  let w = t.cfg.Config.ways in
  if set < 0 || set >= Config.sets t.cfg then
    invalid_arg "Backing.ways_of_set: set out of range";
  List.init w (fun i -> (set * w) + i)

let valid_indices t =
  let acc = ref [] in
  for i = Array.length t.lines - 1 downto 0 do
    if t.lines.(i).Line.valid then acc := i :: !acc
  done;
  !acc

let dump t =
  let acc = ref [] in
  for i = Array.length t.lines - 1 downto 0 do
    if t.lines.(i).Line.valid then acc := (i, t.lines.(i)) :: !acc
  done;
  !acc

let flush_all t =
  (* Count and invalidate in one pass over the array. *)
  let displaced = ref 0 in
  for i = 0 to Array.length t.lines - 1 do
    let l = t.lines.(i) in
    if l.Line.valid then incr displaced;
    Line.invalidate l
  done;
  Counters.record_eviction t.counters ~count:!displaced
